#include "callgraph.hpp"

#include <algorithm>

#include "cfg.hpp"

namespace staticcheck {

// ---------------------------------------------------------------------------
// Shared token-scan helpers
// ---------------------------------------------------------------------------

bool tok_bare(const std::vector<Token>& toks, std::size_t i) {
    if (i == 0) return true;
    std::string_view p = toks[i - 1].text;
    if (p == "." || p == "::") return false;
    if (p == "->") return i >= 2 && toks[i - 2].text == "this";
    return true;
}

std::size_t tok_match_paren(const std::vector<Token>& toks, std::size_t open,
                            std::size_t hi) {
    int depth = 0;
    for (std::size_t i = open; i < hi; ++i) {
        if (toks[i].text == "(") ++depth;
        else if (toks[i].text == ")") {
            if (--depth == 0) return i;
        }
    }
    return hi;
}

bool tok_param_range(const std::vector<Token>& toks, std::size_t body_open, std::size_t& lo,
                     std::size_t& hi) {
    std::size_t k = body_open;
    std::size_t steps = 0;
    while (k > 0 && steps < 40) {
        --k;
        ++steps;
        if (toks[k].text == ")") {
            int depth = 0;
            for (std::size_t j = k + 1; j-- > 0;) {
                if (toks[j].text == ")") ++depth;
                else if (toks[j].text == "(") {
                    if (--depth == 0) {
                        lo = j + 1;
                        hi = k;
                        return true;
                    }
                }
                if (j == 0) break;
            }
            return false;
        }
        if (toks[k].text == ";" || toks[k].text == "}") return false;
    }
    return false;
}

std::vector<Param> parse_params(const std::vector<Token>& toks, std::size_t body_open) {
    std::vector<Param> out;
    std::size_t lo = 0, hi = 0;
    if (!tok_param_range(toks, body_open, lo, hi)) return out;
    // Split on commas at paren/angle/brace depth 0.
    std::size_t piece = lo;
    for (std::size_t i = lo; i <= hi; ++i) {
        bool at_end = i == hi;
        if (!at_end) {
            std::string_view t = toks[i].text;
            if (t == "(" || t == "<" || t == "{" || t == "[") {
                int depth = 0;
                for (; i < hi; ++i) {
                    std::string_view u = toks[i].text;
                    if (u == "(" || u == "<" || u == "{" || u == "[") ++depth;
                    else if (u == ")" || u == ">" || u == "}" || u == "]") {
                        if (--depth == 0) break;
                    } else if (u == ">>") {
                        depth -= 2;
                        if (depth <= 0) break;
                    }
                }
                continue;
            }
            if (t != ",") continue;
        }
        if (i > piece) {
            // Declaration part stops at a default-argument '='.
            std::size_t decl_end = i;
            for (std::size_t j = piece; j < i; ++j) {
                if (toks[j].text == "=") {
                    decl_end = j;
                    break;
                }
            }
            // Name: the trailing identifier of the declaration.
            if (decl_end > piece && toks[decl_end - 1].kind == TokKind::kIdent &&
                decl_end - 1 > piece) {
                Param p;
                p.name = std::string(toks[decl_end - 1].text);
                for (std::size_t j = piece; j + 1 < decl_end; ++j) {
                    if (!p.type.empty()) p.type += ' ';
                    p.type += toks[j].text;
                }
                if (p.name != "void") out.push_back(std::move(p));
            }
        }
        piece = i + 1;
    }
    return out;
}

LocalTypes collect_local_types(const FunctionBody& fn, const ClassModel* cls) {
    LocalTypes lt;
    const auto& toks = fn.file->lex.tokens;
    for (const Param& p : parse_params(toks, fn.begin)) lt.types.emplace(p.name, p.type);

    // Body locals: `Type name` where Type is an identifier/::-chain with
    // optional template args and ref/pointer qualifiers, and `name` is
    // directly followed by an initializer or terminator. Two consecutive
    // identifiers cannot be a call, so this never misreads one.
    for (std::size_t i = fn.begin + 1; i + 1 < fn.end; ++i) {
        if (toks[i].kind != TokKind::kIdent) continue;
        std::string_view after = toks[i + 1].text;
        if (after != "=" && after != ";" && after != "{" && after != "(" && after != ",")
            continue;
        // Walk the type backwards over idents, ::, <...>, &, *, const.
        std::size_t j = i;
        std::string type;
        while (j > fn.begin) {
            std::string_view p = toks[j - 1].text;
            if (p == "&" || p == "&&" || p == "*" || p == "const") {
                --j;
                continue;
            }
            if (p == ">") {  // skip balanced template args backwards
                int angle = 0;
                std::size_t k = j;
                while (k > fn.begin) {
                    --k;
                    if (toks[k].text == ">") ++angle;
                    else if (toks[k].text == "<") {
                        if (--angle == 0) break;
                    }
                }
                if (angle != 0 || k == fn.begin) break;
                j = k;
                continue;
            }
            if (toks[j - 1].kind == TokKind::kIdent || p == "::") {
                --j;
                if (j > fn.begin && toks[j - 1].text != "::" &&
                    toks[j].kind == TokKind::kIdent &&
                    (j == 0 || toks[j - 1].kind != TokKind::kIdent)) {
                    // one ident consumed; allow `ns :: Type` chains to keep going
                }
                continue;
            }
            break;
        }
        if (j == i) continue;  // no type tokens before the name
        // Reject statement keywords leading the "type".
        std::string_view head = toks[j].text;
        if (head == "return" || head == "if" || head == "while" || head == "for" ||
            head == "switch" || head == "case" || head == "else" || head == "do" ||
            head == "delete" || head == "new" || head == "throw" || head == "goto" ||
            head == "co_return" || head == "break" || head == "continue") {
            continue;
        }
        for (std::size_t k = j; k < i; ++k) {
            if (!type.empty()) type += ' ';
            type += toks[k].text;
        }
        if (!type.empty()) lt.types.emplace(std::string(toks[i].text), std::move(type));
    }

    if (cls != nullptr) {
        for (const MemberVar& m : cls->members) lt.types.emplace(m.name, m.type);
    }
    return lt;
}

namespace {

// ---------------------------------------------------------------------------
// Graph construction
// ---------------------------------------------------------------------------

bool is_function_valued_type(const std::string& type) {
    return type.find("function") != std::string::npos ||
           type.find("Function") != std::string::npos ||
           type.find("Callback") != std::string::npos;
}

// The class a flattened type string names, if any.
const ClassModel* class_of_type(const Tree& tree, const std::string& type) {
    std::size_t pos = 0;
    while (pos < type.size()) {
        std::size_t sp = type.find(' ', pos);
        std::string word = type.substr(pos, sp == std::string::npos ? sp : sp - pos);
        auto it = tree.classes.find(word);
        if (it != tree.classes.end()) return &it->second;
        if (sp == std::string::npos) break;
        pos = sp + 1;
    }
    return nullptr;
}

struct Builder {
    const Tree& tree;
    CallGraph cg;
    // name -> bodies, for free functions and per class.
    std::map<std::string, std::vector<const FunctionBody*>> free_by_name;
    std::map<const ClassModel*, std::map<std::string, std::vector<const FunctionBody*>>>
        member_by_name;

    explicit Builder(const Tree& t) : tree(t) {}

    int add_node(const FunctionBody* fn, const ClassModel* cls, std::size_t begin,
                 std::size_t end, int parent) {
        CgNode n;
        n.fn = fn;
        n.cls = cls;
        n.begin = begin;
        n.end = end;
        n.parent = parent;
        cg.nodes.push_back(std::move(n));
        return static_cast<int>(cg.nodes.size() - 1);
    }

    void add_edge(int from, int to) {
        auto& v = cg.nodes[static_cast<std::size_t>(from)].callees;
        if (std::find(v.begin(), v.end(), to) == v.end()) v.push_back(to);
    }

    void add_edges_to_bodies(int from, const std::vector<const FunctionBody*>& bodies) {
        for (const FunctionBody* b : bodies) {
            auto it = cg.primary.find(b);
            if (it != cg.primary.end()) add_edge(from, it->second);
        }
    }

    // Creates the node for [begin, end) plus sub-nodes for every immediate
    // lambda body (recursively), wiring parent -> lambda edges.
    int add_node_tree(const FunctionBody* fn, const ClassModel* cls, std::size_t begin,
                      std::size_t end, int parent) {
        int id = add_node(fn, cls, begin, end, parent);
        Cfg c = build_cfg(fn->file->lex.tokens, begin, end);
        if (c.ok) {
            for (const auto& [lo, hi] : c.lambda_bodies) {
                int child = add_node_tree(fn, cls, lo, hi, id);
                cg.nodes[static_cast<std::size_t>(id)].lambdas.push_back(child);
                add_edge(id, child);
            }
        }
        return id;
    }

    // True when [lo, hi) of `node`'s range belongs to one of its immediate
    // lambda sub-nodes (whose calls are scanned as that node).
    bool in_child_lambda(const CgNode& node, std::size_t i) const {
        for (int child : node.lambdas) {
            const CgNode& c = cg.nodes[static_cast<std::size_t>(child)];
            if (i >= c.begin && i < c.end) return true;
        }
        return false;
    }

    void resolve_calls(int id) {
        CgNode& node = cg.nodes[static_cast<std::size_t>(id)];
        const auto& toks = node.fn->file->lex.tokens;
        const ClassModel* cls = node.cls;
        LocalTypes lt = collect_local_types(*node.fn, cls);

        for (std::size_t i = node.begin; i + 1 < node.end; ++i) {
            if (in_child_lambda(node, i)) continue;
            if (toks[i].kind != TokKind::kIdent || toks[i + 1].text != "(") continue;
            std::string name(toks[i].text);

            // Qualified call: Class::f(...).
            if (i >= 2 && toks[i - 1].text == "::" && toks[i - 2].kind == TokKind::kIdent) {
                auto cit = tree.classes.find(std::string(toks[i - 2].text));
                if (cit != tree.classes.end()) {
                    auto& by_name = member_by_name[&cit->second];
                    auto fit = by_name.find(name);
                    if (fit != by_name.end()) add_edges_to_bodies(id, fit->second);
                }
                continue;
            }

            // Member call through a typed receiver: recv.f(...) / recv->f(...).
            if (i >= 2 && (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
                !(toks[i - 1].text == "->" && i >= 2 && toks[i - 2].text == "this")) {
                // Single-step receivers only; longer chains are external.
                if (toks[i - 2].kind != TokKind::kIdent) continue;
                if (i >= 3 && (toks[i - 3].text == "." || toks[i - 3].text == "->" ||
                               toks[i - 3].text == "::")) {
                    continue;
                }
                const std::string* rt = lt.find(toks[i - 2].text);
                if (rt == nullptr) continue;
                const ClassModel* rc = class_of_type(tree, *rt);
                if (rc == nullptr) continue;  // external type: assumed effect-free
                if (rc->virtual_methods.count(name) != 0) {
                    node.has_unknown_callees = true;  // dynamic dispatch
                    continue;
                }
                auto& by_name = member_by_name[rc];
                auto fit = by_name.find(name);
                if (fit != by_name.end()) add_edges_to_bodies(id, fit->second);
                continue;
            }

            if (!tok_bare(toks, i)) continue;

            // Invocation of a function-valued variable (std::function /
            // InlineFunction member, parameter or local): unknown callee.
            if (const std::string* vt = lt.find(name);
                vt != nullptr && is_function_valued_type(*vt)) {
                node.has_unknown_callees = true;
                continue;
            }

            // Bare call: member of the enclosing class, else a free function.
            if (cls != nullptr) {
                if (cls->virtual_methods.count(name) != 0) {
                    node.has_unknown_callees = true;
                    continue;
                }
                auto& by_name = member_by_name[cls];
                auto fit = by_name.find(name);
                if (fit != by_name.end()) {
                    add_edges_to_bodies(id, fit->second);
                    continue;
                }
            }
            auto fit = free_by_name.find(name);
            if (fit != free_by_name.end()) add_edges_to_bodies(id, fit->second);
        }
    }

    void tarjan() {
        const std::size_t n = cg.nodes.size();
        std::vector<int> index(n, -1), low(n, 0);
        std::vector<bool> on_stack(n, false);
        std::vector<int> stack;
        int next_index = 0;

        struct Frame {
            int v;
            std::size_t child = 0;
        };
        for (std::size_t root = 0; root < n; ++root) {
            if (index[root] != -1) continue;
            std::vector<Frame> frames{{static_cast<int>(root)}};
            while (!frames.empty()) {
                Frame& f = frames.back();
                auto v = static_cast<std::size_t>(f.v);
                if (f.child == 0) {
                    index[v] = low[v] = next_index++;
                    stack.push_back(f.v);
                    on_stack[v] = true;
                }
                if (f.child < cg.nodes[v].callees.size()) {
                    int w = cg.nodes[v].callees[f.child++];
                    auto wi = static_cast<std::size_t>(w);
                    if (index[wi] == -1) {
                        frames.push_back({w});
                    } else if (on_stack[wi]) {
                        low[v] = std::min(low[v], index[wi]);
                    }
                    continue;
                }
                if (low[v] == index[v]) {
                    std::vector<int> scc;
                    for (;;) {
                        int w = stack.back();
                        stack.pop_back();
                        on_stack[static_cast<std::size_t>(w)] = false;
                        cg.nodes[static_cast<std::size_t>(w)].scc =
                            static_cast<int>(cg.sccs.size());
                        scc.push_back(w);
                        if (w == f.v) break;
                    }
                    cg.sccs.push_back(std::move(scc));
                }
                int done = f.v;
                frames.pop_back();
                if (!frames.empty()) {
                    auto p = static_cast<std::size_t>(frames.back().v);
                    low[p] = std::min(low[p], low[static_cast<std::size_t>(done)]);
                }
            }
        }
    }

    CallGraph build() {
        // Primary nodes first so edges can target them by body pointer.
        for (const auto& [name, cls] : tree.classes) {
            for (const FunctionBody& fn : cls.functions) {
                member_by_name[&cls][fn.name].push_back(&fn);
            }
        }
        for (const FunctionBody& fn : tree.free_functions) {
            free_by_name[fn.name].push_back(&fn);
        }
        for (const auto& [name, cls] : tree.classes) {
            for (const FunctionBody& fn : cls.functions) {
                cg.primary[&fn] = add_node_tree(&fn, &cls, fn.begin, fn.end, -1);
            }
        }
        for (const FunctionBody& fn : tree.free_functions) {
            cg.primary[&fn] = add_node_tree(&fn, nullptr, fn.begin, fn.end, -1);
        }
        for (std::size_t i = 0; i < cg.nodes.size(); ++i) {
            resolve_calls(static_cast<int>(i));
        }
        tarjan();
        return std::move(cg);
    }
};

} // namespace

CallGraph build_callgraph(const Tree& tree) { return Builder(tree).build(); }

} // namespace staticcheck
