// Worklist-based forward dataflow over the per-function CFGs (cfg.hpp),
// plus the flow-sensitive rules built on it. Each rule supplies a small
// finite lattice; the solver iterates transfer/join to a fixed point and
// the rule then replays the transfer with reporting enabled against the
// solved entry states.
//
// Rules implemented here (DESIGN.md §12):
//   event-lifecycle  EventId definite-state tracking: use-after-cancel,
//                    cancel-without-reset (path-sensitive), and
//                    schedule-overwrite-of-a-live-id. Subsumes the old
//                    fixed-window adjacency heuristic.
//   timer-rearm      cancel followed (on some path, with no intervening
//                    reset) by member = schedule_* — rearm() in two calls.
//   payload-move     SharedPayload / Bytes use-after-move across branches.
//   guarded-by       every access to a `// guarded_by(mu_)` member must be
//                    dominated by an acquisition of mu_.
//   taint.*          wire-taint lattice (DESIGN.md §14.3): bytes entering
//                    through the five src/net parse() boundaries are tainted;
//                    indexing, size arguments and narrowing casts are sinks;
//                    range checks, min/max/clamp and `// sanitized(x)` are
//                    sanitizers. Flows through calls via function summaries.
//
// All flow-sensitive rules see through same-class calls with the function
// summaries of summary.hpp; a callee without a summary degrades to the old
// havoc behavior.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cfg.hpp"
#include "model.hpp"
#include "summary.hpp"

namespace staticcheck {

// Solves a forward dataflow problem to its fixed point and returns the
// state at entry of every node (nullopt = unreachable). `transfer` maps
// (node index, in-state) to the out-state; `join` merges two states and
// must be monotone for termination. A safety cap on iterations returns an
// empty vector if exceeded — callers must then skip the function entirely
// (safe degradation, never a false finding).
template <typename State, typename Transfer, typename Join>
std::vector<std::optional<State>> solve_forward(const Cfg& cfg, State entry_state,
                                                Transfer&& transfer, Join&& join) {
    const std::size_t n = cfg.nodes.size();
    std::vector<std::optional<State>> in(n);
    std::vector<bool> queued(n, false);
    std::deque<int> work;

    in[static_cast<std::size_t>(cfg.entry)] = std::move(entry_state);
    work.push_back(cfg.entry);
    queued[static_cast<std::size_t>(cfg.entry)] = true;

    std::size_t budget = (n + 1) * 64;  // transfers are monotone; this is insurance
    while (!work.empty()) {
        if (budget-- == 0) return {};
        int node = work.front();
        work.pop_front();
        queued[static_cast<std::size_t>(node)] = false;
        State out = transfer(node, *in[static_cast<std::size_t>(node)]);
        for (int s : cfg.nodes[static_cast<std::size_t>(node)].succ) {
            auto& target = in[static_cast<std::size_t>(s)];
            if (!target.has_value()) {
                target = out;
            } else {
                State merged = join(*target, out);
                if (merged == *target) continue;
                target = std::move(merged);
            }
            if (!queued[static_cast<std::size_t>(s)]) {
                work.push_back(s);
                queued[static_cast<std::size_t>(s)] = true;
            }
        }
    }
    return in;
}

// Taint facts of one function, computed by the same engine that powers the
// taint.* rules. Used by summary.cpp to build the interprocedural table.
struct TaintOutcome {
    std::uint32_t param_taints_return = 0;  // bit i: param i flows to return
    bool returns_wire_taint = false;
    std::vector<TaintSink> param_sinks;     // unsanitized param -> sink flows
};

// Runs the wire-taint dataflow over one function body. With `report` null
// only the outcome is computed (summary mode); with `report` set, flows of
// wire taint into a sink are emitted as taint.wire_to_index /
// taint.narrowing findings (rule mode).
TaintOutcome analyze_taint(const Tree& tree, const FunctionBody& fn, const ClassModel* cls,
                           const SummaryTable& summaries, std::vector<Finding>* report);

// The flow-sensitive rules. Class-scoped rules take the aggregated class
// model; payload-move also runs over a file's free functions.
void rule_event_dataflow(const ClassModel& cls, const SummaryTable& sums,
                         std::vector<Finding>& out);
void rule_guarded_by(const ClassModel& cls, const SummaryTable& sums,
                     std::vector<Finding>& out);
void rule_payload_move_class(const ClassModel& cls, const SummaryTable& sums,
                             std::vector<Finding>& out);
void rule_payload_move_free(const SourceFile& file,
                            const std::vector<FunctionBody>& free_functions,
                            const SummaryTable& sums, std::vector<Finding>& out);
void rule_wire_taint(const Tree& tree, const SourceFile& file, const SummaryTable& sums,
                     std::vector<Finding>& out);

} // namespace staticcheck
