// Worklist-based forward dataflow over the per-function CFGs (cfg.hpp),
// plus the flow-sensitive rules built on it. Each rule supplies a small
// finite lattice; the solver iterates transfer/join to a fixed point and
// the rule then replays the transfer with reporting enabled against the
// solved entry states.
//
// Rules implemented here (DESIGN.md §12):
//   event-lifecycle  EventId definite-state tracking: use-after-cancel,
//                    cancel-without-reset (path-sensitive), and
//                    schedule-overwrite-of-a-live-id. Subsumes the old
//                    fixed-window adjacency heuristic.
//   timer-rearm      cancel followed (on some path, with no intervening
//                    reset) by member = schedule_* — rearm() in two calls.
//   payload-move     SharedPayload / Bytes use-after-move across branches.
//   guarded-by       every access to a `// guarded_by(mu_)` member must be
//                    dominated by an acquisition of mu_.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "cfg.hpp"
#include "model.hpp"

namespace staticcheck {

// Solves a forward dataflow problem to its fixed point and returns the
// state at entry of every node (nullopt = unreachable). `transfer` maps
// (node index, in-state) to the out-state; `join` merges two states and
// must be monotone for termination. A safety cap on iterations returns an
// empty vector if exceeded — callers must then skip the function entirely
// (safe degradation, never a false finding).
template <typename State, typename Transfer, typename Join>
std::vector<std::optional<State>> solve_forward(const Cfg& cfg, State entry_state,
                                                Transfer&& transfer, Join&& join) {
    const std::size_t n = cfg.nodes.size();
    std::vector<std::optional<State>> in(n);
    std::vector<bool> queued(n, false);
    std::deque<int> work;

    in[static_cast<std::size_t>(cfg.entry)] = std::move(entry_state);
    work.push_back(cfg.entry);
    queued[static_cast<std::size_t>(cfg.entry)] = true;

    std::size_t budget = (n + 1) * 64;  // transfers are monotone; this is insurance
    while (!work.empty()) {
        if (budget-- == 0) return {};
        int node = work.front();
        work.pop_front();
        queued[static_cast<std::size_t>(node)] = false;
        State out = transfer(node, *in[static_cast<std::size_t>(node)]);
        for (int s : cfg.nodes[static_cast<std::size_t>(node)].succ) {
            auto& target = in[static_cast<std::size_t>(s)];
            if (!target.has_value()) {
                target = out;
            } else {
                State merged = join(*target, out);
                if (merged == *target) continue;
                target = std::move(merged);
            }
            if (!queued[static_cast<std::size_t>(s)]) {
                work.push_back(s);
                queued[static_cast<std::size_t>(s)] = true;
            }
        }
    }
    return in;
}

// The flow-sensitive rules. Class-scoped rules take the aggregated class
// model; payload-move also runs over a file's free functions.
void rule_event_dataflow(const ClassModel& cls, std::vector<Finding>& out);
void rule_guarded_by(const ClassModel& cls, std::vector<Finding>& out);
void rule_payload_move_class(const ClassModel& cls, std::vector<Finding>& out);
void rule_payload_move_free(const SourceFile& file,
                            const std::vector<FunctionBody>& free_functions,
                            std::vector<Finding>& out);

} // namespace staticcheck
