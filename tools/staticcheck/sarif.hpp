// SARIF 2.1.0 output for staticcheck findings — the minimal single-run
// shape (tool.driver + results with one physical location each) that code
// hosts and editors ingest. The writer is deterministic: findings arrive
// already sorted from run_all_rules() and the rule table is the sorted set
// of rule ids that actually fired, so identical trees produce identical
// bytes (the golden-file test in tests/staticcheck pins this).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "model.hpp"

namespace staticcheck {

void write_sarif(std::ostream& os, const std::string& root,
                 const std::vector<Finding>& findings);

} // namespace staticcheck
