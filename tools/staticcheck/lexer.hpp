// Minimal C++ lexer for the ST-TCP protocol static analyzer.
//
// Deliberately not a real C++ front end: no preprocessing, no template
// instantiation, no name lookup. It produces exactly what the rules in
// rules.cpp need — a token stream with line numbers, the quoted #include
// list, and the waiver comments — while being immune to the failure modes
// of the old regex lints (matches inside strings, comments, or macro
// bodies). Anything it cannot classify becomes a punctuation token and is
// simply never matched by a rule.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace staticcheck {

enum class TokKind {
    kIdent,    // identifiers and keywords
    kNumber,   // numeric literal (any base; suffixes folded in)
    kString,   // "..." or R"(...)" (contents dropped)
    kChar,     // '...'
    kPunct,    // operators and punctuation, longest-match (e.g. "==", "->")
};

struct Token {
    TokKind kind;
    std::string_view text;  // view into the file buffer owned by SourceFile
    int line = 0;
};

struct Include {
    std::string path;  // quoted-form include path, verbatim
    int line = 0;
};

// One `// lint:allow <rule> -- reason` waiver (line-scoped) or
// `// lint:allow-file <rule> -- reason` (whole-file). The same syntax is
// understood by tools/lint.py; DESIGN.md §10 documents it.
struct Waiver {
    std::string rule;
    int line = 0;       // line the comment sits on
    bool whole_file = false;
};

// One `// guarded_by(mutex_)` annotation: the member declared on this line
// (or the line below, comment-above-code style) may only be accessed while
// `mutex_` is held. Checked by the guarded-by dataflow rule (DESIGN.md §12).
struct Annotation {
    std::string mutex;
    int line = 0;       // line the comment sits on
};

// One `// sanitized(name)` annotation: the wire-tainted variable or field
// `name` is declared range-checked by means the taint analysis cannot see
// (table lookup, protocol-level guarantee). The taint lattice treats the
// statement on this line (or the line below) as a sanitizer for `name`.
// DESIGN.md §14 documents the spec.
struct SanitizedAnnotation {
    std::string name;
    int line = 0;       // line the comment sits on
};

struct LexResult {
    std::vector<Token> tokens;
    std::vector<Include> includes;   // quoted includes only ("our" headers)
    std::vector<Waiver> waivers;
    std::vector<Annotation> annotations;  // guarded_by(...) comments
    std::vector<SanitizedAnnotation> sanitized;  // sanitized(...) comments
};

// Lexes `text` (which must outlive the returned tokens).
[[nodiscard]] LexResult lex(std::string_view text);

} // namespace staticcheck
