#include "summary.hpp"

#include <algorithm>

#include "cfg.hpp"
#include "dataflow.hpp"

namespace staticcheck {

const FunctionSummary* SummaryTable::find(const std::string& cls,
                                          std::string_view name) const {
    std::string key = cls.empty() ? std::string(name) : cls + "::" + std::string(name);
    auto it = fns.find(key);
    return it == fns.end() ? nullptr : &it->second;
}

namespace {

std::string key_of(const FunctionBody& fn) {
    return fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;
}

// Effect dataflow state: one mask per tracked member.
using MaskState = std::vector<std::uint8_t>;

MaskState mask_join(const MaskState& a, const MaskState& b) {
    MaskState r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] | b[i];
    return r;
}

// True when toks[i] looks like a local declaration shadowing a member.
bool shadow_decl(const std::vector<Token>& toks, std::size_t i, std::size_t lo) {
    if (i <= lo || toks[i - 1].kind != TokKind::kIdent) return false;
    std::string_view p = toks[i - 1].text;
    return p != "return" && p != "co_return" && p != "co_yield" && p != "throw" &&
           p != "else" && p != "do" && p != "case" && p != "delete";
}

std::size_t opaque_end(const Cfg& cfg, std::size_t i) {
    std::size_t end = i + 1;
    for (const auto& [lo, hi] : cfg.lambda_bodies) {
        if (i >= lo && i < hi) end = std::max(end, hi);
    }
    return end;
}

struct EffCtx {
    const ClassModel* cls = nullptr;
    const std::vector<Token>& toks;
    const std::vector<std::string>& members;
    const std::set<std::string>& self_fns;
    const SummaryTable& work;
    const Cfg* cfg = nullptr;
    bool is_event = true;  // event semantics vs payload semantics

    [[nodiscard]] int member_index(std::string_view name) const {
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (members[i] == name) return static_cast<int>(i);
        }
        return -1;
    }
};

// Applies a callee effect mask to the current abstract mask: the Unchanged
// bit lets the caller's states flow through; the remaining bits are the
// states the callee may leave the member in.
std::uint8_t apply_effect(std::uint8_t cur, std::uint8_t effect, std::uint8_t unchanged_bit) {
    std::uint8_t states = static_cast<std::uint8_t>(effect & ~unchanged_bit);
    return static_cast<std::uint8_t>(((effect & unchanged_bit) != 0 ? cur : 0) | states);
}

MaskState eff_transfer(const EffCtx& ctx, int node, MaskState st) {
    const CfgNode& nd = ctx.cfg->nodes[static_cast<std::size_t>(node)];
    const auto& toks = ctx.toks;
    for (std::size_t i = nd.lo; i < nd.hi; ++i) {
        if (ctx.cfg->opaque(i)) {
            i = opaque_end(*ctx.cfg, i) - 1;
            continue;
        }
        const Token& tk = toks[i];
        if (tk.kind != TokKind::kIdent) continue;

        if (ctx.is_event && (tk.text == "cancel" || tk.text == "rearm") && i + 1 < nd.hi &&
            toks[i + 1].text == "(") {
            std::size_t close = tok_match_paren(toks, i + 1, nd.hi);
            for (std::size_t j = i + 2; j < close; ++j) {
                if (toks[j].kind != TokKind::kIdent || !tok_bare(toks, j)) continue;
                int mi = ctx.member_index(toks[j].text);
                if (mi < 0) continue;
                // Cancelled folds to Other at publication (see summary.hpp);
                // rearm is live-or-unchanged, likewise Other.
                st[static_cast<std::size_t>(mi)] = kEffOther;
                break;
            }
            i = close;
            continue;
        }

        if (!ctx.is_event && tk.text == "move" && i + 3 < nd.hi && toks[i + 1].text == "(" &&
            toks[i + 2].kind == TokKind::kIdent && toks[i + 3].text == ")" &&
            tok_bare(toks, i + 2)) {
            int mi = ctx.member_index(toks[i + 2].text);
            if (mi >= 0) {
                st[static_cast<std::size_t>(mi)] = kPmEffMoved;
                i += 3;
                continue;
            }
        }

        int mi = tok_bare(toks, i) ? ctx.member_index(tk.text) : -1;
        if (mi >= 0) {
            if (shadow_decl(toks, i, nd.lo)) continue;
            auto& v = st[static_cast<std::size_t>(mi)];
            if (i + 1 < nd.hi && toks[i + 1].text == "=") {
                if (ctx.is_event) {
                    std::uint8_t next = kEffOther;
                    int paren = 0;
                    for (std::size_t j = i + 2; j < nd.hi; ++j) {
                        if (ctx.cfg->opaque(j)) {
                            j = opaque_end(*ctx.cfg, j) - 1;
                            continue;
                        }
                        std::string_view t = toks[j].text;
                        if (t == "(") ++paren;
                        else if (t == ")") --paren;
                        else if (t == ";" && paren == 0) break;
                        else if (t == "schedule_at" || t == "schedule_after") next = kEffLive;
                        else if (t == "kInvalidEventId" && next == kEffOther)
                            next = kEffInvalid;
                    }
                    v = next;
                } else {
                    v = kPmEffValid;
                }
                continue;
            }
            if (!ctx.is_event && i + 2 < nd.hi && toks[i + 1].text == "." &&
                (toks[i + 2].text == "reset" || toks[i + 2].text == "clear" ||
                 toks[i + 2].text == "assign")) {
                v = kPmEffValid;
                i += 2;
                continue;
            }
            continue;
        }

        // Same-class call: apply the callee's published effect per member.
        if (i + 1 < nd.hi && toks[i + 1].text == "(" && tok_bare(toks, i) &&
            ctx.self_fns.count(std::string(tk.text)) != 0 && ctx.cls != nullptr) {
            const FunctionSummary* s = ctx.work.find(ctx.cls->name, tk.text);
            const std::uint8_t unchanged = ctx.is_event ? kEffUnchanged : kPmEffUnchanged;
            const std::uint8_t havoc = ctx.is_event ? kEffHavoc : kPmEffHavoc;
            for (std::size_t m = 0; m < ctx.members.size(); ++m) {
                std::uint8_t eff = havoc;
                if (s != nullptr) {
                    eff = ctx.is_event ? s->event_effect(ctx.members[m])
                                       : s->payload_effect(ctx.members[m]);
                }
                st[m] = apply_effect(st[m], eff, unchanged);
            }
        }
    }
    return st;
}

struct Computer {
    const Tree& tree;
    const CallGraph& cg;
    SummaryTable work;  // live table the fixpoint reads and republishes into
    std::map<const FunctionBody*, FunctionSummary> by_body;
    std::map<std::string, std::vector<const FunctionBody*>> bodies_by_key;

    explicit Computer(const Tree& t, const CallGraph& g) : tree(t), cg(g) {}

    // Bare occurrences of `name` inside any lambda sub-range of `node`
    // (transitively): the lambda may run at any later time, so the host's
    // published effect for that member must be havoc.
    bool touched_in_lambda(const CgNode& node, const std::string& name) const {
        std::vector<int> stack(node.lambdas.begin(), node.lambdas.end());
        const auto& toks = node.fn->file->lex.tokens;
        while (!stack.empty()) {
            const CgNode& lam = cg.nodes[static_cast<std::size_t>(stack.back())];
            stack.pop_back();
            for (int child : lam.lambdas) stack.push_back(child);
            for (std::size_t i = lam.begin; i < lam.end; ++i) {
                if (toks[i].kind == TokKind::kIdent && toks[i].text == name &&
                    tok_bare(toks, i)) {
                    return true;
                }
            }
        }
        return false;
    }

    // True when any node of this function tree makes indirect/virtual calls.
    bool any_unknown_callees(const CgNode& node) const {
        if (node.has_unknown_callees) return true;
        for (int child : node.lambdas) {
            if (any_unknown_callees(cg.nodes[static_cast<std::size_t>(child)])) return true;
        }
        return false;
    }

    void effect_pass(const CgNode& node, bool is_event, FunctionSummary& out) {
        const ClassModel* cls = node.cls;
        if (cls == nullptr) return;  // free functions cannot touch members
        std::vector<std::string> members;
        for (const MemberVar& m : cls->members) {
            if (is_event) {
                if (m.type.find("EventId") != std::string::npos) members.push_back(m.name);
            } else {
                if (m.type.find("SharedPayload") != std::string::npos ||
                    m.type.find("Bytes") != std::string::npos) {
                    members.push_back(m.name);
                }
            }
        }
        if (members.empty()) return;
        auto& dest = is_event ? out.event : out.payload;
        const std::uint8_t havoc = is_event ? kEffHavoc : kPmEffHavoc;
        const std::uint8_t unchanged = is_event ? kEffUnchanged : kPmEffUnchanged;

        auto havoc_all = [&] {
            for (const std::string& m : members) dest[m] = havoc;
        };
        if (node.has_unknown_callees) {
            havoc_all();
            return;
        }
        const auto& toks = node.fn->file->lex.tokens;
        Cfg cfg = build_cfg(toks, node.begin, node.end);
        if (!cfg.ok) {
            havoc_all();
            return;
        }
        std::set<std::string> self_fns;
        for (const FunctionBody& f : cls->functions) self_fns.insert(f.name);
        EffCtx ctx{cls, toks, members, self_fns, work, &cfg, is_event};
        MaskState entry(members.size(), unchanged);
        auto in = solve_forward(
            cfg, entry, [&](int n, const MaskState& s) { return eff_transfer(ctx, n, s); },
            mask_join);
        if (in.empty()) {
            havoc_all();
            return;
        }
        const auto& exit_state = in[static_cast<std::size_t>(cfg.exit)];
        for (std::size_t m = 0; m < members.size(); ++m) {
            // Unreachable exit: the function never returns; identity is fine.
            std::uint8_t mask = exit_state.has_value() ? (*exit_state)[m] : unchanged;
            if (touched_in_lambda(node, members[m]) ||
                any_unknown_callees(node) /* lambda-side indirect calls */) {
                mask = havoc;
            }
            if (mask != unchanged) dest[members[m]] = mask;
        }
    }

    void lock_pass(const CgNode& node, FunctionSummary& out) {
        const ClassModel* cls = node.cls;
        if (cls == nullptr) return;
        std::set<std::string> mutexes;
        for (const MemberVar& m : cls->members) {
            if (m.type.find("mutex") != std::string::npos) mutexes.insert(m.name);
        }
        if (mutexes.empty()) return;
        std::set<std::string> self_fns;
        for (const FunctionBody& f : cls->functions) self_fns.insert(f.name);

        // Order-insensitive net delta: A = everything locked here or in a
        // callee, R = everything unlocked likewise; publish A-R / R-A.
        std::set<std::string> acquired, released;
        const auto& toks = node.fn->file->lex.tokens;
        auto in_lambda = [&](std::size_t i) {
            for (int child : node.lambdas) {
                const CgNode& c = cg.nodes[static_cast<std::size_t>(child)];
                if (i >= c.begin && i < c.end) return true;
            }
            return false;
        };
        for (std::size_t i = node.begin; i + 2 < node.end; ++i) {
            if (in_lambda(i)) continue;
            if (toks[i].kind != TokKind::kIdent || !tok_bare(toks, i)) continue;
            std::string name(toks[i].text);
            if (toks[i + 1].text == "." &&
                (toks[i + 2].text == "lock" || toks[i + 2].text == "unlock") &&
                mutexes.count(name) != 0) {
                (toks[i + 2].text == "lock" ? acquired : released).insert(name);
                continue;
            }
            if (toks[i + 1].text == "(" && self_fns.count(name) != 0) {
                if (const FunctionSummary* s = work.find(cls->name, name)) {
                    acquired.insert(s->lock_acquires.begin(), s->lock_acquires.end());
                    released.insert(s->lock_releases.begin(), s->lock_releases.end());
                }
            }
        }
        for (const std::string& m : acquired) {
            if (released.count(m) == 0) out.lock_acquires.insert(m);
        }
        for (const std::string& m : released) {
            if (acquired.count(m) == 0) out.lock_releases.insert(m);
        }
    }

    FunctionSummary compute(const CgNode& node) {
        FunctionSummary out;
        effect_pass(node, /*is_event=*/true, out);
        effect_pass(node, /*is_event=*/false, out);
        lock_pass(node, out);
        TaintOutcome t = analyze_taint(tree, *node.fn, node.cls, work, nullptr);
        out.param_taints_return = t.param_taints_return;
        out.returns_wire_taint = t.returns_wire_taint;
        out.param_sinks = std::move(t.param_sinks);
        return out;
    }

    // Joins overload summaries into the published per-key entry.
    void publish(const std::string& key) {
        FunctionSummary joined;
        bool first = true;
        for (const FunctionBody* b : bodies_by_key[key]) {
            const FunctionSummary& s = by_body[b];
            if (first) {
                joined = s;
                first = false;
                continue;
            }
            for (const auto& [m, eff] : s.event) {
                auto it = joined.event.find(m);
                joined.event[m] = static_cast<std::uint8_t>(
                    (it == joined.event.end() ? kEffUnchanged : it->second) | eff);
            }
            for (auto& [m, eff] : joined.event) {
                if (s.event.count(m) == 0)
                    eff = static_cast<std::uint8_t>(eff | kEffUnchanged);
            }
            for (const auto& [m, eff] : s.payload) {
                auto it = joined.payload.find(m);
                joined.payload[m] = static_cast<std::uint8_t>(
                    (it == joined.payload.end() ? kPmEffUnchanged : it->second) | eff);
            }
            for (auto& [m, eff] : joined.payload) {
                if (s.payload.count(m) == 0)
                    eff = static_cast<std::uint8_t>(eff | kPmEffUnchanged);
            }
            // Definite acquisitions intersect; possible releases union.
            std::set<std::string> acq;
            std::set_intersection(joined.lock_acquires.begin(), joined.lock_acquires.end(),
                                  s.lock_acquires.begin(), s.lock_acquires.end(),
                                  std::inserter(acq, acq.begin()));
            joined.lock_acquires = std::move(acq);
            joined.lock_releases.insert(s.lock_releases.begin(), s.lock_releases.end());
            joined.param_taints_return |= s.param_taints_return;
            joined.returns_wire_taint = joined.returns_wire_taint || s.returns_wire_taint;
            joined.param_sinks.insert(joined.param_sinks.end(), s.param_sinks.begin(),
                                      s.param_sinks.end());
        }
        work.fns[key] = std::move(joined);
    }

    SummaryTable run() {
        for (const auto& [body, id] : cg.primary) {
            std::string key = key_of(*body);
            bodies_by_key[key].push_back(body);
            by_body.emplace(body, FunctionSummary{});
            work.fns.emplace(key, FunctionSummary{});  // identity to start
        }
        for (const std::vector<int>& scc : cg.sccs) {
            // Primary nodes of this SCC (lambda sub-nodes are folded into
            // their hosts by compute()).
            std::vector<const CgNode*> prim;
            for (int id : scc) {
                const CgNode& n = cg.nodes[static_cast<std::size_t>(id)];
                if (n.parent == -1) prim.push_back(&n);
            }
            if (prim.empty()) continue;
            const std::size_t cap = 3 * prim.size() + 4;
            bool stable = false;
            for (std::size_t pass = 0; pass < cap && !stable; ++pass) {
                stable = true;
                for (const CgNode* n : prim) {
                    FunctionSummary s = compute(*n);
                    FunctionSummary& cur = by_body[n->fn];
                    if (!(s.event == cur.event && s.payload == cur.payload &&
                          s.lock_acquires == cur.lock_acquires &&
                          s.lock_releases == cur.lock_releases &&
                          s.param_taints_return == cur.param_taints_return &&
                          s.returns_wire_taint == cur.returns_wire_taint &&
                          s.param_sinks.size() == cur.param_sinks.size())) {
                        stable = false;
                    }
                    cur = std::move(s);
                    publish(key_of(*n->fn));
                }
            }
            if (!stable) {
                // Fixpoint cap hit inside a recursive cycle: fall back to
                // havoc for effects and to no-claims for taint/locks.
                for (const CgNode* n : prim) {
                    FunctionSummary h;
                    if (n->cls != nullptr) {
                        for (const MemberVar& m : n->cls->members) {
                            if (m.type.find("EventId") != std::string::npos)
                                h.event[m.name] = kEffHavoc;
                            if (m.type.find("SharedPayload") != std::string::npos ||
                                m.type.find("Bytes") != std::string::npos)
                                h.payload[m.name] = kPmEffHavoc;
                        }
                    }
                    by_body[n->fn] = std::move(h);
                    publish(key_of(*n->fn));
                }
            }
        }
        return std::move(work);
    }
};

} // namespace

SummaryTable build_summaries(const Tree& tree, const CallGraph& cg) {
    return Computer(tree, cg).run();
}

} // namespace staticcheck
