#include "lexer.hpp"

#include <array>
#include <cctype>

namespace staticcheck {

namespace {

bool is_ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character operators, longest first so "<<=" beats "<<" beats "<".
constexpr std::array<std::string_view, 21> kMultiPunct = {
    "<<=", ">>=", "...", "->*", "==", "!=", "<=", ">=", "->", "::",
    "+=",  "-=",  "*=",  "/=",  "&&", "||", "<<", ">>", "++", "--", "|=",
};

// Parses waiver comments out of a single comment's text.
void scan_comment_for_waivers(std::string_view comment, int line,
                              std::vector<Waiver>& out) {
    constexpr std::string_view kTag = "lint:allow";
    std::size_t pos = comment.find(kTag);
    if (pos == std::string_view::npos) return;
    std::size_t p = pos + kTag.size();
    bool whole_file = false;
    constexpr std::string_view kFileSuffix = "-file";
    if (comment.substr(p).starts_with(kFileSuffix)) {
        whole_file = true;
        p += kFileSuffix.size();
    }
    while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
    std::size_t start = p;
    while (p < comment.size() &&
           (is_ident_char(comment[p]) || comment[p] == '-' || comment[p] == '.')) {
        ++p;
    }
    if (p == start) return;
    out.push_back({std::string(comment.substr(start, p - start)), line, whole_file});
}

// Parses `guarded_by(mutex_)` annotations out of a comment's text.
void scan_comment_for_annotations(std::string_view comment, int line,
                                  std::vector<Annotation>& out) {
    constexpr std::string_view kTag = "guarded_by";
    std::size_t pos = comment.find(kTag);
    if (pos == std::string_view::npos) return;
    std::size_t p = pos + kTag.size();
    while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
    if (p >= comment.size() || comment[p] != '(') return;
    ++p;
    std::size_t start = p;
    while (p < comment.size() && is_ident_char(comment[p])) ++p;
    if (p == start || p >= comment.size() || comment[p] != ')') return;
    out.push_back({std::string(comment.substr(start, p - start)), line});
}

// Parses `sanitized(name)` annotations out of a comment's text.
void scan_comment_for_sanitized(std::string_view comment, int line,
                                std::vector<SanitizedAnnotation>& out) {
    constexpr std::string_view kTag = "sanitized";
    std::size_t pos = comment.find(kTag);
    if (pos == std::string_view::npos) return;
    std::size_t p = pos + kTag.size();
    while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
    if (p >= comment.size() || comment[p] != '(') return;
    ++p;
    std::size_t start = p;
    while (p < comment.size() && (is_ident_char(comment[p]) || comment[p] == '.')) ++p;
    if (p == start || p >= comment.size() || comment[p] != ')') return;
    out.push_back({std::string(comment.substr(start, p - start)), line});
}

} // namespace

LexResult lex(std::string_view text) {
    LexResult r;
    std::size_t i = 0;
    int line = 1;
    const std::size_t n = text.size();

    auto push = [&](TokKind kind, std::size_t begin, std::size_t end) {
        r.tokens.push_back({kind, text.substr(begin, end - begin), line});
    };

    while (i < n) {
        char c = text[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Line comment (waiver carrier).
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            std::size_t end = text.find('\n', i);
            if (end == std::string_view::npos) end = n;
            scan_comment_for_waivers(text.substr(i, end - i), line, r.waivers);
            scan_comment_for_annotations(text.substr(i, end - i), line, r.annotations);
            scan_comment_for_sanitized(text.substr(i, end - i), line, r.sanitized);
            i = end;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            std::size_t end = text.find("*/", i + 2);
            if (end == std::string_view::npos) end = n;
            std::string_view body = text.substr(i, end - i);
            scan_comment_for_waivers(body, line, r.waivers);
            scan_comment_for_annotations(body, line, r.annotations);
            scan_comment_for_sanitized(body, line, r.sanitized);
            for (char bc : body) {
                if (bc == '\n') ++line;
            }
            i = (end == n) ? n : end + 2;
            continue;
        }

        // Preprocessor directive: consume the logical line (with backslash
        // continuations); record quoted includes.
        if (c == '#') {
            std::size_t begin = i;
            std::size_t j = i;
            while (j < n) {
                std::size_t eol = text.find('\n', j);
                if (eol == std::string_view::npos) {
                    j = n;
                    break;
                }
                // Continuation?
                std::size_t back = eol;
                while (back > j && std::isspace(static_cast<unsigned char>(text[back - 1])) &&
                       text[back - 1] != '\n') {
                    --back;
                }
                if (back > j && text[back - 1] == '\\') {
                    ++line;
                    j = eol + 1;
                    continue;
                }
                j = eol;
                break;
            }
            std::string_view directive = text.substr(begin, j - begin);
            std::size_t inc = directive.find("include");
            if (inc != std::string_view::npos) {
                std::size_t q1 = directive.find('"', inc);
                if (q1 != std::string_view::npos) {
                    std::size_t q2 = directive.find('"', q1 + 1);
                    if (q2 != std::string_view::npos) {
                        r.includes.push_back(
                            {std::string(directive.substr(q1 + 1, q2 - q1 - 1)), line});
                    }
                }
            }
            i = j;
            continue;
        }

        // Raw string literal.
        if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
            std::size_t paren = text.find('(', i + 2);
            if (paren != std::string_view::npos) {
                std::string delim(text.substr(i + 2, paren - (i + 2)));
                std::string closer = ")" + delim + "\"";
                std::size_t end = text.find(closer, paren + 1);
                if (end == std::string_view::npos) end = n;
                else end += closer.size();
                for (std::size_t k = i; k < end && k < n; ++k) {
                    if (text[k] == '\n') ++line;
                }
                push(TokKind::kString, i, std::min(end, n));
                i = std::min(end, n);
                continue;
            }
        }

        // String / char literal with escape handling.
        if (c == '"' || c == '\'') {
            std::size_t begin = i;
            char quote = c;
            ++i;
            while (i < n && text[i] != quote) {
                if (text[i] == '\\' && i + 1 < n) ++i;
                if (text[i] == '\n') ++line;
                ++i;
            }
            if (i < n) ++i;  // closing quote
            push(quote == '"' ? TokKind::kString : TokKind::kChar, begin, i);
            continue;
        }

        if (is_ident_start(c)) {
            std::size_t begin = i;
            while (i < n && is_ident_char(text[i])) ++i;
            push(TokKind::kIdent, begin, i);
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t begin = i;
            while (i < n && (is_ident_char(text[i]) || text[i] == '.' ||
                             ((text[i] == '+' || text[i] == '-') && i > begin &&
                              (text[i - 1] == 'e' || text[i - 1] == 'E' ||
                               text[i - 1] == 'p' || text[i - 1] == 'P')))) {
                ++i;
            }
            push(TokKind::kNumber, begin, i);
            continue;
        }

        // Punctuation: longest match against the multi-char table.
        for (std::string_view op : kMultiPunct) {
            if (text.substr(i, op.size()) == op) {
                push(TokKind::kPunct, i, i + op.size());
                i += op.size();
                goto next;
            }
        }
        push(TokKind::kPunct, i, i + 1);
        ++i;
    next:;
    }
    return r;
}

} // namespace staticcheck
