#include "rules.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <thread>

#include "callgraph.hpp"
#include "dataflow.hpp"
#include "summary.hpp"

namespace staticcheck {

namespace {

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

// Rules report unconditionally; the waiver table is applied centrally in
// run_all_rules() so used waivers can be tracked (and unused ones reported
// as waiver.stale).
void report(std::vector<Finding>& out, const SourceFile& file, int line,
            const char* rule, std::string message) {
    out.push_back({file.rel, line, rule, std::move(message), &file});
}

// ---------------------------------------------------------------------------
// Rule: layer-dag
//
// The include-layering DAG (DESIGN.md §10.1). A file in layer L may only
// include headers from layers of rank <= rank(L). One sanctioned class of
// back-edges: check/*.cpp (the invariant auditors' implementations) may
// include net/tcp/sttcp headers — the auditors *observe* the protocol
// layers, but their headers stay at rank 2 so protocol headers can include
// them without a cycle.
// ---------------------------------------------------------------------------

const std::map<std::string, int>& layer_ranks() {
    static const std::map<std::string, int> kRanks = {
        {"util", 0}, {"sim", 1},    {"check", 2},   {"net", 3},  {"tcp", 4},
        {"sttcp", 5}, {"app", 6},   {"harness", 7}, {"fuzz", 8}, {"conform", 9},
    };
    return kRanks;
}

void rule_layer_dag(const Tree& tree, std::vector<Finding>& out) {
    const auto& ranks = layer_ranks();
    for (const SourceFile& f : tree.files) {
        auto self = ranks.find(f.layer);
        if (self == ranks.end()) continue;  // unlayered file (e.g. fixtures root)
        for (const Include& inc : f.lex.includes) {
            std::string inc_layer = inc.path.substr(0, inc.path.find('/'));
            auto target = ranks.find(inc_layer);
            if (target == ranks.end()) continue;  // not one of ours
            if (target->second <= self->second) continue;
            // Sanctioned observer back-edge: check implementation files.
            if (f.layer == "check" && !f.is_header && target->second <= ranks.at("sttcp")) {
                continue;
            }
            report(out, f, inc.line, "layer-dag",
                   "layer '" + f.layer + "' (rank " + std::to_string(self->second) +
                       ") must not include '" + inc.path + "' from layer '" + inc_layer +
                       "' (rank " + std::to_string(target->second) +
                       "); see the layering DAG in DESIGN.md §10.1");
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: include-cycle
//
// Quoted includes that resolve inside the tree must form a DAG. Each cycle
// is reported once, at the include that closes it.
// ---------------------------------------------------------------------------

void rule_include_cycle(const Tree& tree, std::vector<Finding>& out) {
    std::map<std::string, const SourceFile*> by_rel;
    for (const SourceFile& f : tree.files) by_rel[f.rel] = &f;

    enum Color { kWhite, kGray, kBlack };
    std::map<const SourceFile*, Color> color;

    // Iterative DFS carrying the in-progress path so the cycle can be named.
    struct Edge {
        const SourceFile* from;
        const Include* inc;
        const SourceFile* to;
    };
    for (const SourceFile& start : tree.files) {
        if (color[&start] != kWhite) continue;
        std::vector<std::pair<const SourceFile*, std::size_t>> stack;  // (file, next include idx)
        std::vector<Edge> path;
        color[&start] = kGray;
        stack.push_back({&start, 0});
        while (!stack.empty()) {
            auto& [file, idx] = stack.back();
            if (idx >= file->lex.includes.size()) {
                color[file] = kBlack;
                stack.pop_back();
                if (!path.empty()) path.pop_back();
                continue;
            }
            const Include& inc = file->lex.includes[idx++];
            auto it = by_rel.find(inc.path);
            if (it == by_rel.end()) continue;  // system / generated header
            const SourceFile* next = it->second;
            if (color[next] == kGray) {
                // Found a cycle: name it from the path.
                std::string chain = next->rel;
                bool in_cycle = false;
                for (const Edge& e : path) {
                    if (e.from == next) in_cycle = true;
                    if (in_cycle) chain += " -> " + e.to->rel;
                }
                chain += " -> " + next->rel;
                report(out, *file, inc.line, "include-cycle",
                       "include cycle: " + chain);
                continue;
            }
            if (color[next] != kWhite) continue;
            color[next] = kGray;
            path.push_back({file, &inc, next});
            stack.push_back({next, 0});
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: state-funnel
//
// Every class holding a `TcpState state_` member must route all writes
// through its transition() funnel (which consults tcp/state_machine.hpp and
// carries the one sanctioned waiver). Any other `state_ = ...` in a member
// function is a bypass of both the compile-time legality matrix and the
// runtime auditor hook.
// ---------------------------------------------------------------------------

void rule_state_funnel(const ClassModel& cls, std::vector<Finding>& out) {
    const MemberVar* state = cls.find_member("state_");
    if (state == nullptr || state->type.find("TcpState") == std::string::npos) return;
    for (const FunctionBody& fn : cls.functions) {
        const auto& toks = fn.file->lex.tokens;
        for (std::size_t i = fn.begin; i + 1 < fn.end; ++i) {
            if (toks[i].text != "state_" || toks[i + 1].text != "=") continue;
            // Skip declarations of locals shadowing the member
            // (`TcpState state_ = ...` — type token right before).
            if (i > 0 && toks[i - 1].kind == TokKind::kIdent) continue;
            report(out, *fn.file, toks[i].line, "state-funnel",
                   "direct write to " + cls.name + "::state_ in " + fn.name +
                       "(); all transitions must go through the transition() "
                       "funnel so tcp/state_machine.hpp and the invariant "
                       "auditor see them");
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: event-lifecycle — destructor coverage
//
// Every class with sim::EventId members needs a user-provided destructor
// that cancels each of them, directly or through member functions it calls
// (e.g. ~X() { stop(); }): pending timers fire [this]-capturing callbacks
// into freed memory otherwise. The per-path cancel/reset/overwrite checks
// that used to sit next to this (the fixed three-statement window) now run
// flow-sensitively in dataflow.cpp (rule_event_dataflow).
// ---------------------------------------------------------------------------

// Member names of `sim::EventId` type in the class.
std::set<std::string> event_members(const ClassModel& cls) {
    std::set<std::string> out;
    for (const MemberVar& m : cls.members) {
        if (m.type.find("EventId") != std::string::npos) out.insert(m.name);
    }
    return out;
}

// Members of `events` cancelled in [begin, end): idents inside the argument
// list of a call whose callee token is `cancel`.
std::set<std::string> cancels_in_range(const std::vector<Token>& toks, std::size_t begin,
                                       std::size_t end, const std::set<std::string>& events) {
    std::set<std::string> out;
    for (std::size_t i = begin; i + 1 < end; ++i) {
        if (toks[i].text != "cancel" || toks[i + 1].text != "(") continue;
        int depth = 0;
        for (std::size_t j = i + 1; j < end; ++j) {
            if (toks[j].text == "(") ++depth;
            else if (toks[j].text == ")") {
                if (--depth == 0) break;
            } else if (toks[j].kind == TokKind::kIdent && events.count(std::string(toks[j].text))) {
                out.insert(std::string(toks[j].text));
            }
        }
    }
    return out;
}

// Names of the class's own member functions called from [begin, end)
// (unqualified calls, plus `this->f(...)`).
std::set<std::string> self_calls(const ClassModel& cls, const std::vector<Token>& toks,
                                 std::size_t begin, std::size_t end) {
    std::set<std::string> names;
    for (const FunctionBody& f : cls.functions) names.insert(f.name);
    std::set<std::string> out;
    for (std::size_t i = begin; i + 1 < end; ++i) {
        if (toks[i].kind != TokKind::kIdent || toks[i + 1].text != "(") continue;
        if (!names.count(std::string(toks[i].text))) continue;
        if (i > begin) {
            std::string_view prev = toks[i - 1].text;
            if (prev == "." || prev == "::") continue;  // some other object's method
            if (prev == "->" && (i < 2 || toks[i - 2].text != "this")) continue;
        }
        out.insert(std::string(toks[i].text));
    }
    return out;
}

void rule_event_dtor_coverage(const ClassModel& cls, std::vector<Finding>& out) {
    std::set<std::string> events = event_members(cls);
    if (events.empty()) return;

    const std::string dtor_name = "~" + cls.name;
    const FunctionBody* dtor = nullptr;
    for (const FunctionBody& fn : cls.functions) {
        if (fn.name == dtor_name) dtor = &fn;
    }
    if (dtor == nullptr) {
        if (cls.declared_in != nullptr) {
            report(out, *cls.declared_in, cls.line, "event-lifecycle",
                   cls.name + " has sim::EventId members (" + *events.begin() +
                       ", ...) but no destructor body that cancels them; pending "
                       "timers would fire [this]-capturing callbacks after free");
        }
        return;
    }
    // Transitive closure of self-calls starting at the destructor.
    std::set<std::string> visited{dtor->name};
    std::vector<const FunctionBody*> work{dtor};
    std::set<std::string> cancelled;
    while (!work.empty()) {
        const FunctionBody* fn = work.back();
        work.pop_back();
        const auto& toks = fn->file->lex.tokens;
        auto c = cancels_in_range(toks, fn->begin, fn->end, events);
        cancelled.insert(c.begin(), c.end());
        for (const std::string& callee : self_calls(cls, toks, fn->begin, fn->end)) {
            if (!visited.insert(callee).second) continue;
            for (const FunctionBody& g : cls.functions) {
                if (g.name == callee) work.push_back(&g);
            }
        }
    }
    for (const std::string& m : events) {
        if (cancelled.count(m)) continue;
        report(out, *dtor->file, dtor->line, "event-lifecycle",
               dtor_name + "() does not cancel " + cls.name + "::" + m +
                   " (directly or via a called member function); a pending "
                   "timer outliving the object is a use-after-free");
    }
}

// ---------------------------------------------------------------------------
// Rule: this-capture
//
// A class whose member functions register [this]-capturing callbacks must
// provide a teardown path — detach_hooks()/detach()/stop()/shutdown() or a
// user destructor — so the registration cannot outlive the object.
// Exemption: the callback receiver is a value member of the class (it dies
// with us, so the capture cannot dangle).
// ---------------------------------------------------------------------------

bool has_teardown(const ClassModel& cls) {
    if (cls.has_user_dtor_decl && !cls.dtor_defaulted) return true;
    for (const FunctionBody& fn : cls.functions) {
        if (fn.name == "detach_hooks" || fn.name == "detach" || fn.name == "stop" ||
            fn.name == "shutdown") {
            return true;
        }
    }
    return false;
}

void rule_this_capture(const ClassModel& cls, std::vector<Finding>& out) {
    if (has_teardown(cls)) return;
    for (const FunctionBody& fn : cls.functions) {
        const auto& toks = fn.file->lex.tokens;
        for (std::size_t i = fn.begin; i + 2 < fn.end; ++i) {
            if (toks[i].text != "[" || toks[i + 1].text != "this") continue;
            if (toks[i + 2].text != "]" && toks[i + 2].text != ",") continue;
            // Receiver exemption: `member_.method([this]...)` where
            // member_ is a value member — its registrations die with us.
            if (i >= fn.begin + 4 && toks[i - 1].text == "(" &&
                toks[i - 2].kind == TokKind::kIdent && toks[i - 3].text == ".") {
                const MemberVar* recv = cls.find_member(toks[i - 4].text);
                if (recv != nullptr && recv->is_value) continue;
            }
            report(out, *fn.file, toks[i].line, "this-capture",
                   cls.name + "::" + fn.name + "() registers a [this]-capturing "
                   "callback but " + cls.name + " has no teardown "
                   "(detach_hooks()/stop()/destructor) to unregister it; the "
                   "callback dangles if the object dies first");
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: seq-raw
//
// Raw arithmetic on unwrapped sequence numbers. `Seq32::raw()` exists for
// serialization and diagnostics; the moment its result meets + or - the
// code is doing modular sequence math outside the type that defines it
// (util/seq32.hpp is the one implementation, and is exempt by path).
// Replaces the old regex `seq-raw` lint in tools/lint.py, which could not
// see token boundaries and needed a pile of waivers.
// ---------------------------------------------------------------------------

void rule_seq_raw(const SourceFile& f, std::vector<Finding>& out) {
    if (f.rel.rfind("util/seq32", 0) == 0) return;  // the implementation
    const auto& toks = f.lex.tokens;
    for (std::size_t i = 2; i + 2 < toks.size(); ++i) {
        if (toks[i].text != "raw" || toks[i - 1].text != "." ||
            toks[i + 1].text != "(" || toks[i + 2].text != ")") {
            continue;
        }
        const int line = toks[i].line;
        // `x.raw() + ...` / `x.raw() - ...`
        if (i + 3 < toks.size() &&
            (toks[i + 3].text == "+" || toks[i + 3].text == "-")) {
            report(out, f, line, "seq-raw",
                   "arithmetic on .raw() sequence bits; use util::Seq32 "
                   "operators or util::seq_delta()");
            continue;
        }
        // `... + x.raw()` — walk back over the `a.b.raw` chain.
        std::size_t s = i - 1;  // the '.'
        while (s >= 2 && toks[s].text == "." && toks[s - 1].kind == TokKind::kIdent) {
            if (s < 3 || toks[s - 2].text != ".") {
                s = s - 1;  // chain starts at the ident
                break;
            }
            s -= 2;
        }
        if (s >= 1 && (toks[s - 1].text == "+" || toks[s - 1].text == "-")) {
            report(out, f, line, "seq-raw",
                   "arithmetic on .raw() sequence bits; use util::Seq32 "
                   "operators or util::seq_delta()");
            continue;
        }
        // `static_cast<...int32...>(x.raw())` — a raw serial-number delta
        // hand-rolled at the call site.
        if (s >= 2 && toks[s - 1].text == "(" && toks[s - 2].text == ">") {
            bool cast = false, int32 = false;
            for (std::size_t back = s >= 10 ? s - 10 : 0; back + 1 < s; ++back) {
                if (toks[back].text == "static_cast") cast = true;
                if (toks[back].text.find("int32") != std::string_view::npos) int32 = true;
            }
            if (cast && int32) {
                report(out, f, line, "seq-raw",
                       "static_cast of .raw() to a signed delta; use "
                       "util::seq_delta()");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: payload-alloc (migrated from tools/lint.py)
//
// Frame payloads are ref-counted (util::SharedPayload) and recycled
// (util::BufferPool). A naked new[]/delete[] of a byte buffer — or any
// malloc-family call — anywhere else bypasses both the zero-copy path and
// the pool accounting. Token-based now, so string literals and comments
// can no longer false-positive the way the old regex did.
// ---------------------------------------------------------------------------

bool is_byte_type_tok(std::string_view t) {
    return t == "uint8_t" || t == "byte" || t == "char";
}

void rule_payload_alloc(const SourceFile& f, std::vector<Finding>& out) {
    if (f.rel.rfind("util/shared_payload", 0) == 0 ||
        f.rel.rfind("util/buffer_pool", 0) == 0) {
        return;  // the two sanctioned owners of raw byte buffers
    }
    const auto& toks = f.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        std::string_view t = toks[i].text;
        if (t == "new") {
            // new uint8_t[n] / new std::byte[n] / new unsigned char[n]
            bool byte_type = false;
            for (std::size_t j = i + 1; j < toks.size() && j < i + 6; ++j) {
                if (is_byte_type_tok(toks[j].text)) byte_type = true;
                if (toks[j].text == "[" && byte_type) {
                    report(out, f, toks[i].line, "payload-alloc",
                           "raw byte-buffer new[]; payloads are ref-counted — "
                           "allocate through util::SharedPayload / util::BufferPool "
                           "so the zero-copy path and pool accounting see them");
                    break;
                }
                if (toks[j].kind != TokKind::kIdent && toks[j].text != "::" &&
                    toks[j].text != "[") {
                    break;
                }
            }
            continue;
        }
        if (t == "delete" && i + 2 < toks.size() && toks[i + 1].text == "[" &&
            toks[i + 2].text == "]") {
            report(out, f, toks[i].line, "payload-alloc",
                   "delete[] of a raw buffer; payload buffers are owned by "
                   "util::SharedPayload / util::BufferPool, never deleted by hand");
            continue;
        }
        if ((t == "malloc" || t == "calloc" || t == "realloc" || t == "free") &&
            i + 1 < toks.size() && toks[i + 1].text == "(" &&
            (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->"))) {
            report(out, f, toks[i].line, "payload-alloc",
                   std::string(t) + "() call; C allocation bypasses the "
                   "SharedPayload/BufferPool accounting — use the pool types");
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: impairment-api (migrated from tools/lint.py)
//
// Network adversity flows through the per-direction pipeline
// (net/impairment.hpp): Link::set_impairments*, set_loss_toward,
// schedule_blackout*. The legacy LinkConfig::loss_probability field is a
// compatibility wrapper owned by net/link.* — code that pokes it directly
// bypasses the pipeline's stats, determinism guarantees, and per-direction
// addressing.
// ---------------------------------------------------------------------------

void rule_impairment_api(const SourceFile& f, std::vector<Finding>& out) {
    if (f.rel.rfind("net/link", 0) == 0 || f.rel.rfind("net/impairment", 0) == 0) {
        return;  // the compatibility wrapper's owners
    }
    const auto& toks = f.lex.tokens;
    for (const Token& tk : toks) {
        if (tk.kind != TokKind::kIdent || tk.text != "loss_probability") continue;
        report(out, f, tk.line, "impairment-api",
               "direct use of the legacy loss_probability field; configure "
               "adversity through the impairment pipeline (set_impairments / "
               "set_loss_toward / schedule_blackout) so stats and per-direction "
               "addressing stay coherent");
    }
}

// ---------------------------------------------------------------------------
// Waiver filtering + waiver.stale
// ---------------------------------------------------------------------------

// Every rule id staticcheck can fire. A waiver naming any other rule is
// not ours to judge and is never reported stale. `waiver.stale` waivers
// are likewise exempt from the staleness check (no second-order reports).
const std::set<std::string>& known_rules() {
    static const std::set<std::string> kRules = {
        "layer-dag",      "include-cycle",       "state-funnel",
        "event-lifecycle", "timer-rearm",        "this-capture",
        "seq-raw",        "guarded-by",          "payload-move",
        "payload-alloc",  "impairment-api",      "taint.wire_to_index",
        "taint.narrowing",
    };
    return kRules;
}

// True if some waiver in f.file covers the finding; every covering waiver
// (line-scoped and whole-file alike) is marked used.
bool filter_and_mark(const Finding& f, std::set<const Waiver*>& used) {
    if (f.file == nullptr) return false;
    bool waived = false;
    for (const Waiver& w : f.file->lex.waivers) {
        if (w.rule != f.rule) continue;
        if (w.whole_file || w.line == f.line || w.line + 1 == f.line) {
            used.insert(&w);
            waived = true;
        }
    }
    return waived;
}

} // namespace

std::vector<Finding> run_all_rules(const Tree& tree, int jobs) {
    // Interprocedural context, built serially up front: the program-wide
    // call graph and the bottom-up function summary table every flow rule
    // reads through. Both are immutable once built, so the parallel units
    // below share them freely.
    const CallGraph cg = build_callgraph(tree);
    const SummaryTable sums = build_summaries(tree, cg);

    // Work units: one global unit (whole-tree graph rules), one per class,
    // one per file. Each unit writes into its own findings vector, so the
    // merge order — and therefore the final output — is independent of
    // which thread ran what.
    std::vector<const ClassModel*> classes;
    classes.reserve(tree.classes.size());
    for (const auto& [name, cls] : tree.classes) classes.push_back(&cls);

    std::vector<std::function<void(std::vector<Finding>&)>> units;
    units.push_back([&tree](std::vector<Finding>& out) {
        rule_layer_dag(tree, out);
        rule_include_cycle(tree, out);
    });
    for (const ClassModel* cls : classes) {
        units.push_back([cls, &sums](std::vector<Finding>& out) {
            rule_state_funnel(*cls, out);
            rule_event_dtor_coverage(*cls, out);
            rule_event_dataflow(*cls, sums, out);
            rule_guarded_by(*cls, sums, out);
            rule_this_capture(*cls, out);
            rule_payload_move_class(*cls, sums, out);
        });
    }
    for (const SourceFile& f : tree.files) {
        units.push_back([&tree, &f, &sums](std::vector<Finding>& out) {
            rule_seq_raw(f, out);
            rule_payload_alloc(f, out);
            rule_impairment_api(f, out);
            rule_payload_move_free(f, tree.free_functions, sums, out);
            rule_wire_taint(tree, f, sums, out);
        });
    }

    std::vector<std::vector<Finding>> results(units.size());
    if (jobs <= 1) {
        for (std::size_t i = 0; i < units.size(); ++i) units[i](results[i]);
    } else {
        std::atomic<std::size_t> next{0};
        auto worker = [&units, &results, &next] {
            for (;;) {
                std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= units.size()) return;
                units[i](results[i]);
            }
        };
        std::vector<std::thread> pool;
        const int n = std::min<int>(jobs, static_cast<int>(units.size()));
        pool.reserve(static_cast<std::size_t>(n));
        for (int t = 0; t < n; ++t) pool.emplace_back(worker);
        for (std::thread& th : pool) th.join();
    }

    std::vector<Finding> merged;
    for (std::vector<Finding>& r : results) {
        for (Finding& f : r) merged.push_back(std::move(f));
    }

    // Central waiver filter (serial — determinism is free here).
    std::set<const Waiver*> used;
    std::vector<Finding> out;
    for (Finding& f : merged) {
        if (!filter_and_mark(f, used)) out.push_back(std::move(f));
    }

    // waiver.stale: a waiver for one of our rules that suppressed nothing
    // is dead weight — and worse, it reads as "this site has a known
    // finding" when it does not. Stale findings themselves honor waivers
    // (`// lint:allow waiver.stale -- kept for an upcoming change`).
    for (const SourceFile& f : tree.files) {
        for (const Waiver& w : f.lex.waivers) {
            if (known_rules().count(w.rule) == 0) continue;
            if (used.count(&w) != 0) continue;
            Finding stale{f.rel, w.line, "waiver.stale",
                          "waiver for '" + w.rule + "' never suppresses a finding" +
                              (w.whole_file ? " anywhere in this file" : " on this line") +
                              "; delete it (or fix the rule name if it was a typo)",
                          &f};
            if (!filter_and_mark(stale, used)) out.push_back(std::move(stale));
        }
    }

    // Message is the final sort key so that when two different messages land
    // on the same (file, line, rule) — e.g. a use-after-cancel seen from two
    // CFG nodes — the survivor of the dedupe below is deterministic, keeping
    // output byte-identical across --jobs values.
    std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
        if (a.rel != b.rel) return a.rel < b.rel;
        if (a.line != b.line) return a.line < b.line;
        if (a.rule != b.rule) return a.rule < b.rule;
        return a.message < b.message;
    });
    // One finding per (file, line, rule) — e.g. `a.raw() - b.raw()` matches
    // the adjacency pattern on both operands.
    out.erase(std::unique(out.begin(), out.end(),
                          [](const Finding& a, const Finding& b) {
                              return a.rel == b.rel && a.line == b.line && a.rule == b.rule;
                          }),
              out.end());
    return out;
}

} // namespace staticcheck
