// Bottom-up function summaries over the call graph (DESIGN.md §14.2).
//
// A summary is what a caller may assume about one call without reanalyzing
// the callee's body:
//   - event / payload effect masks: per member of the callee's class, the
//     set of abstract states the member may hold when the callee returns.
//     kEffUnchanged means the entry state flows through untouched. A callee
//     whose body cannot be modelled — or that makes indirect/virtual calls —
//     publishes havoc (every bit), which makes the caller drop all definite
//     facts, exactly like the pre-interprocedural behavior.
//   - lock-set deltas: mutexes a call definitely acquires (manual .lock()
//     with no matching unlock) and mutexes it may release.
//   - taint transfer: which parameters flow into the return value, whether
//     the return value carries wire taint on its own, and which parameters
//     reach an indexing/size/narrowing sink unsanitized inside the callee
//     (reported at the caller when a wire-tainted argument is passed).
//
// Summaries are computed one SCC at a time in bottom-up order; inside a
// cycle they iterate to a fixpoint (the lattices are small and the
// transfers monotone toward havoc), with an iteration cap that falls back
// to havoc-all — a missed fact, never a false one.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "callgraph.hpp"

namespace staticcheck {

// Event effect mask: abstract EventId states at callee exit. `Cancelled`
// at callee exit is deliberately folded to kEffOther when published — the
// callee's own exit-state check already reports a cancel-without-reset, so
// callers must not re-derive findings from it.
constexpr std::uint8_t kEffLive = 1, kEffInvalid = 2, kEffOther = 4, kEffUnchanged = 8;
constexpr std::uint8_t kEffHavoc = kEffLive | kEffInvalid | kEffOther | kEffUnchanged;

// Payload effect mask: abstract SharedPayload/Bytes states at callee exit.
constexpr std::uint8_t kPmEffValid = 1, kPmEffMoved = 2, kPmEffOther = 4,
                       kPmEffUnchanged = 8;
constexpr std::uint8_t kPmEffHavoc = kPmEffValid | kPmEffMoved | kPmEffOther | kPmEffUnchanged;

// Taint origin bits: bit i (< 16) = "parameter i", kTaintWire = "the wire".
constexpr std::uint32_t kTaintWire = 1u << 31;

// One unsanitized flow from a parameter to a sink inside a function.
struct TaintSink {
    std::uint32_t params = 0;  // origin bits (parameter positions)
    int line = 0;              // sink line inside the callee
    const char* kind = "";     // "index", "size argument", "narrowing cast"
};

struct FunctionSummary {
    // member name -> effect mask; a member absent from the map is Unchanged.
    std::map<std::string, std::uint8_t> event;
    std::map<std::string, std::uint8_t> payload;
    std::set<std::string> lock_acquires;  // definitely held after the call
    std::set<std::string> lock_releases;  // may be released by the call
    std::uint32_t param_taints_return = 0;  // bit i: param i flows to return
    bool returns_wire_taint = false;        // return carries wire taint per se
    std::vector<TaintSink> param_sinks;     // param -> sink flows, unsanitized

    [[nodiscard]] std::uint8_t event_effect(const std::string& member) const {
        auto it = event.find(member);
        return it == event.end() ? kEffUnchanged : it->second;
    }
    [[nodiscard]] std::uint8_t payload_effect(const std::string& member) const {
        auto it = payload.find(member);
        return it == payload.end() ? kPmEffUnchanged : it->second;
    }
};

struct SummaryTable {
    // Keyed "Class::name" (members) or "name" (free functions); overloads
    // are joined into one conservative summary.
    std::map<std::string, FunctionSummary> fns;

    // Summary for a call to `name` on an object of class `cls` ("" = free
    // function). Null when the callee is not modelled — callers must havoc.
    [[nodiscard]] const FunctionSummary* find(const std::string& cls,
                                              std::string_view name) const;
};

[[nodiscard]] SummaryTable build_summaries(const Tree& tree, const CallGraph& cg);

} // namespace staticcheck
