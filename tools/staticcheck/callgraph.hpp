// Program-wide call graph over the structural model (DESIGN.md §14.1).
//
// Nodes are function bodies plus one sub-node per lambda body (the lambda
// analyzed as a function of its own, reachable from its enclosing node).
// Edges are the call sites the resolver can prove:
//   - bare / `this->` calls to a member of the enclosing class,
//   - bare calls to a free function defined in the tree,
//   - `recv.f(...)` / `recv->f(...)` where recv's declared type (parameter,
//     local or member declaration) names a class the model knows,
//   - `Class::f(...)` qualified calls.
// Everything dynamic — calls through std::function / InlineFunction values,
// calls to methods declared `virtual` — sets has_unknown_callees instead;
// summaries for such nodes degrade to havoc (a missed fact, never a false
// one). Calls to code outside the tree (std::, system headers) are assumed
// unable to touch the caller's members and add no edge.
//
// SCCs are condensed with Tarjan's algorithm; `sccs` lists them bottom-up
// (callees before callers) so summary computation can run in one sweep with
// a fixpoint only inside each cycle.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "model.hpp"

namespace staticcheck {

// --- shared token-scan helpers (also used by dataflow.cpp) -----------------

// True when toks[i] is a bare reference (not `obj.x`, `ns::x` or `p->x`;
// `this->x` counts as bare).
[[nodiscard]] bool tok_bare(const std::vector<Token>& toks, std::size_t i);

// Index of the ")" matching toks[open] (== "("), clamped to hi.
[[nodiscard]] std::size_t tok_match_paren(const std::vector<Token>& toks, std::size_t open,
                                          std::size_t hi);

// Token range of a function's parameter list, found by walking back from
// the body's '{' over trailing qualifiers to the signature's ')'.
[[nodiscard]] bool tok_param_range(const std::vector<Token>& toks, std::size_t body_open,
                                   std::size_t& lo, std::size_t& hi);

// One parameter of a function signature: declared name and flattened type.
struct Param {
    std::string name;
    std::string type;
};

// Parses the parameter list of the function whose body opens at body_open.
[[nodiscard]] std::vector<Param> parse_params(const std::vector<Token>& toks,
                                              std::size_t body_open);

// Declared types visible inside one function: parameters, body locals with
// a recognizable `Type name` declaration, and the enclosing class's member
// variables. Used for receiver-type call resolution and wire-type tracking.
struct LocalTypes {
    std::map<std::string, std::string> types;  // var name -> flattened type

    [[nodiscard]] const std::string* find(std::string_view name) const {
        auto it = types.find(std::string(name));
        return it == types.end() ? nullptr : &it->second;
    }
};

[[nodiscard]] LocalTypes collect_local_types(const FunctionBody& fn, const ClassModel* cls);

// --- the graph -------------------------------------------------------------

struct CgNode {
    const FunctionBody* fn = nullptr;  // owning function (lambdas: the host)
    const ClassModel* cls = nullptr;   // enclosing class, null for free fns
    std::size_t begin = 0, end = 0;    // analyzed token range (body or lambda)
    int parent = -1;                   // lambda sub-node: index of host node
    std::vector<int> callees;          // resolved call edges (deduped)
    std::vector<int> lambdas;          // sub-nodes for immediate lambda bodies
    bool has_unknown_callees = false;  // indirect / virtual call seen
    int scc = -1;                      // SCC id after condensation
};

struct CallGraph {
    std::vector<CgNode> nodes;
    std::map<const FunctionBody*, int> primary;  // body -> its function node
    // SCCs in bottom-up (reverse topological) order: every edge out of a
    // node in sccs[i] targets a node in some sccs[j] with j <= i.
    std::vector<std::vector<int>> sccs;
};

[[nodiscard]] CallGraph build_callgraph(const Tree& tree);

} // namespace staticcheck
