// staticcheck — the ST-TCP protocol static analyzer.
//
//   staticcheck [--root DIR] [--json FILE] [--sarif FILE] [--jobs N]
//               [--baseline FILE [--write-baseline]]
//
// Analyzes every *.hpp/*.cpp under DIR (default: src/ next to the binary's
// CWD) and prints one `path:line: [rule] message` per finding. Exit status
// is 1 when there are findings, 2 on usage/IO errors, 0 when clean.
//
// Rules (DESIGN.md §10, §12, §14): layer-dag, include-cycle, state-funnel,
// event-lifecycle, timer-rearm, this-capture, seq-raw, guarded-by,
// payload-move, payload-alloc, impairment-api, taint.wire_to_index,
// taint.narrowing, waiver.stale. Waive a finding with
// `// lint:allow <rule> -- reason` on or above the line, or
// `// lint:allow-file <rule> -- reason` anywhere in the file.
//
// --jobs N runs the rules on N worker threads; output is byte-identical to
// a serial run (findings are merged, filtered and sorted in one place).
//
// --baseline FILE suppresses findings recorded in FILE (matched on file,
// rule and message — line numbers in the baseline are informational, so
// unrelated edits don't un-suppress anything). --write-baseline rewrites
// FILE with the current findings and exits 0.
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <thread>

#include "model.hpp"
#include "rules.hpp"
#include "sarif.hpp"

namespace {

// Identity of a finding for baseline matching: file, rule and message but
// not the line, so a baseline survives unrelated edits above the finding.
std::string baseline_key(const std::string& rel, const std::string& rule,
                         const std::string& message) {
    return rel + '\x1f' + rule + '\x1f' + message;
}

// Parses one `rel:line: [rule] message` baseline line into its key.
// Unparseable lines (blank, comments) yield an empty string.
std::string parse_baseline_line(const std::string& line) {
    std::size_t open = line.find(": [");
    if (open == std::string::npos) return "";
    std::size_t close = line.find("] ", open + 3);
    if (close == std::string::npos) return "";
    std::size_t line_sep = line.rfind(':', open - 1);
    if (line_sep == std::string::npos) return "";
    return baseline_key(line.substr(0, line_sep), line.substr(open + 3, close - open - 3),
                        line.substr(close + 2));
}

// Minimal JSON string escape for paths and messages.
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

} // namespace

int main(int argc, char** argv) {
    std::string root = "src";
    std::string json_path;
    std::string sarif_path;
    std::string baseline_path;
    bool write_baseline = false;
    int jobs = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarif_path = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--write-baseline") {
            write_baseline = true;
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
            if (jobs < 0) {
                std::cerr << "staticcheck: --jobs must be >= 0\n";
                return 2;
            }
            if (jobs == 0) {  // 0 = auto
                jobs = static_cast<int>(std::thread::hardware_concurrency());
                if (jobs < 1) jobs = 1;
            }
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: staticcheck [--root DIR] [--json FILE] [--sarif FILE] "
                         "[--jobs N] [--baseline FILE [--write-baseline]]\n";
            return 0;
        } else {
            std::cerr << "staticcheck: unknown argument '" << arg << "'\n";
            return 2;
        }
    }
    if (write_baseline && baseline_path.empty()) {
        std::cerr << "staticcheck: --write-baseline requires --baseline FILE\n";
        return 2;
    }

    staticcheck::Tree tree;
    if (!staticcheck::load_tree(root, tree)) return 2;

    std::vector<staticcheck::Finding> findings = staticcheck::run_all_rules(tree, jobs);

    if (write_baseline) {
        std::ofstream bf(baseline_path);
        if (!bf) {
            std::cerr << "staticcheck: cannot write " << baseline_path << "\n";
            return 2;
        }
        for (const staticcheck::Finding& f : findings) {
            bf << f.rel << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
        }
        std::cerr << "staticcheck: wrote " << findings.size() << " finding(s) to baseline "
                  << baseline_path << "\n";
        return 0;
    }

    std::size_t suppressed = 0;
    if (!baseline_path.empty()) {
        std::ifstream bf(baseline_path);
        if (!bf) {
            std::cerr << "staticcheck: cannot read baseline " << baseline_path << "\n";
            return 2;
        }
        std::set<std::string> known;
        std::string line;
        while (std::getline(bf, line)) {
            std::string key = parse_baseline_line(line);
            if (!key.empty()) known.insert(key);
        }
        std::erase_if(findings, [&](const staticcheck::Finding& f) {
            bool hit = known.count(baseline_key(f.rel, f.rule, f.message)) != 0;
            suppressed += hit ? 1 : 0;
            return hit;
        });
    }

    for (const staticcheck::Finding& f : findings) {
        std::cout << f.rel << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
    }

    if (!json_path.empty()) {
        std::ofstream js(json_path);
        if (!js) {
            std::cerr << "staticcheck: cannot write " << json_path << "\n";
            return 2;
        }
        js << "{\n  \"root\": \"" << json_escape(root) << "\",\n  \"files\": "
           << tree.files.size() << ",\n  \"findings\": [";
        for (std::size_t i = 0; i < findings.size(); ++i) {
            const auto& f = findings[i];
            js << (i == 0 ? "" : ",") << "\n    {\"file\": \"" << json_escape(f.rel)
               << "\", \"line\": " << f.line << ", \"rule\": \"" << json_escape(f.rule)
               << "\", \"message\": \"" << json_escape(f.message) << "\"}";
        }
        js << (findings.empty() ? "" : "\n  ") << "]\n}\n";
    }

    if (!sarif_path.empty()) {
        std::ofstream sf(sarif_path);
        if (!sf) {
            std::cerr << "staticcheck: cannot write " << sarif_path << "\n";
            return 2;
        }
        staticcheck::write_sarif(sf, root, findings);
    }

    if (suppressed != 0) {
        std::cerr << "staticcheck: " << suppressed << " baselined finding(s) suppressed\n";
    }
    if (findings.empty()) {
        std::cerr << "staticcheck: " << tree.files.size() << " files clean\n";
        return 0;
    }
    std::cerr << "staticcheck: " << findings.size() << " finding(s) in " << tree.files.size()
              << " files\n";
    return 1;
}
