// staticcheck — the ST-TCP protocol static analyzer.
//
//   staticcheck [--root DIR] [--json FILE] [--sarif FILE] [--jobs N]
//
// Analyzes every *.hpp/*.cpp under DIR (default: src/ next to the binary's
// CWD) and prints one `path:line: [rule] message` per finding. Exit status
// is 1 when there are findings, 2 on usage/IO errors, 0 when clean.
//
// Rules (DESIGN.md §10, §12): layer-dag, include-cycle, state-funnel,
// event-lifecycle, timer-rearm, this-capture, seq-raw, guarded-by,
// payload-move, waiver.stale. Waive a finding with
// `// lint:allow <rule> -- reason` on or above the line, or
// `// lint:allow-file <rule> -- reason` anywhere in the file.
//
// --jobs N runs the rules on N worker threads; output is byte-identical to
// a serial run (findings are merged, filtered and sorted in one place).
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "model.hpp"
#include "rules.hpp"
#include "sarif.hpp"

namespace {

// Minimal JSON string escape for paths and messages.
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

} // namespace

int main(int argc, char** argv) {
    std::string root = "src";
    std::string json_path;
    std::string sarif_path;
    int jobs = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarif_path = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
            if (jobs < 0) {
                std::cerr << "staticcheck: --jobs must be >= 0\n";
                return 2;
            }
            if (jobs == 0) {  // 0 = auto
                jobs = static_cast<int>(std::thread::hardware_concurrency());
                if (jobs < 1) jobs = 1;
            }
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: staticcheck [--root DIR] [--json FILE] [--sarif FILE] "
                         "[--jobs N]\n";
            return 0;
        } else {
            std::cerr << "staticcheck: unknown argument '" << arg << "'\n";
            return 2;
        }
    }

    staticcheck::Tree tree;
    if (!staticcheck::load_tree(root, tree)) return 2;

    std::vector<staticcheck::Finding> findings = staticcheck::run_all_rules(tree, jobs);
    for (const staticcheck::Finding& f : findings) {
        std::cout << f.rel << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
    }

    if (!json_path.empty()) {
        std::ofstream js(json_path);
        if (!js) {
            std::cerr << "staticcheck: cannot write " << json_path << "\n";
            return 2;
        }
        js << "{\n  \"root\": \"" << json_escape(root) << "\",\n  \"files\": "
           << tree.files.size() << ",\n  \"findings\": [";
        for (std::size_t i = 0; i < findings.size(); ++i) {
            const auto& f = findings[i];
            js << (i == 0 ? "" : ",") << "\n    {\"file\": \"" << json_escape(f.rel)
               << "\", \"line\": " << f.line << ", \"rule\": \"" << json_escape(f.rule)
               << "\", \"message\": \"" << json_escape(f.message) << "\"}";
        }
        js << (findings.empty() ? "" : "\n  ") << "]\n}\n";
    }

    if (!sarif_path.empty()) {
        std::ofstream sf(sarif_path);
        if (!sf) {
            std::cerr << "staticcheck: cannot write " << sarif_path << "\n";
            return 2;
        }
        staticcheck::write_sarif(sf, root, findings);
    }

    if (findings.empty()) {
        std::cerr << "staticcheck: " << tree.files.size() << " files clean\n";
        return 0;
    }
    std::cerr << "staticcheck: " << findings.size() << " finding(s) in " << tree.files.size()
              << " files\n";
    return 1;
}
