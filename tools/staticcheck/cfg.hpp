// Per-function control-flow graphs for the flow-sensitive rules.
//
// The builder understands the statement subset this codebase is written in:
// plain statements, blocks, if/else chains, while/do/for (including
// range-for), switch with case/default labels and fall-through, return,
// break and continue. Lambda bodies are opaque to the enclosing function's
// CFG (their tokens are skipped when a rule scans a node's range) and are
// surfaced as sub-ranges so each can be analyzed as a function of its own.
//
// Safe-degradation contract (DESIGN.md §12.4): any construct the builder
// does not model — goto, labels, try/catch, unbalanced tokens — marks the
// whole CFG not-ok, and every dataflow rule must then skip the function.
// A skipped function can cause a missed finding, never a false one.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "lexer.hpp"

namespace staticcheck {

// One CFG node: a token range (a statement or a condition) plus successor
// edges. Synthetic nodes (entry, exit, scope-exit) have an empty range.
struct CfgNode {
    std::size_t lo = 0, hi = 0;  // token range [lo, hi); lo == hi if synthetic
    std::vector<int> succ;
    int scope_id = 0;            // innermost brace scope the node executes in
    int closes_scope = -1;       // >= 0: synthetic exit of that brace scope
};

struct Cfg {
    bool ok = false;             // false => body not modellable, skip it
    int entry = -1;
    int exit = -1;
    std::vector<CfgNode> nodes;
    // Immediate lambda bodies inside this function: token ranges from their
    // '{' to one past the matching '}'. Opaque to this CFG; build_cfg each
    // to analyze the lambda as its own function.
    std::vector<std::pair<std::size_t, std::size_t>> lambda_bodies;

    // True when token index i lies inside an opaque lambda body.
    [[nodiscard]] bool opaque(std::size_t i) const {
        for (const auto& [lo, hi] : lambda_bodies) {
            if (i >= lo && i < hi) return true;
        }
        return false;
    }
};

// Builds the CFG for a brace-enclosed body: toks[open] must be "{" and
// `end` one past its matching "}" (FunctionBody::begin/end).
[[nodiscard]] Cfg build_cfg(const std::vector<Token>& toks, std::size_t open, std::size_t end);

} // namespace staticcheck
