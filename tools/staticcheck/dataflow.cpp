#include "dataflow.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace staticcheck {

namespace {

// ---------------------------------------------------------------------------
// Shared scanning helpers
// ---------------------------------------------------------------------------

// True when toks[i] is a bare reference (not `obj.x`, `ns::x` or `p->x`;
// `this->x` counts as bare).
bool bare(const std::vector<Token>& toks, std::size_t i) {
    if (i == 0) return true;
    std::string_view p = toks[i - 1].text;
    if (p == "." || p == "::") return false;
    if (p == "->") return i >= 2 && toks[i - 2].text == "this";
    return true;
}

// Index of the ")" matching toks[open] (== "("), clamped to hi.
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open, std::size_t hi) {
    int depth = 0;
    for (std::size_t i = open; i < hi; ++i) {
        if (toks[i].text == "(") ++depth;
        else if (toks[i].text == ")") {
            if (--depth == 0) return i;
        }
    }
    return hi;
}

// One past the opaque lambda body containing i (i must satisfy cfg.opaque).
std::size_t opaque_end(const Cfg& cfg, std::size_t i) {
    std::size_t end = i + 1;
    for (const auto& [lo, hi] : cfg.lambda_bodies) {
        if (i >= lo && i < hi) end = std::max(end, hi);
    }
    return end;
}

// Builds the CFG of [begin, end) plus — transitively — the CFGs of every
// nested lambda body, each analyzed as a function of its own. A body the
// builder cannot model is silently dropped (safe degradation).
std::vector<Cfg> collect_cfgs(const std::vector<Token>& toks, std::size_t begin,
                              std::size_t end) {
    std::vector<Cfg> out;
    std::vector<std::pair<std::size_t, std::size_t>> work{{begin, end}};
    while (!work.empty()) {
        auto [b, e] = work.back();
        work.pop_back();
        Cfg c = build_cfg(toks, b, e);
        if (!c.ok) continue;
        for (const auto& lb : c.lambda_bodies) work.push_back(lb);
        out.push_back(std::move(c));
    }
    return out;
}

// True when toks[i] looks like the name in a local declaration shadowing a
// member (`EventId timer_ = ...`) rather than an expression read: the
// previous token is an identifier that is not one of the keywords that
// legally precede an expression.
bool looks_like_decl(const std::vector<Token>& toks, std::size_t i, std::size_t lo) {
    if (i <= lo || toks[i - 1].kind != TokKind::kIdent) return false;
    std::string_view p = toks[i - 1].text;
    return p != "return" && p != "co_return" && p != "co_yield" && p != "throw" &&
           p != "else" && p != "do" && p != "case" && p != "delete";
}

void add(std::vector<Finding>& out, const SourceFile& file, int line, const char* rule,
         std::string message) {
    out.push_back({file.rel, line, rule, std::move(message), &file});
}

// Names of the class's own member functions (used to havoc state across
// self-calls: a helper may reassign any member, so definite facts die).
std::set<std::string> self_function_names(const ClassModel& cls) {
    std::set<std::string> names;
    for (const FunctionBody& f : cls.functions) names.insert(f.name);
    return names;
}

// ---------------------------------------------------------------------------
// event-lifecycle / timer-rearm: EventId definite-state tracking
//
// Lattice per EventId member: the powerset of {Live, Cancelled, Invalid,
// Other} (join = union), so "definitely cancelled" (== {Cancelled}) and
// "possibly cancelled" (Cancelled ∈ set) are both expressible. The
// cancel_line rides along (min on join) to report at the cancel site.
// ---------------------------------------------------------------------------

constexpr std::uint8_t kEvLive = 1, kEvCancelled = 2, kEvInvalid = 4, kEvOther = 8;

struct EvVal {
    std::uint8_t may = kEvOther;
    int cancel_line = 0;
    bool operator==(const EvVal&) const = default;
};
using EvState = std::vector<EvVal>;

EvState ev_join(const EvState& a, const EvState& b) {
    EvState r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        r[i].may = a[i].may | b[i].may;
        int la = a[i].cancel_line, lb = b[i].cancel_line;
        r[i].cancel_line = (la == 0) ? lb : (lb == 0 ? la : std::min(la, lb));
    }
    return r;
}

struct EvCtx {
    const ClassModel& cls;
    const SourceFile& file;
    const std::vector<Token>& toks;
    const Cfg* cfg = nullptr;
    std::vector<std::string> members;  // index order fixes the state layout
    std::set<std::string> self_fns;
    std::string fn_name;
    std::vector<Finding>* report = nullptr;  // non-null during the report pass

    [[nodiscard]] int member_index(std::string_view name) const {
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (members[i] == name) return static_cast<int>(i);
        }
        return -1;
    }
};

EvState ev_transfer(const EvCtx& ctx, int node, EvState st) {
    const CfgNode& nd = ctx.cfg->nodes[static_cast<std::size_t>(node)];
    const auto& toks = ctx.toks;
    for (std::size_t i = nd.lo; i < nd.hi; ++i) {
        if (ctx.cfg->opaque(i)) {
            i = opaque_end(*ctx.cfg, i) - 1;
            continue;
        }
        const Token& tk = toks[i];
        if (tk.kind != TokKind::kIdent) continue;

        // q.cancel(member_): the member becomes definitely-Cancelled.
        if ((tk.text == "cancel" || tk.text == "rearm") && i + 1 < nd.hi &&
            toks[i + 1].text == "(") {
            const bool is_cancel = tk.text == "cancel";
            std::size_t close = match_paren(toks, i + 1, nd.hi);
            for (std::size_t j = i + 2; j < close; ++j) {
                if (ctx.cfg->opaque(j)) {
                    j = opaque_end(*ctx.cfg, j) - 1;
                    continue;
                }
                if (toks[j].kind != TokKind::kIdent || !bare(toks, j)) continue;
                int mi = ctx.member_index(toks[j].text);
                if (mi < 0) continue;
                EvVal& v = st[static_cast<std::size_t>(mi)];
                if (v.may == kEvCancelled && ctx.report != nullptr) {
                    add(*ctx.report, ctx.file, toks[j].line, "event-lifecycle",
                        ctx.cls.name + "::" + ctx.members[static_cast<std::size_t>(mi)] +
                            " is already cancelled here (cancel at line " +
                            std::to_string(v.cancel_line) + " never reset it); " +
                            (is_cancel ? "this cancel" : "this rearm") +
                            " of the stale id is a silent no-op once the slot is reused");
                }
                if (is_cancel) {
                    v = {kEvCancelled, tk.line};
                } else {
                    v = {kEvOther, 0};  // rearm: live on success, unchanged on failure
                }
                break;  // first event-member argument is the target
            }
            i = close;
            continue;
        }

        int mi = bare(toks, i) ? ctx.member_index(tk.text) : -1;
        if (mi >= 0) {
            // `EventId timer_ = ...` style shadow declaration: skip.
            if (looks_like_decl(toks, i, nd.lo)) continue;
            EvVal& v = st[static_cast<std::size_t>(mi)];
            if (i + 1 < nd.hi && toks[i + 1].text == "=") {
                // Classify the right-hand side up to the statement's ';'.
                std::uint8_t next_may = kEvOther;
                int paren = 0;
                for (std::size_t j = i + 2; j < nd.hi; ++j) {
                    if (ctx.cfg->opaque(j)) {
                        j = opaque_end(*ctx.cfg, j) - 1;
                        continue;
                    }
                    std::string_view t = toks[j].text;
                    if (t == "(") ++paren;
                    else if (t == ")") --paren;
                    else if (t == ";" && paren == 0) break;
                    else if (t == "schedule_at" || t == "schedule_after") next_may = kEvLive;
                    else if (t == "kInvalidEventId" && next_may == kEvOther)
                        next_may = kEvInvalid;
                }
                if (ctx.report != nullptr && next_may == kEvLive) {
                    if (v.may == kEvCancelled) {
                        add(*ctx.report, ctx.file, v.cancel_line, "timer-rearm",
                            ctx.cls.name + "::" + ctx.fn_name + "() cancels " +
                                ctx.members[static_cast<std::size_t>(mi)] +
                                " and reschedules it with no other write in between "
                                "(line " + std::to_string(tk.line) + "); use rearm(" +
                                ctx.members[static_cast<std::size_t>(mi)] +
                                ", when) — one call, no slot churn, identical FIFO "
                                "placement");
                    } else if (v.may == kEvLive) {
                        add(*ctx.report, ctx.file, tk.line, "event-lifecycle",
                            ctx.cls.name + "::" + ctx.fn_name + "() overwrites " +
                                ctx.members[static_cast<std::size_t>(mi)] +
                                " while it still holds a live id; the armed event "
                                "leaks and its callback will still fire — cancel or "
                                "rearm first");
                    }
                }
                v = {next_may, 0};
                continue;
            }
            // A read. A definitely-cancelled id is stale: comparing or
            // passing it around acts on an id the queue may have reused.
            if (v.may == kEvCancelled && ctx.report != nullptr) {
                add(*ctx.report, ctx.file, tk.line, "event-lifecycle",
                    ctx.cls.name + "::" + ctx.members[static_cast<std::size_t>(mi)] +
                        " is read here but was cancelled at line " +
                        std::to_string(v.cancel_line) +
                        " and never reset; assign sim::kInvalidEventId (or "
                        "reschedule) before using the member again");
            }
            continue;
        }

        // Self-call: a member function may rewrite any member — havoc.
        if (i + 1 < nd.hi && toks[i + 1].text == "(" && bare(toks, i) &&
            ctx.self_fns.count(std::string(tk.text)) != 0) {
            for (EvVal& v : st) v = {kEvOther, 0};
        }
    }
    return st;
}

void run_event_dataflow(EvCtx& ctx, const FunctionBody& fn, std::vector<Finding>& out) {
    for (const Cfg& cfg : collect_cfgs(ctx.toks, fn.begin, fn.end)) {
        ctx.cfg = &cfg;
        EvState entry(ctx.members.size());
        ctx.report = nullptr;
        auto in = solve_forward(
            cfg, entry, [&](int n, const EvState& s) { return ev_transfer(ctx, n, s); },
            ev_join);
        if (in.empty()) continue;  // iteration cap: skip, never guess
        ctx.report = &out;
        for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
            if (!in[n].has_value()) continue;  // unreachable
            (void)ev_transfer(ctx, static_cast<int>(n), *in[n]);
        }
        // Path-sensitive cancel-without-reset: a member that may still be
        // Cancelled when the function returns was cancelled on some path
        // and reset on none of the paths reaching that cancel.
        const auto& exit_state = in[static_cast<std::size_t>(cfg.exit)];
        if (exit_state.has_value()) {
            for (std::size_t m = 0; m < ctx.members.size(); ++m) {
                const EvVal& v = (*exit_state)[m];
                if ((v.may & kEvCancelled) == 0) continue;
                add(out, ctx.file, v.cancel_line, "event-lifecycle",
                    ctx.cls.name + "::" + ctx.members[m] +
                        " is cancelled here but not reset on every path to return; "
                        "assign sim::kInvalidEventId (or reschedule), or the stale "
                        "id will alias a reused slot");
            }
        }
        ctx.report = nullptr;
    }
}

// ---------------------------------------------------------------------------
// guarded-by: lock discipline for `// guarded_by(mu_)` members
//
// Lattice: the set of definitely-held (mutex, guard, scope) acquisitions;
// join = intersection, so an access reachable both with and without the
// lock is a finding. RAII guards die at their brace scope's synthetic
// scope-exit node; manual mutex_.lock()/unlock() is tracked unscoped.
// ---------------------------------------------------------------------------

struct Held {
    std::string mutex;
    std::string guard;  // guard object name; empty for manual .lock()
    int scope = -1;
    bool operator==(const Held&) const = default;
    bool operator<(const Held& o) const {
        return std::tie(mutex, guard, scope) < std::tie(o.mutex, o.guard, o.scope);
    }
};
using LockState = std::vector<Held>;  // kept sorted (a set)

LockState lock_join(const LockState& a, const LockState& b) {
    LockState r;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(r));
    return r;
}

void lock_insert(LockState& st, Held h) {
    auto it = std::lower_bound(st.begin(), st.end(), h);
    if (it == st.end() || !(*it == h)) st.insert(it, std::move(h));
}

bool is_guard_type(std::string_view t) {
    return t == "lock_guard" || t == "unique_lock" || t == "scoped_lock";
}

struct GuardCtx {
    const ClassModel& cls;
    const SourceFile& file;
    const std::vector<Token>& toks;
    const Cfg* cfg = nullptr;
    std::map<std::string, std::string> guarded;   // member -> required mutex
    std::set<std::string> mutexes;                // names a guard can take
    std::map<std::string, std::string> bindings;  // guard object -> mutex
    std::string fn_name;
    std::vector<Finding>* report = nullptr;
};

LockState lock_transfer(const GuardCtx& ctx, int node, LockState st) {
    const CfgNode& nd = ctx.cfg->nodes[static_cast<std::size_t>(node)];
    if (nd.closes_scope >= 0) {
        std::erase_if(st, [&](const Held& h) { return h.scope == nd.closes_scope; });
        return st;
    }
    const auto& toks = ctx.toks;
    for (std::size_t i = nd.lo; i < nd.hi; ++i) {
        if (ctx.cfg->opaque(i)) {
            i = opaque_end(*ctx.cfg, i) - 1;
            continue;
        }
        const Token& tk = toks[i];
        if (tk.kind != TokKind::kIdent) continue;

        // RAII guard declaration: lock_guard<...> g(mu_); / scoped_lock ...
        if (is_guard_type(tk.text)) {
            // Find the argument list '(' at template depth 0 (">>" closes two).
            int angle = 0;
            std::size_t open = nd.hi;
            std::string guard_name;
            for (std::size_t j = i + 1; j < nd.hi && j < i + 24; ++j) {
                std::string_view t = toks[j].text;
                if (t == "<") ++angle;
                else if (t == ">") angle = std::max(0, angle - 1);
                else if (t == ">>") angle = std::max(0, angle - 2);
                else if (t == "(" && angle == 0) {
                    open = j;
                    if (toks[j - 1].kind == TokKind::kIdent)
                        guard_name = std::string(toks[j - 1].text);
                    break;
                } else if (t == ";") {
                    break;
                }
            }
            if (open >= nd.hi) continue;
            std::size_t close = match_paren(toks, open, nd.hi);
            bool deferred = false;
            std::vector<std::string> acquired;
            for (std::size_t j = open + 1; j < close; ++j) {
                if (toks[j].text == "defer_lock") deferred = true;
                if (toks[j].kind == TokKind::kIdent && bare(toks, j) &&
                    ctx.mutexes.count(std::string(toks[j].text)) != 0) {
                    acquired.push_back(std::string(toks[j].text));
                }
            }
            if (!deferred) {
                for (const std::string& m : acquired)
                    lock_insert(st, {m, guard_name, nd.scope_id});
            }
            i = close;
            continue;
        }

        // Manual lock()/unlock() on a mutex member or a named guard object.
        if (i + 2 < nd.hi && toks[i + 1].text == "." &&
            (toks[i + 2].text == "lock" || toks[i + 2].text == "unlock") && bare(toks, i)) {
            std::string name(tk.text);
            const bool is_lock = toks[i + 2].text == "lock";
            std::string mutex;
            std::string guard;
            if (ctx.mutexes.count(name) != 0) {
                mutex = name;
            } else if (auto it = ctx.bindings.find(name); it != ctx.bindings.end()) {
                mutex = it->second;
                guard = name;
            }
            if (!mutex.empty()) {
                if (is_lock) {
                    lock_insert(st, {mutex, guard, nd.scope_id});
                } else {
                    std::erase_if(st, [&](const Held& h) {
                        return h.mutex == mutex && (guard.empty() || h.guard == guard);
                    });
                }
                i += 2;
                continue;
            }
        }

        // Access to a guarded member: the matching mutex must be held.
        if (bare(toks, i)) {
            auto g = ctx.guarded.find(std::string(tk.text));
            if (g != ctx.guarded.end()) {
                if (looks_like_decl(toks, i, nd.lo)) continue;  // shadow decl
                bool held = std::any_of(st.begin(), st.end(),
                                        [&](const Held& h) { return h.mutex == g->second; });
                if (!held && ctx.report != nullptr) {
                    add(*ctx.report, ctx.file, tk.line, "guarded-by",
                        ctx.cls.name + "::" + g->first + " is guarded_by(" + g->second +
                            ") but " + g->second + " is not provably held on every "
                            "path to this access in " + ctx.fn_name + "()");
                }
            }
        }
    }
    return st;
}

// Pre-scan of a whole body: records guard-object → mutex bindings so a
// later `g.lock()` / `g.unlock()` resolves to the right mutex.
void collect_guard_bindings(GuardCtx& ctx, std::size_t begin, std::size_t end) {
    const auto& toks = ctx.toks;
    for (std::size_t i = begin; i < end; ++i) {
        if (!is_guard_type(toks[i].text)) continue;
        int angle = 0;
        for (std::size_t j = i + 1; j < end && j < i + 24; ++j) {
            std::string_view t = toks[j].text;
            if (t == "<") ++angle;
            else if (t == ">") angle = std::max(0, angle - 1);
            else if (t == ">>") angle = std::max(0, angle - 2);
            else if (t == "(" && angle == 0) {
                if (toks[j - 1].kind != TokKind::kIdent) break;
                std::size_t close = match_paren(toks, j, end);
                for (std::size_t k = j + 1; k < close; ++k) {
                    if (toks[k].kind == TokKind::kIdent && bare(toks, k) &&
                        ctx.mutexes.count(std::string(toks[k].text)) != 0) {
                        ctx.bindings[std::string(toks[j - 1].text)] =
                            std::string(toks[k].text);
                        break;
                    }
                }
                break;
            } else if (t == ";") {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// payload-move: SharedPayload / Bytes use-after-move
//
// Lattice per tracked variable: powerset of {Valid, Moved, Other}; a read
// while definitely-Moved is a finding. Tracked: members, parameters and
// locals whose declared type names SharedPayload or Bytes. Only the exact
// `std::move(x)` shape marks a move (anything fancier degrades to no-op).
// ---------------------------------------------------------------------------

constexpr std::uint8_t kPmValid = 1, kPmMoved = 2, kPmOther = 4;

struct PmVal {
    std::uint8_t may = kPmOther;
    int move_line = 0;
    bool operator==(const PmVal&) const = default;
};
using PmState = std::vector<PmVal>;

PmState pm_join(const PmState& a, const PmState& b) {
    PmState r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        r[i].may = a[i].may | b[i].may;
        int la = a[i].move_line, lb = b[i].move_line;
        r[i].move_line = (la == 0) ? lb : (lb == 0 ? la : std::min(la, lb));
    }
    return r;
}

bool is_payload_type(std::string_view t) { return t == "SharedPayload" || t == "Bytes"; }

struct PmCtx {
    const ClassModel* cls = nullptr;  // null for free functions
    const SourceFile& file;
    const std::vector<Token>& toks;
    const Cfg* cfg = nullptr;
    std::vector<std::string> vars;
    std::set<std::string> member_vars;  // subset of vars that are members
    std::set<std::string> self_fns;
    std::string fn_name;
    std::vector<Finding>* report = nullptr;

    [[nodiscard]] int var_index(std::string_view name) const {
        for (std::size_t i = 0; i < vars.size(); ++i) {
            if (vars[i] == name) return static_cast<int>(i);
        }
        return -1;
    }
};

PmState pm_transfer(const PmCtx& ctx, int node, PmState st) {
    const CfgNode& nd = ctx.cfg->nodes[static_cast<std::size_t>(node)];
    const auto& toks = ctx.toks;
    for (std::size_t i = nd.lo; i < nd.hi; ++i) {
        if (ctx.cfg->opaque(i)) {
            i = opaque_end(*ctx.cfg, i) - 1;
            continue;
        }
        const Token& tk = toks[i];
        if (tk.kind != TokKind::kIdent) continue;

        // std::move(x) — the exact shape only.
        if (tk.text == "move" && i + 3 < nd.hi && toks[i + 1].text == "(" &&
            toks[i + 2].kind == TokKind::kIdent && toks[i + 3].text == ")" &&
            bare(toks, i + 2)) {
            int vi = ctx.var_index(toks[i + 2].text);
            if (vi >= 0) {
                PmVal& v = st[static_cast<std::size_t>(vi)];
                if (v.may == kPmMoved && ctx.report != nullptr) {
                    add(*ctx.report, ctx.file, toks[i + 2].line, "payload-move",
                        ctx.vars[static_cast<std::size_t>(vi)] +
                            " is moved again here but was already moved at line " +
                            std::to_string(v.move_line) +
                            "; a moved-from buffer belongs to its new owner (or the "
                            "pool), not to this function");
                }
                v = {kPmMoved, toks[i + 2].line};
                i += 3;
                continue;
            }
        }

        int vi = bare(toks, i) ? ctx.var_index(tk.text) : -1;
        if (vi >= 0) {
            PmVal& v = st[static_cast<std::size_t>(vi)];
            // Declaration site (type token right before) re-initializes.
            if (i > nd.lo &&
                (is_payload_type(toks[i - 1].text) || toks[i - 1].text == "&" ||
                 toks[i - 1].text == "&&" || toks[i - 1].text == "*")) {
                v = {kPmValid, 0};
                continue;
            }
            if (i + 1 < nd.hi && toks[i + 1].text == "=") {
                v = {kPmValid, 0};  // reassigned; RHS reads are handled on their own
                continue;
            }
            if (i + 2 < nd.hi && toks[i + 1].text == "." &&
                (toks[i + 2].text == "reset" || toks[i + 2].text == "clear" ||
                 toks[i + 2].text == "assign")) {
                v = {kPmValid, 0};
                i += 2;
                continue;
            }
            if (v.may == kPmMoved && ctx.report != nullptr) {
                add(*ctx.report, ctx.file, tk.line, "payload-move",
                    ctx.vars[static_cast<std::size_t>(vi)] + " is used here after being "
                        "moved at line " + std::to_string(v.move_line) +
                        " (every path to this use moves it first); moved-from "
                        "SharedPayload/Bytes buffers are empty shells");
            }
            continue;
        }

        // Self-call havoc: a member function may refill member payloads.
        if (i + 1 < nd.hi && toks[i + 1].text == "(" && bare(toks, i) &&
            ctx.self_fns.count(std::string(tk.text)) != 0) {
            for (std::size_t m = 0; m < ctx.vars.size(); ++m) {
                if (ctx.member_vars.count(ctx.vars[m]) != 0)
                    st[m] = {kPmOther, 0};
            }
        }
    }
    return st;
}

// Collects tracked payload locals declared in [begin, end): a SharedPayload
// or Bytes type token directly followed by (ref-qualifiers and) a name.
void collect_payload_locals(PmCtx& ctx, std::size_t begin, std::size_t end) {
    const auto& toks = ctx.toks;
    for (std::size_t i = begin; i + 1 < end; ++i) {
        if (!is_payload_type(toks[i].text) || !bare(toks, i)) {
            // `util::Bytes x` — the qualifier makes it non-bare; allow the
            // chain by also accepting `:: Bytes` with a util/std prefix.
            if (!(is_payload_type(toks[i].text) && i >= 1 && toks[i - 1].text == "::"))
                continue;
        }
        std::size_t j = i + 1;
        while (j < end && (toks[j].text == "&" || toks[j].text == "&&")) ++j;
        if (j >= end || toks[j].kind != TokKind::kIdent) continue;
        std::string_view name = toks[j].text;
        if (j + 1 < end) {
            std::string_view after = toks[j + 1].text;
            if (after != "=" && after != ";" && after != "{" && after != "(" &&
                after != "," && after != ")") {
                continue;
            }
        }
        if (ctx.var_index(name) < 0) ctx.vars.push_back(std::string(name));
    }
}

// Token range of the function's parameter list, found by walking back from
// the body's '{' over trailing qualifiers to the signature's ')'.
bool param_range(const std::vector<Token>& toks, std::size_t body_open, std::size_t& lo,
                 std::size_t& hi) {
    std::size_t k = body_open;
    std::size_t steps = 0;
    while (k > 0 && steps < 40) {
        --k;
        ++steps;
        if (toks[k].text == ")") {
            int depth = 0;
            for (std::size_t j = k + 1; j-- > 0;) {
                if (toks[j].text == ")") ++depth;
                else if (toks[j].text == "(") {
                    if (--depth == 0) {
                        lo = j + 1;
                        hi = k;
                        return true;
                    }
                }
                if (j == 0) break;
            }
            return false;
        }
        if (toks[k].text == ";" || toks[k].text == "}") return false;
    }
    return false;
}

void run_payload_dataflow(PmCtx& ctx, const FunctionBody& fn, std::vector<Finding>& out) {
    // Tracked set: members of payload type, parameters, and body locals.
    ctx.vars.clear();
    ctx.member_vars.clear();
    if (ctx.cls != nullptr) {
        for (const MemberVar& m : ctx.cls->members) {
            if (m.type.find("SharedPayload") != std::string::npos ||
                m.type.find("Bytes") != std::string::npos) {
                ctx.vars.push_back(m.name);
                ctx.member_vars.insert(m.name);
            }
        }
    }
    std::size_t plo = 0, phi = 0;
    if (param_range(ctx.toks, fn.begin, plo, phi)) collect_payload_locals(ctx, plo, phi);
    collect_payload_locals(ctx, fn.begin, fn.end);
    if (ctx.vars.empty()) return;

    for (const Cfg& cfg : collect_cfgs(ctx.toks, fn.begin, fn.end)) {
        ctx.cfg = &cfg;
        PmState entry(ctx.vars.size());
        for (std::size_t m = 0; m < ctx.vars.size(); ++m) {
            entry[m] = ctx.member_vars.count(ctx.vars[m]) != 0 ? PmVal{kPmOther, 0}
                                                               : PmVal{kPmValid, 0};
        }
        ctx.report = nullptr;
        auto in = solve_forward(
            cfg, entry, [&](int n, const PmState& s) { return pm_transfer(ctx, n, s); },
            pm_join);
        if (in.empty()) continue;
        ctx.report = &out;
        for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
            if (!in[n].has_value()) continue;
            (void)pm_transfer(ctx, static_cast<int>(n), *in[n]);
        }
        ctx.report = nullptr;
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Rule entry points
// ---------------------------------------------------------------------------

void rule_event_dataflow(const ClassModel& cls, std::vector<Finding>& out) {
    std::vector<std::string> members;
    for (const MemberVar& m : cls.members) {
        if (m.type.find("EventId") != std::string::npos) members.push_back(m.name);
    }
    if (members.empty()) return;
    std::set<std::string> self_fns = self_function_names(cls);
    for (const FunctionBody& fn : cls.functions) {
        EvCtx ctx{cls, *fn.file, fn.file->lex.tokens, nullptr,
                  members, self_fns, fn.name, nullptr};
        run_event_dataflow(ctx, fn, out);
    }
}

void rule_guarded_by(const ClassModel& cls, std::vector<Finding>& out) {
    std::map<std::string, std::string> guarded;
    std::set<std::string> mutexes;
    for (const MemberVar& m : cls.members) {
        if (m.guarded_by.empty()) continue;
        guarded[m.name] = m.guarded_by;
        mutexes.insert(m.guarded_by);
    }
    if (guarded.empty()) return;
    for (const FunctionBody& fn : cls.functions) {
        // Construction and destruction are single-threaded by definition:
        // no other thread can hold a reference yet / still. Lambdas created
        // there DO run concurrently and are analyzed below regardless.
        const bool is_ctor_or_dtor = fn.name == cls.name || fn.name == "~" + cls.name;
        GuardCtx ctx{cls,   *fn.file, fn.file->lex.tokens, nullptr, guarded,
                     mutexes, {},     fn.name,             nullptr};
        collect_guard_bindings(ctx, fn.begin, fn.end);
        for (const Cfg& cfg : collect_cfgs(ctx.toks, fn.begin, fn.end)) {
            // Skip the ctor/dtor's own statements but keep lambda bodies:
            // the main body is the one CFG whose token range starts at the
            // function's opening brace (lambda bodies start later).
            bool body_starts_at_fn = false;
            for (const CfgNode& nd : cfg.nodes) {
                if (nd.lo != nd.hi && nd.lo <= fn.begin + 1) {
                    body_starts_at_fn = true;
                    break;
                }
            }
            const bool skip_checks = is_ctor_or_dtor && body_starts_at_fn;
            ctx.cfg = &cfg;
            LockState entry;
            ctx.report = nullptr;
            auto in = solve_forward(
                cfg, entry,
                [&](int n, const LockState& s) { return lock_transfer(ctx, n, s); },
                lock_join);
            if (in.empty() || skip_checks) continue;
            ctx.report = &out;
            for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
                if (!in[n].has_value()) continue;
                (void)lock_transfer(ctx, static_cast<int>(n), *in[n]);
            }
            ctx.report = nullptr;
        }
    }
}

void rule_payload_move_class(const ClassModel& cls, std::vector<Finding>& out) {
    std::set<std::string> self_fns = self_function_names(cls);
    for (const FunctionBody& fn : cls.functions) {
        PmCtx ctx{&cls, *fn.file, fn.file->lex.tokens, nullptr, {}, {}, self_fns,
                  fn.name, nullptr};
        run_payload_dataflow(ctx, fn, out);
    }
}

void rule_payload_move_free(const SourceFile& file,
                            const std::vector<FunctionBody>& free_functions,
                            std::vector<Finding>& out) {
    for (const FunctionBody& fn : free_functions) {
        if (fn.file != &file) continue;
        PmCtx ctx{nullptr, file, file.lex.tokens, nullptr, {}, {}, {}, fn.name, nullptr};
        run_payload_dataflow(ctx, fn, out);
    }
}

} // namespace staticcheck
