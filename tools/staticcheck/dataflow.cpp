#include "dataflow.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "callgraph.hpp"

namespace staticcheck {

namespace {

// ---------------------------------------------------------------------------
// Shared scanning helpers
// ---------------------------------------------------------------------------

// True when toks[i] is a bare reference (not `obj.x`, `ns::x` or `p->x`;
// `this->x` counts as bare).
bool bare(const std::vector<Token>& toks, std::size_t i) {
    if (i == 0) return true;
    std::string_view p = toks[i - 1].text;
    if (p == "." || p == "::") return false;
    if (p == "->") return i >= 2 && toks[i - 2].text == "this";
    return true;
}

// Index of the ")" matching toks[open] (== "("), clamped to hi.
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open, std::size_t hi) {
    int depth = 0;
    for (std::size_t i = open; i < hi; ++i) {
        if (toks[i].text == "(") ++depth;
        else if (toks[i].text == ")") {
            if (--depth == 0) return i;
        }
    }
    return hi;
}

// One past the opaque lambda body containing i (i must satisfy cfg.opaque).
std::size_t opaque_end(const Cfg& cfg, std::size_t i) {
    std::size_t end = i + 1;
    for (const auto& [lo, hi] : cfg.lambda_bodies) {
        if (i >= lo && i < hi) end = std::max(end, hi);
    }
    return end;
}

// Builds the CFG of [begin, end) plus — transitively — the CFGs of every
// nested lambda body, each analyzed as a function of its own. A body the
// builder cannot model is silently dropped (safe degradation).
std::vector<Cfg> collect_cfgs(const std::vector<Token>& toks, std::size_t begin,
                              std::size_t end) {
    std::vector<Cfg> out;
    std::vector<std::pair<std::size_t, std::size_t>> work{{begin, end}};
    while (!work.empty()) {
        auto [b, e] = work.back();
        work.pop_back();
        Cfg c = build_cfg(toks, b, e);
        if (!c.ok) continue;
        for (const auto& lb : c.lambda_bodies) work.push_back(lb);
        out.push_back(std::move(c));
    }
    return out;
}

// True when toks[i] looks like the name in a local declaration shadowing a
// member (`EventId timer_ = ...`) rather than an expression read: the
// previous token is an identifier that is not one of the keywords that
// legally precede an expression.
bool looks_like_decl(const std::vector<Token>& toks, std::size_t i, std::size_t lo) {
    if (i <= lo || toks[i - 1].kind != TokKind::kIdent) return false;
    std::string_view p = toks[i - 1].text;
    return p != "return" && p != "co_return" && p != "co_yield" && p != "throw" &&
           p != "else" && p != "do" && p != "case" && p != "delete";
}

void add(std::vector<Finding>& out, const SourceFile& file, int line, const char* rule,
         std::string message) {
    out.push_back({file.rel, line, rule, std::move(message), &file});
}

// Names of the class's own member functions (used to havoc state across
// self-calls: a helper may reassign any member, so definite facts die).
std::set<std::string> self_function_names(const ClassModel& cls) {
    std::set<std::string> names;
    for (const FunctionBody& f : cls.functions) names.insert(f.name);
    return names;
}

// ---------------------------------------------------------------------------
// event-lifecycle / timer-rearm: EventId definite-state tracking
//
// Lattice per EventId member: the powerset of {Live, Cancelled, Invalid,
// Other} (join = union), so "definitely cancelled" (== {Cancelled}) and
// "possibly cancelled" (Cancelled ∈ set) are both expressible. The
// cancel_line rides along (min on join) to report at the cancel site.
// ---------------------------------------------------------------------------

constexpr std::uint8_t kEvLive = 1, kEvCancelled = 2, kEvInvalid = 4, kEvOther = 8;

struct EvVal {
    std::uint8_t may = kEvOther;
    int cancel_line = 0;
    bool operator==(const EvVal&) const = default;
};
using EvState = std::vector<EvVal>;

EvState ev_join(const EvState& a, const EvState& b) {
    EvState r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        r[i].may = a[i].may | b[i].may;
        int la = a[i].cancel_line, lb = b[i].cancel_line;
        r[i].cancel_line = (la == 0) ? lb : (lb == 0 ? la : std::min(la, lb));
    }
    return r;
}

struct EvCtx {
    const ClassModel& cls;
    const SourceFile& file;
    const std::vector<Token>& toks;
    const Cfg* cfg = nullptr;
    std::vector<std::string> members;  // index order fixes the state layout
    std::set<std::string> self_fns;
    std::string fn_name;
    const SummaryTable* sums = nullptr;      // interprocedural effects
    std::vector<Finding>* report = nullptr;  // non-null during the report pass

    [[nodiscard]] int member_index(std::string_view name) const {
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (members[i] == name) return static_cast<int>(i);
        }
        return -1;
    }
};

EvState ev_transfer(const EvCtx& ctx, int node, EvState st) {
    const CfgNode& nd = ctx.cfg->nodes[static_cast<std::size_t>(node)];
    const auto& toks = ctx.toks;
    for (std::size_t i = nd.lo; i < nd.hi; ++i) {
        if (ctx.cfg->opaque(i)) {
            i = opaque_end(*ctx.cfg, i) - 1;
            continue;
        }
        const Token& tk = toks[i];
        if (tk.kind != TokKind::kIdent) continue;

        // q.cancel(member_): the member becomes definitely-Cancelled.
        if ((tk.text == "cancel" || tk.text == "rearm") && i + 1 < nd.hi &&
            toks[i + 1].text == "(") {
            const bool is_cancel = tk.text == "cancel";
            std::size_t close = match_paren(toks, i + 1, nd.hi);
            for (std::size_t j = i + 2; j < close; ++j) {
                if (ctx.cfg->opaque(j)) {
                    j = opaque_end(*ctx.cfg, j) - 1;
                    continue;
                }
                if (toks[j].kind != TokKind::kIdent || !bare(toks, j)) continue;
                int mi = ctx.member_index(toks[j].text);
                if (mi < 0) continue;
                EvVal& v = st[static_cast<std::size_t>(mi)];
                if (v.may == kEvCancelled && ctx.report != nullptr) {
                    add(*ctx.report, ctx.file, toks[j].line, "event-lifecycle",
                        ctx.cls.name + "::" + ctx.members[static_cast<std::size_t>(mi)] +
                            " is already cancelled here (cancel at line " +
                            std::to_string(v.cancel_line) + " never reset it); " +
                            (is_cancel ? "this cancel" : "this rearm") +
                            " of the stale id is a silent no-op once the slot is reused");
                }
                if (is_cancel) {
                    v = {kEvCancelled, tk.line};
                } else {
                    v = {kEvOther, 0};  // rearm: live on success, unchanged on failure
                }
                break;  // first event-member argument is the target
            }
            i = close;
            continue;
        }

        int mi = bare(toks, i) ? ctx.member_index(tk.text) : -1;
        if (mi >= 0) {
            // `EventId timer_ = ...` style shadow declaration: skip.
            if (looks_like_decl(toks, i, nd.lo)) continue;
            EvVal& v = st[static_cast<std::size_t>(mi)];
            if (i + 1 < nd.hi && toks[i + 1].text == "=") {
                // Classify the right-hand side up to the statement's ';'.
                std::uint8_t next_may = kEvOther;
                int paren = 0;
                for (std::size_t j = i + 2; j < nd.hi; ++j) {
                    if (ctx.cfg->opaque(j)) {
                        j = opaque_end(*ctx.cfg, j) - 1;
                        continue;
                    }
                    std::string_view t = toks[j].text;
                    if (t == "(") ++paren;
                    else if (t == ")") --paren;
                    else if (t == ";" && paren == 0) break;
                    else if (t == "schedule_at" || t == "schedule_after") next_may = kEvLive;
                    else if (t == "kInvalidEventId" && next_may == kEvOther)
                        next_may = kEvInvalid;
                }
                if (ctx.report != nullptr && next_may == kEvLive) {
                    if (v.may == kEvCancelled) {
                        add(*ctx.report, ctx.file, v.cancel_line, "timer-rearm",
                            ctx.cls.name + "::" + ctx.fn_name + "() cancels " +
                                ctx.members[static_cast<std::size_t>(mi)] +
                                " and reschedules it with no other write in between "
                                "(line " + std::to_string(tk.line) + "); use rearm(" +
                                ctx.members[static_cast<std::size_t>(mi)] +
                                ", when) — one call, no slot churn, identical FIFO "
                                "placement");
                    } else if (v.may == kEvLive) {
                        add(*ctx.report, ctx.file, tk.line, "event-lifecycle",
                            ctx.cls.name + "::" + ctx.fn_name + "() overwrites " +
                                ctx.members[static_cast<std::size_t>(mi)] +
                                " while it still holds a live id; the armed event "
                                "leaks and its callback will still fire — cancel or "
                                "rearm first");
                    }
                }
                v = {next_may, 0};
                continue;
            }
            // A read. A definitely-cancelled id is stale: comparing or
            // passing it around acts on an id the queue may have reused.
            if (v.may == kEvCancelled && ctx.report != nullptr) {
                add(*ctx.report, ctx.file, tk.line, "event-lifecycle",
                    ctx.cls.name + "::" + ctx.members[static_cast<std::size_t>(mi)] +
                        " is read here but was cancelled at line " +
                        std::to_string(v.cancel_line) +
                        " and never reset; assign sim::kInvalidEventId (or "
                        "reschedule) before using the member again");
            }
            continue;
        }

        // Self-call: apply the callee's summarized per-member effect. A
        // callee without a summary degrades to the old behavior — every
        // member may have been rewritten (havoc).
        if (i + 1 < nd.hi && toks[i + 1].text == "(" && bare(toks, i) &&
            ctx.self_fns.count(std::string(tk.text)) != 0) {
            const FunctionSummary* s =
                ctx.sums != nullptr ? ctx.sums->find(ctx.cls.name, tk.text) : nullptr;
            for (std::size_t m = 0; m < st.size(); ++m) {
                EvVal& v = st[m];
                if (s == nullptr) {
                    v = {kEvOther, 0};
                    continue;
                }
                std::uint8_t eff = s->event_effect(ctx.members[m]);
                std::uint8_t may = (eff & kEffUnchanged) != 0 ? v.may : 0;
                if ((eff & kEffLive) != 0) may |= kEvLive;
                if ((eff & kEffInvalid) != 0) may |= kEvInvalid;
                if ((eff & kEffOther) != 0) may |= kEvOther;
                v.may = may;
                if ((may & kEvCancelled) == 0) v.cancel_line = 0;
            }
        }
    }
    return st;
}

void run_event_dataflow(EvCtx& ctx, const FunctionBody& fn, std::vector<Finding>& out) {
    for (const Cfg& cfg : collect_cfgs(ctx.toks, fn.begin, fn.end)) {
        ctx.cfg = &cfg;
        EvState entry(ctx.members.size());
        ctx.report = nullptr;
        auto in = solve_forward(
            cfg, entry, [&](int n, const EvState& s) { return ev_transfer(ctx, n, s); },
            ev_join);
        if (in.empty()) continue;  // iteration cap: skip, never guess
        ctx.report = &out;
        for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
            if (!in[n].has_value()) continue;  // unreachable
            (void)ev_transfer(ctx, static_cast<int>(n), *in[n]);
        }
        // Path-sensitive cancel-without-reset: a member that may still be
        // Cancelled when the function returns was cancelled on some path
        // and reset on none of the paths reaching that cancel.
        const auto& exit_state = in[static_cast<std::size_t>(cfg.exit)];
        if (exit_state.has_value()) {
            for (std::size_t m = 0; m < ctx.members.size(); ++m) {
                const EvVal& v = (*exit_state)[m];
                if ((v.may & kEvCancelled) == 0) continue;
                add(out, ctx.file, v.cancel_line, "event-lifecycle",
                    ctx.cls.name + "::" + ctx.members[m] +
                        " is cancelled here but not reset on every path to return; "
                        "assign sim::kInvalidEventId (or reschedule), or the stale "
                        "id will alias a reused slot");
            }
        }
        ctx.report = nullptr;
    }
}

// ---------------------------------------------------------------------------
// guarded-by: lock discipline for `// guarded_by(mu_)` members
//
// Lattice: the set of definitely-held (mutex, guard, scope) acquisitions;
// join = intersection, so an access reachable both with and without the
// lock is a finding. RAII guards die at their brace scope's synthetic
// scope-exit node; manual mutex_.lock()/unlock() is tracked unscoped.
// ---------------------------------------------------------------------------

struct Held {
    std::string mutex;
    std::string guard;  // guard object name; empty for manual .lock()
    int scope = -1;
    bool operator==(const Held&) const = default;
    bool operator<(const Held& o) const {
        return std::tie(mutex, guard, scope) < std::tie(o.mutex, o.guard, o.scope);
    }
};
using LockState = std::vector<Held>;  // kept sorted (a set)

LockState lock_join(const LockState& a, const LockState& b) {
    LockState r;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(r));
    return r;
}

void lock_insert(LockState& st, Held h) {
    auto it = std::lower_bound(st.begin(), st.end(), h);
    if (it == st.end() || !(*it == h)) st.insert(it, std::move(h));
}

bool is_guard_type(std::string_view t) {
    return t == "lock_guard" || t == "unique_lock" || t == "scoped_lock";
}

struct GuardCtx {
    const ClassModel& cls;
    const SourceFile& file;
    const std::vector<Token>& toks;
    const Cfg* cfg = nullptr;
    std::map<std::string, std::string> guarded;   // member -> required mutex
    std::set<std::string> mutexes;                // names a guard can take
    std::map<std::string, std::string> bindings;  // guard object -> mutex
    std::string fn_name;
    std::set<std::string> self_fns;
    const SummaryTable* sums = nullptr;
    std::vector<Finding>* report = nullptr;
};

LockState lock_transfer(const GuardCtx& ctx, int node, LockState st) {
    const CfgNode& nd = ctx.cfg->nodes[static_cast<std::size_t>(node)];
    if (nd.closes_scope >= 0) {
        std::erase_if(st, [&](const Held& h) { return h.scope == nd.closes_scope; });
        return st;
    }
    const auto& toks = ctx.toks;
    for (std::size_t i = nd.lo; i < nd.hi; ++i) {
        if (ctx.cfg->opaque(i)) {
            i = opaque_end(*ctx.cfg, i) - 1;
            continue;
        }
        const Token& tk = toks[i];
        if (tk.kind != TokKind::kIdent) continue;

        // RAII guard declaration: lock_guard<...> g(mu_); / scoped_lock ...
        if (is_guard_type(tk.text)) {
            // Find the argument list '(' at template depth 0 (">>" closes two).
            int angle = 0;
            std::size_t open = nd.hi;
            std::string guard_name;
            for (std::size_t j = i + 1; j < nd.hi && j < i + 24; ++j) {
                std::string_view t = toks[j].text;
                if (t == "<") ++angle;
                else if (t == ">") angle = std::max(0, angle - 1);
                else if (t == ">>") angle = std::max(0, angle - 2);
                else if (t == "(" && angle == 0) {
                    open = j;
                    if (toks[j - 1].kind == TokKind::kIdent)
                        guard_name = std::string(toks[j - 1].text);
                    break;
                } else if (t == ";") {
                    break;
                }
            }
            if (open >= nd.hi) continue;
            std::size_t close = match_paren(toks, open, nd.hi);
            bool deferred = false;
            std::vector<std::string> acquired;
            for (std::size_t j = open + 1; j < close; ++j) {
                if (toks[j].text == "defer_lock") deferred = true;
                if (toks[j].kind == TokKind::kIdent && bare(toks, j) &&
                    ctx.mutexes.count(std::string(toks[j].text)) != 0) {
                    acquired.push_back(std::string(toks[j].text));
                }
            }
            if (!deferred) {
                for (const std::string& m : acquired)
                    lock_insert(st, {m, guard_name, nd.scope_id});
            }
            i = close;
            continue;
        }

        // Manual lock()/unlock() on a mutex member or a named guard object.
        if (i + 2 < nd.hi && toks[i + 1].text == "." &&
            (toks[i + 2].text == "lock" || toks[i + 2].text == "unlock") && bare(toks, i)) {
            std::string name(tk.text);
            const bool is_lock = toks[i + 2].text == "lock";
            std::string mutex;
            std::string guard;
            if (ctx.mutexes.count(name) != 0) {
                mutex = name;
            } else if (auto it = ctx.bindings.find(name); it != ctx.bindings.end()) {
                mutex = it->second;
                guard = name;
            }
            if (!mutex.empty()) {
                if (is_lock) {
                    lock_insert(st, {mutex, guard, nd.scope_id});
                } else {
                    std::erase_if(st, [&](const Held& h) {
                        return h.mutex == mutex && (guard.empty() || h.guard == guard);
                    });
                }
                i += 2;
                continue;
            }
        }

        // Self-call: apply the callee's summarized lock-set delta. Mutexes
        // it may release stop being provably held; mutexes it definitely
        // acquires (and never releases) are held from here on.
        if (i + 1 < nd.hi && toks[i + 1].text == "(" && bare(toks, i) &&
            ctx.self_fns.count(std::string(tk.text)) != 0 && ctx.sums != nullptr) {
            if (const FunctionSummary* s = ctx.sums->find(ctx.cls.name, tk.text)) {
                for (const std::string& m : s->lock_releases) {
                    std::erase_if(st, [&](const Held& h) { return h.mutex == m; });
                }
                for (const std::string& m : s->lock_acquires) {
                    lock_insert(st, {m, "", nd.scope_id});
                }
            }
        }

        // Access to a guarded member: the matching mutex must be held.
        if (bare(toks, i)) {
            auto g = ctx.guarded.find(std::string(tk.text));
            if (g != ctx.guarded.end()) {
                if (looks_like_decl(toks, i, nd.lo)) continue;  // shadow decl
                bool held = std::any_of(st.begin(), st.end(),
                                        [&](const Held& h) { return h.mutex == g->second; });
                if (!held && ctx.report != nullptr) {
                    add(*ctx.report, ctx.file, tk.line, "guarded-by",
                        ctx.cls.name + "::" + g->first + " is guarded_by(" + g->second +
                            ") but " + g->second + " is not provably held on every "
                            "path to this access in " + ctx.fn_name + "()");
                }
            }
        }
    }
    return st;
}

// Pre-scan of a whole body: records guard-object → mutex bindings so a
// later `g.lock()` / `g.unlock()` resolves to the right mutex.
void collect_guard_bindings(GuardCtx& ctx, std::size_t begin, std::size_t end) {
    const auto& toks = ctx.toks;
    for (std::size_t i = begin; i < end; ++i) {
        if (!is_guard_type(toks[i].text)) continue;
        int angle = 0;
        for (std::size_t j = i + 1; j < end && j < i + 24; ++j) {
            std::string_view t = toks[j].text;
            if (t == "<") ++angle;
            else if (t == ">") angle = std::max(0, angle - 1);
            else if (t == ">>") angle = std::max(0, angle - 2);
            else if (t == "(" && angle == 0) {
                if (toks[j - 1].kind != TokKind::kIdent) break;
                std::size_t close = match_paren(toks, j, end);
                for (std::size_t k = j + 1; k < close; ++k) {
                    if (toks[k].kind == TokKind::kIdent && bare(toks, k) &&
                        ctx.mutexes.count(std::string(toks[k].text)) != 0) {
                        ctx.bindings[std::string(toks[j - 1].text)] =
                            std::string(toks[k].text);
                        break;
                    }
                }
                break;
            } else if (t == ";") {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// payload-move: SharedPayload / Bytes use-after-move
//
// Lattice per tracked variable: powerset of {Valid, Moved, Other}; a read
// while definitely-Moved is a finding. Tracked: members, parameters and
// locals whose declared type names SharedPayload or Bytes. Only the exact
// `std::move(x)` shape marks a move (anything fancier degrades to no-op).
// ---------------------------------------------------------------------------

constexpr std::uint8_t kPmValid = 1, kPmMoved = 2, kPmOther = 4;

struct PmVal {
    std::uint8_t may = kPmOther;
    int move_line = 0;
    bool operator==(const PmVal&) const = default;
};
using PmState = std::vector<PmVal>;

PmState pm_join(const PmState& a, const PmState& b) {
    PmState r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        r[i].may = a[i].may | b[i].may;
        int la = a[i].move_line, lb = b[i].move_line;
        r[i].move_line = (la == 0) ? lb : (lb == 0 ? la : std::min(la, lb));
    }
    return r;
}

bool is_payload_type(std::string_view t) { return t == "SharedPayload" || t == "Bytes"; }

struct PmCtx {
    const ClassModel* cls = nullptr;  // null for free functions
    const SourceFile& file;
    const std::vector<Token>& toks;
    const Cfg* cfg = nullptr;
    std::vector<std::string> vars;
    std::set<std::string> member_vars;  // subset of vars that are members
    std::set<std::string> self_fns;
    std::string fn_name;
    const SummaryTable* sums = nullptr;
    std::vector<Finding>* report = nullptr;

    [[nodiscard]] int var_index(std::string_view name) const {
        for (std::size_t i = 0; i < vars.size(); ++i) {
            if (vars[i] == name) return static_cast<int>(i);
        }
        return -1;
    }
};

PmState pm_transfer(const PmCtx& ctx, int node, PmState st) {
    const CfgNode& nd = ctx.cfg->nodes[static_cast<std::size_t>(node)];
    const auto& toks = ctx.toks;
    for (std::size_t i = nd.lo; i < nd.hi; ++i) {
        if (ctx.cfg->opaque(i)) {
            i = opaque_end(*ctx.cfg, i) - 1;
            continue;
        }
        const Token& tk = toks[i];
        if (tk.kind != TokKind::kIdent) continue;

        // std::move(x) — the exact shape only.
        if (tk.text == "move" && i + 3 < nd.hi && toks[i + 1].text == "(" &&
            toks[i + 2].kind == TokKind::kIdent && toks[i + 3].text == ")" &&
            bare(toks, i + 2)) {
            int vi = ctx.var_index(toks[i + 2].text);
            if (vi >= 0) {
                PmVal& v = st[static_cast<std::size_t>(vi)];
                if (v.may == kPmMoved && ctx.report != nullptr) {
                    add(*ctx.report, ctx.file, toks[i + 2].line, "payload-move",
                        ctx.vars[static_cast<std::size_t>(vi)] +
                            " is moved again here but was already moved at line " +
                            std::to_string(v.move_line) +
                            "; a moved-from buffer belongs to its new owner (or the "
                            "pool), not to this function");
                }
                v = {kPmMoved, toks[i + 2].line};
                i += 3;
                continue;
            }
        }

        int vi = bare(toks, i) ? ctx.var_index(tk.text) : -1;
        if (vi >= 0) {
            PmVal& v = st[static_cast<std::size_t>(vi)];
            // Declaration site (type token right before) re-initializes.
            if (i > nd.lo &&
                (is_payload_type(toks[i - 1].text) || toks[i - 1].text == "&" ||
                 toks[i - 1].text == "&&" || toks[i - 1].text == "*")) {
                v = {kPmValid, 0};
                continue;
            }
            if (i + 1 < nd.hi && toks[i + 1].text == "=") {
                v = {kPmValid, 0};  // reassigned; RHS reads are handled on their own
                continue;
            }
            if (i + 2 < nd.hi && toks[i + 1].text == "." &&
                (toks[i + 2].text == "reset" || toks[i + 2].text == "clear" ||
                 toks[i + 2].text == "assign")) {
                v = {kPmValid, 0};
                i += 2;
                continue;
            }
            if (v.may == kPmMoved && ctx.report != nullptr) {
                add(*ctx.report, ctx.file, tk.line, "payload-move",
                    ctx.vars[static_cast<std::size_t>(vi)] + " is used here after being "
                        "moved at line " + std::to_string(v.move_line) +
                        " (every path to this use moves it first); moved-from "
                        "SharedPayload/Bytes buffers are empty shells");
            }
            continue;
        }

        // Self-call: apply the callee's summarized per-member payload
        // effect; no summary degrades to the old havoc of member payloads.
        if (i + 1 < nd.hi && toks[i + 1].text == "(" && bare(toks, i) &&
            ctx.self_fns.count(std::string(tk.text)) != 0) {
            const FunctionSummary* s =
                ctx.sums != nullptr && ctx.cls != nullptr
                    ? ctx.sums->find(ctx.cls->name, tk.text)
                    : nullptr;
            for (std::size_t m = 0; m < ctx.vars.size(); ++m) {
                if (ctx.member_vars.count(ctx.vars[m]) == 0) continue;
                PmVal& v = st[m];
                if (s == nullptr) {
                    v = {kPmOther, 0};
                    continue;
                }
                std::uint8_t eff = s->payload_effect(ctx.vars[m]);
                std::uint8_t may = (eff & kPmEffUnchanged) != 0 ? v.may : 0;
                if ((eff & kPmEffValid) != 0) may |= kPmValid;
                if ((eff & kPmEffMoved) != 0) may |= kPmMoved;
                if ((eff & kPmEffOther) != 0) may |= kPmOther;
                int move_line = (may & kPmMoved) != 0
                                    ? (v.move_line != 0 ? v.move_line : tk.line)
                                    : 0;
                v = {may, move_line};
            }
        }
    }
    return st;
}

// Collects tracked payload locals declared in [begin, end): a SharedPayload
// or Bytes type token directly followed by (ref-qualifiers and) a name.
void collect_payload_locals(PmCtx& ctx, std::size_t begin, std::size_t end) {
    const auto& toks = ctx.toks;
    for (std::size_t i = begin; i + 1 < end; ++i) {
        if (!is_payload_type(toks[i].text) || !bare(toks, i)) {
            // `util::Bytes x` — the qualifier makes it non-bare; allow the
            // chain by also accepting `:: Bytes` with a util/std prefix.
            if (!(is_payload_type(toks[i].text) && i >= 1 && toks[i - 1].text == "::"))
                continue;
        }
        std::size_t j = i + 1;
        while (j < end && (toks[j].text == "&" || toks[j].text == "&&")) ++j;
        if (j >= end || toks[j].kind != TokKind::kIdent) continue;
        std::string_view name = toks[j].text;
        if (j + 1 < end) {
            std::string_view after = toks[j + 1].text;
            if (after != "=" && after != ";" && after != "{" && after != "(" &&
                after != "," && after != ")") {
                continue;
            }
        }
        if (ctx.var_index(name) < 0) ctx.vars.push_back(std::string(name));
    }
}

// Token range of the function's parameter list, found by walking back from
// the body's '{' over trailing qualifiers to the signature's ')'.
bool param_range(const std::vector<Token>& toks, std::size_t body_open, std::size_t& lo,
                 std::size_t& hi) {
    std::size_t k = body_open;
    std::size_t steps = 0;
    while (k > 0 && steps < 40) {
        --k;
        ++steps;
        if (toks[k].text == ")") {
            int depth = 0;
            for (std::size_t j = k + 1; j-- > 0;) {
                if (toks[j].text == ")") ++depth;
                else if (toks[j].text == "(") {
                    if (--depth == 0) {
                        lo = j + 1;
                        hi = k;
                        return true;
                    }
                }
                if (j == 0) break;
            }
            return false;
        }
        if (toks[k].text == ";" || toks[k].text == "}") return false;
    }
    return false;
}

void run_payload_dataflow(PmCtx& ctx, const FunctionBody& fn, std::vector<Finding>& out) {
    // Tracked set: members of payload type, parameters, and body locals.
    ctx.vars.clear();
    ctx.member_vars.clear();
    if (ctx.cls != nullptr) {
        for (const MemberVar& m : ctx.cls->members) {
            if (m.type.find("SharedPayload") != std::string::npos ||
                m.type.find("Bytes") != std::string::npos) {
                ctx.vars.push_back(m.name);
                ctx.member_vars.insert(m.name);
            }
        }
    }
    std::size_t plo = 0, phi = 0;
    if (param_range(ctx.toks, fn.begin, plo, phi)) collect_payload_locals(ctx, plo, phi);
    collect_payload_locals(ctx, fn.begin, fn.end);
    if (ctx.vars.empty()) return;

    for (const Cfg& cfg : collect_cfgs(ctx.toks, fn.begin, fn.end)) {
        ctx.cfg = &cfg;
        PmState entry(ctx.vars.size());
        for (std::size_t m = 0; m < ctx.vars.size(); ++m) {
            entry[m] = ctx.member_vars.count(ctx.vars[m]) != 0 ? PmVal{kPmOther, 0}
                                                               : PmVal{kPmValid, 0};
        }
        ctx.report = nullptr;
        auto in = solve_forward(
            cfg, entry, [&](int n, const PmState& s) { return pm_transfer(ctx, n, s); },
            pm_join);
        if (in.empty()) continue;
        ctx.report = &out;
        for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
            if (!in[n].has_value()) continue;
            (void)pm_transfer(ctx, static_cast<int>(n), *in[n]);
        }
        ctx.report = nullptr;
    }
}

// ---------------------------------------------------------------------------
// wire-taint: attacker-controlled bytes from parse() to a dangerous use
//
// Lattice per variable (or `base.field` chain): a bitmask of taint origins —
// bit i < 16 for "parameter i" (feeds the interprocedural summaries) and
// kTaintWire for "came off the wire". Sources: ByteView parameters of the
// src/net parse() boundaries, WireReader reads, and any field of a wire
// struct (EthernetFrame, ArpMessage, Ipv4Packet, TcpSegment, UdpDatagram).
// Sinks: subscripts, size-argument calls (resize, take, release_through, …)
// and narrowing static_casts. Sanitizers: comparisons, std::min/max/clamp,
// and the `// sanitized(name)` annotation. Join = union (may-taint), so a
// value sanitized on one path but not another still reports.
// ---------------------------------------------------------------------------

using TaintState = std::map<std::string, std::uint32_t>;

constexpr std::uint32_t kParamBits = 0xFFFFu;

bool word_in_type(const std::string& type, std::string_view word) {
    auto is_word = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               (c >= '0' && c <= '9') || c == '_';
    };
    std::size_t pos = 0;
    while ((pos = type.find(word, pos)) != std::string::npos) {
        bool left_ok = pos == 0 || !is_word(type[pos - 1]);
        bool right_ok = pos + word.size() >= type.size() || !is_word(type[pos + word.size()]);
        if (left_ok && right_ok) return true;
        ++pos;
    }
    return false;
}

bool is_wire_struct(const std::string& type) {
    static constexpr const char* kWire[] = {"EthernetFrame", "ArpMessage", "Ipv4Packet",
                                            "TcpSegment", "UdpDatagram"};
    for (const char* w : kWire) {
        if (word_in_type(type, w)) return true;
    }
    return false;
}

bool is_reader_read(std::string_view f) {
    return f == "u8" || f == "u16" || f == "u32" || f == "u64" || f == "bytes";
}

// Calls whose arguments size or position a buffer operation. A wire-tainted
// argument here is the paper's nightmare scenario: primary and backup crash
// (or wedge) identically on the same replayed segment.
bool is_sink_call(std::string_view f) {
    static constexpr const char* kSinks[] = {
        "resize",    "reserve",   "subspan",         "take",   "write_at",
        "peek",      "copy_from", "copy_range",      "ack_to", "advance",
        "memcpy",    "memmove",   "release_through", "memset"};
    for (const char* s : kSinks) {
        if (f == s) return true;
    }
    return false;
}

bool is_sanitizer_call(std::string_view f) {
    return f == "min" || f == "max" || f == "clamp";
}

bool is_relational(const Token& t) {
    return t.kind == TokKind::kPunct &&
           (t.text == "<" || t.text == ">" || t.text == "<=" || t.text == ">=" ||
            t.text == "==" || t.text == "!=");
}

bool has_narrow_type(const std::vector<Token>& toks, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
        std::string_view t = toks[i].text;
        if (t == "uint8_t" || t == "int8_t" || t == "uint16_t" || t == "int16_t" ||
            t == "char" || t == "short") {
            return true;
        }
    }
    return false;
}

std::size_t match_bracket(const std::vector<Token>& toks, std::size_t open, std::size_t hi) {
    int depth = 0;
    for (std::size_t i = open; i < hi; ++i) {
        if (toks[i].text == "[") ++depth;
        else if (toks[i].text == "]") {
            if (--depth == 0) return i;
        }
    }
    return hi;
}

struct TaintCtx {
    const Tree& tree;
    const SourceFile& file;
    const std::vector<Token>& toks;
    const ClassModel* cls = nullptr;
    const SummaryTable& sums;
    const Cfg* cfg = nullptr;
    LocalTypes types;
    std::string fn_label;
    std::vector<Finding>* report = nullptr;  // rule mode only
    TaintOutcome* outcome = nullptr;         // host-body replay only

    // Taint of a never-assigned variable: wire-struct typed values are
    // wire-tainted from birth (their fields came off the wire somewhere).
    [[nodiscard]] std::uint32_t default_mask(const std::string& key) const {
        std::string base = key.substr(0, key.find('.'));
        const std::string* t = types.find(base);
        return t != nullptr && is_wire_struct(*t) ? kTaintWire : 0;
    }

    [[nodiscard]] std::uint32_t lookup(const TaintState& st, const std::string& key) const {
        auto it = st.find(key);
        if (it != st.end()) return it->second;
        std::size_t dot = key.find('.');
        if (dot != std::string::npos) {
            auto base = st.find(key.substr(0, dot));
            if (base != st.end()) return base->second;
        }
        return default_mask(key);
    }
};

TaintState taint_join(const TaintCtx& ctx, const TaintState& a, const TaintState& b) {
    TaintState r = a;
    for (const auto& [k, v] : b) {
        auto it = r.find(k);
        if (it == r.end()) {
            r[k] = v | ctx.default_mask(k);  // absent on the other path = default
        } else {
            it->second |= v;
        }
    }
    for (auto& [k, v] : r) {
        if (b.find(k) == b.end()) v |= ctx.default_mask(k);
    }
    return r;
}

void taint_sink(const TaintCtx& ctx, int line, const char* kind, std::uint32_t mask) {
    if (mask == 0) return;
    if ((mask & kTaintWire) != 0 && ctx.report != nullptr) {
        const bool narrowing = std::strcmp(kind, "narrowing cast") == 0;
        add(*ctx.report, ctx.file, line, narrowing ? "taint.narrowing" : "taint.wire_to_index",
            std::string("wire-tainted value reaches an unsanitized ") + kind + " in " +
                ctx.fn_label +
                "() with no range check on every path; clamp or compare it against a "
                "bound first, or annotate the statement with // sanitized(<name>) and "
                "say why");
    }
    if ((mask & kParamBits) != 0 && ctx.outcome != nullptr) {
        ctx.outcome->param_sinks.push_back({mask & kParamBits, line, kind});
    }
}

// Resolves the class a receiver's flattened type names, if any.
const ClassModel* class_of_receiver(const Tree& tree, const std::string& type) {
    std::string word;
    for (std::size_t i = 0; i <= type.size(); ++i) {
        char c = i < type.size() ? type[i] : ' ';
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
            c == '_') {
            word += c;
            continue;
        }
        if (!word.empty()) {
            auto it = tree.classes.find(word);
            if (it != tree.classes.end()) return &it->second;
            word.clear();
        }
    }
    return nullptr;
}

// Comma-split argument ranges of the call whose '(' is at `open`.
std::vector<std::pair<std::size_t, std::size_t>> split_args(const std::vector<Token>& toks,
                                                            std::size_t open,
                                                            std::size_t close) {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    if (close <= open + 1) return out;
    int depth = 0;
    std::size_t start = open + 1;
    for (std::size_t i = open + 1; i < close; ++i) {
        std::string_view t = toks[i].text;
        if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
        else if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
        else if (t == "," && depth == 0) {
            out.emplace_back(start, i);
            start = i + 1;
        }
    }
    out.emplace_back(start, close);
    return out;
}

// Walks [lo, hi) computing the expression's taint mask while firing sink
// checks. Structure is approximated: any tainted value source in the range
// taints the whole expression, except inside min/max/clamp (bounded) and
// when the expression is a top-level comparison (boolean result).
std::uint32_t taint_eval(const TaintCtx& ctx, TaintState& st, std::size_t lo, std::size_t hi,
                         int depth) {
    if (depth > 24 || lo >= hi) return 0;
    const auto& toks = ctx.toks;
    std::uint32_t mask = 0;
    bool top_compare = false;
    int paren = 0;
    for (std::size_t i = lo; i < hi; ++i) {
        if (ctx.cfg != nullptr && ctx.cfg->opaque(i)) {
            i = opaque_end(*ctx.cfg, i) - 1;
            continue;
        }
        const Token& tk = toks[i];
        std::string_view t = tk.text;
        if (t == "(") {
            ++paren;
            continue;
        }
        if (t == ")") {
            --paren;
            continue;
        }
        if (paren == 0 && is_relational(tk)) top_compare = true;
        if (t == "[") {
            std::size_t close = match_bracket(toks, i, hi);
            std::uint32_t inner = taint_eval(ctx, st, i + 1, close, depth + 1);
            // A '[' is a subscript only in postfix position (after an ident
            // or closing bracket); otherwise it opens a lambda capture list.
            const bool postfix = i > lo && (toks[i - 1].kind == TokKind::kIdent ||
                                            toks[i - 1].text == ")" || toks[i - 1].text == "]");
            if (postfix) taint_sink(ctx, tk.line, "index", inner);
            i = close;
            continue;
        }
        if (tk.kind != TokKind::kIdent) continue;

        // static_cast<uint16_t>(expr): narrowing throws the high bits away —
        // a silent truncation sink when the operand is wire-tainted.
        if (t == "static_cast" && i + 1 < hi && toks[i + 1].text == "<") {
            int angle = 0;
            std::size_t gt = hi;
            for (std::size_t j = i + 1; j < hi; ++j) {
                if (toks[j].text == "<") ++angle;
                else if (toks[j].text == ">" && --angle == 0) {
                    gt = j;
                    break;
                }
            }
            if (gt + 1 < hi && toks[gt + 1].text == "(") {
                std::size_t close = match_paren(toks, gt + 1, hi);
                std::uint32_t inner = taint_eval(ctx, st, gt + 2, close, depth + 1);
                if (has_narrow_type(toks, i + 2, gt)) {
                    taint_sink(ctx, tk.line, "narrowing cast", inner);
                }
                mask |= inner;
                i = close;
            }
            continue;
        }

        // std::min/max/clamp bound their result: contributes nothing, but
        // sinks inside the arguments still fire.
        if (is_sanitizer_call(t) && i + 1 < hi && toks[i + 1].text == "(") {
            std::size_t close = match_paren(toks, i + 1, hi);
            (void)taint_eval(ctx, st, i + 2, close, depth + 1);
            i = close;
            continue;
        }

        if (!bare(toks, i)) continue;
        std::string name(t);
        std::string key = name;
        std::string_view field;
        std::size_t span_end = i + 1;
        if (i + 2 < hi && toks[i + 1].text == "." && toks[i + 2].kind == TokKind::kIdent) {
            field = toks[i + 2].text;
            key = name + "." + std::string(field);
            span_end = i + 3;
        }
        const bool is_call = span_end < hi && toks[span_end].text == "(";
        std::size_t close = is_call ? match_paren(toks, span_end, hi) : 0;

        // `// sanitized(x)` on this line or the line above: the analysis
        // trusts the author that x is range-checked by means it cannot see.
        bool annotated = false;
        for (const SanitizedAnnotation& ann : ctx.file.lex.sanitized) {
            if ((ann.name == key || ann.name == name) &&
                (ann.line == tk.line || ann.line == tk.line - 1)) {
                st[ann.name] = 0;
                annotated = true;
            }
        }
        if (annotated) {
            if (is_call) i = close;
            else i = span_end - 1;
            continue;
        }

        std::uint32_t occ = 0;
        bool consumed = false;
        bool from_summary = false;
        if (is_call) {
            std::string_view callee = field.empty() ? std::string_view(name) : field;
            if (is_sink_call(callee)) {
                for (auto [alo, ahi] : split_args(toks, span_end, close)) {
                    taint_sink(ctx, toks[span_end].line, "size argument",
                               taint_eval(ctx, st, alo, ahi, depth + 1));
                }
                i = close;
                continue;
            }
            // Resolve a summarized callee: bare same-class / free calls, or
            // a one-step receiver whose declared type names a known class.
            const FunctionSummary* s = nullptr;
            if (field.empty()) {
                if (ctx.cls != nullptr) s = ctx.sums.find(ctx.cls->name, name);
                if (s == nullptr) s = ctx.sums.find("", name);
            } else if (const std::string* rt = ctx.types.find(name)) {
                if (const ClassModel* rc = class_of_receiver(ctx.tree, *rt)) {
                    s = ctx.sums.find(rc->name, field);
                }
            }
            if (s != nullptr) {
                std::vector<std::uint32_t> am;
                for (auto [alo, ahi] : split_args(toks, span_end, close)) {
                    am.push_back(taint_eval(ctx, st, alo, ahi, depth + 1));
                }
                occ = s->returns_wire_taint ? kTaintWire : 0;
                for (std::size_t k = 0; k < am.size() && k < 16; ++k) {
                    if ((s->param_taints_return >> k & 1u) != 0) occ |= am[k];
                }
                // Transitive sinks: a wire-tainted argument feeding an
                // unsanitized sink inside the callee reports at this call.
                for (const TaintSink& sink : s->param_sinks) {
                    std::uint32_t m = 0;
                    for (std::size_t k = 0; k < am.size() && k < 16; ++k) {
                        if ((sink.params >> k & 1u) != 0) m |= am[k];
                    }
                    if (m == 0) continue;
                    if ((m & kTaintWire) != 0 && ctx.report != nullptr) {
                        const bool narrowing =
                            std::strcmp(sink.kind, "narrowing cast") == 0;
                        add(*ctx.report, ctx.file, tk.line,
                            narrowing ? "taint.narrowing" : "taint.wire_to_index",
                            "wire-tainted argument to " + std::string(callee) +
                                "() reaches an unsanitized " + sink.kind +
                                " inside it (line " + std::to_string(sink.line) +
                                "); validate before the call or sanitize at the "
                                "parse boundary");
                    }
                    if ((m & kParamBits) != 0 && ctx.outcome != nullptr) {
                        ctx.outcome->param_sinks.push_back(
                            {m & kParamBits, tk.line, sink.kind});
                    }
                }
                consumed = true;
                from_summary = true;
            } else if (!field.empty()) {
                // Unsummarized method call: reads off a WireReader or a wire
                // struct yield wire bytes; anything else propagates the
                // receiver's and the arguments' taint.
                std::uint32_t args = 0;
                for (auto [alo, ahi] : split_args(toks, span_end, close)) {
                    args |= taint_eval(ctx, st, alo, ahi, depth + 1);
                }
                const std::string* rt = ctx.types.find(name);
                if (rt != nullptr && word_in_type(*rt, "WireReader") &&
                    is_reader_read(field)) {
                    occ = kTaintWire;
                } else {
                    occ = ctx.lookup(st, key) | args;
                }
                consumed = true;
            }
            // Bare unresolved call: fall through — the argument tokens are
            // walked by the main loop and taint the expression.
        } else {
            occ = ctx.lookup(st, key);
        }

        // Range check: a value compared against something is sanitized from
        // here on (coarse but false-positive-safe on both branches).
        std::size_t after = consumed ? close + 1 : span_end;
        const bool compared = (after < hi && is_relational(toks[after])) ||
                              (i > lo && is_relational(toks[i - 1]));
        if (compared && !from_summary) {
            st[key] = 0;
            occ = 0;
        }
        mask |= occ;
        if (consumed) i = close;
        else i = span_end - 1;
    }
    return top_compare ? 0 : mask;
}

void taint_statement(const TaintCtx& ctx, TaintState& st, std::size_t s, std::size_t e) {
    if (s >= e) return;
    const auto& toks = ctx.toks;
    if (toks[s].text == "return" || toks[s].text == "co_return") {
        std::uint32_t m = taint_eval(ctx, st, s + 1, e, 0);
        // Returning an aggregate returns its tainted fields too: a parse()
        // that fills a clean local from WireReader reads and returns it must
        // summarize as wire-tainted even though the base key is clean.
        for (std::size_t j = s + 1; j < e; ++j) {
            if (toks[j].kind != TokKind::kIdent || !bare(toks, j)) continue;
            std::string prefix = std::string(toks[j].text) + ".";
            for (auto it = st.lower_bound(prefix);
                 it != st.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
                m |= it->second;
            }
        }
        if (ctx.outcome != nullptr) {
            ctx.outcome->param_taints_return |= m & kParamBits;
            if ((m & kTaintWire) != 0) ctx.outcome->returns_wire_taint = true;
        }
        return;
    }
    // `net::TcpSegment seg;` — a freshly constructed wire struct is clean:
    // taint marks bytes that came off the wire, not the type itself. An
    // initializer (`TcpSegment s = parse(raw);`) overrides this below via
    // the ordinary assignment path.
    for (std::size_t j = s; j + 1 < e; ++j) {
        if (toks[j].kind != TokKind::kIdent || toks[j + 1].kind != TokKind::kIdent ||
            !is_wire_struct(std::string(toks[j].text))) {
            continue;
        }
        std::string var(toks[j + 1].text);
        st[var] = 0;
        std::string prefix = var + ".";
        for (auto it = st.lower_bound(prefix);
             it != st.end() && it->first.compare(0, prefix.size(), prefix) == 0;) {
            it = st.erase(it);
        }
    }
    // Split at the top-level '=' (plain assignment only; compound ops keep
    // the old taint and the RHS is still scanned for sinks).
    int depth = 0;
    std::size_t eq = e;
    for (std::size_t j = s; j < e; ++j) {
        if (ctx.cfg != nullptr && ctx.cfg->opaque(j)) {
            j = opaque_end(*ctx.cfg, j) - 1;
            continue;
        }
        std::string_view t = toks[j].text;
        if (t == "(" || t == "[" || t == "{") ++depth;
        else if (t == ")" || t == "]" || t == "}") --depth;
        else if (t == "=" && depth == 0 && toks[j].kind == TokKind::kPunct) {
            eq = j;
            break;
        }
    }
    if (eq == e) {
        (void)taint_eval(ctx, st, s, e, 0);
        return;
    }
    std::uint32_t rhs = taint_eval(ctx, st, eq + 1, e, 0);
    // `arr[i] = ...`: the subscript sink fires; no tracked key changes.
    for (std::size_t j = s; j < eq; ++j) {
        if (toks[j].text == "[") {
            (void)taint_eval(ctx, st, s, eq, 0);
            return;
        }
    }
    if (eq < s + 1 || toks[eq - 1].kind != TokKind::kIdent) return;
    std::string key(toks[eq - 1].text);
    if (eq >= s + 3 && toks[eq - 2].text == "." && toks[eq - 3].kind == TokKind::kIdent &&
        bare(toks, eq - 3)) {
        key = std::string(toks[eq - 3].text) + "." + key;
    } else if (!bare(toks, eq - 1)) {
        return;  // `p->f = ...` / `ns::x = ...`: unmodelled, no update
    }
    st[key] = rhs;
    if (key.find('.') == std::string::npos) {
        // Assigning the base object kills its stale field chains.
        std::string prefix = key + ".";
        for (auto it = st.lower_bound(prefix);
             it != st.end() && it->first.compare(0, prefix.size(), prefix) == 0;) {
            it = st.erase(it);
        }
    }
}

TaintState taint_transfer(const TaintCtx& ctx, int node, TaintState st) {
    const CfgNode& nd = ctx.cfg->nodes[static_cast<std::size_t>(node)];
    const auto& toks = ctx.toks;
    std::size_t i = nd.lo;
    while (i < nd.hi) {
        if (ctx.cfg->opaque(i)) {
            i = opaque_end(*ctx.cfg, i);
            continue;
        }
        std::size_t e = i;
        int depth = 0;
        while (e < nd.hi) {
            if (ctx.cfg->opaque(e)) {
                e = opaque_end(*ctx.cfg, e);
                continue;
            }
            std::string_view t = toks[e].text;
            if (t == "(" || t == "[" || t == "{") ++depth;
            else if (t == ")" || t == "]" || t == "}") --depth;
            else if (t == ";" && depth <= 0) break;
            ++e;
        }
        taint_statement(ctx, st, i, e);
        i = e + 1;
    }
    return st;
}

} // namespace

// ---------------------------------------------------------------------------
// Rule entry points
// ---------------------------------------------------------------------------

TaintOutcome analyze_taint(const Tree& tree, const FunctionBody& fn, const ClassModel* cls,
                           const SummaryTable& summaries, std::vector<Finding>* report) {
    TaintOutcome outcome;
    const auto& toks = fn.file->lex.tokens;
    TaintCtx ctx{tree, *fn.file, toks, cls, summaries, nullptr, {}, {}, nullptr, nullptr};
    ctx.types = collect_local_types(fn, cls);
    ctx.fn_label = fn.class_name.empty() ? fn.name : fn.class_name + "::" + fn.name;

    std::vector<Param> params = parse_params(toks, fn.begin);
    TaintState entry;
    for (std::size_t k = 0; k < params.size(); ++k) {
        if (params[k].name.empty()) continue;
        std::uint32_t m = k < 16 ? (1u << k) : 0;
        // The five src/net parse() boundaries: raw bytes in, fields out.
        if (fn.name == "parse" && params[k].type.find("ByteView") != std::string::npos) {
            m |= kTaintWire;
        }
        // A wire-struct parameter carries wire bytes wherever it came from;
        // the explicit entry would otherwise shadow the default-mask rule.
        if (is_wire_struct(params[k].type)) m |= kTaintWire;
        entry[params[k].name] = m;
    }

    for (const Cfg& cfg : collect_cfgs(toks, fn.begin, fn.end)) {
        ctx.cfg = &cfg;
        bool host_body = false;  // vs a lambda body, whose params are unknown
        for (const CfgNode& nd : cfg.nodes) {
            if (nd.lo != nd.hi && nd.lo <= fn.begin + 1) {
                host_body = true;
                break;
            }
        }
        ctx.report = nullptr;
        ctx.outcome = nullptr;
        auto in = solve_forward(
            cfg, host_body ? entry : TaintState{},
            [&](int n, const TaintState& s) { return taint_transfer(ctx, n, s); },
            [&](const TaintState& a, const TaintState& b) { return taint_join(ctx, a, b); });
        if (in.empty()) continue;  // iteration cap: skip, never guess
        ctx.report = report;
        ctx.outcome = host_body ? &outcome : nullptr;
        for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
            if (!in[n].has_value()) continue;
            (void)taint_transfer(ctx, static_cast<int>(n), *in[n]);
        }
        ctx.report = nullptr;
        ctx.outcome = nullptr;
    }

    auto& sinks = outcome.param_sinks;
    std::sort(sinks.begin(), sinks.end(), [](const TaintSink& a, const TaintSink& b) {
        int k = std::strcmp(a.kind, b.kind);
        return std::tie(a.params, a.line) < std::tie(b.params, b.line) ||
               (a.params == b.params && a.line == b.line && k < 0);
    });
    sinks.erase(std::unique(sinks.begin(), sinks.end(),
                            [](const TaintSink& a, const TaintSink& b) {
                                return a.params == b.params && a.line == b.line &&
                                       std::strcmp(a.kind, b.kind) == 0;
                            }),
                sinks.end());
    if (sinks.size() > 32) sinks.resize(32);  // cap against pathological bodies
    return outcome;
}

void rule_wire_taint(const Tree& tree, const SourceFile& file, const SummaryTable& sums,
                     std::vector<Finding>& out) {
    for (const auto& [name, cls] : tree.classes) {
        for (const FunctionBody& fn : cls.functions) {
            if (fn.file != &file) continue;
            (void)analyze_taint(tree, fn, &cls, sums, &out);
        }
    }
    for (const FunctionBody& fn : tree.free_functions) {
        if (fn.file != &file) continue;
        (void)analyze_taint(tree, fn, nullptr, sums, &out);
    }
}

void rule_event_dataflow(const ClassModel& cls, const SummaryTable& sums,
                         std::vector<Finding>& out) {
    std::vector<std::string> members;
    for (const MemberVar& m : cls.members) {
        if (m.type.find("EventId") != std::string::npos) members.push_back(m.name);
    }
    if (members.empty()) return;
    std::set<std::string> self_fns = self_function_names(cls);
    for (const FunctionBody& fn : cls.functions) {
        EvCtx ctx{cls, *fn.file, fn.file->lex.tokens, nullptr,
                  members, self_fns, fn.name, &sums, nullptr};
        run_event_dataflow(ctx, fn, out);
    }
}

void rule_guarded_by(const ClassModel& cls, const SummaryTable& sums,
                     std::vector<Finding>& out) {
    std::map<std::string, std::string> guarded;
    std::set<std::string> mutexes;
    for (const MemberVar& m : cls.members) {
        if (m.guarded_by.empty()) continue;
        guarded[m.name] = m.guarded_by;
        mutexes.insert(m.guarded_by);
    }
    if (guarded.empty()) return;
    for (const FunctionBody& fn : cls.functions) {
        // Construction and destruction are single-threaded by definition:
        // no other thread can hold a reference yet / still. Lambdas created
        // there DO run concurrently and are analyzed below regardless.
        const bool is_ctor_or_dtor = fn.name == cls.name || fn.name == "~" + cls.name;
        GuardCtx ctx{cls,     *fn.file, fn.file->lex.tokens,       nullptr, guarded,
                     mutexes, {},       fn.name,
                     self_function_names(cls), &sums, nullptr};
        collect_guard_bindings(ctx, fn.begin, fn.end);
        for (const Cfg& cfg : collect_cfgs(ctx.toks, fn.begin, fn.end)) {
            // Skip the ctor/dtor's own statements but keep lambda bodies:
            // the main body is the one CFG whose token range starts at the
            // function's opening brace (lambda bodies start later).
            bool body_starts_at_fn = false;
            for (const CfgNode& nd : cfg.nodes) {
                if (nd.lo != nd.hi && nd.lo <= fn.begin + 1) {
                    body_starts_at_fn = true;
                    break;
                }
            }
            const bool skip_checks = is_ctor_or_dtor && body_starts_at_fn;
            ctx.cfg = &cfg;
            LockState entry;
            ctx.report = nullptr;
            auto in = solve_forward(
                cfg, entry,
                [&](int n, const LockState& s) { return lock_transfer(ctx, n, s); },
                lock_join);
            if (in.empty() || skip_checks) continue;
            ctx.report = &out;
            for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
                if (!in[n].has_value()) continue;
                (void)lock_transfer(ctx, static_cast<int>(n), *in[n]);
            }
            ctx.report = nullptr;
        }
    }
}

void rule_payload_move_class(const ClassModel& cls, const SummaryTable& sums,
                             std::vector<Finding>& out) {
    std::set<std::string> self_fns = self_function_names(cls);
    for (const FunctionBody& fn : cls.functions) {
        PmCtx ctx{&cls, *fn.file, fn.file->lex.tokens, nullptr, {}, {}, self_fns,
                  fn.name, &sums, nullptr};
        run_payload_dataflow(ctx, fn, out);
    }
}

void rule_payload_move_free(const SourceFile& file,
                            const std::vector<FunctionBody>& free_functions,
                            const SummaryTable& sums, std::vector<Finding>& out) {
    for (const FunctionBody& fn : free_functions) {
        if (fn.file != &file) continue;
        PmCtx ctx{nullptr, file, file.lex.tokens, nullptr, {}, {}, {}, fn.name, &sums,
                  nullptr};
        run_payload_dataflow(ctx, fn, out);
    }
}

} // namespace staticcheck
