#include "cfg.hpp"

namespace staticcheck {

namespace {

// A parsed statement fragment: the node control enters through, and the
// nodes whose fall-through edge is still dangling (to be wired to whatever
// comes next). `entry == -1` never escapes the builder: every statement
// produces at least one node.
struct Frag {
    int entry = -1;
    std::vector<int> exits;
};

struct Builder {
    const std::vector<Token>& toks;
    std::size_t limit;  // one past the body's closing '}'
    Cfg cfg;
    int scope_counter = 0;
    bool failed = false;

    struct LoopCtx {
        bool is_switch = false;
        std::vector<int> breaks;     // nodes whose succ is the construct's end
        std::vector<int> continues;  // nodes whose succ is the loop's re-test
    };
    std::vector<LoopCtx> loops;

    Builder(const std::vector<Token>& t, std::size_t lim) : toks(t), limit(lim) {}

    int add_node(std::size_t lo, std::size_t hi, int scope) {
        cfg.nodes.push_back({lo, hi, {}, scope, -1});
        return static_cast<int>(cfg.nodes.size()) - 1;
    }

    void wire(const std::vector<int>& from, int to) {
        for (int n : from) cfg.nodes[static_cast<std::size_t>(n)].succ.push_back(to);
    }

    // Index one past the brace matching toks[open] (== "{").
    std::size_t match_brace(std::size_t open) {
        int depth = 0;
        for (std::size_t i = open; i < limit; ++i) {
            if (toks[i].text == "{") ++depth;
            else if (toks[i].text == "}") {
                if (--depth == 0) return i + 1;
            }
        }
        failed = true;
        return limit;
    }

    // Index of the ")" matching toks[open] (== "("), or limit on failure.
    std::size_t match_paren(std::size_t open) {
        int depth = 0;
        for (std::size_t i = open; i < limit; ++i) {
            if (toks[i].text == "(") ++depth;
            else if (toks[i].text == ")") {
                if (--depth == 0) return i;
            }
        }
        failed = true;
        return limit;
    }

    // Index of the "]" matching toks[open] (== "["), or limit on failure.
    std::size_t match_bracket(std::size_t open) {
        int depth = 0;
        for (std::size_t i = open; i < limit; ++i) {
            if (toks[i].text == "[") ++depth;
            else if (toks[i].text == "]") {
                if (--depth == 0) return i;
            }
        }
        failed = true;
        return limit;
    }

    // Records lambda bodies inside [lo, hi) so rules can skip them and
    // analyze them separately. Conservative shape match: a '[' capture list
    // (not an attribute), optional '(params)', a short run of specifier
    // tokens, then '{'. A braced range misclassified as a lambda merely
    // becomes opaque — degrade-safe.
    void detect_lambdas(std::size_t lo, std::size_t hi) {
        std::size_t i = lo;
        while (i < hi) {
            if (toks[i].text != "[") {
                ++i;
                continue;
            }
            if (i + 1 < hi && toks[i + 1].text == "[") {  // [[attribute]]
                i += 2;
                continue;
            }
            std::size_t close = match_bracket(i);
            if (close >= hi) return;
            std::size_t m = close + 1;
            if (m < hi && toks[m].text == "(") {
                m = match_paren(m);
                if (m >= hi) return;
                ++m;
            }
            // Specifiers / trailing return: mutable, noexcept, -> type...
            std::size_t steps = 0;
            while (m < hi && steps < 16 && toks[m].text != "{" && toks[m].text != ";" &&
                   toks[m].text != "," && toks[m].text != ")" && toks[m].text != "=" &&
                   toks[m].text != "]") {
                ++m;
                ++steps;
            }
            if (m < hi && toks[m].text == "{") {
                std::size_t body_end = match_brace(m);
                cfg.lambda_bodies.push_back({m, body_end});
                i = body_end;
            } else {
                i = close + 1;
            }
        }
    }

    int make_range_node(std::size_t lo, std::size_t hi, int scope) {
        detect_lambdas(lo, hi);
        return add_node(lo, hi, scope);
    }

    // --- statements -------------------------------------------------------

    // Scans a plain statement starting at i: ends at the first ';' at
    // paren depth 0, stepping over braced sub-ranges whole. Returns one
    // past the terminator.
    std::size_t plain_statement_end(std::size_t i) {
        int paren = 0;
        while (i < limit) {
            std::string_view t = toks[i].text;
            if (t == "{") {
                i = match_brace(i);
                continue;
            }
            if (t == "}") return i;  // enclosing block closes: no terminator
            if (t == "(" || t == "[") ++paren;
            else if (t == ")" || t == "]") --paren;
            else if (t == ";" && paren == 0) return i + 1;
            ++i;
        }
        return limit;
    }

    LoopCtx* nearest_loop() {
        for (auto it = loops.rbegin(); it != loops.rend(); ++it) {
            if (!it->is_switch) return &*it;
        }
        return nullptr;
    }

    // Parses one statement at i inside brace scope `scope`; advances i.
    Frag parse_stmt(std::size_t& i, int scope) {
        std::string_view t = toks[i].text;

        if (t == "{") return parse_block(i);

        if (t == "goto" || t == "try" || t == "catch" || t == "co_await" ||
            t == "co_yield" || t == "co_return") {
            failed = true;
            i = limit;
            return {};
        }
        // A `label:` target would invalidate the structured CFG.
        if (toks[i].kind == TokKind::kIdent && i + 1 < limit && toks[i + 1].text == ":" &&
            t != "case" && t != "default" && t != "public" && t != "private" &&
            t != "protected") {
            failed = true;
            i = limit;
            return {};
        }

        if (t == "if") return parse_if(i, scope);
        if (t == "while") return parse_while(i, scope);
        if (t == "do") return parse_do(i, scope);
        if (t == "for") return parse_for(i, scope);
        if (t == "switch") return parse_switch(i, scope);

        if (t == "return" || t == "throw") {
            std::size_t end = plain_statement_end(i);
            int n = make_range_node(i, end, scope);
            cfg.nodes[static_cast<std::size_t>(n)].succ.push_back(cfg.exit);
            i = end;
            return {n, {}};
        }
        if (t == "break") {
            int n = add_node(i, i + 1, scope);
            if (loops.empty()) {
                failed = true;
            } else {
                loops.back().breaks.push_back(n);
            }
            i = plain_statement_end(i);
            return {n, {}};
        }
        if (t == "continue") {
            int n = add_node(i, i + 1, scope);
            LoopCtx* loop = nearest_loop();
            if (loop == nullptr) {
                failed = true;
            } else {
                loop->continues.push_back(n);
            }
            i = plain_statement_end(i);
            return {n, {}};
        }
        if (t == ";") {
            int n = add_node(i, i, scope);
            ++i;
            return {n, {n}};
        }

        // Plain statement (declaration, expression, braced init, lambda...).
        std::size_t end = plain_statement_end(i);
        int n = make_range_node(i, end, scope);
        i = end;
        return {n, {n}};
    }

    Frag parse_block(std::size_t& i) {
        const int scope = ++scope_counter;
        std::size_t close = match_brace(i) - 1;  // index of '}'
        ++i;
        Frag frag;
        std::vector<int> dangling;
        while (i < close && !failed) {
            Frag f = parse_stmt(i, scope);
            if (failed) return {};
            if (frag.entry == -1) frag.entry = f.entry;
            wire(dangling, f.entry);
            dangling = f.exits;
        }
        // Synthetic scope-exit node: guards acquired in this scope die here.
        int se = add_node(0, 0, scope);
        cfg.nodes[static_cast<std::size_t>(se)].closes_scope = scope;
        wire(dangling, se);
        if (frag.entry == -1) frag.entry = se;
        frag.exits = {se};
        i = close + 1;
        return frag;
    }

    Frag parse_if(std::size_t& i, int scope) {
        if (i + 1 < limit && toks[i + 1].text == "constexpr") ++i;  // if constexpr (...)
        if (i + 1 >= limit || toks[i + 1].text != "(") {
            failed = true;
            return {};
        }
        std::size_t rparen = match_paren(i + 1);
        if (failed) return {};
        int cond = make_range_node(i + 2, rparen, scope);
        i = rparen + 1;
        Frag then = parse_stmt(i, scope);
        if (failed) return {};
        cfg.nodes[static_cast<std::size_t>(cond)].succ.push_back(then.entry);
        Frag out{cond, then.exits};
        if (i < limit && toks[i].text == "else") {
            ++i;
            Frag els = parse_stmt(i, scope);
            if (failed) return {};
            cfg.nodes[static_cast<std::size_t>(cond)].succ.push_back(els.entry);
            out.exits.insert(out.exits.end(), els.exits.begin(), els.exits.end());
        } else {
            out.exits.push_back(cond);  // false edge falls through
        }
        return out;
    }

    Frag parse_while(std::size_t& i, int scope) {
        if (i + 1 >= limit || toks[i + 1].text != "(") {
            failed = true;
            return {};
        }
        std::size_t rparen = match_paren(i + 1);
        if (failed) return {};
        int cond = make_range_node(i + 2, rparen, scope);
        i = rparen + 1;
        loops.push_back({});
        Frag body = parse_stmt(i, scope);
        LoopCtx ctx = loops.back();
        loops.pop_back();
        if (failed) return {};
        cfg.nodes[static_cast<std::size_t>(cond)].succ.push_back(body.entry);
        wire(body.exits, cond);
        wire(ctx.continues, cond);
        Frag out{cond, {cond}};
        out.exits.insert(out.exits.end(), ctx.breaks.begin(), ctx.breaks.end());
        return out;
    }

    Frag parse_do(std::size_t& i, int scope) {
        ++i;  // past 'do'
        loops.push_back({});
        Frag body = parse_stmt(i, scope);
        LoopCtx ctx = loops.back();
        loops.pop_back();
        if (failed) return {};
        if (i >= limit || toks[i].text != "while" || i + 1 >= limit ||
            toks[i + 1].text != "(") {
            failed = true;
            return {};
        }
        std::size_t rparen = match_paren(i + 1);
        if (failed) return {};
        int cond = make_range_node(i + 2, rparen, scope);
        i = rparen + 1;
        if (i < limit && toks[i].text == ";") ++i;
        wire(body.exits, cond);
        wire(ctx.continues, cond);
        cfg.nodes[static_cast<std::size_t>(cond)].succ.push_back(body.entry);
        Frag out{body.entry, {cond}};
        out.exits.insert(out.exits.end(), ctx.breaks.begin(), ctx.breaks.end());
        return out;
    }

    Frag parse_for(std::size_t& i, int scope) {
        if (i + 1 >= limit || toks[i + 1].text != "(") {
            failed = true;
            return {};
        }
        std::size_t lparen = i + 1;
        std::size_t rparen = match_paren(lparen);
        if (failed) return {};

        // Split the header on top-level ';' — two of them: classic for;
        // none: range-for (the ':' form).
        std::vector<std::size_t> semis;
        int depth = 0;
        for (std::size_t j = lparen + 1; j < rparen; ++j) {
            std::string_view t = toks[j].text;
            if (t == "(" || t == "[" || t == "{") ++depth;
            else if (t == ")" || t == "]" || t == "}") --depth;
            else if (t == ";" && depth == 0) semis.push_back(j);
        }

        if (semis.size() == 2) {
            int init = make_range_node(lparen + 1, semis[0], scope);
            int cond = make_range_node(semis[0] + 1, semis[1], scope);
            int inc = make_range_node(semis[1] + 1, rparen, scope);
            cfg.nodes[static_cast<std::size_t>(init)].succ.push_back(cond);
            i = rparen + 1;
            loops.push_back({});
            Frag body = parse_stmt(i, scope);
            LoopCtx ctx = loops.back();
            loops.pop_back();
            if (failed) return {};
            cfg.nodes[static_cast<std::size_t>(cond)].succ.push_back(body.entry);
            wire(body.exits, inc);
            wire(ctx.continues, inc);
            cfg.nodes[static_cast<std::size_t>(inc)].succ.push_back(cond);
            Frag out{init, {cond}};
            out.exits.insert(out.exits.end(), ctx.breaks.begin(), ctx.breaks.end());
            return out;
        }
        if (semis.empty()) {
            // Range-for: one header node, looped through the body.
            int head = make_range_node(lparen + 1, rparen, scope);
            i = rparen + 1;
            loops.push_back({});
            Frag body = parse_stmt(i, scope);
            LoopCtx ctx = loops.back();
            loops.pop_back();
            if (failed) return {};
            cfg.nodes[static_cast<std::size_t>(head)].succ.push_back(body.entry);
            wire(body.exits, head);
            wire(ctx.continues, head);
            Frag out{head, {head}};
            out.exits.insert(out.exits.end(), ctx.breaks.begin(), ctx.breaks.end());
            return out;
        }
        failed = true;  // for-with-one-semi: not a shape we model
        return {};
    }

    Frag parse_switch(std::size_t& i, int scope) {
        if (i + 1 >= limit || toks[i + 1].text != "(") {
            failed = true;
            return {};
        }
        std::size_t rparen = match_paren(i + 1);
        if (failed) return {};
        int cond = make_range_node(i + 2, rparen, scope);
        i = rparen + 1;
        if (i >= limit || toks[i].text != "{") {
            failed = true;
            return {};
        }
        const int body_scope = ++scope_counter;
        std::size_t close = match_brace(i) - 1;  // index of '}'
        ++i;

        loops.push_back({.is_switch = true, .breaks = {}, .continues = {}});
        bool pending_label = false;
        bool has_default = false;
        std::vector<int> dangling;
        while (i < close && !failed) {
            std::string_view t = toks[i].text;
            if (t == "case" || t == "default") {
                if (t == "default") has_default = true;
                // Skip to the label's ':' (a lone ":", never "::").
                while (i < close && toks[i].text != ":") ++i;
                if (i >= close) {
                    failed = true;
                    break;
                }
                ++i;
                pending_label = true;
                continue;
            }
            Frag f = parse_stmt(i, body_scope);
            if (failed) break;
            wire(dangling, f.entry);
            if (pending_label) {
                cfg.nodes[static_cast<std::size_t>(cond)].succ.push_back(f.entry);
                pending_label = false;
            }
            dangling = f.exits;
        }
        LoopCtx ctx = loops.back();
        loops.pop_back();
        if (failed) return {};
        i = close + 1;
        // Scope-exit for the switch body.
        int se = add_node(0, 0, body_scope);
        cfg.nodes[static_cast<std::size_t>(se)].closes_scope = body_scope;
        wire(dangling, se);
        wire(ctx.breaks, se);
        Frag out{cond, {se}};
        if (!has_default || pending_label) out.exits.push_back(cond);
        return out;
    }

    Cfg run(std::size_t open) {
        cfg.entry = add_node(0, 0, 0);
        cfg.exit = add_node(0, 0, 0);
        std::size_t i = open;
        Frag body = parse_block(i);
        if (failed || i != limit) {
            cfg.ok = false;
            return std::move(cfg);
        }
        cfg.nodes[static_cast<std::size_t>(cfg.entry)].succ.push_back(body.entry);
        wire(body.exits, cfg.exit);
        cfg.ok = true;
        return std::move(cfg);
    }
};

} // namespace

Cfg build_cfg(const std::vector<Token>& toks, std::size_t open, std::size_t end) {
    if (open >= toks.size() || toks[open].text != "{" || end > toks.size() || end <= open) {
        return {};
    }
    Builder b(toks, end);
    return b.run(open);
}

} // namespace staticcheck
