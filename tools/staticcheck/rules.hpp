// The protocol lint rules. Structural rules live in rules.cpp; the
// flow-sensitive rules (event-lifecycle dataflow, timer-rearm, guarded-by,
// payload-move) live in dataflow.cpp on top of cfg.hpp. Rules emit raw
// findings; run_all_rules() then applies the waiver table centrally
// (// lint:allow <rule> -- reason, or // lint:allow-file <rule> -- reason),
// reports waivers that never fire as `waiver.stale`, sorts and dedupes.
// DESIGN.md §10 documents the structural rules and the waiver syntax,
// §12 the dataflow rules.
#pragma once

#include <vector>

#include "model.hpp"

namespace staticcheck {

// Runs every rule over the tree with `jobs` worker threads (<= 1: serial).
// Output is byte-identical for every jobs value: findings are merged, then
// waiver-filtered, sorted by (file, line, rule, message) and deduped on
// (file, line, rule) as one serial post-pass.
[[nodiscard]] std::vector<Finding> run_all_rules(const Tree& tree, int jobs = 1);

} // namespace staticcheck
