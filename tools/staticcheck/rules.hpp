// The protocol lint rules. Each rule is a pure function of the Tree; all
// findings are filtered through the waiver table (// lint:allow <rule> --
// reason, or // lint:allow-file <rule> -- reason) before being returned.
// DESIGN.md §10 documents every rule and the waiver syntax.
#pragma once

#include <vector>

#include "model.hpp"

namespace staticcheck {

// Runs every rule over the tree; findings are sorted by (file, line).
[[nodiscard]] std::vector<Finding> run_all_rules(const Tree& tree);

} // namespace staticcheck
