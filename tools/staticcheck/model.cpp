#include "model.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace staticcheck {

namespace fs = std::filesystem;

bool SourceFile::waived(int line, const std::string& rule) const {
    for (const Waiver& w : lex.waivers) {
        if (w.rule != rule) continue;
        if (w.whole_file) return true;
        // A waiver comment covers its own line (trailing comment) and the
        // line below it (comment-above-code style).
        if (w.line == line || w.line + 1 == line) return true;
    }
    return false;
}

const MemberVar* ClassModel::find_member(std::string_view n) const {
    for (const MemberVar& m : members) {
        if (m.name == n) return &m;
    }
    return nullptr;
}

namespace {

// ---------------------------------------------------------------------------
// Structural parse
// ---------------------------------------------------------------------------

struct Scope {
    enum Kind { kNamespace, kClass, kBlock } kind = kBlock;
    std::string name;  // class name for kClass
};

// Flattens a token range into a readable type/declaration string.
std::string flatten(const std::vector<Token>& toks, std::size_t begin, std::size_t end) {
    std::string out;
    for (std::size_t i = begin; i < end; ++i) {
        std::string_view t = toks[i].text;
        if (!out.empty() && t != "::" && t != "<" && t != ">" && t != "," &&
            (out.back() != ':' && out.back() != '<')) {
            out += ' ';
        }
        out += t;
    }
    return out;
}

// Returns the index one past the brace that matches toks[open] (which must
// be "{"), or toks.size() if unbalanced.
std::size_t skip_braces(const std::vector<Token>& toks, std::size_t open) {
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].text == "{") ++depth;
        else if (toks[i].text == "}") {
            if (--depth == 0) return i + 1;
        }
    }
    return toks.size();
}

bool is_keyword_like(std::string_view t) {
    return t == "const" || t == "constexpr" || t == "static" || t == "inline" ||
           t == "mutable" || t == "virtual" || t == "explicit" || t == "typename" ||
           t == "volatile";
}

struct Parser {
    const SourceFile& file;
    Tree& tree;
    const std::vector<Token>& toks;

    explicit Parser(const SourceFile& f, Tree& t) : file(f), tree(t), toks(f.lex.tokens) {}

    ClassModel& class_for(const std::string& name, int line) {
        ClassModel& c = tree.classes[name];
        if (c.name.empty()) {
            c.name = name;
            c.declared_in = &file;
            c.line = line;
        }
        return c;
    }

    // Parses the statement whose tokens start at `i` inside `scopes`;
    // returns the index of the first token after the statement.
    std::size_t statement(std::size_t i, std::vector<Scope>& scopes);

    void run() {
        std::vector<Scope> scopes;
        std::size_t i = 0;
        while (i < toks.size()) {
            if (toks[i].text == "}") {
                if (!scopes.empty()) scopes.pop_back();
                ++i;
                continue;
            }
            i = statement(i, scopes);
        }
    }

    // --- statement-head classification helpers ---

    // Looks for `class`/`struct` introducing a definition in [begin, end):
    // the keyword must be followed by an identifier (and optional `final`)
    // whose next token is `{` or `:`. Rejects `enum class` and
    // `template <class T>` forms.
    bool find_class_head(std::size_t begin, std::size_t end, std::string& name) const {
        for (std::size_t j = begin; j < end; ++j) {
            std::string_view t = toks[j].text;
            if (t != "class" && t != "struct") continue;
            if (j > begin && toks[j - 1].text == "enum") continue;
            std::size_t k = j + 1;
            if (k >= end || toks[k].kind != TokKind::kIdent) continue;
            std::string cand(toks[k].text);
            ++k;
            if (k < end && toks[k].text == "final") ++k;
            if (k < end && (toks[k].text == "{" || toks[k].text == ":")) {
                name = std::move(cand);
                return true;
            }
            if (k == end) {  // `class X` right before the statement's `{`
                name = std::move(cand);
                return true;
            }
        }
        return false;
    }

    // If [begin, end) (tokens before a `{`) looks like a function header,
    // extracts the unqualified name and the `Class::` qualifier.
    bool find_function_head(std::size_t begin, std::size_t end, std::string& name,
                            std::string& qualifier, int& line) const {
        // Find the first `(` — its preceding identifier is the name. Skip
        // a leading `template <...>` clause and `[[...]]` attributes.
        std::size_t j = begin;
        if (j < end && toks[j].text == "template") {
            // Skip the balanced `template <...>` clause; the function head
            // proper starts after it (EventQueue::schedule_at and friends).
            ++j;
            if (j >= end || toks[j].text != "<") return false;
            int angle = 0;
            for (; j < end; ++j) {
                if (toks[j].text == "<") ++angle;
                else if (toks[j].text == ">") {
                    if (--angle == 0) {
                        ++j;
                        break;
                    }
                }
            }
            if (angle != 0 || j >= end) return false;
        }
        const std::size_t head_begin = j;
        for (; j < end; ++j) {
            if (toks[j].text == "(") break;
        }
        if (j >= end || j == head_begin) return false;
        std::size_t nm = j - 1;
        if (toks[nm].kind != TokKind::kIdent && toks[nm].text != "]") {
            // operator overloads (`operator==`): name is punct after `operator`.
            if (nm >= 1 && toks[nm - 1].text == "operator") {
                name = "operator" + std::string(toks[nm].text);
                line = toks[nm].line;
                if (nm >= 3 && toks[nm - 2].text == "::" && toks[nm - 3].kind == TokKind::kIdent) {
                    qualifier = std::string(toks[nm - 3].text);
                }
                return true;
            }
            return false;
        }
        if (toks[nm].kind != TokKind::kIdent) return false;
        name = std::string(toks[nm].text);
        line = toks[nm].line;
        if (nm >= 1 && toks[nm - 1].text == "~") name = "~" + name;
        // Qualifier: `Class :: [~] name (`
        std::size_t q = nm;
        if (q >= 1 && toks[q - 1].text == "~") --q;
        if (q >= 2 && toks[q - 1].text == "::" && toks[q - 2].kind == TokKind::kIdent) {
            qualifier = std::string(toks[q - 2].text);
        }
        return true;
    }

    void record_member_var(ClassModel& cls, std::size_t begin, std::size_t end) {
        // Declaration part: tokens before a top-level `=` (default init).
        std::size_t decl_end = end;
        int paren = 0, angle_guard = 0;
        for (std::size_t j = begin; j < end; ++j) {
            std::string_view t = toks[j].text;
            if (t == "(") ++paren;
            else if (t == ")") --paren;
            else if (t == "<") ++angle_guard;
            else if (t == ">") angle_guard = std::max(0, angle_guard - 1);
            else if (t == "=" && paren == 0 && angle_guard == 0) {
                decl_end = j;
                break;
            }
        }
        if (decl_end <= begin) return;
        const Token& last = toks[decl_end - 1];
        if (last.kind != TokKind::kIdent) return;
        if (last.text.size() < 2 || last.text.back() != '_') return;  // not a member
        // `name(` is a function declaration, not a variable.
        if (decl_end < end && toks[decl_end].text == "(") return;
        MemberVar m;
        m.name = std::string(last.text);
        m.line = last.line;
        m.type = flatten(toks, begin, decl_end - 1);
        // guarded_by(mutex_) annotation: trailing comment on the declaration
        // line, or a comment on the line above it.
        for (const Annotation& a : file.lex.annotations) {
            if (a.line == m.line || a.line + 1 == m.line) m.guarded_by = a.mutex;
        }
        std::string_view prev = decl_end >= 2 ? toks[decl_end - 2].text : std::string_view{};
        m.is_value = prev != "*" && prev != "&" &&
                     m.type.find("_ptr") == std::string::npos;  // smart ptrs point elsewhere
        if (cls.find_member(m.name) == nullptr) cls.members.push_back(std::move(m));
    }
};

std::size_t Parser::statement(std::size_t i, std::vector<Scope>& scopes) {
    const std::size_t begin = i;
    const std::size_t n = toks.size();
    bool in_class = !scopes.empty() && scopes.back().kind == Scope::kClass;

    // Access specifiers inside a class: `public:` etc.
    if (in_class && i + 1 < n && toks[i].kind == TokKind::kIdent &&
        (toks[i].text == "public" || toks[i].text == "private" || toks[i].text == "protected") &&
        toks[i + 1].text == ":") {
        return i + 2;
    }

    // Scan to the statement terminator, stepping over braced initializers
    // that are part of a larger statement (e.g. `sim::TimePoint t_{};`).
    while (i < n) {
        std::string_view t = toks[i].text;
        if (t == ";") break;
        if (t == "}") break;  // enclosing scope closes mid-statement: bail
        if (t == "{") {
            // Braced initializer iff directly after an identifier/`=`/`,`
            // with no class/namespace/function head in this statement.
            std::string cname;
            std::string fname, fqual;
            int fline = 0;
            if (find_class_head(begin, i, cname)) {
                // Class/struct definition.
                class_for(cname, toks[begin].line);
                scopes.push_back({Scope::kClass, cname});
                return i + 1;
            }
            if (toks[begin].text == "namespace") {
                scopes.push_back({Scope::kNamespace, ""});
                return i + 1;
            }
            bool has_enum = false;
            for (std::size_t j = begin; j < i; ++j) {
                if (toks[j].text == "enum") has_enum = true;
            }
            if (has_enum) {
                // Enum body: opaque; skip entirely (the `;` after follows).
                return skip_braces(toks, i);
            }
            if (find_function_head(begin, i, fname, fqual, fline)) {
                std::size_t end = skip_braces(toks, i);
                FunctionBody body;
                body.file = &file;
                body.name = fname;
                body.begin = i;
                body.end = end;
                body.line = fline;
                if (!fqual.empty()) {
                    body.class_name = fqual;
                } else if (in_class) {
                    body.class_name = scopes.back().name;
                }
                if (!body.class_name.empty()) {
                    ClassModel& cls = class_for(body.class_name, fline);
                    if (!fname.empty() && fname[0] == '~') cls.has_user_dtor_decl = true;
                    for (std::size_t j = begin; j < i; ++j) {
                        if (toks[j].text == "virtual" || toks[j].text == "override") {
                            cls.virtual_methods.insert(fname);
                            break;
                        }
                    }
                    cls.functions.push_back(body);
                } else {
                    tree.free_functions.push_back(body);
                }
                // Trailing `;` (e.g. after a lambda-free inline body there is
                // none; after `} ;` of a class there would be, but that path
                // is the scope-pop branch, not this one).
                return end;
            }
            // Braced initializer / unknown construct: step over it and keep
            // scanning the same statement.
            i = skip_braces(toks, i);
            continue;
        }
        ++i;
    }

    std::size_t term = i;  // index of `;` (or `}` / n if bailing)
    if (term < n && toks[term].text == "}") return term;  // let run() pop

    if (in_class && term > begin) {
        ClassModel& cls = class_for(scopes.back().name, toks[begin].line);
        // Destructor declaration `~X(...)...;` (possibly `= default`).
        if (toks[begin].text == "~" ||
            (begin + 1 < term && toks[begin].text == "virtual" && toks[begin + 1].text == "~")) {
            cls.has_user_dtor_decl = true;
            for (std::size_t j = begin; j < term; ++j) {
                if (toks[j].text == "default") cls.dtor_defaulted = true;
            }
        } else {
            // Declaration-only virtual methods (`virtual void f();` or
            // `void f() override;`): record the name so calls through a
            // base reference are treated as dynamic dispatch.
            bool is_virtual = false;
            for (std::size_t j = begin; j < term; ++j) {
                if (toks[j].text == "virtual" || toks[j].text == "override") is_virtual = true;
            }
            if (is_virtual) {
                for (std::size_t j = begin + 1; j < term; ++j) {
                    if (toks[j].text == "(" && toks[j - 1].kind == TokKind::kIdent) {
                        cls.virtual_methods.insert(std::string(toks[j - 1].text));
                        break;
                    }
                }
            }
            bool skip = is_keyword_like(toks[begin].text) && toks[begin].text == "static";
            if (!skip) record_member_var(cls, begin, term);
        }
    }
    return term < n ? term + 1 : n;
}

// ---------------------------------------------------------------------------
// Tree loading
// ---------------------------------------------------------------------------

bool read_file(const fs::path& p, std::string& out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // namespace

bool load_tree(const std::string& root, Tree& out) {
    out.root = root;
    std::error_code ec;
    std::vector<fs::path> paths;
    for (fs::recursive_directory_iterator it(root, ec), end; it != end; it.increment(ec)) {
        if (ec) {
            std::cerr << "staticcheck: error walking " << root << ": " << ec.message() << "\n";
            return false;
        }
        if (!it->is_regular_file()) continue;
        const fs::path& p = it->path();
        if (p.extension() == ".hpp" || p.extension() == ".cpp") paths.push_back(p);
    }
    if (ec) {
        std::cerr << "staticcheck: cannot open " << root << ": " << ec.message() << "\n";
        return false;
    }
    std::sort(paths.begin(), paths.end());
    out.files.reserve(paths.size());  // stable addresses for back-pointers

    for (const fs::path& p : paths) {
        SourceFile f;
        f.abs_path = p.string();
        f.rel = fs::relative(p, root).generic_string();
        f.layer = f.rel.substr(0, f.rel.find('/'));
        if (f.layer == f.rel) f.layer = "";  // file at the root itself
        f.is_header = p.extension() == ".hpp";
        if (!read_file(p, f.text)) {
            std::cerr << "staticcheck: cannot read " << f.abs_path << "\n";
            return false;
        }
        out.files.push_back(std::move(f));
    }
    // Lex after the vector is final so string_views stay valid.
    for (SourceFile& f : out.files) {
        f.lex = lex(f.text);
        Parser(f, out).run();
    }
    return true;
}

} // namespace staticcheck
