// Source model for the ST-TCP static analyzer: files, layers, and a
// lightweight structural parse (namespaces, classes, member declarations,
// function bodies) built on the token stream from lexer.hpp.
//
// The structural parse is heuristic by design — it understands the Google-
// style subset this codebase is written in (members suffixed `_`, one class
// per logical unit, out-of-line definitions qualified `Class::member`) and
// degrades safely: a construct it cannot classify produces no class/function
// record and therefore no finding, never a false one.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace staticcheck {

struct SourceFile {
    std::string abs_path;
    std::string rel;       // path relative to the analysis root, '/'-separated
    std::string layer;     // first path component of rel ("tcp", "net", ...)
    bool is_header = false;
    std::string text;      // owns the buffer the token views point into
    LexResult lex;

    // True when `line` (1-based) carries a waiver for `rule` on itself or
    // the line above, or the file carries a lint:allow-file waiver.
    [[nodiscard]] bool waived(int line, const std::string& rule) const;
};

// A member variable declaration inside a class.
struct MemberVar {
    std::string name;
    std::string type;      // flattened type tokens, e.g. "sim::EventId"
    bool is_value = false; // value member (not a reference, not a pointer)
    int line = 0;
    std::string guarded_by;  // mutex member named by a guarded_by(...) comment
};

// A function body: [begin, end) token indices into its file's token stream.
struct FunctionBody {
    const SourceFile* file = nullptr;
    std::string class_name;  // enclosing/qualifying class ("" for free fns)
    std::string name;        // unqualified; "~Class" for destructors
    std::size_t begin = 0;   // index of the '{'
    std::size_t end = 0;     // index one past the matching '}'
    int line = 0;
};

// A class aggregated across all files of the tree (declaration in the
// header, out-of-line definitions in the .cpp).
struct ClassModel {
    std::string name;
    const SourceFile* declared_in = nullptr;
    int line = 0;
    std::vector<MemberVar> members;
    std::vector<FunctionBody> functions;  // bodies only (decl-only fns absent)
    bool has_user_dtor_decl = false;      // "~X(" seen anywhere in the class
    bool dtor_defaulted = false;          // "~X() = default"
    // Methods declared `virtual` (or `override`) anywhere in the class; a
    // call through one of these dispatches dynamically, so the call graph
    // treats it as an unknown callee (conservative havoc).
    std::set<std::string> virtual_methods;

    [[nodiscard]] const MemberVar* find_member(std::string_view n) const;
};

struct Tree {
    std::string root;                 // analysis root (the src/ directory)
    std::vector<SourceFile> files;    // stable addresses (reserved up front)
    std::map<std::string, ClassModel> classes;  // by class name
    std::vector<FunctionBody> free_functions;
};

// Loads every *.hpp / *.cpp under `root` and builds the structural model.
// Returns false (with a message on stderr) if the root cannot be read.
[[nodiscard]] bool load_tree(const std::string& root, Tree& out);

struct Finding {
    std::string rel;   // file, relative to the root
    int line = 0;
    std::string rule;
    std::string message;
    // Back-pointer for the central waiver filter (not serialized).
    const SourceFile* file = nullptr;
};

} // namespace staticcheck
