#include "sarif.hpp"

#include <cstdio>
#include <ostream>
#include <set>

namespace staticcheck {

namespace {

std::string sarif_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

} // namespace

void write_sarif(std::ostream& os, const std::string& root,
                 const std::vector<Finding>& findings) {
    // std::set gives the sorted, unique rule table.
    std::set<std::string> rules;
    for (const Finding& f : findings) rules.insert(f.rule);

    os << "{\n"
       << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"staticcheck\",\n"
       << "          \"informationUri\": \"DESIGN.md\",\n"
       << "          \"rules\": [";
    bool first = true;
    for (const std::string& r : rules) {
        os << (first ? "" : ",") << "\n            {\"id\": \"" << sarif_escape(r) << "\"}";
        first = false;
    }
    os << (rules.empty() ? "" : "\n          ") << "]\n"
       << "        }\n"
       << "      },\n"
       << "      \"originalUriBaseIds\": {\n"
       << "        \"ROOT\": {\"uri\": \"" << sarif_escape(root) << "/\"}\n"
       << "      },\n"
       << "      \"results\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& f = findings[i];
        os << (i == 0 ? "" : ",") << "\n        {\n"
           << "          \"ruleId\": \"" << sarif_escape(f.rule) << "\",\n"
           << "          \"level\": \"error\",\n"
           << "          \"message\": {\"text\": \"" << sarif_escape(f.message) << "\"},\n"
           << "          \"locations\": [\n"
           << "            {\n"
           << "              \"physicalLocation\": {\n"
           << "                \"artifactLocation\": {\"uri\": \"" << sarif_escape(f.rel)
           << "\", \"uriBaseId\": \"ROOT\"},\n"
           << "                \"region\": {\"startLine\": " << f.line << "}\n"
           << "              }\n"
           << "            }\n"
           << "          ]\n"
           << "        }";
    }
    os << (findings.empty() ? "" : "\n      ") << "]\n"
       << "    }\n"
       << "  ]\n"
       << "}\n";
}

} // namespace staticcheck
