#!/usr/bin/env python3
"""Custom protocol lints for the ST-TCP codebase.

Four rules, each guarding an invariant the type system cannot express:

  seq-raw        TCP sequence numbers are mod-2^32; the only safe way to
                 compare or difference them is util::Seq32's serial-number
                 operators (or util::seq_delta for a signed offset). Raw
                 `x.raw() - y.raw()`-style arithmetic outside util/seq32 is
                 exactly how wraparound bugs are written.

  payload-alloc  Frame payloads are ref-counted (util::SharedPayload) and
                 recycled (util::BufferPool). A naked new[]/delete[] of a
                 byte buffer anywhere else bypasses both the zero-copy path
                 and the pool accounting.

  impairment-api Network adversity flows through the per-direction pipeline
                 (net/impairment.hpp): Link::set_impairments*, set_loss_toward,
                 schedule_blackout*. The legacy LinkConfig::loss_probability
                 field is a compatibility wrapper owned by net/link.* — code
                 that pokes it directly bypasses the pipeline's stats,
                 determinism guarantees, and per-direction addressing.

  stale-event    sim::EventQueue cancellation is generation-checked;
                 cancelling a handle and keeping the old value around invites
                 double-cancel of a recycled slot. Every `cancel(handle_)` of
                 a member handle must be followed by reassignment of that
                 handle (usually `handle_ = sim::kInvalidEventId`) within a
                 few lines.

A finding can be waived on its line (or the line above) with:
    // lint:allow <rule-name> -- reason
Exit status: 0 when clean, 1 when any violation is found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

ALLOW_RE = re.compile(r"//\s*lint:allow\s+([\w-]+)")

# ---------------------------------------------------------------- rule: seq-raw
# Arithmetic mixing .raw() with +/- (either side), or a signed cast of a
# .raw() difference. util/seq32.* is the sanctioned home of this arithmetic.
SEQ_RAW_PATTERNS = [
    re.compile(r"\.raw\(\)\s*[-+]\s*(?!1\s*[,)\s;])"),  # seq.raw() - x (allow ±1 literals)
    re.compile(r"[-+]\s*\w+(?:\.\w+\(\))*\.raw\(\)"),   # x - seq.raw()
    re.compile(r"static_cast<\s*std::u?int32_t\s*>\s*\(\s*\w+(?:\.\w+\(\))*\.raw\(\)"),
]
SEQ_RAW_EXEMPT = {"util/seq32.hpp", "util/seq32.cpp"}

# ----------------------------------------------------------- rule: payload-alloc
PAYLOAD_ALLOC_PATTERNS = [
    re.compile(r"\bnew\s+(?:std::)?uint8_t\s*\["),
    re.compile(r"\bnew\s+(?:unsigned\s+char|std::byte|char)\s*\["),
    re.compile(r"\bdelete\s*\[\]"),
    re.compile(r"\b(?:malloc|calloc|realloc|free)\s*\("),
]
PAYLOAD_ALLOC_EXEMPT = {
    "util/shared_payload.hpp",
    "util/shared_payload.cpp",
    "util/buffer_pool.hpp",
    "util/buffer_pool.cpp",
}

# ----------------------------------------------------------- rule: impairment-api
IMPAIRMENT_API_PATTERNS = [re.compile(r"\bloss_probability\b")]
IMPAIRMENT_API_EXEMPT = {
    "net/link.hpp",
    "net/link.cpp",
    "net/impairment.hpp",
    "net/impairment.cpp",
}

# ------------------------------------------------------------- rule: stale-event
CANCEL_RE = re.compile(r"\bcancel\s*\(\s*(\w+)\s*\)")
STALE_EVENT_WINDOW = 3  # lines after the cancel in which the reset must appear


def is_comment(line: str) -> bool:
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*")


def allowed(lines: list[str], idx: int, rule: str) -> bool:
    """True if line idx (0-based) or the line above carries a waiver."""
    for check in (idx, idx - 1):
        if 0 <= check < len(lines):
            m = ALLOW_RE.search(lines[check])
            if m and m.group(1) == rule:
                return True
    return False


def check_patterns(rel: str, lines: list[str], patterns, exempt, rule: str):
    if rel in exempt:
        return
    for i, line in enumerate(lines):
        if is_comment(line):
            continue
        code = line.split("//", 1)[0]
        for pat in patterns:
            if pat.search(code) and not allowed(lines, i, rule):
                yield (i + 1, rule, code.strip())
                break


def check_stale_event(rel: str, lines: list[str]):
    for i, line in enumerate(lines):
        if is_comment(line):
            continue
        code = line.split("//", 1)[0]
        m = CANCEL_RE.search(code)
        if not m:
            continue
        handle = m.group(1)
        # Only member/long-lived handles matter; locals that die at scope end
        # (no trailing underscore) cannot be reused later.
        if not handle.endswith("_"):
            continue
        reset_re = re.compile(rf"\b{re.escape(handle)}\s*=")
        window = lines[i + 1 : i + 1 + STALE_EVENT_WINDOW]
        # A reset on the same line (e.g. `cancel(std::exchange(h_, ...))`) or
        # within the window satisfies the rule.
        if reset_re.search(code.split("cancel", 1)[1]) or any(
            reset_re.search(w.split("//", 1)[0]) for w in window
        ):
            continue
        if allowed(lines, i, "stale-event"):
            continue
        yield (i + 1, "stale-event", code.strip())


def main() -> int:
    findings = []
    for path in sorted(SRC_ROOT.rglob("*")):
        if path.suffix not in {".hpp", ".cpp"}:
            continue
        rel = path.relative_to(SRC_ROOT).as_posix()
        lines = path.read_text().splitlines()
        findings += [
            (rel, *f)
            for f in check_patterns(rel, lines, SEQ_RAW_PATTERNS, SEQ_RAW_EXEMPT, "seq-raw")
        ]
        findings += [
            (rel, *f)
            for f in check_patterns(
                rel, lines, PAYLOAD_ALLOC_PATTERNS, PAYLOAD_ALLOC_EXEMPT, "payload-alloc"
            )
        ]
        findings += [
            (rel, *f)
            for f in check_patterns(
                rel, lines, IMPAIRMENT_API_PATTERNS, IMPAIRMENT_API_EXEMPT, "impairment-api"
            )
        ]
        findings += [(rel, *f) for f in check_stale_event(rel, lines)]

    for rel, lineno, rule, snippet in findings:
        print(f"src/{rel}:{lineno}: [{rule}] {snippet}")
    if findings:
        print(f"\n{len(findings)} lint violation(s). "
              f"Waive intentionally with '// lint:allow <rule>'.")
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
