#!/usr/bin/env python3
"""Custom protocol lints for the ST-TCP codebase.

Two regex rules remain here, each guarding an invariant the type system
cannot express but which never needs token- or flow-awareness:

  payload-alloc  Frame payloads are ref-counted (util::SharedPayload) and
                 recycled (util::BufferPool). A naked new[]/delete[] of a
                 byte buffer anywhere else bypasses both the zero-copy path
                 and the pool accounting.

  impairment-api Network adversity flows through the per-direction pipeline
                 (net/impairment.hpp): Link::set_impairments*, set_loss_toward,
                 schedule_blackout*. The legacy LinkConfig::loss_probability
                 field is a compatibility wrapper owned by net/link.* — code
                 that pokes it directly bypasses the pipeline's stats,
                 determinism guarantees, and per-direction addressing.

The former seq-raw and stale-event regex rules are retired: both needed
real token streams and flow awareness to avoid false positives, and now
live in tools/staticcheck (rules `seq-raw` and `event-lifecycle`), which
also enforces the include-layering DAG, the TCP state-transition funnel,
and [this]-capture teardown. See DESIGN.md §10.

Waiver syntax (shared verbatim with staticcheck):
    // lint:allow <rule-name> -- reason        (this line or the line below)
    // lint:allow-file <rule-name> -- reason   (the whole file)
Exit status: 0 when clean, 1 when any violation is found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

ALLOW_RE = re.compile(r"//\s*lint:allow\s+([\w-]+)")
ALLOW_FILE_RE = re.compile(r"//\s*lint:allow-file\s+([\w-]+)")

# ----------------------------------------------------------- rule: payload-alloc
PAYLOAD_ALLOC_PATTERNS = [
    re.compile(r"\bnew\s+(?:std::)?uint8_t\s*\["),
    re.compile(r"\bnew\s+(?:unsigned\s+char|std::byte|char)\s*\["),
    re.compile(r"\bdelete\s*\[\]"),
    re.compile(r"\b(?:malloc|calloc|realloc|free)\s*\("),
]
PAYLOAD_ALLOC_EXEMPT = {
    "util/shared_payload.hpp",
    "util/shared_payload.cpp",
    "util/buffer_pool.hpp",
    "util/buffer_pool.cpp",
}

# ----------------------------------------------------------- rule: impairment-api
IMPAIRMENT_API_PATTERNS = [re.compile(r"\bloss_probability\b")]
IMPAIRMENT_API_EXEMPT = {
    "net/link.hpp",
    "net/link.cpp",
    "net/impairment.hpp",
    "net/impairment.cpp",
}


def is_comment(line: str) -> bool:
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*")


def file_waivers(lines: list[str]) -> set[str]:
    """Rules waived for the whole file via `// lint:allow-file <rule>`."""
    waived = set()
    for line in lines:
        m = ALLOW_FILE_RE.search(line)
        if m:
            waived.add(m.group(1))
    return waived


def allowed(lines: list[str], idx: int, rule: str) -> bool:
    """True if line idx (0-based) or the line above carries a waiver."""
    for check in (idx, idx - 1):
        if 0 <= check < len(lines):
            m = ALLOW_RE.search(lines[check])
            if m and m.group(1) == rule:
                return True
    return False


def check_patterns(rel: str, lines: list[str], patterns, exempt, rule: str):
    if rel in exempt or rule in file_waivers(lines):
        return
    for i, line in enumerate(lines):
        if is_comment(line):
            continue
        code = line.split("//", 1)[0]
        for pat in patterns:
            if pat.search(code) and not allowed(lines, i, rule):
                yield (i + 1, rule, code.strip())
                break


def main() -> int:
    findings = []
    for path in sorted(SRC_ROOT.rglob("*")):
        if path.suffix not in {".hpp", ".cpp"}:
            continue
        rel = path.relative_to(SRC_ROOT).as_posix()
        lines = path.read_text().splitlines()
        findings += [
            (rel, *f)
            for f in check_patterns(
                rel, lines, PAYLOAD_ALLOC_PATTERNS, PAYLOAD_ALLOC_EXEMPT, "payload-alloc"
            )
        ]
        findings += [
            (rel, *f)
            for f in check_patterns(
                rel, lines, IMPAIRMENT_API_PATTERNS, IMPAIRMENT_API_EXEMPT, "impairment-api"
            )
        ]

    for rel, lineno, rule, snippet in findings:
        print(f"src/{rel}:{lineno}: [{rule}] {snippet}")
    if findings:
        print(f"\n{len(findings)} lint violation(s). "
              f"Waive intentionally with '// lint:allow <rule>'.")
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
