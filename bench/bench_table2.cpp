// Table 2 reproduction: "ST-TCP failover time for the three applications."
//
// Failover time is measured as the paper does (§6.2): the difference between
// the average total run time with a mid-run primary crash and the average
// failure-free run time. Rows: HB interval; columns: the six workloads.
// Expected shape: failover ~ 3-4x HB interval + RTO-alignment residue
// (paper: ~22 s at 5 s HB down to < 0.7 s at 50 ms HB).
#include <cstdio>

#include "bench_util.hpp"

using namespace sttcp;
using namespace sttcp::bench;

namespace {

std::vector<app::Workload> columns() {
    return {app::Workload::echo(),      app::Workload::interactive(),
            app::Workload::bulk_mb(1),  app::Workload::bulk_mb(5),
            app::Workload::bulk_mb(20), app::Workload::bulk_mb(100)};
}

int repeats_for(const app::Workload& w) { return w.response_size >= 20u << 20 ? 1 : 3; }

} // namespace

int main() {
    std::printf("Table 2: Failover time (s) = avg(total with failure) - avg(total without)\n");
    std::printf("(paper at 5s HB: 22.3 / 23.8 / 22.6 / 24.0 / 20.8 / 21.8;\n");
    std::printf(" at 50ms HB: 0.219 / 0.485 / 0.412 / 0.417 / 0.627 / 0.676 / 0.422)\n\n");
    std::printf("%-18s  %8s  %8s  %8s  %8s  %8s  %8s\n", "", "Echo", "Interact", "1MB",
                "5MB", "20MB", "100MB");
    print_rule(18 + 6 * 10);

    for (const auto& hb : hb_sweep()) {
        std::printf("ST-TCP %-11s", (std::string(hb.label) + " HB").c_str());
        for (const auto& w : columns()) {
            harness::ExperimentConfig cfg;
            cfg.testbed.sttcp = sttcp_with_hb(hb.interval);
            cfg.workload = w;
            int n = repeats_for(w);

            auto baseline = run_averaged(cfg, n);
            if (baseline.completed_runs == 0) {
                std::printf("  %8s", "FAIL");
                continue;
            }
            auto with_failure =
                run_averaged(cfg, n, /*crash_fraction=*/0.5, baseline.mean_total_seconds);
            if (with_failure.completed_runs != with_failure.total_runs ||
                with_failure.verify_errors != 0) {
                std::printf("  %8s", "FAIL");
                continue;
            }
            std::printf("  %8.3f",
                        with_failure.mean_total_seconds - baseline.mean_total_seconds);
        }
        std::printf("\n");
    }
    return 0;
}
