// Per-frame cost of the impairment pipeline.
//
// Every frame the simulator carries now runs the blackout -> loss ->
// duplication -> corruption -> jitter -> spike pipeline, so its overhead is
// a tax on every experiment and every soak trial. This bench pushes frames
// point-to-point through a Link under increasingly rich configurations and
// reports host-time frames/sec per row, so successive PRs can see what an
// added stage costs — and that the all-zero configuration stays free.
//
// Usage: bench_impairment [frames] [payload_bytes]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "net/link.hpp"
#include "sim/simulation.hpp"

using namespace sttcp;

namespace {

struct Sink final : net::FrameEndpoint {
    void handle_frame(const net::EthernetFrame&) override { ++received; }
    [[nodiscard]] std::string endpoint_name() const override { return "sink"; }
    std::uint64_t received = 0;
};

struct Row {
    const char* label;
    net::ImpairmentConfig cfg;
    bool blackouts = false;
};

double run_row(const Row& row, std::size_t frames, std::size_t payload_bytes,
               std::uint64_t* delivered) {
    sim::Simulation sim{42};
    net::LinkConfig link_cfg;
    link_cfg.bandwidth_bps = 1e9;
    // Frames are blasted in batches, not paced; an ample queue keeps the
    // delivered column about the pipeline (loss/blackout), not tail drops.
    link_cfg.queue_capacity_bytes = 16 * 1024 * 1024;
    Sink a, b;
    net::Link link{sim, link_cfg};
    link.attach(a, b);
    link.set_impairments(row.cfg);
    if (row.blackouts) {
        // Sprinkle windows through the run so in_blackout always has a list
        // to consult (the pruning path is part of the cost being measured).
        for (int w = 0; w < 50; ++w)
            link.schedule_blackout(sim::TimePoint{} + sim::milliseconds{1 + 7 * w},
                                   sim::microseconds{300});
    }

    net::EthernetFrame proto;
    proto.dst = net::MacAddress::local(2);
    proto.src = net::MacAddress::local(1);
    proto.type = net::EtherType::kIpv4;
    proto.payload.assign(payload_bytes, 0x5a);

    auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < frames; ++i) {
        link.send_from(a, proto);
        if ((i & 0x3ff) == 0) sim.run();  // drain deliveries in batches
    }
    sim.run();
    auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
    *delivered = link.stats().frames_delivered;
    return static_cast<double>(frames) / elapsed.count();
}

} // namespace

int main(int argc, char** argv) {
    const std::size_t frames =
        argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 200000;
    const std::size_t payload_bytes =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 1460;

    Row rows[6];
    rows[0].label = "all stages zero (legacy fast path)";
    rows[1].label = "uniform loss 5%";
    rows[1].cfg.loss = 0.05;
    rows[2].label = "gilbert-elliott bursty loss";
    rows[2].cfg.gilbert_elliott = true;
    rows[2].cfg.ge_p_enter_bad = 0.02;
    rows[2].cfg.ge_p_exit_bad = 0.3;
    rows[2].cfg.ge_loss_bad = 0.8;
    rows[3].label = "loss + dup + jitter + spikes";
    rows[3].cfg.loss = 0.05;
    rows[3].cfg.duplicate = 0.05;
    rows[3].cfg.jitter = sim::milliseconds{2};
    rows[3].cfg.spike = 0.01;
    rows[3].cfg.spike_delay = sim::milliseconds{50};
    rows[4].label = "corruption 5% (copy-on-write)";
    rows[4].cfg.corrupt = 0.05;
    rows[4].cfg.corrupt_max_bits = 3;
    rows[5].label = "everything + 50 blackout windows";
    rows[5].cfg = rows[3].cfg;
    rows[5].cfg.corrupt = 0.05;
    rows[5].blackouts = true;

    std::printf("Impairment pipeline cost: %zu frames, %zu-byte payload\n\n", frames,
                payload_bytes);
    std::printf("%-38s %14s %12s\n", "configuration", "frames/sec", "delivered");
    for (int i = 0; i < 74; ++i) std::putchar('-');
    std::putchar('\n');

    for (const Row& row : rows) {
        std::uint64_t delivered = 0;
        double fps = run_row(row, frames, payload_bytes, &delivered);
        std::printf("%-38s %14.0f %12llu\n", row.label, fps,
                    static_cast<unsigned long long>(delivered));
    }
    return 0;
}
