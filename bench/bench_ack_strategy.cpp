// Ablation of the backup acknowledgment strategy (paper §4.2-4.3).
//
// The primary may only discard a received client byte once the backup has
// acknowledged it; application reads stall when the second receive buffer
// fills, which shrinks the advertised window and throttles the client. The
// ack threshold X, the SyncTime fallback, and the second-buffer size
// therefore trade control-channel chatter against upload throughput. The
// paper picks X = 3/4 of the second buffer and doubles the receive buffer;
// this bench shows both why the threshold trigger matters (rows with the
// threshold disabled throttle badly at long SyncTime) and that X barely
// matters once it fires at all.
//
// Workload: 4 x 256 KB client->server uploads on a 100 Mbit client link
// (the paper's 14 Mbit laptop link is too slow to pressure the buffer).
#include <cstdio>

#include "bench_util.hpp"

using namespace sttcp;
using namespace sttcp::bench;

namespace {

struct Case {
    const char* label;
    std::size_t second_buffer;
    std::size_t x;          // SIZE_MAX => threshold disabled (sync only)
    sim::Duration sync_time;
};

} // namespace

int main() {
    std::printf("Ack-strategy ablation: 4 x 256KB uploads, 100 Mbit client link\n\n");
    std::printf("%-26s %-9s %-9s %-8s %9s %7s %12s\n", "strategy", "2nd buf", "X",
                "SyncTime", "time (s)", "acks", "released(B)");
    print_rule(86);

    std::vector<Case> cases = {
        {"paper default (3/4 X)", 64 * 1024, 48 * 1024, sim::milliseconds{50}},
        {"tiny X", 64 * 1024, 512, sim::milliseconds{50}},
        {"X = 16K", 64 * 1024, 16 * 1024, sim::milliseconds{50}},
        {"small 2nd buf", 8 * 1024, 6 * 1024, sim::milliseconds{50}},
        {"large 2nd buf", 256 * 1024, 192 * 1024, sim::milliseconds{50}},
        {"sync-only 50ms", 64 * 1024, SIZE_MAX, sim::milliseconds{50}},
        {"sync-only 200ms", 64 * 1024, SIZE_MAX, sim::milliseconds{200}},
        {"sync-only 1s", 64 * 1024, SIZE_MAX, sim::seconds{1}},
        {"sync-only 1s, 256K buf", 256 * 1024, SIZE_MAX, sim::seconds{1}},
    };

    for (const auto& c : cases) {
        harness::ExperimentConfig cfg;
        cfg.testbed.client_bandwidth_bps = 100e6;
        cfg.testbed.sttcp = sttcp_with_hb(sim::milliseconds{50});
        cfg.testbed.sttcp.second_buffer_bytes = c.second_buffer;
        cfg.testbed.sttcp.ack_threshold_bytes = c.x;
        cfg.testbed.sttcp.sync_time = c.sync_time;
        cfg.workload = app::Workload::upload_kb(256, 4);
        auto r = harness::run_experiment(cfg);
        char xbuf[32];
        if (c.x == SIZE_MAX)
            std::snprintf(xbuf, sizeof xbuf, "off");
        else
            std::snprintf(xbuf, sizeof xbuf, "%zu", c.x);
        if (!r.completed) {
            std::printf("%-26s %-9zu %-9s %-8.2f %9s\n", c.label, c.second_buffer, xbuf,
                        sim::to_seconds(c.sync_time), "FAIL");
            continue;
        }
        std::printf("%-26s %-9zu %-9s %-8.2f %9.3f %7llu %12llu\n", c.label,
                    c.second_buffer, xbuf, sim::to_seconds(c.sync_time), r.total_seconds,
                    static_cast<unsigned long long>(r.backup_stats.acks_sent),
                    static_cast<unsigned long long>(r.primary_stats.bytes_released));
    }

    std::printf("\nBaseline (standard TCP, no retention): ");
    harness::ExperimentConfig cfg;
    cfg.testbed.fault_tolerant = false;
    cfg.testbed.client_bandwidth_bps = 100e6;
    cfg.workload = app::Workload::upload_kb(256, 4);
    auto r = harness::run_experiment(cfg);
    std::printf("%.3f s\n", r.total_seconds);
    return 0;
}
