// Figure 5 reproduction: total run time vs heartbeat interval, with and
// without a mid-run primary failure.
//   (a) Echo application       (b) Interactive application
// Upper curve: with failure; lower curve: without. The gap between the two
// curves at each HB interval is the failover time, growing linearly with
// the HB interval.
#include <cstdio>

#include "bench_util.hpp"

using namespace sttcp;
using namespace sttcp::bench;

namespace {

void run_series(const char* title, const app::Workload& workload) {
    std::printf("Figure 5 series: %s\n", title);
    std::printf("%-12s  %14s  %14s  %14s\n", "HB interval", "no-failure (s)",
                "with-failure(s)", "failover (s)");
    print_rule(12 + 3 * 16);
    for (const auto& hb : hb_sweep()) {
        harness::ExperimentConfig cfg;
        cfg.testbed.sttcp = sttcp_with_hb(hb.interval);
        cfg.workload = workload;

        auto base = run_averaged(cfg, 3);
        auto fail = run_averaged(cfg, 3, 0.5, base.mean_total_seconds);
        bool ok = base.completed_runs == 3 && fail.completed_runs == 3 &&
                  base.verify_errors + fail.verify_errors == 0;
        if (ok) {
            std::printf("%-12s  %14.3f  %14.3f  %14.3f\n", hb.label,
                        base.mean_total_seconds, fail.mean_total_seconds,
                        fail.mean_total_seconds - base.mean_total_seconds);
        } else {
            std::printf("%-12s  %14s\n", hb.label, "FAIL");
        }
    }
    std::printf("\n");
}

} // namespace

int main() {
    std::printf("Figure 5: per-run total time with/without failure vs HB interval\n\n");
    run_series("(a) Echo (100 x 150B exchanges)", app::Workload::echo());
    run_series("(b) Interactive (100 x 150B -> 10KB)", app::Workload::interactive());
    return 0;
}
