// Micro-benchmarks of the substrate (google-benchmark): wire codecs,
// checksums, buffers, event queue, and whole-simulation throughput. These
// bound how much virtual traffic the reproduction can push per host-second.
#include <benchmark/benchmark.h>

#include "harness/experiment.hpp"
#include "net/tcp_wire.hpp"
#include "sim/event_queue.hpp"
#include "tcp/receive_buffer.hpp"
#include "util/ring_buffer.hpp"
#include "util/wire.hpp"

using namespace sttcp;

namespace {

void BM_InternetChecksum(benchmark::State& state) {
    util::Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
    for (auto _ : state) {
        util::InternetChecksum sum;
        sum.add(data);
        benchmark::DoNotOptimize(sum.finish());
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1460)->Arg(65536);

void BM_TcpSegmentSerialize(benchmark::State& state) {
    net::TcpSegment seg;
    seg.src_port = 1234;
    seg.dst_port = 80;
    seg.seq = util::Seq32{42};
    seg.flags.ack = true;
    seg.payload.assign(static_cast<std::size_t>(state.range(0)), 0x5a);
    net::Ipv4Address a{10, 0, 0, 1}, b{10, 0, 0, 2};
    for (auto _ : state) {
        benchmark::DoNotOptimize(seg.serialize(a, b));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TcpSegmentSerialize)->Arg(150)->Arg(1460);

void BM_TcpSegmentParse(benchmark::State& state) {
    net::TcpSegment seg;
    seg.src_port = 1234;
    seg.dst_port = 80;
    seg.flags.ack = true;
    seg.payload.assign(static_cast<std::size_t>(state.range(0)), 0x5a);
    net::Ipv4Address a{10, 0, 0, 1}, b{10, 0, 0, 2};
    util::Bytes raw = seg.serialize(a, b);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net::TcpSegment::parse(raw, a, b));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TcpSegmentParse)->Arg(150)->Arg(1460);

void BM_EventQueueScheduleRun(benchmark::State& state) {
    for (auto _ : state) {
        sim::EventQueue q;
        int fired = 0;
        for (int i = 0; i < state.range(0); ++i) {
            q.schedule_after(sim::microseconds{i % 997}, [&fired]() { ++fired; });
        }
        q.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_RingBufferReadWrite(benchmark::State& state) {
    util::RingBuffer ring(64 * 1024);
    util::Bytes chunk(1460, 0x33);
    std::uint8_t out[1460];
    for (auto _ : state) {
        ring.write(chunk);
        benchmark::DoNotOptimize(ring.read(out));
    }
    state.SetBytesProcessed(state.iterations() * 1460);
}
BENCHMARK(BM_RingBufferReadWrite);

void BM_ReceiveBufferInOrder(benchmark::State& state) {
    tcp::ReceiveBuffer rb(64 * 1024);
    rb.init(util::Seq32{1});
    util::Bytes seg(1460, 0x44);
    std::uint8_t out[1460];
    util::Seq32 seq{1};
    for (auto _ : state) {
        rb.accept(seq, seg);
        seq += 1460;
        benchmark::DoNotOptimize(rb.read(out));
    }
    state.SetBytesProcessed(state.iterations() * 1460);
}
BENCHMARK(BM_ReceiveBufferInOrder);

// Whole-system: one Echo run (100 request/response rounds) on the full
// testbed, including ST-TCP shadowing. Reported as rounds/second of host
// time.
void BM_FullEchoRunStandardTcp(benchmark::State& state) {
    for (auto _ : state) {
        harness::ExperimentConfig cfg;
        cfg.testbed.fault_tolerant = false;
        cfg.workload = app::Workload::echo();
        auto r = harness::run_experiment(cfg);
        benchmark::DoNotOptimize(r.completed);
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FullEchoRunStandardTcp)->Unit(benchmark::kMillisecond);

void BM_FullEchoRunSttcp(benchmark::State& state) {
    for (auto _ : state) {
        harness::ExperimentConfig cfg;
        cfg.testbed.sttcp.hb_interval = sim::milliseconds{50};
        cfg.testbed.sttcp.sync_time = sim::milliseconds{50};
        cfg.workload = app::Workload::echo();
        auto r = harness::run_experiment(cfg);
        benchmark::DoNotOptimize(r.completed);
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FullEchoRunSttcp)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
