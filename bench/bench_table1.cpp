// Table 1 reproduction: "Comparison of standard TCP with ST-TCP during
// failure free period."
//
// Rows: standard TCP, then ST-TCP at HB intervals 5s / 1s / 200ms / 50ms.
// Columns: Echo, Interactive, Bulk 1/5/20/100 MB — average total time in
// seconds, no failures injected. The paper's claim: every ST-TCP row is
// indistinguishable from the standard TCP row.
#include <cstdio>

#include "bench_util.hpp"

using namespace sttcp;
using namespace sttcp::bench;

namespace {

std::vector<app::Workload> columns() {
    return {app::Workload::echo(),      app::Workload::interactive(),
            app::Workload::bulk_mb(1),  app::Workload::bulk_mb(5),
            app::Workload::bulk_mb(20), app::Workload::bulk_mb(100)};
}

// Fewer repeats for the very large transfers: they are deterministic up to
// the seed and dominate the runtime.
int repeats_for(const app::Workload& w) { return w.response_size >= 20u << 20 ? 1 : 3; }

void run_row(const char* label, bool fault_tolerant, sim::Duration hb) {
    std::printf("%-18s", label);
    for (const auto& w : columns()) {
        harness::ExperimentConfig cfg;
        cfg.testbed.fault_tolerant = fault_tolerant;
        if (fault_tolerant) cfg.testbed.sttcp = sttcp_with_hb(hb);
        cfg.workload = w;
        auto avg = run_averaged(cfg, repeats_for(w));
        if (avg.completed_runs == avg.total_runs && avg.verify_errors == 0) {
            std::printf("  %8.3f", avg.mean_total_seconds);
        } else {
            std::printf("  %8s", "FAIL");
        }
    }
    std::printf("\n");
}

} // namespace

int main() {
    std::printf("Table 1: Average total time (s) without failure\n");
    std::printf("(paper: Std TCP row = 0.892 / 2.000 / 0.640 / 3.199 / 12.788 / 63.952;\n");
    std::printf(" every ST-TCP row should match its Standard TCP column)\n\n");
    std::printf("%-18s  %8s  %8s  %8s  %8s  %8s  %8s\n", "", "Echo", "Interact", "1MB",
                "5MB", "20MB", "100MB");
    print_rule(18 + 6 * 10);
    run_row("Standard TCP", false, {});
    for (const auto& hb : hb_sweep()) {
        std::string label = std::string("ST-TCP ") + hb.label + " HB";
        run_row(label.c_str(), true, hb.interval);
    }
    return 0;
}
