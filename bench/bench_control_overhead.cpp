// §4.3 analysis reproduction: UDP control-channel overhead.
//
// The paper argues: "assume the total length of an ack packet is 128 bytes
// and there is only client traffic on the LAN (worst case). One ack packet
// for every 3 KB of client data increases the LAN traffic by only 4.17%."
// This bench measures the real ratio: control-channel bytes vs client-link
// bytes, per workload and ack threshold X, and prints the analytic estimate
// alongside.
#include <cstdio>

#include "bench_util.hpp"

using namespace sttcp;
using namespace sttcp::bench;

int main() {
    std::printf("Control-channel overhead vs client traffic (paper's analytic worst case:\n");
    std::printf("128B ack per 3KB of client data = 4.17%%)\n\n");
    std::printf("%-16s %-10s %12s %12s %10s %10s\n", "workload", "X", "client(B)",
                "control(B)", "datagrams", "overhead%");
    print_rule(76);

    struct Case {
        app::Workload workload;
        std::size_t ack_threshold;  // 0 = default (3/4 of second buffer)
    };
    std::vector<Case> cases = {
        {app::Workload::echo(), 0},
        {app::Workload::interactive(), 0},
        {app::Workload::bulk_mb(5), 0},
        // Upload direction is the worst case: every client byte must be
        // backup-acked. X = 3 KB reproduces the paper's arithmetic.
        {app::Workload::upload_kb(256, 4), 3 * 1024},
        {app::Workload::upload_kb(256, 4), 16 * 1024},
        {app::Workload::upload_kb(256, 4), 48 * 1024},
    };

    for (const auto& c : cases) {
        harness::ExperimentConfig cfg;
        cfg.testbed.sttcp = sttcp_with_hb(sim::milliseconds{50});
        cfg.testbed.sttcp.ack_threshold_bytes = c.ack_threshold;
        cfg.workload = c.workload;
        auto r = harness::run_experiment(cfg);
        if (!r.completed) {
            std::printf("%-16s %-10s %12s\n", c.workload.name.c_str(), "-", "FAIL");
            continue;
        }
        double overhead = 100.0 * static_cast<double>(r.control_channel_bytes) /
                          static_cast<double>(r.client_link_wire_bytes);
        char xbuf[24];
        if (c.ack_threshold)
            std::snprintf(xbuf, sizeof xbuf, "%zuKB", c.ack_threshold / 1024);
        else
            std::snprintf(xbuf, sizeof xbuf, "default");
        std::printf("%-16s %-10s %12llu %12llu %10llu %9.2f%%\n", c.workload.name.c_str(),
                    xbuf, static_cast<unsigned long long>(r.client_link_wire_bytes),
                    static_cast<unsigned long long>(r.control_channel_bytes),
                    static_cast<unsigned long long>(r.control_channel_datagrams), overhead);
    }
    return 0;
}
