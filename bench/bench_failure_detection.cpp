// Supplementary: failure-detection latency anatomy (paper §6.2).
//
// "With an HB every 5 sec, the backup will detect primary crash in 15 to 20
// seconds depending on when exactly the failure occurs." This bench sweeps
// the crash instant across the heartbeat phase and reports the
// suspicion/takeover latency distribution, separating detection from the
// fencing (power switch) cost.
#include <cstdio>

#include "bench_util.hpp"

using namespace sttcp;
using namespace sttcp::bench;

int main() {
    std::printf("Failure-detection latency vs crash phase within the HB period\n");
    std::printf("(threshold: 3 missed HBs; fencing latency 5 ms)\n\n");
    std::printf("%-12s %12s %12s %12s %12s\n", "HB interval", "min detect", "max detect",
                "mean detect", "mean t.over");
    print_rule(64);

    for (const auto& hb : hb_sweep()) {
        double min_d = 1e9, max_d = 0, sum_d = 0, sum_t = 0;
        int n = 0;
        const int kPhases = 8;
        for (int i = 0; i < kPhases; ++i) {
            harness::ExperimentConfig cfg;
            cfg.testbed.sttcp = sttcp_with_hb(hb.interval);
            cfg.workload = app::Workload::interactive();
            // Crash at a varying phase inside one HB period, after warmup.
            double phase = (i + 0.5) / kPhases;
            cfg.crash_primary_at =
                sim::milliseconds{300} + sim::Duration{static_cast<std::int64_t>(
                                             phase * sim::Duration{hb.interval}.count())};
            cfg.time_limit = sim::minutes{10};
            auto r = harness::run_experiment(cfg);
            if (!r.completed || !r.failover_happened) continue;
            ++n;
            min_d = std::min(min_d, r.suspected_after_seconds);
            max_d = std::max(max_d, r.suspected_after_seconds);
            sum_d += r.suspected_after_seconds;
            sum_t += r.takeover_after_seconds;
        }
        if (n == 0) {
            std::printf("%-12s %12s\n", hb.label, "FAIL");
            continue;
        }
        std::printf("%-12s %12.3f %12.3f %12.3f %12.3f\n", hb.label, min_d, max_d,
                    sum_d / n, sum_t / n);
    }
    return 0;
}
