// Deployment-architecture comparison (paper §3.1-3.2): the same workload
// and failover on every tap architecture the paper describes —
//   hub            broadcast Ethernet, promiscuous backup (the §6 testbed)
//   mirror         switched Ethernet, managed-switch port mirroring
//   multicast      switched Ethernet, unicast-IP -> multicast-MAC flooding
//   no-SPOF        Figure 3: dual switches/loggers/gateways, dual-homed
//
// Expectation: failure-free time and failover time are essentially
// architecture-independent (modulo the extra gateway hop on the switched
// topologies) — the tap is off the data path in every design.
#include <cstdio>

#include "bench_util.hpp"
#include "harness/switch_testbed.hpp"

using namespace sttcp;
using namespace sttcp::bench;

namespace {

using Runner = harness::ExperimentResult (*)(const harness::ExperimentConfig&);

harness::ExperimentResult run_hub(const harness::ExperimentConfig& c) {
    return harness::run_experiment(c);
}
harness::ExperimentResult run_mirror(const harness::ExperimentConfig& c) {
    return harness::run_switch_experiment(c, harness::TapMode::kPortMirror);
}
harness::ExperimentResult run_mcast(const harness::ExperimentConfig& c) {
    return harness::run_switch_experiment(c, harness::TapMode::kMulticastMac);
}
harness::ExperimentResult run_nospof(const harness::ExperimentConfig& c) {
    return harness::run_nospof_experiment(c);
}

} // namespace

int main() {
    std::printf("Tap architectures: Interactive workload, HB=SyncTime=50ms\n\n");
    std::printf("%-12s %12s %12s %12s %12s\n", "topology", "std TCP (s)", "ST-TCP (s)",
                "w/ crash (s)", "failover (s)");
    print_rule(66);

    struct Row {
        const char* name;
        Runner runner;
    };
    for (auto [name, runner] : {Row{"hub", run_hub}, Row{"mirror", run_mirror},
                                Row{"multicast", run_mcast}, Row{"no-SPOF", run_nospof}}) {
        harness::ExperimentConfig cfg;
        cfg.testbed.sttcp = sttcp_with_hb(sim::milliseconds{50});
        cfg.workload = app::Workload::interactive();

        harness::ExperimentConfig plain = cfg;
        plain.testbed.fault_tolerant = false;
        auto base_plain = runner(plain);
        auto base_st = runner(cfg);

        harness::ExperimentConfig crash = cfg;
        crash.crash_primary_at = sim::from_seconds(base_st.total_seconds / 2);
        auto with_crash = runner(crash);

        bool ok = base_plain.completed && base_st.completed && with_crash.completed &&
                  with_crash.verify_errors == 0 && with_crash.failover_happened;
        if (ok) {
            std::printf("%-12s %12.3f %12.3f %12.3f %12.3f\n", name,
                        base_plain.total_seconds, base_st.total_seconds,
                        with_crash.total_seconds,
                        with_crash.total_seconds - base_st.total_seconds);
        } else {
            std::printf("%-12s %12s\n", name, "FAIL");
        }
    }
    return 0;
}
