#!/usr/bin/env bash
# Builds the benchmarks in Release and emits BENCH_frame_fanout.json at the
# repo root. Extra arguments are forwarded to bench_frame_fanout
# ([frames_per_client] [clients] [payload_bytes]).
set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
build_dir="$repo_root/build-rel"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc)" --target bench_frame_fanout bench_stack_micro

"$build_dir/bench/bench_frame_fanout" "$@" | tee "$repo_root/BENCH_frame_fanout.json"

echo "wrote $repo_root/BENCH_frame_fanout.json" >&2
echo "micro suite: $build_dir/bench/bench_stack_micro" >&2
