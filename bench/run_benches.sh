#!/usr/bin/env bash
# Regenerates every committed BENCH_*.json at the repo root:
#
#   BENCH_frame_fanout.json — hub datapath frames/sec (zero-copy fast path)
#   BENCH_scale.json        — 10k-connection ST-TCP scale run (auditors ON)
#   BENCH_timer_wheel.json  — scheduler events/sec, timing wheel vs heap
#
# Each bench runs BENCH_RUNS times (default 3) in a Release build; the JSONs
# record every sample plus the median, stamped with the commit and build
# flags, so ci/check.sh can flag >15% regressions against the medians.
#
# Usage: bench/run_benches.sh [bench...]   (default: all three)
set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
build_dir="$repo_root/build-rel"
runs="${BENCH_RUNS:-3}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" -j "$(nproc)" \
    --target bench_frame_fanout bench_scale bench_timer_wheel

commit=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)
if [ $# -gt 0 ]; then benches=("$@"); else benches=(frame_fanout scale timer_wheel); fi

# merge_runs <bench-name> <out-json> <raw-run-files...>
# Merges the per-run JSON outputs: scalar config fields are taken from the
# first run, every numeric measurement field that varies becomes a samples
# array with a *_median companion, and the build/commit stamp is appended.
merge_runs() {
    local name="$1" out="$2"
    shift 2
    python3 - "$name" "$out" "$commit" "$@" <<'PY'
import json, statistics, sys

name, out, commit, *files = sys.argv[1:]
runs = [json.load(open(f)) for f in files]

merged = {}
for key, first in runs[0].items():
    values = [r[key] for r in runs]
    if isinstance(first, (int, float)) and not isinstance(first, bool) and \
            any(v != first for v in values):
        merged[key] = values
        merged[key + "_median"] = statistics.median(values)
    elif isinstance(first, list):  # per-run sample arrays (timer_wheel)
        flat = [x for v in values for x in v]
        merged[key] = flat
        merged[key + "_median"] = statistics.median(flat)
    else:
        merged[key] = first

if name == "frame_fanout":
    # Historical constant: the seed tree rebuilt in Release with this same
    # bench source, recorded before the zero-copy frame path landed. Kept so
    # speedup_vs_seed_median stays comparable across PRs.
    merged["seed_baseline_frames_per_sec"] = [1062378.3, 1024572.1, 1111469.8]
    fps = merged.get("frames_per_sec_median", runs[0]["frames_per_sec"])
    merged["speedup_vs_seed_median"] = round(
        fps / statistics.median(merged["seed_baseline_frames_per_sec"]), 2)
if name == "timer_wheel":
    merged["wheel_speedup_median"] = round(
        merged["wheel_events_per_sec_median"] / merged["heap_events_per_sec_median"], 2)

merged["build"] = "Release"
merged["commit"] = commit
merged["command"] = "bench/run_benches.sh (medians of %d samples)" % len(files)
with open(out, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print("wrote", out, file=sys.stderr)
PY
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for bench in "${benches[@]}"; do
    case "$bench" in
        frame_fanout)
            for i in $(seq "$runs"); do
                "$build_dir/bench/bench_frame_fanout" > "$tmp/fanout.$i.json"
            done
            merge_runs frame_fanout "$repo_root/BENCH_frame_fanout.json" "$tmp"/fanout.*.json
            ;;
        scale)
            for i in $(seq "$runs"); do
                "$build_dir/bench/bench_scale" 10000 2 > "$tmp/scale.$i.json"
            done
            merge_runs scale "$repo_root/BENCH_scale.json" "$tmp"/scale.*.json
            ;;
        timer_wheel)
            # The binary interleaves wheel/heap runs itself; one invocation
            # already yields $runs samples per backend.
            "$build_dir/bench/bench_timer_wheel" 10000 50 "$runs" > "$tmp/wheel.1.json"
            merge_runs timer_wheel "$repo_root/BENCH_timer_wheel.json" "$tmp/wheel.1.json"
            ;;
        *)
            echo "unknown bench: $bench (expected frame_fanout|scale|timer_wheel)" >&2
            exit 2
            ;;
    esac
done
