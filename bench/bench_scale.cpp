// 10,000-connection scale benchmark for the ST-TCP fast path.
//
// Drives N concurrent client connections through the paper's hub topology —
// client -> hub -> primary, with the backup shadowing every flow off the
// tap — with the runtime invariant auditors ON. Two phases:
//
//   1. establish: all N connections handshake (SYNs staggered 2 us apart so
//      the listener sees a realistic arrival ramp, not one mega-burst);
//   2. steady state: every connection runs `rounds` echo requests (150 B
//      request -> 158 B response), each request sent only after the previous
//      response fully verified-by-length.
//
// Reports host-time throughput as JSON (BENCH_scale.json): connections/sec
// established, steady-state frames/sec through the hub, scheduler events/sec,
// and the peak number of armed timers — the number the timing wheel exists
// for (the binary heap pays O(log n) on every churn at that depth; the wheel
// pays O(1)).
//
// Usage: bench_scale [connections] [rounds] [backend wheel|heap]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "app/protocol.hpp"
#include "app/responder.hpp"
#include "check/audit.hpp"
#include "harness/testbed.hpp"

using namespace sttcp;

namespace {

constexpr std::uint16_t kServicePort = 8000;
// Total response bytes per round; the 8-byte echoed header is the stream's
// first 8 bytes, included in response_size (see app/responder.cpp).
constexpr std::size_t kResponseSize = 150;
constexpr std::size_t kResponseTotal = kResponseSize;

struct ClientConn {
    std::shared_ptr<tcp::TcpConnection> conn;
    std::uint32_t rounds_left = 0;
    std::size_t response_pending = 0;  // bytes of the current response not yet read
    bool established = false;
};

} // namespace

int main(int argc, char** argv) {
    const std::size_t n_conns = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 10000;
    const std::uint32_t rounds = argc > 2 ? static_cast<std::uint32_t>(std::atoll(argv[2])) : 2;
    sim::EventQueue::Backend backend = sim::EventQueue::Backend::kWheel;
    if (argc > 3 && std::strcmp(argv[3], "heap") == 0) backend = sim::EventQueue::Backend::kHeap;

    harness::TestbedOptions o;
    o.seed = 42;
    o.backend = backend;
    // Small per-connection buffers bound the footprint of 3 stacks x N
    // connections (client + primary + backup shadow) plus N second receive
    // buffers on the primary; an echo round needs well under 2 KB in flight.
    o.tcp.send_buffer_size = 2048;
    o.tcp.recv_buffer_size = 2048;
    // The client link's paper-calibrated 14 Mbit/s would serialize 10k
    // handshakes into minutes of *virtual* time; scale runs measure host
    // throughput, so give the LAN uniform fast links.
    o.client_bandwidth_bps = 1e9;
    o.server_bandwidth_bps = 1e9;
    o.propagation = sim::microseconds{50};

    harness::HubTestbed bed{o};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(kServicePort);
    auto bl = bed.st_backup->listen(kServicePort);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    sim::EventQueue& q = bed.sim.queue();
    std::vector<ClientConn> conns(n_conns);
    std::size_t established = 0;

    // ---- Phase 1: establish N connections --------------------------------
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n_conns; ++i) {
        bed.sim.schedule_after(sim::microseconds{2 * static_cast<std::int64_t>(i)}, [&, i] {
            ClientConn& c = conns[i];
            c.conn = bed.client->tcp_connect(bed.service_ip(), kServicePort);
            c.rounds_left = rounds;
            tcp::TcpConnection::Callbacks cbs;
            cbs.on_established = [&, i]() {
                conns[i].established = true;
                ++established;
            };
            cbs.on_readable = [&, i]() {
                ClientConn& cc = conns[i];
                std::uint8_t buf[512];
                while (std::size_t n = cc.conn->read(buf)) {
                    if (n > cc.response_pending) {
                        std::fprintf(stderr, "conn %zu: stray response bytes\n", i);
                        std::exit(1);
                    }
                    cc.response_pending -= n;
                }
            };
            c.conn->set_callbacks(std::move(cbs));
        });
    }
    const std::uint64_t executed_connect0 = q.executed();
    while (established < n_conns) {
        if (q.empty()) {
            std::fprintf(stderr, "established only %zu/%zu connections\n", established, n_conns);
            return 1;
        }
        bed.sim.run_for(sim::milliseconds{100});
    }
    auto t1 = std::chrono::steady_clock::now();
    const double establish_seconds = std::chrono::duration<double>(t1 - t0).count();
    const std::uint64_t establish_events = q.executed() - executed_connect0;

    // ---- Phase 2: steady-state echo rounds -------------------------------
    const std::uint64_t frames0 = bed.hub.stats().frames_repeated;
    const std::uint64_t executed0 = q.executed();

    std::size_t active = n_conns;
    std::uint32_t next_id = 1;
    // Mutually recursive via std::function locals that outlive the run loop:
    // kick() queues a request, poll() watches for the full response and then
    // kicks the next round — so the send pattern interleaves like real
    // concurrent clients instead of one sequential sweep.
    std::function<void(std::size_t)> kick;
    std::function<void(std::size_t)> poll = [&](std::size_t i) {
        if (conns[i].response_pending == 0) {
            kick(i);
        } else {
            bed.sim.schedule_after(sim::milliseconds{1}, [&poll, i] { poll(i); });
        }
    };
    kick = [&](std::size_t i) {
        ClientConn& c = conns[i];
        if (c.rounds_left == 0) {
            --active;
            return;
        }
        --c.rounds_left;
        app::Request req;
        req.id = next_id++;
        req.response_size = kResponseSize;
        c.response_pending += kResponseTotal;
        util::Bytes wire = app::encode_request(req);
        if (c.conn->send(wire) != wire.size()) {
            std::fprintf(stderr, "conn %zu: send buffer full\n", i);
            std::exit(1);
        }
        bed.sim.schedule_after(sim::milliseconds{1}, [&poll, i] { poll(i); });
    };
    for (std::size_t i = 0; i < n_conns; ++i) {
        bed.sim.schedule_after(sim::microseconds{static_cast<std::int64_t>(i)},
                               [&kick, i] { kick(i); });
    }
    auto t2 = std::chrono::steady_clock::now();
    while (active > 0) {
        if (q.empty()) {
            std::fprintf(stderr, "wedged with %zu connections unfinished\n", active);
            return 1;
        }
        bed.sim.run_for(sim::milliseconds{100});
    }
    auto t3 = std::chrono::steady_clock::now();
    const double steady_seconds = std::chrono::duration<double>(t3 - t2).count();
    const std::uint64_t steady_frames = bed.hub.stats().frames_repeated - frames0;
    const std::uint64_t steady_events = q.executed() - executed0;

    const auto& pstats = bed.st_primary->stats();
    std::printf(
        "{\n"
        "  \"bench\": \"scale\",\n"
        "  \"backend\": \"%s\",\n"
        "  \"connections\": %zu,\n"
        "  \"rounds\": %u,\n"
        "  \"auditors\": %s,\n"
        "  \"established\": %zu,\n"
        "  \"connects_per_sec\": %.1f,\n"
        "  \"establish_events\": %llu,\n"
        "  \"steady_frames\": %llu,\n"
        "  \"steady_frames_per_sec\": %.1f,\n"
        "  \"steady_events_per_sec\": %.1f,\n"
        "  \"events_executed_total\": %llu,\n"
        "  \"peak_armed_timers\": %llu,\n"
        "  \"timer_rearms\": %llu,\n"
        "  \"backup_acks\": %llu,\n"
        "  \"host_seconds\": %.3f\n"
        "}\n",
        backend == sim::EventQueue::Backend::kWheel ? "wheel" : "heap", n_conns, rounds,
        check::kEnabled ? "true" : "false", established,
        static_cast<double>(n_conns) / establish_seconds,
        static_cast<unsigned long long>(establish_events),
        static_cast<unsigned long long>(steady_frames),
        static_cast<double>(steady_frames) / steady_seconds,
        static_cast<double>(steady_events) / steady_seconds,
        static_cast<unsigned long long>(q.executed()),
        static_cast<unsigned long long>(q.peak_pending()),
        static_cast<unsigned long long>(q.rearmed()),
        static_cast<unsigned long long>(pstats.backup_acks_received),
        establish_seconds + steady_seconds);

    if (check::kEnabled && check::Audit::violation_count() != 0) {
        std::fprintf(stderr, "auditor violations: %llu\n",
                     static_cast<unsigned long long>(check::Audit::violation_count()));
        return 1;
    }
    return 0;
}
