// Shared helpers for the paper-reproduction benchmark binaries.
//
// Methodology follows §6: "All measurements taken were repeated at least
// three times and their average values were used." Failure runs inject the
// primary crash mid-run (at a configurable fraction of the failure-free
// runtime, default one half) and failover time is reported as the paper
// computes it: total-time-with-failure minus total-time-without.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace sttcp::bench {

struct Averaged {
    double mean_total_seconds = 0;
    double min_total_seconds = 0;
    double max_total_seconds = 0;
    double mean_takeover_seconds = 0;  // crash -> takeover (failure runs)
    int completed_runs = 0;
    int total_runs = 0;
    std::uint64_t verify_errors = 0;
    harness::ExperimentResult last;
};

// Runs `repeats` times with distinct seeds; if crash_fraction >= 0, crashes
// the primary at that fraction of `baseline_seconds` into the run.
inline Averaged run_averaged(harness::ExperimentConfig cfg, int repeats,
                             double crash_fraction = -1.0, double baseline_seconds = 0.0) {
    Averaged avg;
    avg.total_runs = repeats;
    double sum = 0, sum_takeover = 0;
    for (int i = 0; i < repeats; ++i) {
        cfg.testbed.seed = 1000 + 77 * static_cast<std::uint64_t>(i);
        if (crash_fraction >= 0) {
            // Vary the crash phase across repeats: failover time depends on
            // where in the heartbeat period the crash lands (paper §6.2).
            double f = crash_fraction * (1.0 + 0.2 * (i - repeats / 2) /
                                                   std::max(1, repeats));
            cfg.crash_primary_at = sim::from_seconds(std::max(0.01, f * baseline_seconds));
        }
        auto r = harness::run_experiment(cfg);
        if (!r.completed) continue;
        ++avg.completed_runs;
        sum += r.total_seconds;
        sum_takeover += r.takeover_after_seconds;
        avg.verify_errors += r.verify_errors;
        if (avg.completed_runs == 1) {
            avg.min_total_seconds = avg.max_total_seconds = r.total_seconds;
        } else {
            avg.min_total_seconds = std::min(avg.min_total_seconds, r.total_seconds);
            avg.max_total_seconds = std::max(avg.max_total_seconds, r.total_seconds);
        }
        avg.last = r;
    }
    if (avg.completed_runs > 0) {
        avg.mean_total_seconds = sum / avg.completed_runs;
        avg.mean_takeover_seconds = sum_takeover / avg.completed_runs;
    }
    return avg;
}

inline core::SttcpConfig sttcp_with_hb(sim::Duration hb) {
    core::SttcpConfig cfg;
    // The paper's experiments tie SyncTime to the heartbeat interval (§4.3
    // sweeps both over 50 ms .. 5 s; the ack/response pair doubles as the
    // heartbeat exchange).
    cfg.hb_interval = hb;
    cfg.sync_time = hb;
    return cfg;
}

struct HbPoint {
    const char* label;
    sim::Duration interval;
};

inline const std::vector<HbPoint>& hb_sweep() {
    static const std::vector<HbPoint> points = {
        {"5s", sim::seconds{5}},
        {"1s", sim::seconds{1}},
        {"200ms", sim::milliseconds{200}},
        {"50ms", sim::milliseconds{50}},
    };
    return points;
}

inline void print_rule(int width) {
    for (int i = 0; i < width; ++i) std::putchar('-');
    std::putchar('\n');
}

} // namespace sttcp::bench
