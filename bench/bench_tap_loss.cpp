// Ablation: tap-loss recovery over the control channel (paper §4.2).
//
// The backup's tapped stream may drop frames (the paper's example: IP-buffer
// overflow on the backup). Sweeping the loss rate on the tap shows the
// recovery machinery at work: gaps detected via the primary's acks,
// missing-segment requests/replies on the UDP channel, and zero impact on
// the client-visible run.
#include <cstdio>

#include "bench_util.hpp"

using namespace sttcp;
using namespace sttcp::bench;

int main() {
    std::printf("Tap-loss recovery sweep (workload: Interactive; HB=SyncTime=50ms)\n");
    std::printf("(backup served = replica requests handled, out of 100; late joins =\n");
    std::printf(" shadows rebuilt after the tap lost a handshake)\n\n");
    std::printf("%-8s %9s %6s %11s %11s %12s %10s\n", "loss", "time (s)", "gaps",
                "req bytes", "recov bytes", "backup srvd", "late joins");
    print_rule(76);

    for (double loss : {0.0, 0.01, 0.05, 0.10, 0.20, 0.40}) {
        harness::ExperimentConfig cfg;
        cfg.testbed.sttcp = sttcp_with_hb(sim::milliseconds{50});
        cfg.testbed.tap_loss = loss;
        cfg.workload = app::Workload::interactive();
        auto r = harness::run_experiment(cfg);
        if (!r.completed) {
            std::printf("%-8.2f %9s\n", loss, "FAIL");
            continue;
        }
        std::printf("%-8.2f %9.3f %6llu %11llu %11llu %12llu %10llu\n", loss,
                    r.total_seconds,
                    static_cast<unsigned long long>(r.backup_stats.gaps_detected),
                    static_cast<unsigned long long>(r.backup_stats.missing_bytes_requested),
                    static_cast<unsigned long long>(r.backup_stats.missing_bytes_recovered),
                    static_cast<unsigned long long>(r.backup_app_stats.requests_served),
                    static_cast<unsigned long long>(r.backup_stats.late_joins));
    }
    return 0;
}
