// Timer-heavy scheduler microbenchmark: timing wheel vs binary heap.
//
// Models the timer population of the 10k-connection scale path without the
// network: N concurrent "connections", each holding a periodic timer (the
// RTO/heartbeat pattern — fires, rearms itself) plus churn events that are
// scheduled and then cancelled or rearmed before firing (the delayed-ACK /
// deadline-move pattern). At this depth the heap pays O(log n) comparisons
// per operation where the wheel pays O(1) bucket pushes; the acceptance bar
// for the wheel is >1.1x events/sec in Release.
//
// Emits BENCH_timer_wheel.json-shaped output on stdout:
//   bench_timer_wheel [timers] [fires_per_timer] [runs]
// runs each backend `runs` times and reports every sample (medians are
// computed by bench/run_benches.sh).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"

using namespace sttcp;

namespace {

struct Sample {
    double events_per_sec = 0;
    std::uint64_t executed = 0;
    std::uint64_t peak = 0;
};

Sample run_once(sim::EventQueue::Backend backend, std::size_t n_timers,
                std::uint64_t fires_per_timer) {
    sim::EventQueue q{backend};
    std::uint64_t remaining = n_timers * fires_per_timer;

    struct Timer {
        sim::EventId id = sim::kInvalidEventId;
        std::uint64_t fires_left = 0;
        std::uint64_t lcg = 0;
    };
    std::vector<Timer> timers(n_timers);

    // Deterministic per-timer jitter so deadlines spread across wheel levels
    // instead of marching in lockstep.
    auto next_delay = [](Timer& t) {
        t.lcg = t.lcg * 6364136223846793005ull + 1442695040888963407ull;
        return sim::microseconds{500 + static_cast<std::int64_t>((t.lcg >> 33) % 200'000)};
    };

    std::function<void(std::size_t)> fire = [&](std::size_t i) {
        Timer& t = timers[i];
        --remaining;
        if (--t.fires_left == 0) {
            t.id = sim::kInvalidEventId;
            return;
        }
        // The protocol pattern: the periodic timer rearms in place, and each
        // firing also spawns a short-lived event that is cancelled before it
        // runs (delayed-ACK-style churn) — pure scheduler load.
        q.rearm(t.id, q.now() + next_delay(t));
        sim::EventId churn = q.schedule_after(sim::microseconds{100}, [] {});
        q.cancel(churn);
    };

    for (std::size_t i = 0; i < n_timers; ++i) {
        Timer& t = timers[i];
        t.fires_left = fires_per_timer;
        t.lcg = 0x9e3779b97f4a7c15ull ^ i;
        t.id = q.schedule_after(next_delay(t), [&fire, i] { fire(i); });
    }

    auto t0 = std::chrono::steady_clock::now();
    while (remaining > 0) q.run_until(q.now() + sim::milliseconds{100});
    auto t1 = std::chrono::steady_clock::now();

    Sample s;
    s.executed = q.executed();
    s.peak = q.peak_pending();
    s.events_per_sec =
        static_cast<double>(q.executed()) / std::chrono::duration<double>(t1 - t0).count();
    return s;
}

} // namespace

int main(int argc, char** argv) {
    const std::size_t n_timers = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 10000;
    const std::uint64_t fires = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 50;
    const int runs = argc > 3 ? std::atoi(argv[3]) : 3;

    std::vector<Sample> wheel, heap;
    // Interleave the backends so thermal/cache drift hits both equally.
    for (int r = 0; r < runs; ++r) {
        wheel.push_back(run_once(sim::EventQueue::Backend::kWheel, n_timers, fires));
        heap.push_back(run_once(sim::EventQueue::Backend::kHeap, n_timers, fires));
    }

    auto print_samples = [](const char* name, const std::vector<Sample>& v, bool last) {
        std::printf("  \"%s_events_per_sec\": [", name);
        for (std::size_t i = 0; i < v.size(); ++i)
            std::printf("%s%.1f", i ? ", " : "", v[i].events_per_sec);
        std::printf("]%s\n", last ? "" : ",");
    };

    std::printf("{\n"
                "  \"bench\": \"timer_wheel\",\n"
                "  \"timers\": %zu,\n"
                "  \"fires_per_timer\": %llu,\n"
                "  \"events_executed_per_run\": %llu,\n"
                "  \"peak_armed_timers\": %llu,\n",
                n_timers, static_cast<unsigned long long>(fires),
                static_cast<unsigned long long>(wheel[0].executed),
                static_cast<unsigned long long>(wheel[0].peak));
    print_samples("wheel", wheel, false);
    print_samples("heap", heap, false);
    // Single-run speedup for eyeballing; the committed JSON records the
    // median-of-runs computed by run_benches.sh.
    double w = wheel[0].events_per_sec, h = heap[0].events_per_sec;
    std::printf("  \"speedup_first_run\": %.2f\n}\n", w / h);
    return 0;
}
