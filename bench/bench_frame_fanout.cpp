// Frame fan-out throughput through the shared-medium hub.
//
// Measures the simulator's hottest path: every client frame entering the hub
// is repeated out of every other port (paper §6's tap-by-hub topology), so
// one send costs one link delivery per port. Reports host-time frames/sec
// over a 1-primary + 1-backup-tap + N-client topology as JSON, so successive
// PRs can track the datapath cost of keeping the backup in sync.
//
// Usage: bench_frame_fanout [frames_per_client] [clients] [payload_bytes] [wheel|heap]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/hub.hpp"
#include "net/nic.hpp"
#include "net/node.hpp"
#include "sim/simulation.hpp"

using namespace sttcp;

namespace {

struct Host {
    Host(std::string name, net::MacAddress mac)
        : node(name), nic(node, "eth0", mac) {}
    net::Node node;
    net::Nic nic;
};

} // namespace

int main(int argc, char** argv) {
    const std::size_t frames_per_client =
        argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 20000;
    const std::size_t n_clients = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 4;
    const std::size_t payload_bytes =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 1460;

    sim::EventQueue::Backend backend = sim::EventQueue::Backend::kWheel;
    if (argc > 4 && std::strcmp(argv[4], "heap") == 0) backend = sim::EventQueue::Backend::kHeap;

    sim::Simulation sim{42, backend};

    net::Hub hub{sim, "hub"};
    net::LinkConfig link_cfg;
    link_cfg.bandwidth_bps = 1e9;  // keep serialization ahead of the pacing below

    Host primary{"primary", net::MacAddress::local(1)};
    Host backup{"backup", net::MacAddress::local(2)};
    backup.nic.set_promiscuous(true);  // the ST-TCP tap sees everything

    hub.connect(primary.nic, link_cfg);
    hub.connect(backup.nic, link_cfg);

    std::vector<std::unique_ptr<Host>> clients;
    for (std::size_t i = 0; i < n_clients; ++i) {
        clients.push_back(std::make_unique<Host>("client" + std::to_string(i),
                                                 net::MacAddress::local(10 + static_cast<std::uint32_t>(i))));
        hub.connect(clients.back()->nic, link_cfg);
    }

    std::uint64_t primary_rx = 0, backup_rx = 0;
    primary.nic.set_rx_handler([&](const net::EthernetFrame&) { ++primary_rx; });
    backup.nic.set_rx_handler([&](const net::EthernetFrame&) { ++backup_rx; });

    util::Bytes pattern(payload_bytes);
    for (std::size_t i = 0; i < payload_bytes; ++i)
        pattern[i] = static_cast<std::uint8_t>(i);

    // Each client paces one frame every 100 us toward the primary; the hub
    // repeats it to every port, the tap takes a copy, the other clients
    // filter it out. This is exactly the per-frame cost of fault tolerance.
    const sim::Duration pace = sim::microseconds{100};
    struct Sender {
        Host* host;
        std::size_t remaining;
    };
    std::vector<Sender> senders;
    for (auto& c : clients) senders.push_back({c.get(), frames_per_client});

    std::function<void(std::size_t)> send_one = [&](std::size_t idx) {
        Sender& s = senders[idx];
        if (s.remaining == 0) return;
        --s.remaining;
        net::EthernetFrame f;
        f.dst = primary.nic.mac();
        f.src = s.host->nic.mac();
        f.type = net::EtherType::kIpv4;
        f.payload = pattern;
        s.host->nic.send(std::move(f));
        sim.schedule_after(pace, [&, idx]() { send_one(idx); });
    };

    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < senders.size(); ++i) send_one(i);
    sim.run();
    auto t1 = std::chrono::steady_clock::now();
    double host_seconds = std::chrono::duration<double>(t1 - t0).count();

    const std::uint64_t frames_sent = frames_per_client * n_clients;
    // Every sent frame crosses the client uplink once and each of the other
    // (n_clients + 1) hub ports once.
    std::uint64_t deliveries = primary_rx + backup_rx;
    double frames_per_sec = static_cast<double>(frames_sent) / host_seconds;

    std::printf("{\n"
                "  \"bench\": \"frame_fanout\",\n"
                "  \"topology\": {\"clients\": %zu, \"taps\": 1, \"payload_bytes\": %zu},\n"
                "  \"frames_sent\": %llu,\n"
                "  \"primary_rx\": %llu,\n"
                "  \"backup_tap_rx\": %llu,\n"
                "  \"events_executed\": %llu,\n"
                "  \"host_seconds\": %.6f,\n"
                "  \"frames_per_sec\": %.1f\n"
                "}\n",
                n_clients, payload_bytes,
                static_cast<unsigned long long>(frames_sent),
                static_cast<unsigned long long>(primary_rx),
                static_cast<unsigned long long>(backup_rx),
                static_cast<unsigned long long>(sim.queue().executed()),
                host_seconds, frames_per_sec);

    // Sanity: the tap must have seen every frame, or the bench is not
    // measuring the fan-out it claims to.
    if (backup_rx != frames_sent || primary_rx != frames_sent) {
        std::fprintf(stderr, "fanout mismatch: sent=%llu primary=%llu backup=%llu\n",
                     static_cast<unsigned long long>(frames_sent),
                     static_cast<unsigned long long>(primary_rx),
                     static_cast<unsigned long long>(backup_rx));
        return 1;
    }
    (void)deliveries;
    return 0;
}
