// Figure 6 reproduction: Bulk transfer — total time with a failover and
// without failure, for 1/5/20/100 MB transfers, per HB interval.
//
// Expected shape: the two curves per HB interval are parallel, separated by
// the (size-independent) failover time; at 50 ms HB they nearly coincide.
#include <cstdio>

#include "bench_util.hpp"

using namespace sttcp;
using namespace sttcp::bench;

int main() {
    std::printf("Figure 6: Bulk transfer total time (s), with failover vs without\n\n");
    std::printf("%-12s", "HB interval");
    for (int mb : {1, 5, 20, 100}) {
        std::printf("  %9dMB-ok  %9dMB-f", mb, mb);
    }
    std::printf("\n");
    print_rule(12 + 4 * 26);

    for (const auto& hb : hb_sweep()) {
        std::printf("%-12s", hb.label);
        for (int mb : {1, 5, 20, 100}) {
            harness::ExperimentConfig cfg;
            cfg.testbed.sttcp = sttcp_with_hb(hb.interval);
            cfg.workload = app::Workload::bulk_mb(static_cast<std::uint32_t>(mb));
            int n = mb >= 20 ? 1 : 2;
            auto base = run_averaged(cfg, n);
            auto fail = run_averaged(cfg, n, 0.5, base.mean_total_seconds);
            bool ok = base.completed_runs == n && fail.completed_runs == n &&
                      base.verify_errors + fail.verify_errors == 0;
            if (ok) {
                std::printf("  %11.3f  %11.3f", base.mean_total_seconds,
                            fail.mean_total_seconds);
            } else {
                std::printf("  %11s  %11s", "FAIL", "FAIL");
            }
        }
        std::printf("\n");
    }
    return 0;
}
