#!/usr/bin/env bash
# Full correctness gate for the ST-TCP repo. Runs everything a PR must pass:
#
#   1. default build (invariant auditor ON) + full ctest suite + the
#      conformance wire-script suite (tests/conform/scripts) replayed under
#      both EventQueue backends with byte-identical-trace enforcement
#   2. chaos soak: 200 seeded trials + a deliberate failure-pipeline demo
#      (reproduce-by-seed and shrink must themselves work)
#   3. hardened-warnings build: -Werror -Wshadow -Wconversion -Wswitch-enum
#      + 200-trial soak on that binary
#   4. ASan/UBSan build + full ctest suite + 200-trial soak under sanitizers
#   5. ThreadSanitizer build (STTCP_SANITIZE=thread) + sharded soak smoke:
#      the --jobs 4 path (src/fuzz/shard.cpp) races workers against the
#      consuming main thread, so TSan dynamically re-checks the guarded_by
#      discipline staticcheck proves statically
#
# Steps 1, 3 and 4 also build and run tools/staticcheck (layering DAG,
# state-funnel, flow-sensitive event lifecycle, [this]-capture, seq-raw,
# timer-rearm, guarded-by, payload-move, payload-alloc, impairment-api,
# interprocedural wire-taint, waiver.stale) over src/ in parallel
# (--jobs) with a --json report per profile — the analyzer must agree with
# itself in every compiler configuration; step 1 additionally emits a SARIF
# report. The former tools/lint.py rules now live inside staticcheck, so
# there is no separate lint step. The same three steps replay the
# conformance script suite with --compare-backends, so the wheel/heap
# wire-trace identity also holds under -Werror and sanitizers.
#   6. clang-tidy over files changed vs the merge base (skipped with a notice
#      when clang-tidy is not installed)
#   7. parallel-soak identity: --jobs 4 output must be byte-identical to
#      --jobs 1 (sharding may never change results or their order)
#   8. Release bench smoke: quick-sized runs of all three benches, failing on
#      a >15% throughput drop against the committed BENCH_*.json medians
#
# Usage: ci/check.sh [base-ref]     (default base-ref: origin/main or HEAD~1)
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS=$(nproc 2>/dev/null || echo 4)

step() { printf '\n=== %s ===\n' "$*"; }

step "1/8 default build (STTCP_AUDIT=ON) + tests"
cmake -B build-ci -S . >/dev/null
cmake --build build-ci -j"$JOBS"
build-ci/tools/staticcheck/staticcheck --root src --jobs "$JOBS" \
    --json build-ci/staticcheck.json --sarif build-ci/staticcheck.sarif
ctest --test-dir build-ci --output-on-failure -j"$JOBS"
# Conformance wire scripts under BOTH EventQueue backends: --compare-backends
# replays every script twice and fails unless the per-script wire traces are
# byte-identical (the scheduler may never be observable on the wire).
build-ci/tools/sttcp_conform --compare-backends --dir tests/conform/scripts

step "2/8 chaos soak: 200 trials + failure-pipeline demo"
build-ci/tools/sttcp_soak --trials 200 --seed-base 1
# The demo invariant fails on purpose; the run must reproduce it by seed and
# shrink it to at most 2 active impairment dimensions, proving the
# reproducer/shrinker pipeline works before anyone needs it in anger.
build-ci/tools/sttcp_soak --demo-failure

step "3/8 hardened warnings-as-errors build + soak"
cmake -B build-ci-werror -S . -DSTTCP_WERROR=ON >/dev/null
cmake --build build-ci-werror -j"$JOBS"
build-ci-werror/tools/staticcheck/staticcheck --root src --jobs "$JOBS" --json build-ci-werror/staticcheck.json
build-ci-werror/tools/sttcp_soak --trials 200 --seed-base 1
build-ci-werror/tools/sttcp_conform --compare-backends --dir tests/conform/scripts

step "4/8 sanitizer build (ASan+UBSan) + tests + soak"
cmake -B build-ci-asan -S . -DSTTCP_SANITIZE=ON >/dev/null
cmake --build build-ci-asan -j"$JOBS"
build-ci-asan/tools/staticcheck/staticcheck --root src --jobs "$JOBS" --json build-ci-asan/staticcheck.json
ctest --test-dir build-ci-asan --output-on-failure -j"$JOBS"
build-ci-asan/tools/sttcp_soak --trials 200 --seed-base 1
build-ci-asan/tools/sttcp_conform --compare-backends --dir tests/conform/scripts

step "5/8 ThreadSanitizer build + sharded soak smoke (--jobs 4)"
cmake -B build-ci-tsan -S . -DSTTCP_SANITIZE=thread >/dev/null
cmake --build build-ci-tsan -j"$JOBS" --target sttcp_soak
# 25 trials across 4 workers exercises the claim/publish/consume protocol of
# ShardedTrialRunner under TSan; any data race aborts the run (no-recover).
build-ci-tsan/tools/sttcp_soak --trials 25 --seed-base 1 --jobs 4

step "6/8 clang-tidy (changed files)"
if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed — skipping (profile: .clang-tidy)"
else
    BASE="${1:-}"
    if [ -z "$BASE" ]; then
        BASE=$(git merge-base HEAD origin/main 2>/dev/null || git rev-parse HEAD~1)
    fi
    CHANGED=$(git diff --name-only "$BASE" -- 'src/*.cpp' | while read -r f; do
                  [ -f "$f" ] && echo "$f"; done)
    if [ -z "$CHANGED" ]; then
        echo "no changed src/*.cpp files vs $BASE"
    else
        # compile_commands.json is exported by the default build above.
        echo "$CHANGED" | xargs clang-tidy -p "$ROOT/build-ci"
    fi
fi

step "7/8 parallel soak identity (--jobs 4 == --jobs 1)"
build-ci/tools/sttcp_soak --trials 40 --seed-base 7 --verbose --jobs 1 > build-ci/soak-j1.txt
build-ci/tools/sttcp_soak --trials 40 --seed-base 7 --verbose --jobs 4 > build-ci/soak-j4.txt
diff -u build-ci/soak-j1.txt build-ci/soak-j4.txt
echo "sharded soak output byte-identical"

step "8/8 Release bench smoke vs committed medians"
cmake -B build-ci-rel -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci-rel -j"$JOBS" \
    --target bench_frame_fanout bench_scale bench_timer_wheel
# Each bench runs 3 times; the best sample must land within 15% of the
# committed median. Best-of-3 vs median absorbs single-core CI jitter, and
# one full retry round absorbs a transiently-throttled host window (observed
# 2x swings on shared runners) while still catching a persistent regression.
bench_guard() {
    local name="$1" committed="$2" key="$3"
    shift 3
    local attempt
    for attempt in 1 2; do
        local runs=()
        for _ in 1 2 3; do runs+=("$("$@")"); done
        if python3 - "$name" "$committed" "$key" "${runs[@]}" <<'PY'
import json, sys
name, committed, key, *samples = sys.argv[1:]
want = json.load(open(committed))[key + "_median"]
got = max(json.loads(s)[key] for s in samples)
floor = 0.85 * want
status = "ok" if got >= floor else "below floor"
print(f"{name}: {key} best-of-3 {got:.1f} vs committed median {want:.1f} "
      f"(floor {floor:.1f}) — {status}")
sys.exit(0 if got >= floor else 1)
PY
        then return 0; fi
        [ "$attempt" = 1 ] && echo "$name: retrying once (transient host slowdown?)"
    done
    echo "$name: REGRESSION — persistently >15% below the committed median" >&2
    return 1
}
bench_guard frame_fanout BENCH_frame_fanout.json frames_per_sec \
    build-ci-rel/bench/bench_frame_fanout
bench_guard scale BENCH_scale.json steady_events_per_sec \
    build-ci-rel/bench/bench_scale 10000 2
# Absolute events/sec swings with host frequency, so the scheduler bench is
# gated on the wheel/heap speedup ratio instead: both backends run
# interleaved in one invocation and best-of-3 per backend cancels machine
# drift (single runs still see 2x frequency swings on shared runners). The
# committed wheel_speedup_median also enforces the >1.1x wheel acceptance
# bar.
bench_guard timer_wheel BENCH_timer_wheel.json wheel_speedup \
    sh -c 'build-ci-rel/bench/bench_timer_wheel 10000 50 3 | python3 -c "
import json,sys; d=json.load(sys.stdin)
d[\"wheel_speedup\"]=round(max(d[\"wheel_events_per_sec\"])/max(d[\"heap_events_per_sec\"]),3)
print(json.dumps(d))"'

step "all checks passed"
