#!/usr/bin/env bash
# Full correctness gate for the ST-TCP repo. Runs everything a PR must pass:
#
#   1. default build (invariant auditor ON) + full ctest suite
#   2. chaos soak: 200 seeded trials + a deliberate failure-pipeline demo
#      (reproduce-by-seed and shrink must themselves work)
#   3. hardened-warnings build: -Werror -Wshadow -Wconversion -Wswitch-enum
#      + 200-trial soak on that binary
#   4. ASan/UBSan build + full ctest suite + 200-trial soak under sanitizers
#   5. custom protocol lints (tools/lint.py)
#
# Steps 1, 3 and 4 also build and run tools/staticcheck (layering DAG,
# state-funnel, event lifecycle, [this]-capture, seq-raw) over src/ with a
# --json report per profile — the analyzer must agree with itself in every
# compiler configuration.
#   6. clang-tidy over files changed vs the merge base (skipped with a notice
#      when clang-tidy is not installed)
#
# Usage: ci/check.sh [base-ref]     (default base-ref: origin/main or HEAD~1)
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS=$(nproc 2>/dev/null || echo 4)

step() { printf '\n=== %s ===\n' "$*"; }

step "1/6 default build (STTCP_AUDIT=ON) + tests"
cmake -B build-ci -S . >/dev/null
cmake --build build-ci -j"$JOBS"
build-ci/tools/staticcheck/staticcheck --root src --json build-ci/staticcheck.json
ctest --test-dir build-ci --output-on-failure -j"$JOBS"

step "2/6 chaos soak: 200 trials + failure-pipeline demo"
build-ci/tools/sttcp_soak --trials 200 --seed-base 1
# The demo invariant fails on purpose; the run must reproduce it by seed and
# shrink it to at most 2 active impairment dimensions, proving the
# reproducer/shrinker pipeline works before anyone needs it in anger.
build-ci/tools/sttcp_soak --demo-failure

step "3/6 hardened warnings-as-errors build + soak"
cmake -B build-ci-werror -S . -DSTTCP_WERROR=ON >/dev/null
cmake --build build-ci-werror -j"$JOBS"
build-ci-werror/tools/staticcheck/staticcheck --root src --json build-ci-werror/staticcheck.json
build-ci-werror/tools/sttcp_soak --trials 200 --seed-base 1

step "4/6 sanitizer build (ASan+UBSan) + tests + soak"
cmake -B build-ci-asan -S . -DSTTCP_SANITIZE=ON >/dev/null
cmake --build build-ci-asan -j"$JOBS"
build-ci-asan/tools/staticcheck/staticcheck --root src --json build-ci-asan/staticcheck.json
ctest --test-dir build-ci-asan --output-on-failure -j"$JOBS"
build-ci-asan/tools/sttcp_soak --trials 200 --seed-base 1

step "5/6 protocol lints"
python3 tools/lint.py

step "6/6 clang-tidy (changed files)"
if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed — skipping (profile: .clang-tidy)"
else
    BASE="${1:-}"
    if [ -z "$BASE" ]; then
        BASE=$(git merge-base HEAD origin/main 2>/dev/null || git rev-parse HEAD~1)
    fi
    CHANGED=$(git diff --name-only "$BASE" -- 'src/*.cpp' | while read -r f; do
                  [ -f "$f" ] && echo "$f"; done)
    if [ -z "$CHANGED" ]; then
        echo "no changed src/*.cpp files vs $BASE"
    else
        # compile_commands.json is exported by the default build above.
        echo "$CHANGED" | xargs clang-tidy -p "$ROOT/build-ci"
    fi
fi

step "all checks passed"
