#!/usr/bin/env bash
# Full correctness gate for the ST-TCP repo. Runs everything a PR must pass:
#
#   1. default build (invariant auditor ON) + full ctest suite
#   2. hardened-warnings build: -Werror -Wshadow -Wconversion -Wswitch-enum
#   3. ASan/UBSan build + full ctest suite
#   4. custom protocol lints (tools/lint.py)
#   5. clang-tidy over files changed vs the merge base (skipped with a notice
#      when clang-tidy is not installed)
#
# Usage: ci/check.sh [base-ref]     (default base-ref: origin/main or HEAD~1)
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS=$(nproc 2>/dev/null || echo 4)

step() { printf '\n=== %s ===\n' "$*"; }

step "1/5 default build (STTCP_AUDIT=ON) + tests"
cmake -B build-ci -S . >/dev/null
cmake --build build-ci -j"$JOBS"
ctest --test-dir build-ci --output-on-failure -j"$JOBS"

step "2/5 hardened warnings-as-errors build"
cmake -B build-ci-werror -S . -DSTTCP_WERROR=ON >/dev/null
cmake --build build-ci-werror -j"$JOBS"

step "3/5 sanitizer build (ASan+UBSan) + tests"
cmake -B build-ci-asan -S . -DSTTCP_SANITIZE=ON >/dev/null
cmake --build build-ci-asan -j"$JOBS"
ctest --test-dir build-ci-asan --output-on-failure -j"$JOBS"

step "4/5 protocol lints"
python3 tools/lint.py

step "5/5 clang-tidy (changed files)"
if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "clang-tidy not installed — skipping (profile: .clang-tidy)"
else
    BASE="${1:-}"
    if [ -z "$BASE" ]; then
        BASE=$(git merge-base HEAD origin/main 2>/dev/null || git rev-parse HEAD~1)
    fi
    CHANGED=$(git diff --name-only "$BASE" -- 'src/*.cpp' | while read -r f; do
                  [ -f "$f" ] && echo "$f"; done)
    if [ -z "$CHANGED" ]; then
        echo "no changed src/*.cpp files vs $BASE"
    else
        # compile_commands.json is exported by the default build above.
        echo "$CHANGED" | xargs clang-tidy -p "$ROOT/build-ci"
    fi
fi

step "all checks passed"
