// The conformance-script suite as ctest cases: every tests/conform/scripts/
// *.pkt becomes its own parameterized test instance (gtest_discover_tests
// splits them into individual ctest cases). The script list is generated at
// configure time from a CONFIGURE_DEPENDS glob — adding a script reconfigures
// and re-discovers; editing one is picked up at run time because the test
// reads the file from the source tree on every execution.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "conform/engine.hpp"

namespace sttcp {
namespace {

struct ScriptCase {
    const char* name;
    const char* path;
};

constexpr ScriptCase kScripts[] = {
#include "conform_scripts.inc"
};

std::string read_script(const char* path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing script " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class ConformScript : public ::testing::TestWithParam<ScriptCase> {};

TEST_P(ConformScript, Replays) {
    const ScriptCase& sc = GetParam();
    conform::RunResult result = conform::run_script_text(read_script(sc.path), sc.name);
    EXPECT_TRUE(result.passed) << result.failure;
}

// Satellite determinism gate: the same script must produce a byte-identical
// wire trace under both EventQueue backends.
TEST_P(ConformScript, WireTraceIdenticalAcrossBackends) {
    const ScriptCase& sc = GetParam();
    std::string text = read_script(sc.path);

    conform::RunOptions wheel;
    wheel.backend = sim::EventQueue::Backend::kWheel;
    conform::RunResult a = conform::run_script_text(text, sc.name, wheel);
    ASSERT_TRUE(a.passed) << a.failure;

    conform::RunOptions heap;
    heap.backend = sim::EventQueue::Backend::kHeap;
    conform::RunResult b = conform::run_script_text(text, sc.name, heap);
    ASSERT_TRUE(b.passed) << b.failure;

    ASSERT_EQ(a.wire_trace.size(), b.wire_trace.size());
    for (std::size_t i = 0; i < a.wire_trace.size(); ++i)
        EXPECT_EQ(a.wire_trace[i], b.wire_trace[i]) << "trace line " << i;
}

INSTANTIATE_TEST_SUITE_P(Suite, ConformScript, ::testing::ValuesIn(kScripts),
                         [](const ::testing::TestParamInfo<ScriptCase>& info) {
                             return std::string(info.param.name);
                         });

} // namespace
} // namespace sttcp
