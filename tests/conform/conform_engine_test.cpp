// Unit coverage for the conformance engine itself: the DSL parser, the
// mismatch reporter (field diff), record-mode round-tripping, silence and
// strict-leftover enforcement. The per-script suite lives in
// conform_scripts_test.cpp; these tests pin the machinery the suite rests on.
#include <gtest/gtest.h>

#include <string>

#include "conform/engine.hpp"
#include "conform/script.hpp"

namespace sttcp {
namespace {

using conform::parse_script;
using conform::ParseError;
using conform::RunOptions;
using conform::RunResult;
using conform::run_script_text;
using conform::Script;
using conform::StepKind;

// A minimal passive handshake against the single-stack harness; the building
// block most tests below perturb.
const char* kHandshake =
    "mode stack\n"
    "\n"
    "+0 inject S 1000:1000(0) win 65535 <mss 1460>\n"
    "+1 expect S. 10000:10000(0) ack 1001 win 65535 <mss 1460>\n"
    "+0 inject . 1001:1001(0) ack 10001 win 65535\n";

TEST(ConformParser, ParsesDirectivesAndSteps) {
    Script s = parse_script(kHandshake, "handshake");
    EXPECT_FALSE(s.directives.testbed);
    ASSERT_EQ(s.steps.size(), 3u);
    EXPECT_EQ(s.steps[0].kind, StepKind::kInject);
    EXPECT_EQ(s.steps[0].seg.flags, "S");
    EXPECT_EQ(s.steps[0].seg.seq_begin, 1000u);
    EXPECT_EQ(s.steps[0].seg.mss, 1460);
    EXPECT_EQ(s.steps[1].kind, StepKind::kExpect);
    EXPECT_EQ(s.steps[1].seg.ack, 1001u);
    // `+1 expect` without an explicit window means "within 1s of base".
    EXPECT_EQ(s.steps[1].at, sim::Duration{});
    EXPECT_EQ(s.steps[1].until, sim::seconds{1});
}

TEST(ConformParser, FailSugarAndSilence) {
    Script s = parse_script(
        "mode testbed\n"
        "@fail primary\n"
        "expect-silence backup 0.5\n",
        "t");
    ASSERT_EQ(s.steps.size(), 2u);
    EXPECT_EQ(s.steps[0].kind, StepKind::kFail);
    EXPECT_EQ(s.steps[0].role, conform::Role::kPrimary);
    EXPECT_EQ(s.steps[1].kind, StepKind::kExpectSilence);
    EXPECT_EQ(s.steps[1].role, conform::Role::kBackup);
    EXPECT_EQ(s.steps[1].until, sim::milliseconds{500});
}

TEST(ConformParser, CanonicalizesFlagOrder) {
    // ".S" and "S." are the same segment; the AST (and thus diffs and
    // recorded scripts) always spell the canonical FSRP.U order.
    Script s = parse_script("+1 expect .S 1:1(0) ack 1\n", "t");
    EXPECT_EQ(s.steps.at(0).seg.flags, "S.");
}

TEST(ConformParser, RejectsMalformedLines) {
    // Not a flags token.
    EXPECT_THROW((void)parse_script("+0 inject Q 1:1(0) win 0\n", "t"), ParseError);
    // inject needs a concrete seq range.
    EXPECT_THROW((void)parse_script("+0 inject S win 100\n", "t"), ParseError);
    // Directives are header-only: none allowed after the first step.
    EXPECT_THROW((void)parse_script("+0 run\nmode testbed\n", "t"), ParseError);
    // `fail` names a role that exists in the current mode.
    EXPECT_THROW((void)parse_script("@fail nobody\n", "t"), ParseError);
    try {
        (void)parse_script("+0 inject S 1:1(0) win 0\nnot a line\n", "t");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line, 2);
    }
}

TEST(ConformEngine, PassingScriptPasses) {
    RunResult r = run_script_text(kHandshake, "handshake");
    EXPECT_TRUE(r.passed) << r.failure;
    // The wire trace is what the stack put on the wire: just the SYN-ACK.
    ASSERT_EQ(r.wire_trace.size(), 1u);
    EXPECT_NE(r.wire_trace[0].find("S. 10000:10000(0) ack 1001"), std::string::npos);
}

// The headline reporter behavior: a wrong expectation fails with a unified
// field diff naming the mismatched field and both values.
TEST(ConformEngine, BrokenExpectationYieldsFieldDiff) {
    std::string broken = kHandshake;
    std::size_t pos = broken.find("ack 1001");
    ASSERT_NE(pos, std::string::npos);
    broken.replace(pos, 8, "ack 1002");
    RunResult r = run_script_text(broken, "broken");
    ASSERT_FALSE(r.passed);
    EXPECT_NE(r.failure.find("- ack\t1002"), std::string::npos) << r.failure;
    EXPECT_NE(r.failure.find("+ ack\t1001"), std::string::npos) << r.failure;
    EXPECT_NE(r.failure.find("--- expected"), std::string::npos) << r.failure;
    EXPECT_NE(r.failure.find("frame trace"), std::string::npos) << r.failure;
}

TEST(ConformEngine, ExpectTimesOutWhenNothingArrives) {
    RunResult r = run_script_text("+0.05 expect S. 1:1(0) ack 1 win 1\n", "t");
    ASSERT_FALSE(r.passed);
    EXPECT_NE(r.failure.find("no segment arrived"), std::string::npos) << r.failure;
}

TEST(ConformEngine, SilenceViolationNamesTheSegment) {
    // The stack answers the SYN inside the claimed quiet window.
    RunResult r = run_script_text(
        "+0 inject S 1000:1000(0) win 65535 <mss 1460>\n"
        "expect-silence stack 0.5\n",
        "t");
    ASSERT_FALSE(r.passed);
    EXPECT_NE(r.failure.find("expected silence from stack"), std::string::npos) << r.failure;
    EXPECT_NE(r.failure.find("S. 10000:10000(0) ack 1001"), std::string::npos) << r.failure;
}

TEST(ConformEngine, StrictModeFlagsUnconsumedSegments) {
    // Inject a SYN, never expect the SYN-ACK: the run must fail leftovers.
    RunResult r = run_script_text(
        "+0 inject S 1000:1000(0) win 65535 <mss 1460>\n"
        "+0.1 run\n",
        "t");
    ASSERT_FALSE(r.passed);
    EXPECT_NE(r.failure.find("unconsumed"), std::string::npos) << r.failure;
}

TEST(ConformEngine, ParseErrorSurfacesAsFailedResult) {
    RunResult r = run_script_text("gibberish\n", "bad");
    ASSERT_FALSE(r.passed);
    EXPECT_NE(r.failure.find("bad:1"), std::string::npos) << r.failure;
}

// Record mode is the golden-script generator: its output must replay
// green, and re-recording the recorded script must be a fixpoint.
TEST(ConformEngine, RecordRoundTripsAndReachesFixpoint) {
    const char* skeleton =
        "mode stack\n"
        "+0 inject S 1000:1000(0) win 65535 <mss 1460>\n"
        "+1 expect *\n"
        "+0 inject . 1001:1001(0) ack 10001 win 65535\n";
    RunOptions rec;
    rec.record = true;
    RunResult first = run_script_text(skeleton, "skel", rec);
    ASSERT_TRUE(first.passed) << first.failure;
    // The wildcard was concretized into a windowed expect line.
    EXPECT_NE(first.recorded.find("expect S. 10000:10000(0) ack 1001"), std::string::npos)
        << first.recorded;

    RunResult replay = run_script_text(first.recorded, "skel");
    EXPECT_TRUE(replay.passed) << replay.failure;

    RunResult second = run_script_text(first.recorded, "skel", rec);
    ASSERT_TRUE(second.passed) << second.failure;
    EXPECT_EQ(first.recorded, second.recorded);
}

// The testbed harness end-to-end, without a .pkt file: mid-upload failover
// with the backup silent until takeover and sequence-contiguous afterwards
// is expressible (and passes) straight from an inline script.
TEST(ConformEngine, TestbedFailoverInline) {
    RunResult r = run_script_text(
        "mode testbed\n"
        "workload 100 0\n"
        "+0.2 inject S 1000:1000(0) win 65535 <mss 1460>\n"
        "+1 expect S. 10000:10000(0) ack 1001 win 65535 <mss 1460>\n"
        "@fail primary\n"
        "+0 inject . 1001:1001(0) ack 10001 win 65535\n"
        "expect-silence backup 0.14\n"
        "+0.05 inject P. 1001:1151(150) ack 10001 win 65535\n"
        "+1 expect P. 10001:10101(100) ack 1151 win 65535\n"
        "+0 inject . 1151:1151(0) ack 10101 win 65535\n"
        "+0.1 expect . 10101:10101(0) ack 1151 win 65535\n"
        "+0.05 run\n",
        "inline_failover");
    EXPECT_TRUE(r.passed) << r.failure;
}

} // namespace
} // namespace sttcp
