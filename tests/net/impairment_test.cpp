// Impairment pipeline: Gilbert–Elliott bursty loss, duplication, bit-flip
// corruption, blackouts, bandwidth changes — and the frame-conservation
// property that every sent frame is accounted for exactly once.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "net/link.hpp"
#include "sim/simulation.hpp"

namespace sttcp::net {
namespace {

EthernetFrame ipv4_frame(std::size_t payload = 256, std::uint8_t fill = 0x5a) {
    EthernetFrame f;
    f.dst = MacAddress::local(2);
    f.src = MacAddress::local(1);
    f.type = EtherType::kIpv4;
    f.payload.assign(payload, fill);
    return f;
}

struct Sink final : FrameEndpoint {
    void handle_frame(const EthernetFrame& frame) override { frames.push_back(frame); }
    [[nodiscard]] std::string endpoint_name() const override { return "sink"; }
    std::vector<EthernetFrame> frames;
};

struct ImpairedLink : ::testing::Test {
    sim::Simulation sim{7};
    Link link{sim, LinkConfig{}};
    Sink a, b;

    ImpairedLink() { link.attach(a, b); }

    void blast(int n, std::size_t payload = 256) {
        for (int i = 0; i < n; ++i) link.send_from(a, ipv4_frame(payload));
        sim.run();
    }
};

// ------------------------------------------------------- Gilbert–Elliott

TEST_F(ImpairedLink, GilbertElliottLossIsBursty) {
    // Same long-run loss rate two ways: uniform, and GE with rare but
    // near-total bad states. The GE stream must clump its drops.
    ImpairmentConfig cfg;
    cfg.gilbert_elliott = true;
    cfg.ge_p_enter_bad = 0.01;
    cfg.ge_p_exit_bad = 0.25;
    cfg.ge_loss_bad = 0.95;
    link.set_impairments(cfg);

    // Track per-frame delivery in send order via delivery count deltas.
    constexpr int kFrames = 4000;
    std::vector<bool> delivered(kFrames, false);
    std::uint64_t prev = 0;
    for (int i = 0; i < kFrames; ++i) {
        link.send_from(a, ipv4_frame(64));
        sim.run();  // drain so stats attribute to this frame
        delivered[static_cast<std::size_t>(i)] = link.stats().frames_delivered > prev;
        prev = link.stats().frames_delivered;
    }

    std::uint64_t losses = link.stats().frames_dropped_loss;
    ASSERT_GT(losses, 50u);  // the bad state was actually entered
    // Burstiness: count runs of consecutive drops. Uniform loss at the same
    // rate would give mean run length ~= 1/(1-p) ~ 1.04; GE gives ~1/p_exit.
    int runs = 0;
    std::uint64_t dropped = 0;
    for (int i = 0; i < kFrames; ++i) {
        if (delivered[static_cast<std::size_t>(i)]) continue;
        ++dropped;
        if (i == 0 || delivered[static_cast<std::size_t>(i - 1)]) ++runs;
    }
    ASSERT_GT(runs, 0);
    double mean_run = static_cast<double>(dropped) / runs;
    EXPECT_GT(mean_run, 2.0) << "losses did not clump: mean drop-run " << mean_run;
}

TEST_F(ImpairedLink, ZeroProbabilityStagesConsumeNoRandomness) {
    // Draw-order compatibility: a pipeline whose extra stages are all zero
    // must leave the RNG stream exactly where plain uniform loss does.
    sim::Simulation sim_a{99}, sim_b{99};
    Link plain{sim_a, LinkConfig{}}, piped{sim_b, LinkConfig{}};
    Sink pa, pb, qa, qb;
    plain.attach(pa, pb);
    piped.attach(qa, qb);
    plain.set_loss_toward(pb, 0.3);
    ImpairmentConfig cfg;  // everything but loss at zero probability
    cfg.loss = 0.3;
    piped.set_impairments_toward(qb, cfg);

    for (int i = 0; i < 500; ++i) {
        plain.send_from(pa, ipv4_frame(64));
        piped.send_from(qa, ipv4_frame(64));
    }
    sim_a.run();
    sim_b.run();
    EXPECT_EQ(plain.stats().frames_delivered, piped.stats().frames_delivered);
    EXPECT_EQ(sim_a.rng().next_u64(), sim_b.rng().next_u64());
}

// ----------------------------------------------------------- duplication

TEST_F(ImpairedLink, DuplicationDeliversExtraCopiesButNeverCascades) {
    ImpairmentConfig cfg;
    cfg.duplicate = 1.0;  // every frame duplicated once — and only once
    link.set_impairments(cfg);
    blast(100);
    EXPECT_EQ(link.stats().frames_duplicated, 100u);
    EXPECT_EQ(b.frames.size(), 200u);
    EXPECT_EQ(link.stats().frames_delivered, 200u);
}

// ------------------------------------------------------------ corruption

TEST_F(ImpairedLink, CorruptionFlipsBitsCopyOnWrite) {
    ImpairmentConfig cfg;
    cfg.corrupt = 1.0;
    cfg.corrupt_max_bits = 3;
    link.set_impairments(cfg);

    EthernetFrame original = ipv4_frame(128, 0x00);
    link.send_from(a, original);  // sender keeps a handle on the payload
    sim.run();

    ASSERT_EQ(b.frames.size(), 1u);
    EXPECT_EQ(link.stats().frames_corrupted, 1u);
    // The sender's buffer is untouched (a bit error damages one
    // transmission, not the sending NIC's memory) ...
    for (std::uint8_t byte : original.payload.view()) EXPECT_EQ(byte, 0x00);
    // ... while the delivered copy carries 1..3 flipped bits.
    int flipped = 0;
    util::ByteView got = b.frames[0].payload.view();
    for (std::size_t i = 0; i < got.size(); ++i)
        flipped += __builtin_popcount(got[i]);
    EXPECT_GE(flipped, 1);
    EXPECT_LE(flipped, 3);
}

TEST_F(ImpairedLink, ArpFramesAreNeverCorrupted) {
    ImpairmentConfig cfg;
    cfg.corrupt = 1.0;
    link.set_impairments(cfg);
    EthernetFrame arp = ipv4_frame(64, 0x11);
    arp.type = EtherType::kArp;
    for (int i = 0; i < 20; ++i) link.send_from(a, arp);
    sim.run();
    EXPECT_EQ(link.stats().frames_corrupted, 0u);
    for (const auto& f : b.frames)
        for (std::uint8_t byte : f.payload.view()) EXPECT_EQ(byte, 0x11);
}

// -------------------------------------------------------------- blackout

TEST_F(ImpairedLink, BlackoutWindowEatsFramesThenHeals) {
    link.schedule_blackout(sim::TimePoint{} + sim::milliseconds{10}, sim::milliseconds{20});
    auto send_at = [&](std::int64_t ms) {
        sim.schedule_at(sim::TimePoint{} + sim::milliseconds{ms},
                        [&]() { link.send_from(a, ipv4_frame(64)); });
    };
    send_at(5);   // before: delivered
    send_at(15);  // inside: vanishes
    send_at(29);  // still inside
    send_at(31);  // after: delivered
    sim.run();
    EXPECT_EQ(b.frames.size(), 2u);
    EXPECT_EQ(link.stats().frames_dropped_blackout, 2u);
}

TEST_F(ImpairedLink, BlackoutTowardOneDirectionLeavesTheOtherAlive) {
    link.schedule_blackout_toward(b, sim::TimePoint{}, sim::seconds{1});
    link.send_from(a, ipv4_frame(64));  // toward b: blacked out
    link.send_from(b, ipv4_frame(64));  // toward a: fine
    sim.run();
    EXPECT_TRUE(b.frames.empty());
    EXPECT_EQ(a.frames.size(), 1u);
}

// ------------------------------------------------------ bandwidth change

TEST_F(ImpairedLink, BandwidthDropSlowsSubsequentFrames) {
    // 1000 wire bytes at 8 Mbit/s = 1 ms; at 0.8 Mbit/s = 10 ms.
    LinkConfig cfg;
    cfg.bandwidth_bps = 8e6;
    cfg.propagation = sim::Duration{0};
    link.set_config(cfg);
    EthernetFrame f = ipv4_frame(962);
    ASSERT_EQ(f.wire_size(), 1000u);

    link.send_from(a, f);
    sim.run();
    ASSERT_EQ(b.frames.size(), 1u);
    EXPECT_LT(sim.now() - sim::TimePoint{}, sim::milliseconds{2});

    link.set_bandwidth_bps(0.8e6);
    sim::TimePoint before = sim.now();
    link.send_from(a, f);
    sim.run();
    ASSERT_EQ(b.frames.size(), 2u);
    EXPECT_GE(sim.now() - before, sim::milliseconds{9});
}

// ---------------------------------------------- frame conservation property

struct ConservationParams {
    std::uint64_t seed;
    bool ge;
    double loss, dup, corrupt, spike;
    int jitter_ms;
    bool blackout;
    std::size_t queue_bytes;
};

class FrameConservation : public ::testing::TestWithParam<ConservationParams> {};

// delivered + dropped_queue + dropped_loss + dropped_blackout
//   == sent + duplicated, for any impairment mix, once in-flight frames
// drain. Every frame is accounted for exactly once — no double counting, no
// silent vanishing.
TEST_P(FrameConservation, EveryFrameAccountedExactlyOnce) {
    auto p = GetParam();
    sim::Simulation sim{p.seed};
    LinkConfig link_cfg;
    link_cfg.queue_capacity_bytes = p.queue_bytes;
    Link link{sim, link_cfg};
    Sink a, b;
    link.attach(a, b);

    ImpairmentConfig cfg;
    if (p.ge) {
        cfg.gilbert_elliott = true;
        cfg.ge_p_enter_bad = 0.02;
        cfg.ge_p_exit_bad = 0.3;
        cfg.ge_loss_bad = 0.8;
    } else {
        cfg.loss = p.loss;
    }
    cfg.duplicate = p.dup;
    cfg.corrupt = p.corrupt;
    cfg.spike = p.spike;
    cfg.spike_delay = sim::milliseconds{40};
    cfg.jitter = sim::milliseconds{p.jitter_ms};
    link.set_impairments(cfg);
    if (p.blackout)
        link.schedule_blackout(sim::TimePoint{} + sim::milliseconds{3}, sim::milliseconds{4});

    for (int i = 0; i < 1500; ++i) {
        link.send_from(a, ipv4_frame(static_cast<std::size_t>(64 + (i % 9) * 150)));
        if (i % 50 == 0) sim.run();  // let the queue breathe sometimes
    }
    sim.run();

    const Link::Stats& s = link.stats();
    EXPECT_EQ(s.accounted(), s.frames_sent + s.frames_duplicated)
        << "delivered=" << s.frames_delivered << " q=" << s.frames_dropped_queue
        << " loss=" << s.frames_dropped_loss << " blk=" << s.frames_dropped_blackout
        << " sent=" << s.frames_sent << " dup=" << s.frames_duplicated;
    EXPECT_EQ(b.frames.size(), s.frames_delivered);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, FrameConservation,
    ::testing::Values(
        // seed   ge     loss  dup   corr  spike jit blackout queue
        ConservationParams{1, false, 0.00, 0.00, 0.0, 0.00, 0, false, 256 * 1024},
        ConservationParams{2, false, 0.10, 0.05, 0.0, 0.00, 3, false, 256 * 1024},
        ConservationParams{3, true, 0.00, 0.10, 0.1, 0.01, 5, true, 256 * 1024},
        ConservationParams{4, false, 0.05, 0.30, 0.2, 0.02, 8, true, 256 * 1024},
        // Tiny queue: overflow drops interact with duplication (the extra
        // copy can overflow even when the first was admitted).
        ConservationParams{5, false, 0.02, 0.50, 0.0, 0.00, 2, false, 2 * 1024},
        ConservationParams{6, true, 0.00, 0.25, 0.1, 0.01, 4, true, 2 * 1024}),
    [](const ::testing::TestParamInfo<ConservationParams>& info) {
        return "mix" + std::to_string(info.param.seed);
    });

} // namespace
} // namespace sttcp::net
