// InlineLogger: the bump-in-the-wire appliance of Figure 3.
#include <gtest/gtest.h>

#include "net/inline_logger.hpp"
#include "net/nic.hpp"

namespace sttcp::net {
namespace {

struct Fixture : ::testing::Test {
    sim::Simulation sim;
    Node left_node{"left"};
    Node right_node{"right"};
    Node logger_node{"logger"};
    Nic left{left_node, "eth0", MacAddress::local(1)};
    Nic right{right_node, "eth0", MacAddress::local(2)};
    InlineLogger logger{sim, logger_node};
    Link l1{sim, LinkConfig{}};
    Link l2{sim, LinkConfig{}};
    std::vector<EthernetFrame> left_rx, right_rx;

    Fixture() {
        l1.attach(left, logger.side_a());
        l2.attach(logger.side_b(), right);
        left.set_rx_handler([this](const EthernetFrame& f) { left_rx.push_back(f); });
        right.set_rx_handler([this](const EthernetFrame& f) { right_rx.push_back(f); });
    }

    EthernetFrame frame(MacAddress dst, MacAddress src) {
        EthernetFrame f;
        f.dst = dst;
        f.src = src;
        f.payload.assign(64, 0x7e);
        return f;
    }
};

TEST_F(Fixture, BridgesBothDirections) {
    left.send(frame(MacAddress::local(2), left.mac()));
    right.send(frame(MacAddress::local(1), right.mac()));
    sim.run();
    EXPECT_EQ(right_rx.size(), 1u);
    EXPECT_EQ(left_rx.size(), 1u);
    EXPECT_EQ(logger.stats().frames_forwarded, 2u);
}

TEST_F(Fixture, RecordsEverythingItForwards) {
    for (int i = 0; i < 5; ++i) left.send(frame(MacAddress::local(2), left.mac()));
    sim.run();
    EXPECT_EQ(logger.store().frame_count(), 5u);
    EXPECT_GT(logger.store().stored_bytes(), 5u * 64);
}

TEST_F(Fixture, DeadLoggerSeversTheRail) {
    left.send(frame(MacAddress::local(2), left.mac()));
    sim.run();
    ASSERT_EQ(right_rx.size(), 1u);

    logger_node.power_off();
    left.send(frame(MacAddress::local(2), left.mac()));
    right.send(frame(MacAddress::local(1), right.mac()));
    sim.run();
    EXPECT_EQ(right_rx.size(), 1u);  // nothing new crossed
    EXPECT_EQ(left_rx.size(), 0u);
    EXPECT_EQ(logger.stats().frames_dropped_dead, 2u);
}

TEST_F(Fixture, ForwardingAddsOnlyItsLatency) {
    left.send(frame(MacAddress::local(2), left.mac()));
    // Two link traversals + 2us forwarding; well under a millisecond.
    sim.run_until(sim::TimePoint{} + sim::milliseconds{1});
    EXPECT_EQ(right_rx.size(), 1u);
}

} // namespace
} // namespace sttcp::net
