// Malformed wire input for every parse() boundary in src/net: exhaustive
// truncation sweeps, oversize buffers, structurally invalid fields, and bad
// TCP option encodings. The TCP cases recompute the checksum after
// tampering, so the structural checks are exercised directly rather than
// hiding behind a checksum mismatch. Includes regression tests for the
// validation gaps found by staticcheck's wire-taint pass (ARP opcode,
// TCP 16-bit length bound).
#include <gtest/gtest.h>

#include "net/arp.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/tcp_wire.hpp"
#include "net/udp.hpp"

namespace sttcp::net {
namespace {

const Ipv4Address kSrc{10, 0, 0, 1};
const Ipv4Address kDst{10, 0, 0, 2};

util::Bytes pattern(std::size_t n) {
    util::Bytes b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 31 + 7);
    return b;
}

util::ByteView prefix(const util::Bytes& raw, std::size_t n) {
    return util::ByteView{raw.data(), n};
}

// Recomputes the TCP checksum (pseudo-header included) in place so a
// tampered segment fails on the structural check under test, not on the
// checksum verification that runs first.
void patch_tcp_checksum(util::Bytes& raw, Ipv4Address src, Ipv4Address dst) {
    raw[16] = 0;
    raw[17] = 0;
    util::InternetChecksum sum;
    sum.add_u32(src.value());
    sum.add_u32(dst.value());
    sum.add_u16(6);  // IPPROTO_TCP
    sum.add_u16(static_cast<std::uint16_t>(raw.size()));
    sum.add(util::ByteView{raw});
    std::uint16_t c = sum.finish();
    raw[16] = static_cast<std::uint8_t>(c >> 8);
    raw[17] = static_cast<std::uint8_t>(c);
}

TcpSegment sample_segment(std::size_t payload = 32) {
    TcpSegment s;
    s.src_port = 1234;
    s.dst_port = 80;
    s.seq = util::Seq32{1000};
    s.ack = util::Seq32{2000};
    s.flags.ack = true;
    s.window = 4096;
    s.payload = pattern(payload);
    return s;
}

// ---------------------------------------------------------------- Ethernet

TEST(MalformedWire, EthernetEveryShortHeaderPrefixThrows) {
    EthernetFrame f;
    f.dst = MacAddress::local(1);
    f.src = MacAddress::local(2);
    f.type = EtherType::kIpv4;
    f.payload = pattern(64);
    util::Bytes raw = f.serialize();
    for (std::size_t n = 0; n < 14; ++n)
        EXPECT_THROW((void)EthernetFrame::parse(prefix(raw, n)), util::WireError)
            << "prefix " << n;
}

// --------------------------------------------------------------------- ARP

TEST(MalformedWire, ArpEveryTruncatedPrefixThrows) {
    ArpMessage m;
    m.op = ArpOp::kReply;
    m.sender_mac = MacAddress::local(3);
    m.sender_ip = kSrc;
    m.target_mac = MacAddress::local(4);
    m.target_ip = kDst;
    util::Bytes raw = m.serialize();
    ASSERT_EQ(raw.size(), ArpMessage::kWireSize);
    for (std::size_t n = 0; n < raw.size(); ++n)
        EXPECT_THROW((void)ArpMessage::parse(prefix(raw, n)), util::WireError)
            << "prefix " << n;
}

TEST(MalformedWire, ArpRejectsUnknownOpcode) {
    // Regression for the wire-taint triage: the opcode used to be cast
    // straight into the enum, so op=0 or op=3 flowed into dispatch logic.
    ArpMessage m;
    m.sender_mac = MacAddress::local(3);
    m.sender_ip = kSrc;
    m.target_ip = kDst;
    util::Bytes good = m.serialize();
    for (std::uint16_t op : {std::uint16_t{0}, std::uint16_t{3}, std::uint16_t{0xffff}}) {
        util::Bytes raw = good;
        raw[6] = static_cast<std::uint8_t>(op >> 8);
        raw[7] = static_cast<std::uint8_t>(op);
        EXPECT_THROW((void)ArpMessage::parse(raw), util::WireError) << "op " << op;
    }
    // Both legal opcodes still parse.
    EXPECT_EQ(ArpMessage::parse(good).op, ArpOp::kRequest);
    good[7] = 2;
    EXPECT_EQ(ArpMessage::parse(good).op, ArpOp::kReply);
}

// -------------------------------------------------------------------- IPv4

TEST(MalformedWire, Ipv4EveryTruncatedPrefixThrows) {
    Ipv4Packet p;
    p.src = kSrc;
    p.dst = kDst;
    p.proto = IpProto::kTcp;
    p.payload = pattern(40);
    util::Bytes raw = p.serialize();
    for (std::size_t n = 0; n < raw.size(); ++n)
        EXPECT_THROW((void)Ipv4Packet::parse(prefix(raw, n)), util::WireError)
            << "prefix " << n;
}

// --------------------------------------------------------------------- UDP

TEST(MalformedWire, UdpEveryTruncatedPrefixThrows) {
    UdpDatagram d;
    d.src_port = 5000;
    d.dst_port = 53;
    d.payload = pattern(24);
    util::Bytes raw = d.serialize(kSrc, kDst);
    for (std::size_t n = 0; n < raw.size(); ++n)
        EXPECT_THROW((void)UdpDatagram::parse(prefix(raw, n), kSrc, kDst), util::WireError)
            << "prefix " << n;
}

// --------------------------------------------------------------------- TCP

TEST(MalformedWire, TcpEveryTruncatedPrefixThrows) {
    util::Bytes raw = sample_segment().serialize(kSrc, kDst);
    for (std::size_t n = 0; n < raw.size(); ++n)
        EXPECT_THROW((void)TcpSegment::parse(prefix(raw, n), kSrc, kDst), util::WireError)
            << "prefix " << n;
}

TEST(MalformedWire, TcpRejectsBufferBeyond16BitLength) {
    // Regression for the wire-taint triage: the checksum pseudo-header
    // truncates the length to 16 bits, so a >64 KiB buffer must be rejected
    // up front instead of being checksummed under a wrapped length.
    util::Bytes big(0x10000);
    EXPECT_THROW((void)TcpSegment::parse(big, kSrc, kDst), util::WireError);
}

TEST(MalformedWire, TcpChecksumPatchHelperRoundTrips) {
    // Sanity for the helper itself: tamper a covered byte, re-patch, and the
    // segment must parse again (with the tampered value visible).
    util::Bytes raw = sample_segment().serialize(kSrc, kDst);
    raw[15] ^= 0x01;  // low byte of the window field
    EXPECT_THROW((void)TcpSegment::parse(raw, kSrc, kDst), util::WireError);
    patch_tcp_checksum(raw, kSrc, kDst);
    TcpSegment s = TcpSegment::parse(raw, kSrc, kDst);
    EXPECT_EQ(s.window, 4096 ^ 0x01);
}

TEST(MalformedWire, TcpRejectsDataOffsetBelowHeaderMinimum) {
    util::Bytes raw = sample_segment().serialize(kSrc, kDst);
    raw[12] = 0x40;  // doff = 4 words = 16 bytes < 20
    patch_tcp_checksum(raw, kSrc, kDst);
    EXPECT_THROW((void)TcpSegment::parse(raw, kSrc, kDst), util::WireError);
}

TEST(MalformedWire, TcpRejectsDataOffsetBeyondBuffer) {
    util::Bytes raw = sample_segment(8).serialize(kSrc, kDst);
    raw[12] = 0xf0;  // doff = 15 words = 60 bytes > 28-byte segment
    patch_tcp_checksum(raw, kSrc, kDst);
    EXPECT_THROW((void)TcpSegment::parse(raw, kSrc, kDst), util::WireError);
}

TEST(MalformedWire, TcpRejectsBadOptionLengths) {
    TcpSegment syn = sample_segment(0);
    syn.flags = {.syn = true};
    syn.mss = 1460;  // serializes as option kind=2 len=4 at offset 20
    util::Bytes good = syn.serialize(kSrc, kDst);
    ASSERT_EQ(good.size(), 24u);
    ASSERT_EQ(good[20], 2u);
    ASSERT_EQ(good[21], 4u);
    // len < 2 is structurally impossible, len 3 contradicts the MSS option,
    // len 11 runs past the option area.
    for (std::uint8_t len : {std::uint8_t{1}, std::uint8_t{3}, std::uint8_t{11}}) {
        util::Bytes raw = good;
        raw[21] = len;
        patch_tcp_checksum(raw, kSrc, kDst);
        EXPECT_THROW((void)TcpSegment::parse(raw, kSrc, kDst), util::WireError)
            << "len " << int(len);
    }
}

TEST(MalformedWire, TcpRejectsOptionKindWithoutLengthByte) {
    TcpSegment syn = sample_segment(0);
    syn.flags = {.syn = true};
    syn.mss = 1460;
    util::Bytes raw = syn.serialize(kSrc, kDst);
    // Rewrite the option area as NOP NOP NOP then a kind that needs a length
    // byte the buffer no longer has.
    raw[20] = raw[21] = raw[22] = 1;
    raw[23] = 2;
    patch_tcp_checksum(raw, kSrc, kDst);
    EXPECT_THROW((void)TcpSegment::parse(raw, kSrc, kDst), util::WireError);
}

} // namespace
} // namespace sttcp::net
