// Address types: the multicast bit and subnet logic that the tapping
// architectures depend on.
#include <gtest/gtest.h>

#include "net/addr.hpp"

namespace sttcp::net {
namespace {

TEST(MacAddress, LocalIsUnicast) {
    MacAddress m = MacAddress::local(42);
    EXPECT_TRUE(m.is_unicast());
    EXPECT_FALSE(m.is_multicast());
    EXPECT_FALSE(m.is_broadcast());
}

TEST(MacAddress, MulticastHasGroupBit) {
    MacAddress m = MacAddress::multicast(42);
    EXPECT_TRUE(m.is_multicast());
    EXPECT_FALSE(m.is_unicast());
    // The I/G bit is the least significant bit of the first octet.
    EXPECT_EQ(m.bytes()[0] & 0x01, 0x01);
}

TEST(MacAddress, BroadcastIsMulticast) {
    EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
    EXPECT_TRUE(MacAddress::broadcast().is_multicast());
}

TEST(MacAddress, DistinctIds) {
    EXPECT_NE(MacAddress::local(1), MacAddress::local(2));
    EXPECT_NE(MacAddress::local(1), MacAddress::multicast(1));
    EXPECT_EQ(MacAddress::local(7), MacAddress::local(7));
}

TEST(MacAddress, ToString) {
    MacAddress m({0x02, 0x00, 0xde, 0xad, 0xbe, 0xef});
    EXPECT_EQ(m.to_string(), "02:00:de:ad:be:ef");
}

TEST(Ipv4Address, OctetConstruction) {
    Ipv4Address a{10, 0, 0, 100};
    EXPECT_EQ(a.value(), 0x0a000064u);
    EXPECT_EQ(a.to_string(), "10.0.0.100");
}

TEST(Ipv4Address, Unspecified) {
    EXPECT_TRUE(Ipv4Address{}.is_unspecified());
    EXPECT_FALSE((Ipv4Address{0, 0, 0, 1}).is_unspecified());
}

TEST(Ipv4Address, SubnetMembership) {
    Ipv4Address net{10, 0, 0, 0};
    EXPECT_TRUE((Ipv4Address{10, 0, 0, 5}).in_subnet(net, 24));
    EXPECT_FALSE((Ipv4Address{10, 0, 1, 5}).in_subnet(net, 24));
    EXPECT_TRUE((Ipv4Address{10, 0, 1, 5}).in_subnet(net, 16));
    EXPECT_TRUE((Ipv4Address{192, 168, 1, 1}).in_subnet(net, 0));
    // /32 requires exact match.
    EXPECT_TRUE((Ipv4Address{10, 0, 0, 0}).in_subnet(net, 32));
    EXPECT_FALSE((Ipv4Address{10, 0, 0, 1}).in_subnet(net, 32));
}

TEST(Ipv4Address, Ordering) {
    EXPECT_LT((Ipv4Address{10, 0, 0, 1}), (Ipv4Address{10, 0, 0, 2}));
    EXPECT_EQ((Ipv4Address{10, 0, 0, 1}), (Ipv4Address{10, 0, 0, 1}));
}

TEST(AddressHashes, UsableInMaps) {
    std::hash<Ipv4Address> hip;
    std::hash<MacAddress> hmac;
    EXPECT_NE(hip(Ipv4Address{10, 0, 0, 1}), hip(Ipv4Address{10, 0, 0, 2}));
    EXPECT_NE(hmac(MacAddress::local(1)), hmac(MacAddress::local(2)));
    EXPECT_EQ(hip(Ipv4Address{1, 2, 3, 4}), hip(Ipv4Address{1, 2, 3, 4}));
}

} // namespace
} // namespace sttcp::net
