// PacketLogger: the in-memory logger appliance that masks omission+crash
// double failures (paper §3.2).
#include <gtest/gtest.h>

#include "net/ipv4.hpp"
#include "net/packet_logger.hpp"

namespace sttcp::net {
namespace {

const Ipv4Address kClient{10, 0, 0, 10};
const Ipv4Address kService{10, 0, 0, 100};

EthernetFrame tcp_frame(Ipv4Address src, Ipv4Address dst, std::uint16_t sport,
                        std::uint16_t dport, util::Seq32 seq, std::size_t len) {
    TcpSegment seg;
    seg.src_port = sport;
    seg.dst_port = dport;
    seg.seq = seq;
    seg.flags.ack = true;
    seg.payload.assign(len, 0x42);
    Ipv4Packet ip;
    ip.src = src;
    ip.dst = dst;
    ip.proto = IpProto::kTcp;
    ip.payload = seg.serialize(src, dst);
    EthernetFrame f;
    f.dst = MacAddress::local(2);
    f.src = MacAddress::local(1);
    f.payload = ip.serialize();
    return f;
}

struct LoggerFixture : ::testing::Test {
    sim::Simulation sim;
    Node node{"logger"};
};

TEST_F(LoggerFixture, FindsMatchingSequenceRanges) {
    PacketLogger logger{sim, node};
    logger.record(tcp_frame(kClient, kService, 5000, 80, util::Seq32{1000}, 100));
    logger.record(tcp_frame(kClient, kService, 5000, 80, util::Seq32{1100}, 100));
    logger.record(tcp_frame(kClient, kService, 5000, 80, util::Seq32{1200}, 100));

    // Exact middle segment.
    auto hits = logger.find_tcp_range(kClient, kService, 5000, 80, util::Seq32{1100},
                                      util::Seq32{1200});
    EXPECT_EQ(hits.size(), 1u);

    // Overlapping range catches two.
    hits = logger.find_tcp_range(kClient, kService, 5000, 80, util::Seq32{1050},
                                 util::Seq32{1150});
    EXPECT_EQ(hits.size(), 2u);

    // Disjoint range catches none.
    hits = logger.find_tcp_range(kClient, kService, 5000, 80, util::Seq32{2000},
                                 util::Seq32{3000});
    EXPECT_TRUE(hits.empty());
}

TEST_F(LoggerFixture, FiltersByFlow) {
    PacketLogger logger{sim, node};
    logger.record(tcp_frame(kClient, kService, 5000, 80, util::Seq32{1000}, 100));
    // Same range, different port / different direction.
    logger.record(tcp_frame(kClient, kService, 5001, 80, util::Seq32{1000}, 100));
    logger.record(tcp_frame(kService, kClient, 80, 5000, util::Seq32{1000}, 100));

    auto hits = logger.find_tcp_range(kClient, kService, 5000, 80, util::Seq32{1000},
                                      util::Seq32{1100});
    EXPECT_EQ(hits.size(), 1u);
}

TEST_F(LoggerFixture, IgnoresEmptyAndNonTcp) {
    PacketLogger logger{sim, node};
    logger.record(tcp_frame(kClient, kService, 5000, 80, util::Seq32{1000}, 0));  // pure ack
    EthernetFrame junk;
    junk.type = EtherType::kArp;
    junk.payload = {1, 2, 3};
    logger.record(junk);
    auto hits = logger.find_tcp_range(kClient, kService, 5000, 80, util::Seq32{0},
                                      util::Seq32{0xffff0000});
    EXPECT_TRUE(hits.empty());
    EXPECT_EQ(logger.frame_count(), 2u);
}

TEST_F(LoggerFixture, MatchesAcrossSequenceWrap) {
    PacketLogger logger{sim, node};
    logger.record(tcp_frame(kClient, kService, 5000, 80, util::Seq32{0xffffffb0u}, 100));
    // Segment spans the wrap: [0xffffffb0, 0x14).
    auto hits = logger.find_tcp_range(kClient, kService, 5000, 80, util::Seq32{0},
                                      util::Seq32{0x10});
    EXPECT_EQ(hits.size(), 1u);
}

TEST_F(LoggerFixture, EvictsByByteBudget) {
    PacketLogger::Config cfg;
    cfg.max_bytes = 2000;
    PacketLogger logger{sim, node, cfg};
    for (int i = 0; i < 10; ++i)
        logger.record(tcp_frame(kClient, kService, 5000, 80,
                                util::Seq32{static_cast<std::uint32_t>(i) * 500}, 400));
    EXPECT_LE(logger.stored_bytes(), cfg.max_bytes + 600);  // one frame of slack
    EXPECT_GT(logger.stats().frames_evicted, 0u);
    // Oldest frames are gone, newest remain.
    EXPECT_TRUE(logger
                    .find_tcp_range(kClient, kService, 5000, 80, util::Seq32{0},
                                    util::Seq32{400})
                    .empty());
    EXPECT_FALSE(logger
                     .find_tcp_range(kClient, kService, 5000, 80, util::Seq32{4500},
                                     util::Seq32{4900})
                     .empty());
}

TEST_F(LoggerFixture, EvictsByAge) {
    PacketLogger::Config cfg;
    cfg.max_age = sim::seconds{10};
    PacketLogger logger{sim, node, cfg};
    logger.record(tcp_frame(kClient, kService, 5000, 80, util::Seq32{0}, 100));
    sim.run_until(sim.now() + sim::seconds{60});
    logger.record(tcp_frame(kClient, kService, 5000, 80, util::Seq32{100}, 100));
    EXPECT_EQ(logger.frame_count(), 1u);
    EXPECT_EQ(logger.stats().frames_evicted, 1u);
}

TEST_F(LoggerFixture, DeadLoggerRecordsNothing) {
    PacketLogger logger{sim, node};
    node.power_off();
    logger.record(tcp_frame(kClient, kService, 5000, 80, util::Seq32{0}, 100));
    EXPECT_EQ(logger.frame_count(), 0u);
}

} // namespace
} // namespace sttcp::net
