// Link, NIC, hub, switch, power switch: the L2 machinery under the tap.
#include <gtest/gtest.h>

#include "net/hub.hpp"
#include "net/nic.hpp"
#include "net/power_switch.hpp"
#include "net/switch.hpp"
#include "sim/simulation.hpp"

namespace sttcp::net {
namespace {

EthernetFrame frame_to(MacAddress dst, MacAddress src, std::size_t payload = 64) {
    EthernetFrame f;
    f.dst = dst;
    f.src = src;
    f.payload.assign(payload, 0xaa);
    return f;
}

struct Sink final : FrameEndpoint {
    void handle_frame(const EthernetFrame& frame) override {
        frames.push_back(frame);
        if (on_frame) on_frame(frame);
    }
    [[nodiscard]] std::string endpoint_name() const override { return "sink"; }
    std::vector<EthernetFrame> frames;
    std::function<void(const EthernetFrame&)> on_frame;
};

// ------------------------------------------------------------------- Link

TEST(Link, DeliversAfterSerializationAndPropagation) {
    sim::Simulation sim;
    LinkConfig cfg;
    cfg.bandwidth_bps = 8e6;  // 1 byte/us
    cfg.propagation = sim::microseconds{100};
    Link link{sim, cfg};
    Sink a, b;
    link.attach(a, b);

    EthernetFrame f = frame_to(MacAddress::local(2), MacAddress::local(1), 100);
    std::size_t wire = f.wire_size();
    ASSERT_TRUE(link.send_from(a, f));

    sim.run_until(sim::TimePoint{} + sim::microseconds{static_cast<int>(wire) + 99});
    EXPECT_TRUE(b.frames.empty());  // not yet: tx time + propagation
    sim.run_until(sim::TimePoint{} + sim::microseconds{static_cast<int>(wire) + 101});
    ASSERT_EQ(b.frames.size(), 1u);
    EXPECT_EQ(link.stats().frames_delivered, 1u);
}

TEST(Link, BackToBackFramesQueueOnSerialization) {
    sim::Simulation sim;
    LinkConfig cfg;
    cfg.bandwidth_bps = 8e6;
    cfg.propagation = sim::Duration{0};
    Link link{sim, cfg};
    Sink a, b;
    link.attach(a, b);

    EthernetFrame f = frame_to(MacAddress::local(2), MacAddress::local(1), 980);
    std::size_t wire = f.wire_size();  // ~1018 bytes -> ~1018 us each
    link.send_from(a, f);
    link.send_from(a, f);
    sim.run_until(sim::TimePoint{} + sim::microseconds{static_cast<int>(wire) + 1});
    EXPECT_EQ(b.frames.size(), 1u);  // second still serializing
    sim.run_until(sim::TimePoint{} + sim::microseconds{2 * static_cast<int>(wire) + 1});
    EXPECT_EQ(b.frames.size(), 2u);
}

TEST(Link, DirectionsAreIndependent) {
    sim::Simulation sim;
    Link link{sim, LinkConfig{}};
    Sink a, b;
    link.attach(a, b);
    link.send_from(a, frame_to(MacAddress::local(2), MacAddress::local(1)));
    link.send_from(b, frame_to(MacAddress::local(1), MacAddress::local(2)));
    sim.run();
    EXPECT_EQ(a.frames.size(), 1u);
    EXPECT_EQ(b.frames.size(), 1u);
}

TEST(Link, QueueOverflowDropsTail) {
    sim::Simulation sim;
    LinkConfig cfg;
    cfg.bandwidth_bps = 1e6;  // slow
    cfg.queue_capacity_bytes = 3000;
    Link link{sim, cfg};
    Sink a, b;
    link.attach(a, b);

    int accepted = 0;
    for (int i = 0; i < 10; ++i) {
        if (link.send_from(a, frame_to(MacAddress::local(2), MacAddress::local(1), 950)))
            ++accepted;
    }
    EXPECT_LT(accepted, 10);
    EXPECT_GT(link.stats().frames_dropped_queue, 0u);
    sim.run();
    EXPECT_EQ(b.frames.size(), static_cast<std::size_t>(accepted));
}

TEST(Link, QueueReleasesAtSerializationEndNotArrival) {
    // Regression: queue bytes must be released when a frame finishes
    // serializing (tx_done), not when it arrives. With a long propagation
    // delay the two differ by a lot, and holding queue memory across the
    // flight time starves the transmit queue.
    sim::Simulation sim;
    LinkConfig cfg;
    cfg.bandwidth_bps = 8e6;  // 1 byte/us
    cfg.propagation = sim::seconds{1};
    cfg.queue_capacity_bytes = 2100;
    Link link{sim, cfg};
    Sink a, b;
    link.attach(a, b);

    // 962-byte payload -> exactly 1000 wire bytes.
    EthernetFrame f = frame_to(MacAddress::local(2), MacAddress::local(1), 962);
    ASSERT_EQ(f.wire_size(), 1000u);
    ASSERT_TRUE(link.send_from(a, f));
    ASSERT_TRUE(link.send_from(a, f));
    // Queue holds 2000 of 2100 bytes: a third frame does not fit yet.
    EXPECT_FALSE(link.send_from(a, f));
    EXPECT_EQ(link.stats().frames_dropped_queue, 1u);

    // Both frames finish serializing at 1000us and 2000us; they arrive a
    // full second later. Past tx_done the queue must be empty again.
    sim.run_until(sim::TimePoint{} + sim::microseconds{2001});
    EXPECT_EQ(b.frames.size(), 0u);  // still propagating
    EXPECT_TRUE(link.send_from(a, f));

    sim.run();
    EXPECT_EQ(b.frames.size(), 3u);
    EXPECT_EQ(link.stats().frames_delivered, 3u);
}

TEST(Link, LossProbabilityDropsStatistically) {
    sim::Simulation sim{7};
    LinkConfig cfg;
    cfg.loss_probability = 0.3;
    Link link{sim, cfg};
    Sink a, b;
    link.attach(a, b);
    for (int i = 0; i < 1000; ++i)
        link.send_from(a, frame_to(MacAddress::local(2), MacAddress::local(1)));
    sim.run();
    double delivered = static_cast<double>(b.frames.size()) / 1000.0;
    EXPECT_NEAR(delivered, 0.7, 0.05);
    EXPECT_EQ(link.stats().frames_dropped_loss + link.stats().frames_delivered, 1000u);
}

TEST(Link, PerDirectionLossOverride) {
    sim::Simulation sim{7};
    LinkConfig cfg;
    Link link{sim, cfg};
    Sink a, b;
    link.attach(a, b);
    link.set_loss_toward(b, 1.0);  // everything toward b dies
    for (int i = 0; i < 50; ++i) {
        link.send_from(a, frame_to(MacAddress::local(2), MacAddress::local(1)));
        link.send_from(b, frame_to(MacAddress::local(1), MacAddress::local(2)));
    }
    sim.run();
    EXPECT_EQ(b.frames.size(), 0u);
    EXPECT_EQ(a.frames.size(), 50u);
}

// -------------------------------------------------------------------- NIC

struct NicFixture : ::testing::Test {
    sim::Simulation sim;
    Node node{"host"};
    Nic nic{node, "eth0", MacAddress::local(1)};
    Link link{sim, LinkConfig{}};
    Sink peer;
    std::vector<EthernetFrame> received;

    NicFixture() {
        link.attach(peer, nic);
        nic.set_rx_handler([this](const EthernetFrame& f) { received.push_back(f); });
    }
    void deliver(MacAddress dst) {
        link.send_from(peer, frame_to(dst, MacAddress::local(9)));
        sim.run();
    }
};

TEST_F(NicFixture, AcceptsOwnUnicastAndBroadcast) {
    deliver(MacAddress::local(1));
    deliver(MacAddress::broadcast());
    EXPECT_EQ(received.size(), 2u);
}

TEST_F(NicFixture, FiltersForeignUnicast) {
    deliver(MacAddress::local(2));
    EXPECT_TRUE(received.empty());
    EXPECT_EQ(nic.stats().rx_filtered, 1u);
}

TEST_F(NicFixture, MulticastRequiresMembership) {
    deliver(MacAddress::multicast(5));
    EXPECT_TRUE(received.empty());
    nic.join_multicast(MacAddress::multicast(5));
    deliver(MacAddress::multicast(5));
    EXPECT_EQ(received.size(), 1u);
    nic.leave_multicast(MacAddress::multicast(5));
    deliver(MacAddress::multicast(5));
    EXPECT_EQ(received.size(), 1u);
}

TEST_F(NicFixture, PromiscuousAcceptsEverything) {
    nic.set_promiscuous(true);
    deliver(MacAddress::local(99));
    deliver(MacAddress::multicast(42));
    EXPECT_EQ(received.size(), 2u);
}

TEST_F(NicFixture, PoweredOffNicIsDeaf) {
    node.power_off();
    deliver(MacAddress::local(1));
    EXPECT_TRUE(received.empty());
    // And mute.
    nic.send(frame_to(MacAddress::local(9), nic.mac()));
    sim.run();
    EXPECT_TRUE(peer.frames.empty());
}

// -------------------------------------------------------------------- Hub

TEST(Hub, RepeatsToAllOtherPorts) {
    sim::Simulation sim;
    Hub hub{sim, "hub"};
    Sink a, b, c;
    hub.connect(a, LinkConfig{});
    hub.connect(b, LinkConfig{});
    hub.connect(c, LinkConfig{});

    a.link()->send_from(a, frame_to(MacAddress::local(2), MacAddress::local(1)));
    sim.run();
    EXPECT_TRUE(a.frames.empty());  // never back to the sender
    EXPECT_EQ(b.frames.size(), 1u);
    EXPECT_EQ(c.frames.size(), 1u);
    EXPECT_EQ(hub.stats().frames_repeated, 1u);
}

// ----------------------------------------------------------------- Switch

struct SwitchFixture : ::testing::Test {
    sim::Simulation sim;
    Switch sw{sim, "sw"};
    Sink a, b, c;
    std::size_t pa, pb, pc;

    SwitchFixture() {
        pa = sw.connect(a, LinkConfig{});
        pb = sw.connect(b, LinkConfig{});
        pc = sw.connect(c, LinkConfig{});
    }
    void send(Sink& from, MacAddress dst, MacAddress src) {
        from.link()->send_from(from, frame_to(dst, src));
        sim.run();
    }
};

TEST_F(SwitchFixture, FloodsUnknownUnicastThenLearns) {
    // b's MAC is unknown: flood.
    send(a, MacAddress::local(2), MacAddress::local(1));
    EXPECT_EQ(b.frames.size(), 1u);
    EXPECT_EQ(c.frames.size(), 1u);
    EXPECT_EQ(sw.learned_port(MacAddress::local(1)), pa);

    // b replies; a's MAC is already learned so this is unicast (c sees
    // nothing new), and the switch learns b for the next a->b send.
    send(b, MacAddress::local(1), MacAddress::local(2));
    EXPECT_EQ(a.frames.size(), 1u);
    send(a, MacAddress::local(2), MacAddress::local(1));
    EXPECT_EQ(b.frames.size(), 2u);
    EXPECT_EQ(c.frames.size(), 1u);  // only the initial flood
    EXPECT_GT(sw.stats().unicast_forwarded, 0u);
}

TEST_F(SwitchFixture, FloodsBroadcastAndMulticast) {
    send(a, MacAddress::broadcast(), MacAddress::local(1));
    send(a, MacAddress::multicast(9), MacAddress::local(1));
    EXPECT_EQ(b.frames.size(), 2u);
    EXPECT_EQ(c.frames.size(), 2u);
    EXPECT_EQ(sw.stats().flooded, 2u);
}

TEST_F(SwitchFixture, MirrorCopiesBothDirections) {
    // Learn MACs first.
    send(a, MacAddress::broadcast(), MacAddress::local(1));
    send(b, MacAddress::broadcast(), MacAddress::local(2));
    c.frames.clear();

    sw.set_mirror(pa, pc);  // observe a's port, tap at c
    send(b, MacAddress::local(1), MacAddress::local(2));  // toward a: egress at pa
    EXPECT_EQ(c.frames.size(), 1u);
    send(a, MacAddress::local(2), MacAddress::local(1));  // from a: ingress at pa
    EXPECT_EQ(c.frames.size(), 2u);
    EXPECT_EQ(sw.stats().mirrored, 2u);

    sw.clear_mirror();
    send(a, MacAddress::local(2), MacAddress::local(1));
    EXPECT_EQ(c.frames.size(), 2u);
}

TEST_F(SwitchFixture, MacTableIsCappedAgainstForgedSourceSweep) {
    // A peer cycling forged source MACs must not grow the learning table
    // without bound (classic CAM-table exhaustion). Past the cap the switch
    // degrades to flooding instead of allocating.
    for (std::uint32_t i = 1; i <= Switch::kMacTableCap + 50; ++i)
        send(a, MacAddress::broadcast(), MacAddress::local(i));
    EXPECT_EQ(sw.mac_table_size(), Switch::kMacTableCap);

    // An already-learned address still refreshes its port when the table is
    // full — only NEW entries are refused.
    ASSERT_EQ(sw.learned_port(MacAddress::local(1)), pa);
    send(b, MacAddress::broadcast(), MacAddress::local(1));
    EXPECT_EQ(sw.learned_port(MacAddress::local(1)), pb);
    EXPECT_EQ(sw.mac_table_size(), Switch::kMacTableCap);
}

// ------------------------------------------------------------ PowerSwitch

TEST(PowerSwitch, FencesAfterLatencyAndConfirms) {
    sim::Simulation sim;
    Node victim{"victim"};
    PowerSwitch psw{sim, sim::milliseconds{5}};
    psw.manage(victim);

    bool confirmed = false;
    psw.power_off("victim", [&] { confirmed = true; });
    sim.run_until(sim::TimePoint{} + sim::milliseconds{4});
    EXPECT_TRUE(victim.powered());
    EXPECT_FALSE(confirmed);
    sim.run_until(sim::TimePoint{} + sim::milliseconds{6});
    EXPECT_FALSE(victim.powered());
    EXPECT_TRUE(confirmed);
    EXPECT_EQ(psw.stats().nodes_killed, 1u);
}

TEST(PowerSwitch, FencingDeadNodeStillConfirms) {
    sim::Simulation sim;
    Node victim{"victim"};
    victim.power_off();
    PowerSwitch psw{sim, sim::milliseconds{5}};
    psw.manage(victim);
    bool confirmed = false;
    psw.power_off("victim", [&] { confirmed = true; });
    sim.run();
    EXPECT_TRUE(confirmed);
    EXPECT_EQ(psw.stats().nodes_killed, 0u);  // was already dead
    EXPECT_EQ(psw.stats().commands, 1u);
}

TEST(PowerSwitch, UnknownNodeConfirmsWithoutAction) {
    sim::Simulation sim;
    PowerSwitch psw{sim, sim::milliseconds{1}};
    bool confirmed = false;
    psw.power_off("ghost", [&] { confirmed = true; });
    sim.run();
    EXPECT_TRUE(confirmed);
}

TEST(Node, PowerOffHooksFireOnce) {
    Node n{"x"};
    int fired = 0;
    n.on_power_off([&] { ++fired; });
    n.power_off();
    n.power_off();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(n.powered());
    n.power_on();
    EXPECT_TRUE(n.powered());
}

} // namespace
} // namespace sttcp::net
