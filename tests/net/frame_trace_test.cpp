// FrameTrace: the wire-level debugging lens.
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "net/frame_trace.hpp"

namespace sttcp {
namespace {

using testing::TwoHostLan;

TEST(FrameTrace, DescribesArp) {
    net::ArpMessage arp;
    arp.op = net::ArpOp::kRequest;
    arp.sender_ip = net::Ipv4Address{10, 0, 0, 1};
    arp.target_ip = net::Ipv4Address{10, 0, 0, 100};
    net::EthernetFrame f;
    f.src = net::MacAddress::local(1);
    f.dst = net::MacAddress::broadcast();
    f.type = net::EtherType::kArp;
    f.payload = arp.serialize();
    std::string line = net::FrameTrace::describe(f);
    EXPECT_NE(line.find("ARP who-has 10.0.0.100 tell 10.0.0.1"), std::string::npos) << line;
}

TEST(FrameTrace, DescribesTcpAndUdp) {
    net::TcpSegment seg;
    seg.src_port = 49152;
    seg.dst_port = 8000;
    seg.flags.syn = true;
    net::Ipv4Packet ip;
    ip.src = net::Ipv4Address{10, 0, 0, 10};
    ip.dst = net::Ipv4Address{10, 0, 0, 100};
    ip.proto = net::IpProto::kTcp;
    ip.payload = seg.serialize(ip.src, ip.dst);
    net::EthernetFrame f;
    f.type = net::EtherType::kIpv4;
    f.payload = ip.serialize();
    std::string line = net::FrameTrace::describe(f);
    EXPECT_NE(line.find("10.0.0.10:49152 > 10.0.0.100:8000"), std::string::npos) << line;
    EXPECT_NE(line.find("SYN"), std::string::npos) << line;

    net::UdpDatagram dgram;
    dgram.src_port = 5700;
    dgram.dst_port = 5700;
    dgram.payload = {1, 2, 3};
    ip.proto = net::IpProto::kUdp;
    ip.payload = dgram.serialize(ip.src, ip.dst);
    f.payload = ip.serialize();
    line = net::FrameTrace::describe(f);
    EXPECT_NE(line.find("UDP len=3"), std::string::npos) << line;
}

TEST(FrameTrace, MalformedFramesAreReportedNotThrown) {
    net::EthernetFrame f;
    f.type = net::EtherType::kIpv4;
    f.payload = {1, 2, 3};
    std::string line = net::FrameTrace::describe(f);
    EXPECT_NE(line.find("malformed"), std::string::npos) << line;
}

TEST(FrameTrace, CapturesLiveTraffic) {
    TwoHostLan lan;
    net::FrameTrace trace{lan.sim};
    std::vector<std::string> lines;
    trace.capture_into(lines);
    // Observe the server-side link of the hub.
    trace.attach(*lan.server_nic.link(), "server-link");

    auto listener = lan.server.tcp_listen(80);
    auto conn = lan.client.tcp_connect(lan.server_ip, 80);
    lan.sim.run_for(sim::seconds{1});

    ASSERT_GT(lines.size(), 2u);
    EXPECT_EQ(trace.frames_traced(), lines.size());
    // The handshake is visible: an ARP exchange, then SYN and the reply.
    bool saw_arp = false, saw_syn = false;
    for (const auto& line : lines) {
        if (line.find("ARP") != std::string::npos) saw_arp = true;
        if (line.find("SYN") != std::string::npos) saw_syn = true;
        EXPECT_NE(line.find("server-link"), std::string::npos);
    }
    EXPECT_TRUE(saw_arp);
    EXPECT_TRUE(saw_syn);
}

} // namespace
} // namespace sttcp
