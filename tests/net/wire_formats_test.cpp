// Packet formats: serialize/parse round trips, checksum verification, and
// rejection of corrupted or truncated input for every protocol layer.
#include <gtest/gtest.h>

#include "net/arp.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/tcp_wire.hpp"
#include "net/udp.hpp"

namespace sttcp::net {
namespace {

const Ipv4Address kSrc{10, 0, 0, 1};
const Ipv4Address kDst{10, 0, 0, 2};

util::Bytes pattern(std::size_t n) {
    util::Bytes b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 31 + 7);
    return b;
}

// ---------------------------------------------------------------- Ethernet

TEST(EthernetFrame, RoundTrip) {
    EthernetFrame f;
    f.dst = MacAddress::local(1);
    f.src = MacAddress::local(2);
    f.type = EtherType::kArp;
    f.payload = pattern(100);
    EthernetFrame g = EthernetFrame::parse(f.serialize());
    EXPECT_EQ(g.dst, f.dst);
    EXPECT_EQ(g.src, f.src);
    EXPECT_EQ(g.type, f.type);
    EXPECT_EQ(g.payload, f.payload);
}

TEST(EthernetFrame, WireSizeIncludesPaddingAndOverhead) {
    EthernetFrame f;
    f.payload = pattern(10);  // below 46-byte minimum
    EXPECT_EQ(f.wire_size(), 14u + 46 + 4 + 20);
    f.payload = pattern(1000);
    EXPECT_EQ(f.wire_size(), 14u + 1000 + 4 + 20);
}

TEST(EthernetFrame, TruncatedThrows) {
    util::Bytes raw{1, 2, 3};
    EXPECT_THROW((void)EthernetFrame::parse(raw), util::WireError);
}

// --------------------------------------------------------------------- ARP

TEST(ArpMessage, RoundTrip) {
    ArpMessage m;
    m.op = ArpOp::kReply;
    m.sender_mac = MacAddress::local(3);
    m.sender_ip = kSrc;
    m.target_mac = MacAddress::local(4);
    m.target_ip = kDst;
    ArpMessage n = ArpMessage::parse(m.serialize());
    EXPECT_EQ(n.op, ArpOp::kReply);
    EXPECT_EQ(n.sender_mac, m.sender_mac);
    EXPECT_EQ(n.sender_ip, m.sender_ip);
    EXPECT_EQ(n.target_mac, m.target_mac);
    EXPECT_EQ(n.target_ip, m.target_ip);
}

TEST(ArpMessage, RejectsWrongHardwareType) {
    ArpMessage m;
    util::Bytes raw = m.serialize();
    raw[1] = 9;  // HTYPE
    EXPECT_THROW((void)ArpMessage::parse(raw), util::WireError);
}

// -------------------------------------------------------------------- IPv4

TEST(Ipv4Packet, RoundTrip) {
    Ipv4Packet p;
    p.src = kSrc;
    p.dst = kDst;
    p.proto = IpProto::kUdp;
    p.ttl = 17;
    p.identification = 0xbeef;
    p.payload = pattern(64);
    Ipv4Packet q = Ipv4Packet::parse(p.serialize());
    EXPECT_EQ(q.src, p.src);
    EXPECT_EQ(q.dst, p.dst);
    EXPECT_EQ(q.proto, p.proto);
    EXPECT_EQ(q.ttl, p.ttl);
    EXPECT_EQ(q.identification, p.identification);
    EXPECT_EQ(q.payload, p.payload);
}

TEST(Ipv4Packet, HeaderCorruptionDetected) {
    Ipv4Packet p;
    p.src = kSrc;
    p.dst = kDst;
    p.payload = pattern(20);
    util::Bytes raw = p.serialize();
    // Flip one bit in every header byte except the checksum itself and
    // verify the parser rejects it (or produces a mismatching header).
    for (std::size_t i = 0; i < Ipv4Packet::kHeaderSize; ++i) {
        if (i == 10 || i == 11) continue;  // the checksum field
        util::Bytes bad = raw;
        bad[i] ^= 0x01;
        EXPECT_THROW((void)Ipv4Packet::parse(bad), util::WireError) << "byte " << i;
    }
}

TEST(Ipv4Packet, RejectsFragments) {
    Ipv4Packet p;
    p.src = kSrc;
    p.dst = kDst;
    p.payload = pattern(8);
    util::Bytes raw = p.serialize();
    raw[6] = 0x20;  // MF flag
    // Fix the checksum so only the fragment check fires.
    raw[10] = raw[11] = 0;
    util::InternetChecksum sum;
    sum.add(util::ByteView{raw.data(), 20});
    std::uint16_t c = sum.finish();
    raw[10] = static_cast<std::uint8_t>(c >> 8);
    raw[11] = static_cast<std::uint8_t>(c);
    EXPECT_THROW((void)Ipv4Packet::parse(raw), util::WireError);
}

TEST(Ipv4Packet, RejectsBadLength) {
    Ipv4Packet p;
    p.src = kSrc;
    p.dst = kDst;
    p.payload = pattern(8);
    util::Bytes raw = p.serialize();
    raw.resize(20);  // truncate the payload below the declared total length
    EXPECT_THROW((void)Ipv4Packet::parse(raw), util::WireError);
}

// --------------------------------------------------------------------- UDP

TEST(UdpDatagram, RoundTrip) {
    UdpDatagram d;
    d.src_port = 5700;
    d.dst_port = 5701;
    d.payload = pattern(33);
    UdpDatagram e = UdpDatagram::parse(d.serialize(kSrc, kDst), kSrc, kDst);
    EXPECT_EQ(e.src_port, d.src_port);
    EXPECT_EQ(e.dst_port, d.dst_port);
    EXPECT_EQ(e.payload, d.payload);
}

TEST(UdpDatagram, ChecksumCoversPseudoHeader) {
    UdpDatagram d;
    d.src_port = 1;
    d.dst_port = 2;
    d.payload = pattern(16);
    util::Bytes raw = d.serialize(kSrc, kDst);
    // Same bytes but claimed from a different source IP must fail.
    EXPECT_THROW((void)UdpDatagram::parse(raw, Ipv4Address{10, 0, 0, 9}, kDst),
                 util::WireError);
    // Payload corruption must fail.
    raw[raw.size() - 1] ^= 0xff;
    EXPECT_THROW((void)UdpDatagram::parse(raw, kSrc, kDst), util::WireError);
}

// --------------------------------------------------------------------- TCP

class TcpSegmentRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcpSegmentRoundTrip, PreservesEverything) {
    TcpSegment s;
    s.src_port = 49152;
    s.dst_port = 8000;
    s.seq = util::Seq32{0xfffffff0u};  // near wrap
    s.ack = util::Seq32{77};
    s.flags = {.fin = true, .syn = false, .rst = false, .psh = true, .ack = true, .urg = false};
    s.window = 31234;
    s.payload = pattern(GetParam());
    TcpSegment t = TcpSegment::parse(s.serialize(kSrc, kDst), kSrc, kDst);
    EXPECT_EQ(t.src_port, s.src_port);
    EXPECT_EQ(t.dst_port, s.dst_port);
    EXPECT_EQ(t.seq, s.seq);
    EXPECT_EQ(t.ack, s.ack);
    EXPECT_EQ(t.flags, s.flags);
    EXPECT_EQ(t.window, s.window);
    EXPECT_EQ(t.payload, s.payload);
    EXPECT_FALSE(t.mss.has_value());
    EXPECT_FALSE(t.timestamps.has_value());
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, TcpSegmentRoundTrip,
                         ::testing::Values(0, 1, 150, 1460));

TEST(TcpSegment, MssOptionRoundTrip) {
    TcpSegment s;
    s.flags.syn = true;
    s.mss = 1460;
    TcpSegment t = TcpSegment::parse(s.serialize(kSrc, kDst), kSrc, kDst);
    ASSERT_TRUE(t.mss.has_value());
    EXPECT_EQ(*t.mss, 1460);
    EXPECT_EQ(t.header_size(), 24u);
}

TEST(TcpSegment, TimestampOptionRoundTrip) {
    TcpSegment s;
    s.flags.ack = true;
    s.timestamps = TcpTimestamps{123456, 654321};
    TcpSegment t = TcpSegment::parse(s.serialize(kSrc, kDst), kSrc, kDst);
    ASSERT_TRUE(t.timestamps.has_value());
    EXPECT_EQ(t.timestamps->value, 123456u);
    EXPECT_EQ(t.timestamps->echo_reply, 654321u);
    EXPECT_EQ(t.header_size(), 32u);
}

TEST(TcpSegment, SeqLenCountsSynAndFin) {
    TcpSegment s;
    EXPECT_EQ(s.seq_len(), 0u);
    s.flags.syn = true;
    EXPECT_EQ(s.seq_len(), 1u);
    s.flags.fin = true;
    s.payload = pattern(10);
    EXPECT_EQ(s.seq_len(), 12u);
}

TEST(TcpSegment, ChecksumDetectsCorruptionAnywhere) {
    TcpSegment s;
    s.src_port = 1;
    s.dst_port = 2;
    s.flags.ack = true;
    s.payload = pattern(32);
    util::Bytes raw = s.serialize(kSrc, kDst);
    for (std::size_t i = 0; i < raw.size(); ++i) {
        util::Bytes bad = raw;
        bad[i] ^= 0x10;
        EXPECT_THROW((void)TcpSegment::parse(bad, kSrc, kDst), util::WireError)
            << "byte " << i;
    }
}

TEST(TcpSegment, ChecksumCoversPseudoHeader) {
    TcpSegment s;
    s.flags.ack = true;
    util::Bytes raw = s.serialize(kSrc, kDst);
    EXPECT_THROW((void)TcpSegment::parse(raw, kSrc, Ipv4Address{9, 9, 9, 9}),
                 util::WireError);
}

TEST(TcpSegment, RejectsBadDataOffset) {
    TcpSegment s;
    s.flags.ack = true;
    util::Bytes raw = s.serialize(kSrc, kDst);
    raw[12] = 0xf0;  // data offset 60 > segment size
    EXPECT_THROW((void)TcpSegment::parse(raw, kSrc, kDst), util::WireError);
}

TEST(TcpSegment, SummaryIsReadable) {
    TcpSegment s;
    s.src_port = 1234;
    s.dst_port = 80;
    s.flags.syn = true;
    s.seq = util::Seq32{42};
    EXPECT_NE(s.summary().find("SYN"), std::string::npos);
    EXPECT_NE(s.summary().find("1234 > 80"), std::string::npos);
}

} // namespace
} // namespace sttcp::net
