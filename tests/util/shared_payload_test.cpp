// SharedPayload and BufferPool: the zero-copy buffer machinery under the
// frame datapath.
#include <gtest/gtest.h>

#include "util/buffer_pool.hpp"
#include "util/shared_payload.hpp"

namespace sttcp::util {
namespace {

Bytes pattern(std::size_t n) {
    Bytes b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i & 0xff);
    return b;
}

// ---------------------------------------------------------- SharedPayload

TEST(SharedPayload, DefaultIsEmpty) {
    SharedPayload p;
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.size(), 0u);
    EXPECT_EQ(p.use_count(), 0u);
    EXPECT_TRUE(p.view().empty());
}

TEST(SharedPayload, AdoptsVectorAndReadsBack) {
    SharedPayload p{pattern(100)};
    EXPECT_EQ(p.size(), 100u);
    EXPECT_EQ(p.use_count(), 1u);
    ByteView v = p;
    ASSERT_EQ(v.size(), 100u);
    EXPECT_EQ(v[0], 0u);
    EXPECT_EQ(v[99], 99u);
}

TEST(SharedPayload, CopySharesOneAllocation) {
    SharedPayload a{pattern(64)};
    SharedPayload b = a;
    SharedPayload c = b;
    EXPECT_EQ(a.use_count(), 3u);
    EXPECT_EQ(a.data(), b.data());
    EXPECT_EQ(b.data(), c.data());
    c.reset();
    EXPECT_EQ(a.use_count(), 2u);
    EXPECT_EQ(c.use_count(), 0u);
}

TEST(SharedPayload, MoveTransfersWithoutRefcountChange) {
    SharedPayload a{pattern(32)};
    const std::uint8_t* ptr = a.data();
    SharedPayload b = std::move(a);
    EXPECT_EQ(b.use_count(), 1u);
    EXPECT_EQ(b.data(), ptr);
    EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): moved-from is empty
}

TEST(SharedPayload, CopyOfMakesAnIndependentBuffer) {
    Bytes src = pattern(16);
    SharedPayload p = SharedPayload::copy_of(ByteView{src});
    src[0] = 0xff;
    EXPECT_EQ(p.view()[0], 0u);
}

TEST(SharedPayload, MutableBytesCopiesOnlyWhenShared) {
    SharedPayload a{pattern(8)};
    const std::uint8_t* before = a.data();
    a.mutable_bytes()[0] = 0xee;  // sole owner: in place
    EXPECT_EQ(a.data(), before);

    SharedPayload b = a;
    b.mutable_bytes()[0] = 0x11;  // shared: copy-on-write
    EXPECT_NE(a.data(), b.data());
    EXPECT_EQ(a.view()[0], 0xee);
    EXPECT_EQ(b.view()[0], 0x11);
    EXPECT_EQ(a.use_count(), 1u);
    EXPECT_EQ(b.use_count(), 1u);
}

TEST(SharedPayload, AssignAndInitializerList) {
    SharedPayload p;
    p.assign(5, 0xab);
    EXPECT_EQ(p.size(), 5u);
    EXPECT_EQ(p.view()[4], 0xab);

    Bytes src = pattern(7);
    p.assign(src.begin(), src.end());
    EXPECT_EQ(p, src);

    SharedPayload q{1, 2, 3};
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(q.view()[2], 3u);
}

TEST(SharedPayload, ContentEquality) {
    SharedPayload a{pattern(20)};
    SharedPayload b = SharedPayload::copy_of(a.view());
    EXPECT_EQ(a, b);                 // same contents, different buffers
    EXPECT_EQ(a, pattern(20));       // against a raw vector
    SharedPayload c{pattern(21)};
    EXPECT_FALSE(a == c);
}

TEST(SharedPayload, IterationMatchesView) {
    SharedPayload p{pattern(10)};
    std::size_t i = 0;
    for (std::uint8_t byte : p) EXPECT_EQ(byte, i++);
    EXPECT_EQ(i, 10u);
}

// ------------------------------------------------------------- BufferPool

TEST(BufferPool, RecyclesCapacity) {
    BufferPool& pool = BufferPool::instance();
    pool.drain();

    Bytes b = pool.take(4096);
    EXPECT_GE(b.capacity(), 4096u);
    b.assign(100, 0x55);
    const std::uint8_t* ptr = b.data();
    pool.give(std::move(b));
    EXPECT_EQ(pool.free_count(), 1u);

    Bytes c = pool.take(64);
    EXPECT_EQ(c.data(), ptr);  // same allocation came back
    EXPECT_TRUE(c.empty());    // but cleared
    EXPECT_EQ(pool.free_count(), 0u);
    pool.give(std::move(c));
}

TEST(BufferPool, IgnoresUselessBuffers) {
    BufferPool& pool = BufferPool::instance();
    pool.drain();
    pool.give(Bytes{});  // no capacity: nothing to recycle
    EXPECT_EQ(pool.free_count(), 0u);

    Bytes huge;
    huge.reserve(BufferPool::kMaxCapacity + 1);
    pool.give(std::move(huge));  // oversized: let it die
    EXPECT_EQ(pool.free_count(), 0u);
}

TEST(BufferPool, FreeListIsBounded) {
    BufferPool& pool = BufferPool::instance();
    pool.drain();
    for (std::size_t i = 0; i < BufferPool::kMaxFree + 10; ++i) {
        Bytes b;
        b.reserve(64);
        pool.give(std::move(b));
    }
    EXPECT_EQ(pool.free_count(), BufferPool::kMaxFree);
    pool.drain();
    EXPECT_EQ(pool.free_count(), 0u);
}

TEST(BufferPool, PayloadReleaseFeedsThePool) {
    BufferPool& pool = BufferPool::instance();
    pool.drain();
    {
        SharedPayload p{pattern(256)};
        SharedPayload q = p;  // refcount 2: release of q must not recycle yet
        q.reset();
        EXPECT_EQ(pool.free_count(), 0u);
    }
    // Last reference dropped: the payload's vector is back in the pool.
    EXPECT_EQ(pool.free_count(), 1u);
    pool.drain();
}

} // namespace
} // namespace sttcp::util
