// IntervalSet: out-of-order range tracking behind TCP reassembly and the
// backup's gap detection.
#include <gtest/gtest.h>

#include <set>

#include "sim/random.hpp"
#include "util/interval_set.hpp"

namespace sttcp::util {
namespace {

TEST(IntervalSet, InsertAndContains) {
    IntervalSet s;
    s.insert(10, 20);
    EXPECT_TRUE(s.contains(10));
    EXPECT_TRUE(s.contains(19));
    EXPECT_FALSE(s.contains(20));
    EXPECT_FALSE(s.contains(9));
    EXPECT_EQ(s.count(), 1u);
}

TEST(IntervalSet, EmptyInsertIgnored) {
    IntervalSet s;
    s.insert(5, 5);
    s.insert(7, 3);
    EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, CoalescesOverlapping) {
    IntervalSet s;
    s.insert(10, 20);
    s.insert(15, 30);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.intervals()[0], (IntervalSet::Interval{10, 30}));
}

TEST(IntervalSet, CoalescesAdjacent) {
    IntervalSet s;
    s.insert(10, 20);
    s.insert(20, 25);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.intervals()[0], (IntervalSet::Interval{10, 25}));
}

TEST(IntervalSet, KeepsDisjoint) {
    IntervalSet s;
    s.insert(10, 20);
    s.insert(30, 40);
    EXPECT_EQ(s.count(), 2u);
    // Bridging insert merges everything.
    s.insert(18, 32);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.intervals()[0], (IntervalSet::Interval{10, 40}));
}

TEST(IntervalSet, ContiguousFrom) {
    IntervalSet s;
    s.insert(10, 20);
    s.insert(25, 30);
    EXPECT_EQ(s.contiguous_from(10), 10u);
    EXPECT_EQ(s.contiguous_from(15), 5u);
    EXPECT_EQ(s.contiguous_from(20), 0u);
    EXPECT_EQ(s.contiguous_from(25), 5u);
    EXPECT_EQ(s.contiguous_from(5), 0u);
}

TEST(IntervalSet, EraseBelow) {
    IntervalSet s;
    s.insert(10, 20);
    s.insert(30, 40);
    s.erase_below(15);
    ASSERT_EQ(s.count(), 2u);
    EXPECT_EQ(s.intervals()[0], (IntervalSet::Interval{15, 20}));
    s.erase_below(25);
    ASSERT_EQ(s.count(), 1u);
    EXPECT_EQ(s.intervals()[0], (IntervalSet::Interval{30, 40}));
    s.erase_below(100);
    EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, Gaps) {
    IntervalSet s;
    s.insert(10, 20);
    s.insert(30, 40);
    auto gaps = s.gaps(0, 50);
    ASSERT_EQ(gaps.size(), 3u);
    EXPECT_EQ(gaps[0], (IntervalSet::Interval{0, 10}));
    EXPECT_EQ(gaps[1], (IntervalSet::Interval{20, 30}));
    EXPECT_EQ(gaps[2], (IntervalSet::Interval{40, 50}));

    auto inner = s.gaps(12, 38);
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_EQ(inner[0], (IntervalSet::Interval{20, 30}));

    EXPECT_TRUE(s.gaps(10, 20).empty());
}

TEST(IntervalSet, GapsOnEmptySet) {
    IntervalSet s;
    auto gaps = s.gaps(5, 15);
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0], (IntervalSet::Interval{5, 15}));
}

// Property test against a per-offset reference model.
class IntervalSetModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetModelTest, MatchesSetModel) {
    sim::Random rng(GetParam());
    IntervalSet s;
    std::set<std::uint64_t> model;  // set of covered offsets in [0, 256)

    for (int step = 0; step < 500; ++step) {
        std::uint64_t begin = rng.uniform(256);
        std::uint64_t end = begin + rng.uniform(32);
        s.insert(begin, end);
        for (std::uint64_t o = begin; o < end; ++o) model.insert(o);

        if (step % 37 == 36) {
            std::uint64_t cut = rng.uniform(256);
            s.erase_below(cut);
            model.erase(model.begin(), model.lower_bound(cut));
        }

        // Spot-check membership and contiguity at random probes.
        for (int probe = 0; probe < 8; ++probe) {
            std::uint64_t o = rng.uniform(260);
            ASSERT_EQ(s.contains(o), model.count(o) > 0) << "offset " << o;
            std::uint64_t run = 0;
            while (model.count(o + run)) ++run;
            ASSERT_EQ(s.contiguous_from(o), run) << "offset " << o;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetModelTest, ::testing::Values(11, 22, 33));

} // namespace
} // namespace sttcp::util
