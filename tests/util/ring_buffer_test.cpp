// RingBuffer: the byte store under the TCP send/receive buffers and the
// ST-TCP second receive buffer.
#include <gtest/gtest.h>

#include <deque>

#include "sim/random.hpp"
#include "util/ring_buffer.hpp"
#include "util/wire.hpp"

namespace sttcp::util {
namespace {

Bytes seq_bytes(std::size_t n, std::uint8_t start = 0) {
    Bytes b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(start + i);
    return b;
}

TEST(RingBuffer, WriteReadBasic) {
    RingBuffer ring(16);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.free_space(), 16u);

    Bytes in = seq_bytes(10);
    EXPECT_EQ(ring.write(in), 10u);
    EXPECT_EQ(ring.size(), 10u);

    std::uint8_t out[10];
    EXPECT_EQ(ring.read(out), 10u);
    EXPECT_TRUE(std::equal(out, out + 10, in.begin()));
    EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, WriteIsBoundedByCapacity) {
    RingBuffer ring(8);
    Bytes in = seq_bytes(12);
    EXPECT_EQ(ring.write(in), 8u);
    EXPECT_TRUE(ring.full());
    EXPECT_EQ(ring.write(in), 0u);
}

TEST(RingBuffer, WrapAround) {
    RingBuffer ring(8);
    ring.write(seq_bytes(6));
    ring.consume(4);  // head now at 4
    EXPECT_EQ(ring.write(seq_bytes(6, 100)), 6u);  // wraps physically
    std::uint8_t out[8];
    EXPECT_EQ(ring.read(out), 8u);
    EXPECT_EQ(out[0], 4);    // leftover from first write
    EXPECT_EQ(out[1], 5);
    EXPECT_EQ(out[2], 100);  // second write
    EXPECT_EQ(out[7], 105);
}

TEST(RingBuffer, PeekDoesNotConsume) {
    RingBuffer ring(16);
    ring.write(seq_bytes(8));
    std::uint8_t out[4];
    EXPECT_EQ(ring.peek(out), 4u);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(ring.size(), 8u);
    EXPECT_EQ(ring.peek(out, 4), 4u);
    EXPECT_EQ(out[0], 4);
    EXPECT_EQ(ring.peek(out, 8), 0u);  // offset beyond size
}

TEST(RingBuffer, ConsumeClamps) {
    RingBuffer ring(8);
    ring.write(seq_bytes(5));
    EXPECT_EQ(ring.consume(100), 5u);
    EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, WriteAtAndCommit) {
    RingBuffer ring(16);
    // Place bytes out of order: [4,8) first, then [0,4), then commit 8.
    Bytes hi = seq_bytes(4, 4);
    Bytes lo = seq_bytes(4, 0);
    ring.write_at(4, hi);
    EXPECT_EQ(ring.size(), 0u);  // nothing readable yet
    ring.write_at(0, lo);
    ring.commit(8);
    std::uint8_t out[8];
    EXPECT_EQ(ring.read(out), 8u);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
}

TEST(RingBuffer, WriteAtWrapsPhysically) {
    RingBuffer ring(8);
    ring.write(seq_bytes(8));
    ring.consume(6);  // head at 6, size 2
    ring.write_at(2, seq_bytes(4, 50));  // occupies physical 0..3 after wrap
    ring.commit(6);
    std::uint8_t out[6];
    EXPECT_EQ(ring.read(out), 6u);
    EXPECT_EQ(out[0], 6);
    EXPECT_EQ(out[1], 7);
    EXPECT_EQ(out[2], 50);
    EXPECT_EQ(out[5], 53);
}

TEST(RingBuffer, Clear) {
    RingBuffer ring(8);
    ring.write(seq_bytes(5));
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.free_space(), 8u);
}

// Property test: a long random schedule of writes/reads behaves exactly
// like a std::deque reference model.
class RingBufferModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingBufferModelTest, MatchesDequeModel) {
    sim::Random rng(GetParam());
    RingBuffer ring(64);
    std::deque<std::uint8_t> model;

    for (int step = 0; step < 3000; ++step) {
        if (rng.bernoulli(0.5)) {
            std::size_t n = static_cast<std::size_t>(rng.uniform(40)) + 1;
            Bytes data(n);
            for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(256));
            std::size_t wrote = ring.write(data);
            EXPECT_EQ(wrote, std::min(n, 64 - model.size()));
            model.insert(model.end(), data.begin(), data.begin() + static_cast<long>(wrote));
        } else {
            std::size_t n = static_cast<std::size_t>(rng.uniform(40)) + 1;
            std::vector<std::uint8_t> out(n);
            std::size_t got = ring.read(out);
            ASSERT_EQ(got, std::min(n, model.size()));
            for (std::size_t i = 0; i < got; ++i) {
                ASSERT_EQ(out[i], model.front()) << "step " << step;
                model.pop_front();
            }
        }
        ASSERT_EQ(ring.size(), model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingBufferModelTest, ::testing::Values(1, 2, 3, 99));

} // namespace
} // namespace sttcp::util
