// Logger and hexdump utilities.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "util/hexdump.hpp"
#include "util/logging.hpp"

namespace sttcp::util {
namespace {

TEST(Logger, RespectsLevels) {
    Logger logger;
    std::vector<std::string> lines;
    logger.set_sink([&](LogLevel, std::string_view, std::string_view msg) {
        lines.emplace_back(msg);
    });
    logger.set_level(LogLevel::kInfo);
    EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
    EXPECT_TRUE(logger.enabled(LogLevel::kWarn));

    logger.log(LogLevel::kDebug, "x", "dropped");
    logger.log(LogLevel::kInfo, "x", "kept");
    logger.log(LogLevel::kError, "x", "kept too");
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "kept");
}

TEST(Logger, MacroIsLazy) {
    Logger logger;
    logger.set_level(LogLevel::kError);
    int evaluations = 0;
    auto expensive = [&]() {
        ++evaluations;
        return 42;
    };
    STTCP_LOG(logger, LogLevel::kDebug, "x", "value=" << expensive());
    EXPECT_EQ(evaluations, 0);
    logger.set_sink([](LogLevel, std::string_view, std::string_view) {});
    STTCP_LOG(logger, LogLevel::kError, "x", "value=" << expensive());
    EXPECT_EQ(evaluations, 1);
}

TEST(Logger, LevelNames) {
    EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
    EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
}

TEST(SimulationLogger, SinkSeesVirtualTime) {
    sim::Simulation sim;
    std::vector<double> stamps;
    sim.logger().set_level(LogLevel::kInfo);
    sim.logger().set_sink([&](LogLevel, std::string_view, std::string_view) {
        stamps.push_back(sim::to_seconds(sim.now()));
    });
    sim.schedule_after(sim::seconds{2}, [&] {
        STTCP_LOG(sim.logger(), LogLevel::kInfo, "test", "tick");
    });
    sim.run();
    ASSERT_EQ(stamps.size(), 1u);
    EXPECT_DOUBLE_EQ(stamps[0], 2.0);
}

TEST(Hexdump, FormatsAndTruncates) {
    std::uint8_t data[] = {0xde, 0xad, 0xbe, 0xef};
    EXPECT_EQ(hexdump(data), "de ad be ef");
    EXPECT_EQ(hexdump({data, 4}, 2), "de ad ...");
    EXPECT_EQ(hexdump({data, 0u}), "");
}

} // namespace
} // namespace sttcp::util
