// WireWriter/WireReader/InternetChecksum: the byte-order and checksum
// foundation of every packet format.
#include <gtest/gtest.h>

#include "util/wire.hpp"

namespace sttcp::util {
namespace {

TEST(WireWriter, BigEndianEncoding) {
    Bytes out;
    WireWriter w{out};
    w.u8(0x01);
    w.u16(0x0203);
    w.u32(0x04050607);
    w.u64(0x08090a0b0c0d0e0fULL);
    ASSERT_EQ(out.size(), 15u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i + 1) << "at offset " << i;
}

TEST(WireWriter, PatchU16) {
    Bytes out;
    WireWriter w{out};
    w.u16(0);
    w.u16(0xbeef);
    w.patch_u16(0, 0xdead);
    EXPECT_EQ(out[0], 0xde);
    EXPECT_EQ(out[1], 0xad);
    EXPECT_EQ(out[2], 0xbe);
    EXPECT_EQ(out[3], 0xef);
}

TEST(WireWriter, BytesAndZeros) {
    Bytes out;
    WireWriter w{out};
    std::uint8_t payload[] = {9, 8, 7};
    w.bytes(ByteView{payload, 3});
    w.zeros(2);
    EXPECT_EQ(out, (Bytes{9, 8, 7, 0, 0}));
}

TEST(WireReader, RoundTrip) {
    Bytes out;
    WireWriter w{out};
    w.u8(0xab);
    w.u16(0x1234);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefULL);
    WireReader r{out};
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireReader, UnderrunThrows) {
    Bytes out{1, 2, 3};
    WireReader r{out};
    EXPECT_EQ(r.u16(), 0x0102);
    EXPECT_THROW((void)r.u16(), WireError);
    // After a throw the reader has not silently consumed anything extra.
    EXPECT_EQ(r.remaining(), 1u);
    EXPECT_EQ(r.u8(), 3);
}

TEST(WireReader, SkipAndRest) {
    Bytes out{1, 2, 3, 4, 5};
    WireReader r{out};
    r.skip(2);
    auto rest = r.rest();
    ASSERT_EQ(rest.size(), 3u);
    EXPECT_EQ(rest[0], 3);
    EXPECT_THROW(r.skip(1), WireError);
}

// RFC 1071 worked example.
TEST(InternetChecksum, Rfc1071Example) {
    std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
    InternetChecksum sum;
    sum.add(ByteView{data, 8});
    EXPECT_EQ(sum.finish(), static_cast<std::uint16_t>(~0xddf2));
}

TEST(InternetChecksum, VerifiesToZero) {
    // A message with its own checksum folded in sums to zero — the
    // verification property every parser relies on.
    std::uint8_t data[] = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x40, 0x00,
                           0x40, 0x06, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                           0x0a, 0x00, 0x00, 0x02};
    InternetChecksum sum;
    sum.add(ByteView{data, sizeof data});
    std::uint16_t c = sum.finish();
    data[10] = static_cast<std::uint8_t>(c >> 8);
    data[11] = static_cast<std::uint8_t>(c);
    InternetChecksum verify;
    verify.add(ByteView{data, sizeof data});
    EXPECT_EQ(verify.finish(), 0);
}

TEST(InternetChecksum, IncrementalEqualsOneShot) {
    Bytes data;
    for (int i = 0; i < 999; ++i) data.push_back(static_cast<std::uint8_t>(i * 37));
    InternetChecksum one_shot;
    one_shot.add(data);

    // Split at every kind of odd/even boundary, including odd-length chunks
    // that exercise the carry-byte path.
    for (std::size_t split : {1u, 2u, 3u, 500u, 997u, 998u}) {
        InternetChecksum inc;
        inc.add(ByteView{data.data(), split});
        inc.add(ByteView{data.data() + split, data.size() - split});
        EXPECT_EQ(inc.finish(), one_shot.finish()) << "split at " << split;
    }
    // Three-way odd splits.
    InternetChecksum inc3;
    inc3.add(ByteView{data.data(), 7});
    inc3.add(ByteView{data.data() + 7, 11});
    inc3.add(ByteView{data.data() + 18, data.size() - 18});
    EXPECT_EQ(inc3.finish(), one_shot.finish());
}

TEST(InternetChecksum, DetectsSingleByteCorruption) {
    Bytes data;
    for (int i = 0; i < 64; ++i) data.push_back(static_cast<std::uint8_t>(i));
    InternetChecksum sum;
    sum.add(data);
    std::uint16_t good = sum.finish();

    for (std::size_t i = 0; i < data.size(); ++i) {
        Bytes corrupted = data;
        corrupted[i] ^= 0x40;
        InternetChecksum s;
        s.add(corrupted);
        EXPECT_NE(s.finish(), good) << "corruption at byte " << i << " undetected";
    }
}

TEST(InternetChecksum, HelpersMatchByteEquivalent) {
    InternetChecksum a;
    a.add_u16(0x1234);
    a.add_u32(0xdeadbeef);
    std::uint8_t bytes[] = {0x12, 0x34, 0xde, 0xad, 0xbe, 0xef};
    InternetChecksum b;
    b.add(ByteView{bytes, 6});
    EXPECT_EQ(a.finish(), b.finish());
}

} // namespace
} // namespace sttcp::util
