// Seq32: serial-number arithmetic on the mod-2^32 circle. Everything in the
// TCP and ST-TCP layers depends on these comparisons being right across the
// wrap boundary.
#include <gtest/gtest.h>

#include "util/seq32.hpp"

namespace sttcp::util {
namespace {

TEST(Seq32, BasicOrdering) {
    EXPECT_LT(Seq32{1}, Seq32{2});
    EXPECT_GT(Seq32{2}, Seq32{1});
    EXPECT_LE(Seq32{2}, Seq32{2});
    EXPECT_GE(Seq32{2}, Seq32{2});
    EXPECT_EQ(Seq32{7}, Seq32{7});
    EXPECT_NE(Seq32{7}, Seq32{8});
}

TEST(Seq32, OrderingAcrossWrap) {
    Seq32 near_max{0xfffffff0u};
    Seq32 wrapped{0x10u};
    // 0x10 is "after" 0xfffffff0 on the circle.
    EXPECT_LT(near_max, wrapped);
    EXPECT_GT(wrapped, near_max);
}

TEST(Seq32, AdditionWraps) {
    Seq32 s{0xffffffffu};
    EXPECT_EQ((s + 1).raw(), 0u);
    EXPECT_EQ((s + 100).raw(), 99u);
    s += 2;
    EXPECT_EQ(s.raw(), 1u);
}

TEST(Seq32, SubtractionWraps) {
    Seq32 s{5};
    EXPECT_EQ((s - 10).raw(), 0xfffffffbu);
    s -= 6;
    EXPECT_EQ(s.raw(), 0xffffffffu);
}

TEST(Seq32, DistanceAcrossWrap) {
    Seq32 a{10};
    Seq32 b{0xfffffff6u};
    // a is 20 bytes after b on the circle.
    EXPECT_EQ(a - b, 20u);
}

TEST(Seq32, MinMax) {
    Seq32 near_max{0xffffff00u};
    Seq32 wrapped{0x100u};
    EXPECT_EQ(util::min(near_max, wrapped), near_max);
    EXPECT_EQ(util::max(near_max, wrapped), wrapped);
    EXPECT_EQ(util::min(wrapped, near_max), near_max);
}

TEST(Seq32, InWindowBasic) {
    EXPECT_TRUE(in_window(Seq32{100}, Seq32{100}, 1));
    EXPECT_FALSE(in_window(Seq32{101}, Seq32{100}, 1));
    EXPECT_TRUE(in_window(Seq32{150}, Seq32{100}, 51));
    EXPECT_FALSE(in_window(Seq32{99}, Seq32{100}, 1000));
    EXPECT_FALSE(in_window(Seq32{100}, Seq32{100}, 0));
}

TEST(Seq32, InWindowAcrossWrap) {
    Seq32 lo{0xffffffe0u};
    EXPECT_TRUE(in_window(Seq32{0x5u}, lo, 0x40));   // wrapped but inside
    EXPECT_FALSE(in_window(Seq32{0x25u}, lo, 0x40)); // just outside
    EXPECT_TRUE(in_window(Seq32{0xffffffe0u}, lo, 0x40));
}

// Property sweep: for any base b, ordering of b+i vs b+j matches ordering
// of i vs j as long as the distance stays below 2^31.
class Seq32PropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Seq32PropertyTest, OrderingIsTranslationInvariant) {
    std::uint32_t base = GetParam();
    const std::uint32_t offsets[] = {0, 1, 1000, 0xffff, 0x7ffffffe};
    for (std::uint32_t i : offsets) {
        for (std::uint32_t j : offsets) {
            Seq32 a = Seq32{base} + i;
            Seq32 b = Seq32{base} + j;
            EXPECT_EQ(a < b, i < j) << "base=" << base << " i=" << i << " j=" << j;
            EXPECT_EQ(a == b, i == j);
            if (i >= j) {
                EXPECT_EQ(a - b, i - j);
            }
        }
    }
}

TEST_P(Seq32PropertyTest, AddThenSubtractRoundTrips) {
    std::uint32_t base = GetParam();
    for (std::uint32_t delta : {0u, 1u, 1460u, 0x7fffffffu, 0xfffffffeu}) {
        Seq32 s{base};
        EXPECT_EQ(((s + delta) - delta).raw(), base);
    }
}

INSTANTIATE_TEST_SUITE_P(WrapBoundaries, Seq32PropertyTest,
                         ::testing::Values(0u, 1u, 0x7fffffffu, 0x80000000u, 0xfffffff0u,
                                           0xffffffffu, 12345u));

} // namespace
} // namespace sttcp::util
