// Test entry point: standard gtest main plus an invariant-audit listener.
//
// Every test runs with the ST-TCP runtime auditor compiled in (STTCP_AUDIT
// is ON by default), so the whole suite doubles as a protocol-invariant
// sweep: any uncaptured violation reported during a test fails that test,
// naming the invariant. Fault-injection tests that corrupt state on purpose
// route violations into a check::ScopedCapture instead, which this listener
// never sees.

#include <gtest/gtest.h>

#include <string>

#include "check/audit.hpp"

namespace {

class AuditListener : public testing::EmptyTestEventListener {
public:
    void OnTestStart(const testing::TestInfo&) override {
        start_count_ = sttcp::check::Audit::violation_count();
        sttcp::check::Audit::clear_recent();
    }

    void OnTestEnd(const testing::TestInfo&) override {
        std::uint64_t delta = sttcp::check::Audit::violation_count() - start_count_;
        if (delta == 0) return;
        std::string names;
        for (const auto& v : sttcp::check::Audit::recent()) {
            if (!names.empty()) names += ", ";
            names += v.invariant;
        }
        ADD_FAILURE() << delta << " invariant violation(s) during this test: " << names;
    }

private:
    std::uint64_t start_count_ = 0;
};

} // namespace

int main(int argc, char** argv) {
    testing::InitGoogleTest(&argc, argv);
    testing::UnitTest::GetInstance()->listeners().Append(new AuditListener);
    return RUN_ALL_TESTS();
}
