// Pinned soak seeds. Each ran thousands of virtual events and, at some
// commit, either exposed a real protocol bug (named below) or covers a
// topology/dimension mix the cheap unit tests cannot. Scenario sampling is
// part of the regression: Scenario::sample(seed) must keep mapping these
// seeds to the same scenarios, so a sampler change that silently retires a
// reproducer fails here first.
#include <gtest/gtest.h>

#include "fuzz/soak.hpp"

namespace sttcp::fuzz {
namespace {

void expect_seed_passes(std::uint64_t seed) {
    Scenario sc = Scenario::sample(seed);
    TrialResult r = run_trial(sc, SoakOptions{});
    EXPECT_TRUE(r.passed) << sc.describe() << "\n  " << r.failure
                          << "\n  reproduce: sttcp_soak --seed " << seed;
}

// A shadow anchored mid-handshake (tapped SYN/ACK corrupted, client ACK
// never seen) was promoted as ESTABLISHED and answered the client's SYN
// retransmissions with bare ACKs — RFC 793 deadlock. The promoted backup
// must stay in SYN_RCVD and resend the SYN/ACK itself.
TEST(SoakRegression, Seed4_MidHandshakePromotionResendsSynAck) { expect_seed_passes(4); }

// Tap loss ate the client's SYN entirely; the one kStateReq the backup sent
// was lost too, and a pure-download client never sent another orphan
// segment to retrigger it. The state-request must retry on a timer.
TEST(SoakRegression, Seed21_LateJoinStateRequestRetries) { expect_seed_passes(21); }

// After a takeover the client held bytes the dead primary sent during a tap
// blackout; its acks ran beyond the replica's snd_max and were treated as
// "acks something we never sent" — a 2-minute-RTO livelock. Adopted
// connections fast-forward snd_max into app-regenerated data instead.
TEST(SoakRegression, Seed31_AdoptedConnectionAckFastForward) { expect_seed_passes(31); }

// Two opposite flips of the same bit index at even byte distance cancel in
// the Internet checksum (Stone & Partridge) — silent corruption no TCP can
// catch. The soak samples corrupt_max_bits=1, whose errors are always
// detectable; this seed replays the exact collision scenario.
TEST(SoakRegression, Seed43_SingleBitCorruptionAlwaysDetectable) { expect_seed_passes(43); }

// A tap blackout ate client upload bytes AND the primary acks covering
// them, so at takeover the backup believed nothing was missing and skipped
// logger recovery — while the client had already discarded the acked bytes.
// Recovery now sweeps the full receive-window span above rcv_nxt.
TEST(SoakRegression, Seed54_LoggerRecoverySweepsReceiveWindow) { expect_seed_passes(54); }

// Topology/dimension coverage beyond the bug seeds.
TEST(SoakRegression, Seed12_SwitchMulticastSixDimensions) { expect_seed_passes(12); }
TEST(SoakRegression, Seed103_ChainClientBlackout) { expect_seed_passes(103); }
TEST(SoakRegression, Seed140_NoSpofCorruptionJitter) { expect_seed_passes(140); }

// Scheduler-backend determinism on recorded soak trials: the timing wheel
// must execute the byte-identical event order as the binary-heap oracle —
// equal order digests, equal event counts, equal verdicts — on full trials
// (handshakes, chaos schedules, failovers), not just unit-test scripts.
TEST(SoakRegression, WheelMatchesHeapEventOrderOnRecordedTrials) {
    for (std::uint64_t seed : {4ull, 21ull, 43ull, 103ull}) {
        Scenario sc = Scenario::sample(seed);
        SoakOptions wheel_opts, heap_opts;
        wheel_opts.backend = sim::EventQueue::Backend::kWheel;
        heap_opts.backend = sim::EventQueue::Backend::kHeap;
        TrialResult w = run_trial(sc, wheel_opts);
        TrialResult h = run_trial(sc, heap_opts);
        EXPECT_EQ(w.event_order_digest, h.event_order_digest) << sc.describe();
        EXPECT_EQ(w.events_executed, h.events_executed) << sc.describe();
        EXPECT_GT(w.events_executed, 500u) << "trial too small to prove anything";
        EXPECT_EQ(w.passed, h.passed);
        EXPECT_EQ(w.bytes_received, h.bytes_received);
    }
}

} // namespace
} // namespace sttcp::fuzz
