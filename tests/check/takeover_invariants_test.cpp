// Wire-level checks of the two takeover-time invariants (paper §4.4):
//
//   1. Before the primary fails, the backup puts ZERO TCP segments on the
//      wire — its entire replica runs behind the egress filter. Verified by
//      observing every frame delivered on the client's link and attributing
//      it to its sender MAC.
//   2. The first data segment the promoted backup sends starts at or below
//      the client's RCV.NXT — sequence-contiguous with the client's view of
//      the stream, so the client's TCP accepts the stream without a gap or
//      a reset. This is the observable consequence of ISN synchronization
//      (§4.1) plus ack-bounded discard (Figure 4).
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/tcp_wire.hpp"

namespace sttcp {
namespace {

using harness::HubTestbed;
using harness::TestbedOptions;
using util::Seq32;

TEST(TakeoverInvariants, BackupSilentBeforeCrashAndContiguousAfter) {
    TestbedOptions opts;
    opts.sttcp.hb_interval = sim::milliseconds{50};
    opts.sttcp.sync_time = sim::milliseconds{50};
    HubTestbed bed{opts};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(8000);
    auto bl = bed.st_backup->listen(8000);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    const net::MacAddress backup_mac = net::MacAddress::local(3);
    bool crashed = false;
    std::uint64_t backup_tcp_pre_crash = 0;
    std::uint64_t backup_tcp_post_crash = 0;
    bool first_data_seen = false;
    Seq32 first_data_seq;
    bool client_view_valid = false;
    Seq32 client_rcv_nxt_then;

    // Every frame delivered on the client's hub link, attributed by sender
    // MAC: primary is local(2), backup is local(3).
    bed.client_link->set_observer([&](const net::EthernetFrame& frame,
                                      const net::FrameEndpoint&) {
        if (frame.type != net::EtherType::kIpv4 || frame.src != backup_mac) return;
        net::Ipv4Packet ip = net::Ipv4Packet::parse(frame.payload);
        if (ip.proto != net::IpProto::kTcp) return;
        if (!crashed) {
            ++backup_tcp_pre_crash;
            return;
        }
        ++backup_tcp_post_crash;
        net::TcpSegment seg = net::TcpSegment::parse(ip.payload, ip.src, ip.dst);
        if (first_data_seen || seg.payload.empty()) return;
        first_data_seen = true;
        first_data_seq = seg.seq;
        // Snapshot the client's view of the stream at the moment the first
        // post-takeover payload arrives.
        auto conns = bed.client->connections();
        if (conns.size() == 1) {
            client_view_valid = true;
            client_rcv_nxt_then = conns[0]->rcv_nxt();
        }
    });

    app::ClientDriver driver{*bed.client, bed.service_ip(), 8000, app::Workload::echo()};
    bool done = false;
    driver.start([&] { done = true; });

    bed.sim.schedule_after(sim::milliseconds{400}, [&]() {
        crashed = true;
        bed.crash_primary();
    });

    while (!done && bed.sim.now() < sim::TimePoint{} + sim::seconds{30})
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{100});

    ASSERT_TRUE(driver.result().completed) << driver.result().failure_reason;
    EXPECT_EQ(driver.result().verify_errors, 0u);
    EXPECT_TRUE(bed.st_backup->stats().failovers > 0);

    // Invariant 1: total silence before the crash.
    EXPECT_EQ(backup_tcp_pre_crash, 0u);
    EXPECT_GT(backup_tcp_post_crash, 0u);

    // Invariant 2: the first post-takeover payload overlaps or abuts the
    // client's receive frontier — no sequence gap, no data from the future.
    ASSERT_TRUE(first_data_seen);
    ASSERT_TRUE(client_view_valid);
    EXPECT_LE(util::seq_delta(first_data_seq, client_rcv_nxt_then), 0)
        << "first post-takeover segment seq=" << first_data_seq.raw()
        << " is ahead of the client's RCV.NXT=" << client_rcv_nxt_then.raw();
}

// The suppression invariant holds under load and tap loss too: even while
// the backup is busy recovering gaps via the control channel, nothing it
// does may reach the client as TCP before takeover.
TEST(TakeoverInvariants, BackupSilentUnderTapLossWithoutFailure) {
    TestbedOptions opts;
    opts.sttcp.hb_interval = sim::milliseconds{50};
    opts.sttcp.sync_time = sim::milliseconds{50};
    opts.tap_loss = 0.05;
    HubTestbed bed{opts};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(8000);
    auto bl = bed.st_backup->listen(8000);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    const net::MacAddress backup_mac = net::MacAddress::local(3);
    std::uint64_t backup_tcp_frames = 0;
    bed.client_link->set_observer([&](const net::EthernetFrame& frame,
                                      const net::FrameEndpoint&) {
        if (frame.type != net::EtherType::kIpv4 || frame.src != backup_mac) return;
        net::Ipv4Packet ip = net::Ipv4Packet::parse(frame.payload);
        if (ip.proto == net::IpProto::kTcp) ++backup_tcp_frames;
    });

    app::ClientDriver driver{*bed.client, bed.service_ip(), 8000,
                             app::Workload::upload_kb(32, 2)};
    bool done = false;
    driver.start([&] { done = true; });
    while (!done && bed.sim.now() < sim::TimePoint{} + sim::seconds{30})
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{100});

    ASSERT_TRUE(driver.result().completed) << driver.result().failure_reason;
    EXPECT_EQ(backup_tcp_frames, 0u);
    // The tap actually lost frames, so the recovery path really ran.
    EXPECT_GT(bed.st_backup->stats().missing_bytes_recovered, 0u);
}

} // namespace
} // namespace sttcp
