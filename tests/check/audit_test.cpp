// Fault-injection tests for the invariant auditor: corrupt the very state
// the paper's safety argument depends on and assert the auditor names the
// broken invariant. Violations are routed into a check::ScopedCapture so the
// suite-wide zero-violation listener (tests/main.cpp) does not fail these
// tests for firing on purpose.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "check/audit.hpp"
#include "check/sttcp_auditor.hpp"
#include "harness/experiment.hpp"
#include "sttcp/retention.hpp"
#include "../test_support.hpp"

namespace sttcp {
namespace {

using check::Audit;
using check::ScopedCapture;
using check::Violation;
using harness::HubTestbed;
using harness::TestbedOptions;
using util::Seq32;

bool has_violation(const std::vector<Violation>& captured, std::string_view name) {
    return std::any_of(captured.begin(), captured.end(),
                       [&](const Violation& v) { return v.invariant == name; });
}

TEST(AuditCore, RequireReportsOnlyFailures) {
    std::vector<Violation> captured;
    ScopedCapture capture{captured};
    EXPECT_TRUE(check::require(true, "test.ok", "here", "fine"));
    EXPECT_FALSE(check::require(false, "test.bad", "here", "broken"));
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].invariant, "test.bad");
    EXPECT_EQ(captured[0].where, "here");
}

TEST(AuditCore, CaptureShieldsTheGlobalCounter) {
    std::uint64_t before = Audit::violation_count();
    {
        std::vector<Violation> captured;
        ScopedCapture capture{captured};
        check::require(false, "test.captured", "here", "routed into capture");
    }
    EXPECT_EQ(Audit::violation_count(), before);
}

TEST(AuditFaultInjection, RetentionCaptureGapIsDetected) {
    if (!check::kEnabled) GTEST_SKIP() << "built without STTCP_AUDIT";
    core::SecondReceiveBuffer retention{1024};
    util::Bytes chunk = testing::make_payload(10);

    std::vector<Violation> captured;
    ScopedCapture capture{captured};
    retention.on_consumed(Seq32{1000}, chunk);   // retained run: [1000, 1010)
    retention.on_consumed(Seq32{1010}, chunk);   // contiguous: fine
    EXPECT_TRUE(captured.empty());
    retention.on_consumed(Seq32{1030}, chunk);   // hole [1020, 1030): never retained
    EXPECT_TRUE(has_violation(captured, "sttcp.retention.capture_gap"));
}

// Figure 4's discard rule, violated end-to-end: detach the retention hook on
// the primary's live connection so bytes the application reads stop being
// captured into the second buffer. Those bytes are exactly the paper's
// failure mode — read from the first buffer, acked to the client, retained
// nowhere — and the standing audit must flag the hole.
TEST(AuditFaultInjection, DiscardWithoutBackupAckIsDetected) {
    if (!check::kEnabled) GTEST_SKIP() << "built without STTCP_AUDIT";
    TestbedOptions opts;
    opts.sttcp.hb_interval = sim::milliseconds{50};
    // Backup acks only once at connection start, then stays quiet for the
    // whole test: read bytes accumulate in the second buffer.
    opts.sttcp.sync_time = sim::seconds{30};
    HubTestbed bed{opts};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(8000);
    auto bl = bed.st_backup->listen(8000);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    // Long echo run (~9 s of virtual time): the test injects its fault and
    // audits mid-stream, well before the workload completes.
    app::ClientDriver driver{*bed.client, bed.service_ip(), 8000,
                             app::Workload{"echo-long", 1000, 150, 0}};
    bool done = false;
    driver.start([&] { done = true; });

    std::vector<Violation> captured;
    ScopedCapture capture{captured};

    bed.sim.run_until(bed.sim.now() + sim::seconds{1});
    ASSERT_FALSE(done);
    ASSERT_GT(bed.st_primary->retained_bytes(), 0u);
    ASSERT_EQ(bed.primary->connections().size(), 1u);

    // Inject the fault: stop retaining while the application keeps reading.
    bed.primary->connections()[0]->set_retention_hook(nullptr);
    bed.sim.run_until(bed.sim.now() + sim::seconds{1});

    // The standing sweep must see the hole between the frozen second buffer
    // and LastByteRead.
    EXPECT_FALSE(has_violation(captured, "sttcp.retention.contiguous_with_first_buffer"));
    bed.st_primary->audit_connections();
    EXPECT_TRUE(has_violation(captured, "sttcp.retention.contiguous_with_first_buffer"));
}

// Direct corruption of the release bound: the second buffer's front passed
// LastByteAcked, meaning bytes were discarded that no backup acknowledged.
TEST(AuditFaultInjection, ReleasePastAckedIsDetected) {
    if (!check::kEnabled) GTEST_SKIP() << "built without STTCP_AUDIT";
    testing::TwoHostLan lan;
    auto listener = lan.server.tcp_listen(8000);
    auto conn = lan.client.tcp_connect(lan.server_ip, 8000);
    lan.sim.run_until(lan.sim.now() + sim::seconds{1});
    ASSERT_EQ(conn->state(), tcp::TcpState::kEstablished);

    core::SecondReceiveBuffer retention{1024};
    util::Bytes chunk = testing::make_payload(10);

    std::vector<Violation> captured;
    ScopedCapture capture{captured};
    retention.on_consumed(Seq32{1000}, chunk);  // front_seq = 1000
    // Quorum says LastByteAcked = 900: the buffer should still hold [901...,
    // but its front already moved to 1000 — bytes 901..999 are gone unacked.
    check::SttcpInvariantAuditor::audit_retention(*conn, retention, Seq32{900},
                                                  std::nullopt);
    EXPECT_TRUE(has_violation(captured, "sttcp.retention.release_past_acked"));
}

TEST(AuditFaultInjection, AckBeyondSentDataIsDetected) {
    if (!check::kEnabled) GTEST_SKIP() << "built without STTCP_AUDIT";
    tcp::SendBuffer buf{128};
    buf.set_una(Seq32{5000});
    util::Bytes data = testing::make_payload(10);
    ASSERT_EQ(buf.write(data), 10u);

    std::vector<Violation> captured;
    ScopedCapture capture{captured};
    buf.ack_to(Seq32{5050});  // peer "acked" 50 bytes; only 10 were ever sent
    EXPECT_TRUE(has_violation(captured, "tcp.snd.ack_within_sent"));
}

TEST(AuditFaultInjection, FencelessBackupDropIsDetected) {
    if (!check::kEnabled) GTEST_SKIP() << "built without STTCP_AUDIT";
    std::vector<Violation> captured;
    ScopedCapture capture{captured};
    check::SttcpInvariantAuditor::audit_backup_drop(/*detector_suspected=*/false,
                                                    "backup 10.0.0.3", std::nullopt);
    EXPECT_TRUE(has_violation(captured, "sttcp.fencing.drop_requires_suspicion"));
}

TEST(AuditFaultInjection, EgressLeakBeforeTakeoverIsDetected) {
    if (!check::kEnabled) GTEST_SKIP() << "built without STTCP_AUDIT";
    std::vector<Violation> captured;
    ScopedCapture capture{captured};
    // A service-IP segment passing the filter before takeover is the one
    // decision the suppression invariant forbids.
    check::SttcpInvariantAuditor::audit_egress_decision(
        /*taken_over=*/false, /*src_is_service_ip=*/true, /*allowed=*/true,
        "backup egress filter", std::nullopt);
    EXPECT_TRUE(has_violation(captured, "sttcp.backup.output_suppressed_pre_takeover"));
}

TEST(AuditFaultInjection, DoubleTakeoverIsDetected) {
    if (!check::kEnabled) GTEST_SKIP() << "built without STTCP_AUDIT";
    std::vector<Violation> captured;
    ScopedCapture capture{captured};
    check::SttcpInvariantAuditor::audit_takeover(/*already_taken_over=*/true,
                                                 /*live_seniors=*/1, "backup succession",
                                                 std::nullopt);
    EXPECT_TRUE(has_violation(captured, "sttcp.takeover.at_most_once"));
    EXPECT_TRUE(has_violation(captured, "sttcp.fencing.takeover_requires_seniors_dead"));
}

} // namespace
} // namespace sttcp
