// EventQueue: deterministic ordering, cancellation, and time semantics that
// every protocol timer depends on.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"

namespace sttcp::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(TimePoint{} + milliseconds{30}, [&] { order.push_back(3); });
    q.schedule_at(TimePoint{} + milliseconds{10}, [&] { order.push_back(1); });
    q.schedule_at(TimePoint{} + milliseconds{20}, [&] { order.push_back(2); });
    EXPECT_EQ(q.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), TimePoint{} + milliseconds{30});
}

TEST(EventQueue, SameTimeIsFifo) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule_at(TimePoint{} + milliseconds{5}, [&, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule_after(milliseconds{10}, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_EQ(q.pending(), 0u);
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeOnBadIds) {
    EventQueue q;
    EventId id = q.schedule_after(milliseconds{10}, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(kInvalidEventId));
    EXPECT_FALSE(q.cancel(9999));  // never issued
    q.run();
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
    EventQueue q;
    EventId id = q.schedule_after(milliseconds{1}, [] {});
    q.run();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, RunUntilAdvancesTimeEvenWhenIdle) {
    EventQueue q;
    EXPECT_EQ(q.run_until(TimePoint{} + seconds{5}), 0u);
    EXPECT_EQ(q.now(), TimePoint{} + seconds{5});
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(TimePoint{} + milliseconds{10}, [&] { order.push_back(1); });
    q.schedule_at(TimePoint{} + milliseconds{30}, [&] { order.push_back(2); });
    EXPECT_EQ(q.run_until(TimePoint{} + milliseconds{20}), 1u);
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_EQ(q.now(), TimePoint{} + milliseconds{20});
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsScheduledInsideCallbacksRun) {
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 5) q.schedule_after(milliseconds{1}, chain);
    };
    q.schedule_after(milliseconds{1}, chain);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), TimePoint{} + milliseconds{5});
}

TEST(EventQueue, ZeroDelayRunsAtCurrentTime) {
    EventQueue q;
    q.run_until(TimePoint{} + seconds{1});
    bool fired = false;
    q.schedule_after(Duration{0}, [&] { fired = true; });
    q.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(q.now(), TimePoint{} + seconds{1});
}

TEST(EventQueue, ExecutedCounter) {
    EventQueue q;
    for (int i = 0; i < 7; ++i) q.schedule_after(milliseconds{i}, [] {});
    q.run();
    EXPECT_EQ(q.executed(), 7u);
}

TEST(EventQueue, RunWithLimit) {
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 10; ++i) q.schedule_after(milliseconds{i}, [&] { ++fired; });
    EXPECT_EQ(q.run(4), 4u);
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, CancelledEventsAreNotCountedExecuted) {
    EventQueue q;
    int fired = 0;
    q.schedule_after(milliseconds{1}, [&] { ++fired; });
    EventId victim = q.schedule_after(milliseconds{2}, [&] { ++fired; });
    q.schedule_after(milliseconds{3}, [&] { ++fired; });
    EXPECT_EQ(q.pending(), 3u);
    EXPECT_TRUE(q.cancel(victim));
    EXPECT_EQ(q.pending(), 2u);
    EXPECT_EQ(q.run(), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.executed(), 2u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, StaleIdNeverCancelsALaterEvent) {
    // An id that already fired must stay dead forever, even after the queue
    // has issued many more events (i.e. internal storage may be reused).
    EventQueue q;
    EventId stale = q.schedule_after(milliseconds{1}, [] {});
    q.run();
    ASSERT_EQ(q.executed(), 1u);

    bool fired = false;
    std::vector<EventId> later;
    for (int i = 0; i < 64; ++i)
        later.push_back(q.schedule_after(milliseconds{1 + i}, [&] { fired = true; }));
    EXPECT_FALSE(q.cancel(stale));
    EXPECT_EQ(q.pending(), 64u);
    q.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(q.executed(), 65u);
    for (EventId id : later) EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInsideCallback) {
    EventQueue q;
    bool fired = false;
    EventId victim = q.schedule_at(TimePoint{} + milliseconds{20}, [&] { fired = true; });
    q.schedule_at(TimePoint{} + milliseconds{10}, [&] { EXPECT_TRUE(q.cancel(victim)); });
    EXPECT_EQ(q.run(), 1u);
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.now(), TimePoint{} + milliseconds{10});
}

TEST(EventQueue, FifoTieBreakSurvivesCancellation) {
    EventQueue q;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(q.schedule_at(TimePoint{} + milliseconds{5}, [&, i] { order.push_back(i); }));
    q.cancel(ids[1]);
    q.cancel(ids[4]);
    q.cancel(ids[7]);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5, 6}));
}

TEST(EventQueue, ScheduleCancelChurnStaysConsistent) {
    // Deterministic schedule/cancel interleave: every odd event is cancelled,
    // every even one must fire exactly once, and the counters must agree.
    EventQueue q;
    int fired = 0;
    for (int round = 0; round < 50; ++round) {
        std::vector<EventId> ids;
        for (int i = 0; i < 10; ++i)
            ids.push_back(q.schedule_after(milliseconds{i}, [&] { ++fired; }));
        for (int i = 1; i < 10; i += 2) EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
        q.run();
    }
    EXPECT_EQ(fired, 50 * 5);
    EXPECT_EQ(q.executed(), 250u);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilSkipsCancelledHead) {
    EventQueue q;
    bool fired = false;
    EventId a = q.schedule_at(TimePoint{} + milliseconds{10}, [] {});
    q.schedule_at(TimePoint{} + milliseconds{50}, [&] { fired = true; });
    q.cancel(a);
    // The cancelled event at t=10 must not stop run_until from seeing that
    // the next live event is beyond the deadline.
    EXPECT_EQ(q.run_until(TimePoint{} + milliseconds{20}), 0u);
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.run_until(TimePoint{} + milliseconds{60}), 1u);
    EXPECT_TRUE(fired);
}

} // namespace
} // namespace sttcp::sim
