// InlineFunction: the small-buffer callback type under every scheduled event.
#include <gtest/gtest.h>

#include <memory>

#include "sim/inline_function.hpp"

namespace sttcp::sim {
namespace {

using Fn = InlineFunction<int(int), 64>;

TEST(InlineFunction, EmptyIsFalsy) {
    Fn f;
    EXPECT_FALSE(f);
    Fn g = nullptr;
    EXPECT_FALSE(g);
}

TEST(InlineFunction, CallsSmallLambdaInline) {
    int base = 10;
    Fn f = [base](int x) { return base + x; };
    static_assert(Fn::fits_inline<decltype([base = 0](int x) { return base + x; })>);
    ASSERT_TRUE(f);
    EXPECT_EQ(f(5), 15);
}

TEST(InlineFunction, HeapFallbackForLargeCaptures) {
    struct Big {
        char bytes[128] = {};
    };
    Big big;
    big.bytes[0] = 7;
    auto lambda = [big](int x) { return big.bytes[0] + x; };
    static_assert(!Fn::fits_inline<decltype(lambda)>);
    Fn f = lambda;
    EXPECT_EQ(f(1), 8);
    Fn g = std::move(f);  // heap case relocates by pointer steal
    EXPECT_EQ(g(2), 9);
    EXPECT_FALSE(f);  // NOLINT(bugprone-use-after-move): moved-from is empty
}

TEST(InlineFunction, MoveTransfersState) {
    int calls = 0;
    InlineFunction<void()> f = [&calls] { ++calls; };
    InlineFunction<void()> g = std::move(f);
    EXPECT_FALSE(f);  // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(g);
    g();
    g();
    EXPECT_EQ(calls, 2);
}

TEST(InlineFunction, MoveAssignDestroysOldTarget) {
    auto counter = std::make_shared<int>(0);
    InlineFunction<void()> f = [counter] { ++*counter; };
    EXPECT_EQ(counter.use_count(), 2);
    f = [] {};
    EXPECT_EQ(counter.use_count(), 1);  // old capture destroyed
}

TEST(InlineFunction, HoldsMoveOnlyCaptures) {
    auto p = std::make_unique<int>(42);
    InlineFunction<int()> f = [p = std::move(p)] { return *p; };
    EXPECT_EQ(f(), 42);
    InlineFunction<int()> g = std::move(f);
    EXPECT_EQ(g(), 42);
}

TEST(InlineFunction, DestroysCaptureExactlyOnce) {
    auto counter = std::make_shared<int>(0);
    {
        InlineFunction<void()> f = [counter] {};
        InlineFunction<void()> g = std::move(f);
        InlineFunction<void()> h = std::move(g);
        EXPECT_EQ(counter.use_count(), 2);  // exactly one live copy across moves
    }
    EXPECT_EQ(counter.use_count(), 1);
}

} // namespace
} // namespace sttcp::sim
