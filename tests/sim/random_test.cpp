// Deterministic RNG: reproducibility is what makes every experiment in this
// repository repeatable bit-for-bit.
#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace sttcp::sim {
namespace {

TEST(Random, SameSeedSameSequence) {
    Random a(42), b(42);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, DifferentSeedsDiverge) {
    Random a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next_u64() == b.next_u64()) ++equal;
    EXPECT_LT(equal, 3);
}

TEST(Random, ReseedRestartsSequence) {
    Random a(7);
    std::uint64_t first = a.next_u64();
    a.next_u64();
    a.reseed(7);
    EXPECT_EQ(a.next_u64(), first);
}

TEST(Random, UniformRespectsBound) {
    Random r(3);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 2000; ++i) {
            EXPECT_LT(r.uniform(bound), bound);
        }
    }
}

TEST(Random, UniformCoversRange) {
    Random r(5);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i) seen[r.uniform(8)] = true;
    for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Random, Uniform01InRange) {
    Random r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Random, BernoulliExtremes) {
    Random r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
        EXPECT_FALSE(r.bernoulli(-1.0));
        EXPECT_TRUE(r.bernoulli(2.0));
    }
}

TEST(Random, BernoulliRate) {
    Random r(13);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        if (r.bernoulli(0.1)) ++hits;
    EXPECT_NEAR(hits / 100000.0, 0.1, 0.01);
}

TEST(Random, RangeInclusive) {
    Random r(17);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        lo |= v == -3;
        hi |= v == 3;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
    EXPECT_EQ(r.range(5, 5), 5);
}

} // namespace
} // namespace sttcp::sim
