// Timing-wheel backend semantics that the heap backend got for free:
// FIFO across wheel levels, cascade correctness at level boundaries, the
// rearm() move-in-place contract, and dead-entry accounting. The last tests
// pin the determinism contract itself: both backends must execute a churny
// scripted workload in the byte-identical order (equal order_digest()).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

namespace sttcp::sim {
namespace {

using Backend = EventQueue::Backend;

constexpr std::array<Backend, 2> kBothBackends{Backend::kWheel, Backend::kHeap};

// One wheel tick is 2^10 ns (kTickShift in event_queue.hpp); deadlines built
// in ticks land exactly on the level boundaries the cascade tests probe.
constexpr std::int64_t kTickNs = 1024;

TimePoint at_ticks(std::uint64_t ticks) {
    return TimePoint{} + nanoseconds{static_cast<std::int64_t>(ticks) * kTickNs};
}

// Same-deadline events must run in schedule order even when they were
// inserted into different wheel levels: the first is scheduled while the
// deadline is far away (coarse level), the second after the cursor has
// advanced close to it (level 0). The cascade must preserve seq order.
TEST(TimerWheel, FifoTieBreakAcrossLevels) {
    EventQueue q{Backend::kWheel};
    std::vector<int> order;
    const TimePoint deadline = at_ticks(100'000);  // ~102 ms
    q.schedule_at(deadline, [&] { order.push_back(0); });        // coarse level
    q.run_until(at_ticks(99'999));                               // cursor 1 tick short
    q.schedule_at(deadline, [&] { order.push_back(1); });        // fine level
    q.schedule_at(deadline, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.now(), deadline);
}

// Deadlines straddling every level-0/level-1 and level-1/level-2 boundary
// (ticks 63..65, 64^2-1..64^2+1, 64^3-1..64^3+1) must still execute in
// (time, seq) order. Scheduled shuffled to make the wheel do the sorting.
TEST(TimerWheel, CascadeCorrectAtLevelBoundaries) {
    constexpr std::uint64_t kL1 = 64, kL2 = 64 * 64, kL3 = 64ull * 64 * 64;
    const std::array<std::uint64_t, 12> ticks{kL3 + 1, kL1 - 1, kL2,     kL3 - 1,
                                              kL1,     kL2 + 1, kL1 + 1, kL2 - 1,
                                              kL3,     kL1,     kL2,     kL3};
    for (Backend b : kBothBackends) {
        EventQueue q{b};
        std::vector<std::uint64_t> fired;
        for (std::uint64_t t : ticks)
            q.schedule_at(at_ticks(t), [&fired, t] { fired.push_back(t); });
        q.run();
        std::vector<std::uint64_t> want(ticks.begin(), ticks.end());
        std::stable_sort(want.begin(), want.end());
        EXPECT_EQ(fired, want) << "backend " << static_cast<int>(b);
    }
}

// Events quantized into the same 1.024 us wheel tick share a level-0 bucket
// but must still fire in exact (nanosecond, seq) order — the bucket is
// lazily sorted at activation — and a run_until deadline falling mid-tick
// must leave the later-in-tick events unfired.
TEST(TimerWheel, SubTickOrderingExact) {
    for (Backend b : kBothBackends) {
        EventQueue q{b};
        std::vector<int> order;
        const TimePoint base = at_ticks(4);  // tick-aligned; offsets stay in-tick
        q.schedule_at(base + nanoseconds{300}, [&] { order.push_back(3); });
        q.schedule_at(base + nanoseconds{100}, [&] { order.push_back(1); });
        q.schedule_at(base + nanoseconds{200}, [&] { order.push_back(2); });
        q.schedule_at(base + nanoseconds{100}, [&] { order.push_back(11); });  // FIFO tie
        q.run_until(base + nanoseconds{150});
        EXPECT_EQ(order, (std::vector<int>{1, 11})) << "backend " << static_cast<int>(b);
        q.run();
        EXPECT_EQ(order, (std::vector<int>{1, 11, 2, 3})) << "backend " << static_cast<int>(b);
        EXPECT_EQ(q.dead_entries(), 0u);
    }
}

TEST(TimerWheel, RearmLaterAndEarlier) {
    for (Backend b : kBothBackends) {
        EventQueue q{b};
        int fired = 0;
        EventId id = q.schedule_after(milliseconds{10}, [&] { ++fired; });
        ASSERT_TRUE(q.rearm(id, TimePoint{} + milliseconds{50}));  // later
        EXPECT_EQ(q.run_until(TimePoint{} + milliseconds{20}), 0u);
        EXPECT_EQ(fired, 0);
        ASSERT_TRUE(q.rearm(id, TimePoint{} + milliseconds{25}));  // earlier (in past of old)
        EXPECT_EQ(q.run_until(TimePoint{} + milliseconds{30}), 1u);
        EXPECT_EQ(fired, 1);
        EXPECT_TRUE(q.empty());
    }
}

// A rearm into the past clamps to now(): the event fires immediately on the
// next run, never "before" the current virtual time.
TEST(TimerWheel, RearmPastDeadlineClampsToNow) {
    for (Backend b : kBothBackends) {
        EventQueue q{b};
        q.schedule_after(milliseconds{40}, [] {});
        q.run();  // now = 40ms
        TimePoint fired_at{};
        EventId id = q.schedule_after(milliseconds{10}, [&] { fired_at = q.now(); });
        ASSERT_TRUE(q.rearm(id, TimePoint{} + milliseconds{5}));  // 35 ms in the past
        q.run();
        EXPECT_EQ(fired_at, TimePoint{} + milliseconds{40});
    }
}

TEST(TimerWheel, RearmRejectsInvalidAndCancelledIds) {
    for (Backend b : kBothBackends) {
        EventQueue q{b};
        EXPECT_FALSE(q.rearm(kInvalidEventId, TimePoint{} + milliseconds{1}));
        EventId id = q.schedule_after(milliseconds{1}, [] {});
        ASSERT_TRUE(q.cancel(id));
        EXPECT_FALSE(q.rearm(id, TimePoint{} + milliseconds{2}));
        q.run();
    }
}

// The periodic-timer idiom the protocol code uses: one persistent event
// whose callback rearms its own id. The id must stay valid across firings
// and cancel must still work from outside.
TEST(TimerWheel, RearmFromOwnCallbackIsPeriodic) {
    for (Backend b : kBothBackends) {
        EventQueue q{b};
        int fired = 0;
        EventId id = kInvalidEventId;
        id = q.schedule_after(milliseconds{10}, [&] {
            if (++fired < 5) {
                ASSERT_TRUE(q.rearm(id, q.now() + milliseconds{10}));
            }
        });
        q.run();
        EXPECT_EQ(fired, 5);
        EXPECT_EQ(q.now(), TimePoint{} + milliseconds{50});
        EXPECT_FALSE(q.cancel(id));  // slot retired after the last firing
        EXPECT_EQ(q.dead_entries(), 0u);
    }
}

// rearm() consumes a fresh seq exactly like cancel+schedule would, so two
// same-deadline events keep their relative order when one is rearmed last.
TEST(TimerWheel, RearmTakesFifoSlotOfReschedule) {
    for (Backend b : kBothBackends) {
        EventQueue q{b};
        std::vector<int> order;
        const TimePoint t = TimePoint{} + milliseconds{10};
        EventId a = q.schedule_at(t, [&] { order.push_back(0); });
        q.schedule_at(t, [&] { order.push_back(1); });
        ASSERT_TRUE(q.rearm(a, t));  // same deadline, but now behind event 1
        q.run();
        EXPECT_EQ(order, (std::vector<int>{1, 0}));
    }
}

// Cancelled entries are tombstones until the queue sweeps them; after a
// full drain none may linger (satellite: dead_entries() asserted zero).
TEST(TimerWheel, DeadEntriesDrainToZero) {
    for (Backend b : kBothBackends) {
        EventQueue q{b};
        std::vector<EventId> ids;
        for (int i = 0; i < 200; ++i)
            ids.push_back(q.schedule_after(milliseconds{i % 37}, [] {}));
        for (std::size_t i = 0; i < ids.size(); i += 2) ASSERT_TRUE(q.cancel(ids[i]));
        EXPECT_EQ(q.pending(), 100u);
        q.run();
        EXPECT_EQ(q.dead_entries(), 0u);
        EXPECT_TRUE(q.empty());
        // Cancel-only drain: live work removed without ever running.
        EventId only = q.schedule_after(seconds{5}, [] {});
        ASSERT_TRUE(q.cancel(only));
        EXPECT_EQ(q.dead_entries(), 0u);
    }
}

// Deterministic scripted churn (LCG-driven schedule/cancel/rearm/run_until
// mix, including nested scheduling from callbacks) must produce identical
// execution on both backends: same executed() count, same order_digest().
TEST(TimerWheel, CrossBackendDigestIdentical) {
    auto run_script = [](Backend b) {
        EventQueue q{b};
        std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
        auto rnd = [&lcg] {
            lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
            return lcg >> 33;
        };
        std::vector<EventId> live;
        for (int step = 0; step < 400; ++step) {
            switch (rnd() % 5) {
                case 0:
                case 1: {
                    Duration d = microseconds{rnd() % 50'000};
                    live.push_back(q.schedule_after(d, [&q, &rnd] {
                        if (rnd() % 3 == 0) q.schedule_after(microseconds{rnd() % 500}, [] {});
                    }));
                    break;
                }
                case 2:
                    if (!live.empty()) {
                        q.cancel(live[rnd() % live.size()]);
                    }
                    break;
                case 3:
                    if (!live.empty()) {
                        EventId id = live[rnd() % live.size()];
                        q.rearm(id, q.now() + microseconds{rnd() % 20'000});
                    }
                    break;
                case 4:
                    q.run_until(q.now() + microseconds{rnd() % 2'000});
                    break;
            }
        }
        q.run();
        EXPECT_EQ(q.dead_entries(), 0u);
        return std::pair{q.executed(), q.order_digest()};
    };
    auto wheel = run_script(Backend::kWheel);
    auto heap = run_script(Backend::kHeap);
    EXPECT_EQ(wheel.first, heap.first);
    EXPECT_EQ(wheel.second, heap.second);
    EXPECT_GT(wheel.first, 100u);  // the script actually executed work
}

// Counters used by the churn pin tests: scheduled() counts fresh arms,
// rearmed() counts move-in-place, peak_pending() high-watermarks liveness.
TEST(TimerWheel, ChurnCountersAccount) {
    EventQueue q;
    EventId a = q.schedule_after(milliseconds{1}, [] {});
    q.schedule_after(milliseconds{2}, [] {});
    EXPECT_EQ(q.scheduled(), 2u);
    EXPECT_EQ(q.peak_pending(), 2u);
    ASSERT_TRUE(q.rearm(a, TimePoint{} + milliseconds{3}));
    EXPECT_EQ(q.scheduled(), 2u);
    EXPECT_EQ(q.rearmed(), 1u);
    q.run();
    EXPECT_EQ(q.peak_pending(), 2u);
    EXPECT_EQ(q.executed(), 2u);
}

} // namespace
} // namespace sttcp::sim
