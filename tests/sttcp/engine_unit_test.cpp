// Unit-level tests of the SttcpPrimary/SttcpBackup engines on the hub
// testbed, driving the control channel and observing internal state
// directly (the scenario tests exercise the same machinery end-to-end).
#include <gtest/gtest.h>

#include "app/client_driver.hpp"
#include "app/responder.hpp"
#include "harness/testbed.hpp"

namespace sttcp {
namespace {

using harness::HubTestbed;
using harness::TestbedOptions;

struct EngineFixture : ::testing::Test {
    TestbedOptions options() {
        TestbedOptions opts;
        opts.sttcp.hb_interval = sim::milliseconds{50};
        opts.sttcp.sync_time = sim::milliseconds{50};
        return opts;
    }

    void start(TestbedOptions opts) {
        bed = std::make_unique<HubTestbed>(opts);
        pl = bed->st_primary->listen(8000);
        bl = bed->st_backup->listen(8000);
        papp.attach(*pl);
        bapp.attach(*bl);
        bed->st_primary->start();
        bed->st_backup->start();
    }

    void run_client(const app::Workload& w, sim::Duration limit = sim::minutes{1}) {
        driver = std::make_unique<app::ClientDriver>(*bed->client, bed->service_ip(), 8000, w);
        bool done = false;
        driver->start([&done] { done = true; });
        sim::TimePoint deadline = bed->sim.now() + limit;
        while (!done && bed->sim.now() < deadline)
            bed->sim.run_until(bed->sim.now() + sim::milliseconds{50});
        ASSERT_TRUE(driver->result().completed);
    }

    std::unique_ptr<HubTestbed> bed;
    app::ResponderApp papp, bapp;
    std::shared_ptr<tcp::TcpListener> pl, bl;
    std::unique_ptr<app::ClientDriver> driver;
};

TEST_F(EngineFixture, HeartbeatsFlowBothWaysDuringIdle) {
    start(options());
    bed->sim.run_until(sim::TimePoint{} + sim::seconds{2});
    // ~40 HBs each way in 2 s at 50 ms, plus ack-response heartbeats.
    EXPECT_GE(bed->st_primary->stats().heartbeats_sent, 35u);
    EXPECT_GE(bed->st_backup->stats().heartbeats_sent, 35u);
    EXPECT_GE(bed->st_backup->stats().heartbeats_received, 35u);
    EXPECT_TRUE(bed->st_primary->fault_tolerant_mode());
    EXPECT_FALSE(bed->st_backup->has_taken_over());
}

TEST_F(EngineFixture, BackupAcksReleaseRetention) {
    start(options());
    run_client(app::Workload::upload_kb(32, 1));
    // Nearly everything the client uploaded was retained and then released
    // via backup acks (the tail may be freed by connection teardown).
    EXPECT_GT(bed->st_primary->stats().backup_acks_received, 0u);
    EXPECT_GE(bed->st_primary->stats().bytes_released, 30u * 1024);
    EXPECT_EQ(bed->st_primary->retained_bytes(), 0u);
}

TEST_F(EngineFixture, ShadowConnectionsTrackConnectionLifecycle) {
    start(options());
    run_client(app::Workload::echo());
    // Session closed: both engines dismantled their per-connection state.
    bed->sim.run_until(bed->sim.now() + sim::seconds{1});
    EXPECT_EQ(bed->st_primary->shadowed_connections(), 0u);
    EXPECT_EQ(bed->st_backup->shadowed_connections(), 0u);
}

TEST_F(EngineFixture, PrimaryServesMissingBytesInChunks) {
    // Force a large gap: the backup misses a 32 KB upload entirely, then
    // recovers it via MissingReq; replies are chunked <= 1200 B.
    TestbedOptions opts = options();
    start(opts);
    // Blind the tap for the middle of the upload.
    bed->sim.schedule_after(sim::milliseconds{30}, [this] {
        bed->backup_link->set_loss_toward(*bed->backup_nic, 1.0);
    });
    bed->sim.schedule_after(sim::milliseconds{80}, [this] {
        bed->backup_link->set_loss_toward(*bed->backup_nic, 0.0);
    });
    run_client(app::Workload::upload_kb(64, 1));
    EXPECT_GT(bed->st_backup->stats().gaps_detected, 0u);
    EXPECT_GT(bed->st_primary->stats().missing_requests_served, 0u);
    EXPECT_GT(bed->st_primary->stats().missing_bytes_sent, 1200u);  // multiple chunks
    EXPECT_EQ(bed->st_backup->stats().missing_bytes_recovered,
              bed->st_primary->stats().missing_bytes_sent);
    // The replica fully drained the upload despite the blind window.
    EXPECT_EQ(bapp.stats().upload_bytes_received, 64u * 1024);
}

TEST_F(EngineFixture, NonFtModeUnblocksStalledReads) {
    // Tiny second buffer + no backup acks (backup crashed mid-upload): the
    // primary's reads stall on retention until the failure detector fires
    // and non-FT mode flushes the gate.
    TestbedOptions opts = options();
    opts.sttcp.second_buffer_bytes = 4 * 1024;
    opts.sttcp.ack_threshold_bytes = 3 * 1024;
    start(opts);
    bed->sim.schedule_after(sim::milliseconds{40}, [this] { bed->crash_backup(); });
    run_client(app::Workload::upload_kb(128, 1), sim::minutes{2});
    EXPECT_FALSE(bed->st_primary->fault_tolerant_mode());
    EXPECT_EQ(papp.stats().upload_bytes_received, 128u * 1024);
    EXPECT_EQ(bed->st_primary->retained_bytes(), 0u);
}

TEST_F(EngineFixture, PrimaryIgnoresControlFromStrangers) {
    // A stranger (the client host) floods well-formed heartbeats at the
    // primary's control port while the real backup is dead. They must not
    // count as backup liveness: the primary still declares the backup
    // failed on schedule.
    start(options());
    bed->sim.run_until(sim::TimePoint{} + sim::milliseconds{300});
    bed->crash_backup();
    auto sock = bed->client->udp_bind(4000);
    std::function<void()> spam = [&]() {
        core::ControlMessage hb;
        hb.type = core::ControlType::kHeartbeat;
        sock->send_to(bed->primary_ip(), bed->options.sttcp.control_port, hb.serialize());
        if (bed->sim.now() < sim::TimePoint{} + sim::seconds{1})
            bed->sim.schedule_after(sim::milliseconds{20}, spam);
    };
    spam();
    bed->sim.run_until(sim::TimePoint{} + sim::seconds{1});
    EXPECT_FALSE(bed->st_primary->fault_tolerant_mode());
}

TEST_F(EngineFixture, MalformedControlDatagramsAreDropped) {
    start(options());
    bed->sim.run_until(sim::TimePoint{} + sim::milliseconds{200});
    auto sock = bed->backup->udp_bind(4001);  // correct source host
    sock->send_to(bed->primary_ip(), bed->options.sttcp.control_port,
                  util::Bytes{0x00, 0x01, 0x02});
    util::Bytes garbage(64, 0xff);
    sock->send_to(bed->primary_ip(), bed->options.sttcp.control_port, garbage);
    bed->sim.run_until(bed->sim.now() + sim::milliseconds{300});
    // Still fully operational afterwards.
    run_client(app::Workload::echo());
    EXPECT_EQ(driver->result().verify_errors, 0u);
}

TEST_F(EngineFixture, TakeoverIsIdempotent) {
    start(options());
    run_client(app::Workload::echo());
    bed->st_backup->take_over();
    EXPECT_TRUE(bed->st_backup->has_taken_over());
    bed->st_backup->take_over();  // second call is a no-op
    EXPECT_EQ(bed->st_backup->stats().failovers, 1u);
}

TEST_F(EngineFixture, PostTakeoverControlTrafficIsIgnored) {
    start(options());
    bed->st_backup->take_over();
    std::uint64_t before = bed->st_backup->stats().control_messages_received;
    // A (zombie) primary heartbeat after takeover must not resurrect the
    // shadow machinery.
    auto sock = bed->primary->udp_bind(4002);
    core::ControlMessage hb;
    hb.type = core::ControlType::kHeartbeat;
    sock->send_to(bed->backup_ip(), bed->options.sttcp.control_port, hb.serialize());
    bed->sim.run_until(bed->sim.now() + sim::milliseconds{200});
    EXPECT_EQ(bed->st_backup->stats().control_messages_received, before);
}

TEST_F(EngineFixture, FencerConfirmsBeforeTakeover) {
    // Replace the fencer with one that delays confirmation; takeover must
    // wait for it (the perfect-failure-detector contract).
    start(options());
    bool fenced = false;
    bed->st_backup->set_fencer(
        [this, &fenced](net::Ipv4Address, std::function<void()> done) {
            bed->sim.schedule_after(sim::milliseconds{300},
                                    [&fenced, done = std::move(done)]() {
                                        fenced = true;
                                        done();
                                    });
        });
    bed->sim.schedule_after(sim::milliseconds{100}, [this] { bed->crash_primary(); });
    // Detection at ~150-200 ms; fencing adds 300 ms.
    bed->sim.run_until(sim::TimePoint{} + sim::milliseconds{450});
    EXPECT_FALSE(bed->st_backup->has_taken_over());
    bed->sim.run_until(sim::TimePoint{} + sim::milliseconds{800});
    EXPECT_TRUE(fenced);
    EXPECT_TRUE(bed->st_backup->has_taken_over());
}

} // namespace
} // namespace sttcp
