// Paper §4.2's central transparency claim: "As long as the backup server
// keeps sending acknowledgments to the primary server at regular intervals,
// there will be no difference between the standard TCP server and the
// ST-TCP server as far as the advertised window size, bytes acknowledged,
// or any TCP timer calculations are concerned."
//
// We sniff every server->client segment on the client's link in a standard
// TCP run and in an ST-TCP run of the same upload workload, and compare the
// advertised-window profiles.
#include <gtest/gtest.h>

#include "app/client_driver.hpp"
#include "app/responder.hpp"
#include "harness/testbed.hpp"
#include "net/frame_trace.hpp"
#include "net/ipv4.hpp"

namespace sttcp {
namespace {

using harness::HubTestbed;
using harness::TestbedOptions;

// Runs the workload and returns the advertised windows of every segment the
// service sent to the client, in order.
std::vector<std::uint16_t> server_windows(bool fault_tolerant, core::SttcpConfig sttcp,
                                          const app::Workload& workload) {
    TestbedOptions opts;
    opts.fault_tolerant = fault_tolerant;
    opts.sttcp = sttcp;
    HubTestbed bed{opts};

    std::vector<std::uint16_t> windows;
    bed.client_link->set_observer([&](const net::EthernetFrame& frame,
                                      const net::FrameEndpoint& receiver) {
        if (receiver.endpoint_name() != "client/eth0") return;
        if (frame.type != net::EtherType::kIpv4) return;
        try {
            net::Ipv4Packet ip = net::Ipv4Packet::parse(frame.payload);
            if (ip.proto != net::IpProto::kTcp || ip.src != bed.service_ip()) return;
            net::TcpSegment seg = net::TcpSegment::parse(ip.payload, ip.src, ip.dst);
            windows.push_back(seg.window);
        } catch (const util::WireError&) {
        }
    });

    app::ResponderApp papp, bapp;
    std::shared_ptr<tcp::TcpListener> pl, bl;
    if (fault_tolerant) {
        pl = bed.st_primary->listen(8000);
        bl = bed.st_backup->listen(8000);
        papp.attach(*pl);
        bapp.attach(*bl);
        bed.st_primary->start();
        bed.st_backup->start();
    } else {
        pl = bed.primary->tcp_listen(8000);
        papp.attach(*pl);
    }

    app::ClientDriver driver{*bed.client, bed.service_ip(), 8000, workload};
    bool done = false;
    driver.start([&] { done = true; });
    while (!done && bed.sim.now() < sim::TimePoint{} + sim::minutes{2})
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{50});
    EXPECT_TRUE(driver.result().completed);
    return windows;
}

TEST(WindowTransparency, AdvertisedWindowsMatchStandardTcpOnUpload) {
    // Uploads are the stressing direction: every client byte is retained on
    // the ST-TCP primary until the backup acks it. With the paper's default
    // strategy the client must see the *same* window profile regardless.
    core::SttcpConfig cfg;
    cfg.hb_interval = sim::milliseconds{50};
    cfg.sync_time = sim::milliseconds{50};
    app::Workload upload = app::Workload::upload_kb(96, 2);

    auto standard = server_windows(false, cfg, upload);
    auto st = server_windows(true, cfg, upload);

    // The segment-by-segment comparison is meaningful because the app and
    // the workload are deterministic; only the server's ISN differs.
    ASSERT_FALSE(standard.empty());
    ASSERT_EQ(st.size(), standard.size());
    for (std::size_t i = 0; i < standard.size(); ++i) {
        ASSERT_EQ(st[i], standard[i]) << "segment " << i;
    }
}

TEST(WindowTransparency, WindowShrinksOnlyWhenRetentionGateCloses) {
    // Counter-experiment: with a starved second buffer (tiny, sync-only
    // acks at 1 s), ST-TCP's window profile MUST deviate — the §4.2
    // "behavior differs if the second buffer fills up" case. This pins down
    // that the equality above is the mechanism working, not a vacuous test.
    core::SttcpConfig starved;
    starved.hb_interval = sim::milliseconds{50};
    starved.sync_time = sim::seconds{1};
    starved.ack_threshold_bytes = SIZE_MAX;
    starved.second_buffer_bytes = 8 * 1024;
    app::Workload upload = app::Workload::upload_kb(96, 2);

    auto standard = server_windows(false, starved, upload);
    auto st = server_windows(true, starved, upload);

    std::uint16_t min_standard = *std::min_element(standard.begin(), standard.end());
    std::uint16_t min_st = *std::min_element(st.begin(), st.end());
    EXPECT_LT(min_st, min_standard);
}

} // namespace
} // namespace sttcp
