// Switched-Ethernet tap architectures (paper §3.1, Figure 2): port
// mirroring and the unicast-IP -> multicast-MAC scheme, each carrying the
// full ST-TCP protocol including failover across a gateway.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/switch_testbed.hpp"

namespace sttcp {
namespace {

using harness::ExperimentConfig;
using harness::SwitchTestbed;
using harness::TapMode;
using harness::TestbedOptions;
using harness::run_switch_experiment;

TestbedOptions fast_options() {
    TestbedOptions opts;
    opts.sttcp.hb_interval = sim::milliseconds{50};
    opts.sttcp.sync_time = sim::milliseconds{50};
    return opts;
}

class SwitchTapModes : public ::testing::TestWithParam<TapMode> {};

TEST_P(SwitchTapModes, FailureFreeRunBehavesLikeStandardTcp) {
    ExperimentConfig cfg;
    cfg.testbed = fast_options();
    cfg.workload = app::Workload::interactive();
    auto st = run_switch_experiment(cfg, GetParam());
    ASSERT_TRUE(st.completed) << st.failure_reason;
    EXPECT_EQ(st.verify_errors, 0u);
    // The backup shadow processed the whole client stream silently.
    EXPECT_EQ(st.backup_app_stats.requests_served, 100u);
    EXPECT_GT(st.backup_stack_stats.tcp_segments_suppressed, 0u);

    ExperimentConfig plain = cfg;
    plain.testbed.fault_tolerant = false;
    auto base = run_switch_experiment(plain, GetParam());
    ASSERT_TRUE(base.completed);
    EXPECT_NEAR(st.total_seconds, base.total_seconds, 0.02 * base.total_seconds);
}

TEST_P(SwitchTapModes, FailoverAcrossGatewayIsTransparent) {
    ExperimentConfig cfg;
    cfg.testbed = fast_options();
    cfg.workload = app::Workload::interactive();
    cfg.crash_primary_at = sim::milliseconds{900};
    auto r = run_switch_experiment(cfg, GetParam());
    ASSERT_TRUE(r.completed) << r.failure_reason;
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_TRUE(r.failover_happened);
    EXPECT_LE(r.takeover_after_seconds, 1.0);
}

TEST_P(SwitchTapModes, BulkFailover) {
    ExperimentConfig cfg;
    cfg.testbed = fast_options();
    cfg.workload = app::Workload::bulk_mb(1);
    cfg.crash_primary_at = sim::milliseconds{300};
    auto r = run_switch_experiment(cfg, GetParam());
    ASSERT_TRUE(r.completed) << r.failure_reason;
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_TRUE(r.failover_happened);
    EXPECT_EQ(r.bytes_received, 1u << 20);
}

INSTANTIATE_TEST_SUITE_P(AllModes, SwitchTapModes,
                         ::testing::Values(TapMode::kPortMirror, TapMode::kMulticastMac),
                         [](const ::testing::TestParamInfo<TapMode>& info) {
                             return info.param == TapMode::kPortMirror ? "PortMirror"
                                                                       : "MulticastMac";
                         });

TEST(SwitchTapDetails, MulticastSchemeFloodsWithoutPromiscuousMode) {
    SwitchTestbed bed{fast_options(), TapMode::kMulticastMac};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(8000);
    auto bl = bed.st_backup->listen(8000);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    EXPECT_FALSE(bed.backup_nic->promiscuous());
    EXPECT_TRUE(bed.backup_nic->in_group(SwitchTestbed::sme()));
    EXPECT_TRUE(bed.backup_nic->in_group(SwitchTestbed::gme()));

    app::ClientDriver driver{*bed.client, bed.service_ip(), 8000, app::Workload::echo()};
    bool done = false;
    driver.start([&] { done = true; });
    while (!done && bed.sim.now() < sim::TimePoint{} + sim::seconds{30})
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{100});

    ASSERT_TRUE(driver.result().completed);
    EXPECT_EQ(driver.result().verify_errors, 0u);
    EXPECT_EQ(bapp.stats().requests_served, 100u);
    // The switch flooded multicast rather than unicasting; the backup's NIC
    // accepted group traffic without promiscuous mode.
    EXPECT_GT(bed.ether_switch.stats().flooded, 100u);
}

TEST(SwitchTapDetails, Rfc1812ForbidsLearningMulticastMacs) {
    // The reason the paper needs *static* ARP entries: a router must not
    // accept a multicast MAC from an ARP reply.
    net::ArpTable table;
    EXPECT_FALSE(table.learn(net::Ipv4Address{10, 0, 0, 100}, net::MacAddress::multicast(7)));
    EXPECT_EQ(table.lookup(net::Ipv4Address{10, 0, 0, 100}), std::nullopt);
    // Static configuration is allowed and survives later dynamic learns.
    table.add_static(net::Ipv4Address{10, 0, 0, 100}, net::MacAddress::multicast(7));
    EXPECT_TRUE(table.lookup(net::Ipv4Address{10, 0, 0, 100}).has_value());
    EXPECT_FALSE(table.learn(net::Ipv4Address{10, 0, 0, 100}, net::MacAddress::local(3)));
    EXPECT_EQ(*table.lookup(net::Ipv4Address{10, 0, 0, 100}), net::MacAddress::multicast(7));
}

TEST(SwitchTapDetails, MirrorModeFailoverUpdatesGatewayArp) {
    SwitchTestbed bed{fast_options(), TapMode::kPortMirror};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(8000);
    auto bl = bed.st_backup->listen(8000);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    app::ClientDriver driver{*bed.client, bed.service_ip(), 8000,
                             app::Workload::interactive()};
    bool done = false;
    driver.start([&] { done = true; });
    bed.sim.schedule_after(sim::milliseconds{700}, [&] { bed.crash_primary(); });
    while (!done && bed.sim.now() < sim::TimePoint{} + sim::minutes{2})
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{100});

    ASSERT_TRUE(driver.result().completed);
    EXPECT_TRUE(bed.st_backup->has_taken_over());
    // The gratuitous ARP moved the service IP to the backup's MAC in the
    // gateway's table (unicast delivery now goes to the backup's port).
    auto mac = bed.gateway->arp_table().lookup(bed.service_ip());
    ASSERT_TRUE(mac.has_value());
    EXPECT_EQ(*mac, bed.backup_nic->mac());
}

} // namespace
} // namespace sttcp
