// Figure-3 no-SPOF architecture: dual rails, dual inline loggers,
// dual-homed servers, directional tap split.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/nospof_testbed.hpp"

namespace sttcp {
namespace {

using harness::ExperimentConfig;
using harness::NoSpofTestbed;
using harness::TestbedOptions;
using harness::run_nospof_experiment;

TestbedOptions fast_options() {
    TestbedOptions opts;
    opts.sttcp.hb_interval = sim::milliseconds{50};
    opts.sttcp.sync_time = sim::milliseconds{50};
    return opts;
}

TEST(NoSpof, FailureFreeServiceWorksAcrossBothRails) {
    ExperimentConfig cfg;
    cfg.testbed = fast_options();
    cfg.workload = app::Workload::interactive();
    auto r = run_nospof_experiment(cfg);
    ASSERT_TRUE(r.completed) << r.failure_reason;
    EXPECT_EQ(r.verify_errors, 0u);
    // The backup replica tracked the whole session via the split taps.
    EXPECT_EQ(r.backup_app_stats.requests_served, 100u);
    EXPECT_GT(r.backup_stack_stats.tcp_segments_suppressed, 0u);
}

TEST(NoSpof, DirectionalTapSplitAcrossTheTwoNics) {
    NoSpofTestbed bed{fast_options()};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(8000);
    auto bl = bed.st_backup->listen(8000);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    app::ClientDriver driver{*bed.client, bed.service_ip(), 8000,
                             app::Workload::interactive()};
    bool done = false;
    driver.start([&] { done = true; });
    while (!done && bed.sim.now() < sim::TimePoint{} + sim::minutes{1})
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{100});
    ASSERT_TRUE(driver.result().completed);

    // NIC-A carries client->server (requests: small); NIC-B carries
    // server->client (responses: ~1 MB). Both taps were active, neither NIC
    // is promiscuous — pure multicast-group delivery.
    EXPECT_FALSE(bed.backup_nic_a->promiscuous());
    EXPECT_FALSE(bed.backup_nic_b->promiscuous());
    EXPECT_GT(bed.backup_nic_a->stats().rx_frames, 100u);
    EXPECT_GT(bed.backup_nic_b->stats().rx_bytes, 800u * 1024);
    EXPECT_GT(bed.backup_nic_b->stats().rx_bytes, bed.backup_nic_a->stats().rx_bytes);

    // Each inline logger holds its direction: logger A the request stream,
    // logger B the response stream — together the complete state (§3.2).
    auto conns = bed.client->connections();
    // The client connection may be in TIME_WAIT; find its ports via stats
    // instead: query a wide range on both loggers.
    EXPECT_GT(bed.logger_a->stats().frames_forwarded, 0u);
    EXPECT_GT(bed.logger_b->stats().frames_forwarded, 0u);
    EXPECT_GT(bed.logger_b->store().stored_bytes(), bed.logger_a->store().stored_bytes());
}

TEST(NoSpof, FailoverWorksInTheReplicatedArchitecture) {
    ExperimentConfig cfg;
    cfg.testbed = fast_options();
    cfg.workload = app::Workload::interactive();
    cfg.crash_primary_at = sim::milliseconds{900};
    auto r = run_nospof_experiment(cfg);
    ASSERT_TRUE(r.completed) << r.failure_reason;
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_TRUE(r.failover_happened);
    EXPECT_LE(r.takeover_after_seconds, 1.0);
}

TEST(NoSpof, BulkFailoverAcrossRails) {
    ExperimentConfig cfg;
    cfg.testbed = fast_options();
    cfg.workload = app::Workload::bulk_mb(2);
    cfg.crash_primary_at = sim::milliseconds{400};
    auto r = run_nospof_experiment(cfg);
    ASSERT_TRUE(r.completed) << r.failure_reason;
    EXPECT_EQ(r.bytes_received, 2u << 20);
    EXPECT_EQ(r.verify_errors, 0u);
}

TEST(NoSpof, LossyTapRecoversViaRailALogger) {
    // Tap loss on both rails + primary crash: the missing client bytes can
    // only come from rail A's inline logger (the primary is dead and the
    // client purged them).
    ExperimentConfig cfg;
    cfg.testbed = fast_options();
    cfg.testbed.tap_loss = 0.15;
    cfg.workload = app::Workload::interactive();
    cfg.crash_primary_at = sim::milliseconds{700};
    auto r = run_nospof_experiment(cfg);
    ASSERT_TRUE(r.completed) << r.failure_reason;
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_TRUE(r.failover_happened);
}

TEST(NoSpof, DeadLoggerDegradesOnlyItsRailRecovery) {
    // Killing logger B severs rail B (server->client): that rail's inline
    // appliance is in the data path, which is exactly why Figure 3 has two.
    // This test documents the failure granularity: the service dies with
    // rail B (no dynamic rerouting in scope), but rail A — and with it the
    // control channel and client->server logging — stays intact.
    NoSpofTestbed bed{fast_options()};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(8000);
    auto bl = bed.st_backup->listen(8000);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    app::ClientDriver driver{*bed.client, bed.service_ip(), 8000, app::Workload::echo()};
    bool done = false;
    driver.start([&] { done = true; });
    bed.sim.schedule_after(sim::milliseconds{300}, [&] { bed.crash_logger_b(); });
    while (!done && bed.sim.now() < sim::TimePoint{} + sim::seconds{10})
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{100});

    // Some rounds completed before the cut; afterwards responses cannot
    // reach the client.
    EXPECT_FALSE(done);
    EXPECT_GT(driver.result().bytes_received, 0u);
    // Rail A is alive: the primary/backup heartbeat exchange continues, so
    // neither side wrongly suspects the other.
    EXPECT_FALSE(bed.st_backup->has_taken_over());
    EXPECT_TRUE(bed.st_primary->fault_tolerant_mode());
    EXPECT_GT(bed.logger_b->stats().frames_dropped_dead, 0u);
}

} // namespace
} // namespace sttcp
