// Replica chain ("one or more backup servers", §3): two ranked backups,
// promotion, re-homing, and cascading failover.
#include <gtest/gtest.h>

#include "app/client_driver.hpp"
#include "app/responder.hpp"
#include "harness/chain_testbed.hpp"

namespace sttcp {
namespace {

using harness::ChainTestbed;
using harness::TestbedOptions;

struct ChainFixture : ::testing::Test {
    TestbedOptions options() {
        TestbedOptions opts;
        opts.sttcp.hb_interval = sim::milliseconds{50};
        opts.sttcp.sync_time = sim::milliseconds{50};
        return opts;
    }

    void start() {
        bed = std::make_unique<ChainTestbed>(options());
        pl = bed->st_primary->listen(8000);
        bl1 = bed->st_backup1->listen(8000);
        bl2 = bed->st_backup2->listen(8000);
        papp.attach(*pl);
        b1app.attach(*bl1);
        b2app.attach(*bl2);
        bed->st_primary->start();
        bed->st_backup1->start();
        bed->st_backup2->start();
    }

    app::ClientDriver::Result run_client(const app::Workload& w,
                                         sim::Duration limit = sim::minutes{2}) {
        app::ClientDriver driver{*bed->client, bed->service_ip(), 8000, w};
        bool done = false;
        driver.start([&done] { done = true; });
        sim::TimePoint deadline = bed->sim.now() + limit;
        while (!done && bed->sim.now() < deadline)
            bed->sim.run_until(bed->sim.now() + sim::milliseconds{50});
        return driver.result();
    }

    std::unique_ptr<ChainTestbed> bed;
    app::ResponderApp papp, b1app, b2app;
    std::shared_ptr<tcp::TcpListener> pl, bl1, bl2;
};

TEST_F(ChainFixture, BothBackupsShadowFailureFree) {
    start();
    auto r = run_client(app::Workload::interactive());
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_EQ(b1app.stats().requests_served, 100u);
    EXPECT_EQ(b2app.stats().requests_served, 100u);
    // The primary held every byte until BOTH backups acked (quorum release).
    EXPECT_EQ(bed->st_primary->live_backups(), 2u);
    EXPECT_EQ(bed->st_primary->retained_bytes(), 0u);
}

TEST_F(ChainFixture, PrimaryCrashPromotesBackup1AndBackup2Rehomes) {
    start();
    bed->sim.schedule_after(sim::milliseconds{700}, [this] { bed->crash_primary(); });
    auto r = run_client(app::Workload::interactive());
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.verify_errors, 0u);

    EXPECT_TRUE(bed->st_backup1->has_taken_over());
    ASSERT_NE(bed->st_backup1->promoted(), nullptr);
    // Backup 1 now runs a full ST-TCP primary serving backup 2.
    EXPECT_TRUE(bed->st_backup1->promoted()->fault_tolerant_mode());
    EXPECT_EQ(bed->st_backup1->promoted()->live_backups(), 1u);

    // Backup 2 re-homed to the promoted primary and kept shadowing.
    EXPECT_FALSE(bed->st_backup2->has_taken_over());
    EXPECT_EQ(bed->st_backup2->current_primary(), bed->backup1_ip());
    EXPECT_EQ(bed->st_backup2->stats().rehomings, 1u);
    EXPECT_EQ(b2app.stats().requests_served, 100u);
    // And the promoted primary heard its acks.
    EXPECT_GT(bed->st_backup1->promoted()->stats().backup_acks_received, 0u);
}

TEST_F(ChainFixture, CascadingFailoverSurvivesTwoFaults) {
    start();
    bed->sim.schedule_after(sim::milliseconds{500}, [this] { bed->crash_primary(); });
    bed->sim.schedule_after(sim::milliseconds{1400}, [this] { bed->crash_backup1(); });
    auto r = run_client(app::Workload::interactive(), sim::minutes{3});
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_EQ(r.bytes_received, 100u * 10240);

    EXPECT_TRUE(bed->st_backup1->has_taken_over());
    EXPECT_TRUE(bed->st_backup2->has_taken_over());
    ASSERT_NE(bed->st_backup2->promoted(), nullptr);
    // Last survivor: no backups left, plain TCP service.
    EXPECT_FALSE(bed->st_backup2->promoted()->fault_tolerant_mode());
}

TEST_F(ChainFixture, SimultaneousDoubleCrash) {
    start();
    bed->sim.schedule_after(sim::milliseconds{600}, [this] {
        bed->crash_primary();
        bed->crash_backup1();
    });
    auto r = run_client(app::Workload::interactive(), sim::minutes{3});
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_TRUE(bed->st_backup2->has_taken_over());
}

TEST_F(ChainFixture, Backup1CrashLeavesPrimaryFaultTolerant) {
    start();
    bed->sim.schedule_after(sim::milliseconds{400}, [this] { bed->crash_backup1(); });
    auto r = run_client(app::Workload::interactive());
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.verify_errors, 0u);
    // One backup down: still fault-tolerant via backup 2.
    EXPECT_TRUE(bed->st_primary->fault_tolerant_mode());
    EXPECT_EQ(bed->st_primary->live_backups(), 1u);
    EXPECT_EQ(bed->st_primary->stats().backups_declared_dead, 1u);
    EXPECT_FALSE(bed->st_backup2->has_taken_over());

    // ...and a subsequent primary crash still fails over (to backup 2).
    bed->crash_primary();
    auto r2 = run_client(app::Workload::echo(), sim::minutes{1});
    ASSERT_TRUE(r2.completed);
    EXPECT_TRUE(bed->st_backup2->has_taken_over());
}

TEST_F(ChainFixture, MidTransferCascadeKeepsEveryByte) {
    start();
    bed->sim.schedule_after(sim::milliseconds{300}, [this] { bed->crash_primary(); });
    bed->sim.schedule_after(sim::milliseconds{1200}, [this] { bed->crash_backup1(); });
    auto r = run_client(app::Workload::bulk_mb(5), sim::minutes{3});
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.bytes_received, 5u << 20);
    EXPECT_EQ(r.verify_errors, 0u);
}

} // namespace
} // namespace sttcp
