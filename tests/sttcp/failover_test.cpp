// Integration tests of the full ST-TCP protocol on the paper's testbed:
// shadowing, suppression, ISN adoption, failover transparency, tap-gap
// recovery, and backup-failure fallback.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace sttcp {
namespace {

using harness::ExperimentConfig;
using harness::HubTestbed;
using harness::TestbedOptions;
using harness::run_experiment;

TestbedOptions fast_options() {
    TestbedOptions opts;
    opts.sttcp.hb_interval = sim::milliseconds{50};
    opts.sttcp.sync_time = sim::milliseconds{50};
    return opts;
}

TEST(SttcpShadow, BackupShadowsConnectionAndStaysSilent) {
    HubTestbed bed{fast_options()};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(8000);
    auto bl = bed.st_backup->listen(8000);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    app::ClientDriver driver{*bed.client, bed.service_ip(), 8000, app::Workload::echo()};
    bool done = false;
    driver.start([&] { done = true; });

    // Probe the shadow state mid-run (the shadow is dismantled on close).
    std::size_t shadowed_mid_run = 0;
    bool seq_state_matched = false;
    bed.sim.schedule_after(sim::milliseconds{500}, [&]() {
        shadowed_mid_run = bed.st_backup->shadowed_connections();
        auto pconn = bed.primary->connections();
        auto bconn = bed.backup->connections();
        if (pconn.size() == 1 && bconn.size() == 1) {
            seq_state_matched = pconn[0]->iss().raw() == bconn[0]->iss().raw() &&
                                pconn[0]->rcv_nxt().raw() == bconn[0]->rcv_nxt().raw();
        }
    });

    while (!done && bed.sim.now() < sim::TimePoint{} + sim::seconds{30})
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{100});

    ASSERT_TRUE(driver.result().completed);
    EXPECT_EQ(driver.result().verify_errors, 0u);

    // Backup shadowed the connection and executed the app identically.
    EXPECT_EQ(shadowed_mid_run, 1u);
    EXPECT_TRUE(seq_state_matched);
    EXPECT_EQ(bapp.stats().requests_served, papp.stats().requests_served);
    EXPECT_EQ(bapp.stats().response_bytes_queued, papp.stats().response_bytes_queued);

    // ...but never emitted a TCP segment: everything it tried was suppressed.
    EXPECT_GT(bed.backup->stats().tcp_segments_suppressed, 0u);
}

TEST(SttcpFailover, EchoContinuesAcrossPrimaryCrash) {
    ExperimentConfig cfg;
    cfg.testbed = fast_options();
    cfg.workload = app::Workload::echo();
    cfg.crash_primary_at = sim::milliseconds{400};  // mid-run
    auto r = run_experiment(cfg);
    ASSERT_TRUE(r.completed) << r.failure_reason;
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_TRUE(r.failover_happened);
    // Detection at 3 missed 50 ms heartbeats: suspicion within ~[0.15, 0.25] s.
    EXPECT_GE(r.suspected_after_seconds, 0.10);
    EXPECT_LE(r.suspected_after_seconds, 0.30);
    // Paper §6.2/Table 2: sub-second failover at 50 ms HB.
    EXPECT_LE(r.takeover_after_seconds, 1.0);
}

TEST(SttcpFailover, InteractiveContinuesAcrossPrimaryCrash) {
    ExperimentConfig cfg;
    cfg.testbed = fast_options();
    cfg.workload = app::Workload::interactive();
    cfg.crash_primary_at = sim::milliseconds{900};
    auto r = run_experiment(cfg);
    ASSERT_TRUE(r.completed) << r.failure_reason;
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_TRUE(r.failover_happened);
}

TEST(SttcpFailover, BulkTransferContinuesAcrossPrimaryCrash) {
    ExperimentConfig cfg;
    cfg.testbed = fast_options();
    cfg.workload = app::Workload::bulk_mb(1);
    cfg.crash_primary_at = sim::milliseconds{300};
    auto r = run_experiment(cfg);
    ASSERT_TRUE(r.completed) << r.failure_reason;
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_TRUE(r.failover_happened);
    EXPECT_EQ(r.bytes_received, 1u << 20);
}

TEST(SttcpFailover, CrashBetweenRoundsIsAlsoTransparent) {
    ExperimentConfig cfg;
    cfg.testbed = fast_options();
    cfg.workload = app::Workload::echo();
    // Long after the run would normally finish? No — crash very early,
    // before the first response completes the run: 10ms is inside round 1.
    cfg.crash_primary_at = sim::milliseconds{10};
    auto r = run_experiment(cfg);
    ASSERT_TRUE(r.completed) << r.failure_reason;
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_TRUE(r.failover_happened);
}

TEST(SttcpFailover, FailureFreeRunMatchesStandardTcpTiming) {
    // Paper Table 1: ST-TCP adds no measurable overhead when failure-free.
    ExperimentConfig st;
    st.testbed = fast_options();
    st.workload = app::Workload::interactive();
    auto st_result = run_experiment(st);

    ExperimentConfig plain = st;
    plain.testbed.fault_tolerant = false;
    auto plain_result = run_experiment(plain);

    ASSERT_TRUE(st_result.completed);
    ASSERT_TRUE(plain_result.completed);
    EXPECT_EQ(st_result.verify_errors, 0u);
    // Within 1% of each other.
    EXPECT_NEAR(st_result.total_seconds, plain_result.total_seconds,
                0.01 * plain_result.total_seconds);
}

TEST(SttcpFailover, BackupCrashTriggersNonFaultTolerantMode) {
    HubTestbed bed{fast_options()};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(8000);
    auto bl = bed.st_backup->listen(8000);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    app::ClientDriver driver{*bed.client, bed.service_ip(), 8000,
                             app::Workload::interactive()};
    bool done = false;
    driver.start([&] { done = true; });
    bed.sim.schedule_after(sim::milliseconds{300}, [&] { bed.crash_backup(); });
    while (!done && bed.sim.now() < sim::TimePoint{} + sim::minutes{5})
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{100});

    ASSERT_TRUE(driver.result().completed);
    EXPECT_EQ(driver.result().verify_errors, 0u);
    EXPECT_FALSE(bed.st_primary->fault_tolerant_mode());
    EXPECT_EQ(bed.st_primary->retained_bytes(), 0u);  // retention flushed
}

TEST(SttcpTapLoss, GapsAreRecoveredOverControlChannel) {
    // Client->server upload direction is what the backup must not lose.
    // Interactive has 100 x 150 B requests; drop 20% of frames into the
    // backup's NIC and verify the shadow still converges via MissingReq.
    TestbedOptions opts = fast_options();
    opts.tap_loss = 0.2;
    HubTestbed bed{opts};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(8000);
    auto bl = bed.st_backup->listen(8000);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    app::ClientDriver driver{*bed.client, bed.service_ip(), 8000,
                             app::Workload::interactive()};
    bool done = false;
    driver.start([&] { done = true; });
    while (!done && bed.sim.now() < sim::TimePoint{} + sim::minutes{5})
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{100});

    ASSERT_TRUE(driver.result().completed);

    // Backup saw every request despite the lossy tap.
    EXPECT_EQ(bapp.stats().requests_served, 100u);
    EXPECT_GT(bed.st_backup->stats().gaps_detected, 0u);
    EXPECT_GT(bed.st_backup->stats().missing_bytes_recovered, 0u);

    auto pconn = bed.primary->connections();
    auto bconn = bed.backup->connections();
    if (!pconn.empty() && !bconn.empty()) {
        EXPECT_EQ(pconn[0]->rcv_nxt().raw(), bconn[0]->rcv_nxt().raw());
    }
}

TEST(SttcpTapLoss, FailoverWithLossyTapNeedsTheLogger) {
    // Omission + crash double failure (paper §3.2): bytes the primary acked
    // but the backup's tap dropped are unrecoverable from the client — the
    // in-memory packet logger on the LAN masks this. With the logger
    // attached, a crash under 10% tap loss must still fail over cleanly.
    TestbedOptions opts = fast_options();
    opts.tap_loss = 0.1;
    opts.with_packet_logger = true;
    ExperimentConfig cfg;
    cfg.testbed = opts;
    cfg.workload = app::Workload::interactive();
    cfg.crash_primary_at = sim::milliseconds{700};
    auto r = run_experiment(cfg);
    ASSERT_TRUE(r.completed) << r.failure_reason;
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_TRUE(r.failover_happened);
}

} // namespace
} // namespace sttcp
