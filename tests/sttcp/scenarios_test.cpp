// System-level ST-TCP scenarios beyond the single-client happy path:
// concurrent connections, late-join shadowing, post-takeover service,
// whole-simulation determinism.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace sttcp {
namespace {

using harness::HubTestbed;
using harness::TestbedOptions;

TestbedOptions fast_options() {
    TestbedOptions opts;
    opts.sttcp.hb_interval = sim::milliseconds{50};
    opts.sttcp.sync_time = sim::milliseconds{50};
    return opts;
}

struct MultiClientFixture {
    explicit MultiClientFixture(TestbedOptions opts = fast_options()) : bed(opts) {
        pl = bed.st_primary->listen(8000);
        bl = bed.st_backup->listen(8000);
        papp.attach(*pl);
        bapp.attach(*bl);
        bed.st_primary->start();
        bed.st_backup->start();
    }

    // All drivers share the client host (distinct ephemeral ports).
    void add_client(const app::Workload& w) {
        drivers.push_back(
            std::make_unique<app::ClientDriver>(*bed.client, bed.service_ip(), 8000, w));
    }

    bool run_all(sim::Duration limit) {
        std::size_t done = 0;
        for (auto& d : drivers) {
            d->start([&done] { ++done; });
        }
        sim::TimePoint deadline = bed.sim.now() + limit;
        while (done < drivers.size() && bed.sim.now() < deadline)
            bed.sim.run_until(bed.sim.now() + sim::milliseconds{100});
        return done == drivers.size();
    }

    HubTestbed bed;
    app::ResponderApp papp, bapp;
    std::shared_ptr<tcp::TcpListener> pl, bl;
    std::vector<std::unique_ptr<app::ClientDriver>> drivers;
};

TEST(SttcpMultiClient, FiveConcurrentConnectionsShadowed) {
    MultiClientFixture f;
    for (int i = 0; i < 3; ++i) f.add_client(app::Workload::interactive());
    f.add_client(app::Workload::echo());
    f.add_client(app::Workload::bulk_mb(1));
    ASSERT_TRUE(f.run_all(sim::minutes{2}));
    for (auto& d : f.drivers) {
        EXPECT_TRUE(d->result().completed);
        EXPECT_EQ(d->result().verify_errors, 0u);
    }
    // Backup replica executed all five sessions byte-identically.
    EXPECT_EQ(f.bapp.stats().connections, 5u);
    EXPECT_EQ(f.bapp.stats().requests_served, f.papp.stats().requests_served);
}

TEST(SttcpMultiClient, FailoverMigratesEveryConnectionAtOnce) {
    MultiClientFixture f;
    for (int i = 0; i < 4; ++i) f.add_client(app::Workload::interactive());
    f.bed.sim.schedule_after(sim::milliseconds{700}, [&f] { f.bed.crash_primary(); });
    ASSERT_TRUE(f.run_all(sim::minutes{2}));
    EXPECT_TRUE(f.bed.st_backup->has_taken_over());
    for (auto& d : f.drivers) {
        EXPECT_TRUE(d->result().completed);
        EXPECT_EQ(d->result().verify_errors, 0u);
    }
}

TEST(SttcpMultiClient, NewConnectionAfterTakeoverIsServedByBackup) {
    MultiClientFixture f;
    f.add_client(app::Workload::echo());
    f.bed.sim.schedule_after(sim::milliseconds{300}, [&f] { f.bed.crash_primary(); });
    ASSERT_TRUE(f.run_all(sim::minutes{1}));
    ASSERT_TRUE(f.bed.st_backup->has_taken_over());

    // A brand-new client connects to the same service IP; the backup (now
    // primary) serves it as plain TCP.
    app::ClientDriver late{*f.bed.client, f.bed.service_ip(), 8000,
                           app::Workload::interactive()};
    bool done = false;
    late.start([&done] { done = true; });
    sim::TimePoint deadline = f.bed.sim.now() + sim::minutes{1};
    while (!done && f.bed.sim.now() < deadline)
        f.bed.sim.run_until(f.bed.sim.now() + sim::milliseconds{100});
    ASSERT_TRUE(late.result().completed);
    EXPECT_EQ(late.result().verify_errors, 0u);
}

// Blinds the backup's tap for a window that covers the client's handshake
// but not the (already-established) control channel: the primary/backup
// heartbeat exchange needs its ARP done first, and the window must stay
// shorter than the 3xHB detection timeout.
void blind_handshake_window(MultiClientFixture& f) {
    f.bed.sim.schedule_after(sim::milliseconds{195}, [&f] {
        f.bed.backup_link->set_loss_toward(*f.bed.backup_nic, 1.0);
    });
    f.bed.sim.schedule_after(sim::milliseconds{260}, [&f] {
        f.bed.backup_link->set_loss_toward(*f.bed.backup_nic, 0.0);
    });
}

TEST(SttcpLateJoin, BackupRebuildsShadowAfterMissingHandshake) {
    // Deterministically blind the backup's tap during the handshake, then
    // restore it: the backup must late-join via StateReq/StateReply and
    // catch up through MissingReq replay.
    MultiClientFixture f;
    blind_handshake_window(f);
    f.add_client(app::Workload::interactive());
    bool started = false;
    std::size_t done = 0;
    f.bed.sim.schedule_after(sim::milliseconds{200}, [&] {
        started = true;
        f.drivers[0]->start([&done] { ++done; });
    });
    while (done < 1 && f.bed.sim.now() < sim::TimePoint{} + sim::minutes{2})
        f.bed.sim.run_until(f.bed.sim.now() + sim::milliseconds{100});
    ASSERT_TRUE(started);
    ASSERT_TRUE(f.drivers[0]->result().completed);
    EXPECT_EQ(f.bed.st_backup->stats().late_joins, 1u);
    // The replayed replica served the full session.
    EXPECT_EQ(f.bapp.stats().requests_served, 100u);
}

TEST(SttcpLateJoin, LateJoinedShadowSurvivesFailover) {
    MultiClientFixture f;
    blind_handshake_window(f);
    f.add_client(app::Workload::interactive());
    std::size_t done = 0;
    f.bed.sim.schedule_after(sim::milliseconds{200}, [&] {
        f.drivers[0]->start([&done] { ++done; });
    });
    f.bed.sim.schedule_after(sim::milliseconds{1100}, [&f] { f.bed.crash_primary(); });
    while (done < 1 && f.bed.sim.now() < sim::TimePoint{} + sim::minutes{2})
        f.bed.sim.run_until(f.bed.sim.now() + sim::milliseconds{100});
    EXPECT_EQ(f.bed.st_backup->stats().late_joins, 1u);
    EXPECT_TRUE(f.bed.st_backup->has_taken_over());
    ASSERT_TRUE(f.drivers[0]->result().completed);
    EXPECT_EQ(f.drivers[0]->result().verify_errors, 0u);
}

TEST(SttcpDeterminism, SameSeedSameTimeline) {
    auto run_once = [](std::uint64_t seed) {
        harness::ExperimentConfig cfg;
        cfg.testbed = fast_options();
        cfg.testbed.seed = seed;
        cfg.testbed.tap_loss = 0.05;  // exercise the stochastic paths too
        cfg.workload = app::Workload::interactive();
        cfg.crash_primary_at = sim::milliseconds{800};
        return harness::run_experiment(cfg);
    };
    auto a = run_once(1234);
    auto b = run_once(1234);
    auto c = run_once(5678);
    ASSERT_TRUE(a.completed);
    EXPECT_EQ(a.total_seconds, b.total_seconds);
    EXPECT_EQ(a.takeover_after_seconds, b.takeover_after_seconds);
    EXPECT_EQ(a.backup_stats.gaps_detected, b.backup_stats.gaps_detected);
    EXPECT_EQ(a.backup_stats.missing_bytes_recovered, b.backup_stats.missing_bytes_recovered);
    // A different seed shifts the stochastic details (loss pattern).
    EXPECT_TRUE(a.backup_stats.gaps_detected != c.backup_stats.gaps_detected ||
                a.total_seconds != c.total_seconds);
}

TEST(SttcpRetention, PrimaryRetainsUntilBackupAcks) {
    // Slow the backup's acks (large SyncTime, threshold off) and watch the
    // primary's second buffer hold client bytes until an ack releases them.
    TestbedOptions opts = fast_options();
    opts.sttcp.sync_time = sim::milliseconds{400};
    opts.sttcp.ack_threshold_bytes = SIZE_MAX;
    MultiClientFixture f{opts};
    f.add_client(app::Workload::upload_kb(16, 1));

    std::size_t retained_peak = 0;
    std::function<void()> probe = [&]() {
        retained_peak = std::max(retained_peak, f.bed.st_primary->retained_bytes());
        if (f.bed.sim.now() < sim::TimePoint{} + sim::seconds{2})
            f.bed.sim.schedule_after(sim::milliseconds{10}, probe);
    };
    f.bed.sim.schedule_after(sim::milliseconds{10}, probe);

    ASSERT_TRUE(f.run_all(sim::minutes{1}));
    EXPECT_GT(retained_peak, 0u);
    EXPECT_GT(f.bed.st_primary->stats().bytes_released, 0u);
    // Everything was eventually released.
    EXPECT_EQ(f.bed.st_primary->retained_bytes(), 0u);
}

TEST(SttcpControlChannel, AcksFollowTheThresholdRule) {
    // With X = 4 KB, a 64 KB upload must produce roughly 16 threshold acks
    // (plus SyncTime keepalives).
    TestbedOptions opts = fast_options();
    opts.sttcp.ack_threshold_bytes = 4 * 1024;
    opts.sttcp.sync_time = sim::seconds{5};  // effectively disable the timer
    MultiClientFixture f{opts};
    f.add_client(app::Workload::upload_kb(64, 1));
    ASSERT_TRUE(f.run_all(sim::minutes{1}));
    const auto& stats = f.bed.st_backup->stats();
    EXPECT_GE(stats.acks_sent, 14u);
    EXPECT_LE(stats.acks_sent, 24u);
}

} // namespace
} // namespace sttcp
