// Chaos tests: loss + jitter-induced reordering on every link, applied to
// plain TCP and to the full ST-TCP protocol with a mid-run crash. These are
// the adversarial-network property tests: whatever the network does, the
// byte stream the client verifies must be exact.
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "harness/experiment.hpp"

namespace sttcp {
namespace {

using testing::TwoHostLan;
using testing::make_payload;

// ---------------------------------------------------------- plain TCP chaos

struct TcpChaosParams {
    std::uint64_t seed;
    double loss;
    int jitter_ms;
};

class TcpChaos : public ::testing::TestWithParam<TcpChaosParams> {};

TEST_P(TcpChaos, BulkTransferIsExactUnderLossAndReordering) {
    auto p = GetParam();
    net::LinkConfig link;
    link.loss_probability = p.loss;
    link.jitter = sim::milliseconds{p.jitter_ms};
    tcp::TcpConfig cfg;
    TwoHostLan lan(link, cfg);
    // Re-seed for the parameterized run.
    lan.sim.rng().reseed(p.seed);

    auto listener = lan.server.tcp_listen(80);
    std::shared_ptr<tcp::TcpConnection> sconn;
    util::Bytes received;
    listener->set_accept_handler([&](std::shared_ptr<tcp::TcpConnection> c) {
        sconn = c;
        tcp::TcpConnection::Callbacks cbs;
        cbs.on_readable = [&received, &sconn]() {
            std::uint8_t buf[8192];
            while (std::size_t n = sconn->read(buf))
                received.insert(received.end(), buf, buf + n);
        };
        sconn->set_callbacks(std::move(cbs));
    });

    auto conn = lan.client.tcp_connect(lan.server_ip, 80);
    util::Bytes data = make_payload(192 * 1024, static_cast<std::uint8_t>(p.seed));
    std::size_t offset = 0;
    tcp::TcpConnection::Callbacks cbs;
    auto pump = [&]() {
        while (offset < data.size()) {
            std::size_t n =
                conn->send(util::ByteView{data.data() + offset, data.size() - offset});
            if (n == 0) break;
            offset += n;
        }
    };
    cbs.on_established = pump;
    cbs.on_writable = pump;
    conn->set_callbacks(std::move(cbs));

    lan.sim.run_until(sim::TimePoint{} + sim::minutes{10});
    ASSERT_EQ(received.size(), data.size())
        << "seed=" << p.seed << " loss=" << p.loss << " jitter=" << p.jitter_ms;
    EXPECT_EQ(received, data);
    if (p.jitter_ms > 0) {
        // Reordering must actually have happened for this to test anything.
        EXPECT_TRUE(sconn->stats().dup_acks_in > 0 || conn->stats().retransmits > 0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    LossAndJitter, TcpChaos,
    ::testing::Values(TcpChaosParams{1, 0.00, 5}, TcpChaosParams{2, 0.05, 0},
                      TcpChaosParams{3, 0.05, 5}, TcpChaosParams{4, 0.10, 10},
                      TcpChaosParams{5, 0.02, 20}),
    [](const ::testing::TestParamInfo<TcpChaosParams>& info) {
        return "seed" + std::to_string(info.param.seed) + "_loss" +
               std::to_string(static_cast<int>(info.param.loss * 100)) + "_jit" +
               std::to_string(info.param.jitter_ms);
    });

// ------------------------------------------------------------ ST-TCP chaos

class SttcpChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SttcpChaos, FailoverUnderTapLossAndJitter) {
    harness::ExperimentConfig cfg;
    cfg.testbed.seed = GetParam();
    cfg.testbed.sttcp.hb_interval = sim::milliseconds{50};
    cfg.testbed.sttcp.sync_time = sim::milliseconds{50};
    cfg.testbed.tap_loss = 0.08;
    cfg.testbed.with_packet_logger = true;  // double failures will occur
    cfg.workload = app::Workload::interactive();
    cfg.crash_primary_at = sim::milliseconds{400 + 100 * (GetParam() % 7)};
    cfg.time_limit = sim::minutes{5};
    auto r = harness::run_experiment(cfg);
    ASSERT_TRUE(r.completed) << r.failure_reason << " seed=" << GetParam();
    EXPECT_EQ(r.verify_errors, 0u) << "seed=" << GetParam();
    EXPECT_TRUE(r.failover_happened);
    EXPECT_EQ(r.bytes_received, 100u * 10240);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SttcpChaos, ::testing::Range<std::uint64_t>(1, 9));

} // namespace
} // namespace sttcp
