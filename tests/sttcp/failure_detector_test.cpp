// FailureDetector boundaries (paper §4.4: "missing three consecutive HB").
//
// The detector's deadline arithmetic is the line between availability
// (detect real crashes fast) and stability (never fence a live primary), so
// the exact boundary — a heartbeat landing ON the 3-interval tick — and the
// jitter tolerance below it are pinned here.
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "app/client_driver.hpp"
#include "app/responder.hpp"
#include "harness/testbed.hpp"
#include "sttcp/failure_detector.hpp"

namespace sttcp {
namespace {

constexpr sim::Duration kI = sim::milliseconds{50};
const sim::TimePoint kT0{};

struct FailureDetectorDeadline : ::testing::Test {
    sim::Simulation sim;
    core::FailureDetector det{sim, kI, 3};
    int suspect_calls = 0;

    FailureDetectorDeadline() {
        det.set_on_suspect([this]() { ++suspect_calls; });
    }
    void heartbeat_at(std::int64_t ms) {
        sim.schedule_at(kT0 + sim::milliseconds{ms}, [this]() { det.on_heartbeat(); });
    }
};

TEST_F(FailureDetectorDeadline, SilenceSuspectsExactlyAtThreeIntervals) {
    det.start();
    sim.run_until(kT0 + sim::milliseconds{149});
    EXPECT_FALSE(det.suspected());
    sim.run_until(kT0 + sim::milliseconds{151});
    ASSERT_TRUE(det.suspected());
    EXPECT_EQ(det.suspected_at(), kT0 + 3 * kI);
    EXPECT_EQ(suspect_calls, 1);
}

TEST_F(FailureDetectorDeadline, HeartbeatJustBeforeDeadlineResetsIt) {
    det.start();
    heartbeat_at(149);  // inside the third interval, before the 150ms check
    sim.run_until(kT0 + sim::milliseconds{400});
    ASSERT_TRUE(det.suspected());
    // New deadline: 149ms + 3 intervals, observed at the next sample tick
    // (200, 250, 300ms — 299 < 149+150, so the 300ms tick fires it).
    EXPECT_EQ(det.suspected_at(), kT0 + sim::milliseconds{300});
}

TEST_F(FailureDetectorDeadline, HeartbeatExactlyOnTheDeadlineTickWinsTheTie) {
    // Simultaneous events run in FIFO enqueue order. The heartbeat here was
    // enqueued before the 150ms sample (which only enters the queue at the
    // 100ms check), so it refreshes last_heard first and the deadline tick
    // sees a live primary. Pinned so a queue reordering that flips this
    // boundary — silently making detection one tick more aggressive —
    // fails loudly.
    det.start();
    heartbeat_at(150);
    sim.run_until(kT0 + sim::milliseconds{151});
    EXPECT_FALSE(det.suspected());
    sim.run_until(kT0 + sim::milliseconds{301});
    ASSERT_TRUE(det.suspected());
    EXPECT_EQ(det.suspected_at(), kT0 + sim::milliseconds{300});
}

TEST_F(FailureDetectorDeadline, HeavyJitterBelowDeadlineNeverSuspects) {
    // Heartbeats nominally every interval but displaced by up to ±40% —
    // consecutive gaps up to ~1.8 intervals, always under the 3-interval
    // deadline. The detector must ride it out.
    det.start();
    std::int64_t t = 0;
    sim::Random rng{7};
    for (int i = 0; i < 200; ++i) {
        t += 50;
        std::int64_t displaced = t + static_cast<std::int64_t>(rng.range(-20, 20));
        heartbeat_at(displaced);
    }
    sim.run_until(kT0 + sim::milliseconds{200 * 50});
    EXPECT_FALSE(det.suspected());
    EXPECT_EQ(suspect_calls, 0);
}

TEST_F(FailureDetectorDeadline, DeadHostDetectorUnschedulesItself) {
    bool alive = true;
    det.set_alive_predicate([&alive]() { return alive; });
    det.start();
    sim.schedule_at(kT0 + sim::milliseconds{60}, [&alive]() { alive = false; });
    sim.run();
    // Silence would have suspected at 150ms, but the host died first: a
    // detector on a dead machine runs nothing.
    EXPECT_FALSE(det.suspected());
}

// ------------------------------------------------- engine-level blackout

// A control-channel outage SHORTER than the suspicion deadline must not
// trigger a takeover: the backup misses two heartbeats, the third arrives
// in time, and the run completes with the primary alive throughout.
TEST(FailureDetectorEngine, ControlBlackoutUnderDeadlineCausesNoFalseTakeover) {
    harness::TestbedOptions opt;
    opt.seed = 5;
    opt.sttcp.hb_interval = sim::milliseconds{50};
    opt.sttcp.sync_time = sim::milliseconds{50};
    harness::HubTestbed bed{opt};

    // Black out the backup's hub port in both directions for 2.2 heartbeat
    // intervals: inbound HBs AND the backup's own outbound HBs vanish, so
    // both detectors are stressed but neither may cross its deadline.
    bed.backup_link->schedule_blackout(bed.sim.now() + sim::milliseconds{300},
                                       sim::milliseconds{110});

    app::ResponderApp primary_app, backup_app;
    auto primary_listener = bed.st_primary->listen(8000);
    auto backup_listener = bed.st_backup->listen(8000);
    primary_app.attach(*primary_listener);
    backup_app.attach(*backup_listener);
    bed.st_primary->start();
    bed.st_backup->start();

    app::ClientDriver driver{*bed.client, bed.service_ip(), 8000,
                             app::Workload::interactive()};
    bool done = false;
    driver.start([&]() { done = true; });

    sim::TimePoint limit = bed.sim.now() + sim::minutes{5};
    while (!done && bed.sim.now() < limit)
        bed.sim.run_until(std::min(limit, bed.sim.now() + sim::milliseconds{100}));

    const auto& r = driver.result();
    ASSERT_TRUE(r.completed) << r.failure_reason;
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_FALSE(bed.st_backup->has_taken_over());
    EXPECT_TRUE(bed.primary_node->powered());  // nobody fenced anybody
    EXPECT_GT(bed.backup_link->stats().frames_dropped_blackout, 0u);
}

} // namespace
} // namespace sttcp
