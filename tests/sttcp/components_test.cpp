// Unit tests of ST-TCP's building blocks: control-channel wire protocol,
// second receive buffer, failure detector.
#include <gtest/gtest.h>

#include "sttcp/control_messages.hpp"
#include "sttcp/failure_detector.hpp"
#include "sttcp/retention.hpp"

namespace sttcp::core {
namespace {

using util::Seq32;

ConnId test_conn() {
    return ConnId{net::Ipv4Address{10, 0, 0, 100}, 8000, net::Ipv4Address{10, 0, 0, 10},
                  49152};
}

// ------------------------------------------------------- ControlMessage

class ControlRoundTrip : public ::testing::TestWithParam<ControlType> {};

TEST_P(ControlRoundTrip, PreservesFields) {
    ControlMessage m;
    m.type = GetParam();
    m.conn = test_conn();
    m.seq = Seq32{0xdeadbeef};
    m.seq_end = Seq32{0xfeedface};
    if (GetParam() == ControlType::kMissingReply) m.payload = {1, 2, 3, 4, 5};
    auto parsed = ControlMessage::parse(m.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type, m.type);
    EXPECT_EQ(parsed->conn, m.conn);
    EXPECT_EQ(parsed->seq, m.seq);
    EXPECT_EQ(parsed->seq_end, m.seq_end);
    EXPECT_EQ(parsed->payload, m.payload);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ControlRoundTrip,
                         ::testing::Values(ControlType::kHeartbeat, ControlType::kBackupAck,
                                           ControlType::kMissingReq,
                                           ControlType::kMissingReply,
                                           ControlType::kStateReq,
                                           ControlType::kStateReply));

TEST(ControlMessage, RejectsBadMagicAndTypes) {
    ControlMessage m;
    util::Bytes raw = m.serialize();
    util::Bytes bad_magic = raw;
    bad_magic[0] ^= 0xff;
    EXPECT_FALSE(ControlMessage::parse(bad_magic).has_value());
    util::Bytes bad_type = raw;
    bad_type[1] = 99;
    EXPECT_FALSE(ControlMessage::parse(bad_type).has_value());
    util::Bytes truncated(raw.begin(), raw.begin() + 5);
    EXPECT_FALSE(ControlMessage::parse(truncated).has_value());
    EXPECT_FALSE(ControlMessage::parse({}).has_value());
}

TEST(ControlMessage, RejectsPayloadLengthLie) {
    ControlMessage m;
    m.type = ControlType::kMissingReply;
    m.payload = {1, 2, 3};
    util::Bytes raw = m.serialize();
    raw.pop_back();  // payload shorter than the declared length
    EXPECT_FALSE(ControlMessage::parse(raw).has_value());
}

TEST(ControlMessage, StateReplyHelpers) {
    ConnState state{Seq32{100}, Seq32{250}, Seq32{0xabcdef01}};
    ControlMessage m = ControlMessage::make_state_reply(test_conn(), state);
    auto parsed = ControlMessage::parse(m.serialize());
    ASSERT_TRUE(parsed.has_value());
    auto s = parsed->state_reply();
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->first_available_seq, state.first_available_seq);
    EXPECT_EQ(s->rcv_nxt, state.rcv_nxt);
    EXPECT_EQ(s->iss, state.iss);
    // A non-state message yields nothing.
    ControlMessage hb;
    EXPECT_FALSE(hb.state_reply().has_value());
}

// -------------------------------------------------- SecondReceiveBuffer

util::Bytes pattern(std::size_t n, std::uint8_t base = 0) {
    util::Bytes b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(base + i);
    return b;
}

TEST(SecondReceiveBuffer, RetainsConsumedBytesUntilAcked) {
    SecondReceiveBuffer buf(32);
    EXPECT_EQ(buf.max_consumable(), 32u);
    buf.on_consumed(Seq32{1000}, pattern(10));
    EXPECT_EQ(buf.size(), 10u);
    EXPECT_EQ(buf.max_consumable(), 22u);
    EXPECT_EQ(buf.front_seq(), Seq32{1000});

    // Backup acked through byte 1004: five bytes released.
    EXPECT_EQ(buf.release_through(Seq32{1004}), 5u);
    EXPECT_EQ(buf.size(), 5u);
    EXPECT_EQ(buf.front_seq(), Seq32{1005});
    // Re-acking the same point releases nothing.
    EXPECT_EQ(buf.release_through(Seq32{1004}), 0u);
    // Acking beyond what is held clamps.
    EXPECT_EQ(buf.release_through(Seq32{2000}), 5u);
    EXPECT_EQ(buf.size(), 0u);
}

TEST(SecondReceiveBuffer, ContiguousAppends) {
    SecondReceiveBuffer buf(64);
    buf.on_consumed(Seq32{0}, pattern(16, 0));
    buf.on_consumed(Seq32{16}, pattern(16, 16));
    EXPECT_EQ(buf.size(), 32u);
    std::uint8_t out[32];
    EXPECT_EQ(buf.copy_from(Seq32{0}, out), 32u);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(out[i], i);
    // Mid-range fetch.
    EXPECT_EQ(buf.copy_from(Seq32{20}, std::span<std::uint8_t>{out, 8}), 8u);
    EXPECT_EQ(out[0], 20);
    // Out-of-range fetches.
    EXPECT_EQ(buf.copy_from(Seq32{32}, out), 0u);
}

TEST(SecondReceiveBuffer, ThrottlesWhenFull) {
    SecondReceiveBuffer buf(16);
    buf.on_consumed(Seq32{0}, pattern(16));
    EXPECT_EQ(buf.max_consumable(), 0u);  // application reads must stall
    buf.release_through(Seq32{7});
    EXPECT_EQ(buf.max_consumable(), 8u);
}

TEST(SecondReceiveBuffer, DisableFlushesAndStopsRetaining) {
    SecondReceiveBuffer buf(16);
    buf.on_consumed(Seq32{0}, pattern(10));
    buf.disable();
    EXPECT_FALSE(buf.enabled());
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.max_consumable(), SIZE_MAX);
    buf.on_consumed(Seq32{10}, pattern(10));
    EXPECT_EQ(buf.size(), 0u);
}

TEST(SecondReceiveBuffer, WorksAcrossSequenceWrap) {
    SecondReceiveBuffer buf(64);
    buf.on_consumed(Seq32{0xfffffff8u}, pattern(16));
    EXPECT_EQ(buf.release_through(Seq32{0x3u}), 12u);  // through wrap
    EXPECT_EQ(buf.front_seq(), Seq32{0x4u});
    std::uint8_t out[4];
    EXPECT_EQ(buf.copy_from(Seq32{0x4u}, out), 4u);
    EXPECT_EQ(out[0], 12);
}

// ------------------------------------------------------ FailureDetector

struct DetectorFixture : ::testing::Test {
    sim::Simulation sim;
};

TEST_F(DetectorFixture, SuspectsAfterThreeMissedIntervals) {
    FailureDetector fd{sim, sim::milliseconds{100}, 3};
    bool suspected = false;
    fd.set_on_suspect([&] { suspected = true; });
    fd.start();
    // Heartbeats arriving every 100 ms keep it quiet.
    for (int i = 1; i <= 5; ++i) {
        sim.schedule_at(sim::TimePoint{} + sim::milliseconds{100 * i}, [&] { fd.on_heartbeat(); });
    }
    sim.run_until(sim::TimePoint{} + sim::milliseconds{550});
    EXPECT_FALSE(suspected);
    // Silence from t=500: suspicion lands in [800, 900].
    sim.run_until(sim::TimePoint{} + sim::milliseconds{790});
    EXPECT_FALSE(suspected);
    sim.run_until(sim::TimePoint{} + sim::milliseconds{910});
    EXPECT_TRUE(suspected);
    EXPECT_TRUE(fd.suspected());
    double at = sim::to_seconds(fd.suspected_at());
    EXPECT_GE(at, 0.79);
    EXPECT_LE(at, 0.91);
}

TEST_F(DetectorFixture, StopPreventsSuspicion) {
    FailureDetector fd{sim, sim::milliseconds{50}, 3};
    bool suspected = false;
    fd.set_on_suspect([&] { suspected = true; });
    fd.start();
    fd.stop();
    sim.run_until(sim::TimePoint{} + sim::seconds{5});
    EXPECT_FALSE(suspected);
}

TEST_F(DetectorFixture, AlivePredicateGatesChecks) {
    // Crash semantics: a detector on a dead machine never fires (this is
    // the bug class where a dead primary would otherwise fence the live
    // backup).
    FailureDetector fd{sim, sim::milliseconds{50}, 3};
    bool alive = true;
    bool suspected = false;
    fd.set_alive_predicate([&] { return alive; });
    fd.set_on_suspect([&] { suspected = true; });
    fd.start();
    sim.schedule_at(sim::TimePoint{} + sim::milliseconds{60}, [&] { alive = false; });
    sim.run_until(sim::TimePoint{} + sim::seconds{5});
    EXPECT_FALSE(suspected);
}

TEST_F(DetectorFixture, FiresOnlyOnce) {
    FailureDetector fd{sim, sim::milliseconds{50}, 3};
    int count = 0;
    fd.set_on_suspect([&] { ++count; });
    fd.start();
    sim.run_until(sim::TimePoint{} + sim::seconds{5});
    EXPECT_EQ(count, 1);
}

TEST_F(DetectorFixture, RestartClearsSuspicion) {
    FailureDetector fd{sim, sim::milliseconds{50}, 3};
    int count = 0;
    fd.set_on_suspect([&] { ++count; });
    fd.start();
    sim.run_until(sim::TimePoint{} + sim::seconds{1});
    EXPECT_EQ(count, 1);
    fd.start();  // re-arm
    EXPECT_FALSE(fd.suspected());
    sim.run_until(sim.now() + sim::seconds{1});
    EXPECT_EQ(count, 2);
}

} // namespace
} // namespace sttcp::core
