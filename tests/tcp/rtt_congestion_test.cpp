// RttEstimator and RenoCongestion: the timing/throughput machinery whose
// Linux parameters the paper's failover analysis depends on (§6.2).
#include <gtest/gtest.h>

#include "tcp/congestion.hpp"
#include "tcp/rtt_estimator.hpp"

namespace sttcp::tcp {
namespace {

RttEstimator make_rtt() {
    return RttEstimator{sim::seconds{1}, sim::milliseconds{200}, sim::minutes{2}};
}

TEST(RttEstimator, InitialRtoBeforeAnySample) {
    auto rtt = make_rtt();
    EXPECT_FALSE(rtt.has_sample());
    EXPECT_EQ(rtt.rto(), sim::seconds{1});
}

TEST(RttEstimator, FirstSampleSetsSrttAndVariance) {
    auto rtt = make_rtt();
    rtt.sample(sim::milliseconds{100});
    EXPECT_EQ(rtt.srtt(), sim::milliseconds{100});
    EXPECT_EQ(rtt.rttvar(), sim::milliseconds{50});
    // RTO = srtt + 4*rttvar = 300ms, above the 200ms floor.
    EXPECT_EQ(rtt.rto(), sim::milliseconds{300});
}

TEST(RttEstimator, ConvergesOnStableRtt) {
    auto rtt = make_rtt();
    for (int i = 0; i < 50; ++i) rtt.sample(sim::milliseconds{80});
    EXPECT_NEAR(sim::to_seconds(rtt.srtt()), 0.080, 0.002);
    // Variance decays; RTO hits the Linux 200ms floor (paper §6.2).
    EXPECT_EQ(rtt.rto(), sim::milliseconds{200});
}

TEST(RttEstimator, RtoFloorsAt200ms) {
    auto rtt = make_rtt();
    for (int i = 0; i < 20; ++i) rtt.sample(sim::microseconds{500});
    EXPECT_EQ(rtt.rto(), sim::milliseconds{200});
}

TEST(RttEstimator, BackoffDoublesUpToCap) {
    auto rtt = make_rtt();
    rtt.sample(sim::milliseconds{100});  // RTO 300ms
    sim::Duration prev = rtt.rto();
    for (int i = 0; i < 8; ++i) {
        rtt.backoff();
        EXPECT_EQ(rtt.rto(), std::min(2 * prev, sim::Duration{sim::minutes{2}}));
        prev = rtt.rto();
    }
    // Paper: "increased by a factor of two with every retransmission...
    // upper bound 2 min".
    for (int i = 0; i < 20; ++i) rtt.backoff();
    EXPECT_EQ(rtt.rto(), sim::minutes{2});
}

TEST(RttEstimator, NewSampleResetsBackoff) {
    auto rtt = make_rtt();
    rtt.sample(sim::milliseconds{100});
    rtt.backoff();
    rtt.backoff();
    EXPECT_EQ(rtt.backoff_count(), 2);
    rtt.sample(sim::milliseconds{100});
    EXPECT_EQ(rtt.backoff_count(), 0);
    // Second identical sample: rttvar decayed to 37.5ms -> RTO = 250ms.
    EXPECT_EQ(rtt.rto(), sim::milliseconds{250});
}

TEST(RenoCongestion, StartsInSlowStartWithTwoMss) {
    RenoCongestion cc{1460};
    EXPECT_TRUE(cc.in_slow_start());
    EXPECT_EQ(cc.cwnd(), 2u * 1460);
}

TEST(RenoCongestion, SlowStartDoublesPerRtt) {
    RenoCongestion cc{1000};
    // Acking a full window's worth grows cwnd by one MSS per MSS acked.
    std::uint32_t before = cc.cwnd();
    cc.on_ack(1000, before);
    cc.on_ack(1000, before);
    EXPECT_EQ(cc.cwnd(), before + 2000);
}

TEST(RenoCongestion, CongestionAvoidanceIsLinear) {
    RenoCongestion cc{1000};
    cc.on_timeout(10000);         // ssthresh = 5000, cwnd = 1000
    for (int i = 0; i < 8; ++i) cc.on_ack(1000, 4000);  // grow past ssthresh
    ASSERT_FALSE(cc.in_slow_start());
    std::uint32_t w = cc.cwnd();
    cc.on_ack(1000, w);
    // ~ mss*mss/cwnd per ack: far less than one MSS.
    EXPECT_LT(cc.cwnd() - w, 1000u);
    EXPECT_GE(cc.cwnd() - w, 1u);
}

TEST(RenoCongestion, TimeoutCollapsesToOneMss) {
    RenoCongestion cc{1460};
    for (int i = 0; i < 20; ++i) cc.on_ack(1460, 10 * 1460);
    cc.on_timeout(20 * 1460);
    EXPECT_EQ(cc.cwnd(), 1460u);
    EXPECT_EQ(cc.ssthresh(), 10u * 1460);
    EXPECT_TRUE(cc.in_slow_start());
}

TEST(RenoCongestion, TimeoutSsthreshFloorsAtTwoMss) {
    RenoCongestion cc{1460};
    cc.on_timeout(1460);
    EXPECT_EQ(cc.ssthresh(), 2u * 1460);
}

TEST(RenoCongestion, FastRetransmitHalvesAndInflates) {
    RenoCongestion cc{1000};
    for (int i = 0; i < 20; ++i) cc.on_ack(1000, 10000);
    cc.on_fast_retransmit(10000);
    EXPECT_TRUE(cc.in_fast_recovery());
    EXPECT_EQ(cc.ssthresh(), 5000u);
    EXPECT_EQ(cc.cwnd(), 5000u + 3000);
    cc.on_dup_ack_in_recovery();
    EXPECT_EQ(cc.cwnd(), 5000u + 4000);
    cc.exit_fast_recovery();
    EXPECT_FALSE(cc.in_fast_recovery());
    EXPECT_EQ(cc.cwnd(), 5000u);
}

TEST(RenoCongestion, IdleRestartShrinksToInitialWindow) {
    RenoCongestion cc{1000};
    for (int i = 0; i < 30; ++i) cc.on_ack(1000, 10000);
    cc.on_idle_restart();
    EXPECT_EQ(cc.cwnd(), 2000u);
    // Does not grow a small window.
    cc.on_timeout(1000);
    cc.on_idle_restart();
    EXPECT_EQ(cc.cwnd(), 1000u);
}

} // namespace
} // namespace sttcp::tcp
