// End-to-end TCP tests over the simulated network: handshake, bidirectional
// transfer, loss recovery, teardown, RST behaviour.
#include <gtest/gtest.h>

#include "../test_support.hpp"

namespace sttcp {
namespace {

using testing::TwoHostLan;
using testing::make_payload;

struct EchoFixture {
    TwoHostLan lan;
    std::shared_ptr<tcp::TcpListener> listener;
    std::shared_ptr<tcp::TcpConnection> server_conn;
    std::shared_ptr<tcp::TcpConnection> client_conn;
    util::Bytes server_received;
    util::Bytes client_received;
    bool client_established = false;
    bool server_saw_fin = false;
    std::string client_close_reason;

    explicit EchoFixture(net::LinkConfig link = {}, tcp::TcpConfig tcp = {})
        : lan(link, tcp) {
        listener = lan.server.tcp_listen(7);
        listener->set_accept_handler([this](std::shared_ptr<tcp::TcpConnection> conn) {
            server_conn = conn;
            tcp::TcpConnection::Callbacks cbs;
            cbs.on_readable = [this]() { drain_server(); };
            cbs.on_remote_fin = [this]() { server_saw_fin = true; };
            conn->set_callbacks(std::move(cbs));
        });
    }

    void drain_server() {
        std::uint8_t buf[4096];
        while (std::size_t n = server_conn->read(buf)) {
            server_received.insert(server_received.end(), buf, buf + n);
        }
    }

    void connect() {
        client_conn = lan.client.tcp_connect(lan.server_ip, 7);
        tcp::TcpConnection::Callbacks cbs;
        cbs.on_established = [this]() { client_established = true; };
        cbs.on_readable = [this]() {
            std::uint8_t buf[4096];
            while (std::size_t n = client_conn->read(buf)) {
                client_received.insert(client_received.end(), buf, buf + n);
            }
        };
        cbs.on_closed = [this](const std::string& r) { client_close_reason = r; };
        client_conn->set_callbacks(std::move(cbs));
    }
};

TEST(TcpEndToEnd, ThreeWayHandshake) {
    EchoFixture f;
    f.connect();
    f.lan.sim.run_for(sim::seconds{1});
    EXPECT_TRUE(f.client_established);
    ASSERT_NE(f.server_conn, nullptr);
    EXPECT_EQ(f.client_conn->state(), tcp::TcpState::kEstablished);
    EXPECT_EQ(f.server_conn->state(), tcp::TcpState::kEstablished);
}

TEST(TcpEndToEnd, SmallTransferClientToServer) {
    EchoFixture f;
    f.connect();
    f.lan.sim.run_for(sim::seconds{1});
    util::Bytes msg = make_payload(150);
    EXPECT_EQ(f.client_conn->send(msg), msg.size());
    f.lan.sim.run_for(sim::seconds{1});
    EXPECT_EQ(f.server_received, msg);
}

TEST(TcpEndToEnd, BulkTransferServerToClient) {
    EchoFixture f;
    f.connect();
    f.lan.sim.run_for(sim::seconds{1});
    // Push 1 MB through a 64 KB send buffer, refilling on writable.
    const std::size_t total = 1 << 20;
    util::Bytes data = make_payload(total);
    std::size_t offset = 0;
    auto pump = [&]() {
        while (offset < total) {
            std::size_t n = f.server_conn->send(
                util::ByteView{data.data() + offset, std::min<std::size_t>(8192, total - offset)});
            if (n == 0) break;
            offset += n;
        }
    };
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_writable = pump;
    f.server_conn->set_callbacks(std::move(cbs));
    pump();
    f.lan.sim.run_for(sim::seconds{30});
    ASSERT_EQ(f.client_received.size(), total);
    EXPECT_EQ(f.client_received, data);
}

TEST(TcpEndToEnd, BulkTransferSurvivesLoss) {
    net::LinkConfig lossy;
    lossy.loss_probability = 0.02;
    EchoFixture f(lossy);
    f.connect();
    f.lan.sim.run_for(sim::seconds{5});
    ASSERT_NE(f.server_conn, nullptr);
    const std::size_t total = 256 * 1024;
    util::Bytes data = make_payload(total, 7);
    std::size_t offset = 0;
    auto pump = [&]() {
        while (offset < total) {
            std::size_t n = f.server_conn->send(
                util::ByteView{data.data() + offset, std::min<std::size_t>(8192, total - offset)});
            if (n == 0) break;
            offset += n;
        }
    };
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_writable = pump;
    f.server_conn->set_callbacks(std::move(cbs));
    pump();
    f.lan.sim.run_for(sim::minutes{5});
    ASSERT_EQ(f.client_received.size(), total);
    EXPECT_EQ(f.client_received, data);
    EXPECT_GT(f.server_conn ? f.server_conn->stats().retransmits : 0u, 0u);
}

TEST(TcpEndToEnd, OrderlyClose) {
    EchoFixture f;
    f.connect();
    f.lan.sim.run_for(sim::seconds{1});
    util::Bytes msg = make_payload(100);
    f.client_conn->send(msg);
    f.lan.sim.run_for(sim::seconds{1});
    f.client_conn->close();
    f.lan.sim.run_for(sim::seconds{1});
    EXPECT_TRUE(f.server_saw_fin);
    EXPECT_EQ(f.server_conn->state(), tcp::TcpState::kCloseWait);
    EXPECT_EQ(f.client_conn->state(), tcp::TcpState::kFinWait2);
    f.server_conn->close();
    f.lan.sim.run_for(sim::seconds{1});
    EXPECT_EQ(f.client_conn->state(), tcp::TcpState::kTimeWait);
    // TIME_WAIT expires after 2*MSL.
    f.lan.sim.run_for(sim::minutes{2});
    EXPECT_EQ(f.client_conn->state(), tcp::TcpState::kClosed);
}

TEST(TcpEndToEnd, ConnectToClosedPortIsRefused) {
    EchoFixture f;
    auto conn = f.lan.client.tcp_connect(f.lan.server_ip, 9999);
    std::string reason;
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_closed = [&](const std::string& r) { reason = r; };
    conn->set_callbacks(std::move(cbs));
    f.lan.sim.run_for(sim::seconds{2});
    EXPECT_EQ(conn->state(), tcp::TcpState::kClosed);
    EXPECT_EQ(reason, "connection refused");
}

TEST(TcpEndToEnd, EchoRequestResponseLoop) {
    EchoFixture f;
    // Server echoes everything back.
    f.listener->set_accept_handler([&f](std::shared_ptr<tcp::TcpConnection> conn) {
        f.server_conn = conn;
        tcp::TcpConnection::Callbacks cbs;
        cbs.on_readable = [&f]() {
            std::uint8_t buf[4096];
            while (std::size_t n = f.server_conn->read(buf)) {
                f.server_conn->send(util::ByteView{buf, n});
            }
        };
        conn->set_callbacks(std::move(cbs));
    });
    f.connect();
    f.lan.sim.run_for(sim::seconds{1});

    int rounds_done = 0;
    util::Bytes msg = make_payload(150);
    std::function<void()> next_round = [&]() {
        if (f.client_received.size() == (static_cast<std::size_t>(rounds_done) + 1) * 150) {
            ++rounds_done;
            if (rounds_done < 100) f.client_conn->send(msg);
        }
    };
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_readable = [&]() {
        std::uint8_t buf[4096];
        while (std::size_t n = f.client_conn->read(buf)) {
            f.client_received.insert(f.client_received.end(), buf, buf + n);
        }
        next_round();
    };
    f.client_conn->set_callbacks(std::move(cbs));
    f.client_conn->send(msg);
    f.lan.sim.run_for(sim::seconds{60});
    EXPECT_EQ(rounds_done, 100);
    EXPECT_EQ(f.client_received.size(), 100u * 150);
}

TEST(TcpEndToEnd, ZeroWindowAndPersistProbe) {
    EchoFixture f;
    f.connect();
    f.lan.sim.run_for(sim::seconds{1});
    // Server app never reads -> client fills server's 64K receive buffer,
    // window goes to zero; then server drains and transfer completes.
    f.server_conn->set_callbacks({});  // remove the draining on_readable
    const std::size_t total = 200 * 1024;
    util::Bytes data = make_payload(total, 3);
    std::size_t offset = 0;
    auto pump = [&]() {
        while (offset < total) {
            std::size_t n = f.client_conn->send(
                util::ByteView{data.data() + offset, std::min<std::size_t>(8192, total - offset)});
            if (n == 0) break;
            offset += n;
        }
    };
    tcp::TcpConnection::Callbacks ccbs;
    ccbs.on_writable = pump;
    ccbs.on_readable = [] {};
    f.client_conn->set_callbacks(std::move(ccbs));
    pump();
    f.lan.sim.run_for(sim::seconds{10});
    EXPECT_LT(f.server_received.size(), total);  // stalled on zero window

    // Now drain continuously.
    tcp::TcpConnection::Callbacks scbs;
    scbs.on_readable = [&f]() {
        std::uint8_t buf[4096];
        while (std::size_t n = f.server_conn->read(buf)) {
            f.server_received.insert(f.server_received.end(), buf, buf + n);
        }
    };
    f.server_conn->set_callbacks(std::move(scbs));
    // Kick: read what is buffered.
    std::uint8_t buf[4096];
    while (std::size_t n = f.server_conn->read(buf)) {
        f.server_received.insert(f.server_received.end(), buf, buf + n);
    }
    f.lan.sim.run_for(sim::minutes{3});
    ASSERT_EQ(f.server_received.size(), total);
    EXPECT_EQ(f.server_received, data);
}

} // namespace
} // namespace sttcp
