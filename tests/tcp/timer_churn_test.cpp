// Scheduler-churn pins for the TCP timer paths (delayed ACK, retransmit,
// persist). The rearm() conversions replaced cancel+schedule churn with
// move-in-place rearms and made unchanged-deadline re-arms no-ops; these
// tests pin the resulting counter profile of a canned workload so a
// regression that silently reintroduces per-segment timer teardown shows up
// as a counter jump, not a perf mystery six months later.
#include <gtest/gtest.h>

#include "../test_support.hpp"

namespace sttcp {
namespace {

using testing::TwoHostLan;
using testing::make_payload;

struct ChurnFixture {
    TwoHostLan lan;
    std::shared_ptr<tcp::TcpListener> listener;
    std::shared_ptr<tcp::TcpConnection> server_conn;
    std::shared_ptr<tcp::TcpConnection> client_conn;
    std::size_t client_received = 0;

    ChurnFixture() {
        listener = lan.server.tcp_listen(7);
        listener->set_accept_handler(
            [this](std::shared_ptr<tcp::TcpConnection> conn) { server_conn = conn; });
        client_conn = lan.client.tcp_connect(lan.server_ip, 7);
        tcp::TcpConnection::Callbacks cbs;
        cbs.on_readable = [this]() {
            std::uint8_t buf[4096];
            while (std::size_t n = client_conn->read(buf)) client_received += n;
        };
        client_conn->set_callbacks(std::move(cbs));
        lan.sim.run_for(sim::seconds{1});  // settle the handshake
    }
};

// Golden churn profile for the DelayedAckCoalescing workload below.
constexpr std::uint64_t kGoldenScheduled = 306;
constexpr std::uint64_t kGoldenRearmed = 20;
constexpr std::uint64_t kGoldenExecuted = 257;

// A server->client stream delivered in paced 1000-byte writes: each write
// arms the client's delayed-ACK timer (first segment) and the second
// segment trips the 2-segment immediate ACK — no cancel+reschedule while
// the timer is armed. The retransmit timer is armed once per burst and
// rearmed (never torn down) as acks move the window. The exact counter
// triple below is the pin; if an edit to the timer paths changes it, either
// the edit reintroduced churn (scheduled() jumps by ~one per segment) or it
// legitimately changed event flow — re-golden only in the second case.
TEST(TcpTimerChurn, DelayedAckCoalescing) {
    ChurnFixture f;
    sim::EventQueue& q = f.lan.sim.queue();
    const std::uint64_t scheduled0 = q.scheduled();
    const std::uint64_t rearmed0 = q.rearmed();
    const std::uint64_t executed0 = q.executed();

    // Phase 1 — bulk: keep the send window full so acks advance the
    // retransmit deadline while the timer stays armed (the rearm path).
    util::Bytes bulk = make_payload(64 * 1024);
    util::ByteView rest{bulk};
    while (!rest.empty()) {
        std::size_t n = f.server_conn->send(rest);
        rest = rest.subspan(n);
        f.lan.sim.run_for(sim::milliseconds{20});
    }
    f.lan.sim.run_for(sim::seconds{2});
    // Phase 2 — paced trickle: sub-MSS writes with idle gaps, so every
    // chunk arms the delayed-ACK timer exactly once and lets it fire.
    util::Bytes chunk = make_payload(1000);
    for (int i = 0; i < 24; ++i) {
        ASSERT_EQ(f.server_conn->send(chunk), chunk.size());
        f.lan.sim.run_for(sim::milliseconds{250});
    }
    ASSERT_EQ(f.client_received, 64u * 1024u + 24u * 1000u);

    const std::uint64_t scheduled = q.scheduled() - scheduled0;
    const std::uint64_t rearmed = q.rearmed() - rearmed0;
    const std::uint64_t executed = q.executed() - executed0;
    // Golden churn profile for this workload (update deliberately, with the
    // printout below, never to silence a surprise):
    EXPECT_EQ(scheduled, kGoldenScheduled) << "fresh timer arms changed";
    EXPECT_EQ(rearmed, kGoldenRearmed) << "move-in-place rearms changed";
    EXPECT_EQ(executed, kGoldenExecuted) << "events executed changed";
    // And the structural claim behind the golden numbers: the retransmit
    // path must move its deadline with rearm(), never cancel+schedule —
    // under the old churny code rearmed would be 0 and scheduled would grow
    // by one per ack that advanced the window.
    EXPECT_GT(rearmed, 0u);
}

} // namespace
} // namespace sttcp
