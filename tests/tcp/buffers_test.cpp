// SendBuffer and ReceiveBuffer: sequence-number anchored byte stores,
// including out-of-order reassembly and wraparound.
#include <gtest/gtest.h>

#include "tcp/receive_buffer.hpp"
#include "util/wire.hpp"
#include "tcp/send_buffer.hpp"

namespace sttcp::tcp {
namespace {

using util::Seq32;

util::Bytes pattern(std::size_t n, std::uint8_t base = 0) {
    util::Bytes b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(base + i);
    return b;
}

// ------------------------------------------------------------- SendBuffer

TEST(SendBuffer, SequenceAnchoredReads) {
    SendBuffer sb(64);
    sb.set_una(Seq32{1000});
    sb.write(pattern(20));
    EXPECT_EQ(sb.end(), Seq32{1020});

    std::uint8_t out[10];
    EXPECT_EQ(sb.copy_from(Seq32{1000}, out), 10u);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(sb.copy_from(Seq32{1015}, out), 5u);
    EXPECT_EQ(out[0], 15);
    EXPECT_EQ(sb.copy_from(Seq32{1020}, out), 0u);  // past end
    EXPECT_EQ(sb.copy_from(Seq32{999}, out), 0u);   // before una
}

TEST(SendBuffer, AckReleasesAndAdvances) {
    SendBuffer sb(64);
    sb.set_una(Seq32{500});
    sb.write(pattern(30));
    EXPECT_EQ(sb.ack_to(Seq32{510}), 10u);
    EXPECT_EQ(sb.una(), Seq32{510});
    EXPECT_EQ(sb.size(), 20u);
    // Duplicate/old acks release nothing.
    EXPECT_EQ(sb.ack_to(Seq32{510}), 0u);
    EXPECT_EQ(sb.ack_to(Seq32{400}), 0u);
    // Data shifts: seq 510 now reads byte 10 of the original pattern.
    std::uint8_t out[1];
    sb.copy_from(Seq32{510}, out);
    EXPECT_EQ(out[0], 10);
}

TEST(SendBuffer, WorksAcrossSequenceWrap) {
    SendBuffer sb(64);
    sb.set_una(Seq32{0xfffffff0u});
    sb.write(pattern(32));
    EXPECT_EQ(sb.end(), Seq32{0x10u});
    std::uint8_t out[8];
    EXPECT_EQ(sb.copy_from(Seq32{0x0u}, out), 8u);
    EXPECT_EQ(out[0], 16);
    EXPECT_EQ(sb.ack_to(Seq32{0x8u}), 24u);
    EXPECT_EQ(sb.size(), 8u);
}

// ---------------------------------------------------------- ReceiveBuffer

TEST(ReceiveBuffer, InOrderDelivery) {
    ReceiveBuffer rb(64);
    rb.init(Seq32{100});
    EXPECT_EQ(rb.accept(Seq32{100}, pattern(10)), 10u);
    EXPECT_EQ(rb.rcv_nxt(), Seq32{110});
    EXPECT_EQ(rb.readable(), 10u);
    std::uint8_t out[10];
    EXPECT_EQ(rb.read(out), 10u);
    EXPECT_EQ(out[3], 3);
    EXPECT_EQ(rb.read_seq(), Seq32{110});
}

TEST(ReceiveBuffer, OutOfOrderReassembly) {
    ReceiveBuffer rb(64);
    rb.init(Seq32{0});
    // Middle first: no advance, parked.
    EXPECT_EQ(rb.accept(Seq32{10}, pattern(10, 10)), 0u);
    EXPECT_TRUE(rb.has_gaps());
    EXPECT_EQ(rb.readable(), 0u);
    // The hole fills: both chunks become readable at once.
    EXPECT_EQ(rb.accept(Seq32{0}, pattern(10, 0)), 20u);
    EXPECT_FALSE(rb.has_gaps());
    std::uint8_t out[20];
    EXPECT_EQ(rb.read(out), 20u);
    for (int i = 0; i < 20; ++i) EXPECT_EQ(out[i], i);
}

TEST(ReceiveBuffer, DuplicateAndOverlapTrimmed) {
    ReceiveBuffer rb(64);
    rb.init(Seq32{0});
    rb.accept(Seq32{0}, pattern(10));
    // Full duplicate: nothing new.
    EXPECT_EQ(rb.accept(Seq32{0}, pattern(10)), 0u);
    // Overlap: only the tail is new.
    EXPECT_EQ(rb.accept(Seq32{5}, pattern(10, 5)), 5u);
    EXPECT_EQ(rb.rcv_nxt(), Seq32{15});
    std::uint8_t out[15];
    rb.read(out);
    for (int i = 0; i < 15; ++i) EXPECT_EQ(out[i], i);
}

TEST(ReceiveBuffer, WindowShrinksWithUnreadData) {
    ReceiveBuffer rb(32);
    rb.init(Seq32{0});
    EXPECT_EQ(rb.window(), 32u);
    rb.accept(Seq32{0}, pattern(20));
    EXPECT_EQ(rb.window(), 12u);
    std::uint8_t out[20];
    rb.read(out);
    EXPECT_EQ(rb.window(), 32u);
}

TEST(ReceiveBuffer, DataBeyondWindowTrimmed) {
    ReceiveBuffer rb(16);
    rb.init(Seq32{0});
    // 32 bytes offered into a 16-byte buffer: only 16 fit.
    EXPECT_EQ(rb.accept(Seq32{0}, pattern(32)), 16u);
    EXPECT_EQ(rb.rcv_nxt(), Seq32{16});
    EXPECT_EQ(rb.window(), 0u);
}

TEST(ReceiveBuffer, CopyRangeServesUnreadBytes) {
    ReceiveBuffer rb(64);
    rb.init(Seq32{1000});
    rb.accept(Seq32{1000}, pattern(30));
    std::uint8_t out[10];
    // Nothing read yet: all 30 bytes available by sequence.
    EXPECT_EQ(rb.copy_range(Seq32{1005}, out), 10u);
    EXPECT_EQ(out[0], 5);
    // Read 10, then the first 10 are gone.
    std::uint8_t sink[10];
    rb.read(sink);
    EXPECT_EQ(rb.copy_range(Seq32{1005}, out), 0u);
    EXPECT_EQ(rb.copy_range(Seq32{1010}, out), 10u);
    EXPECT_EQ(out[0], 10);
    EXPECT_EQ(rb.copy_range(Seq32{1040}, out), 0u);  // beyond received
}

TEST(ReceiveBuffer, StreamOffsetsAreMonotonic) {
    ReceiveBuffer rb(64);
    rb.init(Seq32{0xfffffff0u});  // wraps immediately
    rb.accept(Seq32{0xfffffff0u}, pattern(32));
    EXPECT_EQ(rb.stream_offset(), 32u);
    EXPECT_EQ(rb.rcv_nxt(), Seq32{0x10u});
    std::uint8_t out[32];
    rb.read(out);
    EXPECT_EQ(rb.read_offset(), 32u);
    EXPECT_EQ(rb.read_seq(), Seq32{0x10u});
}

TEST(ReceiveBuffer, ManySmallOutOfOrderSegments) {
    ReceiveBuffer rb(256);
    rb.init(Seq32{0});
    // Deliver 16 x 16-byte chunks in a scrambled but fixed order.
    int order[16] = {7, 3, 12, 0, 15, 8, 1, 10, 5, 14, 2, 9, 6, 13, 4, 11};
    std::uint64_t total = 0;
    for (int idx : order) {
        auto seq = Seq32{static_cast<std::uint32_t>(idx) * 16};
        total += rb.accept(seq, pattern(16, static_cast<std::uint8_t>(idx * 16)));
    }
    EXPECT_EQ(total, 256u);
    EXPECT_FALSE(rb.has_gaps());
    std::uint8_t out[256];
    EXPECT_EQ(rb.read(out), 256u);
    for (int i = 0; i < 256; ++i) EXPECT_EQ(out[i], i % 256);
}

} // namespace
} // namespace sttcp::tcp
