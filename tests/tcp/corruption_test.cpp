// Bit-flip corruption end to end: flipped payload bits must be caught by
// the IP/TCP checksums, the stream must stay byte-exact, and on ST-TCP the
// damage must never leak into the application or the backup's shadow state.
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "app/client_driver.hpp"
#include "app/responder.hpp"
#include "harness/testbed.hpp"
#include "net/impairment.hpp"

namespace sttcp {
namespace {

using testing::TwoHostLan;
using testing::make_payload;

// ------------------------------------------------------------- plain TCP

TEST(TcpCorruption, BulkTransferIsExactUnderBitFlips) {
    TwoHostLan lan;
    net::ImpairmentConfig imp;
    imp.corrupt = 0.05;
    imp.corrupt_max_bits = 3;  // multi-bit is fine point-to-point: no tap to confuse
    lan.client_nic.link()->set_impairments(imp);
    lan.server_nic.link()->set_impairments(imp);

    auto listener = lan.server.tcp_listen(80);
    std::shared_ptr<tcp::TcpConnection> sconn;
    util::Bytes received;
    listener->set_accept_handler([&](std::shared_ptr<tcp::TcpConnection> c) {
        sconn = c;
        tcp::TcpConnection::Callbacks cbs;
        cbs.on_readable = [&received, &sconn]() {
            std::uint8_t buf[8192];
            while (std::size_t n = sconn->read(buf))
                received.insert(received.end(), buf, buf + n);
        };
        sconn->set_callbacks(std::move(cbs));
    });

    auto conn = lan.client.tcp_connect(lan.server_ip, 80);
    util::Bytes data = make_payload(96 * 1024);
    std::size_t offset = 0;
    tcp::TcpConnection::Callbacks cbs;
    auto pump = [&]() {
        while (offset < data.size()) {
            std::size_t n =
                conn->send(util::ByteView{data.data() + offset, data.size() - offset});
            if (n == 0) break;
            offset += n;
        }
    };
    cbs.on_established = pump;
    cbs.on_writable = pump;
    conn->set_callbacks(std::move(cbs));

    lan.sim.run_until(sim::TimePoint{} + sim::minutes{10});

    // The corruption actually happened, every damaged segment was rejected
    // by a checksum, and the stream came through untouched.
    std::uint64_t corrupted = lan.client_nic.link()->stats().frames_corrupted +
                              lan.server_nic.link()->stats().frames_corrupted;
    ASSERT_GT(corrupted, 0u);
    EXPECT_GT(lan.client.stats().parse_errors + lan.server.stats().parse_errors, 0u);
    ASSERT_EQ(received.size(), data.size());
    EXPECT_EQ(received, data);
}

// --------------------------------------------------------------- ST-TCP

// Corruption on the paper's hub testbed. Every corrupted frame is seen
// TWICE by server-side stacks (the hub repeats it to the primary and to the
// tapping backup) — both must reject it, the responder application must see
// only clean requests, and the backup's shadow must stay byte-identical to
// the primary (proved by a clean failover mid-stream).
TEST(SttcpCorruption, CorruptedFramesNeverReachAppOrShadow) {
    harness::TestbedOptions opt;
    opt.seed = 11;
    opt.sttcp.hb_interval = sim::milliseconds{50};
    opt.sttcp.sync_time = sim::milliseconds{50};
    harness::HubTestbed bed{opt};

    net::ImpairmentConfig imp;
    imp.corrupt = 0.03;
    imp.corrupt_max_bits = 1;
    bed.client_link->set_impairments(imp);

    app::ResponderApp primary_app, backup_app;
    auto primary_listener = bed.st_primary->listen(8000);
    auto backup_listener = bed.st_backup->listen(8000);
    primary_app.attach(*primary_listener);
    backup_app.attach(*backup_listener);
    bed.st_primary->start();
    bed.st_backup->start();

    app::ClientDriver driver{*bed.client, bed.service_ip(), 8000,
                             app::Workload::upload_kb(128, 3)};
    bool done = false;
    driver.start([&]() { done = true; });

    // Mid-round-1: the 3x128KB upload takes ~250ms on the 14 Mbit/s client
    // link, so the crash lands while retention still holds unsynced bytes.
    bed.sim.schedule_after(sim::milliseconds{100}, [&]() { bed.crash_primary(); });
    sim::TimePoint limit = bed.sim.now() + sim::minutes{10};
    while (!done && bed.sim.now() < limit)
        bed.sim.run_until(std::min(limit, bed.sim.now() + sim::milliseconds{100}));

    const auto& r = driver.result();
    ASSERT_TRUE(r.completed) << r.failure_reason;
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_TRUE(bed.st_backup->has_taken_over());

    // Adversity was real and was caught at the checksum layer on both
    // server-side stacks (primary directly, backup via its tap).
    ASSERT_GT(bed.client_link->stats().frames_corrupted, 0u);
    EXPECT_GT(bed.primary->stats().parse_errors, 0u);
    EXPECT_GT(bed.backup->stats().parse_errors, 0u);

    // The application layer never saw a damaged byte: the promoted backup's
    // responder consumed the full upload stream of both rounds and served
    // clean requests (a corrupted request id or length would have desynced
    // the deterministic responder and shown up as client verify errors).
    // The shadow responder consumed every upload byte of all three rounds.
    EXPECT_GE(backup_app.stats().upload_bytes_received, 3u * 128 * 1024);
}

} // namespace
} // namespace sttcp
