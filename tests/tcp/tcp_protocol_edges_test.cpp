// TCP state-machine edge cases: close variants, retransmission behaviour,
// option negotiation, sequence wraparound, timer dynamics.
#include <gtest/gtest.h>

#include "../test_support.hpp"

namespace sttcp {
namespace {

using testing::TwoHostLan;
using testing::make_payload;

struct Pair {
    TwoHostLan lan;
    std::shared_ptr<tcp::TcpListener> listener;
    std::shared_ptr<tcp::TcpConnection> server_conn;
    std::shared_ptr<tcp::TcpConnection> client_conn;

    explicit Pair(tcp::TcpConfig cfg = {}, net::LinkConfig link = {}) : lan(link, cfg) {
        listener = lan.server.tcp_listen(80);
        listener->set_accept_handler(
            [this](std::shared_ptr<tcp::TcpConnection> c) { server_conn = std::move(c); });
    }

    void connect_and_settle() {
        client_conn = lan.client.tcp_connect(lan.server_ip, 80);
        lan.sim.run_for(sim::seconds{1});
        ASSERT_EQ(client_conn->state(), tcp::TcpState::kEstablished);
        ASSERT_NE(server_conn, nullptr);
    }
};

TEST(TcpEdge, MssIsNegotiatedDownward) {
    tcp::TcpConfig small;
    small.mss = 500;
    TwoHostLan lan({}, {});
    // Client advertises MSS 500; the server must not send larger segments.
    tcp::HostStack small_client{lan.sim, lan.client_node, small};
    // Rebind the client NIC to the small-MSS stack.
    small_client.add_interface(lan.client_nic, lan.client_ip, 24);

    auto listener = lan.server.tcp_listen(80);
    std::shared_ptr<tcp::TcpConnection> server_conn;
    listener->set_accept_handler(
        [&](std::shared_ptr<tcp::TcpConnection> c) { server_conn = std::move(c); });
    auto conn = small_client.tcp_connect(lan.server_ip, 80);
    lan.sim.run_for(sim::seconds{1});
    ASSERT_NE(server_conn, nullptr);
    EXPECT_EQ(server_conn->config().mss, 500);
    EXPECT_EQ(conn->config().mss, 500);
}

TEST(TcpEdge, ZeroMssAdvertisementIsFloored) {
    // Regression for the wire-taint triage: a peer advertising MSS 0 used to
    // be taken at face value, wedging the server's sender (it could never
    // fit a payload byte into a segment). The floor clamps it to kMinMss.
    tcp::TcpConfig zero;
    zero.mss = 0;
    TwoHostLan lan({}, {});
    tcp::HostStack zero_client{lan.sim, lan.client_node, zero};
    zero_client.add_interface(lan.client_nic, lan.client_ip, 24);

    auto listener = lan.server.tcp_listen(80);
    std::shared_ptr<tcp::TcpConnection> server_conn;
    listener->set_accept_handler(
        [&](std::shared_ptr<tcp::TcpConnection> c) { server_conn = std::move(c); });
    auto conn = zero_client.tcp_connect(lan.server_ip, 80);
    lan.sim.run_for(sim::seconds{1});
    ASSERT_NE(server_conn, nullptr);
    EXPECT_EQ(server_conn->config().mss, tcp::kMinMss);

    // Data still flows server -> client through the floored connection.
    util::Bytes msg = make_payload(1500);
    server_conn->send(msg);
    lan.sim.run_for(sim::seconds{5});
    util::Bytes got;
    std::uint8_t buf[4096];
    while (std::size_t n = conn->read(buf)) got.insert(got.end(), buf, buf + n);
    EXPECT_EQ(got, msg);
}

TEST(TcpEdge, SimultaneousClose) {
    Pair p;
    p.connect_and_settle();
    // Both sides close in the same instant: FINs cross -> CLOSING -> TIME_WAIT.
    p.client_conn->close();
    p.server_conn->close();
    p.lan.sim.run_for(sim::seconds{2});
    EXPECT_TRUE(p.client_conn->state() == tcp::TcpState::kTimeWait ||
                p.client_conn->state() == tcp::TcpState::kClosed);
    EXPECT_TRUE(p.server_conn->state() == tcp::TcpState::kTimeWait ||
                p.server_conn->state() == tcp::TcpState::kClosed);
    // After 2MSL both are gone.
    p.lan.sim.run_for(sim::minutes{2});
    EXPECT_EQ(p.client_conn->state(), tcp::TcpState::kClosed);
    EXPECT_EQ(p.server_conn->state(), tcp::TcpState::kClosed);
}

TEST(TcpEdge, HalfCloseStillDeliversData) {
    Pair p;
    p.connect_and_settle();
    util::Bytes received;
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_readable = [&]() {
        std::uint8_t buf[1024];
        while (std::size_t n = p.client_conn->read(buf))
            received.insert(received.end(), buf, buf + n);
    };
    p.client_conn->set_callbacks(std::move(cbs));

    // Client closes its direction; server keeps sending.
    p.client_conn->close();
    p.lan.sim.run_for(sim::seconds{1});
    EXPECT_EQ(p.server_conn->state(), tcp::TcpState::kCloseWait);
    util::Bytes data = make_payload(5000);
    EXPECT_GT(p.server_conn->send(data), 0u);
    p.lan.sim.run_for(sim::seconds{2});
    EXPECT_EQ(received, data);
    // Server finishes; connection winds down fully.
    p.server_conn->close();
    p.lan.sim.run_for(sim::minutes{2});
    EXPECT_EQ(p.client_conn->state(), tcp::TcpState::kClosed);
    EXPECT_EQ(p.server_conn->state(), tcp::TcpState::kClosed);
}

TEST(TcpEdge, CloseWithQueuedDataFlushesFirst) {
    Pair p;
    p.connect_and_settle();
    util::Bytes received;
    bool fin_seen = false;
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_readable = [&]() {
        std::uint8_t buf[8192];
        while (std::size_t n = p.server_conn->read(buf))
            received.insert(received.end(), buf, buf + n);
    };
    cbs.on_remote_fin = [&]() { fin_seen = true; };
    p.server_conn->set_callbacks(std::move(cbs));

    util::Bytes data = make_payload(20000);
    ASSERT_EQ(p.client_conn->send(data), data.size());
    p.client_conn->close();  // FIN must trail the 20 KB
    p.lan.sim.run_for(sim::seconds{3});
    EXPECT_EQ(received, data);
    EXPECT_TRUE(fin_seen);
}

TEST(TcpEdge, SendAfterCloseIsRejected) {
    Pair p;
    p.connect_and_settle();
    p.client_conn->close();
    EXPECT_EQ(p.client_conn->send(make_payload(10)), 0u);
}

TEST(TcpEdge, AbortSendsRstAndPeerResets) {
    Pair p;
    p.connect_and_settle();
    std::string server_reason;
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_closed = [&](const std::string& r) { server_reason = r; };
    p.server_conn->set_callbacks(std::move(cbs));
    p.client_conn->abort();
    EXPECT_EQ(p.client_conn->state(), tcp::TcpState::kClosed);
    p.lan.sim.run_for(sim::seconds{1});
    EXPECT_EQ(server_reason, "connection reset");
}

TEST(TcpEdge, SynRetransmissionUsesExponentialBackoff) {
    // No server at all: watch the client's SYN retries at 1s, 2s, 4s...
    TwoHostLan lan;
    lan.client.arp_table().add_static(net::Ipv4Address{10, 0, 0, 99},
                                      net::MacAddress::local(99));
    auto conn = lan.client.tcp_connect(net::Ipv4Address{10, 0, 0, 99}, 80);
    auto sent_at = [&](sim::Duration t) {
        lan.sim.run_until(sim::TimePoint{} + t);
        return conn->stats().segments_sent;
    };
    EXPECT_EQ(sent_at(sim::milliseconds{500}), 1u);   // initial SYN
    EXPECT_EQ(sent_at(sim::milliseconds{1500}), 2u);  // +1s
    EXPECT_EQ(sent_at(sim::milliseconds{3500}), 3u);  // +2s
    EXPECT_EQ(sent_at(sim::milliseconds{7500}), 4u);  // +4s
    // Eventually gives up.
    lan.sim.run_for(sim::minutes{3});
    EXPECT_EQ(conn->state(), tcp::TcpState::kClosed);
}

TEST(TcpEdge, ExactlyThreeDupAcksTriggerFastRetransmit) {
    // Lossless path; we inject one artificial drop by filtering a single
    // data segment at the server's egress. The drop targets the 9th
    // segment, by which point slow start has opened cwnd far enough that at
    // least three later segments are in flight to generate dup acks.
    Pair p;
    p.connect_and_settle();
    int dropped = 0;
    p.lan.server.set_tcp_egress_filter(
        [&](const net::TcpSegment& seg, net::Ipv4Address, net::Ipv4Address) {
            if (!seg.payload.empty() &&
                seg.seq == p.server_conn->iss() + 1u + 8u * 1460u && dropped == 0) {
                ++dropped;
                return false;
            }
            return true;
        });
    util::Bytes received;
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_readable = [&]() {
        std::uint8_t buf[8192];
        while (std::size_t n = p.client_conn->read(buf))
            received.insert(received.end(), buf, buf + n);
    };
    p.client_conn->set_callbacks(std::move(cbs));

    util::Bytes data = make_payload(1460 * 16);
    p.server_conn->send(data);
    p.lan.sim.run_for(sim::seconds{2});
    EXPECT_EQ(received, data);
    EXPECT_EQ(dropped, 1);
    EXPECT_EQ(p.server_conn->stats().fast_retransmits, 1u);
    EXPECT_GE(p.server_conn->stats().dup_acks_in, 3u);
    // Fast retransmit avoided the full RTO collapse.
    EXPECT_EQ(p.server_conn->stats().timeouts, 0u);
}

TEST(TcpEdge, TransferAcrossSequenceWrap) {
    // Pin the client's ISN just below the 2^32 boundary so a 64 KB transfer
    // crosses the wrap, and verify byte-exact delivery.
    net::LinkConfig link;
    tcp::TcpConfig cfg;
    sim::Simulation sim{7};
    net::Hub hub{sim, "hub"};
    net::Node cn{"c"}, sn{"s"};
    net::Nic cnic{cn, "eth0", net::MacAddress::local(1)};
    net::Nic snic{sn, "eth0", net::MacAddress::local(2)};
    hub.connect(cnic, link);
    hub.connect(snic, link);
    tcp::HostStack client{sim, cn, cfg}, server{sim, sn, cfg};
    client.add_interface(cnic, net::Ipv4Address{10, 0, 0, 1}, 24);
    server.add_interface(snic, net::Ipv4Address{10, 0, 0, 2}, 24);
    client.set_isn_generator([] { return util::Seq32{0xffffffffu - 20000u}; });

    auto listener = server.tcp_listen(80);
    std::shared_ptr<tcp::TcpConnection> sconn;
    util::Bytes received;
    listener->set_accept_handler([&](std::shared_ptr<tcp::TcpConnection> c) {
        sconn = c;
        tcp::TcpConnection::Callbacks cbs;
        cbs.on_readable = [&received, &sconn]() {
            std::uint8_t buf[8192];
            while (std::size_t n = sconn->read(buf))
                received.insert(received.end(), buf, buf + n);
        };
        sconn->set_callbacks(std::move(cbs));
    });
    auto conn = client.tcp_connect(net::Ipv4Address{10, 0, 0, 2}, 80);
    sim.run_until(sim::TimePoint{} + sim::seconds{1});
    ASSERT_EQ(conn->state(), tcp::TcpState::kEstablished);
    ASSERT_EQ(conn->iss().raw(), 0xffffffffu - 20000u);

    util::Bytes data = make_payload(64 * 1024);
    std::size_t offset = 0;
    while (offset < data.size()) {
        offset += conn->send(util::ByteView{data.data() + offset, data.size() - offset});
        sim.run_until(sim.now() + sim::milliseconds{200});
    }
    sim.run_until(sim.now() + sim::seconds{5});
    ASSERT_EQ(received.size(), data.size());
    EXPECT_EQ(received, data);
    // The stream really did cross the wrap.
    EXPECT_LT(conn->snd_nxt().raw(), 0xffff0000u);
}

TEST(TcpEdge, NagleCoalescesSmallWrites) {
    Pair p;
    p.connect_and_settle();
    // 50 x 10-byte writes with Nagle on: far fewer than 50 segments.
    for (int i = 0; i < 50; ++i) p.client_conn->send(make_payload(10));
    p.lan.sim.run_for(sim::seconds{2});
    std::uint64_t with_nagle = p.client_conn->stats().segments_sent;
    EXPECT_LT(with_nagle, 30u);
}

TEST(TcpEdge, NagleOffSendsEagerly) {
    tcp::TcpConfig cfg;
    cfg.nagle = false;
    Pair p{cfg};
    p.connect_and_settle();
    std::uint64_t before = p.client_conn->stats().segments_sent;
    for (int i = 0; i < 20; ++i) p.client_conn->send(make_payload(10));
    p.lan.sim.run_for(sim::seconds{1});
    // Every write went straight out (plus acks don't count as client sends).
    EXPECT_GE(p.client_conn->stats().segments_sent - before, 20u);
}

TEST(TcpEdge, DelayedAckReducesPureAcks) {
    Pair p;
    p.connect_and_settle();
    // Server sends a steady stream; the client acks at most every other
    // full segment (RFC 1122), so pure acks <= ~segments/2 + timer acks.
    util::Bytes data = make_payload(1460 * 20);
    p.server_conn->send(data);
    std::uint8_t buf[65536];
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_readable = [&]() { while (p.client_conn->read(buf)) {} };
    p.client_conn->set_callbacks(std::move(cbs));
    p.lan.sim.run_for(sim::seconds{3});
    EXPECT_LE(p.client_conn->stats().pure_acks_out, 14u);
}

TEST(TcpEdge, RetransmissionLimitAbortsConnection) {
    tcp::TcpConfig cfg;
    cfg.max_retransmits = 4;
    cfg.max_rto = sim::seconds{2};  // keep the test fast
    Pair p{cfg};
    p.connect_and_settle();
    std::string reason;
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_closed = [&](const std::string& r) { reason = r; };
    p.client_conn->set_callbacks(std::move(cbs));

    // Kill the server mid-connection; client data goes unacked forever.
    p.lan.server_node.power_off();
    p.client_conn->send(make_payload(100));
    p.lan.sim.run_for(sim::minutes{2});
    EXPECT_EQ(p.client_conn->state(), tcp::TcpState::kClosed);
    EXPECT_EQ(reason, "connection timed out (retransmission limit)");
    EXPECT_GE(p.client_conn->stats().timeouts, 4u);
}

TEST(TcpEdge, RtoBackoffDoublesWhilePeerIsDead) {
    Pair p;
    p.connect_and_settle();
    p.lan.server_node.power_off();
    p.client_conn->send(make_payload(100));
    p.lan.sim.run_for(sim::seconds{1});
    int backoff_1s = p.client_conn->rtt().backoff_count();
    p.lan.sim.run_for(sim::seconds{7});
    int backoff_8s = p.client_conn->rtt().backoff_count();
    // Paper §6.2: RTO doubles per retransmission — so the count grows only
    // logarithmically in elapsed time.
    EXPECT_GT(backoff_8s, backoff_1s);
    EXPECT_LE(backoff_8s, backoff_1s + 4);
}

TEST(TcpEdge, TimeWaitReacksRetransmittedFin) {
    tcp::TcpConfig cfg;
    cfg.msl = sim::seconds{1};  // short TIME_WAIT for the test
    Pair p{cfg};
    p.connect_and_settle();
    p.client_conn->close();
    p.lan.sim.run_for(sim::milliseconds{500});
    p.server_conn->close();
    p.lan.sim.run_for(sim::milliseconds{500});
    ASSERT_EQ(p.client_conn->state(), tcp::TcpState::kTimeWait);
    // Re-deliver the server's FIN (as if its ack got lost).
    net::TcpSegment fin;
    fin.src_port = 80;
    fin.dst_port = p.client_conn->key().local_port;
    fin.seq = p.server_conn->snd_nxt() - 1u;
    fin.ack = p.client_conn->snd_nxt();
    fin.flags.fin = true;
    fin.flags.ack = true;
    std::uint64_t acks_before = p.client_conn->stats().pure_acks_out;
    p.client_conn->on_segment(fin);
    EXPECT_GT(p.client_conn->stats().pure_acks_out, acks_before);
    EXPECT_EQ(p.client_conn->state(), tcp::TcpState::kTimeWait);
}

TEST(TcpEdge, IsnRandomizationDiffersAcrossConnections) {
    Pair p;
    p.connect_and_settle();
    auto first_iss = p.client_conn->iss();
    auto conn2 = p.lan.client.tcp_connect(p.lan.server_ip, 80);
    p.lan.sim.run_for(sim::seconds{1});
    EXPECT_NE(conn2->iss().raw(), first_iss.raw());
}

} // namespace
} // namespace sttcp
