// The compile-time TCP transition matrix (tcp/state_machine.hpp) and its
// runtime enforcement through TcpConnection::transition() + the invariant
// auditor. The matrix itself is pinned by static_asserts in the header;
// these tests document the interesting edges and prove the runtime side
// actually fires — the acceptance check for the whole funnel refactor is
// that an illegal transition is caught *twice*: statically (staticcheck's
// state-funnel rule forbids bypassing the funnel) and at runtime (the
// auditor names tcp.state.legal_transition).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string_view>
#include <utility>
#include <vector>

#include "check/audit.hpp"
#include "check/tcp_auditor.hpp"
#include "harness/testbed.hpp"
#include "tcp/state_machine.hpp"

namespace sttcp {
namespace {

using check::ScopedCapture;
using check::Violation;
using harness::HubTestbed;
using harness::TestbedOptions;
using tcp::is_legal_transition;
using tcp::TcpState;

TEST(StateMachineMatrix, Rfc793Edges) {
    // The three-way handshake, both directions.
    EXPECT_TRUE(is_legal_transition(TcpState::kClosed, TcpState::kSynSent));
    EXPECT_TRUE(is_legal_transition(TcpState::kClosed, TcpState::kListen));
    EXPECT_TRUE(is_legal_transition(TcpState::kSynSent, TcpState::kEstablished));
    EXPECT_TRUE(is_legal_transition(TcpState::kSynReceived, TcpState::kEstablished));
    // Close choreography.
    EXPECT_TRUE(is_legal_transition(TcpState::kEstablished, TcpState::kFinWait1));
    EXPECT_TRUE(is_legal_transition(TcpState::kFinWait1, TcpState::kFinWait2));
    EXPECT_TRUE(is_legal_transition(TcpState::kFinWait1, TcpState::kClosing));
    EXPECT_TRUE(is_legal_transition(TcpState::kFinWait2, TcpState::kTimeWait));
    EXPECT_TRUE(is_legal_transition(TcpState::kCloseWait, TcpState::kLastAck));
    EXPECT_TRUE(is_legal_transition(TcpState::kLastAck, TcpState::kClosed));
    EXPECT_TRUE(is_legal_transition(TcpState::kTimeWait, TcpState::kClosed));
}

TEST(StateMachineMatrix, SttcpExtensionEdges) {
    // §4.1 late join: a shadow connection materializes directly in
    // ESTABLISHED from the client's handshake ACK.
    EXPECT_TRUE(is_legal_transition(TcpState::kClosed, TcpState::kEstablished));
    // A retransmitted FIN restarts 2MSL: TIME_WAIT is the only self-loop.
    EXPECT_TRUE(is_legal_transition(TcpState::kTimeWait, TcpState::kTimeWait));
    EXPECT_FALSE(is_legal_transition(TcpState::kEstablished, TcpState::kEstablished));
    // Abort/RST: any non-Closed state may drop to Closed.
    EXPECT_TRUE(is_legal_transition(TcpState::kSynSent, TcpState::kClosed));
    EXPECT_TRUE(is_legal_transition(TcpState::kEstablished, TcpState::kClosed));
    EXPECT_TRUE(is_legal_transition(TcpState::kFinWait2, TcpState::kClosed));
}

TEST(StateMachineMatrix, IllegalEdgesStayIllegal) {
    EXPECT_FALSE(is_legal_transition(TcpState::kListen, TcpState::kEstablished));
    EXPECT_FALSE(is_legal_transition(TcpState::kEstablished, TcpState::kTimeWait));
    EXPECT_FALSE(is_legal_transition(TcpState::kFinWait2, TcpState::kFinWait1));
    EXPECT_FALSE(is_legal_transition(TcpState::kCloseWait, TcpState::kEstablished));
    EXPECT_FALSE(is_legal_transition(TcpState::kTimeWait, TcpState::kEstablished));
    EXPECT_FALSE(is_legal_transition(TcpState::kClosed, TcpState::kClosed));
}

bool has_violation(const std::vector<Violation>& captured, std::string_view name) {
    return std::any_of(captured.begin(), captured.end(),
                       [&](const Violation& v) { return v.invariant == name; });
}

TEST(StateMachineRuntime, AuditorNamesIllegalTransition) {
    if (!check::kEnabled) GTEST_SKIP() << "built without STTCP_AUDIT";
    HubTestbed bed{TestbedOptions{}};
    auto conn = bed.client->tcp_connect(bed.service_ip(), 8000);
    check::TcpInvariantAuditor auditor;

    std::vector<Violation> captured;
    ScopedCapture capture{captured};
    auditor.audit_transition(*conn, TcpState::kListen, TcpState::kEstablished,
                             bed.sim.now());
    EXPECT_TRUE(has_violation(captured, "tcp.state.legal_transition"));
}

TEST(StateMachineRuntime, AuditorAcceptsSttcpLateJoin) {
    if (!check::kEnabled) GTEST_SKIP() << "built without STTCP_AUDIT";
    HubTestbed bed{TestbedOptions{}};
    auto conn = bed.client->tcp_connect(bed.service_ip(), 8000);
    check::TcpInvariantAuditor auditor;

    std::vector<Violation> captured;
    ScopedCapture capture{captured};
    auditor.audit_transition(*conn, TcpState::kClosed, TcpState::kEstablished,
                             bed.sim.now());
    EXPECT_FALSE(has_violation(captured, "tcp.state.legal_transition"));
}

// Exhaustive property over the full State x State product: the legal edge
// set is restated here as data, independently of how state_machine.hpp
// builds its matrix, and every one of the 11x11 = 121 pairs is checked both
// ways. Any edge added to (or dropped from) the TransitionMatrix that this
// catalogue does not sanction fails the test — every off-catalogue edge
// must be rejected, every catalogued edge accepted.
TEST(StateMachineMatrix, FullProductMatchesSpecCatalogue) {
    using enum TcpState;
    constexpr std::array kStates = {kClosed,   kListen,   kSynSent,  kSynReceived,
                                    kEstablished, kFinWait1, kFinWait2, kCloseWait,
                                    kClosing,  kLastAck,  kTimeWait};
    ASSERT_EQ(kStates.size(), tcp::kTcpStateCount);

    // RFC 793 p.23 diagram edges + the ST-TCP extensions (DESIGN.md §10).
    const std::vector<std::pair<TcpState, TcpState>> catalogue = {
        {kClosed, kListen},       {kClosed, kSynSent},      {kClosed, kSynReceived},
        {kClosed, kEstablished},  {kListen, kSynSent},      {kListen, kSynReceived},
        {kSynSent, kSynReceived}, {kSynSent, kEstablished}, {kSynReceived, kEstablished},
        {kSynReceived, kFinWait1}, {kSynReceived, kCloseWait}, {kEstablished, kFinWait1},
        {kEstablished, kCloseWait}, {kFinWait1, kFinWait2}, {kFinWait1, kClosing},
        {kFinWait1, kTimeWait},   {kFinWait2, kTimeWait},   {kClosing, kTimeWait},
        {kCloseWait, kLastAck},   {kTimeWait, kTimeWait},
        // Abortive exits: RST / abort() from every non-CLOSED state.
        {kListen, kClosed},       {kSynSent, kClosed},      {kSynReceived, kClosed},
        {kEstablished, kClosed},  {kFinWait1, kClosed},     {kFinWait2, kClosed},
        {kCloseWait, kClosed},    {kClosing, kClosed},      {kLastAck, kClosed},
        {kTimeWait, kClosed},
    };
    auto sanctioned = [&](TcpState from, TcpState to) {
        return std::find(catalogue.begin(), catalogue.end(), std::pair{from, to}) !=
               catalogue.end();
    };

    int legal = 0;
    for (TcpState from : kStates) {
        for (TcpState to : kStates) {
            EXPECT_EQ(is_legal_transition(from, to), sanctioned(from, to))
                << tcp::to_string(from) << " -> " << tcp::to_string(to);
            if (is_legal_transition(from, to)) ++legal;
        }
    }
    EXPECT_EQ(legal, static_cast<int>(catalogue.size()));
}

// Regression for the two genuine findings staticcheck's event-lifecycle rule
// surfaced: SttcpPrimary and SttcpBackup had no destructors, so a started
// engine destroyed with its heartbeat/sync timers pending left [this]-
// capturing events armed in the queue. Destroy both engines mid-flight and
// keep the simulation running — under ASan this is a use-after-free unless
// ~SttcpPrimary()/~SttcpBackup() cancel the timers (they call stop()).
TEST(EngineLifetime, DestroyingStartedEnginesCancelsTheirTimers) {
    HubTestbed bed{TestbedOptions{}};
    bed.st_primary->start();
    bed.st_backup->start();
    // Let the heartbeat machinery arm fresh timers.
    bed.sim.run_until(bed.sim.now() + sim::milliseconds{700});
    bed.st_primary.reset();
    bed.st_backup.reset();
    // Anything they left scheduled fires here.
    bed.sim.run_until(bed.sim.now() + sim::seconds{5});
}

} // namespace
} // namespace sttcp
