// HostStack: ARP engine, IP routing/forwarding, UDP sockets, and the
// ST-TCP hooks (egress filter, tap, orphan handler, ARP suppression).
#include <gtest/gtest.h>

#include "../test_support.hpp"

namespace sttcp {
namespace {

using testing::TwoHostLan;

TEST(HostStackArp, ResolvesOnDemandAndCaches) {
    TwoHostLan lan;
    auto sock_c = lan.client.udp_bind(1000);
    auto sock_s = lan.server.udp_bind(2000);
    int received = 0;
    sock_s->set_rx_handler([&](util::ByteView, net::Ipv4Address, std::uint16_t) {
        ++received;
    });

    util::Bytes msg{1, 2, 3};
    sock_c->send_to(lan.server_ip, 2000, msg);  // triggers ARP
    lan.sim.run_for(sim::seconds{1});
    EXPECT_EQ(received, 1);
    EXPECT_EQ(lan.client.stats().arp_requests_sent, 1u);
    ASSERT_TRUE(lan.client.arp_table().lookup(lan.server_ip).has_value());
    EXPECT_EQ(*lan.client.arp_table().lookup(lan.server_ip), lan.server_nic.mac());

    // Second datagram uses the cache — no further ARP traffic.
    sock_c->send_to(lan.server_ip, 2000, msg);
    lan.sim.run_for(sim::seconds{1});
    EXPECT_EQ(received, 2);
    EXPECT_EQ(lan.client.stats().arp_requests_sent, 1u);
}

TEST(HostStackArp, UnresolvableAddressDropsAfterRetries) {
    TwoHostLan lan;
    auto sock = lan.client.udp_bind(1000);
    sock->send_to(net::Ipv4Address{10, 0, 0, 77}, 9, util::Bytes{1});
    lan.sim.run_for(sim::seconds{10});
    EXPECT_EQ(lan.client.stats().arp_requests_sent, 3u);  // 3 attempts, then drop
}

TEST(HostStackArp, SuppressedIpDoesNotAnswer) {
    TwoHostLan lan;
    lan.server.add_ip_alias(0, net::Ipv4Address{10, 0, 0, 100});
    lan.server.suppress_arp_for(net::Ipv4Address{10, 0, 0, 100});

    auto sock = lan.client.udp_bind(1000);
    sock->send_to(net::Ipv4Address{10, 0, 0, 100}, 9, util::Bytes{1});
    lan.sim.run_for(sim::seconds{5});
    EXPECT_FALSE(lan.client.arp_table().lookup(net::Ipv4Address{10, 0, 0, 100}).has_value());

    // Unsuppressing (takeover) makes it answer again.
    lan.server.unsuppress_arp_for(net::Ipv4Address{10, 0, 0, 100});
    sock->send_to(net::Ipv4Address{10, 0, 0, 100}, 9, util::Bytes{1});
    lan.sim.run_for(sim::seconds{5});
    EXPECT_TRUE(lan.client.arp_table().lookup(net::Ipv4Address{10, 0, 0, 100}).has_value());
}

TEST(HostStackArp, GratuitousArpUpdatesPeers) {
    TwoHostLan lan;
    // Client already resolved the server normally.
    auto sock = lan.client.udp_bind(1000);
    sock->send_to(lan.server_ip, 9, util::Bytes{1});
    lan.sim.run_for(sim::seconds{1});

    // Now the server announces a virtual IP.
    lan.server.send_gratuitous_arp(net::Ipv4Address{10, 0, 0, 100});
    lan.sim.run_for(sim::seconds{1});
    auto mac = lan.client.arp_table().lookup(net::Ipv4Address{10, 0, 0, 100});
    ASSERT_TRUE(mac.has_value());
    EXPECT_EQ(*mac, lan.server_nic.mac());
}

TEST(HostStackUdp, RoundTripWithSourceAddressing) {
    TwoHostLan lan;
    auto sock_c = lan.client.udp_bind(1111);
    auto sock_s = lan.server.udp_bind(2222);
    net::Ipv4Address seen_src;
    std::uint16_t seen_port = 0;
    util::Bytes seen;
    sock_s->set_rx_handler([&](util::ByteView data, net::Ipv4Address src, std::uint16_t port) {
        seen.assign(data.begin(), data.end());
        seen_src = src;
        seen_port = port;
        sock_s->send_to(src, port, util::Bytes{9, 9});
    });
    util::Bytes reply;
    sock_c->set_rx_handler([&](util::ByteView data, net::Ipv4Address, std::uint16_t) {
        reply.assign(data.begin(), data.end());
    });

    sock_c->send_to(lan.server_ip, 2222, util::Bytes{4, 5, 6});
    lan.sim.run_for(sim::seconds{1});
    EXPECT_EQ(seen, (util::Bytes{4, 5, 6}));
    EXPECT_EQ(seen_src, lan.client_ip);
    EXPECT_EQ(seen_port, 1111);
    EXPECT_EQ(reply, (util::Bytes{9, 9}));
    EXPECT_EQ(sock_c->stats().datagrams_sent, 1u);
    EXPECT_EQ(sock_c->stats().datagrams_received, 1u);
}

TEST(HostStackUdp, UnboundPortIsSilentlyDropped) {
    TwoHostLan lan;
    auto sock = lan.client.udp_bind(1000);
    sock->send_to(lan.server_ip, 4242, util::Bytes{1});
    lan.sim.run_for(sim::seconds{1});
    EXPECT_GT(lan.server.stats().ip_in, 0u);  // arrived, no listener, no crash
}

TEST(HostStackTcp, RstForConnectionlessSegment) {
    TwoHostLan lan;
    // A stray ACK (not SYN) to a port with no listener elicits RST.
    auto conn = lan.client.tcp_connect(lan.server_ip, 4040);
    std::string reason;
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_closed = [&](const std::string& r) { reason = r; };
    conn->set_callbacks(std::move(cbs));
    lan.sim.run_for(sim::seconds{2});
    EXPECT_EQ(reason, "connection refused");
    EXPECT_GT(lan.server.stats().tcp_rst_sent, 0u);
}

TEST(HostStackTcp, EgressFilterSuppressesAndCounts) {
    TwoHostLan lan;
    lan.server.set_tcp_egress_filter(
        [](const net::TcpSegment&, net::Ipv4Address, net::Ipv4Address) { return false; });
    auto listener = lan.server.tcp_listen(80);
    auto conn = lan.client.tcp_connect(lan.server_ip, 80);
    lan.sim.run_for(sim::seconds{3});
    // The server's SYN/ACKs never left; client still in SYN_SENT.
    EXPECT_EQ(conn->state(), tcp::TcpState::kSynSent);
    EXPECT_GT(lan.server.stats().tcp_segments_suppressed, 0u);
}

TEST(HostStackTcp, TapSeesForeignSegments) {
    TwoHostLan lan;
    int tapped = 0;
    // The server stack taps segments not addressed to it: send client->X
    // where X is a third (absent) host; server NIC must see it, so make it
    // promiscuous (hub repeats everything).
    lan.server_nic.set_promiscuous(true);
    lan.server.set_tcp_tap(
        [&](const net::TcpSegment&, net::Ipv4Address, net::Ipv4Address) { ++tapped; });
    // Pre-seed client ARP so the SYN actually goes out.
    lan.client.arp_table().add_static(net::Ipv4Address{10, 0, 0, 50},
                                      net::MacAddress::local(50));
    lan.client.tcp_connect(net::Ipv4Address{10, 0, 0, 50}, 80);
    lan.sim.run_for(sim::seconds{2});
    EXPECT_GT(tapped, 0);
    EXPECT_GT(lan.server.stats().ip_dropped_not_local, 0u);
}

TEST(HostStackTcp, OrphanHandlerClaimsBeforeRst) {
    TwoHostLan lan;
    int orphans = 0;
    lan.server.set_orphan_tcp_handler(
        [&](const net::TcpSegment& seg, net::Ipv4Address, net::Ipv4Address) {
            if (!seg.flags.syn) {
                ++orphans;
                return true;  // claimed: no RST
            }
            return false;
        });
    auto conn = lan.client.tcp_connect(lan.server_ip, 5555);
    lan.sim.run_for(sim::seconds{2});
    // SYN not claimed -> RST -> connection refused; no orphan counted for SYN.
    EXPECT_EQ(conn->state(), tcp::TcpState::kClosed);
    EXPECT_EQ(orphans, 0);
}

TEST(HostStackRouting, ForwardsAcrossSubnetsAndDecrementsTtl) {
    // client(192.168.1.10) -- gw(192.168.1.1 / 10.0.0.1) -- server(10.0.0.2)
    sim::Simulation sim{3};
    net::Node client_node{"client"}, gw_node{"gw"}, server_node{"server"};
    net::Nic client_nic{client_node, "eth0", net::MacAddress::local(1)};
    net::Nic gw_wan{gw_node, "wan", net::MacAddress::local(2)};
    net::Nic gw_lan{gw_node, "lan", net::MacAddress::local(3)};
    net::Nic server_nic{server_node, "eth0", net::MacAddress::local(4)};
    net::Link wan{sim, net::LinkConfig{}}, lan{sim, net::LinkConfig{}};
    wan.attach(client_nic, gw_wan);
    lan.attach(gw_lan, server_nic);

    tcp::HostStack client{sim, client_node}, gw{sim, gw_node}, server{sim, server_node};
    client.add_interface(client_nic, net::Ipv4Address{192, 168, 1, 10}, 24);
    client.set_default_gateway(net::Ipv4Address{192, 168, 1, 1});
    gw.add_interface(gw_wan, net::Ipv4Address{192, 168, 1, 1}, 24);
    gw.add_interface(gw_lan, net::Ipv4Address{10, 0, 0, 1}, 24);
    gw.set_ip_forwarding(true);
    server.add_interface(server_nic, net::Ipv4Address{10, 0, 0, 2}, 24);
    server.set_default_gateway(net::Ipv4Address{10, 0, 0, 1});

    auto listener = server.tcp_listen(80);
    bool accepted = false;
    listener->set_accept_handler([&](std::shared_ptr<tcp::TcpConnection>) { accepted = true; });
    auto conn = client.tcp_connect(net::Ipv4Address{10, 0, 0, 2}, 80);
    sim.run_until(sim::TimePoint{} + sim::seconds{3});
    EXPECT_TRUE(accepted);
    EXPECT_EQ(conn->state(), tcp::TcpState::kEstablished);
    EXPECT_GT(gw.stats().ip_forwarded, 0u);
}

TEST(HostStackRouting, NonForwardingHostDropsTransit) {
    TwoHostLan lan;
    // Address a packet to a foreign subnet via the server (which does not
    // forward).
    lan.client.arp_table().add_static(net::Ipv4Address{10, 0, 0, 2},
                                      lan.server_nic.mac());
    lan.client.set_default_gateway(lan.server_ip);
    auto sock = lan.client.udp_bind(1);
    sock->send_to(net::Ipv4Address{172, 16, 0, 1}, 2, util::Bytes{1});
    lan.sim.run_for(sim::seconds{1});
    EXPECT_GT(lan.server.stats().ip_dropped_not_local, 0u);
}

TEST(HostStackPower, DeadStackIsCompletelySilent) {
    TwoHostLan lan;
    auto listener = lan.server.tcp_listen(80);
    lan.server_node.power_off();
    auto conn = lan.client.tcp_connect(lan.server_ip, 80);
    lan.sim.run_for(sim::seconds{5});
    // No ARP reply, no SYN/ACK, no RST: client still retrying its SYN.
    EXPECT_EQ(conn->state(), tcp::TcpState::kSynSent);
    EXPECT_EQ(lan.server.stats().ip_in, 0u);
}

} // namespace
} // namespace sttcp
