// Shared fixtures for integration tests: small canned topologies.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "net/hub.hpp"
#include "net/nic.hpp"
#include "net/node.hpp"
#include "sim/simulation.hpp"
#include "tcp/host_stack.hpp"

namespace sttcp::testing {

// Two hosts (10.0.0.1 client, 10.0.0.2 server) on one hub.
struct TwoHostLan {
    explicit TwoHostLan(net::LinkConfig link = {}, tcp::TcpConfig tcp = {})
        : sim(42),
          hub(sim, "hub"),
          client_node("client"),
          server_node("server"),
          client_nic(client_node, "eth0", net::MacAddress::local(1)),
          server_nic(server_node, "eth0", net::MacAddress::local(2)),
          client(sim, client_node, tcp),
          server(sim, server_node, tcp) {
        hub.connect(client_nic, link);
        hub.connect(server_nic, link);
        client.add_interface(client_nic, net::Ipv4Address{10, 0, 0, 1}, 24);
        server.add_interface(server_nic, net::Ipv4Address{10, 0, 0, 2}, 24);
    }

    sim::Simulation sim;
    net::Hub hub;
    net::Node client_node;
    net::Node server_node;
    net::Nic client_nic;
    net::Nic server_nic;
    tcp::HostStack client;
    tcp::HostStack server;

    net::Ipv4Address client_ip{10, 0, 0, 1};
    net::Ipv4Address server_ip{10, 0, 0, 2};
};

inline util::Bytes make_payload(std::size_t n, std::uint8_t seed = 0) {
    util::Bytes data(n);
    for (std::size_t i = 0; i < n; ++i)
        data[i] = static_cast<std::uint8_t>((i * 131 + seed) & 0xff);
    return data;
}

} // namespace sttcp::testing
