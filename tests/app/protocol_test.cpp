// Application protocol: framing and the deterministic byte patterns the
// client verifies across failovers.
#include <gtest/gtest.h>

#include "app/protocol.hpp"

namespace sttcp::app {
namespace {

TEST(Protocol, RequestRoundTrip) {
    Request req{.id = 42, .response_size = 10 * 1024, .upload_size = 5000};
    util::Bytes raw = encode_request(req);
    ASSERT_EQ(raw.size(), kRequestSize);
    Request back = decode_request(raw);
    EXPECT_EQ(back.id, 42u);
    EXPECT_EQ(back.response_size, 10u * 1024);
    EXPECT_EQ(back.upload_size, 5000u);
}

TEST(Protocol, EncodingIsDeterministic) {
    Request req{.id = 7, .response_size = 150, .upload_size = 0};
    EXPECT_EQ(encode_request(req), encode_request(req));
}

TEST(Protocol, ResponseBytesDependOnIdAndOffset) {
    // Same (id, offset) -> same byte; changing either changes the stream.
    EXPECT_EQ(response_byte(1, 100), response_byte(1, 100));
    int diff_id = 0, diff_off = 0;
    for (std::uint64_t i = 0; i < 256; ++i) {
        if (response_byte(1, i) != response_byte(2, i)) ++diff_id;
        if (response_byte(1, i) != response_byte(1, i + 1000)) ++diff_off;
    }
    EXPECT_GT(diff_id, 200);
    EXPECT_GT(diff_off, 200);
}

TEST(Protocol, UploadPatternDistinctFromResponsePattern) {
    int diff = 0;
    for (std::uint64_t i = 0; i < 256; ++i) {
        if (upload_byte(3, i) != response_byte(3, i)) ++diff;
    }
    EXPECT_GT(diff, 200);
}

TEST(Protocol, ResponseHeaderEchoesRequest) {
    Request req{.id = 0xdead, .response_size = 0xbeef, .upload_size = 0};
    util::Bytes header = encode_response_header(req);
    ASSERT_EQ(header.size(), kHeaderSize);
    util::WireReader r{header};
    EXPECT_EQ(r.u32(), 0xdeadu);
    EXPECT_EQ(r.u32(), 0xbeefu);
}

} // namespace
} // namespace sttcp::app
