// ResponderApp + ClientDriver over a plain (non-replicated) stack: the
// workload machinery must be correct independently of ST-TCP.
#include <gtest/gtest.h>

#include "../test_support.hpp"
#include "app/client_driver.hpp"
#include "app/responder.hpp"

namespace sttcp {
namespace {

using testing::TwoHostLan;

struct AppFixture : ::testing::Test {
    TwoHostLan lan;
    app::ResponderApp server_app;
    std::shared_ptr<tcp::TcpListener> listener;

    AppFixture() {
        listener = lan.server.tcp_listen(8000);
        server_app.attach(*listener);
    }

    app::ClientDriver::Result run(const app::Workload& w,
                                  sim::Duration limit = sim::minutes{5}) {
        app::ClientDriver driver{lan.client, lan.server_ip, 8000, w};
        bool done = false;
        driver.start([&] { done = true; });
        sim::TimePoint deadline = lan.sim.now() + limit;
        while (!done && lan.sim.now() < deadline)
            lan.sim.run_until(lan.sim.now() + sim::milliseconds{100});
        return driver.result();
    }
};

TEST_F(AppFixture, EchoWorkloadCompletesAndVerifies) {
    auto r = run(app::Workload::echo());
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.verify_errors, 0u);
    EXPECT_EQ(r.bytes_received, 100u * 150);
    EXPECT_EQ(r.round_seconds.size(), 100u);
    EXPECT_EQ(server_app.stats().requests_served, 100u);
    EXPECT_EQ(server_app.stats().connections, 1u);
}

TEST_F(AppFixture, InteractiveRoundsAreUniform) {
    auto r = run(app::Workload::interactive());
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.bytes_received, 100u * 10240);
    // Steady-state rounds (after slow start) should be nearly identical.
    double mid = r.round_seconds[50];
    for (std::size_t i = 40; i < 90; ++i) {
        EXPECT_NEAR(r.round_seconds[i], mid, mid * 0.5) << "round " << i;
    }
}

TEST_F(AppFixture, BulkTransferDeliversEveryByte) {
    auto r = run(app::Workload::bulk_mb(2));
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.bytes_received, 2u << 20);
    EXPECT_EQ(r.verify_errors, 0u);
}

TEST_F(AppFixture, UploadWorkloadDrainsClientData) {
    auto r = run(app::Workload::upload_kb(64, 3));
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(server_app.stats().upload_bytes_received, 3u * 64 * 1024);
    EXPECT_EQ(server_app.stats().requests_served, 3u);
}

TEST_F(AppFixture, SequentialRequestsNeverOverlap) {
    // The driver is strictly request-then-response; the server serves them
    // one at a time, so requests_served ticks in lockstep with rounds.
    auto r = run(app::Workload{"mini", 5, 1024, 0});
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.round_seconds.size(), 5u);
    EXPECT_EQ(server_app.stats().requests_served, 5u);
}

TEST_F(AppFixture, ServerSurvivesClientAbort) {
    app::ClientDriver driver{lan.client, lan.server_ip, 8000, app::Workload::bulk_mb(1)};
    driver.start();
    lan.sim.run_for(sim::milliseconds{200});
    // Abort mid-transfer: server session must tear down without issue.
    auto conns = lan.client.connections();
    ASSERT_FALSE(conns.empty());
    conns.front()->abort();
    lan.sim.run_for(sim::seconds{2});
    EXPECT_TRUE(lan.server.connections().empty());

    // And the server still accepts new work afterwards.
    auto r = run(app::Workload::echo());
    EXPECT_TRUE(r.completed);
}

TEST_F(AppFixture, MultipleSequentialClients) {
    for (int i = 0; i < 3; ++i) {
        auto r = run(app::Workload{"burst", 10, 2048, 0});
        ASSERT_TRUE(r.completed) << "client " << i;
        EXPECT_EQ(r.verify_errors, 0u);
    }
    EXPECT_EQ(server_app.stats().connections, 3u);
    EXPECT_EQ(server_app.stats().requests_served, 30u);
}

} // namespace
} // namespace sttcp
