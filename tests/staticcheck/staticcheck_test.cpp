// End-to-end tests of the staticcheck binary over planted fixture trees:
// every rule must fire at the expected file:line on the bad tree, the clean
// tree and both waiver syntaxes must pass, and — the self-hosting check —
// the real src/ tree must be clean. The binary path and fixture root come
// in as compile definitions from tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>

namespace {

struct RunResult {
    int exit_code = -1;
    std::string output;
};

RunResult run_staticcheck(const std::string& args) {
    std::string cmd = std::string(STTCP_STATICCHECK_BIN) + " " + args + " 2>&1";
    RunResult r;
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) return r;
    char buf[4096];
    while (std::fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
    int status = pclose(pipe);
    if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
    return r;
}

std::string fixture(const char* tree) {
    return std::string(STTCP_STATICCHECK_FIXTURES) + "/" + tree;
}

TEST(Staticcheck, BadTreeFiresEveryRuleAtTheRightLine) {
    RunResult r = run_staticcheck("--root " + fixture("bad"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("tcp/conn.hpp:4: [layer-dag]"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("util/b.hpp:3: [include-cycle]"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("util/a.hpp -> util/b.hpp -> util/a.hpp"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("tcp/conn.hpp:11: [state-funnel]"), std::string::npos) << r.output;
    // Both halves of event-lifecycle: missing destructor (at the class) and
    // a cancel that leaves the id armed (at the cancel).
    EXPECT_NE(r.output.find("sttcp/engine.hpp:11: [event-lifecycle]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("sttcp/engine.hpp:16: [event-lifecycle]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("sttcp/rto.hpp:20: [timer-rearm]"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("net/gadget.hpp:16: [this-capture]"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("tcp/seqmath.hpp:15: [seq-raw]"), std::string::npos) << r.output;
}

TEST(Staticcheck, DataflowRulesFireAtTheRightLine) {
    RunResult r = run_staticcheck("--root " + fixture("bad"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // Path-sensitive event-lifecycle: reset missing on one branch only
    // (reported at the cancel), overwrite of a definitely-live id, and a
    // read of a definitely-cancelled id.
    EXPECT_NE(r.output.find("sttcp/paths.hpp:21: [event-lifecycle]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("sttcp/paths.hpp:29: [event-lifecycle]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("sttcp/paths.hpp:34: [event-lifecycle]"), std::string::npos)
        << r.output;
    // guarded-by: no lock at all, and lock held on only one of two paths.
    EXPECT_NE(r.output.find("fuzz/counter.hpp:11: [guarded-by]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("fuzz/counter.hpp:18: [guarded-by]"), std::string::npos)
        << r.output;
    // payload-move: double move, and read after an unconditional move.
    EXPECT_NE(r.output.find("util/pipeline.hpp:16: [payload-move]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("util/pipeline.hpp:21: [payload-move]"), std::string::npos)
        << r.output;
    // waiver.stale: a waiver that suppresses nothing.
    EXPECT_NE(r.output.find("util/stale.hpp:5: [waiver.stale]"), std::string::npos)
        << r.output;
}

TEST(Staticcheck, WireTaintRulesFireAtTheRightLine) {
    RunResult r = run_staticcheck("--root " + fixture("bad"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // Direct flows: wire field into a subscript, into a narrowing cast, and
    // a WireReader read used as an index.
    EXPECT_NE(r.output.find("net/taint.hpp:18: [taint.wire_to_index]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("net/taint.hpp:22: [taint.narrowing]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("net/taint.hpp:26: [taint.wire_to_index]"), std::string::npos)
        << r.output;
    // Interprocedural: at() indexes its parameter unsanitized; the finding
    // lands at the call site that passes the wire field in.
    EXPECT_NE(r.output.find("net/taint.hpp:34: [taint.wire_to_index]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("inside it (line 30)"), std::string::npos) << r.output;
    // at() itself must NOT be reported: its parameter is not wire-tainted.
    EXPECT_EQ(r.output.find("net/taint.hpp:30:"), std::string::npos) << r.output;
}

TEST(Staticcheck, MigratedLintRulesFireAtTheRightLine) {
    RunResult r = run_staticcheck("--root " + fixture("bad"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("tcp/alloc.hpp:6: [payload-alloc]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("tcp/alloc.hpp:10: [payload-alloc]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("tcp/alloc.hpp:14: [payload-alloc]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("sttcp/impair.hpp:10: [impairment-api]"), std::string::npos)
        << r.output;
}

TEST(Staticcheck, ParallelRunIsByteIdenticalToSerial) {
    RunResult serial = run_staticcheck("--root " + fixture("bad") + " --jobs 1");
    RunResult parallel = run_staticcheck("--root " + fixture("bad") + " --jobs 4");
    EXPECT_EQ(serial.exit_code, 1);
    EXPECT_EQ(parallel.exit_code, 1);
    EXPECT_EQ(serial.output, parallel.output);
}

TEST(Staticcheck, CleanTreePasses) {
    RunResult r = run_staticcheck("--root " + fixture("clean"));
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("files clean"), std::string::npos) << r.output;
}

TEST(Staticcheck, BothWaiverSyntaxesSuppress) {
    RunResult r = run_staticcheck("--root " + fixture("waived"));
    EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Staticcheck, SrcTreeIsClean) {
    // The self-hosting gate: the analyzer must pass over the real sources.
    RunResult r = run_staticcheck("--root " + std::string(STTCP_SRC_DIR));
    EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(Staticcheck, JsonReportListsFindings) {
    std::string json_path = ::testing::TempDir() + "/staticcheck_report.json";
    RunResult r = run_staticcheck("--root " + fixture("bad") + " --json " + json_path);
    EXPECT_EQ(r.exit_code, 1) << r.output;

    std::ifstream in(json_path);
    ASSERT_TRUE(in.good()) << "no JSON report at " << json_path;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string json = ss.str();
    EXPECT_NE(json.find("\"rule\": \"state-funnel\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"rule\": \"layer-dag\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"file\": \"tcp/conn.hpp\""), std::string::npos) << json;
    std::remove(json_path.c_str());
}

TEST(Staticcheck, UnknownArgumentIsAUsageError) {
    RunResult r = run_staticcheck("--frobnicate");
    EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(Staticcheck, BaselineWriteThenSuppressRoundTrips) {
    std::string base_path = ::testing::TempDir() + "/staticcheck_baseline.txt";
    // --write-baseline records the bad tree's findings and exits 0.
    RunResult w = run_staticcheck("--root " + fixture("bad") + " --baseline " + base_path +
                                  " --write-baseline");
    EXPECT_EQ(w.exit_code, 0) << w.output;
    // A rerun against that baseline suppresses everything: clean exit.
    RunResult r = run_staticcheck("--root " + fixture("bad") + " --baseline " + base_path);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("baselined finding(s) suppressed"), std::string::npos)
        << r.output;
    std::remove(base_path.c_str());
}

TEST(Staticcheck, BaselineMatchesOnMessageNotLine) {
    // Shift every line number in the baseline: findings must STILL be
    // suppressed, because identity is (file, rule, message).
    std::string base_path = ::testing::TempDir() + "/staticcheck_baseline_shift.txt";
    RunResult w = run_staticcheck("--root " + fixture("bad") + " --baseline " + base_path +
                                  " --write-baseline");
    ASSERT_EQ(w.exit_code, 0) << w.output;
    std::ifstream in(base_path);
    std::stringstream shifted;
    std::string line;
    while (std::getline(in, line)) {
        std::size_t colon = line.find(':');
        ASSERT_NE(colon, std::string::npos) << line;
        shifted << line.substr(0, colon) << ":9999" << line.substr(line.find(':', colon + 1))
                << "\n";
    }
    in.close();
    std::ofstream out(base_path);
    out << shifted.str();
    out.close();
    RunResult r = run_staticcheck("--root " + fixture("bad") + " --baseline " + base_path);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    std::remove(base_path.c_str());
}

TEST(Staticcheck, WriteBaselineRequiresBaselinePath) {
    RunResult r = run_staticcheck("--root " + fixture("bad") + " --write-baseline");
    EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(Staticcheck, SarifOutputMatchesGolden) {
    std::string sarif_path = ::testing::TempDir() + "/staticcheck_report.sarif";
    RunResult r = run_staticcheck("--root " + fixture("bad") + " --sarif " + sarif_path);
    EXPECT_EQ(r.exit_code, 1) << r.output;

    std::ifstream in(sarif_path);
    ASSERT_TRUE(in.good()) << "no SARIF report at " << sarif_path;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string actual = ss.str();
    std::remove(sarif_path.c_str());

    std::ifstream gold(std::string(STTCP_STATICCHECK_GOLDEN) + "/bad.sarif");
    ASSERT_TRUE(gold.good()) << "missing golden file";
    std::stringstream gs;
    gs << gold.rdbuf();
    std::string expected = gs.str();
    // The golden is root-agnostic: @ROOT@ stands for the absolute fixture
    // root embedded in originalUriBaseIds.
    const std::string marker = "@ROOT@";
    std::size_t pos = expected.find(marker);
    ASSERT_NE(pos, std::string::npos);
    expected.replace(pos, marker.size(), fixture("bad"));
    EXPECT_EQ(actual, expected);
}

} // namespace
