// Unit tests for the per-function CFG builder and the dataflow solver:
// the statement subset must produce connected graphs, anything outside the
// subset must mark the CFG not-ok (the safe-degradation contract of
// DESIGN.md §12.4), and lambda bodies must surface as opaque sub-ranges.
#include <gtest/gtest.h>

#include <string>

#include "cfg.hpp"
#include "dataflow.hpp"
#include "lexer.hpp"

namespace {

using staticcheck::Cfg;
using staticcheck::LexResult;
using staticcheck::build_cfg;

struct Built {
    LexResult lexed;
    Cfg cfg;
};

// Lexes a brace-enclosed body and builds its CFG.
Built build(const std::string& body) {
    Built b;
    b.lexed = staticcheck::lex(body);
    b.cfg = build_cfg(b.lexed.tokens, 0, b.lexed.tokens.size());
    return b;
}

// The entry state reaches the exit node through the solver.
bool exit_reachable(const Built& b) {
    auto in = staticcheck::solve_forward(
        b.cfg, 0, [](int, const int& s) { return s + 1; },
        [](const int& a, const int& bb) { return a < bb ? a : bb; });
    return !in.empty() && in[static_cast<std::size_t>(b.cfg.exit)].has_value();
}

TEST(StaticcheckCfg, StraightLineBody) {
    Built b = build("{ a = 1; f(a); return a; }");
    ASSERT_TRUE(b.cfg.ok);
    EXPECT_TRUE(exit_reachable(b));
}

TEST(StaticcheckCfg, IfElseBothPathsReachExit) {
    Built b = build("{ if (x) { a(); } else { b(); } c(); }");
    ASSERT_TRUE(b.cfg.ok);
    EXPECT_TRUE(exit_reachable(b));
}

TEST(StaticcheckCfg, IfConstexprIsModelled) {
    Built b = build("{ if constexpr (kFlag) { a(); } b(); }");
    ASSERT_TRUE(b.cfg.ok);
    EXPECT_TRUE(exit_reachable(b));
}

TEST(StaticcheckCfg, LoopsAreModelled) {
    EXPECT_TRUE(build("{ while (x) { step(); } }").cfg.ok);
    EXPECT_TRUE(build("{ for (int i = 0; i < n; ++i) { step(i); } }").cfg.ok);
    EXPECT_TRUE(build("{ for (auto& v : vec) { use(v); } }").cfg.ok);
    EXPECT_TRUE(build("{ do { step(); } while (x); }").cfg.ok);
}

TEST(StaticcheckCfg, SwitchWithBreaksAndDefault) {
    Built b = build(
        "{ switch (s) { case kA: a(); break; case kB: b(); [[fallthrough]]; "
        "default: d(); break; } tail(); }");
    ASSERT_TRUE(b.cfg.ok);
    EXPECT_TRUE(exit_reachable(b));
}

TEST(StaticcheckCfg, EarlyReturnAndBreakContinue) {
    Built b = build("{ while (x) { if (y) { break; } if (z) { continue; } w(); } t(); }");
    ASSERT_TRUE(b.cfg.ok);
    EXPECT_TRUE(exit_reachable(b));
    EXPECT_TRUE(build("{ if (x) { return 1; } return 2; }").cfg.ok);
}

TEST(StaticcheckCfg, LambdaBodiesAreOpaqueSubRanges) {
    Built b = build("{ q.schedule_after(10, [this] { fire(); }); done(); }");
    ASSERT_TRUE(b.cfg.ok);
    ASSERT_EQ(b.cfg.lambda_bodies.size(), 1u);
    auto [lo, hi] = b.cfg.lambda_bodies[0];
    EXPECT_TRUE(b.cfg.opaque(lo));
    EXPECT_TRUE(b.cfg.opaque(hi - 1));
    // The tokens around the lambda stay transparent.
    EXPECT_FALSE(b.cfg.opaque(hi));
}

TEST(StaticcheckCfg, UnmodellableConstructsDegradeSafely) {
    EXPECT_FALSE(build("{ goto out; out: return; }").cfg.ok);
    EXPECT_FALSE(build("{ retry: f(); if (x) { return; } }").cfg.ok);
    EXPECT_FALSE(build("{ try { f(); } catch (...) { g(); } }").cfg.ok);
    EXPECT_FALSE(build("{ co_return; }").cfg.ok);
}

TEST(StaticcheckCfg, CaseLabelsAreNotMistakenForGotoLabels) {
    EXPECT_TRUE(build("{ switch (x) { case kOne: f(); break; } }").cfg.ok);
}

} // namespace
