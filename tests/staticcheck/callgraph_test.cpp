// Unit tests for the interprocedural layer: call-graph shape (lambda
// sub-nodes, virtual-call havoc, SCC condensation of mutual recursion) and
// the bottom-up function summaries computed over it. The fixture tree lives
// in fixtures/cg and is loaded through the real load_tree path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "callgraph.hpp"
#include "model.hpp"
#include "summary.hpp"

namespace {

using staticcheck::CallGraph;
using staticcheck::FunctionBody;
using staticcheck::SummaryTable;
using staticcheck::Tree;

struct Loaded {
    Tree tree;
    CallGraph cg;
    SummaryTable sums;
};

Loaded& load_cg_tree() {
    static Loaded* loaded = [] {
        auto* l = new Loaded;
        const std::string root = std::string(STTCP_STATICCHECK_FIXTURES) + "/cg";
        if (!staticcheck::load_tree(root, l->tree)) std::abort();
        l->cg = staticcheck::build_callgraph(l->tree);
        l->sums = staticcheck::build_summaries(l->tree, l->cg);
        return l;
    }();
    return *loaded;
}

const FunctionBody* find_fn(const Tree& tree, const std::string& cls,
                            const std::string& name) {
    if (cls.empty()) {
        for (const FunctionBody& f : tree.free_functions) {
            if (f.name == name) return &f;
        }
        return nullptr;
    }
    auto it = tree.classes.find(cls);
    if (it == tree.classes.end()) return nullptr;
    for (const FunctionBody& f : it->second.functions) {
        if (f.name == name) return &f;
    }
    return nullptr;
}

int node_of(const Loaded& l, const std::string& cls, const std::string& name) {
    const FunctionBody* fn = find_fn(l.tree, cls, name);
    if (fn == nullptr) return -1;
    auto it = l.cg.primary.find(fn);
    return it == l.cg.primary.end() ? -1 : it->second;
}

TEST(StaticcheckCallgraph, LambdaBodiesBecomeSubNodes) {
    Loaded& l = load_cg_tree();
    int host = node_of(l, "Engine", "host");
    ASSERT_GE(host, 0);
    const auto& node = l.cg.nodes[static_cast<std::size_t>(host)];
    ASSERT_EQ(node.lambdas.size(), 1u);
    const auto& lam = l.cg.nodes[static_cast<std::size_t>(node.lambdas[0])];
    EXPECT_EQ(lam.parent, host);
    // The sub-node analyzes a strict sub-range of the host body.
    EXPECT_GT(lam.begin, node.begin);
    EXPECT_LE(lam.end, node.end);
}

TEST(StaticcheckCallgraph, VirtualCallMarksUnknownCallees) {
    Loaded& l = load_cg_tree();
    int churn = node_of(l, "Engine", "churn");
    ASSERT_GE(churn, 0);
    EXPECT_TRUE(l.cg.nodes[static_cast<std::size_t>(churn)].has_unknown_callees);
    // A decl-only non-virtual callee is "outside the tree", not unknown.
    int arm = node_of(l, "Engine", "arm");
    ASSERT_GE(arm, 0);
    EXPECT_FALSE(l.cg.nodes[static_cast<std::size_t>(arm)].has_unknown_callees);
}

TEST(StaticcheckCallgraph, MutualRecursionCondensesToOneScc) {
    Loaded& l = load_cg_tree();
    int even = node_of(l, "", "even");
    int odd = node_of(l, "", "odd");
    ASSERT_GE(even, 0);
    ASSERT_GE(odd, 0);
    ASSERT_NE(even, odd);
    EXPECT_EQ(l.cg.nodes[static_cast<std::size_t>(even)].scc,
              l.cg.nodes[static_cast<std::size_t>(odd)].scc);
    // Each calls the other.
    const auto& ec = l.cg.nodes[static_cast<std::size_t>(even)].callees;
    const auto& oc = l.cg.nodes[static_cast<std::size_t>(odd)].callees;
    EXPECT_NE(std::find(ec.begin(), ec.end(), odd), ec.end());
    EXPECT_NE(std::find(oc.begin(), oc.end(), even), oc.end());
    // Non-recursive nodes form singleton SCCs.
    int arm = node_of(l, "Engine", "arm");
    ASSERT_GE(arm, 0);
    EXPECT_EQ(l.cg.sccs[static_cast<std::size_t>(
                            l.cg.nodes[static_cast<std::size_t>(arm)].scc)]
                  .size(),
              1u);
}

TEST(StaticcheckCallgraph, SccOrderIsBottomUp) {
    Loaded& l = load_cg_tree();
    // Every edge must point into the same SCC or an earlier-listed one.
    for (const auto& node : l.cg.nodes) {
        for (int callee : node.callees) {
            EXPECT_LE(l.cg.nodes[static_cast<std::size_t>(callee)].scc, node.scc);
        }
    }
}

TEST(StaticcheckSummary, EffectMasksArePerMemberAndPrecise) {
    Loaded& l = load_cg_tree();
    const auto* arm = l.sums.find("Engine", "arm");
    ASSERT_NE(arm, nullptr);
    EXPECT_EQ(arm->event_effect("timer_"), staticcheck::kEffLive);
    const auto* disarm = l.sums.find("Engine", "disarm");
    ASSERT_NE(disarm, nullptr);
    EXPECT_EQ(disarm->event_effect("timer_"), staticcheck::kEffInvalid);
}

TEST(StaticcheckSummary, CalleeEffectsComposeThroughCalls) {
    // rearm() only calls disarm() then arm(); its published mask must be
    // the composition (ends Live), not havoc.
    const auto* rearm = load_cg_tree().sums.find("Engine", "rearm");
    ASSERT_NE(rearm, nullptr);
    EXPECT_EQ(rearm->event_effect("timer_"), staticcheck::kEffLive);
}

TEST(StaticcheckSummary, UnknownCalleesPublishHavoc) {
    // churn() calls a virtual: dynamic dispatch could do anything to the
    // members, so the summary must claim nothing definite.
    const auto* churn = load_cg_tree().sums.find("Engine", "churn");
    ASSERT_NE(churn, nullptr);
    EXPECT_EQ(churn->event_effect("timer_"), staticcheck::kEffHavoc);
}

TEST(StaticcheckSummary, RecursionReachesAFixpoint) {
    // Existence of both summaries proves the in-SCC iteration terminated.
    EXPECT_NE(load_cg_tree().sums.find("", "even"), nullptr);
    EXPECT_NE(load_cg_tree().sums.find("", "odd"), nullptr);
}

} // namespace
