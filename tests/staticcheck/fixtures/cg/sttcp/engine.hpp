// Fixture tree for the call-graph / summary unit tests (callgraph_test.cpp):
// effect masks seen through same-class calls, virtual-call havoc, lambda
// sub-nodes, and a mutually recursive pair condensed into one SCC.
#pragma once

struct EventId {
    long v = -1;
};

inline EventId kInvalidEventId;

class Engine {
  public:
    void arm() { timer_ = schedule_at(); }
    void disarm() { timer_ = kInvalidEventId; }
    void rearm() {
        disarm();
        arm();
    }
    void churn() {
        tweak();
        timer_ = schedule_at();
    }
    void host() {
        run([this] { timer_ = schedule_at(); });
    }
    virtual void tweak();

  private:
    EventId schedule_at();
    void run(int f);
    EventId timer_;
};

inline int odd(int n);

inline int even(int n) {
    if (n == 0) return 1;
    return odd(n - 1);
}

inline int odd(int n) {
    if (n == 0) return 0;
    return even(n - 1);
}
