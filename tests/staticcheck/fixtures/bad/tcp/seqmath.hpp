// Fixture: raw sequence-number arithmetic outside util/seq32.
#pragma once

#include <cstdint>

class FakeSeq {
public:
    [[nodiscard]] std::uint32_t raw() const { return v_; }

private:
    std::uint32_t v_ = 0;
};

inline std::int32_t bad_delta(FakeSeq a, FakeSeq b) {
    return static_cast<std::int32_t>(a.raw() - b.raw());
}
