// Fixture: layer-dag violation (tcp including sttcp) and a state_ write
// outside the transition() funnel.
#pragma once
#include "sttcp/engine.hpp"

enum class TcpState { kClosed, kEstablished };

class BadConn {
public:
    void bump() {
        state_ = TcpState::kEstablished;
    }

private:
    TcpState state_ = TcpState::kClosed;
};
