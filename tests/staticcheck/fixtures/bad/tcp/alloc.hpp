// Fixture: payload-alloc violations — raw byte-buffer allocation outside
// the pooled-payload layer (util/shared_payload, util/buffer_pool).
#pragma once

inline unsigned char* grab(unsigned long n) {
    return new unsigned char[n];
}

inline void drop(unsigned char* p) {
    delete[] p;
}

inline void* legacy(unsigned long n) {
    return malloc(n);
}
