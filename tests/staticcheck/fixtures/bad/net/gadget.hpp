// Fixture: [this]-capturing registration with no teardown path.
#pragma once

#include <functional>

class Bus {
public:
    void subscribe(std::function<void()> fn);
};

class Gadget {
public:
    explicit Gadget(Bus& bus) : bus_(bus) {}

    void hook() {
        bus_.subscribe([this] { ++hits_; });
    }

private:
    Bus& bus_;
    int hits_ = 0;
};
