// Fixture: wire-taint violations — a wire field indexed with no range
// check, a narrowing cast of a wire length, a WireReader read used as an
// index, and a flow through a helper reported at the call site.
#pragma once

struct TcpSegment {
    unsigned short window;
    unsigned long doff;
};

struct WireReader {
    unsigned long u16();
};

inline int table[64];

inline int pick(const TcpSegment& seg) {
    return table[seg.doff];
}

inline unsigned char shrink(const TcpSegment& seg) {
    return static_cast<unsigned char>(seg.window);
}

inline int read_index(WireReader r) {
    return table[r.u16()];
}

inline int at(unsigned long pos) {
    return table[pos];
}

inline int call_through(const TcpSegment& seg) {
    return at(seg.doff);
}
