// Fixture: payload-move violations — a buffer moved twice and a buffer
// read after every path to the read has moved it.
#pragma once

#include <utility>

struct Bytes {
    void clear();
    unsigned long size() const;
};

void sink(Bytes&& b);

inline void double_move(Bytes b) {
    sink(std::move(b));
    sink(std::move(b));
}

inline unsigned long use_after_move(Bytes b) {
    sink(std::move(b));
    return b.size();
}
