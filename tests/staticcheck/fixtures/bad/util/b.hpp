// Fixture: include cycle — the include below closes it.
#pragma once
#include "util/a.hpp"

inline int b_value() { return 2; }
