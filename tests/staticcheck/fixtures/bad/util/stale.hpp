// Fixture: a waiver that suppresses nothing — waiver.stale reports it so
// dead waivers cannot accumulate and masquerade as known findings.
#pragma once

// lint:allow seq-raw -- left over from a refactor; nothing here uses raw()
inline int identity(int x) {
    return x;
}
