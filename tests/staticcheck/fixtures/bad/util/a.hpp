// Fixture: include cycle (util/a.hpp <-> util/b.hpp).
#pragma once
#include "util/b.hpp"

inline int a_value() { return 1; }
