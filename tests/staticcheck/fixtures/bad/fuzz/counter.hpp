// Fixture: guarded-by violations — an annotated member accessed with no
// lock at all, and one whose lock is only held on one of two paths (the
// intersection join proves nothing is held at the access).
#pragma once

#include <mutex>

class BadCounter {
public:
    void add(int n) {
        total_ += n;
    }

    int read_racy(bool fast) {
        if (!fast) {
            mu_.lock();
        }
        int v = total_;
        if (!fast) {
            mu_.unlock();
        }
        return v;
    }

private:
    std::mutex mu_;
    int total_ = 0;  // guarded_by(mu_)
};
