// Fixture: timer-rearm violation — an EventId member cancelled and
// immediately rescheduled, which is rearm() spelled as two calls.
#pragma once

namespace sim {
using EventId = unsigned;
inline constexpr EventId kInvalidEventId = 0;
class Simulation;
} // namespace sim

class BadRto {
public:
    explicit BadRto(sim::Simulation& s) : sim_(s) {}
    ~BadRto() {
        sim_.cancel(rto_);
        rto_ = sim::kInvalidEventId;
    }

    void extend_deadline() {
        sim_.cancel(rto_);
        rto_ = sim_.schedule_after(100, [] {});
    }

private:
    sim::Simulation& sim_;
    sim::EventId rto_ = sim::kInvalidEventId;
};
