// Fixture: path-sensitive event-lifecycle violations the old adjacency
// window could not see — a reset missing on one branch only, a read of a
// cancelled id, and an overwrite of a definitely-live id.
#pragma once

namespace sim {
using EventId = unsigned;
inline constexpr EventId kInvalidEventId = 0;
class Simulation;
} // namespace sim

class BadPaths {
public:
    explicit BadPaths(sim::Simulation& s) : sim_(s) {}
    ~BadPaths() {
        sim_.cancel(timer_);
        timer_ = sim::kInvalidEventId;
    }

    void stop_if(bool hard) {
        sim_.cancel(timer_);
        if (hard) {
            timer_ = sim::kInvalidEventId;
        }
    }

    void double_arm() {
        timer_ = sim_.schedule_after(50, [] {});
        timer_ = sim_.schedule_after(90, [] {});
    }

    bool was_armed() {
        sim_.cancel(timer_);
        bool armed = timer_ != sim::kInvalidEventId;
        timer_ = sim::kInvalidEventId;
        return armed;
    }

private:
    sim::Simulation& sim_;
    sim::EventId timer_ = sim::kInvalidEventId;
};
