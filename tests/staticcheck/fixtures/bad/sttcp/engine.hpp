// Fixture: event-lifecycle violations — a cancel with no reset, and an
// EventId member whose class has no destructor to cancel it.
#pragma once

namespace sim {
using EventId = unsigned;
inline constexpr EventId kInvalidEventId = 0;
class Simulation;
} // namespace sim

class BadEngine {
public:
    explicit BadEngine(sim::Simulation& s) : sim_(s) {}

    void disarm() {
        sim_.cancel(timer_);
    }

private:
    sim::Simulation& sim_;
    sim::EventId timer_ = sim::kInvalidEventId;
};
