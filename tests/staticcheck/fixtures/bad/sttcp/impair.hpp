// Fixture: impairment-api violation — engine-layer code reaching into the
// legacy loss_probability knob instead of the impairment pipeline.
#pragma once

struct LinkConfig {
    double chaos = 0.0;
};

inline void degrade(LinkConfig& c, double p) {
    c.loss_probability = p;
}
