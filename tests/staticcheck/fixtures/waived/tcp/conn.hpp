// Fixture: the unified waiver syntax. A line-scoped `lint:allow` covers its
// own line and the line below; `lint:allow-file` covers the whole file.
// lint:allow-file seq-raw -- fixture exercising the file-scoped waiver
#pragma once

enum class TcpState { kClosed, kEstablished };

class WaivedConn {
public:
    void force_established() {
        // lint:allow state-funnel -- fixture exercising the line-scoped waiver
        state_ = TcpState::kEstablished;
    }

private:
    TcpState state_ = TcpState::kClosed;
};

class WaivedSeq {
public:
    [[nodiscard]] unsigned raw() const { return v_; }

private:
    unsigned v_ = 0;
};

inline unsigned waived_delta(WaivedSeq a, WaivedSeq b) { return a.raw() - b.raw(); }
