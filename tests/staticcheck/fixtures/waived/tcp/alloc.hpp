// Fixture: a waived payload-alloc finding — a deliberate raw buffer in a
// scratch path that never reaches the zero-copy pipeline.
#pragma once

inline unsigned char* grab(unsigned long n) {
    // lint:allow payload-alloc -- scratch buffer local to this helper, never pooled
    return new unsigned char[n];
}
