// Fixture: waiver.stale is itself waivable — a deliberately kept waiver
// (for code landing in a follow-up) suppressed by a waiver.stale waiver.
// lint:allow-file waiver.stale -- fixture keeps a waiver for a pending change
#pragma once

// lint:allow seq-raw -- raw() delta math returns here in the next change
inline int identity(int x) {
    return x;
}
