// Fixture: a waived payload-move finding — this call site relies on the
// moved-from-is-empty guarantee of the concrete Bytes type and says so.
#pragma once

#include <utility>

struct Bytes {
    void clear();
    unsigned long size() const;
};

void sink(Bytes&& b);

inline unsigned long moved_then_sized(Bytes b) {
    sink(std::move(b));
    // lint:allow payload-move -- moved-from Bytes is a valid empty vector here
    return b.size();
}
