// Fixture: a waived wire-taint finding — the index is bounded by a protocol
// invariant the analyzer cannot see, and the waiver says which one.
#pragma once

struct TcpSegment {
    unsigned long doff;
};

inline int table[64];

inline int pick(const TcpSegment& seg) {
    // lint:allow taint.wire_to_index -- doff is masked to 4 bits by the parser
    return table[seg.doff];
}
