// Fixture: line-scoped waiver for timer-rearm — a site where cancel and
// reschedule target different queues and so cannot be a single rearm().
#pragma once

namespace sim {
using EventId = unsigned;
inline constexpr EventId kInvalidEventId = 0;
class Simulation;
} // namespace sim

class WaivedRto {
public:
    WaivedRto(sim::Simulation& a, sim::Simulation& b) : a_(a), b_(b) {}
    ~WaivedRto() {
        a_.cancel(rto_);
        rto_ = sim::kInvalidEventId;
    }

    void migrate_deadline() {
        // lint:allow timer-rearm -- moves the timer across queues, not in place
        a_.cancel(rto_);
        rto_ = b_.schedule_after(100, [] {});
    }

private:
    sim::Simulation& a_;
    sim::Simulation& b_;
    sim::EventId rto_ = sim::kInvalidEventId;
};
