// Fixture: a line-scoped waiver on a path-sensitive event-lifecycle
// finding — the cancel intentionally leaves the id armed because the
// surrounding teardown protocol resets it from the owner's side.
#pragma once

namespace sim {
using EventId = unsigned;
inline constexpr EventId kInvalidEventId = 0;
class Simulation;
} // namespace sim

class WaivedPaths {
public:
    explicit WaivedPaths(sim::Simulation& s) : sim_(s) {}
    ~WaivedPaths() {
        sim_.cancel(timer_);
        timer_ = sim::kInvalidEventId;
    }

    void detach(bool owner_resets) {
        // lint:allow event-lifecycle -- the owner resets the id after detach
        sim_.cancel(timer_);
        if (!owner_resets) {
            timer_ = sim::kInvalidEventId;
        }
    }

private:
    sim::Simulation& sim_;
    sim::EventId timer_ = sim::kInvalidEventId;
};
