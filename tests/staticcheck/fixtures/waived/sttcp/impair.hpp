// Fixture: impairment-api waived file-wide — a chaos harness that pokes the
// legacy knob on purpose.
// lint:allow-file impairment-api -- chaos harness exercises the raw knob deliberately
#pragma once

struct LinkConfig {
    double chaos = 0.0;
};

inline void degrade(LinkConfig& c, double p) {
    c.loss_probability = p;
}
