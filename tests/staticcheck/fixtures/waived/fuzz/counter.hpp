// Fixture: a waived guarded-by access — a monitoring snapshot that
// deliberately tolerates a torn read, with the waiver naming the reason.
#pragma once

#include <mutex>

class WaivedCounter {
public:
    void add(int n) {
        std::lock_guard<std::mutex> lock(mu_);
        total_ += n;
    }

    int peek_unlocked() {
        // lint:allow guarded-by -- stats snapshot tolerates a torn read
        return total_;
    }

private:
    std::mutex mu_;
    int total_ = 0;  // guarded_by(mu_)
};
