// Fixture: sanctioned observer back-edge — check/*.cpp may include protocol
// headers (the auditors observe tcp/sttcp state), while check *headers*
// stay at rank 2 so protocol headers can include them without a cycle.
#include "tcp/conn.hpp"

void observe_conn() {}
