// Fixture: correct buffer-move discipline — a moved-from buffer refilled
// before the paths rejoin, and a read that happens strictly before the
// move. The dataflow engine must prove both clean.
#pragma once

#include <utility>

struct Bytes {
    void clear();
    unsigned long size() const;
};

void sink(Bytes&& b);

inline Bytes reuse_after_refill(Bytes b, bool flush) {
    if (flush) {
        sink(std::move(b));
        b.clear();
    }
    return b;
}

inline unsigned long move_last(Bytes b) {
    unsigned long n = b.size();
    sink(std::move(b));
    return n;
}
