// Fixture: serialization-position raw() is fine anywhere — only adjacency
// to + or - (or an int32 cast) makes it sequence arithmetic.
#pragma once

#include <cstdint>

class FakeSeq {
public:
    [[nodiscard]] std::uint32_t raw() const { return v_; }

private:
    std::uint32_t v_ = 0;
};

inline void put_u32(std::uint32_t) {}
inline void serialize(const FakeSeq& s) { put_u32(s.raw()); }
