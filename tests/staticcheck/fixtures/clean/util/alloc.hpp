// Fixture: payload allocation done right — buffers come from the pool,
// never from a raw new[] / malloc.
#pragma once

struct BufferPool {
    static BufferPool& instance();
    void* take(unsigned long n);
};

inline void* grab(unsigned long n) {
    return BufferPool::instance().take(n);
}
