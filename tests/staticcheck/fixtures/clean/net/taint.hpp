// Fixture: wire-taint done right — every sink is dominated by a range
// check, bounded by a clamp, or annotated sanitized() with a reason.
#pragma once

struct TcpSegment {
    unsigned short window;
    unsigned long doff;
};

inline int table[64];

inline int pick(const TcpSegment& seg) {
    if (seg.doff >= 64) return 0;
    return table[seg.doff];
}

inline unsigned short shrink(const TcpSegment& seg) {
    return static_cast<unsigned short>(seg.window < 9000 ? seg.window : 9000);
}

inline int annotated(const TcpSegment& seg) {
    // sanitized(seg.doff): the parser masks doff to 4 bits before scaling
    return table[seg.doff];
}

inline int at(unsigned long pos) {
    return pos < 64 ? table[pos] : 0;
}

inline int call_through(const TcpSegment& seg) {
    return at(seg.doff);
}
