// Fixture: branchy but correct EventId handling — every path resets after
// a cancel, rearm() transfers ownership of the slot, and reads happen only
// while the id is provably not stale. The dataflow engine must prove all
// of this clean (the old three-statement window could not).
#pragma once

namespace sim {
using EventId = unsigned;
inline constexpr EventId kInvalidEventId = 0;
class Simulation;
} // namespace sim

class CleanPaths {
public:
    explicit CleanPaths(sim::Simulation& s) : sim_(s) {}
    ~CleanPaths() { stop(); }

    void stop() {
        sim_.cancel(timer_);
        timer_ = sim::kInvalidEventId;
    }

    void stop_if(bool hard) {
        if (hard) {
            sim_.cancel(timer_);
            timer_ = sim::kInvalidEventId;
        } else {
            sim_.cancel(timer_);
            timer_ = sim::kInvalidEventId;
        }
    }

    void extend_or_arm() {
        if (!sim_.rearm(timer_, 100)) {
            timer_ = sim_.schedule_after(100, [] {});
        }
    }

    bool toggle(bool on) {
        if (on) {
            timer_ = sim_.schedule_after(10, [] {});
            return true;
        }
        stop();
        return false;
    }

private:
    sim::Simulation& sim_;
    sim::EventId timer_ = sim::kInvalidEventId;
};
