// Fixture: the timer-rearm rule's happy path — deadline moves go through
// rearm(), cancels that really mean "stop" reset the id.
#pragma once

namespace sim {
using EventId = unsigned;
inline constexpr EventId kInvalidEventId = 0;
class Simulation;
} // namespace sim

class CleanRto {
public:
    explicit CleanRto(sim::Simulation& s) : sim_(s) {}
    ~CleanRto() {
        sim_.cancel(rto_);
        rto_ = sim::kInvalidEventId;
    }

    void extend_deadline() {
        if (!sim_.rearm(rto_, 100)) {
            rto_ = sim_.schedule_after(100, [] {});
        }
    }

    void stop() {
        sim_.cancel(rto_);
        rto_ = sim::kInvalidEventId;
    }

private:
    sim::Simulation& sim_;
    sim::EventId rto_ = sim::kInvalidEventId;
};
