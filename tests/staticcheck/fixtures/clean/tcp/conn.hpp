// Fixture: the legal idioms — every state change through the transition()
// funnel (with its one sanctioned waiver), cancel-and-reset, and a
// destructor covering the timer.
#pragma once

#include "util/seq.hpp"

enum class TcpState { kClosed, kEstablished };

namespace sim {
using EventId = unsigned;
inline constexpr EventId kInvalidEventId = 0;
class Simulation;
} // namespace sim

class GoodConn {
public:
    explicit GoodConn(sim::Simulation& s) : sim_(s) {}
    ~GoodConn() { disarm(); }

    void establish() { transition(TcpState::kEstablished); }

    void disarm() {
        sim_.cancel(timer_);
        timer_ = sim::kInvalidEventId;
    }

private:
    void transition(TcpState to) {
        state_ = to;  // lint:allow state-funnel -- the funnel's own write
    }

    sim::Simulation& sim_;
    sim::EventId timer_ = sim::kInvalidEventId;
    TcpState state_ = TcpState::kClosed;
};
