// Fixture: [this] capture registered on a *value* member — the receiver
// dies with the owner, so the capture cannot dangle and no teardown is
// required.
#pragma once

#include <functional>

class Logger {
public:
    void set_sink(std::function<void()> fn);
};

class Owner {
public:
    void init() {
        logger_.set_sink([this] { ++events_; });
    }

private:
    Logger logger_;
    int events_ = 0;
};
