// Fixture: correct lock discipline for a guarded_by member — RAII guards,
// a nested-scope guard that dies with its block, and manual lock/unlock
// that dominates every access.
#pragma once

#include <mutex>

class CleanCounter {
public:
    void add(int n) {
        std::lock_guard<std::mutex> lock(mu_);
        total_ += n;
    }

    int drain() {
        int v = 0;
        {
            std::lock_guard<std::mutex> lock(mu_);
            v = total_;
            total_ = 0;
        }
        return v;
    }

    int read_manual() {
        mu_.lock();
        int v = total_;
        mu_.unlock();
        return v;
    }

private:
    std::mutex mu_;
    int total_ = 0;  // guarded_by(mu_)
};
