// Unit tests pinning the staticcheck lexer's behavior on the edge cases a
// heuristic C++ tokenizer is most likely to mangle: raw strings, line
// splices inside string literals, CRLF input, digraphs, and the waiver /
// guarded_by comment syntaxes. The dataflow rules trust the token stream's
// line numbers, so these are load-bearing, not decorative.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lexer.hpp"

namespace {

using staticcheck::LexResult;
using staticcheck::TokKind;
using staticcheck::lex;

std::vector<std::string> texts(const LexResult& r) {
    std::vector<std::string> out;
    for (const auto& t : r.tokens) out.emplace_back(t.text);
    return out;
}

TEST(StaticcheckLexer, RawStringIsOneTokenAndTracksLines) {
    // The )x" inside the raw string must not terminate it; only )delim" does.
    std::string src = "auto s = R\"delim(line one )x\"\nline two)delim\";\nint after;\n";
    LexResult r = lex(src);
    ASSERT_GE(r.tokens.size(), 6u);
    // auto s = <string> ; int after ;
    EXPECT_EQ(r.tokens[3].kind, TokKind::kString);
    // The newline inside the raw string advances the line counter, so the
    // tokens after it sit on their true lines.
    const auto& after = r.tokens[5];
    EXPECT_EQ(std::string(after.text), "int");
    EXPECT_EQ(after.line, 3);
}

TEST(StaticcheckLexer, LineSpliceInsideStringLiteral) {
    // A backslash-newline inside a plain string literal is a line splice:
    // one string token, and following tokens account for the spliced line.
    std::string src = "auto s = \"ab\\\ncd\";\nint after;\n";
    LexResult r = lex(src);
    std::vector<std::string> t = texts(r);
    ASSERT_GE(t.size(), 6u);
    EXPECT_EQ(r.tokens[3].kind, TokKind::kString);
    EXPECT_EQ(t[4], ";");
    const auto& after = r.tokens[5];
    EXPECT_EQ(std::string(after.text), "int");
    EXPECT_EQ(after.line, 3);
}

TEST(StaticcheckLexer, CrlfInputCountsLinesOnce) {
    std::string src = "int a;\r\nint b;\r\nint c;\r\n";
    LexResult r = lex(src);
    ASSERT_EQ(r.tokens.size(), 9u);
    EXPECT_EQ(r.tokens[0].line, 1);  // int
    EXPECT_EQ(r.tokens[3].line, 2);  // int
    EXPECT_EQ(r.tokens[6].line, 3);  // int
    // No token text carries a stray '\r'.
    for (const auto& tok : r.tokens) {
        EXPECT_EQ(tok.text.find('\r'), std::string_view::npos);
    }
}

TEST(StaticcheckLexer, DigraphsLexAsSeparatePunctuation) {
    // The lexer does not fold C++ digraphs (<% %> <: :>); they come out as
    // the individual characters. Pinned so a rule never accidentally
    // depends on digraph folding.
    LexResult r = lex("a<%b%>c<:d:>e");
    std::vector<std::string> t = texts(r);
    std::vector<std::string> expect = {"a", "<", "%", "b", "%",  ">", "c",
                                       "<", ":", "d", ":", ">", "e"};
    EXPECT_EQ(t, expect);
}

TEST(StaticcheckLexer, MultiCharOperatorsAreLongestMatch) {
    LexResult r = lex("a<<=b; c->*d; e<=>f;");
    std::vector<std::string> t = texts(r);
    EXPECT_EQ(t[1], "<<=");
    EXPECT_EQ(t[5], "->*");
    // No three-way token in the table: pinned as <= then >.
    EXPECT_EQ(t[9], "<=");
    EXPECT_EQ(t[10], ">");
}

TEST(StaticcheckLexer, WaiverRuleNamesMayContainDots) {
    LexResult r = lex("// lint:allow waiver.stale -- kept for a pending change\nint x;\n");
    ASSERT_EQ(r.waivers.size(), 1u);
    EXPECT_EQ(r.waivers[0].rule, "waiver.stale");
    EXPECT_EQ(r.waivers[0].line, 1);
    EXPECT_FALSE(r.waivers[0].whole_file);
}

TEST(StaticcheckLexer, GuardedByAnnotationParsed) {
    LexResult r = lex("int total_ = 0;  // guarded_by(mu_)\n");
    ASSERT_EQ(r.annotations.size(), 1u);
    EXPECT_EQ(r.annotations[0].mutex, "mu_");
    EXPECT_EQ(r.annotations[0].line, 1);
}

TEST(StaticcheckLexer, StringAndCommentContentsNeverBecomeTokens) {
    LexResult r = lex("auto s = \"state_ = x; cancel(timer_)\"; /* state_ = y; */ int z;\n");
    for (const auto& tok : r.tokens) {
        EXPECT_NE(std::string(tok.text), "state_");
        EXPECT_NE(std::string(tok.text), "cancel");
    }
}

} // namespace
