// Request/response protocol shared by the paper's three simulated
// applications (§6):
//   Echo        — 100 × (150 B request -> 150 B response)   (telnet-like)
//   Interactive — 100 × (150 B request -> 10 KB response)   (http-like)
//   Bulk        — 1 × (150 B request -> 1..100 MB response) (ftp-like)
//
// A request is exactly 150 bytes: an 8-byte header (request id, response
// size) plus deterministic filler. The response is the 8-byte header echoed
// followed by a deterministic pattern — so the server is a deterministic
// function of the byte stream (the property ST-TCP's active replication
// relies on), and the client can verify every byte even across a failover.
#pragma once

#include <cstdint>
#include <optional>

#include "util/wire.hpp"

namespace sttcp::app {

inline constexpr std::size_t kRequestSize = 150;
inline constexpr std::size_t kHeaderSize = 8;

struct Request {
    std::uint32_t id = 0;
    std::uint32_t response_size = 0;
    // Pattern bytes the client streams after the fixed 150-byte request
    // block (an "upload" workload). The paper's three applications use 0;
    // nonzero uploads stress the ST-TCP primary's second receive buffer,
    // which only fills on client->server traffic.
    std::uint32_t upload_size = 0;
};

// Deterministic byte of an upload: depends only on (request id, offset).
[[nodiscard]] inline std::uint8_t upload_byte(std::uint32_t id, std::uint64_t offset) {
    std::uint64_t x = (static_cast<std::uint64_t>(~id) << 32) ^ ((offset + 17) * 0xda942042e4dd58b5ULL);
    x ^= x >> 31;
    return static_cast<std::uint8_t>(x * 37 >> 16);
}

// Deterministic byte of a response: depends only on (request id, offset).
[[nodiscard]] inline std::uint8_t response_byte(std::uint32_t id, std::uint64_t offset) {
    std::uint64_t x = (static_cast<std::uint64_t>(id) << 32) ^ (offset * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 29;
    return static_cast<std::uint8_t>(x * 31 >> 8);
}

// Encodes the fixed 150-byte request block (upload bytes, if any, follow on
// the stream).
[[nodiscard]] inline util::Bytes encode_request(const Request& req) {
    util::Bytes out;
    out.reserve(kRequestSize);
    util::WireWriter w{out};
    w.u32(req.id);
    w.u32(req.response_size);
    w.u32(req.upload_size);
    while (out.size() < kRequestSize)
        out.push_back(response_byte(req.id, out.size()));
    return out;
}

// Parses one request from exactly kRequestSize bytes.
[[nodiscard]] inline Request decode_request(util::ByteView raw) {
    util::WireReader r{raw};
    Request req;
    req.id = r.u32();
    req.response_size = r.u32();
    req.upload_size = r.u32();
    return req;
}

[[nodiscard]] inline util::Bytes encode_response_header(const Request& req) {
    util::Bytes out;
    util::WireWriter w{out};
    w.u32(req.id);
    w.u32(req.response_size);
    return out;
}

} // namespace sttcp::app
