// Deterministic request/response server application.
//
// Runs unchanged on the primary and on the backup (where its writes are
// suppressed by the stack) — this is the paper's model of an application
// that "is deterministic, or a leader/follower protocol is used" (§3).
#pragma once

#include <memory>
#include <unordered_map>

#include "app/protocol.hpp"
#include "tcp/host_stack.hpp"

namespace sttcp::app {

class ResponderApp {
public:
    // Attaches to a listener created by the stack / SttcpPrimary /
    // SttcpBackup (the accept-handler slot belongs to the application).
    void attach(tcp::TcpListener& listener);

    struct Stats {
        std::uint64_t connections = 0;
        std::uint64_t requests_served = 0;
        std::uint64_t response_bytes_queued = 0;
        std::uint64_t upload_bytes_received = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    // Per-connection session: accumulates request bytes, streams responses
    // with backpressure via on_writable.
    struct Session : std::enable_shared_from_this<Session> {
        explicit Session(std::shared_ptr<tcp::TcpConnection> c) : conn(std::move(c)) {}

        void on_readable(ResponderApp& app);
        void pump(ResponderApp& app);  // pushes pending response bytes

        std::shared_ptr<tcp::TcpConnection> conn;
        util::Bytes request_buf;
        // Current response being streamed; body_sent counts response bytes
        // (header included) already queued into the TCP send buffer.
        Request current;
        std::uint64_t body_sent = 0;
        std::size_t upload_remaining = 0;
        bool responding = false;
        bool peer_closed = false;
    };

    Stats stats_;
};

} // namespace sttcp::app
