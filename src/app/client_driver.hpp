// Client-side workload driver for the paper's applications (§6).
//
// Runs `rounds` request/response exchanges, strictly sequentially ("a new
// request is sent only after the response to the previous one is received"),
// verifying every response byte against the deterministic pattern — which
// also proves that a failover neither lost, duplicated, nor corrupted any
// part of the stream.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "app/protocol.hpp"
#include "tcp/host_stack.hpp"

namespace sttcp::app {

struct Workload {
    std::string name;
    std::uint32_t rounds = 100;
    std::uint32_t response_size = 150;  // bytes, including the 8-byte header
    std::uint32_t upload_size = 0;      // client->server body after the request

    // Paper presets (§6).
    [[nodiscard]] static Workload echo() { return {"echo", 100, 150, 0}; }
    [[nodiscard]] static Workload interactive() { return {"interactive", 100, 10 * 1024, 0}; }
    [[nodiscard]] static Workload bulk_mb(std::uint32_t mb) {
        return {"bulk-" + std::to_string(mb) + "MB", 1, mb * 1024 * 1024, 0};
    }
    // Upload workload (not in the paper): stresses the primary's second
    // receive buffer, whose retention only applies to client->server bytes.
    [[nodiscard]] static Workload upload_kb(std::uint32_t kb, std::uint32_t rounds = 1) {
        return {"upload-" + std::to_string(kb) + "KB", rounds, 150, kb * 1024};
    }
};

class ClientDriver {
public:
    // A byte that did not match the deterministic response stream (the
    // first few are kept so a failing soak seed can be triaged directly).
    struct VerifyError {
        std::uint32_t round = 0;
        std::uint64_t offset = 0;  // within the round's response
        std::uint8_t expected = 0;
        std::uint8_t got = 0;
    };

    struct Result {
        bool completed = false;
        bool failed = false;           // connection error before completion
        std::string failure_reason;
        sim::TimePoint started_at{};
        sim::TimePoint finished_at{};
        std::uint64_t bytes_received = 0;
        std::uint64_t verify_errors = 0;
        std::vector<VerifyError> first_verify_errors;  // capped at 8
        std::vector<double> round_seconds;  // per-round completion times

        [[nodiscard]] double total_seconds() const {
            return sim::to_seconds(finished_at - started_at);
        }
    };

    ClientDriver(tcp::HostStack& stack, net::Ipv4Address server_ip, std::uint16_t port,
                 Workload workload)
        : stack_(stack), server_ip_(server_ip), port_(port), workload_(workload) {}

    // Connects and runs the workload; on_done fires after the connection has
    // been closed (or on failure).
    void start(std::function<void()> on_done = {});

    [[nodiscard]] const Result& result() const { return result_; }
    [[nodiscard]] const Workload& workload() const { return workload_; }

private:
    void begin_round();
    void pump_upload();
    void on_readable();
    void finish(bool ok, const std::string& reason);

    tcp::HostStack& stack_;
    net::Ipv4Address server_ip_;
    std::uint16_t port_;
    Workload workload_;
    std::shared_ptr<tcp::TcpConnection> conn_;
    std::function<void()> on_done_;
    Result result_;

    std::uint32_t round_ = 0;
    std::uint64_t round_received_ = 0;  // bytes of the current response
    std::uint64_t upload_sent_ = 0;     // upload bytes queued this round
    sim::TimePoint round_started_{};
};

} // namespace sttcp::app
