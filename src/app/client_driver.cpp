#include "app/client_driver.hpp"

// lint:allow-file this-capture -- callbacks are installed on this driver's own
// connection and TcpConnection::detach_hooks() clears them when the connection
// finishes; the driver outlives its connection in every harness.

namespace sttcp::app {

void ClientDriver::start(std::function<void()> on_done) {
    on_done_ = std::move(on_done);
    result_ = Result{};
    result_.started_at = stack_.sim().now();

    conn_ = stack_.tcp_connect(server_ip_, port_);
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_established = [this]() { begin_round(); };
    cbs.on_writable = [this]() { pump_upload(); };
    cbs.on_readable = [this]() { on_readable(); };
    cbs.on_closed = [this](const std::string& reason) {
        if (result_.completed || result_.failed) return;  // orderly teardown
        finish(false, reason);
    };
    conn_->set_callbacks(std::move(cbs));
}

void ClientDriver::begin_round() {
    round_received_ = 0;
    upload_sent_ = 0;
    round_started_ = stack_.sim().now();
    Request req;
    req.id = round_;
    req.response_size = workload_.response_size;
    req.upload_size = workload_.upload_size;
    util::Bytes bytes = encode_request(req);
    std::size_t n = conn_->send(bytes);
    if (n != bytes.size()) {
        // 150 B always fits in an empty-per-round send buffer.
        finish(false, "request did not fit in send buffer");
        return;
    }
    pump_upload();
}

void ClientDriver::pump_upload() {
    if (!conn_ || result_.completed || result_.failed) return;
    while (upload_sent_ < workload_.upload_size) {
        std::size_t len = static_cast<std::size_t>(
            std::min<std::uint64_t>(8 * 1024, workload_.upload_size - upload_sent_));
        util::Bytes chunk(len);
        for (std::size_t i = 0; i < len; ++i)
            chunk[i] = upload_byte(round_, upload_sent_ + i);
        std::size_t n = conn_->send(chunk);
        upload_sent_ += n;
        if (n < len) return;  // backpressured; on_writable resumes
    }
}

void ClientDriver::on_readable() {
    std::uint8_t buf[8 * 1024];
    while (conn_) {
        std::size_t n = conn_->read(buf);
        if (n == 0) return;
        // Verify the deterministic stream: byte j of response == pattern,
        // with the first 8 bytes being the echoed header.
        util::Bytes expected_header = encode_response_header(
            Request{round_, workload_.response_size});
        for (std::size_t i = 0; i < n; ++i) {
            std::uint64_t offset = round_received_ + i;
            std::uint8_t expect = offset < kHeaderSize
                                      ? expected_header[static_cast<std::size_t>(offset)]
                                      : response_byte(round_, offset);
            if (buf[i] != expect) {
                ++result_.verify_errors;
                if (result_.first_verify_errors.size() < 8)
                    result_.first_verify_errors.push_back({round_, offset, expect, buf[i]});
            }
        }
        round_received_ += n;
        result_.bytes_received += n;

        if (round_received_ >= workload_.response_size) {
            result_.round_seconds.push_back(sim::to_seconds(stack_.sim().now() - round_started_));
            ++round_;
            if (round_ >= workload_.rounds) {
                result_.completed = true;
                result_.finished_at = stack_.sim().now();
                conn_->close();  // teardown proceeds in the background
                if (on_done_) {
                    auto cb = std::move(on_done_);
                    on_done_ = nullptr;
                    cb();
                }
                return;
            }
            begin_round();
        }
    }
}

void ClientDriver::finish(bool ok, const std::string& reason) {
    if (result_.completed || result_.failed) return;
    result_.failed = !ok;
    result_.failure_reason = reason;
    result_.finished_at = stack_.sim().now();
    if (on_done_) {
        auto cb = std::move(on_done_);
        on_done_ = nullptr;
        cb();
    }
}

} // namespace sttcp::app
