#include "app/responder.hpp"

// lint:allow-file this-capture -- per-connection callbacks are cleared by
// TcpConnection::detach_hooks() at connection teardown, and the accept handler
// lives on a listener the app outlives in every harness.

namespace sttcp::app {

namespace {
constexpr std::size_t kChunk = 8 * 1024;  // response streaming granularity
} // namespace

void ResponderApp::attach(tcp::TcpListener& listener) {
    listener.set_accept_handler([this](std::shared_ptr<tcp::TcpConnection> conn) {
        ++stats_.connections;
        auto session = std::make_shared<Session>(std::move(conn));
        tcp::TcpConnection::Callbacks cbs;
        cbs.on_readable = [this, session]() { session->on_readable(*this); };
        cbs.on_writable = [this, session]() { session->pump(*this); };
        cbs.on_remote_fin = [session]() {
            session->peer_closed = true;
            if (!session->responding) session->conn->close();
        };
        session->conn->set_callbacks(std::move(cbs));
        // A request may already be buffered (it can ride on the handshake's
        // final ACK or arrive before the accept handler ran).
        session->on_readable(*this);
    });
}

void ResponderApp::Session::on_readable(ResponderApp& app) {
    // One response at a time: while responding, leave further requests in
    // the TCP buffer (flow control backpressures the client, and the
    // backup's replica consumes the byte stream identically).
    while (!responding) {
        if (upload_remaining > 0) {
            // Drain the request's upload body (an ftp-put-like workload).
            std::uint8_t tmp[8 * 1024];
            std::size_t want = std::min<std::size_t>(sizeof tmp, upload_remaining);
            std::size_t n = conn->read(std::span<std::uint8_t>{tmp, want});
            if (n == 0) return;
            app.stats_.upload_bytes_received += n;
            upload_remaining -= n;
            if (upload_remaining > 0) continue;
        } else if (request_buf.size() < kRequestSize) {
            std::uint8_t tmp[kRequestSize];
            std::size_t want = kRequestSize - request_buf.size();
            std::size_t n = conn->read(std::span<std::uint8_t>{tmp, want});
            if (n == 0) return;
            request_buf.insert(request_buf.end(), tmp, tmp + n);
            if (request_buf.size() < kRequestSize) continue;

            current = decode_request(request_buf);
            request_buf.clear();
            if (current.response_size < kHeaderSize) current.response_size = kHeaderSize;
            if (current.upload_size > 0) {
                upload_remaining = current.upload_size;
                continue;  // body first, then respond
            }
        }

        responding = true;
        body_sent = 0;
        ++app.stats_.requests_served;
        pump(app);
    }
}

void ResponderApp::Session::pump(ResponderApp& app) {
    if (!responding) return;

    // The whole response (header + pattern body) is one byte stream, queued
    // in single send() calls so TCP can coalesce it into full segments.
    util::Bytes header = encode_response_header(current);
    while (body_sent < current.response_size) {
        std::size_t len = static_cast<std::size_t>(
            std::min<std::uint64_t>(kChunk, current.response_size - body_sent));
        util::Bytes chunk(len);
        for (std::size_t i = 0; i < len; ++i) {
            std::uint64_t offset = body_sent + i;
            chunk[i] = offset < kHeaderSize ? header[static_cast<std::size_t>(offset)]
                                            : response_byte(current.id, offset);
        }
        std::size_t n = conn->send(chunk);
        app.stats_.response_bytes_queued += n;
        body_sent += n;
        if (n < len) return;  // backpressured
    }

    // Response fully queued.
    responding = false;
    if (peer_closed) {
        conn->close();
        return;
    }
    on_readable(app);  // next request may already be buffered
}

} // namespace sttcp::app
