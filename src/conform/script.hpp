// Wire-script conformance DSL — AST.
//
// A .pkt script is a header of directives followed by timed steps, in the
// spirit of packetdrill: `inject` lines are segments the scripted peer puts
// on the wire, `expect` lines are segments the stack under test must emit,
// matched on (flags, seq, ack, len, window, options) inside a virtual-time
// window. Two execution harnesses share the one DSL:
//
//   mode stack    — a single real HostStack against a fully scripted peer;
//   mode testbed  — the paper's hub->primary->tap->backup topology with a
//                   scripted *client*, so failover transparency is checked
//                   segment-by-segment on the client's wire.
//
// All sequence/ack numbers in a script are absolute: the stack's ISN is
// pinned by directive (`stack-isn`), the peer's ISN is whatever the script
// injects, so there is no packetdrill-style relative renumbering and a
// recorded script replays byte-identically. Grammar: DESIGN.md §13.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sttcp::conform {

// Pattern over one TCP segment. In an `expect`, unset optionals are
// wildcards; in an `inject`, unset fields take documented defaults.
struct SegmentPattern {
    bool any = false;  // `expect *` — match the next segment unconditionally
    std::string flags;  // canonical subset of "FSRP.U" ('.' = ACK)
    std::optional<std::uint32_t> seq_begin;  // `a:b(len)` — payload occupies [a, b)
    std::optional<std::uint32_t> len;
    std::optional<std::uint32_t> ack;
    std::optional<std::uint32_t> win;  // `win N`; `win *` keeps the wildcard
    std::optional<std::uint16_t> mss;  // `<mss N>` option; `<...>` keeps the wildcard
};

// Scopes addressed by `fail` and `expect-silence`. In stack mode the only
// scope is kStack; in testbed mode kPrimary/kBackup name the two servers.
enum class Role : std::uint8_t { kStack, kPrimary, kBackup };

[[nodiscard]] inline const char* to_string(Role r) {
    switch (r) {
        case Role::kStack: return "stack";
        case Role::kPrimary: return "primary";
        case Role::kBackup: return "backup";
    }
    return "?";
}

enum class StepKind : std::uint8_t {
    kInject,         // +T inject <segment>
    kExpect,         // +lo..+hi expect <pattern>
    kExpectSilence,  // expect-silence <role> <dur>
    kFail,           // +T fail <role>   (also spelled `@fail <role>`)
    kConnect,        // +T connect       (stack mode: active open)
    kSend,           // +T send <bytes>  (application writes on the connection)
    kClose,          // +T close         (application close -> FIN)
    kRun,            // +T run           (advance virtual time, expecting nothing)
};

struct Step {
    StepKind kind = StepKind::kRun;
    int line = 0;        // 1-based line in the source file
    std::string source;  // verbatim source line (record mode passes it through)

    // Step times are relative to the script "base": the completion time of
    // the previous step (an expect advances base to the *observed* segment
    // time, so follow-up injects key off what actually happened).
    sim::Duration at{};     // inject/commands: fire at base+at; expect: window lo
    sim::Duration until{};  // expect: window hi; expect-silence: duration

    SegmentPattern seg;          // kInject / kExpect
    Role role = Role::kStack;    // kFail / kExpectSilence
    std::uint64_t count = 0;     // kSend byte count
};

// Script-level configuration, set by header directives.
struct Directives {
    bool testbed = false;              // `mode stack` (default) | `mode testbed`
    std::uint16_t port = 8000;         // service / listen port
    std::uint16_t peer_port = 40000;   // scripted peer's source port (passive mode)
    std::uint32_t stack_isn = 10000;   // pinned ISN of the stack(s) under test
    std::optional<std::uint16_t> mss;  // stack TcpConfig::mss override
    bool nagle = true;                 // stack TcpConfig::nagle
    bool delayed_ack = true;           // stack TcpConfig::delayed_ack
    std::size_t recv_buffer = 64 * 1024;
    sim::Duration msl = sim::seconds{30};  // `msl` shrinks TIME_WAIT in teardown scripts
    sim::Duration hb_interval = sim::milliseconds{50};   // testbed SttcpConfig
    sim::Duration sync_time = sim::milliseconds{50};
    // Testbed client workload: the canonical client->service byte stream is
    // encode_request({1, response, upload}) + upload pattern bytes, and
    // inject payloads are slices of it, so the deterministic responder on
    // primary AND backup sees a valid request across any failover.
    std::uint32_t workload_response = 0;
    std::uint32_t workload_upload = 0;
};

struct Script {
    std::string name;                  // file stem, for messages
    Directives directives;
    std::vector<std::string> header;   // verbatim pre-step lines (record re-emit)
    std::vector<Step> steps;
    [[nodiscard]] bool has_connect() const {
        for (const Step& s : steps)
            if (s.kind == StepKind::kConnect) return true;
        return false;
    }
};

// Thrown by the parser with a 1-based line number.
struct ParseError {
    int line;
    std::string message;
};

// Parses script text; `name` labels errors. Throws ParseError.
[[nodiscard]] Script parse_script(const std::string& text, std::string name);

// Formats a pattern the way the DSL spells it (diff + record output).
[[nodiscard]] std::string to_dsl(const SegmentPattern& p);

} // namespace sttcp::conform
