// Execution harnesses for wire scripts.
//
// Both harnesses expose the same surface to the engine: a deterministic
// Simulation, a scripted wire endpoint that injects crafted frames, and a
// capture log of every TCP segment delivered toward the scripted side of
// the topology (which, on a hub, is every TCP segment on the LAN — exactly
// the paper's tap argument, reused here as the conformance capture point).
//
//   StackHarness   — `mode stack`: one real HostStack on a point-to-point
//                    link against a raw scripted peer endpoint. The peer's
//                    IP is statically ARP-mapped on the stack so no ARP
//                    traffic muddies the scripted exchange.
//   TestbedHarness — `mode testbed`: hub + ST-TCP primary + promiscuous
//                    tapping backup (paper §6), with the deterministic
//                    ResponderApp attached to both service listeners and a
//                    scripted client injecting slices of one canonical
//                    request/upload byte stream.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "app/responder.hpp"
#include "net/hub.hpp"
#include "net/nic.hpp"
#include "net/power_switch.hpp"
#include "net/tcp_wire.hpp"
#include "sim/simulation.hpp"
#include "sttcp/backup.hpp"
#include "sttcp/primary.hpp"
#include "tcp/host_stack.hpp"

#include "conform/script.hpp"

namespace sttcp::conform {

// One TCP segment seen at the capture point.
struct Captured {
    sim::TimePoint at{};
    net::TcpSegment seg;
    net::MacAddress eth_src;
    net::Ipv4Address ip_src;
    net::Ipv4Address ip_dst;
    bool in_scope = false;  // addressed to the scripted endpoint's IP
    bool consumed = false;  // matched by an expect step
};

class Harness {
public:
    virtual ~Harness() = default;

    [[nodiscard]] sim::Simulation& sim() { return *sim_; }
    [[nodiscard]] std::vector<Captured>& captured() { return captured_; }
    [[nodiscard]] const std::vector<std::string>& trace() const { return trace_; }

    // Puts one crafted segment on the wire from the scripted endpoint.
    // Ports and addresses are filled by the harness; `payload_len` bytes of
    // the harness's canonical peer stream are sliced in at `seq_begin`.
    virtual void inject(const SegmentPattern& seg) = 0;

    // Crash-fails a node (pulls the plug; paper §4.4 crash semantics).
    virtual void fail(Role role) = 0;

    // MAC the given role transmits from (silence-scope attribution).
    [[nodiscard]] virtual net::MacAddress mac_of(Role role) const = 0;

    // Application-level verbs; stack mode only (the testbed's application is
    // the deterministic responder, driven entirely by injected requests).
    virtual void app_connect() { unsupported("connect"); }
    virtual void app_send(std::size_t) { unsupported("send"); }
    virtual void app_close() { unsupported("close"); }

    struct HarnessError {
        std::string message;
    };

protected:
    [[noreturn]] static void unsupported(const std::string& verb) {
        throw HarnessError{"verb '" + verb + "' is not supported in this mode"};
    }

    // Shared capture hook: called from the link observer of the scripted
    // endpoint's link with every delivered frame.
    void record_frame(const net::EthernetFrame& frame, const net::FrameEndpoint& receiver,
                      const net::FrameEndpoint& scripted, net::Ipv4Address scripted_ip);

    std::unique_ptr<sim::Simulation> sim_;
    std::vector<Captured> captured_;
    std::vector<std::string> trace_;
};

// The scripted side of the wire: a raw frame endpoint with no stack behind
// it. Reception is handled by the link observer (capture); frames it emits
// are crafted by the harness.
class ScriptedEndpoint final : public net::FrameEndpoint {
public:
    explicit ScriptedEndpoint(std::string name) : name_(std::move(name)) {}
    void handle_frame(const net::EthernetFrame&) override {}
    [[nodiscard]] std::string endpoint_name() const override { return name_; }

private:
    std::string name_;
};

class StackHarness final : public Harness {
public:
    StackHarness(const Directives& d, sim::EventQueue::Backend backend);

    void inject(const SegmentPattern& seg) override;
    void fail(Role role) override;
    [[nodiscard]] net::MacAddress mac_of(Role role) const override;
    void app_connect() override;
    void app_send(std::size_t n) override;
    void app_close() override;

private:
    void adopt(std::shared_ptr<tcp::TcpConnection> conn);

    Directives directives_;
    net::Node stack_node_{"stack"};
    std::unique_ptr<net::Nic> stack_nic_;
    ScriptedEndpoint peer_{"peer/wire"};
    std::unique_ptr<net::Link> link_;
    std::unique_ptr<tcp::HostStack> stack_;
    std::shared_ptr<tcp::TcpListener> listener_;
    std::shared_ptr<tcp::TcpConnection> conn_;
    bool active_ = false;  // script did `connect`: scripted peer is the server
    std::uint16_t ip_id_ = 1;
};

class TestbedHarness final : public Harness {
public:
    TestbedHarness(const Directives& d, sim::EventQueue::Backend backend);

    void inject(const SegmentPattern& seg) override;
    void fail(Role role) override;
    [[nodiscard]] net::MacAddress mac_of(Role role) const override;

private:
    [[nodiscard]] std::uint8_t stream_byte(std::uint64_t offset) const;

    Directives directives_;
    std::unique_ptr<net::Hub> hub_;
    std::unique_ptr<net::PowerSwitch> power_;
    net::Node primary_node_{"primary"};
    net::Node backup_node_{"backup"};
    std::unique_ptr<net::Nic> primary_nic_;
    std::unique_ptr<net::Nic> backup_nic_;
    ScriptedEndpoint client_{"client/wire"};
    net::Link* client_link_ = nullptr;
    std::unique_ptr<tcp::HostStack> primary_;
    std::unique_ptr<tcp::HostStack> backup_;
    std::unique_ptr<core::SttcpPrimary> st_primary_;
    std::unique_ptr<core::SttcpBackup> st_backup_;
    std::shared_ptr<tcp::TcpListener> primary_listener_;
    std::shared_ptr<tcp::TcpListener> backup_listener_;
    app::ResponderApp primary_app_;
    app::ResponderApp backup_app_;
    util::Bytes client_stream_;  // canonical request+upload byte stream
    bool syn_seen_ = false;
    std::uint32_t client_isn_ = 0;  // seq of the first injected SYN
    std::uint16_t ip_id_ = 1;
};

// Factory: picks the harness for the script's mode.
[[nodiscard]] std::unique_ptr<Harness> make_harness(const Directives& d,
                                                    sim::EventQueue::Backend backend);

} // namespace sttcp::conform
