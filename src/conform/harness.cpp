#include "conform/harness.hpp"

// lint:allow-file this-capture -- the harness owns the simulation, links,
// stacks, and engines its observer/accept/fencer callbacks are handed to;
// all of them are members destroyed with the harness, so the captures
// cannot dangle (same ownership argument as src/harness/ testbeds).

#include <cinttypes>
#include <cstdio>

#include "net/frame_trace.hpp"
#include "net/ipv4.hpp"

namespace sttcp::conform {

namespace {

// Fixed addressing plan, mirroring tests/test_support.hpp and HubTestbed so
// traces read the same as everywhere else in the repo.
constexpr net::Ipv4Address kPeerIp{10, 0, 0, 1};
constexpr net::Ipv4Address kStackIp{10, 0, 0, 2};
constexpr net::Ipv4Address kClientIp{10, 0, 0, 10};
constexpr net::Ipv4Address kPrimaryIp{10, 0, 0, 2};
constexpr net::Ipv4Address kBackupIp{10, 0, 0, 3};
constexpr net::Ipv4Address kServiceIp{10, 0, 0, 100};

net::MacAddress peer_mac() { return net::MacAddress::local(1); }
net::MacAddress stack_mac() { return net::MacAddress::local(2); }
net::MacAddress client_mac() { return net::MacAddress::local(10); }
net::MacAddress primary_mac() { return net::MacAddress::local(2); }
net::MacAddress backup_mac() { return net::MacAddress::local(3); }

net::TcpFlags flags_from_dsl(const std::string& f) {
    net::TcpFlags out;
    out.fin = f.find('F') != std::string::npos;
    out.syn = f.find('S') != std::string::npos;
    out.rst = f.find('R') != std::string::npos;
    out.psh = f.find('P') != std::string::npos;
    out.ack = f.find('.') != std::string::npos;
    out.urg = f.find('U') != std::string::npos;
    return out;
}

tcp::TcpConfig tcp_config_from(const Directives& d) {
    tcp::TcpConfig cfg;
    if (d.mss) cfg.mss = *d.mss;
    cfg.nagle = d.nagle;
    cfg.delayed_ack = d.delayed_ack;
    cfg.recv_buffer_size = d.recv_buffer;
    cfg.msl = d.msl;
    return cfg;
}

std::string fmt_time(sim::TimePoint t) {
    double s = static_cast<double>(t.time_since_epoch().count()) / 1e9;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", s);
    return buf;
}

} // namespace

void Harness::record_frame(const net::EthernetFrame& frame, const net::FrameEndpoint& receiver,
                           const net::FrameEndpoint& scripted, net::Ipv4Address scripted_ip) {
    trace_.push_back("[" + fmt_time(sim_->now()) + " -> " + receiver.endpoint_name() + "] " +
                     net::FrameTrace::describe(frame));
    if (&receiver != &scripted) return;  // capture only deliveries to the scripted side
    if (frame.type != net::EtherType::kIpv4) return;
    try {
        net::Ipv4Packet ip = net::Ipv4Packet::parse(frame.payload);
        if (ip.proto != net::IpProto::kTcp) return;  // UDP control traffic is out of scope
        Captured c;
        c.at = sim_->now();
        c.seg = net::TcpSegment::parse(ip.payload, ip.src, ip.dst);
        c.eth_src = frame.src;
        c.ip_src = ip.src;
        c.ip_dst = ip.dst;
        c.in_scope = ip.dst == scripted_ip;
        captured_.push_back(std::move(c));
    } catch (const util::WireError&) {
        // Malformed frames never occur without impairments; ignore defensively.
    }
}

// ---------------------------------------------------------------------------
// Crafting helpers shared by both harnesses
// ---------------------------------------------------------------------------

namespace {

net::TcpSegment craft_segment(const SegmentPattern& p, std::uint16_t src_port,
                              std::uint16_t dst_port,
                              const std::function<std::uint8_t(std::uint32_t)>& byte_at) {
    net::TcpSegment seg;
    seg.src_port = src_port;
    seg.dst_port = dst_port;
    seg.flags = flags_from_dsl(p.flags);
    seg.seq = util::Seq32{p.seq_begin.value_or(0)};
    seg.ack = util::Seq32{p.ack.value_or(0)};
    seg.window = static_cast<std::uint16_t>(p.win.value_or(65535));
    seg.mss = p.mss;
    std::uint32_t len = p.len.value_or(0);
    seg.payload.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) seg.payload.push_back(byte_at(i));
    return seg;
}

net::EthernetFrame frame_for(const net::TcpSegment& seg, net::MacAddress src_mac,
                             net::MacAddress dst_mac, net::Ipv4Address src_ip,
                             net::Ipv4Address dst_ip, std::uint16_t& ip_id) {
    net::Ipv4Packet ip;
    ip.proto = net::IpProto::kTcp;
    ip.identification = ip_id++;
    ip.src = src_ip;
    ip.dst = dst_ip;
    ip.payload = seg.serialize(src_ip, dst_ip);
    net::EthernetFrame frame;
    frame.dst = dst_mac;
    frame.src = src_mac;
    frame.type = net::EtherType::kIpv4;
    frame.payload = util::SharedPayload{ip.serialize()};
    return frame;
}

} // namespace

// ---------------------------------------------------------------------------
// StackHarness
// ---------------------------------------------------------------------------

StackHarness::StackHarness(const Directives& d, sim::EventQueue::Backend backend)
    : directives_(d) {
    sim_ = std::make_unique<sim::Simulation>(/*seed=*/1, backend);
    stack_nic_ = std::make_unique<net::Nic>(stack_node_, "eth0", stack_mac());
    link_ = std::make_unique<net::Link>(*sim_, net::LinkConfig{});
    link_->attach(peer_, *stack_nic_);
    link_->set_observer([this](const net::EthernetFrame& frame, const net::FrameEndpoint& rx) {
        record_frame(frame, rx, peer_, kPeerIp);
    });
    stack_ = std::make_unique<tcp::HostStack>(*sim_, stack_node_, tcp_config_from(d));
    stack_->add_interface(*stack_nic_, kStackIp, 24);
    // Static ARP keeps ARP requests off the scripted wire entirely.
    stack_->arp_table().add_static(kPeerIp, peer_mac());
    std::uint32_t isn = d.stack_isn;
    stack_->set_isn_generator([isn] { return util::Seq32{isn}; });
    listener_ = stack_->tcp_listen(d.port);
    listener_->set_accept_handler(
        [this](std::shared_ptr<tcp::TcpConnection> c) { adopt(std::move(c)); });
}

void StackHarness::adopt(std::shared_ptr<tcp::TcpConnection> conn) {
    conn_ = std::move(conn);
    // Sink application: drain reads immediately so the advertised window is
    // a pure function of the wire exchange, never of app scheduling.
    tcp::TcpConnection::Callbacks cbs;
    std::weak_ptr<tcp::TcpConnection> weak = conn_;
    cbs.on_readable = [weak] {
        auto c = weak.lock();
        if (!c) return;
        std::uint8_t buf[4096];
        while (c->read(buf) > 0) {
        }
    };
    conn_->set_callbacks(std::move(cbs));
}

void StackHarness::inject(const SegmentPattern& p) {
    std::uint16_t src_port = directives_.peer_port;
    std::uint16_t dst_port = directives_.port;
    if (active_ && conn_) {
        // Active open: the scripted peer is the server the stack dialled.
        src_port = conn_->key().remote_port;
        dst_port = conn_->key().local_port;
    }
    // Payload bytes are a pure function of absolute sequence position, so a
    // scripted retransmission carries identical bytes.
    std::uint32_t base = p.seq_begin.value_or(0);
    net::TcpSegment seg = craft_segment(p, src_port, dst_port, [base](std::uint32_t i) {
        return static_cast<std::uint8_t>(((base + i) * 131u + 7u) & 0xffu);
    });
    net::EthernetFrame frame =
        frame_for(seg, peer_mac(), stack_mac(), kPeerIp, kStackIp, ip_id_);
    link_->send_from(peer_, std::move(frame));
}

void StackHarness::fail(Role role) {
    if (role != Role::kStack) throw HarnessError{"stack mode can only fail 'stack'"};
    stack_node_.power_off();
}

net::MacAddress StackHarness::mac_of(Role role) const {
    if (role != Role::kStack) throw HarnessError{"stack mode has no role 'primary'/'backup'"};
    return stack_mac();
}

void StackHarness::app_connect() {
    active_ = true;
    auto conn = stack_->tcp_connect(kPeerIp, directives_.port);
    adopt(std::move(conn));
}

void StackHarness::app_send(std::size_t n) {
    if (!conn_) throw HarnessError{"send before any connection exists"};
    util::Bytes data(n);
    for (std::size_t i = 0; i < n; ++i)
        data[i] = static_cast<std::uint8_t>((i * 131u + 7u) & 0xffu);
    std::size_t accepted = conn_->send(data);
    if (accepted != n)
        throw HarnessError{"send " + std::to_string(n) + ": send buffer accepted only " +
                           std::to_string(accepted) + " bytes"};
}

void StackHarness::app_close() {
    if (!conn_) throw HarnessError{"close before any connection exists"};
    conn_->close();
}

// ---------------------------------------------------------------------------
// TestbedHarness
// ---------------------------------------------------------------------------

TestbedHarness::TestbedHarness(const Directives& d, sim::EventQueue::Backend backend)
    : directives_(d) {
    sim_ = std::make_unique<sim::Simulation>(/*seed=*/1, backend);
    hub_ = std::make_unique<net::Hub>(*sim_, "hub");
    power_ = std::make_unique<net::PowerSwitch>(*sim_);
    primary_nic_ = std::make_unique<net::Nic>(primary_node_, "eth0", primary_mac());
    backup_nic_ = std::make_unique<net::Nic>(backup_node_, "eth0", backup_mac());
    backup_nic_->set_promiscuous(true);  // the paper's hub tap (§6)

    net::LinkConfig link_cfg;  // 100 Mbit/s, 5 us — timer-dominated scripts
    client_link_ = &hub_->connect(client_, link_cfg);
    hub_->connect(*primary_nic_, link_cfg);
    hub_->connect(*backup_nic_, link_cfg);
    client_link_->set_observer(
        [this](const net::EthernetFrame& frame, const net::FrameEndpoint& rx) {
            record_frame(frame, rx, client_, kClientIp);
        });

    tcp::TcpConfig tcp_cfg = tcp_config_from(d);
    primary_ = std::make_unique<tcp::HostStack>(*sim_, primary_node_, tcp_cfg);
    backup_ = std::make_unique<tcp::HostStack>(*sim_, backup_node_, tcp_cfg);
    std::size_t primary_if = primary_->add_interface(*primary_nic_, kPrimaryIp, 24);
    backup_->add_interface(*backup_nic_, kBackupIp, 24);
    primary_->add_ip_alias(primary_if, kServiceIp);
    primary_->arp_table().add_static(kClientIp, client_mac());
    backup_->arp_table().add_static(kClientIp, client_mac());
    std::uint32_t isn = d.stack_isn;
    primary_->set_isn_generator([isn] { return util::Seq32{isn}; });
    backup_->set_isn_generator([isn] { return util::Seq32{isn}; });

    power_->manage(primary_node_);
    power_->manage(backup_node_);

    core::SttcpConfig sttcp_cfg;
    sttcp_cfg.hb_interval = d.hb_interval;
    sttcp_cfg.sync_time = d.sync_time;

    core::SttcpPrimary::Options popts;
    popts.config = sttcp_cfg;
    popts.service_ip = kServiceIp;
    popts.backup_ips = {kBackupIp};
    st_primary_ = std::make_unique<core::SttcpPrimary>(*primary_, popts);
    st_primary_->set_fencer([this](net::Ipv4Address, std::function<void()> done) {
        power_->power_off("backup", std::move(done));
    });

    st_backup_ = std::make_unique<core::SttcpBackup>(
        *backup_,
        core::SttcpBackup::Options::single(sttcp_cfg, kServiceIp, kPrimaryIp, kBackupIp));
    st_backup_->set_fencer([this](net::Ipv4Address, std::function<void()> done) {
        power_->power_off("primary", std::move(done));
    });

    primary_listener_ = st_primary_->listen(d.port);
    backup_listener_ = st_backup_->listen(d.port);
    primary_app_.attach(*primary_listener_);
    backup_app_.attach(*backup_listener_);
    st_primary_->start();
    st_backup_->start();

    // Canonical client byte stream: one deterministic responder request
    // followed by its upload body, so both replicas' applications accept
    // whatever slice of it a script injects.
    app::Request req{.id = 1,
                     .response_size = d.workload_response,
                     .upload_size = d.workload_upload};
    client_stream_ = app::encode_request(req);
    for (std::uint64_t off = 0; off < d.workload_upload; ++off)
        client_stream_.push_back(app::upload_byte(req.id, off));
}

std::uint8_t TestbedHarness::stream_byte(std::uint64_t offset) const {
    if (offset < client_stream_.size()) return client_stream_[offset];
    // Past the declared workload: deterministic filler (scripts that only
    // exercise the handshake/teardown never read it).
    return static_cast<std::uint8_t>((offset * 131u + 7u) & 0xffu);
}

void TestbedHarness::inject(const SegmentPattern& p) {
    std::uint32_t seq = p.seq_begin.value_or(0);
    if (!syn_seen_ && p.flags.find('S') != std::string::npos) {
        syn_seen_ = true;
        client_isn_ = seq;
    }
    // Stream offset of payload byte 0: sequence distance from ISN+1 (the
    // SYN consumes one sequence number).
    std::uint32_t stream_base = seq - (client_isn_ + 1u);
    net::TcpSegment seg =
        craft_segment(p, directives_.peer_port, directives_.port, [this, stream_base](std::uint32_t i) {
            return stream_byte(static_cast<std::uint64_t>(stream_base) + i);
        });
    // Addressed to the primary's MAC throughout: pre-takeover that is the
    // service's real MAC, post-takeover the promiscuous backup still accepts
    // the frames — exactly the paper's tap, so the script does not have to
    // model the client's ARP cache update.
    net::EthernetFrame frame =
        frame_for(seg, client_mac(), primary_mac(), kClientIp, kServiceIp, ip_id_);
    client_link_->send_from(client_, std::move(frame));
}

void TestbedHarness::fail(Role role) {
    switch (role) {
        case Role::kPrimary: primary_node_.power_off(); return;
        case Role::kBackup: backup_node_.power_off(); return;
        case Role::kStack: throw HarnessError{"testbed mode has no role 'stack'"};
    }
}

net::MacAddress TestbedHarness::mac_of(Role role) const {
    switch (role) {
        case Role::kPrimary: return primary_mac();
        case Role::kBackup: return backup_mac();
        case Role::kStack: break;
    }
    throw HarnessError{"testbed mode has no role 'stack'"};
}

std::unique_ptr<Harness> make_harness(const Directives& d, sim::EventQueue::Backend backend) {
    if (d.testbed) return std::make_unique<TestbedHarness>(d, backend);
    return std::make_unique<StackHarness>(d, backend);
}

} // namespace sttcp::conform
