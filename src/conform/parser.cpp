// Lexer/parser for the conformance wire-script DSL (grammar: DESIGN.md §13).
#include "conform/script.hpp"

#include <charconv>
#include <cstdlib>
#include <sstream>

namespace sttcp::conform {

namespace {

[[noreturn]] void fail(int line, std::string message) {
    throw ParseError{line, std::move(message)};
}

// Splits a line into whitespace-separated tokens, dropping `#`/`//` comments.
std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> out;
    std::string cur;
    for (std::size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == '#' || (c == '/' && i + 1 < line.size() && line[i + 1] == '/')) break;
        if (c == ' ' || c == '\t' || c == '\r') {
            if (!cur.empty()) out.push_back(std::move(cur)), cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty()) out.push_back(std::move(cur));
    return out;
}

std::uint64_t parse_u64(const std::string& tok, int line) {
    std::uint64_t v = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc{} || p != tok.data() + tok.size())
        fail(line, "expected an unsigned integer, got '" + tok + "'");
    return v;
}

std::uint32_t parse_u32(const std::string& tok, int line) {
    std::uint64_t v = parse_u64(tok, line);
    if (v > 0xffffffffull) fail(line, "value out of u32 range: '" + tok + "'");
    return static_cast<std::uint32_t>(v);
}

// Seconds as a decimal ("0.05") to Duration. Strtod is fine here: script
// times are human-written with a handful of digits.
sim::Duration parse_seconds(const std::string& tok, int line) {
    char* end = nullptr;
    double s = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || s < 0)
        fail(line, "expected a non-negative duration in seconds, got '" + tok + "'");
    return sim::nanoseconds{static_cast<std::int64_t>(s * 1e9 + 0.5)};
}

// Time spec: "+T" or "+lo..+hi" (the second '+' is optional). Returns
// (at, until, windowed).
struct TimeSpec {
    sim::Duration at{};
    sim::Duration until{};
    bool windowed = false;
};

TimeSpec parse_time(const std::string& tok, int line) {
    if (tok.empty() || tok[0] != '+') fail(line, "step must start with a +time, got '" + tok + "'");
    std::string body = tok.substr(1);
    TimeSpec t;
    auto dots = body.find("..");
    if (dots == std::string::npos) {
        t.at = parse_seconds(body, line);
        return t;
    }
    std::string hi = body.substr(dots + 2);
    if (!hi.empty() && hi[0] == '+') hi = hi.substr(1);
    t.at = parse_seconds(body.substr(0, dots), line);
    t.until = parse_seconds(hi, line);
    t.windowed = true;
    if (t.until < t.at) fail(line, "time window ends before it starts: '" + tok + "'");
    return t;
}

Role parse_role(const std::string& tok, int line) {
    if (tok == "stack") return Role::kStack;
    if (tok == "primary") return Role::kPrimary;
    if (tok == "backup") return Role::kBackup;
    fail(line, "unknown role '" + tok + "' (stack|primary|backup)");
}

bool is_flags_token(const std::string& tok) {
    if (tok.empty()) return false;
    for (char c : tok)
        if (c != 'F' && c != 'S' && c != 'R' && c != 'P' && c != '.' && c != 'U') return false;
    return true;
}

// Canonical flag order, so diffs and recorded scripts are stable.
std::string canonical_flags(const std::string& tok) {
    std::string out;
    for (char c : {'F', 'S', 'R', 'P', '.', 'U'})
        if (tok.find(c) != std::string::npos) out.push_back(c);
    return out;
}

// Parses segment tokens after `inject`/`expect`:
//   FLAGS [a:b(len)] [ack N] [win N|*] [<mss N>]
SegmentPattern parse_segment(const std::vector<std::string>& toks, std::size_t i, int line,
                             bool is_expect) {
    SegmentPattern p;
    if (i < toks.size() && toks[i] == "*") {
        if (!is_expect) fail(line, "'*' segment is only meaningful in expect");
        p.any = true;
        if (i + 1 != toks.size()) fail(line, "'*' takes no further fields");
        return p;
    }
    if (i >= toks.size() || !is_flags_token(toks[i]))
        fail(line, "expected a flags token (subset of FSRP.U)");
    p.flags = canonical_flags(toks[i++]);
    // Optional seq range a:b(len).
    if (i < toks.size() && toks[i].find(':') != std::string::npos) {
        const std::string& t = toks[i];
        auto colon = t.find(':');
        auto paren = t.find('(');
        if (paren == std::string::npos || t.back() != ')' || paren < colon)
            fail(line, "malformed seq range '" + t + "' (want a:b(len))");
        std::uint32_t a = parse_u32(t.substr(0, colon), line);
        std::uint32_t b = parse_u32(t.substr(colon + 1, paren - colon - 1), line);
        std::uint32_t len = parse_u32(t.substr(paren + 1, t.size() - paren - 2), line);
        if (b - a != len)
            fail(line, "seq range length mismatch: " + t + " (b-a must equal len)");
        p.seq_begin = a;
        p.len = len;
        ++i;
    }
    while (i < toks.size()) {
        const std::string& t = toks[i];
        if (t == "ack") {
            if (i + 1 >= toks.size()) fail(line, "ack needs a value");
            p.ack = parse_u32(toks[i + 1], line);
            i += 2;
        } else if (t == "win") {
            if (i + 1 >= toks.size()) fail(line, "win needs a value (or *)");
            if (toks[i + 1] != "*") p.win = parse_u32(toks[i + 1], line);
            else if (!is_expect) fail(line, "win * is only meaningful in expect");
            i += 2;
        } else if (t == "<mss") {
            if (i + 1 >= toks.size() || toks[i + 1].back() != '>')
                fail(line, "malformed option (want <mss N>)");
            std::string v = toks[i + 1].substr(0, toks[i + 1].size() - 1);
            std::uint32_t mss = parse_u32(v, line);
            if (mss > 0xffff) fail(line, "mss out of range");
            p.mss = static_cast<std::uint16_t>(mss);
            i += 2;
        } else {
            fail(line, "unexpected token '" + t + "' in segment spec");
        }
    }
    if (!is_expect) {
        if (!p.seq_begin) fail(line, "inject needs an explicit a:b(len) seq range");
        if (p.flags.find('.') != std::string::npos && !p.ack)
            fail(line, "inject with ACK flag needs an explicit ack value");
    }
    return p;
}

} // namespace

std::string to_dsl(const SegmentPattern& p) {
    if (p.any) return "*";
    std::ostringstream os;
    os << (p.flags.empty() ? "?" : p.flags);
    if (p.seq_begin)
        os << ' ' << *p.seq_begin << ':' << (*p.seq_begin + (p.len ? *p.len : 0)) << '('
           << (p.len ? *p.len : 0) << ')';
    if (p.ack) os << " ack " << *p.ack;
    if (p.win) os << " win " << *p.win;
    if (p.mss) os << " <mss " << *p.mss << '>';
    return os.str();
}

Script parse_script(const std::string& text, std::string name) {
    Script script;
    script.name = std::move(name);
    Directives& d = script.directives;

    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    bool in_steps = false;
    while (std::getline(in, raw)) {
        ++line_no;
        std::vector<std::string> toks = tokenize(raw);
        if (toks.empty()) {
            if (!in_steps) script.header.push_back(raw);
            continue;
        }
        const std::string& head = toks[0];

        // ---- step lines ----------------------------------------------------
        bool is_step = head[0] == '+' || head[0] == '@' || head == "expect-silence";
        if (!is_step) {
            // ---- directives ------------------------------------------------
            if (in_steps) fail(line_no, "directive '" + head + "' after the first step");
            script.header.push_back(raw);
            auto want = [&](std::size_t n) {
                if (toks.size() != n + 1)
                    fail(line_no, "directive '" + head + "' wants " + std::to_string(n) +
                                      " argument(s)");
            };
            if (head == "mode") {
                want(1);
                if (toks[1] == "stack") d.testbed = false;
                else if (toks[1] == "testbed") d.testbed = true;
                else fail(line_no, "mode must be stack|testbed");
            } else if (head == "port") {
                want(1);
                d.port = static_cast<std::uint16_t>(parse_u32(toks[1], line_no));
            } else if (head == "peer-port") {
                want(1);
                d.peer_port = static_cast<std::uint16_t>(parse_u32(toks[1], line_no));
            } else if (head == "stack-isn") {
                want(1);
                d.stack_isn = parse_u32(toks[1], line_no);
            } else if (head == "mss") {
                want(1);
                d.mss = static_cast<std::uint16_t>(parse_u32(toks[1], line_no));
            } else if (head == "nagle") {
                want(1);
                d.nagle = toks[1] == "on";
            } else if (head == "delayed-ack") {
                want(1);
                d.delayed_ack = toks[1] == "on";
            } else if (head == "recv-buffer") {
                want(1);
                d.recv_buffer = parse_u32(toks[1], line_no);
            } else if (head == "msl") {
                want(1);
                d.msl = parse_seconds(toks[1], line_no);
            } else if (head == "hb-interval") {
                want(1);
                d.hb_interval = parse_seconds(toks[1], line_no);
            } else if (head == "sync-time") {
                want(1);
                d.sync_time = parse_seconds(toks[1], line_no);
            } else if (head == "workload") {
                want(2);
                d.workload_response = parse_u32(toks[1], line_no);
                d.workload_upload = parse_u32(toks[2], line_no);
            } else {
                fail(line_no, "unknown directive '" + head + "'");
            }
            continue;
        }

        in_steps = true;
        Step step;
        step.line = line_no;
        step.source = raw;
        std::size_t i = 0;
        TimeSpec t;
        if (head == "expect-silence") {
            // expect-silence <role> <dur>
            if (toks.size() != 3) fail(line_no, "expect-silence wants: <role> <seconds>");
            step.kind = StepKind::kExpectSilence;
            step.role = parse_role(toks[1], line_no);
            step.until = parse_seconds(toks[2], line_no);
            script.steps.push_back(std::move(step));
            continue;
        }
        if (head[0] == '@') {
            // `@fail primary` sugar for `+0 fail primary`.
            toks[0] = head.substr(1);
        } else {
            t = parse_time(head, line_no);
            i = 1;
        }
        if (i >= toks.size()) fail(line_no, "missing verb after time spec");
        const std::string& verb = toks[i];
        step.at = t.at;
        step.until = t.windowed ? t.until : t.at;
        if (verb == "inject") {
            step.kind = StepKind::kInject;
            if (t.windowed) fail(line_no, "inject takes a single +T, not a window");
            step.seg = parse_segment(toks, i + 1, line_no, /*is_expect=*/false);
        } else if (verb == "expect") {
            step.kind = StepKind::kExpect;
            // `+T expect` without a window means "within [base, base+T]".
            if (!t.windowed) {
                step.at = sim::Duration{0};
                step.until = t.at;
            }
            step.seg = parse_segment(toks, i + 1, line_no, /*is_expect=*/true);
        } else if (verb == "fail") {
            step.kind = StepKind::kFail;
            if (i + 2 != toks.size()) fail(line_no, "fail wants exactly one role");
            step.role = parse_role(toks[i + 1], line_no);
        } else if (verb == "connect") {
            step.kind = StepKind::kConnect;
            if (i + 1 != toks.size()) fail(line_no, "connect takes no arguments");
        } else if (verb == "send") {
            step.kind = StepKind::kSend;
            if (i + 2 != toks.size()) fail(line_no, "send wants a byte count");
            step.count = parse_u64(toks[i + 1], line_no);
        } else if (verb == "close") {
            step.kind = StepKind::kClose;
            if (i + 1 != toks.size()) fail(line_no, "close takes no arguments");
        } else if (verb == "run") {
            step.kind = StepKind::kRun;
            if (i + 1 != toks.size()) fail(line_no, "run takes no arguments");
        } else {
            fail(line_no, "unknown verb '" + verb + "'");
        }
        script.steps.push_back(std::move(step));
    }
    if (script.steps.empty()) fail(line_no ? line_no : 1, "script has no steps");
    return script;
}

} // namespace sttcp::conform
