// tools/sttcp_conform — wire-script conformance runner.
//
//   sttcp_conform script.pkt...            run scripts, report pass/fail
//   sttcp_conform --dir tests/conform/scripts
//                                          run every *.pkt under a directory
//   --backend wheel|heap                   pick the EventQueue backend
//   --compare-backends                     run each script under BOTH
//                                          backends and require the wire
//                                          traces to be byte-identical
//   --record script.pkt                    replay the script's inject/app
//                                          steps and print it back with
//                                          observed `expect` lines (golden
//                                          script bootstrapping)
//   --trace                                print each script's wire trace
//
// Exit code 0 iff every script passed (and, with --compare-backends, every
// trace pair matched).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "conform/engine.hpp"

namespace {

using sttcp::conform::RunOptions;
using sttcp::conform::RunResult;

std::string read_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "sttcp_conform: cannot open " << path << "\n";
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

int usage() {
    std::cerr << "usage: sttcp_conform [--backend wheel|heap] [--compare-backends] [--record]\n"
                 "                     [--trace] (--dir DIR | script.pkt...)\n";
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    RunOptions opts;
    bool compare_backends = false;
    bool print_trace = false;
    std::vector<std::filesystem::path> scripts;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--backend") {
            if (++i >= argc) return usage();
            std::string b = argv[i];
            if (b == "wheel") opts.backend = sttcp::sim::EventQueue::Backend::kWheel;
            else if (b == "heap") opts.backend = sttcp::sim::EventQueue::Backend::kHeap;
            else return usage();
        } else if (arg == "--compare-backends") {
            compare_backends = true;
        } else if (arg == "--record") {
            opts.record = true;
        } else if (arg == "--trace") {
            print_trace = true;
        } else if (arg == "--dir") {
            if (++i >= argc) return usage();
            for (const auto& entry : std::filesystem::directory_iterator(argv[i]))
                if (entry.path().extension() == ".pkt") scripts.push_back(entry.path());
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            scripts.emplace_back(arg);
        }
    }
    if (scripts.empty()) return usage();
    std::sort(scripts.begin(), scripts.end());

    int failures = 0;
    for (const auto& path : scripts) {
        std::string name = path.stem().string();
        std::string text = read_file(path);
        RunResult result = sttcp::conform::run_script_text(text, name, opts);

        if (compare_backends && result.passed) {
            RunOptions other = opts;
            other.backend = opts.backend == sttcp::sim::EventQueue::Backend::kWheel
                                ? sttcp::sim::EventQueue::Backend::kHeap
                                : sttcp::sim::EventQueue::Backend::kWheel;
            RunResult alt = sttcp::conform::run_script_text(text, name, other);
            if (!alt.passed) {
                result = alt;
            } else if (alt.wire_trace != result.wire_trace) {
                result.passed = false;
                std::ostringstream os;
                os << name << ": wire traces differ across EventQueue backends\n";
                std::size_t n = std::max(result.wire_trace.size(), alt.wire_trace.size());
                for (std::size_t j = 0; j < n; ++j) {
                    const std::string* a =
                        j < result.wire_trace.size() ? &result.wire_trace[j] : nullptr;
                    const std::string* b = j < alt.wire_trace.size() ? &alt.wire_trace[j] : nullptr;
                    if (a && b && *a == *b) continue;
                    if (a) os << " - " << *a << "\n";
                    if (b) os << " + " << *b << "\n";
                }
                result.failure = os.str();
            }
        }

        if (!result.passed) {
            ++failures;
            std::cout << "FAIL " << name << "\n" << result.failure << "\n";
        } else if (opts.record) {
            std::cout << result.recorded;
        } else {
            std::cout << "ok   " << name << "\n";
        }
        if (print_trace)
            for (const std::string& line : result.wire_trace) std::cout << "  " << line << "\n";
    }

    if (failures > 0) {
        std::cout << failures << "/" << scripts.size() << " scripts failed\n";
        return 1;
    }
    return 0;
}
