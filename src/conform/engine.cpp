#include "conform/engine.hpp"

#include <cstdio>
#include <sstream>

#include "conform/harness.hpp"

namespace sttcp::conform {

namespace {

std::string canonical_flags_of(const net::TcpFlags& f) {
    std::string out;
    if (f.fin) out.push_back('F');
    if (f.syn) out.push_back('S');
    if (f.rst) out.push_back('R');
    if (f.psh) out.push_back('P');
    if (f.ack) out.push_back('.');
    if (f.urg) out.push_back('U');
    return out;
}

// Fully concrete pattern describing an observed segment (record + diffs).
SegmentPattern pattern_of(const net::TcpSegment& seg) {
    SegmentPattern p;
    p.flags = canonical_flags_of(seg.flags);
    p.seq_begin = seg.seq.raw();
    p.len = static_cast<std::uint32_t>(seg.payload.size());
    if (seg.flags.ack) p.ack = seg.ack.raw();
    p.win = seg.window;
    p.mss = seg.mss;
    return p;
}

std::string fmt_secs(sim::Duration d, int decimals) {
    double s = static_cast<double>(d.count()) / 1e9;
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, s);
    return buf;
}

std::string fmt_at(sim::TimePoint t, int decimals = 6) {
    return "+" + fmt_secs(t.time_since_epoch(), decimals);
}

std::string seq_range_of(const net::TcpSegment& seg) {
    std::uint32_t len = static_cast<std::uint32_t>(seg.payload.size());
    return std::to_string(seg.seq.raw()) + ":" + std::to_string((seg.seq + len).raw()) + "(" +
           std::to_string(len) + ")";
}

// One canonical line per captured segment; the cross-backend determinism
// gate compares these byte-for-byte, so everything here must be a pure
// function of the capture (no wall-clock, no addresses-of).
std::string wire_line(const Captured& c, const std::string& src_role) {
    std::ostringstream os;
    os << fmt_at(c.at, 9) << ' ' << src_role << ' ' << c.ip_src.to_string() << ':'
       << c.seg.src_port << " > " << c.ip_dst.to_string() << ':' << c.seg.dst_port << ' '
       << canonical_flags_of(c.seg.flags) << ' ' << seq_range_of(c.seg);
    if (c.seg.flags.ack) os << " ack " << c.seg.ack.raw();
    os << " win " << c.seg.window;
    if (c.seg.mss) os << " <mss " << *c.seg.mss << '>';
    return os.str();
}

// ---- matcher ---------------------------------------------------------------

struct FieldDiff {
    const char* name;
    std::string expected;  // empty = wildcard
    std::string observed;
    bool ok;
};

std::vector<FieldDiff> diff_fields(const SegmentPattern& want, const net::TcpSegment& got) {
    std::vector<FieldDiff> out;
    auto row = [&out](const char* name, bool constrained, std::string exp, std::string obs,
                      bool match) {
        out.push_back({name, constrained ? std::move(exp) : std::string{}, std::move(obs),
                       !constrained || match});
    };
    if (want.any) {
        row("segment", false, "", "any", true);
        return out;
    }
    std::string obs_flags = canonical_flags_of(got.flags);
    row("flags", true, want.flags, obs_flags, want.flags == obs_flags);
    {
        std::string exp;
        bool match = true;
        if (want.seq_begin) {
            std::uint32_t len = want.len.value_or(0);
            exp = std::to_string(*want.seq_begin) + ":" + std::to_string(*want.seq_begin + len) +
                  "(" + std::to_string(len) + ")";
            match = got.seq.raw() == *want.seq_begin &&
                    got.payload.size() == want.len.value_or(0);
        }
        row("seq", want.seq_begin.has_value(), std::move(exp), seq_range_of(got), match);
    }
    {
        std::string obs = got.flags.ack ? std::to_string(got.ack.raw()) : "(no ack)";
        bool match = got.flags.ack && want.ack && got.ack.raw() == *want.ack;
        row("ack", want.ack.has_value(),
            want.ack ? std::to_string(*want.ack) : std::string{}, std::move(obs), match);
    }
    row("win", want.win.has_value(), want.win ? std::to_string(*want.win) : std::string{},
        std::to_string(got.window), want.win && got.window == *want.win);
    {
        std::string obs = got.mss ? std::to_string(*got.mss) : "(none)";
        bool match = want.mss && got.mss && *got.mss == *want.mss;
        row("mss", want.mss.has_value(),
            want.mss ? std::to_string(*want.mss) : std::string{}, std::move(obs), match);
    }
    return out;
}

bool all_ok(const std::vector<FieldDiff>& d) {
    for (const FieldDiff& f : d)
        if (!f.ok) return false;
    return true;
}

// Unified-diff-flavored field table: matching rows keep a ' ' prefix,
// mismatching rows become a -expected/+observed pair.
std::string render_diff(const std::vector<FieldDiff>& d) {
    std::ostringstream os;
    for (const FieldDiff& f : d) {
        if (f.ok) {
            os << "   " << f.name << "\t"
               << (f.expected.empty() ? "* (any)" : f.expected) << "\tobserved " << f.observed
               << "\n";
        } else {
            os << " - " << f.name << "\t" << f.expected << "\n";
            os << " + " << f.name << "\t" << f.observed << "\n";
        }
    }
    return os.str();
}

// ---- runner ----------------------------------------------------------------

class Runner {
public:
    Runner(const Script& script, const RunOptions& opts) : script_(script), opts_(opts) {}

    RunResult run() {
        harness_ = make_harness(script_.directives, opts_.backend);
        if (opts_.record)
            for (const std::string& line : script_.header) rec_ << line << "\n";
        try {
            for (const Step& step : script_.steps) {
                dispatch(step);
                if (failed_) break;
            }
        } catch (const Harness::HarnessError& e) {
            fail_step(*current_, e.message);
        }
        if (!failed_) {
            if (opts_.record) record_drain();
            else check_leftovers();
        }
        finalize();
        return std::move(result_);
    }

private:
    void dispatch(const Step& step) {
        current_ = &step;
        switch (step.kind) {
            case StepKind::kInject:
                advance_to(base_ + step.at);
                harness_->inject(step.seg);
                base_ += step.at;
                emit_source(step);
                return;
            case StepKind::kExpect:
                if (opts_.record) record_expect(step);
                else check_expect(step);
                return;
            case StepKind::kExpectSilence: check_silence(step); return;
            case StepKind::kFail:
                advance_to(base_ + step.at);
                harness_->fail(step.role);
                base_ += step.at;
                emit_source(step);
                return;
            case StepKind::kConnect:
                advance_to(base_ + step.at);
                harness_->app_connect();
                base_ += step.at;
                emit_source(step);
                return;
            case StepKind::kSend:
                advance_to(base_ + step.at);
                harness_->app_send(step.count);
                base_ += step.at;
                emit_source(step);
                return;
            case StepKind::kClose:
                advance_to(base_ + step.at);
                harness_->app_close();
                base_ += step.at;
                emit_source(step);
                return;
            case StepKind::kRun:
                advance_to(base_ + step.at);
                base_ += step.at;
                emit_source(step);
                return;
        }
    }

    // ---- time & capture helpers -------------------------------------------

    void advance_to(sim::TimePoint t) {
        if (t > harness_->sim().now()) harness_->sim().run_until(t);
    }

    Captured* next_unconsumed() {
        for (Captured& c : harness_->captured())
            if (c.in_scope && !c.consumed) return &c;
        return nullptr;
    }

    // Runs the simulation one event at a time until an unconsumed in-scope
    // segment exists or virtual time passes `deadline`. Returns nullptr if
    // none arrived (simulated time is then just past the deadline).
    Captured* await_segment(sim::TimePoint deadline) {
        for (;;) {
            if (Captured* c = next_unconsumed()) return c;
            if (harness_->sim().now() > deadline) return nullptr;
            if (!harness_->sim().queue().step()) {
                advance_to(deadline);
                return next_unconsumed();
            }
        }
    }

    // ---- expect ------------------------------------------------------------

    void check_expect(const Step& step) {
        sim::TimePoint lo = base_ + step.at;
        sim::TimePoint hi = base_ + step.until;
        Captured* c = await_segment(hi);
        if (c == nullptr) {
            fail_step(step, "expected `" + to_dsl(step.seg) + "` in window [" +
                                fmt_at(lo) + ", " + fmt_at(hi) +
                                "], but no segment arrived");
            return;
        }
        c->consumed = true;
        if (c->at > hi) {
            fail_step(step, "no segment inside window [" + fmt_at(lo) + ", " + fmt_at(hi) +
                                "]; next segment only at " + fmt_at(c->at) + ":\n   " +
                                to_dsl(pattern_of(c->seg)));
            return;
        }
        if (c->at < lo) {
            fail_step(step, "segment arrived at " + fmt_at(c->at) + ", before window [" +
                                fmt_at(lo) + ", " + fmt_at(hi) + "]:\n   " +
                                to_dsl(pattern_of(c->seg)));
            return;
        }
        std::vector<FieldDiff> d = diff_fields(step.seg, c->seg);
        if (!all_ok(d)) {
            fail_step(step, "segment at " + fmt_at(c->at) + " does not match:\n" +
                                "--- expected  " + to_dsl(step.seg) + "\n" +
                                "+++ observed  " + to_dsl(pattern_of(c->seg)) + "\n" +
                                render_diff(d));
            return;
        }
        base_ = c->at;  // follow-up steps key off the observed time
    }

    // The window is left-open: base_ is the timestamp of the last matched
    // event, so a frame at exactly base_ (e.g. the segment the preceding
    // expect just consumed) is before the silence, not inside it.
    void check_silence(const Step& step) {
        sim::TimePoint lo = base_;
        sim::TimePoint hi = base_ + step.until;
        net::MacAddress mac = harness_->mac_of(step.role);
        advance_to(hi);
        for (const Captured& c : harness_->captured()) {
            if (c.eth_src != mac || c.at <= lo || c.at > hi) continue;
            fail_step(step, "expected silence from " + std::string(to_string(step.role)) +
                                " in (" + fmt_at(lo) + ", " + fmt_at(hi) +
                                "], but it transmitted at " + fmt_at(c.at) + ":\n   " +
                                to_dsl(pattern_of(c.seg)));
            return;
        }
        base_ = hi;
        emit_source(step);
    }

    // Strict mode: every in-scope segment must have been consumed by an
    // expect — an extra segment is as much a conformance failure as a
    // missing one.
    void check_leftovers() {
        std::string extras;
        int n = 0;
        for (const Captured& c : harness_->captured()) {
            if (!c.in_scope || c.consumed) continue;
            ++n;
            if (n <= 5)
                extras += "   " + fmt_at(c.at) + "  " + to_dsl(pattern_of(c.seg)) + "\n";
        }
        if (n > 0) {
            failed_ = true;
            result_.passed = false;
            result_.failure = script_.name + ": " + std::to_string(n) +
                              " unconsumed in-scope segment(s) after the last step:\n" + extras +
                              trace_tail();
        }
    }

    // ---- record mode -------------------------------------------------------

    void emit_source(const Step& step) {
        if (opts_.record) rec_ << step.source << "\n";
    }

    void emit_expect(const Captured& c) {
        sim::Duration rel = c.at > base_ ? c.at - base_ : sim::Duration{0};
        sim::Duration lo = rel > opts_.record_pad ? rel - opts_.record_pad : sim::Duration{0};
        rec_ << "+" << fmt_secs(lo, 6) << "..+" << fmt_secs(rel + opts_.record_pad, 6)
             << " expect " << to_dsl(pattern_of(c.seg)) << "\n";
    }

    void record_expect(const Step& step) {
        sim::Duration wait = step.until > sim::Duration{0} ? step.until : opts_.record_deadline;
        Captured* c = await_segment(base_ + wait);
        if (c == nullptr) {
            fail_step(step, "record: no segment arrived within " + fmt_secs(wait, 6) + "s");
            return;
        }
        c->consumed = true;
        emit_expect(*c);
        if (c->at > base_) base_ = c->at;
    }

    // Segments captured by the final steps but never consumed become
    // trailing expect lines, so a recorded script is strict-complete.
    void record_drain() {
        for (Captured& c : harness_->captured()) {
            if (!c.in_scope || c.consumed) continue;
            c.consumed = true;
            emit_expect(c);
            if (c.at > base_) base_ = c.at;
        }
    }

    // ---- reporting ---------------------------------------------------------

    std::string trace_tail() const {
        const std::vector<std::string>& t = harness_->trace();
        std::size_t from = t.size() > 20 ? t.size() - 20 : 0;
        std::string out = "frame trace (last " + std::to_string(t.size() - from) + " of " +
                          std::to_string(t.size()) + "):\n";
        for (std::size_t i = from; i < t.size(); ++i) out += "  " + t[i] + "\n";
        return out;
    }

    void fail_step(const Step& step, const std::string& why) {
        failed_ = true;
        result_.passed = false;
        result_.failure = script_.name + ":" + std::to_string(step.line) + ": " + step.source +
                          "\n" + why + "\n" + trace_tail();
    }

    void finalize() {
        for (const Captured& c : harness_->captured())
            result_.wire_trace.push_back(wire_line(c, role_of(c.eth_src)));
        if (opts_.record && result_.passed) result_.recorded = rec_.str();
    }

    std::string role_of(net::MacAddress src) const {
        for (Role r : {Role::kStack, Role::kPrimary, Role::kBackup}) {
            try {
                if (harness_->mac_of(r) == src) return to_string(r);
            } catch (const Harness::HarnessError&) {
            }
        }
        return src.to_string();
    }

    const Script& script_;
    const RunOptions& opts_;
    std::unique_ptr<Harness> harness_;
    sim::TimePoint base_{};
    const Step* current_ = nullptr;
    bool failed_ = false;
    std::ostringstream rec_;
    RunResult result_;
};

} // namespace

RunResult run_script(const Script& script, const RunOptions& options) {
    return Runner{script, options}.run();
}

RunResult run_script_text(const std::string& text, const std::string& name,
                          const RunOptions& options) {
    try {
        Script script = parse_script(text, name);
        return run_script(script, options);
    } catch (const ParseError& e) {
        RunResult r;
        r.passed = false;
        r.failure = name + ":" + std::to_string(e.line) + ": parse error: " + e.message;
        return r;
    }
}

} // namespace sttcp::conform
