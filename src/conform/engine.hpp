// Wire-script runner: executes a parsed Script against a harness, matching
// expectations inside virtual-time windows and reporting mismatches as a
// unified field diff plus the recorded frame trace.
//
// Timing model ("base time"): each step's +T is relative to the script base,
// which starts at t=0 and advances as steps complete. An `expect` advances
// the base to the *observed* match time, so follow-up injects are keyed off
// what actually happened — exactly how a human replays a tcpdump.
#pragma once

#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

#include "conform/script.hpp"

namespace sttcp::conform {

struct RunOptions {
    sim::EventQueue::Backend backend = sim::EventQueue::Backend::kWheel;
    // Record mode: expectations are not checked; every in-scope segment the
    // stack emits is re-emitted as an expect line with a ±pad window.
    bool record = false;
    sim::Duration record_pad = sim::milliseconds{5};
    // How long record mode waits on an unwindowed `+0 expect`.
    sim::Duration record_deadline = sim::seconds{2};
};

struct RunResult {
    bool passed = true;
    std::string failure;  // first failure: message + field diff + trace tail

    // Canonical one-line-per-segment decode of everything captured, in
    // capture order with virtual timestamps — compared byte-for-byte across
    // EventQueue backends by the determinism gate.
    std::vector<std::string> wire_trace;

    std::string recorded;  // record mode: the regenerated script text
};

// Parses + runs; any ParseError is converted into a failed result.
[[nodiscard]] RunResult run_script_text(const std::string& text, const std::string& name,
                                        const RunOptions& options = {});

[[nodiscard]] RunResult run_script(const Script& script, const RunOptions& options = {});

} // namespace sttcp::conform
