#include "net/packet_logger.hpp"

#include "net/ipv4.hpp"

namespace sttcp::net {

std::vector<util::Bytes> PacketLogger::find_tcp_range(Ipv4Address src_ip, Ipv4Address dst_ip,
                                                      std::uint16_t src_port,
                                                      std::uint16_t dst_port,
                                                      util::Seq32 seq_begin,
                                                      util::Seq32 seq_end) const {
    ++stats_.lookups;
    std::vector<util::Bytes> out;
    for (const auto& entry : log_) {
        try {
            const EthernetFrame& frame = entry.frame;
            if (frame.type != EtherType::kIpv4) continue;
            Ipv4Packet ip = Ipv4Packet::parse(frame.payload);
            if (ip.proto != IpProto::kTcp || ip.src != src_ip || ip.dst != dst_ip) continue;
            TcpSegment seg = TcpSegment::parse(ip.payload, ip.src, ip.dst);
            if (seg.src_port != src_port || seg.dst_port != dst_port) continue;
            if (seg.payload.empty()) continue;
            util::Seq32 lo = seg.seq;
            util::Seq32 hi = seg.seq + static_cast<std::uint32_t>(seg.payload.size());
            // Overlap test on the sequence circle.
            if (lo < seq_end && seq_begin < hi) out.push_back(frame.serialize());
        } catch (const util::WireError&) {
            continue;  // non-parseable frames are simply not matches
        }
    }
    return out;
}

} // namespace sttcp::net
