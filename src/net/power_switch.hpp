// Controllable power switch used for fencing (paper §3.2, §4.4).
//
// ST-TCP needs a *perfect* failure detector: the backup must never take over
// while the primary is still alive. The paper achieves this by powering off
// a suspected primary before promoting the suspicion — "we convert wrong
// suspicions into correct suspicions by switching off the power of a
// suspected computer." The switch actuates after a configurable command
// latency (relay delay + network hop to the switch's management port).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/node.hpp"
#include "sim/simulation.hpp"

namespace sttcp::net {

class PowerSwitch {
public:
    PowerSwitch(sim::Simulation& simulation, sim::Duration command_latency = sim::milliseconds{5})
        : sim_(simulation), latency_(command_latency) {}

    void manage(Node& node) { nodes_.emplace(node.name(), &node); }

    // Requests power-off; `on_done` runs once the node is certainly dead.
    // Idempotent: fencing an already-dead node still confirms.
    void power_off(const std::string& node_name, std::function<void()> on_done) {
        ++stats_.commands;
        // lint:allow this-capture -- topology device: the PowerSwitch lives for the whole sim epoch, so fencing events cannot outlive it.
        sim_.schedule_after(latency_, [this, node_name, cb = std::move(on_done)]() {
            auto it = nodes_.find(node_name);
            if (it != nodes_.end()) {
                if (it->second->powered()) ++stats_.nodes_killed;
                it->second->power_off();
            }
            if (cb) cb();
        });
    }

    struct Stats {
        std::uint64_t commands = 0;
        std::uint64_t nodes_killed = 0;  // commands that found the node alive
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    sim::Simulation& sim_;
    sim::Duration latency_;
    std::unordered_map<std::string, Node*> nodes_;
    Stats stats_;
};

} // namespace sttcp::net
