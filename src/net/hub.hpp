// Shared-medium Ethernet hub (repeater).
//
// The paper's testbed (§6): "these three machines are placed on the same LAN
// using a 10/100 Mbit Ethernet hub. Since the hub broadcasts all traffic on
// all ports, the backup can tap into all of the primary's network traffic."
// Every frame entering one port is repeated out of every other port. We do
// not model CSMA/CD collisions; per-link serialization already caps
// throughput, and a switch upgrade is available (net/switch.hpp).
#pragma once

#include <memory>
#include <vector>

#include "net/device.hpp"
#include "net/link.hpp"
#include "sim/simulation.hpp"

namespace sttcp::net {

class Hub {
public:
    Hub(sim::Simulation& simulation, std::string name)
        : sim_(simulation), name_(std::move(name)) {}

    Hub(const Hub&) = delete;
    Hub& operator=(const Hub&) = delete;

    // Creates a new port and wires it to `peer` over a fresh link.
    Link& connect(FrameEndpoint& peer, LinkConfig config);

    [[nodiscard]] std::size_t port_count() const { return ports_.size(); }
    [[nodiscard]] const std::string& name() const { return name_; }

    struct Stats {
        std::uint64_t frames_repeated = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    class Port final : public FrameEndpoint {
    public:
        Port(Hub& hub, std::size_t index) : hub_(hub), index_(index) {}
        void handle_frame(const EthernetFrame& frame) override { hub_.repeat(index_, frame); }
        [[nodiscard]] std::string endpoint_name() const override {
            return hub_.name_ + "/port" + std::to_string(index_);
        }

    private:
        Hub& hub_;
        std::size_t index_;
    };

    void repeat(std::size_t in_port, const EthernetFrame& frame);

    sim::Simulation& sim_;
    std::string name_;
    std::vector<std::unique_ptr<Port>> ports_;
    std::vector<std::unique_ptr<Link>> links_;
    Stats stats_;
};

} // namespace sttcp::net
