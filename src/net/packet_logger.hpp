// In-memory packet logger appliance (paper §3.2).
//
// "This logger machine logs all packets on the Ethernet in its main memory
// for a bounded amount of time." It masks double failures: if the tap
// dropped a segment *and* the primary crashed before the backup could
// re-request it, the backup recovers the raw frames from the logger. The
// log is bounded by bytes and by age, as the paper's sizing argument
// (max bandwidth × max failover time) requires.
#pragma once

#include <deque>
#include <vector>

#include "net/device.hpp"
#include "net/nic.hpp"
#include "net/tcp_wire.hpp"
#include "sim/simulation.hpp"
#include "util/seq32.hpp"

namespace sttcp::net {

class PacketLogger {
public:
    struct Config {
        std::size_t max_bytes = 64 * 1024 * 1024;
        sim::Duration max_age = sim::seconds{60};
    };

    PacketLogger(sim::Simulation& simulation, Node& node, Config config)
        : sim_(simulation), node_(node), config_(config) {}
    PacketLogger(sim::Simulation& simulation, Node& node)
        : PacketLogger(simulation, node, Config{}) {}

    // Attach to a NIC (typically promiscuous, on the tapped segment).
    void attach(Nic& nic) {
        nic.set_promiscuous(true);
        // lint:allow this-capture -- the logger appliance and the NIC it taps are both topology, alive for the whole sim epoch.
        nic.set_rx_handler([this](const EthernetFrame& f) { record(f); });
    }

    void record(const EthernetFrame& frame) {
        if (!node_.powered()) return;
        evict(sim_.now());
        // Zero-copy: the entry shares the frame's payload buffer; frames are
        // serialized only on the (rare) recovery lookup path.
        stored_bytes_ += stored_size(frame);
        log_.push_back({sim_.now(), frame});
        ++stats_.frames_logged;
    }

    // Returns raw frames containing TCP payload for the given flow
    // overlapping sequence range [seq_begin, seq_end). Flow is identified by
    // IP/port pairs in the *client→server* direction given here.
    [[nodiscard]] std::vector<util::Bytes> find_tcp_range(Ipv4Address src_ip, Ipv4Address dst_ip,
                                                          std::uint16_t src_port,
                                                          std::uint16_t dst_port,
                                                          util::Seq32 seq_begin,
                                                          util::Seq32 seq_end) const;

    [[nodiscard]] std::size_t stored_bytes() const { return stored_bytes_; }
    [[nodiscard]] std::size_t frame_count() const { return log_.size(); }

    struct Stats {
        std::uint64_t frames_logged = 0;
        std::uint64_t frames_evicted = 0;
        std::uint64_t lookups = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    struct Entry {
        sim::TimePoint at;
        EthernetFrame frame;  // payload shared with the delivered frame
    };

    [[nodiscard]] static std::size_t stored_size(const EthernetFrame& frame) {
        return EthernetFrame::kHeaderSize + frame.payload.size();
    }

    void evict(sim::TimePoint now) {
        while (!log_.empty() &&
               (stored_bytes_ > config_.max_bytes || log_.front().at + config_.max_age < now)) {
            stored_bytes_ -= stored_size(log_.front().frame);
            log_.pop_front();
            ++stats_.frames_evicted;
        }
    }

    sim::Simulation& sim_;
    Node& node_;
    Config config_;
    std::deque<Entry> log_;
    std::size_t stored_bytes_ = 0;
    mutable Stats stats_;
};

} // namespace sttcp::net
