// Inline (bump-in-the-wire) packet logger, paper §3.2 / Figure 3.
//
// "Since all traffic to and from the server has to flow through the
// logger(s), the logger(s) has (have) the complete communication state."
// The appliance bridges two Ethernet links at line rate, recording every
// frame it forwards into a bounded in-memory PacketLogger. Powering the
// node off severs the rail — which is exactly why Figure 3 provisions two.
#pragma once

#include "net/packet_logger.hpp"

namespace sttcp::net {

class InlineLogger {
public:
    InlineLogger(sim::Simulation& simulation, Node& node, PacketLogger::Config config,
                 sim::Duration forwarding_latency = sim::microseconds{2})
        : node_(node),
          store_(simulation, node, config),
          latency_(forwarding_latency),
          sim_(simulation),
          side_a_(*this, 'A'),
          side_b_(*this, 'B') {}

    InlineLogger(sim::Simulation& simulation, Node& node)
        : InlineLogger(simulation, node, PacketLogger::Config{}) {}

    // Endpoints to wire into the two links (switch side / gateway side).
    [[nodiscard]] FrameEndpoint& side_a() { return side_a_; }
    [[nodiscard]] FrameEndpoint& side_b() { return side_b_; }

    [[nodiscard]] PacketLogger& store() { return store_; }
    [[nodiscard]] const PacketLogger& store() const { return store_; }

    struct Stats {
        std::uint64_t frames_forwarded = 0;
        std::uint64_t frames_dropped_dead = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    class Side final : public FrameEndpoint {
    public:
        Side(InlineLogger& parent, char label) : parent_(parent), label_(label) {}
        void handle_frame(const EthernetFrame& frame) override {
            parent_.forward(label_, frame);
        }
        [[nodiscard]] std::string endpoint_name() const override {
            return parent_.node_.name() + "/side" + label_;
        }

    private:
        InlineLogger& parent_;
        char label_;
    };

    void forward(char from, const EthernetFrame& frame) {
        if (!node_.powered()) {
            ++stats_.frames_dropped_dead;
            return;
        }
        store_.record(frame);
        ++stats_.frames_forwarded;
        FrameEndpoint& out = from == 'A' ? side_b_ : side_a_;
        // lint:allow this-capture -- topology device: the InlineLogger lives for the whole sim epoch, so forwarding events cannot outlive it.
        sim_.schedule_after(latency_, [this, &out, frame]() {
            if (!node_.powered() || out.link() == nullptr) return;
            out.link()->send_from(out, frame);
        });
    }

    Node& node_;
    PacketLogger store_;
    sim::Duration latency_;
    sim::Simulation& sim_;
    Side side_a_;
    Side side_b_;
    Stats stats_;
};

} // namespace sttcp::net
