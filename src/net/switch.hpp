// Learning Ethernet switch with port mirroring and multicast flooding.
//
// Implements both switched-Ethernet tap architectures of paper §3.1:
//  1. managed-switch port mirroring ("forward traffic flowing from/to a port
//     to some other port") — set_mirror();
//  2. multicast-MAC flooding — frames addressed to a group MAC are flooded
//     to every other port, so a backup that joined SME/GME receives all
//     server traffic even through a crossbar.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/device.hpp"
#include "net/link.hpp"
#include "sim/simulation.hpp"

namespace sttcp::net {

class Switch {
public:
    Switch(sim::Simulation& simulation, std::string name,
           sim::Duration forwarding_latency = sim::microseconds{3})
        : sim_(simulation), name_(std::move(name)), latency_(forwarding_latency) {}

    Switch(const Switch&) = delete;
    Switch& operator=(const Switch&) = delete;

    // Creates a new port wired to `peer`; returns the port index.
    std::size_t connect(FrameEndpoint& peer, LinkConfig config);

    // Copies every frame entering or leaving `observed_port` to `tap_port`.
    void set_mirror(std::size_t observed_port, std::size_t tap_port);
    void clear_mirror() { mirror_.reset(); }

    [[nodiscard]] std::size_t port_count() const { return ports_.size(); }
    [[nodiscard]] Link& link_at(std::size_t port) { return *links_.at(port); }

    struct Stats {
        std::uint64_t unicast_forwarded = 0;
        std::uint64_t flooded = 0;
        std::uint64_t mirrored = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

    // MAC table introspection (for tests).
    [[nodiscard]] std::optional<std::size_t> learned_port(const MacAddress& mac) const {
        auto it = mac_table_.find(mac);
        if (it == mac_table_.end()) return std::nullopt;
        return it->second;
    }
    [[nodiscard]] std::size_t mac_table_size() const { return mac_table_.size(); }

    // Learning-table bound: a peer sweeping forged source addresses must not
    // grow the table (and the host's memory) without limit. Once full, new
    // addresses are not learned and their frames flood — degraded, not dead.
    static constexpr std::size_t kMacTableCap = 1024;

private:
    class Port final : public FrameEndpoint {
    public:
        Port(Switch& sw, std::size_t index) : switch_(sw), index_(index) {}
        void handle_frame(const EthernetFrame& frame) override {
            switch_.forward(index_, frame);
        }
        [[nodiscard]] std::string endpoint_name() const override {
            return switch_.name_ + "/port" + std::to_string(index_);
        }

    private:
        Switch& switch_;
        std::size_t index_;
    };

    void forward(std::size_t in_port, EthernetFrame frame);
    void transmit(std::size_t out_port, const EthernetFrame& frame);

    struct Mirror {
        std::size_t observed;
        std::size_t tap;
    };

    sim::Simulation& sim_;
    std::string name_;
    sim::Duration latency_;
    std::vector<std::unique_ptr<Port>> ports_;
    std::vector<std::unique_ptr<Link>> links_;
    std::unordered_map<MacAddress, std::size_t> mac_table_;
    std::optional<Mirror> mirror_;
    Stats stats_;
};

} // namespace sttcp::net
