// ARP (RFC 826) message format and the resolution table.
//
// The table supports *static* entries, which is how ST-TCP installs the
// unicast-IP → multicast-MAC mappings (SVI→SME at the gateway, GVI→GME at
// the primary, paper §3.1). RFC 1812 forbids a router from accepting a
// multicast MAC in an ARP *reply* — hence static configuration — and our
// dynamic resolution path enforces that rule.
#pragma once

#include <optional>
#include <unordered_map>

#include "net/addr.hpp"
#include "util/wire.hpp"

namespace sttcp::net {

enum class ArpOp : std::uint16_t { kRequest = 1, kReply = 2 };

struct ArpMessage {
    ArpOp op = ArpOp::kRequest;
    MacAddress sender_mac;
    Ipv4Address sender_ip;
    MacAddress target_mac;  // ignored in requests
    Ipv4Address target_ip;

    static constexpr std::size_t kWireSize = 28;

    [[nodiscard]] util::Bytes serialize() const;
    [[nodiscard]] static ArpMessage parse(util::ByteView raw);
};

class ArpTable {
public:
    // Static entries never expire and are never overwritten by replies.
    void add_static(Ipv4Address ip, MacAddress mac) { entries_[ip] = {mac, /*is_static=*/true}; }

    // Learns a dynamic mapping from an ARP reply. Per RFC 1812 a multicast
    // MAC learned dynamically is rejected; returns whether it was accepted.
    bool learn(Ipv4Address ip, MacAddress mac) {
        if (mac.is_multicast()) return false;
        auto it = entries_.find(ip);
        if (it != entries_.end() && it->second.is_static) return false;
        entries_[ip] = {mac, /*is_static=*/false};
        return true;
    }

    [[nodiscard]] std::optional<MacAddress> lookup(Ipv4Address ip) const {
        auto it = entries_.find(ip);
        if (it == entries_.end()) return std::nullopt;
        return it->second.mac;
    }

    [[nodiscard]] std::size_t size() const { return entries_.size(); }

private:
    struct Entry {
        MacAddress mac;
        bool is_static = false;
    };
    std::unordered_map<Ipv4Address, Entry> entries_;
};

} // namespace sttcp::net
