#include "net/arp.hpp"

#include <algorithm>

#include "util/buffer_pool.hpp"

namespace sttcp::net {

namespace {
MacAddress read_mac(util::WireReader& r) {
    std::array<std::uint8_t, 6> mac{};
    auto b = r.bytes(6);
    std::copy(b.begin(), b.end(), mac.begin());
    return MacAddress{mac};
}
} // namespace

util::Bytes ArpMessage::serialize() const {
    util::Bytes out = util::BufferPool::instance().take(kWireSize);
    util::WireWriter w{out};
    w.u16(1);       // HTYPE: Ethernet
    w.u16(0x0800);  // PTYPE: IPv4
    w.u8(6);        // HLEN
    w.u8(4);        // PLEN
    w.u16(static_cast<std::uint16_t>(op));
    w.bytes(util::ByteView{sender_mac.bytes()});
    w.u32(sender_ip.value());
    w.bytes(util::ByteView{target_mac.bytes()});
    w.u32(target_ip.value());
    return out;
}

ArpMessage ArpMessage::parse(util::ByteView raw) {
    util::WireReader r{raw};
    if (r.u16() != 1 || r.u16() != 0x0800) throw util::WireError{"arp: bad htype/ptype"};
    if (r.u8() != 6 || r.u8() != 4) throw util::WireError{"arp: bad hlen/plen"};
    ArpMessage m;
    const std::uint16_t op = r.u16();
    // Only request/reply exist; anything else is a malformed (or hostile)
    // message and must be rejected at the parse boundary, not dispatched on.
    if (op != 1 && op != 2) throw util::WireError{"arp: bad opcode"};
    m.op = static_cast<ArpOp>(op);
    m.sender_mac = read_mac(r);
    m.sender_ip = Ipv4Address{r.u32()};
    m.target_mac = read_mac(r);
    m.target_ip = Ipv4Address{r.u32()};
    return m;
}

} // namespace sttcp::net
