#include "net/ipv4.hpp"

#include "util/buffer_pool.hpp"

namespace sttcp::net {

util::Bytes Ipv4Packet::serialize() const {
    util::Bytes out = util::BufferPool::instance().take(total_size());
    util::WireWriter w{out};
    w.u8(0x45);  // version 4, IHL 5
    w.u8(0);     // DSCP/ECN
    w.u16(static_cast<std::uint16_t>(total_size()));
    w.u16(identification);
    w.u16(0x4000);  // flags: DF, fragment offset 0
    w.u8(ttl);
    w.u8(static_cast<std::uint8_t>(proto));
    std::size_t checksum_at = w.size();
    w.u16(0);  // checksum placeholder
    w.u32(src.value());
    w.u32(dst.value());

    util::InternetChecksum sum;
    sum.add(util::ByteView{out});
    w.patch_u16(checksum_at, sum.finish());

    w.bytes(payload);
    return out;
}

Ipv4Packet Ipv4Packet::parse(util::ByteView raw) {
    util::WireReader r{raw};
    std::uint8_t ver_ihl = r.u8();
    if ((ver_ihl >> 4) != 4) throw util::WireError{"ipv4: bad version"};
    std::size_t ihl = (ver_ihl & 0xf) * 4u;
    if (ihl < kHeaderSize || raw.size() < ihl) throw util::WireError{"ipv4: bad IHL"};
    r.skip(1);  // DSCP/ECN
    std::uint16_t total_len = r.u16();
    if (total_len < ihl || total_len > raw.size()) throw util::WireError{"ipv4: bad length"};

    Ipv4Packet p;
    p.identification = r.u16();
    std::uint16_t flags_frag = r.u16();
    if ((flags_frag & 0x3fff) != 0)  // MF set or nonzero offset
        throw util::WireError{"ipv4: fragmentation unsupported"};
    p.ttl = r.u8();
    p.proto = static_cast<IpProto>(r.u8());
    r.skip(2);  // checksum — verified over the whole header below
    p.src = Ipv4Address{r.u32()};
    p.dst = Ipv4Address{r.u32()};

    util::InternetChecksum sum;
    sum.add(raw.subspan(0, ihl));
    if (sum.finish() != 0) throw util::WireError{"ipv4: header checksum mismatch"};

    auto body = raw.subspan(ihl, total_len - ihl);
    p.payload.assign(body.begin(), body.end());
    return p;
}

} // namespace sttcp::net
