#include "net/addr.hpp"

#include <cstdio>
#include <ostream>

namespace sttcp::net {

std::string MacAddress::to_string() const {
    char buf[18];
    std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0], bytes_[1],
                  bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
    return buf;
}

std::string Ipv4Address::to_string() const {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", addr_ >> 24 & 0xff, addr_ >> 16 & 0xff,
                  addr_ >> 8 & 0xff, addr_ & 0xff);
    return buf;
}

std::ostream& operator<<(std::ostream& os, const MacAddress& m) { return os << m.to_string(); }
std::ostream& operator<<(std::ostream& os, const Ipv4Address& a) { return os << a.to_string(); }

} // namespace sttcp::net
