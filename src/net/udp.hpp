// UDP datagram format (RFC 768), with the IPv4 pseudo-header checksum.
//
// The ST-TCP control channel (backup acks, heartbeats, missing-segment
// recovery — paper §4.2/§4.3) runs over this.
#pragma once

#include <cstdint>

#include "net/addr.hpp"
#include "util/wire.hpp"

namespace sttcp::net {

struct UdpDatagram {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    util::Bytes payload;

    static constexpr std::size_t kHeaderSize = 8;

    [[nodiscard]] std::size_t total_size() const { return kHeaderSize + payload.size(); }

    [[nodiscard]] util::Bytes serialize(Ipv4Address src_ip, Ipv4Address dst_ip) const;

    // Parses and verifies the checksum (pseudo-header included); throws
    // util::WireError on corruption.
    [[nodiscard]] static UdpDatagram parse(util::ByteView raw, Ipv4Address src_ip,
                                           Ipv4Address dst_ip);
};

} // namespace sttcp::net
