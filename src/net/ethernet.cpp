#include "net/ethernet.hpp"

#include "util/buffer_pool.hpp"

namespace sttcp::net {

util::Bytes EthernetFrame::serialize() const {
    util::Bytes out = util::BufferPool::instance().take(kHeaderSize + payload.size());
    util::WireWriter w{out};
    w.bytes(util::ByteView{dst.bytes()});
    w.bytes(util::ByteView{src.bytes()});
    w.u16(static_cast<std::uint16_t>(type));
    w.bytes(payload);
    return out;
}

EthernetFrame EthernetFrame::parse(util::ByteView raw) {
    util::WireReader r{raw};
    EthernetFrame f;
    std::array<std::uint8_t, 6> mac{};
    auto d = r.bytes(6);
    std::copy(d.begin(), d.end(), mac.begin());
    f.dst = MacAddress{mac};
    auto s = r.bytes(6);
    std::copy(s.begin(), s.end(), mac.begin());
    f.src = MacAddress{mac};
    f.type = static_cast<EtherType>(r.u16());
    f.payload = util::SharedPayload::copy_of(r.rest());
    return f;
}

} // namespace sttcp::net
