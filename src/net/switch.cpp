#include "net/switch.hpp"

namespace sttcp::net {

std::size_t Switch::connect(FrameEndpoint& peer, LinkConfig config) {
    auto port = std::make_unique<Port>(*this, ports_.size());
    auto link = std::make_unique<Link>(sim_, config);
    link->attach(*port, peer);
    ports_.push_back(std::move(port));
    links_.push_back(std::move(link));
    return ports_.size() - 1;
}

void Switch::set_mirror(std::size_t observed_port, std::size_t tap_port) {
    mirror_ = Mirror{observed_port, tap_port};
}

void Switch::forward(std::size_t in_port, EthernetFrame frame) {
    // Learn the source (unicast sources only; a group address never
    // legitimately appears as a source). The table is bounded by
    // kMacTableCap so a forged-source sweep cannot exhaust memory: a full
    // table stops learning and unknown destinations keep flooding.
    if (frame.src.is_unicast() &&
        (mac_table_.size() < kMacTableCap || mac_table_.count(frame.src) != 0)) {
        // lint:allow taint.wire_to_index -- address learning keys the map by the wire MAC by design; kMacTableCap above bounds the only resource this subscript can grow
        mac_table_[frame.src] = in_port;
    }

    // Mirror ingress traffic of the observed port.
    if (mirror_ && mirror_->observed == in_port && mirror_->tap != in_port) {
        ++stats_.mirrored;
        transmit(mirror_->tap, frame);
    }

    auto deliver = [&](std::size_t out_port) {
        transmit(out_port, frame);
        // Mirror egress traffic of the observed port.
        if (mirror_ && mirror_->observed == out_port && mirror_->tap != out_port &&
            mirror_->tap != in_port) {
            ++stats_.mirrored;
            transmit(mirror_->tap, frame);
        }
    };

    if (frame.dst.is_unicast()) {
        auto it = mac_table_.find(frame.dst);
        if (it != mac_table_.end()) {
            if (it->second != in_port) {
                ++stats_.unicast_forwarded;
                deliver(it->second);
            }
            return;
        }
    }

    // Broadcast, multicast, or unknown unicast: flood.
    ++stats_.flooded;
    for (std::size_t i = 0; i < ports_.size(); ++i) {
        if (i == in_port) continue;
        deliver(i);
    }
}

void Switch::transmit(std::size_t out_port, const EthernetFrame& frame) {
    // Store-and-forward latency, then egress serialization on the link.
    // lint:allow this-capture -- topology device: the Switch lives for the whole sim epoch, so forwarding events cannot outlive it.
    sim_.schedule_after(latency_, [this, out_port, frame]() {
        links_[out_port]->send_from(*ports_[out_port], frame);
    });
}

} // namespace sttcp::net
