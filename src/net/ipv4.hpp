// IPv4 packet format (RFC 791), without options or fragmentation.
//
// Our stack always sends DF datagrams that fit the Ethernet MTU (TCP MSS is
// derived from it, UDP control messages are small), so fragmentation never
// occurs; a packet arriving with fragment fields set is dropped and counted.
#pragma once

#include <cstdint>

#include "net/addr.hpp"
#include "util/wire.hpp"

namespace sttcp::net {

enum class IpProto : std::uint8_t {
    kIcmp = 1,
    kTcp = 6,
    kUdp = 17,
};

struct Ipv4Packet {
    std::uint8_t ttl = 64;
    IpProto proto = IpProto::kTcp;
    std::uint16_t identification = 0;
    Ipv4Address src;
    Ipv4Address dst;
    util::Bytes payload;

    static constexpr std::size_t kHeaderSize = 20;

    [[nodiscard]] std::size_t total_size() const { return kHeaderSize + payload.size(); }

    // Serializes with a correct header checksum.
    [[nodiscard]] util::Bytes serialize() const;

    // Parses and verifies the header checksum; throws util::WireError on a
    // malformed or corrupted header, or if fragmented.
    [[nodiscard]] static Ipv4Packet parse(util::ByteView raw);
};

} // namespace sttcp::net
