#include "net/hub.hpp"

namespace sttcp::net {

Link& Hub::connect(FrameEndpoint& peer, LinkConfig config) {
    auto port = std::make_unique<Port>(*this, ports_.size());
    auto link = std::make_unique<Link>(sim_, config);
    link->attach(*port, peer);
    ports_.push_back(std::move(port));
    links_.push_back(std::move(link));
    return *links_.back();
}

void Hub::repeat(std::size_t in_port, const EthernetFrame& frame) {
    ++stats_.frames_repeated;
    for (std::size_t i = 0; i < ports_.size(); ++i) {
        if (i == in_port) continue;
        links_[i]->send_from(*ports_[i], frame);
    }
}

} // namespace sttcp::net
