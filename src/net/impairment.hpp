// Composable network-impairment pipeline, one instance per Link direction.
//
// The paper's transparency claim (§4.2, §6) says the client cannot tell a
// migrated connection from an unbroken one *whatever the network does*. The
// original Link modeled only uniform Bernoulli loss and uniform jitter; real
// LANs also produce bursty loss (interference, switch buffer pressure),
// frame duplication (spanning-tree flaps), bit corruption that escapes the
// link CRC, delay spikes (GC pauses in middleboxes), temporary blackouts
// (cable re-seats, partitions), and bandwidth changes (auto-negotiation
// drops). This type models all of them as one pipeline evaluated per frame,
// driven exclusively by the simulation RNG so a run is reproducible by seed.
//
// Stage order per frame (fixed, documented, and draw-stable: a stage whose
// probability is zero consumes no randomness, so configs that only use the
// legacy loss/jitter fields replay the exact RNG stream the pre-impairment
// Link produced):
//
//   blackout -> burst/uniform loss -> duplication -> corruption -> jitter
//            -> delay spike
//
// Loss model: when `gilbert_elliott` is set the two-state Gilbert–Elliott
// chain advances once per frame (good->bad with p_enter_bad, bad->good with
// p_exit_bad) and the state's loss rate applies; otherwise `loss` applies
// uniformly. Corruption flips 1..corrupt_max_bits random bits in the frame
// payload via copy-on-write, so other holders of the ref-counted payload
// (hub fan-out, the packet logger) never observe the damage — exactly like
// a bit error on one segment of real cable.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace sttcp::net {

struct ImpairmentConfig {
    // Uniform per-frame loss (legacy LinkConfig::loss_probability maps here).
    double loss = 0.0;

    // Gilbert–Elliott bursty loss; when enabled it replaces `loss`.
    bool gilbert_elliott = false;
    double ge_p_enter_bad = 0.0;  // P(good -> bad) per frame
    double ge_p_exit_bad = 1.0;   // P(bad -> good) per frame
    double ge_loss_good = 0.0;    // loss rate while in the good state
    double ge_loss_bad = 1.0;     // loss rate while in the bad state

    // P(an extra copy of the frame is transmitted right behind the first).
    double duplicate = 0.0;

    // P(1..corrupt_max_bits random payload bits flip). Corrupted frames are
    // still delivered: the IP/TCP/UDP checksums above are the defense being
    // exercised. Only IPv4 frames are corruptible — ARP carries no checksum,
    // so a flipped ARP is indistinguishable from a hostile spoof, which is
    // outside the paper's crash-failure fault model.
    double corrupt = 0.0;
    int corrupt_max_bits = 3;

    // Uniform extra delay in [0, jitter] per frame (legacy
    // LinkConfig::jitter maps here). Nonzero jitter reorders frames.
    sim::Duration jitter{0};

    // Rare large delay added on top of jitter with probability `spike`.
    double spike = 0.0;
    sim::Duration spike_delay{0};
};

// What the pipeline decided for one transmission attempt.
struct ImpairmentActions {
    bool drop_loss = false;
    bool duplicate = false;
    bool corrupt = false;
    bool spiked = false;
    sim::Duration extra_delay{0};
};

class Impairment {
public:
    [[nodiscard]] const ImpairmentConfig& config() const { return config_; }
    void set_config(const ImpairmentConfig& config) { config_ = config; }

    // Legacy-field wrappers (LinkConfig::loss_probability / set_loss_toward).
    void set_loss(double probability) { config_.loss = probability; }
    void set_jitter(sim::Duration jitter) { config_.jitter = jitter; }

    // Registers a [from, from+duration) window during which every frame
    // entering this direction vanishes. Windows may overlap; past windows
    // are pruned lazily.
    void schedule_blackout(sim::TimePoint from, sim::Duration duration) {
        blackouts_.push_back({from, from + duration});
    }
    [[nodiscard]] bool in_blackout(sim::TimePoint now);

    // Evaluates every probabilistic stage for one frame, consuming RNG draws
    // in the fixed stage order. `corruptible` gates the corruption stage
    // (IPv4 frames with a payload); `allow_duplicate` is false for the extra
    // copy itself so duplication cannot cascade.
    [[nodiscard]] ImpairmentActions evaluate(sim::Random& rng, bool corruptible,
                                             bool allow_duplicate);

    // True while the Gilbert–Elliott chain sits in the bad (bursty) state.
    [[nodiscard]] bool ge_bad() const { return ge_bad_; }

private:
    struct Window {
        sim::TimePoint from;
        sim::TimePoint until;
    };

    ImpairmentConfig config_;
    std::vector<Window> blackouts_;
    bool ge_bad_ = false;
};

} // namespace sttcp::net
