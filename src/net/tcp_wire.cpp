#include "net/tcp_wire.hpp"

#include <sstream>

#include "util/buffer_pool.hpp"

namespace sttcp::net {

namespace {
void add_pseudo_header(util::InternetChecksum& sum, Ipv4Address src, Ipv4Address dst,
                       std::uint16_t tcp_len) {
    sum.add_u32(src.value());
    sum.add_u32(dst.value());
    sum.add_u16(6);  // protocol
    sum.add_u16(tcp_len);
}
} // namespace

std::size_t TcpSegment::header_size() const {
    std::size_t options = 0;
    if (mss) options += 4;
    if (timestamps) options += 12;  // 2×NOP + 10-byte option, as Linux emits
    return kBaseHeaderSize + options;
}

util::Bytes TcpSegment::serialize(Ipv4Address src_ip, Ipv4Address dst_ip) const {
    util::Bytes out = util::BufferPool::instance().take(total_size());
    util::WireWriter w{out};
    w.u16(src_port);
    w.u16(dst_port);
    w.u32(seq.raw());
    w.u32(ack.raw());
    w.u8(static_cast<std::uint8_t>((header_size() / 4) << 4));  // data offset
    w.u8(flags.to_byte());
    w.u16(window);
    std::size_t checksum_at = w.size();
    w.u16(0);  // checksum placeholder
    w.u16(0);  // urgent pointer (unused)
    if (mss) {
        w.u8(2);  // kind: MSS
        w.u8(4);  // length
        w.u16(*mss);
    }
    if (timestamps) {
        w.u8(1);   // NOP
        w.u8(1);   // NOP
        w.u8(8);   // kind: timestamps
        w.u8(10);  // length
        w.u32(timestamps->value);
        w.u32(timestamps->echo_reply);
    }
    w.bytes(payload);

    util::InternetChecksum sum;
    add_pseudo_header(sum, src_ip, dst_ip, static_cast<std::uint16_t>(total_size()));
    sum.add(util::ByteView{out});
    w.patch_u16(checksum_at, sum.finish());
    return out;
}

TcpSegment TcpSegment::parse(util::ByteView raw, Ipv4Address src_ip, Ipv4Address dst_ip) {
    if (raw.size() < kBaseHeaderSize) throw util::WireError{"tcp: truncated header"};
    // The pseudo-header length field is 16-bit; silently truncating a larger
    // buffer would checksum (and accept) bytes the length field disowns.
    if (raw.size() > 0xFFFF) throw util::WireError{"tcp: segment exceeds 16-bit length"};

    util::InternetChecksum sum;
    add_pseudo_header(sum, src_ip, dst_ip, static_cast<std::uint16_t>(raw.size()));
    sum.add(raw);
    if (sum.finish() != 0) throw util::WireError{"tcp: checksum mismatch"};

    util::WireReader r{raw};
    TcpSegment s;
    s.src_port = r.u16();
    s.dst_port = r.u16();
    s.seq = util::Seq32{r.u32()};
    s.ack = util::Seq32{r.u32()};
    std::size_t data_offset = (r.u8() >> 4) * 4u;
    if (data_offset < kBaseHeaderSize || data_offset > raw.size())
        throw util::WireError{"tcp: bad data offset"};
    s.flags = TcpFlags::from_byte(r.u8());
    s.window = r.u16();
    r.skip(4);  // checksum + urgent pointer

    // Options.
    std::size_t opt_len = data_offset - kBaseHeaderSize;
    util::WireReader opts{r.bytes(opt_len)};
    while (opts.remaining() > 0) {
        std::uint8_t kind = opts.u8();
        if (kind == 0) break;      // EOL
        if (kind == 1) continue;   // NOP
        if (opts.remaining() < 1) throw util::WireError{"tcp: truncated option"};
        std::uint8_t len = opts.u8();
        if (len < 2 || opts.remaining() < static_cast<std::size_t>(len) - 2)
            throw util::WireError{"tcp: bad option length"};
        util::WireReader body{opts.bytes(len - 2u)};
        switch (kind) {
            case 2:
                if (len != 4) throw util::WireError{"tcp: bad MSS option"};
                s.mss = body.u16();
                break;
            case 8:
                if (len != 10) throw util::WireError{"tcp: bad timestamp option"};
                s.timestamps = TcpTimestamps{body.u32(), body.u32()};
                break;
            default:
                break;  // unknown options are skipped
        }
    }

    auto body = raw.subspan(data_offset);
    s.payload.assign(body.begin(), body.end());
    return s;
}

std::string TcpSegment::summary() const {
    std::ostringstream os;
    os << src_port << " > " << dst_port << " [";
    bool first = true;
    auto add = [&](bool on, const char* name) {
        if (!on) return;
        if (!first) os << ',';
        os << name;
        first = false;
    };
    add(flags.syn, "SYN");
    add(flags.fin, "FIN");
    add(flags.rst, "RST");
    add(flags.psh, "PSH");
    add(flags.ack, "ACK");
    if (first) os << "-";
    os << "] seq=" << seq.raw();
    if (flags.ack) os << " ack=" << ack.raw();
    os << " win=" << window << " len=" << payload.size();
    return os.str();
}

} // namespace sttcp::net
