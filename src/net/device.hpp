// Frame-level device abstractions.
//
// Everything that can terminate an Ethernet link — a host NIC, a hub port, a
// switch port, the packet logger — implements FrameEndpoint. Links deliver
// parsed frames (the raw-byte round trip happens in serialize/parse tests
// and in the logger, which stores raw bytes).
#pragma once

#include <string>

#include "net/ethernet.hpp"

namespace sttcp::net {

class Link;

class FrameEndpoint {
public:
    virtual ~FrameEndpoint() = default;

    // Called by the Link when a frame finishes arriving at this endpoint.
    virtual void handle_frame(const EthernetFrame& frame) = 0;

    [[nodiscard]] virtual std::string endpoint_name() const = 0;

    // The link this endpoint is plugged into (set by Link::attach).
    [[nodiscard]] Link* link() const { return link_; }

private:
    friend class Link;
    Link* link_ = nullptr;
};

} // namespace sttcp::net
