// TCP segment wire format (RFC 793) with MSS and Timestamp options.
//
// The paper disabled the TCP timestamp option in its experiments (§6); our
// stack supports it but leaves it off by default so the backup's suppressed
// segments are byte-identical to the primary's.
//
// Sequence numbers leave Seq32 here (and only here) to be written as
// big-endian u32s; plain .raw() serialization needs no waiver — the
// seq-raw rule only fires on arithmetic over the raw bits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/addr.hpp"
#include "util/seq32.hpp"
#include "util/wire.hpp"

namespace sttcp::net {

struct TcpFlags {
    bool fin = false;
    bool syn = false;
    bool rst = false;
    bool psh = false;
    bool ack = false;
    bool urg = false;

    [[nodiscard]] std::uint8_t to_byte() const {
        return static_cast<std::uint8_t>(fin | syn << 1 | rst << 2 | psh << 3 | ack << 4 |
                                         urg << 5);
    }
    [[nodiscard]] static TcpFlags from_byte(std::uint8_t b) {
        return {.fin = (b & 0x01) != 0, .syn = (b & 0x02) != 0, .rst = (b & 0x04) != 0,
                .psh = (b & 0x08) != 0, .ack = (b & 0x10) != 0, .urg = (b & 0x20) != 0};
    }
    friend bool operator==(const TcpFlags&, const TcpFlags&) = default;
};

struct TcpTimestamps {
    std::uint32_t value = 0;
    std::uint32_t echo_reply = 0;
    friend bool operator==(const TcpTimestamps&, const TcpTimestamps&) = default;
};

struct TcpSegment {
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    util::Seq32 seq;
    util::Seq32 ack;
    TcpFlags flags;
    std::uint16_t window = 0;
    std::optional<std::uint16_t> mss;       // option 2, SYN segments only
    std::optional<TcpTimestamps> timestamps;  // option 8
    util::Bytes payload;

    static constexpr std::size_t kBaseHeaderSize = 20;

    [[nodiscard]] std::size_t header_size() const;
    [[nodiscard]] std::size_t total_size() const { return header_size() + payload.size(); }

    // Sequence space consumed: payload bytes plus one for SYN and one for FIN.
    [[nodiscard]] std::uint32_t seq_len() const {
        return static_cast<std::uint32_t>(payload.size()) + (flags.syn ? 1 : 0) +
               (flags.fin ? 1 : 0);
    }

    [[nodiscard]] util::Bytes serialize(Ipv4Address src_ip, Ipv4Address dst_ip) const;

    // Parses and verifies the checksum (pseudo-header included); throws
    // util::WireError on corruption.
    [[nodiscard]] static TcpSegment parse(util::ByteView raw, Ipv4Address src_ip,
                                          Ipv4Address dst_ip);

    // One-line summary for traces: "1234 > 80 [SYN] seq=... ack=... len=...".
    [[nodiscard]] std::string summary() const;
};

} // namespace sttcp::net
