// Point-to-point full-duplex Ethernet link.
//
// Models per-direction serialization (a frame occupies the wire for
// wire_size*8/bandwidth), propagation delay, a drop-tail transmit queue, and
// an optional Bernoulli loss process. This is where "the backup's IP stack
// can drop packets" (paper §4.2) is injected for tap-loss experiments.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/device.hpp"
#include "sim/simulation.hpp"

namespace sttcp::net {

struct LinkConfig {
    double bandwidth_bps = 100e6;          // 100 Mbit/s, the paper's LAN
    sim::Duration propagation = sim::microseconds{5};
    std::size_t queue_capacity_bytes = 256 * 1024;  // drop-tail per direction
    double loss_probability = 0.0;         // per-frame, per-direction
    // Uniform random extra delay in [0, jitter] added per frame. Nonzero
    // jitter REORDERS frames — the hardest input for the TCP reassembly and
    // the ST-TCP tap, and exactly what multi-path LANs produce.
    sim::Duration jitter{0};
};

class Link {
public:
    Link(sim::Simulation& simulation, LinkConfig config)
        : sim_(simulation), config_(config) {}

    Link(const Link&) = delete;
    Link& operator=(const Link&) = delete;

    void attach(FrameEndpoint& a, FrameEndpoint& b) {
        a_ = &a;
        b_ = &b;
        a.link_ = this;
        b.link_ = this;
    }

    // Queues a frame for transmission from `sender` toward the other end.
    // Returns false if the transmit queue overflowed (frame dropped).
    bool send_from(const FrameEndpoint& sender, EthernetFrame frame);

    // Sets per-direction loss for the direction *into* `receiver` (used to
    // make only the backup's tap lossy).
    void set_loss_toward(const FrameEndpoint& receiver, double probability);

    void set_config(const LinkConfig& config) { config_ = config; }
    [[nodiscard]] const LinkConfig& config() const { return config_; }

    // Observer sees every frame that completes delivery (after loss).
    using Observer = std::function<void(const EthernetFrame&, const FrameEndpoint& receiver)>;
    void set_observer(Observer obs) { observer_ = std::move(obs); }

    struct Stats {
        std::uint64_t frames_delivered = 0;
        std::uint64_t frames_dropped_queue = 0;
        std::uint64_t frames_dropped_loss = 0;
        std::uint64_t bytes_delivered = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

    [[nodiscard]] FrameEndpoint* peer_of(const FrameEndpoint& e) const {
        return &e == a_ ? b_ : a_;
    }

private:
    struct Direction {
        sim::TimePoint busy_until{};
        // Bytes occupying the transmit queue. A frame leaves the queue when
        // its serialization finishes (tx_done) — propagation time does not
        // hold queue memory — so entries are lazily drained against now()
        // before every capacity check.
        std::size_t queued_bytes = 0;
        std::deque<std::pair<sim::TimePoint, std::size_t>> in_flight;  // (tx_done, wire bytes)
        double loss_probability = -1.0;  // <0: use link-level config
    };

    static void drain_transmitted(Direction& dir, sim::TimePoint now) {
        while (!dir.in_flight.empty() && dir.in_flight.front().first <= now) {
            dir.queued_bytes -= dir.in_flight.front().second;
            dir.in_flight.pop_front();
        }
    }

    Direction& direction_toward(const FrameEndpoint& receiver) {
        return &receiver == b_ ? a_to_b_ : b_to_a_;
    }

    sim::Simulation& sim_;
    LinkConfig config_;
    FrameEndpoint* a_ = nullptr;
    FrameEndpoint* b_ = nullptr;
    Direction a_to_b_;
    Direction b_to_a_;
    Observer observer_;
    Stats stats_;
};

} // namespace sttcp::net
