// Point-to-point full-duplex Ethernet link.
//
// Models per-direction serialization (a frame occupies the wire for
// wire_size*8/bandwidth), propagation delay, a drop-tail transmit queue, and
// a per-direction impairment pipeline (net/impairment.hpp): uniform and
// Gilbert–Elliott bursty loss, duplication, bit-flip corruption, jitter,
// delay spikes, and timed blackouts. This is where "the backup's IP stack
// can drop packets" (paper §4.2) is injected for tap-loss experiments, and
// where the chaos soak fuzzer applies its adversity schedules.
//
// The legacy LinkConfig::loss_probability / jitter fields and
// set_loss_toward() remain as thin wrappers over the pipeline so existing
// call sites and seed-pinned tests keep their exact behavior (including the
// RNG draw order: loss first, then jitter).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/device.hpp"
#include "net/impairment.hpp"
#include "sim/simulation.hpp"

namespace sttcp::net {

struct LinkConfig {
    double bandwidth_bps = 100e6;          // 100 Mbit/s, the paper's LAN
    sim::Duration propagation = sim::microseconds{5};
    std::size_t queue_capacity_bytes = 256 * 1024;  // drop-tail per direction
    double loss_probability = 0.0;         // wrapper: per-direction pipeline loss
    // Uniform random extra delay in [0, jitter] added per frame. Nonzero
    // jitter REORDERS frames — the hardest input for the TCP reassembly and
    // the ST-TCP tap, and exactly what multi-path LANs produce.
    sim::Duration jitter{0};               // wrapper: per-direction pipeline jitter
};

class Link {
public:
    Link(sim::Simulation& simulation, LinkConfig config) : sim_(simulation) {
        set_config(config);
    }

    Link(const Link&) = delete;
    Link& operator=(const Link&) = delete;

    void attach(FrameEndpoint& a, FrameEndpoint& b) {
        a_ = &a;
        b_ = &b;
        a.link_ = this;
        b.link_ = this;
    }

    // Queues a frame for transmission from `sender` toward the other end.
    // Returns false if the transmit queue overflowed (frame dropped); a
    // frame eaten by a blackout window still returns true — it left the NIC.
    bool send_from(const FrameEndpoint& sender, EthernetFrame frame);

    // Sets per-direction loss for the direction *into* `receiver` (used to
    // make only the backup's tap lossy). Negative restores the link-level
    // LinkConfig::loss_probability. Wrapper over the impairment pipeline.
    void set_loss_toward(const FrameEndpoint& receiver, double probability);

    // ---- impairment pipeline ------------------------------------------------
    // Full per-direction pipeline access. set_impairments applies one config
    // to both directions; the *_toward variants address the direction whose
    // frames are delivered into `receiver`.
    void set_impairments(const ImpairmentConfig& config);
    void set_impairments_toward(const FrameEndpoint& receiver, const ImpairmentConfig& config);
    [[nodiscard]] Impairment& impairment_toward(const FrameEndpoint& receiver) {
        return direction_toward(receiver).impairment;
    }

    // Timed blackout: every frame entering the direction(s) during
    // [from, from+duration) vanishes (counted as frames_dropped_blackout).
    // Scheduling both directions partitions the link.
    void schedule_blackout(sim::TimePoint from, sim::Duration duration);
    void schedule_blackout_toward(const FrameEndpoint& receiver, sim::TimePoint from,
                                  sim::Duration duration);

    // Bandwidth change (auto-negotiation drop, congested uplink). Applies to
    // frames queued from now on; frames already serializing keep their time.
    void set_bandwidth_bps(double bps) { config_.bandwidth_bps = bps; }

    void set_config(const LinkConfig& config) {
        config_ = config;
        // The legacy fields are the base pipeline for both directions; an
        // explicit set_impairments*/set_loss_toward call overrides them.
        for (Direction* dir : {&a_to_b_, &b_to_a_}) {
            dir->impairment.set_loss(config.loss_probability);
            dir->impairment.set_jitter(config.jitter);
        }
    }
    [[nodiscard]] const LinkConfig& config() const { return config_; }

    // Observer sees every frame that completes delivery (after loss).
    using Observer = std::function<void(const EthernetFrame&, const FrameEndpoint& receiver)>;
    void set_observer(Observer obs) { observer_ = std::move(obs); }

    struct Stats {
        std::uint64_t frames_sent = 0;        // send_from calls (pre-impairment)
        std::uint64_t frames_delivered = 0;
        std::uint64_t frames_dropped_queue = 0;
        std::uint64_t frames_dropped_loss = 0;
        std::uint64_t frames_dropped_blackout = 0;
        std::uint64_t frames_duplicated = 0;  // extra copies created
        std::uint64_t frames_corrupted = 0;   // copies delivered with flipped bits
        std::uint64_t delay_spikes = 0;
        std::uint64_t bytes_delivered = 0;
        // Frame conservation: once all in-flight deliveries have drained,
        //   delivered + dropped_queue + dropped_loss + dropped_blackout
        //     == sent + duplicated.
        [[nodiscard]] std::uint64_t accounted() const {
            return frames_delivered + frames_dropped_queue + frames_dropped_loss +
                   frames_dropped_blackout;
        }
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

    [[nodiscard]] FrameEndpoint* peer_of(const FrameEndpoint& e) const {
        return &e == a_ ? b_ : a_;
    }

private:
    struct Direction {
        sim::TimePoint busy_until{};
        // Bytes occupying the transmit queue. A frame leaves the queue when
        // its serialization finishes (tx_done) — propagation time does not
        // hold queue memory — so entries are lazily drained against now()
        // before every capacity check.
        std::size_t queued_bytes = 0;
        std::deque<std::pair<sim::TimePoint, std::size_t>> in_flight;  // (tx_done, wire bytes)
        Impairment impairment;
    };

    static void drain_transmitted(Direction& dir, sim::TimePoint now) {
        while (!dir.in_flight.empty() && dir.in_flight.front().first <= now) {
            dir.queued_bytes -= dir.in_flight.front().second;
            dir.in_flight.pop_front();
        }
    }

    Direction& direction_toward(const FrameEndpoint& receiver) {
        return &receiver == b_ ? a_to_b_ : b_to_a_;
    }

    // Queues one physical copy (queue admission, serialization, delivery
    // scheduling). Returns false on queue overflow.
    bool transmit_copy(Direction& dir, FrameEndpoint* receiver, EthernetFrame frame,
                       const ImpairmentActions& actions, int corrupt_max_bits);
    void corrupt_payload(EthernetFrame& frame, int max_bits);

    sim::Simulation& sim_;
    LinkConfig config_;
    FrameEndpoint* a_ = nullptr;
    FrameEndpoint* b_ = nullptr;
    Direction a_to_b_;
    Direction b_to_a_;
    Observer observer_;
    Stats stats_;
};

} // namespace sttcp::net
