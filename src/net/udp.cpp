#include "net/udp.hpp"

#include "util/buffer_pool.hpp"

namespace sttcp::net {

namespace {
void add_pseudo_header(util::InternetChecksum& sum, Ipv4Address src, Ipv4Address dst,
                       std::uint16_t udp_len) {
    sum.add_u32(src.value());
    sum.add_u32(dst.value());
    sum.add_u16(17);  // protocol
    sum.add_u16(udp_len);
}
} // namespace

util::Bytes UdpDatagram::serialize(Ipv4Address src_ip, Ipv4Address dst_ip) const {
    util::Bytes out = util::BufferPool::instance().take(total_size());
    util::WireWriter w{out};
    w.u16(src_port);
    w.u16(dst_port);
    w.u16(static_cast<std::uint16_t>(total_size()));
    std::size_t checksum_at = w.size();
    w.u16(0);
    w.bytes(payload);

    util::InternetChecksum sum;
    add_pseudo_header(sum, src_ip, dst_ip, static_cast<std::uint16_t>(total_size()));
    sum.add(util::ByteView{out});
    std::uint16_t c = sum.finish();
    if (c == 0) c = 0xffff;  // RFC 768: 0 means "no checksum"
    w.patch_u16(checksum_at, c);
    return out;
}

UdpDatagram UdpDatagram::parse(util::ByteView raw, Ipv4Address src_ip, Ipv4Address dst_ip) {
    util::WireReader r{raw};
    UdpDatagram d;
    d.src_port = r.u16();
    d.dst_port = r.u16();
    std::uint16_t len = r.u16();
    if (len < kHeaderSize || len > raw.size()) throw util::WireError{"udp: bad length"};
    std::uint16_t checksum = r.u16();
    if (checksum != 0) {
        util::InternetChecksum sum;
        add_pseudo_header(sum, src_ip, dst_ip, len);
        sum.add(raw.subspan(0, len));
        if (sum.finish() != 0) throw util::WireError{"udp: checksum mismatch"};
    }
    auto body = raw.subspan(kHeaderSize, len - kHeaderSize);
    d.payload.assign(body.begin(), body.end());
    return d;
}

} // namespace sttcp::net
