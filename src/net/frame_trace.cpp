#include "net/frame_trace.hpp"

#include <cstdio>
#include <sstream>

#include "net/arp.hpp"
#include "net/ipv4.hpp"
#include "net/tcp_wire.hpp"
#include "net/udp.hpp"

namespace sttcp::net {

void FrameTrace::attach(Link& link, std::string label) {
    // lint:allow this-capture -- the tracer is attached for the whole run; it and the observed Link share the sim epoch.
    link.set_observer([this, label = std::move(label)](const EthernetFrame& frame,
                                                       const FrameEndpoint& receiver) {
        emit(label, frame, receiver);
    });
}

std::string FrameTrace::describe(const EthernetFrame& frame) {
    std::ostringstream os;
    os << frame.src.to_string() << " > " << frame.dst.to_string() << "  ";
    try {
        switch (frame.type) {
            case EtherType::kArp: {
                ArpMessage arp = ArpMessage::parse(frame.payload);
                os << "ARP "
                   << (arp.op == ArpOp::kRequest ? "who-has " : "reply ")
                   << arp.target_ip.to_string() << " tell " << arp.sender_ip.to_string();
                break;
            }
            case EtherType::kIpv4: {
                Ipv4Packet ip = Ipv4Packet::parse(frame.payload);
                os << "IPv4 ";
                switch (ip.proto) {
                    case IpProto::kTcp: {
                        TcpSegment seg = TcpSegment::parse(ip.payload, ip.src, ip.dst);
                        os << ip.src.to_string() << ':' << seg.src_port << " > "
                           << ip.dst.to_string() << ':' << seg.dst_port << "  TCP "
                           << seg.summary();
                        break;
                    }
                    case IpProto::kUdp: {
                        UdpDatagram dgram = UdpDatagram::parse(ip.payload, ip.src, ip.dst);
                        os << ip.src.to_string() << ':' << dgram.src_port << " > "
                           << ip.dst.to_string() << ':' << dgram.dst_port << "  UDP len="
                           << dgram.payload.size();
                        break;
                    }
                    case IpProto::kIcmp:
                        os << ip.src.to_string() << " > " << ip.dst.to_string()
                           << "  proto=" << static_cast<int>(ip.proto);
                        break;
                }
                break;
            }
        }
    } catch (const util::WireError& e) {
        os << "malformed (" << e.what() << ")";
    }
    return os.str();
}

void FrameTrace::emit(const std::string& label, const EthernetFrame& frame,
                      const FrameEndpoint& receiver) {
    ++count_;
    char head[64];
    std::snprintf(head, sizeof head, "[%10.6f] ", sim::to_seconds(sim_.now()));
    std::string line = head + label + " -> " + receiver.endpoint_name() + "  " +
                       describe(frame);
    if (sink_) {
        sink_(line);
    } else {
        std::fprintf(stderr, "%s\n", line.c_str());
    }
}

} // namespace sttcp::net
