// Human-readable frame tracing (tcpdump-style), attachable to any Link.
//
// Produces one line per delivered frame with parsed ARP/IP/TCP/UDP
// summaries — the fastest way to see what a failover actually did on the
// wire. Lines go to a sink callback (tests capture them; the default prints
// to stderr with virtual timestamps).
//
//   net::FrameTrace trace{sim};
//   trace.attach(*bed.client_link, "client");
//   ...
//   [  0.400123] client -> client/eth0  02:..:02 > 02:..:0a  IPv4 10.0.0.100:8000 > 10.0.0.10:49152  TCP [PSH,ACK] seq=.. ack=.. win=.. len=150
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/link.hpp"

namespace sttcp::net {

class FrameTrace {
public:
    using Sink = std::function<void(const std::string& line)>;

    explicit FrameTrace(sim::Simulation& simulation) : sim_(simulation) {}

    // Observes every frame delivered on `link`; `label` prefixes each line.
    // Replaces any previous observer on the link.
    void attach(Link& link, std::string label);

    // Default sink writes to stderr.
    void set_sink(Sink sink) { sink_ = std::move(sink); }

    // Convenience capturing sink for tests.
    void capture_into(std::vector<std::string>& lines) {
        set_sink([&lines](const std::string& line) { lines.push_back(line); });
    }

    [[nodiscard]] std::uint64_t frames_traced() const { return count_; }

    // Formats one frame the way attach() does (exposed for reuse/tests).
    [[nodiscard]] static std::string describe(const EthernetFrame& frame);

private:
    void emit(const std::string& label, const EthernetFrame& frame,
              const FrameEndpoint& receiver);

    sim::Simulation& sim_;
    Sink sink_;
    std::uint64_t count_ = 0;
};

} // namespace sttcp::net
