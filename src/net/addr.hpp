// Link-layer and network-layer address types.
//
// MacAddress carries the multicast bit that ST-TCP's switched-Ethernet tap
// depends on (a unicast service IP statically ARP-mapped to a multicast MAC
// so the switch floods server traffic to the backup — paper §3.1).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace sttcp::net {

class MacAddress {
public:
    constexpr MacAddress() = default;
    constexpr explicit MacAddress(std::array<std::uint8_t, 6> b) : bytes_(b) {}

    // Convenience: builds a locally-administered unicast address from an id.
    [[nodiscard]] static constexpr MacAddress local(std::uint32_t id) {
        return MacAddress({0x02, 0x00, static_cast<std::uint8_t>(id >> 24),
                           static_cast<std::uint8_t>(id >> 16), static_cast<std::uint8_t>(id >> 8),
                           static_cast<std::uint8_t>(id)});
    }
    // Builds a multicast group address (I/G bit set) from an id — the "GME"
    // and "SME" addresses of the paper's tapping scheme.
    [[nodiscard]] static constexpr MacAddress multicast(std::uint32_t id) {
        return MacAddress({0x03, 0x00, static_cast<std::uint8_t>(id >> 24),
                           static_cast<std::uint8_t>(id >> 16), static_cast<std::uint8_t>(id >> 8),
                           static_cast<std::uint8_t>(id)});
    }
    [[nodiscard]] static constexpr MacAddress broadcast() {
        return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
    }

    [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& bytes() const { return bytes_; }
    [[nodiscard]] constexpr bool is_broadcast() const { return *this == broadcast(); }
    // I/G bit: group (multicast) if the low bit of the first octet is set.
    [[nodiscard]] constexpr bool is_multicast() const { return (bytes_[0] & 0x01) != 0; }
    [[nodiscard]] constexpr bool is_unicast() const { return !is_multicast(); }

    [[nodiscard]] std::string to_string() const;

    friend constexpr auto operator<=>(const MacAddress&, const MacAddress&) = default;

private:
    std::array<std::uint8_t, 6> bytes_{};
};

class Ipv4Address {
public:
    constexpr Ipv4Address() = default;
    constexpr explicit Ipv4Address(std::uint32_t host_order) : addr_(host_order) {}
    constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
        : addr_(static_cast<std::uint32_t>(a) << 24 | static_cast<std::uint32_t>(b) << 16 |
                static_cast<std::uint32_t>(c) << 8 | d) {}

    [[nodiscard]] constexpr std::uint32_t value() const { return addr_; }
    [[nodiscard]] constexpr bool is_unspecified() const { return addr_ == 0; }

    [[nodiscard]] constexpr bool in_subnet(Ipv4Address network, int prefix_len) const {
        if (prefix_len <= 0) return true;
        std::uint32_t mask = prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1);
        return (addr_ & mask) == (network.addr_ & mask);
    }

    [[nodiscard]] std::string to_string() const;

    friend constexpr auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;

private:
    std::uint32_t addr_ = 0;
};

std::ostream& operator<<(std::ostream& os, const MacAddress& m);
std::ostream& operator<<(std::ostream& os, const Ipv4Address& a);

} // namespace sttcp::net

template <>
struct std::hash<sttcp::net::Ipv4Address> {
    std::size_t operator()(const sttcp::net::Ipv4Address& a) const noexcept {
        return std::hash<std::uint32_t>{}(a.value());
    }
};

template <>
struct std::hash<sttcp::net::MacAddress> {
    std::size_t operator()(const sttcp::net::MacAddress& m) const noexcept {
        std::uint64_t v = 0;
        for (auto b : m.bytes()) v = v << 8 | b;
        return std::hash<std::uint64_t>{}(v);
    }
};
