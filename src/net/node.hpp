// A simulated machine: name + power state.
//
// Crash semantics (paper §4.4: crash/performance failures): powering a node
// off freezes it — its NICs stop sending and receiving and its stack's
// timers refuse to fire. Nothing is cleaned up, exactly like pulling the
// plug, which is what the controllable power switch does during fencing.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace sttcp::net {

class Node {
public:
    explicit Node(std::string name) : name_(std::move(name)) {}

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] bool powered() const { return powered_; }

    void power_off() {
        if (!powered_) return;
        powered_ = false;
        for (auto& cb : power_off_hooks_) cb();
    }
    void power_on() { powered_ = true; }

    // Hooks run when the node crashes (used by tests/metrics, not recovery —
    // a crashed node does not get to run recovery code).
    void on_power_off(std::function<void()> hook) {
        power_off_hooks_.push_back(std::move(hook));
    }

private:
    std::string name_;
    bool powered_ = true;
    std::vector<std::function<void()>> power_off_hooks_;
};

} // namespace sttcp::net
