// Host network interface.
//
// Filtering happens here, as in hardware: a frame is passed up only if it is
// addressed to this NIC, broadcast, a joined multicast group, or the NIC is
// promiscuous. ST-TCP's VNICs (paper §3.1) are expressed by joining the
// fixed multicast groups (SME/GME) on the relevant NICs; the virtual IP
// binding lives in the stack (stack/interface config).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/device.hpp"
#include "net/link.hpp"
#include "net/node.hpp"

namespace sttcp::net {

class Nic final : public FrameEndpoint {
public:
    Nic(Node& node, std::string name, MacAddress mac)
        : node_(node), name_(std::move(name)), mac_(mac) {}

    [[nodiscard]] const MacAddress& mac() const { return mac_; }
    [[nodiscard]] Node& node() const { return node_; }
    [[nodiscard]] std::string endpoint_name() const override {
        return node_.name() + "/" + name_;
    }

    void set_promiscuous(bool on) { promiscuous_ = on; }
    [[nodiscard]] bool promiscuous() const { return promiscuous_; }

    void join_multicast(MacAddress group) {
        auto it = std::lower_bound(groups_.begin(), groups_.end(), group);
        if (it == groups_.end() || *it != group) groups_.insert(it, group);
    }
    void leave_multicast(MacAddress group) {
        auto it = std::lower_bound(groups_.begin(), groups_.end(), group);
        if (it != groups_.end() && *it == group) groups_.erase(it);
    }
    [[nodiscard]] bool in_group(MacAddress group) const {
        return std::binary_search(groups_.begin(), groups_.end(), group);
    }

    // Upcall into the protocol stack. The frame has already passed the
    // address filter.
    using RxHandler = std::function<void(const EthernetFrame&)>;
    void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }

    // Transmits a frame; silently discarded if the node is powered off or
    // the NIC is not attached to a link.
    void send(EthernetFrame frame) {
        if (!node_.powered() || link() == nullptr) return;
        ++stats_.tx_frames;
        stats_.tx_bytes += frame.wire_size();
        link()->send_from(*this, std::move(frame));
    }

    void handle_frame(const EthernetFrame& frame) override {
        if (!node_.powered()) return;
        if (!accepts(frame.dst)) {
            ++stats_.rx_filtered;
            return;
        }
        ++stats_.rx_frames;
        stats_.rx_bytes += frame.wire_size();
        if (rx_handler_) rx_handler_(frame);
    }

    [[nodiscard]] bool accepts(const MacAddress& dst) const {
        if (promiscuous_) return true;
        if (dst == mac_ || dst.is_broadcast()) return true;
        return dst.is_multicast() && in_group(dst);
    }

    struct Stats {
        std::uint64_t tx_frames = 0;
        std::uint64_t rx_frames = 0;
        std::uint64_t rx_filtered = 0;
        std::uint64_t tx_bytes = 0;
        std::uint64_t rx_bytes = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    Node& node_;
    std::string name_;
    MacAddress mac_;
    bool promiscuous_ = false;
    // Sorted; a NIC joins 2-3 groups in practice and accepts() runs per
    // delivered frame, so a flat vector beats a node-based set.
    std::vector<MacAddress> groups_;
    RxHandler rx_handler_;
    Stats stats_;
};

} // namespace sttcp::net
