// Ethernet II framing.
//
// Frames carry their payload as raw bytes; each layer serializes/parses for
// real, so checksums, truncation, and header corruption behave as on a wire.
#pragma once

#include <cstdint>

#include "net/addr.hpp"
#include "util/shared_payload.hpp"
#include "util/wire.hpp"

namespace sttcp::net {

enum class EtherType : std::uint16_t {
    kIpv4 = 0x0800,
    kArp = 0x0806,
};

struct EthernetFrame {
    MacAddress dst;
    MacAddress src;
    EtherType type = EtherType::kIpv4;
    // Ref-counted: copying a frame (hub fan-out, tap observers, the packet
    // logger) shares one payload allocation instead of duplicating it.
    util::SharedPayload payload;

    static constexpr std::size_t kHeaderSize = 14;
    static constexpr std::size_t kFcsSize = 4;
    static constexpr std::size_t kMinPayload = 46;
    static constexpr std::size_t kMtu = 1500;
    // Preamble + SFD + inter-frame gap, counted for serialization time only.
    static constexpr std::size_t kPreambleAndGap = 20;

    // Bytes occupying the wire during transmission (incl. padding and FCS).
    [[nodiscard]] std::size_t wire_size() const {
        std::size_t body = payload.size() < kMinPayload ? kMinPayload : payload.size();
        return kHeaderSize + body + kFcsSize + kPreambleAndGap;
    }

    [[nodiscard]] util::Bytes serialize() const;
    [[nodiscard]] static EthernetFrame parse(util::ByteView raw);
};

} // namespace sttcp::net
