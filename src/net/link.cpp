#include "net/link.hpp"

#include <cassert>

namespace sttcp::net {

bool Link::send_from(const FrameEndpoint& sender, EthernetFrame frame) {
    assert(a_ && b_ && "link not attached");
    assert((&sender == a_ || &sender == b_) && "sender not on this link");
    FrameEndpoint* receiver = peer_of(sender);
    Direction& dir = direction_toward(*receiver);

    std::size_t wire = frame.wire_size();
    drain_transmitted(dir, sim_.now());
    if (dir.queued_bytes + wire > config_.queue_capacity_bytes) {
        ++stats_.frames_dropped_queue;
        return false;
    }
    dir.queued_bytes += wire;

    sim::TimePoint start = std::max(sim_.now(), dir.busy_until);
    auto tx_time = sim::Duration{static_cast<std::int64_t>(
        static_cast<double>(wire) * 8.0 / config_.bandwidth_bps * 1e9)};
    sim::TimePoint tx_done = start + tx_time;
    dir.busy_until = tx_done;
    dir.in_flight.emplace_back(tx_done, wire);

    double loss = dir.loss_probability >= 0 ? dir.loss_probability : config_.loss_probability;
    bool lost = sim_.rng().bernoulli(loss);

    sim::TimePoint arrival = tx_done + config_.propagation;
    if (config_.jitter > sim::Duration{0}) {
        arrival += sim::Duration{static_cast<std::int64_t>(
            sim_.rng().uniform(static_cast<std::uint64_t>(config_.jitter.count()) + 1))};
    }
    sim_.schedule_at(arrival, [this, receiver, f = std::move(frame), wire, lost]() {
        if (lost) {
            ++stats_.frames_dropped_loss;
            return;
        }
        ++stats_.frames_delivered;
        stats_.bytes_delivered += wire;
        if (observer_) observer_(f, *receiver);
        receiver->handle_frame(f);
    });
    return true;
}

void Link::set_loss_toward(const FrameEndpoint& receiver, double probability) {
    direction_toward(receiver).loss_probability = probability;
}

} // namespace sttcp::net
