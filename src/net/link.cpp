#include "net/link.hpp"

#include <cassert>

namespace sttcp::net {

bool Link::send_from(const FrameEndpoint& sender, EthernetFrame frame) {
    assert(a_ && b_ && "link not attached");
    assert((&sender == a_ || &sender == b_) && "sender not on this link");
    FrameEndpoint* receiver = peer_of(sender);
    Direction& dir = direction_toward(*receiver);
    ++stats_.frames_sent;

    // Blackout windows consume the frame before it reaches the queue — the
    // cable is unplugged, the NIC's transmit ring is not. No RNG draw.
    if (dir.impairment.in_blackout(sim_.now())) {
        ++stats_.frames_dropped_blackout;
        return true;
    }

    // Queue admission happens before any probabilistic stage so an
    // overflowed frame consumes no randomness (draw-order compatibility
    // with the pre-pipeline Link).
    std::size_t wire = frame.wire_size();
    drain_transmitted(dir, sim_.now());
    if (dir.queued_bytes + wire > config_.queue_capacity_bytes) {
        ++stats_.frames_dropped_queue;
        return false;
    }

    const bool corruptible = frame.type == EtherType::kIpv4 && !frame.payload.empty();
    int max_bits = dir.impairment.config().corrupt_max_bits;
    ImpairmentActions actions = dir.impairment.evaluate(sim_.rng(), corruptible,
                                                        /*allow_duplicate=*/true);

    // The duplicate is an extra physical copy of the *original* frame, taken
    // before the first copy is possibly corrupted (a bit error damages one
    // transmission, not the sender's buffer).
    EthernetFrame dup_copy;
    bool duplicate = actions.duplicate;
    if (duplicate) dup_copy = frame;

    transmit_copy(dir, receiver, std::move(frame), actions, max_bits);

    if (duplicate) {
        ++stats_.frames_duplicated;
        // The copy rolls its own loss/corruption/delay but cannot cascade
        // into further duplicates; it serializes right behind the first.
        ImpairmentActions dup_actions = dir.impairment.evaluate(sim_.rng(), corruptible,
                                                                /*allow_duplicate=*/false);
        drain_transmitted(dir, sim_.now());
        transmit_copy(dir, receiver, std::move(dup_copy), dup_actions, max_bits);
    }
    return true;
}

bool Link::transmit_copy(Direction& dir, FrameEndpoint* receiver, EthernetFrame frame,
                         const ImpairmentActions& actions, int corrupt_max_bits) {
    std::size_t wire = frame.wire_size();
    if (dir.queued_bytes + wire > config_.queue_capacity_bytes) {
        ++stats_.frames_dropped_queue;
        return false;
    }
    dir.queued_bytes += wire;

    sim::TimePoint start = std::max(sim_.now(), dir.busy_until);
    auto tx_time = sim::Duration{static_cast<std::int64_t>(
        static_cast<double>(wire) * 8.0 / config_.bandwidth_bps * 1e9)};
    sim::TimePoint tx_done = start + tx_time;
    dir.busy_until = tx_done;
    dir.in_flight.emplace_back(tx_done, wire);

    if (actions.corrupt) corrupt_payload(frame, corrupt_max_bits);
    if (actions.spiked) ++stats_.delay_spikes;

    sim::TimePoint arrival = tx_done + config_.propagation + actions.extra_delay;
    bool lost = actions.drop_loss;
    // lint:allow this-capture -- topology device: a Link lives for the whole sim epoch, so delivery events cannot outlive it.
    sim_.schedule_at(arrival, [this, receiver, f = std::move(frame), wire, lost]() {
        if (lost) {
            ++stats_.frames_dropped_loss;
            return;
        }
        ++stats_.frames_delivered;
        stats_.bytes_delivered += wire;
        if (observer_) observer_(f, *receiver);
        receiver->handle_frame(f);
    });
    return true;
}

void Link::corrupt_payload(EthernetFrame& frame, int max_bits) {
    // Copy-on-write: other holders of the ref-counted payload (hub fan-out,
    // the packet logger's stored copy) keep the pristine bytes.
    util::Bytes& bytes = frame.payload.mutable_bytes();
    if (bytes.empty()) return;
    if (max_bits < 1) max_bits = 1;
    auto flips = 1 + sim_.rng().uniform(static_cast<std::uint64_t>(max_bits));
    for (std::uint64_t i = 0; i < flips; ++i) {
        std::uint64_t bit = sim_.rng().uniform(bytes.size() * 8);
        // sanitized(bit): rng().uniform(n) < n, so bit/8 < bytes.size() and bit%8 < 8
        bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    ++stats_.frames_corrupted;
}

void Link::set_loss_toward(const FrameEndpoint& receiver, double probability) {
    Direction& dir = direction_toward(receiver);
    dir.impairment.set_loss(probability >= 0 ? probability : config_.loss_probability);
}

void Link::set_impairments(const ImpairmentConfig& config) {
    a_to_b_.impairment.set_config(config);
    b_to_a_.impairment.set_config(config);
}

void Link::set_impairments_toward(const FrameEndpoint& receiver,
                                  const ImpairmentConfig& config) {
    direction_toward(receiver).impairment.set_config(config);
}

void Link::schedule_blackout(sim::TimePoint from, sim::Duration duration) {
    a_to_b_.impairment.schedule_blackout(from, duration);
    b_to_a_.impairment.schedule_blackout(from, duration);
}

void Link::schedule_blackout_toward(const FrameEndpoint& receiver, sim::TimePoint from,
                                    sim::Duration duration) {
    direction_toward(receiver).impairment.schedule_blackout(from, duration);
}

} // namespace sttcp::net
