#include "net/impairment.hpp"

#include <algorithm>

namespace sttcp::net {

bool Impairment::in_blackout(sim::TimePoint now) {
    if (blackouts_.empty()) return false;
    bool active = false;
    for (const Window& w : blackouts_)
        if (w.from <= now && now < w.until) {
            active = true;
            break;
        }
    // Prune windows that can never match again so long soaks stay O(live).
    std::erase_if(blackouts_, [now](const Window& w) { return w.until <= now; });
    return active;
}

ImpairmentActions Impairment::evaluate(sim::Random& rng, bool corruptible,
                                       bool allow_duplicate) {
    ImpairmentActions actions;

    // Loss. The Gilbert–Elliott chain advances exactly once per evaluated
    // frame; sampling the transition before the loss draw means a frame that
    // *enters* the bad state already suffers bursty loss, which is how burst
    // onsets behave on real links.
    if (config_.gilbert_elliott) {
        if (ge_bad_) {
            if (rng.bernoulli(config_.ge_p_exit_bad)) ge_bad_ = false;
        } else {
            if (rng.bernoulli(config_.ge_p_enter_bad)) ge_bad_ = true;
        }
        actions.drop_loss = rng.bernoulli(ge_bad_ ? config_.ge_loss_bad : config_.ge_loss_good);
    } else {
        actions.drop_loss = rng.bernoulli(config_.loss);
    }

    if (allow_duplicate) actions.duplicate = rng.bernoulli(config_.duplicate);
    if (corruptible) actions.corrupt = rng.bernoulli(config_.corrupt);

    if (config_.jitter > sim::Duration{0}) {
        actions.extra_delay += sim::Duration{static_cast<std::int64_t>(
            rng.uniform(static_cast<std::uint64_t>(config_.jitter.count()) + 1))};
    }
    if (rng.bernoulli(config_.spike)) {
        actions.spiked = true;
        actions.extra_delay += config_.spike_delay;
    }
    return actions;
}

} // namespace sttcp::net
