// Virtual time for the discrete-event simulator.
//
// All protocol timers, link delays, and measurements use this clock; the
// simulation is fully deterministic and runs as fast as the host CPU allows
// regardless of how much virtual time elapses (a 100 MB transfer "takes"
// 8 s of virtual time and ~10 ms of host time).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>

namespace sttcp::sim {

// Nanosecond resolution; 2^63 ns ≈ 292 years of virtual time.
using Duration = std::chrono::nanoseconds;

struct SimClock {
    using rep = std::int64_t;
    using period = std::nano;
    using duration = Duration;
    using time_point = std::chrono::time_point<SimClock>;
    static constexpr bool is_steady = true;
    // No now(): only a Simulation can tell the time.
};

using TimePoint = SimClock::time_point;

using std::chrono::hours;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::minutes;
using std::chrono::nanoseconds;
using std::chrono::seconds;

[[nodiscard]] constexpr double to_seconds(Duration d) {
    return std::chrono::duration<double>(d).count();
}
[[nodiscard]] constexpr double to_seconds(TimePoint t) {
    return to_seconds(t.time_since_epoch());
}
[[nodiscard]] constexpr Duration from_seconds(double s) {
    return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(s));
}

std::ostream& operator<<(std::ostream& os, TimePoint t);

} // namespace sttcp::sim
