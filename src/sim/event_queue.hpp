// Discrete-event queue: the heart of the simulator.
//
// Events fire in (time, insertion-order) order, which — together with the
// deterministic RNG — makes every run bit-for-bit reproducible. Cancellation
// is O(1) and allocation-free: every event id carries a (slot, generation)
// pair into a slot table, so cancel() is two array writes and a popped entry
// proves it is alive with one generation compare — no hash lookup, no
// tombstone set. Callbacks live in an InlineFunction whose buffer is sized
// for the simulator's hot lambdas (link delivery, RTO timers), so scheduling
// does not touch the heap either.
//
// Two interchangeable backends implement the ordering contract:
//
//   * kWheel (default) — a hierarchical timing wheel (Varghese–Lauck):
//     9 levels of 64 slots at a 1.024 us tick (1 tick = 2^10 ns), so level L
//     buckets span 64^L ticks and 6*9 = 54 bits cover every representable
//     TimePoint. Insertion picks the level of the highest bit in which the
//     target tick differs from the wheel cursor; advancing lazily cascades
//     one coarse bucket into finer levels only when the cursor reaches it.
//     The coarse tick is deliberate: the simulator's hot events (link
//     deliveries a few us out) land directly in level 0 and never cascade,
//     where a 1 ns tick would push nearly every event up 3-4 levels and pay
//     that many re-placements. Schedule, cancel and rearm are O(1); finding
//     the next event is O(levels).
//   * kHeap — the original binary heap. It survives as the determinism
//     oracle: tests replay a recorded trial under both backends and compare
//     order_digest(), proving the wheel executes the identical sequence.
//
// Exact (time, insertion-order) execution — not merely tick-order — rests on
// two rules. Entries keep their exact nanosecond deadline, and a level-0
// bucket is stable-sorted by (when, seq) once, lazily, when the cursor
// activates it; events quantized into the same 1.024 us tick therefore still
// fire in precise heap-identical order. Appends into an already-activated
// bucket (same-tick schedules from a running callback) clear its sorted flag
// unless they extend the order, and the next pop re-sorts the unconsumed
// suffix. Cascades only happen when every finer level is already empty in
// the cursor's future window, so redistributed entries land in empty
// buckets and are sorted at their own activation.
#pragma once

#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"

namespace sttcp::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
public:
    using Callback = InlineFunction<void(), 64>;

    enum class Backend : std::uint8_t { kWheel, kHeap };

    explicit EventQueue(Backend backend = Backend::kWheel) : backend_(backend) {}

    [[nodiscard]] TimePoint now() const { return now_; }
    [[nodiscard]] Backend backend() const { return backend_; }

    // The callable is constructed directly into its slot: scheduling a
    // lambda performs no InlineFunction relocation at all. Deadlines in the
    // past clamp to now(): a late timer fires immediately, it never rewinds
    // simulated time.
    template <typename F>
    EventId schedule_at(TimePoint when, F&& f) {
        if (when < now_) when = now_;
        std::uint32_t slot = acquire_slot();
        Slot& s = slots_[slot];
        s.state = Slot::kArmed;
        s.live_seq = next_seq_;
        if constexpr (std::is_same_v<std::remove_cvref_t<F>, Callback>) {
            s.cb = std::forward<F>(f);
        } else {
            s.cb.emplace(std::forward<F>(f));
        }
        insert_entry(Entry{when, next_seq_++, slot, s.gen});
        ++live_count_;
        ++scheduled_;
        if (live_count_ > peak_pending_) peak_pending_ = live_count_;
        return make_id(slot, s.gen);
    }
    template <typename F>
    EventId schedule_after(Duration delay, F&& f) {
        return schedule_at(now_ + delay, std::forward<F>(f));
    }

    // Cancels a pending event; no-op (returns false) if it already fired,
    // was cancelled, or the id is kInvalidEventId.
    bool cancel(EventId id);

    // Moves a pending event to a new deadline without invalidating its id:
    // the (slot, generation) pair is kept, the old queue entry becomes a
    // tombstone, and the event consumes a fresh sequence number — exactly
    // the FIFO position a cancel()+schedule_at() pair would have produced,
    // minus the slot churn. Deadlines in the past clamp to now(). Uniquely,
    // rearm() is also legal from inside the event's own callback (where
    // cancel() on the own id already returns false): the slot stays live and
    // the same callback fires again at the new deadline, which is how the
    // periodic ST-TCP timers avoid tearing down and re-emplacing their
    // lambda every interval. Returns false if the id is stale or invalid.
    bool rearm(EventId id, TimePoint when);

    // Runs events until the queue is empty or `limit` events fired.
    // Returns the number of events executed.
    std::size_t run(std::size_t limit = SIZE_MAX);

    // Runs events with time <= deadline, then advances now() to deadline.
    std::size_t run_until(TimePoint deadline);

    // Executes exactly one event if any is pending; returns whether one ran.
    bool step();

    [[nodiscard]] bool empty() const { return live_count_ == 0; }
    [[nodiscard]] std::size_t pending() const { return live_count_; }
    [[nodiscard]] std::uint64_t executed() const { return executed_; }

    // Cancelled/rearmed entries whose storage has not been reclaimed yet.
    // Must read 0 after a run() that drains the queue — a nonzero value at
    // that point is a tombstone leak (asserted by tests, not just eyeballed).
    [[nodiscard]] std::size_t dead_entries() const {
        return stored_entries() - live_count_;
    }

    // High-water mark of concurrently armed events (the "peak armed timers"
    // column in BENCH_scale.json).
    [[nodiscard]] std::size_t peak_pending() const { return peak_pending_; }

    // Total schedule_at/schedule_after and rearm() calls — lets tests pin
    // "this change did not add timer churn" as a counter equality.
    [[nodiscard]] std::uint64_t scheduled() const { return scheduled_; }
    [[nodiscard]] std::uint64_t rearmed() const { return rearmed_; }

    // Order-sensitive digest over every executed event's (seq, deadline).
    // Two backends that executed the identical event sequence — and only
    // those — report equal digests for equal workloads.
    [[nodiscard]] std::uint64_t order_digest() const { return digest_; }

private:
    // Queue entries are 24-byte PODs: the callback lives in the slot table,
    // not the wheel/heap, so moving entries around shuffles plain words
    // instead of running InlineFunction's relocate through a function
    // pointer.
    struct Entry {
        TimePoint when;
        std::uint64_t seq;  // tie-break: FIFO among same-time events
        std::uint32_t slot;
        std::uint32_t gen;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    // A slot is kArmed while its event is pending and kFiring while its
    // callback is executing (so rearm() from inside the callback can re-arm
    // the same slot). The generation advances every time the slot is
    // released (fire or cancel), which invalidates every id and queue entry
    // minted for earlier occupancies; live_seq additionally identifies
    // *which* queue entry is current, so rearm() can orphan the old one
    // without touching the generation. Slots are stable across queue
    // operations, so the callback is stored here.
    struct Slot {
        enum State : std::uint8_t { kFree, kArmed, kFiring };
        std::uint32_t gen = 1;
        State state = kFree;
        std::uint64_t live_seq = 0;
        Callback cb;
    };

    // ---- timing wheel geometry ---------------------------------------------
    static constexpr int kTickShift = 10;                // 1 tick = 1.024 us
    static constexpr int kSlotBits = 6;                  // 64 buckets per level
    static constexpr int kSlotsPerLevel = 1 << kSlotBits;
    static constexpr std::uint64_t kSlotMask = kSlotsPerLevel - 1;
    static constexpr int kLevels = 9;  // 6*9 = 54 bits >= any TimePoint tick
    struct Bucket {
        std::vector<Entry> entries;  // append order; see `sorted`
        std::size_t head = 0;        // consumed prefix of the level-0 cursor bucket
        bool sorted = false;         // [head, end) is (when, seq)-ordered (level 0)
    };

    [[nodiscard]] static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
        return static_cast<EventId>(slot) << 32 | gen;
    }
    [[nodiscard]] static std::uint64_t to_ns(TimePoint t) {
        return static_cast<std::uint64_t>(t.time_since_epoch().count());
    }
    [[nodiscard]] static std::uint64_t to_ticks(TimePoint t) {
        return to_ns(t) >> kTickShift;
    }
    [[nodiscard]] bool is_live(const Entry& e) const {
        const Slot& s = slots_[e.slot];
        return s.state == Slot::kArmed && s.gen == e.gen && s.live_seq == e.seq;
    }
    [[nodiscard]] std::uint32_t acquire_slot() {
        if (!free_slots_.empty()) {
            std::uint32_t slot = free_slots_.back();
            free_slots_.pop_back();
            return slot;
        }
        auto slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
        return slot;
    }
    [[nodiscard]] std::size_t stored_entries() const {
        return backend_ == Backend::kHeap ? heap_.size() : wheel_stored_;
    }
    void release_slot(std::uint32_t slot);
    void insert_entry(const Entry& e);
    void wheel_place(const Entry& e);
    void clear_level0_bucket(std::uint64_t index);
    // Positions cursor_ on the level-0 bucket of the earliest live entry
    // with tick <= limit_ticks (cascading coarse buckets as needed) and
    // returns true; returns false — never moving cursor_ past limit_ticks —
    // when no such entry exists.
    bool wheel_advance(std::uint64_t limit_ticks);
    // The pops take the *exact* nanosecond deadline: a bucket whose tick
    // equals the deadline's may still hold events a few hundred ns beyond it.
    bool wheel_pop(std::uint64_t limit_ns);
    bool heap_pop(std::uint64_t limit_ns);
    bool pop_one(std::uint64_t limit_ns);
    void execute(const Entry& e);
    void purge_if_drained();

    Backend backend_;

    // kHeap backend state.
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;

    // kWheel backend state. cursor_ is the wheel's read position in ticks:
    // every bucket strictly before it has been drained or cascaded. At every
    // public API boundary cursor_ <= now() in ticks, so a fresh insert
    // (clamped to >= now()) can never land behind the cursor.
    std::array<std::array<Bucket, kSlotsPerLevel>, kLevels> wheel_{};
    std::array<std::uint64_t, kLevels> occupancy_{};  // bit b: bucket b non-empty
    std::uint64_t cursor_ = 0;
    std::size_t wheel_stored_ = 0;
    std::vector<Entry> cascade_scratch_;  // capacity recycled across cascades

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_slots_;
    TimePoint now_{};
    std::uint64_t next_seq_ = 0;
    std::size_t live_count_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t peak_pending_ = 0;
    std::uint64_t scheduled_ = 0;
    std::uint64_t rearmed_ = 0;
    std::uint64_t digest_ = 0x7374'7463'7031'2003ULL;
};

} // namespace sttcp::sim
