// Discrete-event queue: the heart of the simulator.
//
// Events fire in (time, insertion-order) order, which — together with the
// deterministic RNG — makes every run bit-for-bit reproducible. Cancellation
// is lazy: cancel() marks the id dead and the queue skips it when popped, so
// protocol timers (which are rescheduled constantly) stay O(log n).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace sttcp::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
public:
    using Callback = std::function<void()>;

    [[nodiscard]] TimePoint now() const { return now_; }

    EventId schedule_at(TimePoint when, Callback cb);
    EventId schedule_after(Duration delay, Callback cb) {
        return schedule_at(now_ + delay, std::move(cb));
    }

    // Cancels a pending event; no-op (returns false) if it already fired,
    // was cancelled, or the id is kInvalidEventId.
    bool cancel(EventId id);

    // Runs events until the queue is empty or `limit` events fired.
    // Returns the number of events executed.
    std::size_t run(std::size_t limit = SIZE_MAX);

    // Runs events with time <= deadline, then advances now() to deadline.
    std::size_t run_until(TimePoint deadline);

    // Executes exactly one event if any is pending; returns whether one ran.
    bool step();

    [[nodiscard]] bool empty() const { return live_count_ == 0; }
    [[nodiscard]] std::size_t pending() const { return live_count_; }
    [[nodiscard]] std::uint64_t executed() const { return executed_; }

private:
    struct Entry {
        TimePoint when;
        std::uint64_t seq;  // tie-break: FIFO among same-time events
        EventId id;
        Callback cb;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool pop_one();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> cancelled_;
    TimePoint now_{};
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
    std::size_t live_count_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sttcp::sim
