// Discrete-event queue: the heart of the simulator.
//
// Events fire in (time, insertion-order) order, which — together with the
// deterministic RNG — makes every run bit-for-bit reproducible. Cancellation
// is O(1) and allocation-free: every event id carries a (slot, generation)
// pair into a slot table, so cancel() is two array writes and a popped entry
// proves it is alive with one generation compare — no hash lookup, no
// tombstone set. Callbacks live in an InlineFunction whose buffer is sized
// for the simulator's hot lambdas (link delivery, RTO timers), so scheduling
// does not touch the heap either.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"

namespace sttcp::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
public:
    using Callback = InlineFunction<void(), 64>;

    [[nodiscard]] TimePoint now() const { return now_; }

    // The callable is constructed directly into its slot: scheduling a
    // lambda performs no InlineFunction relocation at all.
    template <typename F>
    EventId schedule_at(TimePoint when, F&& f) {
        std::uint32_t slot = acquire_slot();
        Slot& s = slots_[slot];
        s.armed = true;
        if constexpr (std::is_same_v<std::remove_cvref_t<F>, Callback>) {
            s.cb = std::forward<F>(f);
        } else {
            s.cb.emplace(std::forward<F>(f));
        }
        heap_.push(Entry{when, next_seq_++, slot, s.gen});
        ++live_count_;
        return make_id(slot, s.gen);
    }
    template <typename F>
    EventId schedule_after(Duration delay, F&& f) {
        return schedule_at(now_ + delay, std::forward<F>(f));
    }

    // Cancels a pending event; no-op (returns false) if it already fired,
    // was cancelled, or the id is kInvalidEventId.
    bool cancel(EventId id);

    // Runs events until the queue is empty or `limit` events fired.
    // Returns the number of events executed.
    std::size_t run(std::size_t limit = SIZE_MAX);

    // Runs events with time <= deadline, then advances now() to deadline.
    std::size_t run_until(TimePoint deadline);

    // Executes exactly one event if any is pending; returns whether one ran.
    bool step();

    [[nodiscard]] bool empty() const { return live_count_ == 0; }
    [[nodiscard]] std::size_t pending() const { return live_count_; }
    [[nodiscard]] std::uint64_t executed() const { return executed_; }

private:
    // Heap entries are 24-byte PODs: the callback lives in the slot table,
    // not the heap, so every sift during push/pop moves plain words instead
    // of running InlineFunction's relocate through a function pointer.
    struct Entry {
        TimePoint when;
        std::uint64_t seq;  // tie-break: FIFO among same-time events
        std::uint32_t slot;
        std::uint32_t gen;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    // A slot is armed while its event is pending; the generation advances
    // every time the slot is released (fire or cancel), which invalidates
    // every id and heap entry minted for earlier occupancies. Slots are
    // stable across heap operations, so the callback is stored here.
    struct Slot {
        std::uint32_t gen = 1;
        bool armed = false;
        Callback cb;
    };

    [[nodiscard]] static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
        return static_cast<EventId>(slot) << 32 | gen;
    }
    [[nodiscard]] bool is_live(const Entry& e) const {
        const Slot& s = slots_[e.slot];
        return s.armed && s.gen == e.gen;
    }
    [[nodiscard]] std::uint32_t acquire_slot() {
        if (!free_slots_.empty()) {
            std::uint32_t slot = free_slots_.back();
            free_slots_.pop_back();
            return slot;
        }
        auto slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
        return slot;
    }
    void release_slot(std::uint32_t slot);
    bool pop_one();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_slots_;
    TimePoint now_{};
    std::uint64_t next_seq_ = 0;
    std::size_t live_count_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sttcp::sim
