// Simulation context: event queue + RNG + logger under one roof.
//
// Every simulated component receives a Simulation& at construction and uses
// it for scheduling, randomness, and tracing. One Simulation == one world;
// tests routinely create many.
#pragma once

#include <string>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "util/logging.hpp"

namespace sttcp::sim {

class Simulation {
public:
    explicit Simulation(std::uint64_t seed = 1,
                        EventQueue::Backend backend = EventQueue::Backend::kWheel)
        : queue_(backend), rng_(seed) {
        // Prefix every log line with the virtual timestamp.
        logger_.set_sink([this](util::LogLevel level, std::string_view component,
                                std::string_view msg) { default_sink(level, component, msg); });
    }

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    [[nodiscard]] TimePoint now() const { return queue_.now(); }
    [[nodiscard]] EventQueue& queue() { return queue_; }
    [[nodiscard]] Random& rng() { return rng_; }
    [[nodiscard]] util::Logger& logger() { return logger_; }

    template <typename F>
    EventId schedule_at(TimePoint when, F&& f) {
        return queue_.schedule_at(when, std::forward<F>(f));
    }
    template <typename F>
    EventId schedule_after(Duration delay, F&& f) {
        return queue_.schedule_after(delay, std::forward<F>(f));
    }
    bool cancel(EventId id) { return queue_.cancel(id); }
    bool rearm(EventId id, TimePoint when) { return queue_.rearm(id, when); }
    bool rearm_after(EventId id, Duration delay) { return queue_.rearm(id, now() + delay); }

    std::size_t run(std::size_t limit = SIZE_MAX) { return queue_.run(limit); }
    std::size_t run_until(TimePoint deadline) { return queue_.run_until(deadline); }
    std::size_t run_for(Duration d) { return queue_.run_until(now() + d); }

private:
    void default_sink(util::LogLevel level, std::string_view component, std::string_view msg);

    EventQueue queue_;
    Random rng_;
    util::Logger logger_;
};

} // namespace sttcp::sim
