#include "sim/time.hpp"

#include <cstdio>
#include <ostream>

namespace sttcp::sim {

std::ostream& operator<<(std::ostream& os, TimePoint t) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6fs", to_seconds(t));
    return os << buf;
}

} // namespace sttcp::sim
