// Deterministic RNG (xoshiro256**) for the simulator.
//
// std::mt19937 would also work, but its distributions are not guaranteed
// identical across standard libraries; we implement the generator and the
// distributions ourselves so a seed reproduces a run on every platform.
#pragma once

#include <cassert>
#include <cstdint>

namespace sttcp::sim {

class Random {
public:
    explicit Random(std::uint64_t seed = 0x5740'7463'7031'2003ULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto& s : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    std::uint64_t next_u64() {
        auto rotl = [](std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    // Uniform in [0, bound) without modulo bias (Lemire's method).
    std::uint64_t uniform(std::uint64_t bound) {
        assert(bound > 0);
        unsigned __int128 m = static_cast<unsigned __int128>(next_u64()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = -bound % bound;
            while (lo < threshold) {
                m = static_cast<unsigned __int128>(next_u64()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    // Uniform double in [0, 1).
    double uniform01() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

    bool bernoulli(double p) {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return uniform01() < p;
    }

    // Uniform in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) {
        assert(lo <= hi);
        return lo + static_cast<std::int64_t>(
                        uniform(static_cast<std::uint64_t>(hi - lo) + 1));
    }

private:
    std::uint64_t state_[4]{};
};

} // namespace sttcp::sim
