// Move-only callable with inline small-buffer storage.
//
// std::function's inline buffer (16 bytes on libstdc++) is too small for the
// simulator's hot callbacks — a link-delivery lambda captures a whole
// EthernetFrame — so every scheduled event used to heap-allocate. This type
// stores callables up to kInlineBytes in place and only falls back to the
// heap beyond that. Being move-only it also accepts move-only captures,
// which std::function cannot hold at all.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace sttcp::sim {

template <typename Signature, std::size_t InlineBytes = 64>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
public:
    static constexpr std::size_t kInlineBytes = InlineBytes;

    InlineFunction() = default;
    InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

    template <typename F>
        requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
                 std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
    InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
        emplace(std::forward<F>(f));
    }

    // Constructs the callable directly in place (replacing any current
    // target) — lets containers of InlineFunction skip the construct-then-
    // relocate dance on their hot path.
    template <typename F>
        requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
                 std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
    void emplace(F&& f) {
        destroy();
        using D = std::remove_cvref_t<F>;
        if constexpr (fits_inline<D>) {
            ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
            vtable_ = &kInlineVTable<D>;
        } else {
            ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
            vtable_ = &kHeapVTable<D>;
        }
    }

    InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
    InlineFunction& operator=(InlineFunction&& other) noexcept {
        if (this != &other) {
            destroy();
            move_from(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction&) = delete;
    InlineFunction& operator=(const InlineFunction&) = delete;

    ~InlineFunction() { destroy(); }

    [[nodiscard]] explicit operator bool() const { return vtable_ != nullptr; }

    R operator()(Args... args) {
        return vtable_->call(storage_, std::forward<Args>(args)...);
    }

    // Whether a callable of type D would avoid the heap (exposed for tests).
    template <typename D>
    static constexpr bool fits_inline =
        sizeof(D) <= InlineBytes && alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

private:
    struct VTable {
        R (*call)(void* storage, Args&&... args);
        void (*relocate)(void* dst, void* src);  // move into dst, destroy src
        void (*destroy)(void* storage);
    };

    template <typename D>
    struct InlineModel {
        static R call(void* storage, Args&&... args) {
            return (*std::launder(static_cast<D*>(storage)))(std::forward<Args>(args)...);
        }
        static void relocate(void* dst, void* src) {
            D* from = std::launder(static_cast<D*>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
        }
        static void destroy(void* storage) { std::launder(static_cast<D*>(storage))->~D(); }
    };

    template <typename D>
    struct HeapModel {
        static R call(void* storage, Args&&... args) {
            return (**std::launder(static_cast<D**>(storage)))(std::forward<Args>(args)...);
        }
        static void relocate(void* dst, void* src) {
            ::new (dst) D*(*std::launder(static_cast<D**>(src)));
        }
        static void destroy(void* storage) { delete *std::launder(static_cast<D**>(storage)); }
    };

    template <typename D>
    static constexpr VTable kInlineVTable{&InlineModel<D>::call, &InlineModel<D>::relocate,
                                          &InlineModel<D>::destroy};
    template <typename D>
    static constexpr VTable kHeapVTable{&HeapModel<D>::call, &HeapModel<D>::relocate,
                                        &HeapModel<D>::destroy};

    void move_from(InlineFunction& other) noexcept {
        vtable_ = other.vtable_;
        if (vtable_) {
            vtable_->relocate(storage_, other.storage_);
            other.vtable_ = nullptr;
        }
    }

    void destroy() {
        if (vtable_) {
            vtable_->destroy(storage_);
            vtable_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[InlineBytes >= sizeof(void*)
                                                         ? InlineBytes
                                                         : sizeof(void*)]{};
    const VTable* vtable_ = nullptr;
};

} // namespace sttcp::sim
