#include "sim/event_queue.hpp"

#include <bit>
#include <cassert>
#include <utility>

namespace sttcp::sim {
namespace {

// Order-sensitive accumulator (boost::hash_combine construction): equal
// digests <=> equal (seq, when) execution sequences, which is exactly the
// determinism contract the heap/wheel cross-check pins.
void mix(std::uint64_t& h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

} // namespace

void EventQueue::release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.state = Slot::kFree;
    s.cb = nullptr;  // drop captures now, not at slot reuse
    if (++s.gen == 0) s.gen = 1;  // keep make_id() != kInvalidEventId on wrap
    free_slots_.push_back(slot);
}

bool EventQueue::cancel(EventId id) {
    if (id == kInvalidEventId) return false;
    auto slot = static_cast<std::uint32_t>(id >> 32);
    auto gen = static_cast<std::uint32_t>(id);
    if (slot >= slots_.size()) return false;
    const Slot& s = slots_[slot];
    if (s.state != Slot::kArmed || s.gen != gen) return false;  // fired or cancelled
    release_slot(slot);
    assert(live_count_ > 0);
    --live_count_;
    purge_if_drained();
    return true;
}

bool EventQueue::rearm(EventId id, TimePoint when) {
    if (id == kInvalidEventId) return false;
    auto slot = static_cast<std::uint32_t>(id >> 32);
    auto gen = static_cast<std::uint32_t>(id);
    if (slot >= slots_.size()) return false;
    Slot& s = slots_[slot];
    if (s.state == Slot::kFree || s.gen != gen) return false;
    if (when < now_) when = now_;
    // The event consumes a fresh sequence number — identical FIFO placement
    // to cancel()+schedule_at() — and its previous queue entry, now
    // mismatching live_seq, dies as a tombstone.
    const bool was_firing = s.state == Slot::kFiring;
    s.state = Slot::kArmed;
    s.live_seq = next_seq_;
    insert_entry(Entry{when, next_seq_++, slot, gen});
    if (was_firing) ++live_count_;  // the firing entry was already consumed
    ++rearmed_;
    if (live_count_ > peak_pending_) peak_pending_ = live_count_;
    return true;
}

void EventQueue::insert_entry(const Entry& e) {
    if (backend_ == Backend::kHeap) {
        heap_.push(e);
    } else {
        wheel_place(e);
    }
}

void EventQueue::wheel_place(const Entry& e) {
    const std::uint64_t t = to_ticks(e.when);
    assert(t >= cursor_);  // schedule clamps to now() and now() >= cursor
    const std::uint64_t diff = t ^ cursor_;
    const int level = diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kSlotBits;
    const auto li = static_cast<std::size_t>(level);
    const std::uint64_t index = (t >> (level * kSlotBits)) & kSlotMask;
    Bucket& b = wheel_[li][static_cast<std::size_t>(index)];
    // An append extends an activated bucket's (when, seq) order iff its
    // deadline is >= the current tail's (its seq is the global maximum). An
    // out-of-order append just drops the flag; the next pop re-sorts the
    // unconsumed suffix.
    if (b.sorted && !b.entries.empty() && to_ns(e.when) < to_ns(b.entries.back().when))
        b.sorted = false;
    b.entries.push_back(e);
    occupancy_[li] |= std::uint64_t{1} << index;
    ++wheel_stored_;
}

void EventQueue::clear_level0_bucket(std::uint64_t index) {
    Bucket& b = wheel_[0][static_cast<std::size_t>(index)];
    b.entries.clear();
    b.head = 0;
    b.sorted = false;
    occupancy_[0] &= ~(std::uint64_t{1} << index);
}

bool EventQueue::wheel_advance(std::uint64_t limit_ticks) {
    for (;;) {
        // Lowest non-empty bucket at or after the cursor, scanning fine to
        // coarse: level L+1's whole future window lies beyond level L's, so
        // the first hit is the globally earliest candidate.
        int level = -1;
        std::uint64_t index = 0;
        for (int l = 0; l < kLevels; ++l) {
            const std::uint64_t cur = (cursor_ >> (l * kSlotBits)) & kSlotMask;
            const std::uint64_t mask = occupancy_[static_cast<std::size_t>(l)] >> cur;
            if (mask != 0) {
                level = l;
                index = cur + static_cast<std::uint64_t>(std::countr_zero(mask));
                break;
            }
        }
        if (level < 0) return false;  // nothing stored at or after the cursor
        const int shift = (level + 1) * kSlotBits;
        const std::uint64_t prefix = shift >= 64 ? 0 : (cursor_ >> shift) << shift;
        const std::uint64_t base = prefix | index << (level * kSlotBits);
        if (base > limit_ticks) {
            // Never move the cursor past the caller's deadline: a later
            // schedule_at() between now() and the next event must still
            // land in front of the cursor.
            if (limit_ticks > cursor_) cursor_ = limit_ticks;
            return false;
        }
        cursor_ = base;
        const auto li = static_cast<std::size_t>(level);
        if (level == 0) {
            Bucket& b = wheel_[0][static_cast<std::size_t>(index)];
            if (!b.sorted) {
                // Activation: order the unconsumed suffix by exact deadline
                // (ties stay in seq order — entries arrived seq-ascending and
                // insertion sort is stable), restoring heap-identical
                // (when, seq) order within this 1.024 us tick. Buckets are
                // tiny and usually nearly sorted already; insertion sort
                // beats std::stable_sort's temporary-buffer allocation here.
                Entry* const first = b.entries.data() + b.head;
                Entry* const last = b.entries.data() + b.entries.size();
                for (Entry* p = first + 1; p < last; ++p) {
                    if (to_ns(p->when) >= to_ns((p - 1)->when)) continue;
                    Entry tmp = *p;
                    Entry* q = p;
                    for (; q > first && to_ns(tmp.when) < to_ns((q - 1)->when); --q)
                        *q = *(q - 1);
                    *q = tmp;
                }
                b.sorted = true;
            }
            while (b.head < b.entries.size() && !is_live(b.entries[b.head])) {
                ++b.head;  // sweep tombstones
                --wheel_stored_;
            }
            if (b.head >= b.entries.size()) {
                clear_level0_bucket(index);
                continue;  // the bucket held only cancelled entries
            }
            return true;
        }
        // Lazy cascade: the cursor reached a coarse bucket; redistribute it
        // into the finer levels, which are provably empty in this window
        // (they were scanned first), so append order is preserved.
        // Tombstones are dropped here for free. The scratch swap recycles
        // vector capacity between the bucket and the scratch across
        // cascades, so steady-state cascading never touches the allocator.
        Bucket& b = wheel_[li][static_cast<std::size_t>(index)];
        cascade_scratch_.clear();
        cascade_scratch_.swap(b.entries);
        b.head = 0;
        occupancy_[li] &= ~(std::uint64_t{1} << index);
        for (const Entry& e : cascade_scratch_) {
            --wheel_stored_;
            if (is_live(e)) wheel_place(e);
        }
    }
}

bool EventQueue::wheel_pop(std::uint64_t limit_ns) {
    if (live_count_ == 0) {
        purge_if_drained();
        return false;
    }
    if (!wheel_advance(limit_ns >> kTickShift)) return false;
    const std::uint64_t index = cursor_ & kSlotMask;
    Bucket& b = wheel_[0][static_cast<std::size_t>(index)];
    // The cursor bucket's tick may equal the deadline's while its earliest
    // entry still lies a few hundred ns beyond it; such an entry stays put
    // (the bucket keeps its sorted suffix) for the next run.
    if (to_ns(b.entries[b.head].when) > limit_ns) return false;
    const Entry e = b.entries[b.head];
    ++b.head;
    --wheel_stored_;
    if (b.head >= b.entries.size()) clear_level0_bucket(index);
    execute(e);
    return true;
}

bool EventQueue::heap_pop(std::uint64_t limit_ns) {
    while (!heap_.empty()) {
        if (!is_live(heap_.top())) {  // cancelled or rearmed away
            heap_.pop();
            continue;
        }
        if (to_ns(heap_.top().when) > limit_ns) return false;
        const Entry e = heap_.top();
        heap_.pop();
        execute(e);
        return true;
    }
    return false;
}

bool EventQueue::pop_one(std::uint64_t limit_ns) {
    return backend_ == Backend::kHeap ? heap_pop(limit_ns) : wheel_pop(limit_ns);
}

void EventQueue::execute(const Entry& e) {
    // Move the callback out before firing: the callback may schedule new
    // events that reuse (and overwrite) this very slot.
    Callback cb = std::move(slots_[e.slot].cb);
    slots_[e.slot].state = Slot::kFiring;
    assert(e.when >= now_);
    now_ = e.when;
    --live_count_;
    ++executed_;
    mix(digest_, e.seq);
    mix(digest_, to_ticks(e.when));
    cb();
    // Re-fetch: the callback may have grown slots_. If it rearmed its own
    // slot (kArmed again under the same generation) the slot stays live and
    // gets its callable back; any other state means the slot was released —
    // and possibly re-acquired by an unrelated schedule — during the
    // callback, so it must not be touched.
    Slot& s = slots_[e.slot];
    if (s.state == Slot::kFiring) {
        release_slot(e.slot);
        purge_if_drained();
    } else if (s.state == Slot::kArmed && s.gen == e.gen) {
        assert(!s.cb);
        s.cb = std::move(cb);
    }
}

void EventQueue::purge_if_drained() {
    if (live_count_ != 0) return;
    if (backend_ == Backend::kHeap) {
        if (!heap_.empty()) heap_ = {};  // every remaining entry is a tombstone
        return;
    }
    if (wheel_stored_ != 0) {
        for (std::size_t l = 0; l < kLevels; ++l) {
            std::uint64_t occ = occupancy_[l];
            while (occ != 0) {
                const auto index = static_cast<std::size_t>(std::countr_zero(occ));
                occ &= occ - 1;
                wheel_[l][index].entries.clear();
                wheel_[l][index].head = 0;
                wheel_[l][index].sorted = false;
            }
            occupancy_[l] = 0;
        }
        wheel_stored_ = 0;
    }
    // With nothing stored the cursor can jump straight to now(), keeping
    // future insertions on the finest levels.
    cursor_ = to_ticks(now_);
}

std::size_t EventQueue::run(std::size_t limit) {
    std::size_t n = 0;
    while (n < limit && pop_one(UINT64_MAX)) ++n;
    return n;
}

std::size_t EventQueue::run_until(TimePoint deadline) {
    if (deadline < now_) return 0;
    std::size_t n = 0;
    while (pop_one(to_ns(deadline))) ++n;
    now_ = deadline;
    // Everything still stored provably lies at or beyond the deadline's tick
    // (wheel_advance cascaded any straddling bucket), so the cursor may come
    // up to that tick.
    const std::uint64_t limit_ticks = to_ticks(deadline);
    if (backend_ == Backend::kWheel && limit_ticks > cursor_) cursor_ = limit_ticks;
    return n;
}

bool EventQueue::step() { return pop_one(UINT64_MAX); }

} // namespace sttcp::sim
