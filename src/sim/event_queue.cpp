#include "sim/event_queue.hpp"

#include <cassert>

namespace sttcp::sim {

void EventQueue::release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.armed = false;
    s.cb = nullptr;  // drop captures now, not at slot reuse
    if (++s.gen == 0) s.gen = 1;  // keep make_id() != kInvalidEventId on wrap
    free_slots_.push_back(slot);
}

bool EventQueue::cancel(EventId id) {
    if (id == kInvalidEventId) return false;
    auto slot = static_cast<std::uint32_t>(id >> 32);
    auto gen = static_cast<std::uint32_t>(id);
    if (slot >= slots_.size()) return false;
    const Slot& s = slots_[slot];
    if (!s.armed || s.gen != gen) return false;  // already fired or cancelled
    release_slot(slot);
    assert(live_count_ > 0);
    --live_count_;
    return true;
}

bool EventQueue::pop_one() {
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        if (!is_live(e)) continue;  // cancelled: slot was re-generationed
        // Move the callback out before releasing: the callback may schedule
        // new events that reuse (and overwrite) this very slot.
        Callback cb = std::move(slots_[e.slot].cb);
        release_slot(e.slot);
        assert(e.when >= now_);
        now_ = e.when;
        --live_count_;
        ++executed_;
        cb();
        return true;
    }
    return false;
}

std::size_t EventQueue::run(std::size_t limit) {
    std::size_t n = 0;
    while (n < limit && pop_one()) ++n;
    return n;
}

std::size_t EventQueue::run_until(TimePoint deadline) {
    std::size_t n = 0;
    while (!heap_.empty()) {
        // Skip cancelled entries at the top so top().when is a live event.
        if (!is_live(heap_.top())) {
            heap_.pop();
            continue;
        }
        if (heap_.top().when > deadline) break;
        if (pop_one()) ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
}

bool EventQueue::step() { return pop_one(); }

} // namespace sttcp::sim
