#include "sim/event_queue.hpp"

#include <cassert>

namespace sttcp::sim {

EventId EventQueue::schedule_at(TimePoint when, Callback cb) {
    assert(when >= now_ && "cannot schedule in the past");
    EventId id = next_id_++;
    heap_.push(Entry{when, next_seq_++, id, std::move(cb)});
    ++live_count_;
    return id;
}

bool EventQueue::cancel(EventId id) {
    if (id == kInvalidEventId) return false;
    // Only mark if it could still be pending (ids are monotonically issued).
    if (id >= next_id_) return false;
    auto [_, inserted] = cancelled_.insert(id);
    if (inserted && live_count_ > 0) {
        --live_count_;
        return true;
    }
    return false;
}

bool EventQueue::pop_one() {
    while (!heap_.empty()) {
        // priority_queue::top() is const; we need to move the callback out.
        Entry e = std::move(const_cast<Entry&>(heap_.top()));
        heap_.pop();
        if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        assert(e.when >= now_);
        now_ = e.when;
        --live_count_;
        ++executed_;
        e.cb();
        return true;
    }
    return false;
}

std::size_t EventQueue::run(std::size_t limit) {
    std::size_t n = 0;
    while (n < limit && pop_one()) ++n;
    return n;
}

std::size_t EventQueue::run_until(TimePoint deadline) {
    std::size_t n = 0;
    while (!heap_.empty()) {
        // Skip cancelled entries at the top so top().when is a live event.
        if (cancelled_.count(heap_.top().id)) {
            cancelled_.erase(heap_.top().id);
            heap_.pop();
            continue;
        }
        if (heap_.top().when > deadline) break;
        if (pop_one()) ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
}

bool EventQueue::step() { return pop_one(); }

} // namespace sttcp::sim
