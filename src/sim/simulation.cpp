#include "sim/simulation.hpp"

#include <cstdio>

namespace sttcp::sim {

void Simulation::default_sink(util::LogLevel level, std::string_view component,
                              std::string_view msg) {
    std::fprintf(stderr, "[%12.6f] [%.*s] %.*s: %.*s\n", to_seconds(now()),
                 static_cast<int>(util::to_string(level).size()), util::to_string(level).data(),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(msg.size()), msg.data());
}

} // namespace sttcp::sim
