// Seed → scenario: the sampling half of the chaos soak fuzzer.
//
// One uint64 seed deterministically derives EVERYTHING a trial needs — the
// topology, workload, heartbeat interval, backup ack threshold X (§4.3),
// fencing latency, the crash schedule, and which impairment dimensions are
// active with which parameters. `sttcp_soak --seed N` therefore replays a
// trial bit-for-bit, which is what makes a soak failure a reproducer instead
// of an anecdote.
//
// Every parameter is sampled unconditionally from a dedicated RNG stream
// (salted so it never collides with the simulation's own stream), and the
// active-dimension set is a separate bitmask. Clearing a bit disables that
// impairment WITHOUT shifting any other sampled value — the property the
// shrinker relies on to delta-debug a failure down to its minimal dimension
// set.
#pragma once

#include <bitset>
#include <cstdint>
#include <optional>
#include <string>

#include "app/client_driver.hpp"
#include "sim/time.hpp"

namespace sttcp::fuzz {

enum class Topology {
    kHub,             // paper §6 testbed (with packet logger)
    kSwitchMirror,    // Figure 2, SPAN port tap
    kSwitchMulticast, // Figure 2, multicast-MAC tap (with packet logger)
    kNoSpof,          // Figure 3, dual rails + inline loggers
    kChain,           // §3 "one or more backups": two ranked backups
};

// Impairment dimensions the shrinker can disable independently.
enum class Dim : std::size_t {
    kUniformLoss,   // Bernoulli loss on the client link, both directions
    kBurstLoss,     // Gilbert–Elliott on the client link, both directions
    kDuplication,   // frame duplication on the client link
    kCorruption,    // payload bit flips on the client link
    kJitter,        // uniform reordering jitter on the client link
    kDelaySpikes,   // rare large delays on the client link
    kBlackout,      // timed blackout (client link / tap / control channel)
    kBandwidthFlap, // client-link bandwidth drop + restore
    kTapLoss,       // loss toward the backup's tap NIC(s) only
    kCount,
};
inline constexpr std::size_t kDimCount = static_cast<std::size_t>(Dim::kCount);

[[nodiscard]] const char* dim_name(Dim d);
[[nodiscard]] const char* topology_name(Topology t);

// Where a kBlackout window lands.
enum class BlackoutTarget {
    kClientLink,     // both directions: pure delay adversity
    kTap,            // toward the backup's NIC: tap gap + possible false
                     // suspicion, which fencing must convert into a clean
                     // takeover (paper §4.4)
    kControlChannel, // primary's link, both directions, capped below the
                     // 3-heartbeat deadline so no takeover may result (§3.2)
};

struct Scenario {
    std::uint64_t seed = 0;

    Topology topology = Topology::kHub;
    app::Workload workload;
    sim::Duration hb_interval{};
    sim::Duration sync_time{};
    std::size_t ack_threshold_bytes = 0;  // 0 = paper default (3/4 buffer)
    sim::Duration fencing_latency{};

    // Crash schedule. crash_promoted only materializes on kChain (crashing
    // the sole promoted backup of a two-server topology ends the service by
    // design — nothing left to migrate to).
    bool crash_primary = false;
    sim::Duration crash_primary_at{};
    bool crash_promoted = false;
    sim::Duration crash_promoted_at{};  // measured from trial start

    std::bitset<kDimCount> dims;
    [[nodiscard]] bool has(Dim d) const { return dims.test(static_cast<std::size_t>(d)); }
    void clear(Dim d) { dims.reset(static_cast<std::size_t>(d)); }

    // Per-dimension parameters (always sampled, applied only when active).
    double uniform_loss = 0;
    double ge_p_enter_bad = 0, ge_p_exit_bad = 0, ge_loss_bad = 0;
    double dup_probability = 0;
    double corrupt_probability = 0;
    int corrupt_max_bits = 1;
    sim::Duration jitter{};
    double spike_probability = 0;
    sim::Duration spike_delay{};
    BlackoutTarget blackout_target = BlackoutTarget::kClientLink;
    sim::Duration blackout_at{};
    sim::Duration blackout_len{};
    double bw_factor = 1.0;
    sim::Duration bw_flap_at{};
    sim::Duration bw_restore_after{};
    double tap_loss = 0;

    [[nodiscard]] static Scenario sample(std::uint64_t seed);

    // One-line human summary, stable enough to diff across replays.
    [[nodiscard]] std::string describe() const;

    // Comma-separated active-dimension list, e.g. "burst-loss,corruption".
    [[nodiscard]] std::string dims_csv() const;
};

// Parses a dims CSV back into a mask (for `--dims`); returns nullopt on an
// unknown name.
[[nodiscard]] std::optional<std::bitset<kDimCount>> parse_dims(const std::string& csv);

} // namespace sttcp::fuzz
