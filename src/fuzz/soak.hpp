// Trial runner + shrinker for the chaos soak fuzzer.
//
// One trial = build the sampled topology, attach invariant instrumentation,
// apply the impairment schedule, run the workload end to end, and check:
//
//   1. the client completed with zero verify errors and the exact byte
//      count (transparency, paper §6 — the client cannot tell a migrated
//      connection from an unbroken one);
//   2. the backup emitted NO TCP traffic before takeover (output
//      suppression, §4.1 — the shadow must be invisible on the wire);
//   3. the runtime auditor (check/audit.hpp) stayed silent.
//
// A failed trial is reported with its seed; `sttcp_soak --seed N` rebuilds
// the identical scenario and `shrink()` delta-debugs the active impairment
// dimensions down to a minimal failing set.
#pragma once

#include <string>

#include "fuzz/scenario.hpp"
#include "sim/event_queue.hpp"

namespace sttcp::fuzz {

struct SoakOptions {
    sim::Duration time_limit = sim::minutes{30};  // virtual time per trial
    // Scheduler backend for the trial's simulation. The heap backend is the
    // determinism oracle: running the same seed under both backends must
    // produce identical TrialResults and event_order_digest values.
    sim::EventQueue::Backend backend = sim::EventQueue::Backend::kWheel;
    // Dump a tcpdump-style line for every frame delivered on the client
    // link (stderr) — the first tool to reach for on a failing seed.
    bool trace_client_link = false;
    // Demo invariant for exercising the failure pipeline: fail any trial in
    // which the link corrupted at least one frame. Deliberately violated by
    // every corruption-dimension scenario, so reproduction and shrinking can
    // be demonstrated (and CI-verified) without a real protocol bug.
    bool demo_fail_on_corruption = false;
};

struct TrialResult {
    bool passed = false;
    std::string failure;  // empty iff passed

    // Raw observations the checks were derived from.
    bool completed = false;
    std::string client_failure;
    std::uint64_t bytes_received = 0;
    std::uint64_t verify_errors = 0;
    std::string verify_detail;  // first few mismatches, for triage
    std::uint64_t pre_takeover_backup_tcp_frames = 0;
    std::uint64_t audit_violations = 0;
    bool failover_happened = false;
    double virtual_seconds = 0;

    // Scheduler forensics: total events the trial's queue executed and the
    // running digest over their (seq, deadline) execution order. Two runs of
    // the same seed — on any backend — must agree on both.
    std::uint64_t events_executed = 0;
    std::uint64_t event_order_digest = 0;

    // Impairment effects actually inflicted (summed over the instrumented
    // links) — lets the soak report prove the adversity was real.
    std::uint64_t frames_corrupted = 0;
    std::uint64_t frames_duplicated = 0;
    std::uint64_t frames_dropped_loss = 0;
    std::uint64_t frames_dropped_blackout = 0;
    std::uint64_t delay_spikes = 0;
};

[[nodiscard]] TrialResult run_trial(const Scenario& scenario, const SoakOptions& options);

// Greedy delta-debugging over the active impairment dimensions: repeatedly
// drop any dimension whose removal keeps the trial failing, until a fixed
// point. Returns the minimal scenario; `steps` (if non-null) receives the
// number of re-runs spent.
[[nodiscard]] Scenario shrink(const Scenario& failing, const SoakOptions& options,
                              int* steps = nullptr);

} // namespace sttcp::fuzz
