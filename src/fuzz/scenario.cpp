#include "fuzz/scenario.hpp"

#include <sstream>

#include "sim/random.hpp"

namespace sttcp::fuzz {

namespace {

// Salt for the scenario-sampling stream: the simulation itself is seeded
// with the raw trial seed, so the sampler must draw from a different
// sequence or scenario shape and network randomness would be correlated.
constexpr std::uint64_t kScenarioSalt = 0x9e3779b97f4a7c15ULL;

double uniform_in(sim::Random& rng, double lo, double hi) {
    return lo + rng.uniform01() * (hi - lo);
}

sim::Duration millis_in(sim::Random& rng, std::int64_t lo, std::int64_t hi) {
    return sim::milliseconds{rng.range(lo, hi)};
}

// Topologies with complete packet logging, where impairing the tap itself
// (loss or blackout toward the backup's NIC) is survivable: any tapped byte
// the backup misses is recoverable from the logger at takeover, and a
// tap-side false suspicion is converted into a clean takeover by fencing.
// kSwitchMirror's SPAN session is occupied by the backup (no full logger)
// and kChain runs two backups without one, so both rely on primary
// retention alone — the fuzzer leaves their taps clean.
bool tap_impairable(Topology t) {
    return t == Topology::kHub || t == Topology::kSwitchMulticast || t == Topology::kNoSpof;
}

} // namespace

const char* dim_name(Dim d) {
    switch (d) {
        case Dim::kUniformLoss: return "uniform-loss";
        case Dim::kBurstLoss: return "burst-loss";
        case Dim::kDuplication: return "duplication";
        case Dim::kCorruption: return "corruption";
        case Dim::kJitter: return "jitter";
        case Dim::kDelaySpikes: return "delay-spikes";
        case Dim::kBlackout: return "blackout";
        case Dim::kBandwidthFlap: return "bandwidth-flap";
        case Dim::kTapLoss: return "tap-loss";
        case Dim::kCount: break;
    }
    return "?";
}

const char* topology_name(Topology t) {
    switch (t) {
        case Topology::kHub: return "hub";
        case Topology::kSwitchMirror: return "switch-mirror";
        case Topology::kSwitchMulticast: return "switch-multicast";
        case Topology::kNoSpof: return "nospof";
        case Topology::kChain: return "chain";
    }
    return "?";
}

Scenario Scenario::sample(std::uint64_t seed) {
    sim::Random rng{seed ^ kScenarioSalt};
    Scenario s;
    s.seed = seed;

    // Topology, weighted toward the paper's hub testbed.
    std::uint64_t t = rng.uniform(100);
    if (t < 30) s.topology = Topology::kHub;
    else if (t < 48) s.topology = Topology::kSwitchMirror;
    else if (t < 66) s.topology = Topology::kSwitchMulticast;
    else if (t < 84) s.topology = Topology::kNoSpof;
    else s.topology = Topology::kChain;

    // Workload.
    switch (rng.uniform(4)) {
        case 0: s.workload = app::Workload::echo(); break;
        case 1: s.workload = app::Workload::interactive(); break;
        case 2:
            s.workload = app::Workload{"bulk-soak", 1,
                                       static_cast<std::uint32_t>(rng.range(256, 768)) * 1024, 0};
            break;
        default:
            s.workload = app::Workload::upload_kb(static_cast<std::uint32_t>(rng.range(32, 96)), 2);
            break;
    }

    // Protocol knobs (paper §4.3, §6).
    constexpr std::int64_t hb_choices[] = {25, 50, 100};
    s.hb_interval = sim::milliseconds{hb_choices[rng.uniform(3)]};
    s.sync_time = sim::milliseconds{rng.uniform(2) == 0 ? 25 : 50};
    constexpr std::size_t ack_choices[] = {0, 4096, 16384};
    s.ack_threshold_bytes = ack_choices[rng.uniform(3)];
    s.fencing_latency = millis_in(rng, 1, 15);

    // Crash schedule.
    s.crash_primary = rng.bernoulli(0.7);
    s.crash_primary_at = millis_in(rng, 200, 2000);
    s.crash_promoted = rng.bernoulli(0.5);
    s.crash_promoted_at = s.crash_primary_at + millis_in(rng, 600, 1500);
    if (s.topology != Topology::kChain || !s.crash_primary) s.crash_promoted = false;

    // Active dimensions: each independently, ~45%.
    for (std::size_t d = 0; d < kDimCount; ++d)
        if (rng.bernoulli(0.45)) s.dims.set(d);

    // Per-dimension parameters — ALWAYS sampled, in a fixed order, so the
    // shrinker can clear dimension bits without perturbing anything else.
    s.uniform_loss = uniform_in(rng, 0.01, 0.10);
    s.ge_p_enter_bad = uniform_in(rng, 0.005, 0.04);
    s.ge_p_exit_bad = uniform_in(rng, 0.15, 0.5);
    s.ge_loss_bad = uniform_in(rng, 0.3, 0.9);
    s.dup_probability = uniform_in(rng, 0.01, 0.12);
    s.corrupt_probability = uniform_in(rng, 0.005, 0.04);
    s.corrupt_max_bits = static_cast<int>(rng.range(1, 4));
    // The soak checks byte-exactness, so it must only inflict corruption the
    // protocol CAN detect. A single flipped bit always changes the Internet
    // checksum (a lone ±2^k never cancels); two or more flips can compensate
    // (same bit index, opposite directions, even byte distance) and slip
    // through every checksum — real silent corruption à la Stone &
    // Partridge, but not a protocol bug. The draw above is kept (and
    // clamped) so seed→scenario mapping stays stable for every other field;
    // multi-bit corruption remains available to targeted engine tests.
    s.corrupt_max_bits = 1;
    s.jitter = millis_in(rng, 1, 20);
    s.spike_probability = uniform_in(rng, 0.002, 0.02);
    s.spike_delay = millis_in(rng, 30, 120);
    std::uint64_t target = rng.uniform(3);
    s.blackout_at = millis_in(rng, 150, 1500);
    s.blackout_len = millis_in(rng, 80, 1000);
    double control_hb_factor = uniform_in(rng, 0.5, 2.2);
    s.bw_factor = uniform_in(rng, 0.2, 0.6);
    s.bw_flap_at = millis_in(rng, 100, 1200);
    s.bw_restore_after = millis_in(rng, 200, 1200);
    s.tap_loss = uniform_in(rng, 0.02, 0.20);

    // Blackout target. A control-channel blackout must stay below the
    // 3-heartbeat suspicion deadline on BOTH ends: longer and primary and
    // backup would each suspect — and fence — the other (mutual fencing =
    // designed total outage, not a bug the soak should report). Tap-directed
    // blackouts may exceed the deadline: only the backup goes blind, and the
    // resulting one-sided suspicion becomes a legitimate takeover.
    s.blackout_target = static_cast<BlackoutTarget>(target);
    if (s.blackout_target == BlackoutTarget::kTap && !tap_impairable(s.topology))
        s.blackout_target = BlackoutTarget::kClientLink;
    if (s.blackout_target == BlackoutTarget::kControlChannel)
        s.blackout_len = std::chrono::duration_cast<sim::Duration>(
            s.hb_interval * control_hb_factor);

    if (!tap_impairable(s.topology)) s.clear(Dim::kTapLoss);

    return s;
}

std::string Scenario::dims_csv() const {
    std::string out;
    for (std::size_t d = 0; d < kDimCount; ++d) {
        if (!dims.test(d)) continue;
        if (!out.empty()) out += ',';
        out += dim_name(static_cast<Dim>(d));
    }
    return out.empty() ? "none" : out;
}

std::string Scenario::describe() const {
    std::ostringstream os;
    os << "seed=" << seed << " topo=" << topology_name(topology) << " wl=" << workload.name
       << " hb=" << sim::to_seconds(hb_interval) * 1e3 << "ms"
       << " sync=" << sim::to_seconds(sync_time) * 1e3 << "ms"
       << " ackX=" << ack_threshold_bytes;
    if (crash_primary)
        os << " crash@" << sim::to_seconds(crash_primary_at) << "s";
    if (crash_promoted)
        os << " crash2@" << sim::to_seconds(crash_promoted_at) << "s";
    os << " dims=[" << dims_csv() << "]";
    if (has(Dim::kBlackout)) {
        const char* tgt = blackout_target == BlackoutTarget::kClientLink ? "client"
                          : blackout_target == BlackoutTarget::kTap      ? "tap"
                                                                         : "control";
        os << " blackout=" << tgt << "@" << sim::to_seconds(blackout_at) << "s+"
           << sim::to_seconds(blackout_len) << "s";
    }
    return os.str();
}

std::optional<std::bitset<kDimCount>> parse_dims(const std::string& csv) {
    std::bitset<kDimCount> mask;
    if (csv == "none") return mask;
    std::stringstream ss{csv};
    std::string item;
    while (std::getline(ss, item, ',')) {
        bool found = false;
        for (std::size_t d = 0; d < kDimCount; ++d) {
            if (item == dim_name(static_cast<Dim>(d))) {
                mask.set(d);
                found = true;
                break;
            }
        }
        if (!found) return std::nullopt;
    }
    return mask;
}

} // namespace sttcp::fuzz
