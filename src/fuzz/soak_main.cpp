// sttcp_soak — seeded chaos-soak fuzzer for the ST-TCP stack.
//
//   sttcp_soak --trials 200 --seed-base 1     # soak: N seeds, stop on failure
//   sttcp_soak --seed 42                      # replay one trial verbatim
//   sttcp_soak --seed 42 --dims burst-loss    # replay with a reduced dim set
//   sttcp_soak --demo-failure                 # prove the failure pipeline:
//                                             #   find a failing trial, replay
//                                             #   it from its seed, shrink it
//
// Every trial is a pure function of its seed: the printed `--seed N` line IS
// the reproducer. Exit status: 0 = all green, 1 = invariant violation (or a
// broken failure pipeline under --demo-failure), 2 = usage error.
#include <array>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "check/audit.hpp"
#include "fuzz/shard.hpp"
#include "fuzz/soak.hpp"

namespace {

using namespace sttcp;
using namespace sttcp::fuzz;

struct CliOptions {
    std::uint64_t trials = 100;
    std::uint64_t seed_base = 1;
    bool have_single_seed = false;
    std::uint64_t single_seed = 0;
    bool demo_failure = false;
    bool trace = false;
    bool no_shrink = false;
    bool verbose = false;
    unsigned jobs = 1;
    sim::EventQueue::Backend backend = sim::EventQueue::Backend::kWheel;
    std::optional<std::bitset<kDimCount>> dims_mask;
};

void print_usage(std::ostream& os) {
    os << "usage: sttcp_soak [--trials N] [--seed-base S] [--seed S] [--dims csv]\n"
          "                  [--jobs N] [--backend wheel|heap]\n"
          "                  [--demo-failure] [--no-shrink] [--verbose] [--trace]\n";
}

void print_failure(const Scenario& sc, const TrialResult& r) {
    std::cout << "\nFAIL " << sc.describe() << "\n  " << r.failure << "\n  observed:"
              << " completed=" << r.completed << " bytes=" << r.bytes_received
              << " failover=" << r.failover_happened
              << " pre-takeover-egress=" << r.pre_takeover_backup_tcp_frames
              << " audit=" << r.audit_violations << "\n"
              << "  REPRODUCE: sttcp_soak --seed " << sc.seed << "\n";
}

// Shrinks a failing scenario and prints the minimal reproducer; returns the
// minimal scenario.
Scenario shrink_and_report(const Scenario& sc, const SoakOptions& opts) {
    int steps = 0;
    Scenario minimal = shrink(sc, opts, &steps);
    std::cout << "  shrunk (" << steps << " re-runs): " << sc.dims.count() << " -> "
              << minimal.dims.count() << " active dimension(s): [" << minimal.dims_csv()
              << "]\n"
              << "  MINIMAL: sttcp_soak --seed " << minimal.seed << " --dims "
              << minimal.dims_csv() << "\n";
    return minimal;
}

struct Coverage {
    std::uint64_t passed = 0;
    std::array<std::uint64_t, kDimCount> dim_active{};
    std::array<std::uint64_t, 5> topo{};
    std::uint64_t crashes = 0;
    std::uint64_t failovers = 0;
    std::uint64_t corrupted = 0, duplicated = 0, dropped_loss = 0, dropped_blackout = 0,
                  spikes = 0;

    void record(const Scenario& sc, const TrialResult& r) {
        if (r.passed) ++passed;
        for (std::size_t d = 0; d < kDimCount; ++d)
            if (sc.dims.test(d)) ++dim_active[d];
        ++topo[static_cast<std::size_t>(sc.topology)];
        if (sc.crash_primary) ++crashes;
        if (r.failover_happened) ++failovers;
        corrupted += r.frames_corrupted;
        duplicated += r.frames_duplicated;
        dropped_loss += r.frames_dropped_loss;
        dropped_blackout += r.frames_dropped_blackout;
        spikes += r.delay_spikes;
    }

    void print(std::uint64_t trials) const {
        std::cout << "\n" << passed << "/" << trials << " trials passed\n";
        std::cout << "topologies:";
        constexpr std::array<Topology, 5> all = {Topology::kHub, Topology::kSwitchMirror,
                                                 Topology::kSwitchMulticast, Topology::kNoSpof,
                                                 Topology::kChain};
        for (Topology t : all)
            std::cout << " " << topology_name(t) << "=" << topo[static_cast<std::size_t>(t)];
        std::cout << "\ndimensions:";
        for (std::size_t d = 0; d < kDimCount; ++d)
            std::cout << " " << dim_name(static_cast<Dim>(d)) << "=" << dim_active[d];
        std::cout << "\ncrash trials: " << crashes << ", failovers observed: " << failovers
                  << "\ninflicted: lost=" << dropped_loss << " blackout=" << dropped_blackout
                  << " duplicated=" << duplicated << " corrupted=" << corrupted
                  << " delay-spikes=" << spikes << "\n";
        if (!check::kEnabled)
            std::cout << "note: runtime auditor compiled out (STTCP_AUDIT=0)\n";
    }
};

Scenario sample_with_mask(std::uint64_t seed, const CliOptions& cli) {
    Scenario sc = Scenario::sample(seed);
    if (cli.dims_mask) sc.dims &= *cli.dims_mask;
    return sc;
}

// Consumes one finished trial: coverage, verbose line, and on failure the
// full report + shrink. Shared by the sequential and sharded batch paths so
// their observable output is identical by construction. Returns false when
// the batch must stop (first failure).
bool consume_trial(const CliOptions& cli, const SoakOptions& opts, Coverage& cov,
                   std::uint64_t index, const Scenario& sc, const TrialResult& r) {
    cov.record(sc, r);
    if (cli.verbose)
        std::cout << (r.passed ? "ok   " : "FAIL ") << sc.describe() << " ("
                  << r.virtual_seconds << "s virtual)\n";
    if (!r.passed) {
        print_failure(sc, r);
        if (!cli.no_shrink) (void)shrink_and_report(sc, opts);
        cov.print(index + 1);
        return false;
    }
    return true;
}

// Shards trials across worker threads via ShardedTrialRunner (fuzz/shard.hpp).
// The main thread consumes results strictly in seed order, so stdout,
// coverage accounting and the stop-on-first-failure cut are byte-identical
// to --jobs 1. Shrinking reruns trials on the main thread only.
int run_batch_sharded(const CliOptions& cli, const SoakOptions& opts) {
    ShardedTrialRunner runner(
        cli.trials, cli.jobs,
        [&cli](std::uint64_t i) { return sample_with_mask(cli.seed_base + i, cli); }, opts);

    int rc = 0;
    Coverage cov;
    for (std::uint64_t i = 0; i < cli.trials; ++i) {
        ShardedTrialRunner::Done done = runner.wait(i);
        if (!consume_trial(cli, opts, cov, i, done.sc, done.r)) {
            rc = 1;
            break;
        }
    }
    runner.stop();
    if (rc == 0) cov.print(cli.trials);
    return rc;
}

int run_batch(const CliOptions& cli, const SoakOptions& opts) {
    if (cli.jobs > 1) return run_batch_sharded(cli, opts);
    Coverage cov;
    for (std::uint64_t i = 0; i < cli.trials; ++i) {
        Scenario sc = sample_with_mask(cli.seed_base + i, cli);
        TrialResult r = run_trial(sc, opts);
        if (!consume_trial(cli, opts, cov, i, sc, r)) return 1;
    }
    cov.print(cli.trials);
    return 0;
}

int run_single(const CliOptions& cli, const SoakOptions& opts) {
    Scenario sc = sample_with_mask(cli.single_seed, cli);
    std::cout << sc.describe() << "\n";
    TrialResult r = run_trial(sc, opts);
    if (r.passed) {
        std::cout << "ok (" << r.virtual_seconds << "s virtual"
                  << (r.failover_happened ? ", failover" : "") << ")\n";
        return 0;
    }
    print_failure(sc, r);
    if (!cli.no_shrink) (void)shrink_and_report(sc, opts);
    return 1;
}

// End-to-end proof that the failure pipeline works: plant a deliberately
// failing invariant (any corrupted frame fails the trial), then require that
// (a) a failure is found, (b) its seed replays to the identical failure, and
// (c) the shrinker reduces it to at most 2 active dimensions.
int run_demo(const CliOptions& cli, SoakOptions opts) {
    opts.demo_fail_on_corruption = true;
    constexpr std::uint64_t kMaxSearch = 500;
    for (std::uint64_t i = 0; i < kMaxSearch; ++i) {
        std::uint64_t seed = cli.seed_base + i;
        Scenario sc = sample_with_mask(seed, cli);
        TrialResult r = run_trial(sc, opts);
        if (r.passed) continue;

        print_failure(sc, r);
        TrialResult replay = run_trial(sc, opts);
        if (replay.passed || replay.failure != r.failure) {
            std::cout << "demo: REPLAY DIVERGED — got \""
                      << (replay.passed ? "pass" : replay.failure) << "\"\n";
            return 1;
        }
        std::cout << "  replay of seed " << seed << ": identical failure — deterministic\n";

        Scenario minimal = shrink_and_report(sc, opts);
        if (minimal.dims.count() > 2) {
            std::cout << "demo: shrinker left " << minimal.dims.count()
                      << " dimensions (> 2)\n";
            return 1;
        }
        TrialResult min_run = run_trial(minimal, opts);
        if (min_run.passed) {
            std::cout << "demo: minimal scenario does not fail\n";
            return 1;
        }
        std::cout << "demo failure pipeline verified (search + replay + shrink)\n";
        return 0;
    }
    std::cout << "demo: no failing trial found in " << kMaxSearch << " seeds\n";
    return 1;
}

} // namespace

int main(int argc, char** argv) {
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next_u64 = [&](std::uint64_t& out) {
            if (i + 1 >= argc) return false;
            out = std::stoull(argv[++i]);
            return true;
        };
        if (arg == "--trials") {
            if (!next_u64(cli.trials)) { print_usage(std::cerr); return 2; }
        } else if (arg == "--seed-base") {
            if (!next_u64(cli.seed_base)) { print_usage(std::cerr); return 2; }
        } else if (arg == "--seed") {
            if (!next_u64(cli.single_seed)) { print_usage(std::cerr); return 2; }
            cli.have_single_seed = true;
        } else if (arg == "--dims") {
            if (i + 1 >= argc) { print_usage(std::cerr); return 2; }
            cli.dims_mask = parse_dims(argv[++i]);
            if (!cli.dims_mask) {
                std::cerr << "unknown dimension in --dims\n";
                return 2;
            }
        } else if (arg == "--jobs") {
            std::uint64_t jobs = 0;
            if (!next_u64(jobs) || jobs == 0) { print_usage(std::cerr); return 2; }
            cli.jobs = static_cast<unsigned>(jobs);
        } else if (arg == "--backend") {
            if (i + 1 >= argc) { print_usage(std::cerr); return 2; }
            std::string which = argv[++i];
            if (which == "wheel") {
                cli.backend = sim::EventQueue::Backend::kWheel;
            } else if (which == "heap") {
                cli.backend = sim::EventQueue::Backend::kHeap;
            } else {
                std::cerr << "unknown backend: " << which << "\n";
                return 2;
            }
        } else if (arg == "--trace") {
            cli.trace = true;
        } else if (arg == "--demo-failure") {
            cli.demo_failure = true;
        } else if (arg == "--no-shrink") {
            cli.no_shrink = true;
        } else if (arg == "--verbose") {
            cli.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            print_usage(std::cout);
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            print_usage(std::cerr);
            return 2;
        }
    }

    SoakOptions opts;
    opts.trace_client_link = cli.trace;
    opts.backend = cli.backend;
    if (cli.demo_failure) return run_demo(cli, opts);
    if (cli.have_single_seed) return run_single(cli, opts);
    return run_batch(cli, opts);
}
