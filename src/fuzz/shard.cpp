#include "fuzz/shard.hpp"

#include <utility>

namespace sttcp::fuzz {

ShardedTrialRunner::ShardedTrialRunner(std::uint64_t trials, unsigned jobs,
                                       Sampler sampler, const SoakOptions& opts)
    : trials_(trials), sampler_(std::move(sampler)), opts_(opts), results_(trials) {
    pool_.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) {
        pool_.emplace_back([this] { worker(); });
    }
}

ShardedTrialRunner::~ShardedTrialRunner() { stop(); }

void ShardedTrialRunner::worker() {
    while (!stop_.load(std::memory_order_relaxed)) {
        std::uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= trials_) return;
        Scenario sc = sampler_(i);
        TrialResult r = run_trial(sc, opts_);
        {
            std::lock_guard<std::mutex> lock(mu_);
            results_[i] = Done{std::move(sc), std::move(r)};
        }
        cv_.notify_one();
    }
}

ShardedTrialRunner::Done ShardedTrialRunner::wait(std::uint64_t index) {
    std::unique_lock<std::mutex> lock(mu_);
    // lint:allow guarded-by -- the cv wait predicate runs with mu_ held
    cv_.wait(lock, [&] { return results_[index].has_value(); });
    Done done = std::move(*results_[index]);
    results_[index].reset();
    return done;
}

void ShardedTrialRunner::stop() {
    stop_.store(true, std::memory_order_relaxed);
    for (std::thread& t : pool_) {
        if (t.joinable()) t.join();
    }
    pool_.clear();
}

} // namespace sttcp::fuzz
