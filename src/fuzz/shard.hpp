// ShardedTrialRunner — fans a batch of seeded soak trials out across worker
// threads while the consumer sees results strictly in seed order.
//
// Each trial is a pure function of its seed (its own Simulation, EventQueue
// and RNG; per-thread auditor counters and buffer pools), so workers never
// share mutable state — only finished TrialResults flow back through the
// mutex-guarded results table. Consuming in seed order makes stdout,
// coverage accounting and the stop-on-first-failure cut byte-identical to a
// single-threaded run; workers that raced ahead of a failure have their
// results discarded.
//
// The members below carry `guarded_by` annotations checked by the
// staticcheck guarded-by dataflow rule (DESIGN.md §12.3); the build-tsan CI
// profile re-checks the same discipline dynamically under ThreadSanitizer.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "fuzz/soak.hpp"

namespace sttcp::fuzz {

class ShardedTrialRunner {
public:
    // A finished trial: the sampled scenario and its result.
    struct Done {
        Scenario sc;
        TrialResult r;
    };

    // Samples trial `index`'s scenario; must be pure (called from workers).
    using Sampler = std::function<Scenario(std::uint64_t index)>;

    // Starts `jobs` workers over `trials` seeds. `sampler` and `opts` must
    // outlive the runner.
    ShardedTrialRunner(std::uint64_t trials, unsigned jobs, Sampler sampler,
                       const SoakOptions& opts);
    ~ShardedTrialRunner();

    ShardedTrialRunner(const ShardedTrialRunner&) = delete;
    ShardedTrialRunner& operator=(const ShardedTrialRunner&) = delete;

    // Blocks until trial `index` has finished and returns it. Call with
    // strictly increasing indices starting at 0; each result is handed out
    // once.
    [[nodiscard]] Done wait(std::uint64_t index);

    // Asks workers to stop after their current trial and joins them.
    // Idempotent; the destructor calls it too.
    void stop();

private:
    void worker();

    const std::uint64_t trials_;
    const Sampler sampler_;
    const SoakOptions& opts_;
    std::atomic<std::uint64_t> next_{0};
    std::atomic<bool> stop_{false};
    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::optional<Done>> results_;  // guarded_by(mu_)

    // Touched only by the constructor and stop() on the owning thread.
    std::vector<std::thread> pool_;
};

} // namespace sttcp::fuzz
