#include "fuzz/soak.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <functional>
#include <utility>
#include <vector>

#include "app/client_driver.hpp"
#include "app/responder.hpp"
#include "check/audit.hpp"
#include "harness/chain_testbed.hpp"
#include "harness/nospof_testbed.hpp"
#include "harness/switch_testbed.hpp"
#include "harness/testbed.hpp"
#include "net/frame_trace.hpp"
#include "net/ipv4.hpp"

namespace sttcp::fuzz {

namespace {

constexpr std::uint16_t kServicePort = 8000;

// The links a scenario's impairments land on, per topology.
struct TapRef {
    net::Link* link = nullptr;
    const net::FrameEndpoint* nic = nullptr;  // direction: into the backup
};
struct Instruments {
    net::Link* client = nullptr;   // generic dims + client blackouts + bw flap
    net::Link* control = nullptr;  // primary's link: control-channel blackouts
    std::vector<TapRef> taps;      // tap loss / tap blackouts

    [[nodiscard]] std::vector<net::Link*> counted() const {
        std::vector<net::Link*> out{client, control};
        for (const TapRef& t : taps) out.push_back(t.link);
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        return out;
    }
};

// Wire-silence probe: counts TCP frames a backup puts on its link before it
// has taken over (must stay 0 — paper §4.1 output suppression).
struct EgressWatch {
    net::Link* link = nullptr;
    net::MacAddress mac;             // the backup NIC whose egress is policed
    std::function<bool()> allowed;   // true once takeover makes egress legal
};

harness::TestbedOptions make_options(const Scenario& sc, const SoakOptions& opts,
                                     bool with_logger) {
    harness::TestbedOptions o;
    o.seed = sc.seed;
    o.backend = opts.backend;
    o.sttcp.hb_interval = sc.hb_interval;
    o.sttcp.sync_time = sc.sync_time;
    o.sttcp.ack_threshold_bytes = sc.ack_threshold_bytes;
    o.fencing_latency = sc.fencing_latency;
    o.with_packet_logger = with_logger;
    // The soak oracle is transparency (every byte exact), not client
    // patience: under sampled loss+corruption the default Linux-ish retry
    // budgets (6 SYN retransmits ≈ 127 s) can legitimately be exhausted —
    // a plain-TCP client would give up identically, so that outcome says
    // nothing about ST-TCP. Give the soak client a much deeper budget and
    // let the virtual time limit bound truly wedged trials instead.
    o.tcp.max_syn_retransmits = 12;
    o.tcp.max_retransmits = 24;
    return o;
}

void apply_impairments(sim::Simulation& sim, const Instruments& ins, const Scenario& sc) {
    net::ImpairmentConfig imp;
    if (sc.has(Dim::kUniformLoss)) imp.loss = sc.uniform_loss;
    if (sc.has(Dim::kBurstLoss)) {
        imp.gilbert_elliott = true;
        imp.ge_p_enter_bad = sc.ge_p_enter_bad;
        imp.ge_p_exit_bad = sc.ge_p_exit_bad;
        imp.ge_loss_bad = sc.ge_loss_bad;
    }
    if (sc.has(Dim::kDuplication)) imp.duplicate = sc.dup_probability;
    if (sc.has(Dim::kCorruption)) {
        imp.corrupt = sc.corrupt_probability;
        imp.corrupt_max_bits = sc.corrupt_max_bits;
    }
    if (sc.has(Dim::kJitter)) imp.jitter = sc.jitter;
    if (sc.has(Dim::kDelaySpikes)) {
        imp.spike = sc.spike_probability;
        imp.spike_delay = sc.spike_delay;
    }
    ins.client->set_impairments(imp);

    if (sc.has(Dim::kTapLoss)) {
        net::ImpairmentConfig tap;
        tap.loss = sc.tap_loss;
        for (const TapRef& t : ins.taps) t.link->set_impairments_toward(*t.nic, tap);
    }

    if (sc.has(Dim::kBlackout)) {
        sim::TimePoint from = sim.now() + sc.blackout_at;
        switch (sc.blackout_target) {
            case BlackoutTarget::kClientLink:
                ins.client->schedule_blackout(from, sc.blackout_len);
                break;
            case BlackoutTarget::kTap:
                for (const TapRef& t : ins.taps)
                    t.link->schedule_blackout_toward(*t.nic, from, sc.blackout_len);
                break;
            case BlackoutTarget::kControlChannel:
                ins.control->schedule_blackout(from, sc.blackout_len);
                break;
        }
    }

    if (sc.has(Dim::kBandwidthFlap)) {
        net::Link* link = ins.client;
        double orig = link->config().bandwidth_bps;
        sim.schedule_after(sc.bw_flap_at,
                           [link, orig, f = sc.bw_factor] { link->set_bandwidth_bps(orig * f); });
        sim.schedule_after(sc.bw_flap_at + sc.bw_restore_after,
                           [link, orig] { link->set_bandwidth_bps(orig); });
    }
}

// Builds the client driver, applies the chaos schedule, runs to completion
// or the virtual-time limit, and collects the raw observations. Crash hooks
// are supplied by the per-topology caller (null = dimension not present).
TrialResult run_common(sim::Simulation& sim, tcp::HostStack& client_stack,
                       net::Ipv4Address service_ip, const Scenario& sc,
                       const SoakOptions& opts, const Instruments& ins,
                       const std::vector<EgressWatch>& watches,
                       const std::function<void()>& crash_primary,
                       const std::function<void()>& crash_promoted) {
    TrialResult r;
    apply_impairments(sim, ins, sc);

    std::optional<net::FrameTrace> trace;
    if (opts.trace_client_link) {
        trace.emplace(sim);
        trace->attach(*ins.client, "client");
    }

    std::uint64_t egress = 0;
    for (const EgressWatch& w : watches) {
        w.link->set_observer([mac = w.mac, allowed = w.allowed, &egress](
                                 const net::EthernetFrame& f, const net::FrameEndpoint&) {
            if (f.src != mac || f.type != net::EtherType::kIpv4 || allowed()) return;
            try {
                if (net::Ipv4Packet::parse(f.payload.view()).proto == net::IpProto::kTcp)
                    ++egress;
            } catch (const std::exception&) {
                // Unparseable = corrupted in transit, not backup egress.
            }
        });
    }

    if (sc.crash_primary && crash_primary) sim.schedule_after(sc.crash_primary_at, crash_primary);
    if (sc.crash_promoted && crash_promoted)
        sim.schedule_after(sc.crash_promoted_at, crash_promoted);

    app::ClientDriver driver{client_stack, service_ip, kServicePort, sc.workload};
    bool done = false;
    driver.start([&done] { done = true; });
    sim::TimePoint limit = sim.now() + opts.time_limit;
    while (!done && sim.now() < limit)
        sim.run_until(std::min(limit, sim.now() + sim::milliseconds{100}));

    const auto& cr = driver.result();
    r.completed = cr.completed;
    r.client_failure = cr.failed ? cr.failure_reason : (cr.completed ? "" : "virtual time limit");
    r.bytes_received = cr.bytes_received;
    r.verify_errors = cr.verify_errors;
    for (const auto& e : cr.first_verify_errors) {
        if (!r.verify_detail.empty()) r.verify_detail += ", ";
        char buf[96];
        std::snprintf(buf, sizeof buf, "round %u off %llu want %02x got %02x", e.round,
                      static_cast<unsigned long long>(e.offset), e.expected, e.got);
        r.verify_detail += buf;
    }
    r.virtual_seconds = sim::to_seconds(sim.now());
    r.events_executed = sim.queue().executed();
    r.event_order_digest = sim.queue().order_digest();
    r.pre_takeover_backup_tcp_frames = egress;
    for (net::Link* link : ins.counted()) {
        const auto& s = link->stats();
        r.frames_corrupted += s.frames_corrupted;
        r.frames_duplicated += s.frames_duplicated;
        r.frames_dropped_loss += s.frames_dropped_loss;
        r.frames_dropped_blackout += s.frames_dropped_blackout;
        r.delay_spikes += s.delay_spikes;
    }
    for (const EgressWatch& w : watches) w.link->set_observer({});
    return r;
}

TrialResult run_hub(const Scenario& sc, const SoakOptions& opts) {
    harness::HubTestbed bed{make_options(sc, opts, /*with_logger=*/true)};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(kServicePort);
    auto bl = bed.st_backup->listen(kServicePort);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    Instruments ins;
    ins.client = bed.client_link;
    ins.control = bed.primary_link;
    ins.taps = {{bed.backup_link, bed.backup_nic.get()}};
    std::vector<EgressWatch> watches{{bed.backup_link, bed.backup_nic->mac(),
                                      [&b = *bed.st_backup] { return b.has_taken_over(); }}};
    TrialResult r = run_common(bed.sim, *bed.client, bed.service_ip(), sc, opts, ins, watches,
                               [&bed] { bed.crash_primary(); }, nullptr);
    r.failover_happened = bed.st_backup->has_taken_over();
    return r;
}

TrialResult run_switch(const Scenario& sc, const SoakOptions& opts, harness::TapMode mode) {
    bool multicast = mode == harness::TapMode::kMulticastMac;
    harness::SwitchTestbed bed{make_options(sc, opts, /*with_logger=*/multicast), mode};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(kServicePort);
    auto bl = bed.st_backup->listen(kServicePort);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    Instruments ins;
    ins.client = bed.wan_link.get();
    ins.control = &bed.ether_switch.link_at(bed.primary_port);
    if (multicast)  // mirror's tap dims are masked off at sampling time
        ins.taps = {{&bed.ether_switch.link_at(bed.backup_port), bed.backup_nic.get()}};
    std::vector<EgressWatch> watches{{&bed.ether_switch.link_at(bed.backup_port),
                                      bed.backup_nic->mac(),
                                      [&b = *bed.st_backup] { return b.has_taken_over(); }}};
    TrialResult r = run_common(bed.sim, *bed.client, bed.service_ip(), sc, opts, ins, watches,
                               [&bed] { bed.crash_primary(); }, nullptr);
    r.failover_happened = bed.st_backup->has_taken_over();
    return r;
}

TrialResult run_nospof(const Scenario& sc, const SoakOptions& opts) {
    harness::NoSpofTestbed bed{make_options(sc, opts, /*with_logger=*/false)};
    app::ResponderApp papp, bapp;
    auto pl = bed.st_primary->listen(kServicePort);
    auto bl = bed.st_backup->listen(kServicePort);
    papp.attach(*pl);
    bapp.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    Instruments ins;
    ins.client = bed.wan_client_link;
    ins.control = bed.primary_nic_a->link();
    ins.taps = {{bed.backup_nic_a->link(), bed.backup_nic_a.get()},
                {bed.backup_nic_b->link(), bed.backup_nic_b.get()}};
    auto allowed = [&b = *bed.st_backup] { return b.has_taken_over(); };
    std::vector<EgressWatch> watches{
        {bed.backup_nic_a->link(), bed.backup_nic_a->mac(), allowed},
        {bed.backup_nic_b->link(), bed.backup_nic_b->mac(), allowed}};
    TrialResult r = run_common(bed.sim, *bed.client, bed.service_ip(), sc, opts, ins, watches,
                               [&bed] { bed.crash_primary(); }, nullptr);
    r.failover_happened = bed.st_backup->has_taken_over();
    return r;
}

TrialResult run_chain(const Scenario& sc, const SoakOptions& opts) {
    harness::ChainTestbed bed{make_options(sc, opts, /*with_logger=*/false)};
    app::ResponderApp papp, b1app, b2app;
    auto pl = bed.st_primary->listen(kServicePort);
    auto bl1 = bed.st_backup1->listen(kServicePort);
    auto bl2 = bed.st_backup2->listen(kServicePort);
    papp.attach(*pl);
    b1app.attach(*bl1);
    b2app.attach(*bl2);
    bed.st_primary->start();
    bed.st_backup1->start();
    bed.st_backup2->start();

    Instruments ins;
    ins.client = bed.client_nic->link();
    ins.control = bed.primary_nic->link();
    std::vector<EgressWatch> watches{
        {bed.backup1_nic->link(), bed.backup1_nic->mac(),
         [&b = *bed.st_backup1] { return b.has_taken_over(); }},
        {bed.backup2_nic->link(), bed.backup2_nic->mac(),
         [&b = *bed.st_backup2] { return b.has_taken_over(); }}};
    TrialResult r = run_common(bed.sim, *bed.client, bed.service_ip(), sc, opts, ins, watches,
                               [&bed] { bed.crash_primary(); }, [&bed] { bed.crash_backup1(); });
    r.failover_happened =
        bed.st_backup1->has_taken_over() || bed.st_backup2->has_taken_over();
    return r;
}

} // namespace

TrialResult run_trial(const Scenario& scenario, const SoakOptions& options) {
    std::uint64_t audit_before = check::Audit::violation_count();
    TrialResult r;
    switch (scenario.topology) {
        case Topology::kHub: r = run_hub(scenario, options); break;
        case Topology::kSwitchMirror:
            r = run_switch(scenario, options, harness::TapMode::kPortMirror);
            break;
        case Topology::kSwitchMulticast:
            r = run_switch(scenario, options, harness::TapMode::kMulticastMac);
            break;
        case Topology::kNoSpof: r = run_nospof(scenario, options); break;
        case Topology::kChain: r = run_chain(scenario, options); break;
    }
    r.audit_violations = check::Audit::violation_count() - audit_before;

    std::string fail;
    auto add = [&fail](const std::string& m) {
        if (!fail.empty()) fail += "; ";
        fail += m;
    };
    std::uint64_t expected =
        std::uint64_t{scenario.workload.rounds} * scenario.workload.response_size;
    if (!r.completed) {
        add("client did not complete (" + r.client_failure + ")");
    } else {
        if (r.verify_errors != 0)
            add("response verify errors: " + std::to_string(r.verify_errors) +
                (r.verify_detail.empty() ? "" : " (" + r.verify_detail + ")"));
        if (r.bytes_received != expected)
            add("byte count mismatch: got " + std::to_string(r.bytes_received) + ", want " +
                std::to_string(expected));
    }
    if (r.pre_takeover_backup_tcp_frames != 0)
        add("backup TCP egress before takeover: " +
            std::to_string(r.pre_takeover_backup_tcp_frames) + " frame(s)");
    if (r.audit_violations != 0)
        add("auditor violations: " + std::to_string(r.audit_violations));
    if (options.demo_fail_on_corruption && scenario.has(Dim::kCorruption) &&
        r.frames_corrupted > 0)
        add("demo invariant: " + std::to_string(r.frames_corrupted) +
            " corrupted frame(s) on the wire");

    r.passed = fail.empty();
    r.failure = std::move(fail);
    return r;
}

Scenario shrink(const Scenario& failing, const SoakOptions& options, int* steps) {
    Scenario current = failing;
    int spent = 0;
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t d = 0; d < kDimCount; ++d) {
            if (!current.dims.test(d)) continue;
            Scenario candidate = current;
            candidate.dims.reset(d);
            ++spent;
            if (!run_trial(candidate, options).passed) {
                current = candidate;  // still fails without this dimension
                progress = true;
            }
        }
    }
    if (steps) *steps = spent;
    return current;
}

} // namespace sttcp::fuzz
