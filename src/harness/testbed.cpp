#include "harness/testbed.hpp"

// lint:allow-file this-capture -- the testbed owns every engine the
// fencer/logger-query callbacks are handed to, and tears them down (in
// reverse order) before it is destroyed; the captures cannot dangle.

namespace sttcp::harness {

HubTestbed::HubTestbed(TestbedOptions opts)
    : sim(opts.seed, opts.backend),
      hub(sim, "hub"),
      power(sim, opts.fencing_latency),
      options(opts) {
    client_node = std::make_unique<net::Node>("client");
    primary_node = std::make_unique<net::Node>("primary");
    backup_node = std::make_unique<net::Node>("backup");
    client_nic = std::make_unique<net::Nic>(*client_node, "eth0", net::MacAddress::local(10));
    primary_nic = std::make_unique<net::Nic>(*primary_node, "eth0", net::MacAddress::local(2));
    backup_nic = std::make_unique<net::Nic>(*backup_node, "eth0", net::MacAddress::local(3));

    net::LinkConfig server_link_cfg;
    server_link_cfg.bandwidth_bps = opts.server_bandwidth_bps;
    server_link_cfg.propagation = opts.propagation;
    net::LinkConfig client_link_cfg = server_link_cfg;
    client_link_cfg.bandwidth_bps = opts.client_bandwidth_bps;

    this->client_link = &hub.connect(*client_nic, client_link_cfg);
    this->primary_link = &hub.connect(*primary_nic, server_link_cfg);
    this->backup_link = &hub.connect(*backup_nic, server_link_cfg);
    if (opts.client_link_loss > 0) {
        net::ImpairmentConfig imp;
        imp.loss = opts.client_link_loss;
        this->client_link->set_impairments(imp);
    }
    if (opts.tap_loss > 0) {
        net::ImpairmentConfig imp;
        imp.loss = opts.tap_loss;
        this->backup_link->set_impairments_toward(*backup_nic, imp);
    }

    client = std::make_unique<tcp::HostStack>(sim, *client_node, opts.tcp);
    primary = std::make_unique<tcp::HostStack>(sim, *primary_node, opts.tcp);
    backup = std::make_unique<tcp::HostStack>(sim, *backup_node, opts.tcp);

    client->add_interface(*client_nic, client_ip(), 24);
    std::size_t primary_if = primary->add_interface(*primary_nic, primary_ip(), 24);
    backup->add_interface(*backup_nic, backup_ip(), 24);

    // The primary serves the virtual service IP.
    primary->add_ip_alias(primary_if, service_ip());

    power.manage(*primary_node);
    power.manage(*backup_node);

    if (opts.fault_tolerant) {
        // The backup taps the hub promiscuously (paper §6 testbed).
        backup_nic->set_promiscuous(true);

        core::SttcpPrimary::Options popts;
        popts.config = opts.sttcp;
        popts.service_ip = service_ip();
        popts.backup_ips = {backup_ip()};
        st_primary = std::make_unique<core::SttcpPrimary>(*primary, popts);
        st_primary->set_fencer([this](net::Ipv4Address, std::function<void()> done) {
            power.power_off("backup", std::move(done));
        });

        st_backup = std::make_unique<core::SttcpBackup>(
            *backup, core::SttcpBackup::Options::single(opts.sttcp, service_ip(),
                                                        primary_ip(), backup_ip()));
        st_backup->set_fencer([this](net::Ipv4Address, std::function<void()> done) {
            power.power_off("primary", std::move(done));
        });
    }

    if (opts.with_packet_logger) {
        logger_node = std::make_unique<net::Node>("logger");
        logger_nic = std::make_unique<net::Nic>(*logger_node, "eth0", net::MacAddress::local(9));
        hub.connect(*logger_nic, server_link_cfg);
        packet_logger = std::make_unique<net::PacketLogger>(sim, *logger_node);
        packet_logger->attach(*logger_nic);
        if (st_backup) {
            st_backup->set_logger_query([this](const core::ConnId& id, util::Seq32 begin,
                                               util::Seq32 end) {
                return packet_logger->find_tcp_range(id.client_ip, id.server_ip,
                                                     id.client_port, id.server_port, begin,
                                                     end);
            });
        }
    }
}

} // namespace sttcp::harness
