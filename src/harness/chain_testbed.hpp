// Replica-chain testbed: the paper's "one or more backup servers" (§3).
//
// Hub LAN with a client, a primary, and TWO ranked backups, all tapping.
// Failure of the primary promotes backup 1 to a full ST-TCP primary (it
// starts serving backup 2's acks/recovery and heartbeats); failure of
// backup 1 then promotes backup 2 — the service survives k = 2 faults.
#pragma once

#include <memory>

#include "harness/testbed.hpp"

namespace sttcp::harness {

class ChainTestbed {
public:
    explicit ChainTestbed(TestbedOptions options);

    [[nodiscard]] net::Ipv4Address service_ip() const { return {10, 0, 0, 100}; }
    [[nodiscard]] net::Ipv4Address client_ip() const { return {10, 0, 0, 10}; }
    [[nodiscard]] net::Ipv4Address primary_ip() const { return {10, 0, 0, 2}; }
    [[nodiscard]] net::Ipv4Address backup1_ip() const { return {10, 0, 0, 3}; }
    [[nodiscard]] net::Ipv4Address backup2_ip() const { return {10, 0, 0, 4}; }

    void crash_primary() { primary_node->power_off(); }
    void crash_backup1() { backup1_node->power_off(); }
    void crash_backup2() { backup2_node->power_off(); }

    sim::Simulation sim;
    net::Hub hub;
    net::PowerSwitch power;

    std::unique_ptr<net::Node> client_node;
    std::unique_ptr<net::Node> primary_node;
    std::unique_ptr<net::Node> backup1_node;
    std::unique_ptr<net::Node> backup2_node;
    std::unique_ptr<net::Nic> client_nic;
    std::unique_ptr<net::Nic> primary_nic;
    std::unique_ptr<net::Nic> backup1_nic;
    std::unique_ptr<net::Nic> backup2_nic;

    std::unique_ptr<tcp::HostStack> client;
    std::unique_ptr<tcp::HostStack> primary;
    std::unique_ptr<tcp::HostStack> backup1;
    std::unique_ptr<tcp::HostStack> backup2;

    std::unique_ptr<core::SttcpPrimary> st_primary;
    std::unique_ptr<core::SttcpBackup> st_backup1;
    std::unique_ptr<core::SttcpBackup> st_backup2;

    TestbedOptions options;
};

} // namespace sttcp::harness
