// Canned simulated topologies reproducing the paper's experimental setups.
//
// HubTestbed — the §6 testbed: client, primary and backup "placed on the
// same LAN using a 10/100 Mbit Ethernet hub. Since the hub broadcasts all
// traffic on all ports, the backup can tap into all of the primary's network
// traffic." A controllable power switch fences suspected machines.
//
// Link parameters are calibrated so the *absolute* failure-free numbers land
// in the same ballpark as the paper's 2003 hardware (800 MHz Athlons, a
// laptop client, Linux 2.2): the client's effective throughput in the paper
// is ~13 Mbit/s on bulk transfers and an Echo round trip is ~9 ms. We model
// this with a 14 Mbit/s client link and 2 ms one-way propagation + hub
// store-and-forward; the server links run at 100 Mbit/s. The comparisons
// the paper makes (ST-TCP vs standard TCP; failover vs HB interval) are
// insensitive to this calibration.
#pragma once

#include <memory>
#include <optional>

#include "net/hub.hpp"
#include "net/nic.hpp"
#include "net/node.hpp"
#include "net/packet_logger.hpp"
#include "net/power_switch.hpp"
#include "sim/simulation.hpp"
#include "sttcp/backup.hpp"
#include "sttcp/primary.hpp"
#include "tcp/host_stack.hpp"

namespace sttcp::harness {

struct TestbedOptions {
    std::uint64_t seed = 1;
    // Scheduler backend for the testbed's Simulation. The heap backend is
    // kept as a determinism oracle: cross-backend tests run the same trial
    // under both and compare EventQueue::order_digest().
    sim::EventQueue::Backend backend = sim::EventQueue::Backend::kWheel;
    tcp::TcpConfig tcp;
    core::SttcpConfig sttcp;
    // false = baseline: a standard TCP server on the primary, no backup
    // machinery at all (the paper's "Standard TCP" rows).
    bool fault_tolerant = true;
    bool with_packet_logger = false;

    // Paper-calibrated link parameters (see file comment).
    double server_bandwidth_bps = 100e6;
    double client_bandwidth_bps = 14e6;
    sim::Duration propagation = sim::milliseconds{2};
    double client_link_loss = 0.0;
    // Loss applied only to frames flowing *into the backup's NIC* — models
    // the backup's IP stack dropping tapped packets (paper §4.2's
    // "IP-buffer overflow" scenario) without disturbing the real flow.
    double tap_loss = 0.0;

    sim::Duration fencing_latency = sim::milliseconds{5};
};

class HubTestbed {
public:
    explicit HubTestbed(TestbedOptions options = {});

    // Addresses.
    [[nodiscard]] net::Ipv4Address service_ip() const { return {10, 0, 0, 100}; }
    [[nodiscard]] net::Ipv4Address client_ip() const { return {10, 0, 0, 10}; }
    [[nodiscard]] net::Ipv4Address primary_ip() const { return {10, 0, 0, 2}; }
    [[nodiscard]] net::Ipv4Address backup_ip() const { return {10, 0, 0, 3}; }

    // Crash the primary (pulls the plug — crash failure semantics).
    void crash_primary() { primary_node->power_off(); }
    void crash_backup() { backup_node->power_off(); }

    [[nodiscard]] net::Link* client_side_link() const { return client_link; }

    sim::Simulation sim;
    net::Hub hub;
    net::PowerSwitch power;

    // Hub links, for tap-loss injection and frame observation in tests.
    net::Link* client_link = nullptr;
    net::Link* primary_link = nullptr;
    net::Link* backup_link = nullptr;

    std::unique_ptr<net::Node> client_node;
    std::unique_ptr<net::Node> primary_node;
    std::unique_ptr<net::Node> backup_node;
    std::unique_ptr<net::Nic> client_nic;
    std::unique_ptr<net::Nic> primary_nic;
    std::unique_ptr<net::Nic> backup_nic;

    std::unique_ptr<tcp::HostStack> client;
    std::unique_ptr<tcp::HostStack> primary;
    std::unique_ptr<tcp::HostStack> backup;

    // Null when options.fault_tolerant is false.
    std::unique_ptr<core::SttcpPrimary> st_primary;
    std::unique_ptr<core::SttcpBackup> st_backup;

    // Optional logger appliance on the LAN (double-failure masking, §3.2).
    std::unique_ptr<net::Node> logger_node;
    std::unique_ptr<net::Nic> logger_nic;
    std::unique_ptr<net::PacketLogger> packet_logger;

    TestbedOptions options;
};

} // namespace sttcp::harness
