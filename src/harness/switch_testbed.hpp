// Switched-Ethernet testbed (paper §3.1, Figure 2).
//
// "In recent years most Ethernet installations have been converted to
// switched Ethernet... This prevents a backup node from tapping the traffic
// of the primary node." The paper offers two tap architectures, both built
// here:
//
//   kPortMirror    — a managed switch forwards all traffic entering/leaving
//                    the primary's port to the backup's port; the backup NIC
//                    runs promiscuous.
//   kMulticastMac  — the service IP (SVI) is statically ARP-mapped to a
//                    fixed *multicast* Ethernet address (SME) at the
//                    gateway, and a gateway virtual IP (GVI) to a multicast
//                    GME at the primary, so the switch floods both traffic
//                    directions and the backup receives them by joining the
//                    two groups. Static mapping is required because RFC 1812
//                    forbids routers from accepting multicast MACs in ARP
//                    replies (enforced by net::ArpTable::learn).
//
// Topology: client --- gateway(WAN/LAN) --- switch --- {primary, backup,
// logger?}. The client reaches the service across the gateway, as in the
// paper's deployment sketch.
#pragma once

#include <memory>

#include "harness/testbed.hpp"
#include "net/switch.hpp"

namespace sttcp::harness {

enum class TapMode {
    kPortMirror,
    kMulticastMac,
};

class SwitchTestbed {
public:
    explicit SwitchTestbed(TestbedOptions options, TapMode tap_mode);

    [[nodiscard]] net::Ipv4Address service_ip() const { return {10, 0, 0, 100}; }
    [[nodiscard]] net::Ipv4Address gateway_virtual_ip() const { return {10, 0, 0, 99}; }
    [[nodiscard]] net::Ipv4Address gateway_lan_ip() const { return {10, 0, 0, 1}; }
    [[nodiscard]] net::Ipv4Address gateway_wan_ip() const { return {192, 168, 1, 1}; }
    [[nodiscard]] net::Ipv4Address client_ip() const { return {192, 168, 1, 10}; }
    [[nodiscard]] net::Ipv4Address primary_ip() const { return {10, 0, 0, 2}; }
    [[nodiscard]] net::Ipv4Address backup_ip() const { return {10, 0, 0, 3}; }

    // The fixed multicast Ethernet addresses of the paper's scheme.
    [[nodiscard]] static net::MacAddress sme() { return net::MacAddress::multicast(100); }
    [[nodiscard]] static net::MacAddress gme() { return net::MacAddress::multicast(99); }

    void crash_primary() { primary_node->power_off(); }
    void crash_backup() { backup_node->power_off(); }

    // The link whose traffic the client actually experiences (for overhead
    // accounting), mirroring HubTestbed's client_link.
    [[nodiscard]] net::Link* client_side_link() const { return wan_link.get(); }

    sim::Simulation sim;
    net::Switch ether_switch;
    net::PowerSwitch power;
    TapMode tap_mode;

    std::unique_ptr<net::Node> client_node;
    std::unique_ptr<net::Node> gateway_node;
    std::unique_ptr<net::Node> primary_node;
    std::unique_ptr<net::Node> backup_node;

    std::unique_ptr<net::Nic> client_nic;
    std::unique_ptr<net::Nic> gateway_wan_nic;
    std::unique_ptr<net::Nic> gateway_lan_nic;
    std::unique_ptr<net::Nic> primary_nic;
    std::unique_ptr<net::Nic> backup_nic;

    std::unique_ptr<net::Link> wan_link;  // client <-> gateway

    std::unique_ptr<tcp::HostStack> client;
    std::unique_ptr<tcp::HostStack> gateway;
    std::unique_ptr<tcp::HostStack> primary;
    std::unique_ptr<tcp::HostStack> backup;

    std::unique_ptr<core::SttcpPrimary> st_primary;
    std::unique_ptr<core::SttcpBackup> st_backup;

    std::unique_ptr<net::Node> logger_node;
    std::unique_ptr<net::Nic> logger_nic;
    std::unique_ptr<net::PacketLogger> packet_logger;

    std::size_t primary_port = 0;
    std::size_t backup_port = 0;
    std::size_t gateway_port = 0;

    TestbedOptions options;
};

} // namespace sttcp::harness
