#include "harness/experiment.hpp"

#include "harness/nospof_testbed.hpp"
#include "harness/switch_testbed.hpp"

namespace sttcp::harness {

namespace {

// Generic over the testbed shape: HubTestbed and SwitchTestbed expose the
// same member names (sim, client/primary stacks, st_primary/st_backup,
// service_ip(), crash_*(), client_side_link()).
template <typename Bed>
ExperimentResult run_on(Bed& bed, const ExperimentConfig& config) {
    ExperimentResult result;

    // Server application: identical deterministic responder on primary and
    // backup (the backup's instance runs with suppressed output).
    app::ResponderApp primary_app;
    app::ResponderApp backup_app;

    std::shared_ptr<tcp::TcpListener> primary_listener;
    std::shared_ptr<tcp::TcpListener> backup_listener;
    if (bed.st_primary) {
        primary_listener = bed.st_primary->listen(config.service_port);
        backup_listener = bed.st_backup->listen(config.service_port);
        primary_app.attach(*primary_listener);
        backup_app.attach(*backup_listener);
        bed.st_primary->start();
        bed.st_backup->start();

        bed.st_backup->set_on_failover(
            [&](sim::TimePoint suspected, sim::TimePoint done) {
                result.failover_happened = true;
                result.suspected_after_seconds =
                    sim::to_seconds(suspected) - result.crash_at_seconds;
                result.takeover_after_seconds =
                    sim::to_seconds(done) - result.crash_at_seconds;
            });
    } else {
        primary_listener = bed.primary->tcp_listen(config.service_port);
        primary_app.attach(*primary_listener);
    }

    app::ClientDriver driver{*bed.client, bed.service_ip(), config.service_port,
                             config.workload};
    bool done = false;
    driver.start([&]() { done = true; });

    if (config.crash_primary_at) {
        bed.sim.schedule_after(*config.crash_primary_at, [&]() {
            result.crash_at_seconds = sim::to_seconds(bed.sim.now());
            bed.crash_primary();
        });
    }
    if (config.crash_backup_at) {
        bed.sim.schedule_after(*config.crash_backup_at, [&]() { bed.crash_backup(); });
    }

    sim::TimePoint limit = bed.sim.now() + config.time_limit;
    while (!done && bed.sim.now() < limit) {
        bed.sim.run_until(std::min(limit, bed.sim.now() + sim::milliseconds{100}));
    }

    const auto& r = driver.result();
    result.completed = r.completed;
    result.failure_reason = r.failed ? r.failure_reason : (r.completed ? "" : "time limit");
    result.total_seconds = r.completed ? r.total_seconds() : sim::to_seconds(limit - r.started_at);
    result.bytes_received = r.bytes_received;
    result.verify_errors = r.verify_errors;
    if (bed.st_backup) result.backup_stats = bed.st_backup->stats();
    if (bed.st_primary) result.primary_stats = bed.st_primary->stats();
    result.backup_stack_stats = bed.backup->stats();
    result.primary_app_stats = primary_app.stats();
    result.backup_app_stats = backup_app.stats();
    if (bed.st_primary && bed.st_backup) {
        const auto& p = bed.st_primary->control_channel_stats();
        const auto& b = bed.st_backup->control_channel_stats();
        result.control_channel_bytes = p.bytes_sent + b.bytes_sent;
        result.control_channel_datagrams = p.datagrams_sent + b.datagrams_sent;
    }
    result.client_link_wire_bytes = bed.client_side_link()->stats().bytes_delivered;
    return result;
}

} // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
    HubTestbed bed{config.testbed};
    return run_on(bed, config);
}

ExperimentResult run_switch_experiment(const ExperimentConfig& config, TapMode tap_mode) {
    SwitchTestbed bed{config.testbed, tap_mode};
    return run_on(bed, config);
}

ExperimentResult run_nospof_experiment(const ExperimentConfig& config) {
    NoSpofTestbed bed{config.testbed};
    return run_on(bed, config);
}

} // namespace sttcp::harness
