// Single-experiment runner: one workload run on the paper's testbed, with
// optional primary-crash injection — the building block for every table and
// figure in §6.
#pragma once

#include <optional>

#include "app/client_driver.hpp"
#include "app/responder.hpp"
#include "harness/testbed.hpp"

namespace sttcp::harness {

struct ExperimentConfig {
    TestbedOptions testbed;
    app::Workload workload = app::Workload::echo();
    std::uint16_t service_port = 8000;
    // Crash the primary this long after the client starts (virtual time).
    std::optional<sim::Duration> crash_primary_at;
    std::optional<sim::Duration> crash_backup_at;
    sim::Duration time_limit = sim::minutes{30};
};

struct ExperimentResult {
    bool completed = false;
    std::string failure_reason;
    double total_seconds = 0;       // client start -> last response byte
    std::uint64_t bytes_received = 0;
    std::uint64_t verify_errors = 0;

    bool failover_happened = false;
    double crash_at_seconds = 0;        // when the primary was killed
    double suspected_after_seconds = 0;  // crash -> detector suspicion
    double takeover_after_seconds = 0;   // crash -> takeover complete

    // Component stats snapshots for deeper assertions/reports.
    core::SttcpBackup::Stats backup_stats;
    core::SttcpPrimary::Stats primary_stats;
    tcp::HostStack::Stats backup_stack_stats;
    app::ResponderApp::Stats primary_app_stats;
    app::ResponderApp::Stats backup_app_stats;

    // Traffic accounting (for the §4.3 control-channel overhead analysis).
    std::uint64_t control_channel_bytes = 0;    // UDP payload, both directions
    std::uint64_t control_channel_datagrams = 0;
    std::uint64_t client_link_wire_bytes = 0;   // everything the client link carried
};

// Builds the testbed, wires the responder application to the primary (and
// backup, when fault-tolerant), runs the client workload to completion or
// the time limit, and reports timings.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

// Same experiment on the switched-Ethernet topology (paper §3.1, Figure 2)
// with the chosen tap architecture.
enum class TapMode;
[[nodiscard]] ExperimentResult run_switch_experiment(const ExperimentConfig& config,
                                                     TapMode tap_mode);

// Same experiment on the fully replicated Figure-3 architecture (dual
// switches, dual inline loggers, dual gateways, dual-homed servers).
[[nodiscard]] ExperimentResult run_nospof_experiment(const ExperimentConfig& config);

} // namespace sttcp::harness
