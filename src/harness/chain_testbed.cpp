#include "harness/chain_testbed.hpp"

// lint:allow-file this-capture -- the testbed owns every engine the
// fencer/logger-query callbacks are handed to, and tears them down (in
// reverse order) before it is destroyed; the captures cannot dangle.

namespace sttcp::harness {

ChainTestbed::ChainTestbed(TestbedOptions opts)
    : sim(opts.seed, opts.backend),
      hub(sim, "hub"),
      power(sim, opts.fencing_latency),
      options(opts) {
    client_node = std::make_unique<net::Node>("client");
    primary_node = std::make_unique<net::Node>("primary");
    backup1_node = std::make_unique<net::Node>("backup1");
    backup2_node = std::make_unique<net::Node>("backup2");
    client_nic = std::make_unique<net::Nic>(*client_node, "eth0", net::MacAddress::local(10));
    primary_nic = std::make_unique<net::Nic>(*primary_node, "eth0", net::MacAddress::local(2));
    backup1_nic = std::make_unique<net::Nic>(*backup1_node, "eth0", net::MacAddress::local(3));
    backup2_nic = std::make_unique<net::Nic>(*backup2_node, "eth0", net::MacAddress::local(4));

    net::LinkConfig server_link;
    server_link.bandwidth_bps = opts.server_bandwidth_bps;
    server_link.propagation = opts.propagation;
    net::LinkConfig client_link = server_link;
    client_link.bandwidth_bps = opts.client_bandwidth_bps;

    hub.connect(*client_nic, client_link);
    hub.connect(*primary_nic, server_link);
    hub.connect(*backup1_nic, server_link);
    hub.connect(*backup2_nic, server_link);

    client = std::make_unique<tcp::HostStack>(sim, *client_node, opts.tcp);
    primary = std::make_unique<tcp::HostStack>(sim, *primary_node, opts.tcp);
    backup1 = std::make_unique<tcp::HostStack>(sim, *backup1_node, opts.tcp);
    backup2 = std::make_unique<tcp::HostStack>(sim, *backup2_node, opts.tcp);

    client->add_interface(*client_nic, client_ip(), 24);
    std::size_t primary_if = primary->add_interface(*primary_nic, primary_ip(), 24);
    backup1->add_interface(*backup1_nic, backup1_ip(), 24);
    backup2->add_interface(*backup2_nic, backup2_ip(), 24);
    primary->add_ip_alias(primary_if, service_ip());
    backup1_nic->set_promiscuous(true);
    backup2_nic->set_promiscuous(true);

    power.manage(*primary_node);
    power.manage(*backup1_node);
    power.manage(*backup2_node);

    // ip -> power-switch name, shared by every fencer.
    auto fence = [this](net::Ipv4Address ip, std::function<void()> done) {
        std::string name = ip == primary_ip()   ? "primary"
                           : ip == backup1_ip() ? "backup1"
                                                : "backup2";
        power.power_off(name, std::move(done));
    };

    std::vector<net::Ipv4Address> members = {primary_ip(), backup1_ip(), backup2_ip()};

    core::SttcpPrimary::Options popts;
    popts.config = opts.sttcp;
    popts.service_ip = service_ip();
    popts.backup_ips = {backup1_ip(), backup2_ip()};
    st_primary = std::make_unique<core::SttcpPrimary>(*primary, popts);
    st_primary->set_fencer(fence);

    core::SttcpBackup::Options b1;
    b1.config = opts.sttcp;
    b1.service_ip = service_ip();
    b1.members = members;
    b1.self_index = 1;
    st_backup1 = std::make_unique<core::SttcpBackup>(*backup1, b1);
    st_backup1->set_fencer(fence);

    core::SttcpBackup::Options b2;
    b2.config = opts.sttcp;
    b2.service_ip = service_ip();
    b2.members = members;
    b2.self_index = 2;
    st_backup2 = std::make_unique<core::SttcpBackup>(*backup2, b2);
    st_backup2->set_fencer(fence);
}

} // namespace sttcp::harness
