#include "harness/switch_testbed.hpp"

// lint:allow-file this-capture -- the testbed owns every engine the
// fencer/logger-query callbacks are handed to, and tears them down (in
// reverse order) before it is destroyed; the captures cannot dangle.

namespace sttcp::harness {

SwitchTestbed::SwitchTestbed(TestbedOptions opts, TapMode mode)
    : sim(opts.seed, opts.backend),
      ether_switch(sim, "sw0"),
      power(sim, opts.fencing_latency),
      tap_mode(mode),
      options(opts) {
    client_node = std::make_unique<net::Node>("client");
    gateway_node = std::make_unique<net::Node>("gateway");
    primary_node = std::make_unique<net::Node>("primary");
    backup_node = std::make_unique<net::Node>("backup");

    client_nic = std::make_unique<net::Nic>(*client_node, "eth0", net::MacAddress::local(10));
    gateway_wan_nic =
        std::make_unique<net::Nic>(*gateway_node, "wan0", net::MacAddress::local(21));
    gateway_lan_nic =
        std::make_unique<net::Nic>(*gateway_node, "lan0", net::MacAddress::local(22));
    primary_nic = std::make_unique<net::Nic>(*primary_node, "eth0", net::MacAddress::local(2));
    backup_nic = std::make_unique<net::Nic>(*backup_node, "eth0", net::MacAddress::local(3));

    net::LinkConfig lan_link;
    lan_link.bandwidth_bps = opts.server_bandwidth_bps;
    lan_link.propagation = opts.propagation;
    net::LinkConfig client_link = lan_link;
    client_link.bandwidth_bps = opts.client_bandwidth_bps;

    // WAN side: point-to-point client <-> gateway.
    wan_link = std::make_unique<net::Link>(sim, client_link);
    wan_link->attach(*client_nic, *gateway_wan_nic);
    if (opts.client_link_loss > 0) {
        net::ImpairmentConfig imp;
        imp.loss = opts.client_link_loss;
        wan_link->set_impairments(imp);
    }

    // LAN side: everything hangs off the switch.
    gateway_port = ether_switch.connect(*gateway_lan_nic, lan_link);
    primary_port = ether_switch.connect(*primary_nic, lan_link);
    backup_port = ether_switch.connect(*backup_nic, lan_link);
    if (opts.tap_loss > 0) {
        net::ImpairmentConfig imp;
        imp.loss = opts.tap_loss;
        ether_switch.link_at(backup_port).set_impairments_toward(*backup_nic, imp);
    }

    client = std::make_unique<tcp::HostStack>(sim, *client_node, opts.tcp);
    gateway = std::make_unique<tcp::HostStack>(sim, *gateway_node, opts.tcp);
    primary = std::make_unique<tcp::HostStack>(sim, *primary_node, opts.tcp);
    backup = std::make_unique<tcp::HostStack>(sim, *backup_node, opts.tcp);

    client->add_interface(*client_nic, client_ip(), 24);
    client->set_default_gateway(gateway_wan_ip());
    gateway->add_interface(*gateway_wan_nic, gateway_wan_ip(), 24);
    std::size_t gw_lan_if = gateway->add_interface(*gateway_lan_nic, gateway_lan_ip(), 24);
    gateway->set_ip_forwarding(true);
    std::size_t primary_if = primary->add_interface(*primary_nic, primary_ip(), 24);
    backup->add_interface(*backup_nic, backup_ip(), 24);

    primary->add_ip_alias(primary_if, service_ip());

    power.manage(*primary_node);
    power.manage(*backup_node);

    switch (mode) {
        case TapMode::kPortMirror:
            // Managed-switch SPAN: everything to/from the primary's port is
            // copied to the backup's port; the backup listens promiscuously.
            ether_switch.set_mirror(primary_port, backup_port);
            backup_nic->set_promiscuous(true);
            primary->set_default_gateway(gateway_lan_ip());
            backup->set_default_gateway(gateway_lan_ip());
            break;

        case TapMode::kMulticastMac: {
            // Gateway VNIC: GVI with multicast GME; service VNIC: SVI with
            // multicast SME (paper Figure 2).
            gateway->add_ip_alias(gw_lan_if, gateway_virtual_ip());
            gateway_lan_nic->join_multicast(gme());
            // Static mapping SVI -> SME in the gateway ARP table: client
            // traffic to the service floods the switch.
            gateway->arp_table().add_static(service_ip(), sme());

            // Primary accepts the service multicast and routes replies via
            // the gateway's virtual IP, statically mapped to GME.
            primary_nic->join_multicast(sme());
            primary->set_default_gateway(gateway_virtual_ip());
            primary->arp_table().add_static(gateway_virtual_ip(), gme());

            // Backup taps both directions by joining both groups; no
            // promiscuous mode needed on a switched network.
            backup_nic->join_multicast(sme());
            backup_nic->join_multicast(gme());
            backup->set_default_gateway(gateway_virtual_ip());
            backup->arp_table().add_static(gateway_virtual_ip(), gme());
            break;
        }
    }

    if (opts.fault_tolerant) {
        core::SttcpPrimary::Options popts;
        popts.config = opts.sttcp;
        popts.service_ip = service_ip();
        popts.backup_ips = {backup_ip()};
        st_primary = std::make_unique<core::SttcpPrimary>(*primary, popts);
        st_primary->set_fencer([this](net::Ipv4Address, std::function<void()> done) {
            power.power_off("backup", std::move(done));
        });

        st_backup = std::make_unique<core::SttcpBackup>(
            *backup, core::SttcpBackup::Options::single(opts.sttcp, service_ip(),
                                                        primary_ip(), backup_ip()));
        st_backup->set_fencer([this](net::Ipv4Address, std::function<void()> done) {
            power.power_off("primary", std::move(done));
        });
    }

    if (opts.with_packet_logger) {
        // Logger appliance on the switch. In multicast mode it joins both
        // groups; in mirror mode the single SPAN session is occupied by the
        // backup, so the logger sees only flooded frames (document/limit:
        // full logging on a switch requires the paper's inline placement,
        // Figure 3).
        logger_node = std::make_unique<net::Node>("logger");
        logger_nic = std::make_unique<net::Nic>(*logger_node, "eth0", net::MacAddress::local(9));
        ether_switch.connect(*logger_nic, lan_link);
        if (mode == TapMode::kMulticastMac) {
            logger_nic->join_multicast(sme());
            logger_nic->join_multicast(gme());
        }
        packet_logger = std::make_unique<net::PacketLogger>(sim, *logger_node);
        packet_logger->attach(*logger_nic);
        if (st_backup) {
            st_backup->set_logger_query([this](const core::ConnId& id, util::Seq32 begin,
                                               util::Seq32 end) {
                return packet_logger->find_tcp_range(id.client_ip, id.server_ip,
                                                     id.client_port, id.server_port, begin,
                                                     end);
            });
        }
    }
}

} // namespace sttcp::harness
