#include "harness/nospof_testbed.hpp"

// lint:allow-file this-capture -- the testbed owns every engine the
// fencer/logger-query callbacks are handed to, and tears them down (in
// reverse order) before it is destroyed; the captures cannot dangle.

namespace sttcp::harness {

NoSpofTestbed::NoSpofTestbed(TestbedOptions opts)
    : sim(opts.seed, opts.backend),
      switch_a(sim, "swA"),
      switch_b(sim, "swB"),
      wan(sim, "wan"),
      power(sim, opts.fencing_latency),
      options(opts) {
    client_node = std::make_unique<net::Node>("client");
    gwa_node = std::make_unique<net::Node>("gatewayA");
    gwb_node = std::make_unique<net::Node>("gatewayB");
    primary_node = std::make_unique<net::Node>("primary");
    backup_node = std::make_unique<net::Node>("backup");
    logger_a_node = std::make_unique<net::Node>("loggerA");
    logger_b_node = std::make_unique<net::Node>("loggerB");

    client_nic = std::make_unique<net::Nic>(*client_node, "eth0", net::MacAddress::local(10));
    gwa_wan_nic = std::make_unique<net::Nic>(*gwa_node, "wan0", net::MacAddress::local(21));
    gwa_lan_nic = std::make_unique<net::Nic>(*gwa_node, "lan0", net::MacAddress::local(22));
    gwb_wan_nic = std::make_unique<net::Nic>(*gwb_node, "wan0", net::MacAddress::local(23));
    gwb_lan_nic = std::make_unique<net::Nic>(*gwb_node, "lan0", net::MacAddress::local(24));
    primary_nic_a = std::make_unique<net::Nic>(*primary_node, "ethA", net::MacAddress::local(2));
    primary_nic_b = std::make_unique<net::Nic>(*primary_node, "ethB", net::MacAddress::local(4));
    backup_nic_a = std::make_unique<net::Nic>(*backup_node, "ethA", net::MacAddress::local(3));
    backup_nic_b = std::make_unique<net::Nic>(*backup_node, "ethB", net::MacAddress::local(5));

    net::LinkConfig lan_link;
    lan_link.bandwidth_bps = opts.server_bandwidth_bps;
    lan_link.propagation = opts.propagation;
    net::LinkConfig client_link = lan_link;
    client_link.bandwidth_bps = opts.client_bandwidth_bps;

    // WAN segment: client and both gateways.
    wan_client_link = &wan.connect(*client_nic, client_link);
    if (opts.client_link_loss > 0) {
        net::ImpairmentConfig imp;
        imp.loss = opts.client_link_loss;
        wan_client_link->set_impairments(imp);
    }
    wan.connect(*gwa_wan_nic, lan_link);
    wan.connect(*gwb_wan_nic, lan_link);

    // Rail A: switch A <-> logger A <-> gateway A; primary/backup NIC-A.
    logger_a = std::make_unique<net::InlineLogger>(sim, *logger_a_node);
    switch_a.connect(logger_a->side_a(), lan_link);
    logger_gwa_link = std::make_unique<net::Link>(sim, lan_link);
    logger_gwa_link->attach(logger_a->side_b(), *gwa_lan_nic);
    switch_a.connect(*primary_nic_a, lan_link);
    std::size_t backup_port_a = switch_a.connect(*backup_nic_a, lan_link);
    if (opts.tap_loss > 0) {
        net::ImpairmentConfig imp;
        imp.loss = opts.tap_loss;
        switch_a.link_at(backup_port_a).set_impairments_toward(*backup_nic_a, imp);
    }

    // Rail B: switch B <-> logger B <-> gateway B; primary/backup NIC-B.
    logger_b = std::make_unique<net::InlineLogger>(sim, *logger_b_node);
    switch_b.connect(logger_b->side_a(), lan_link);
    logger_gwb_link = std::make_unique<net::Link>(sim, lan_link);
    logger_gwb_link->attach(logger_b->side_b(), *gwb_lan_nic);
    switch_b.connect(*primary_nic_b, lan_link);
    std::size_t backup_port_b = switch_b.connect(*backup_nic_b, lan_link);
    if (opts.tap_loss > 0) {
        net::ImpairmentConfig imp;
        imp.loss = opts.tap_loss;
        switch_b.link_at(backup_port_b).set_impairments_toward(*backup_nic_b, imp);
    }

    // Stacks.
    client = std::make_unique<tcp::HostStack>(sim, *client_node, opts.tcp);
    gwa = std::make_unique<tcp::HostStack>(sim, *gwa_node, opts.tcp);
    gwb = std::make_unique<tcp::HostStack>(sim, *gwb_node, opts.tcp);
    primary = std::make_unique<tcp::HostStack>(sim, *primary_node, opts.tcp);
    backup = std::make_unique<tcp::HostStack>(sim, *backup_node, opts.tcp);

    client->add_interface(*client_nic, client_ip(), 24);
    client->set_default_gateway(net::Ipv4Address{192, 168, 1, 1});

    gwa->add_interface(*gwa_wan_nic, net::Ipv4Address{192, 168, 1, 1}, 24);
    std::size_t gwa_lan_if = gwa->add_interface(*gwa_lan_nic, net::Ipv4Address{10, 0, 1, 1}, 24);
    gwa->add_ip_alias(gwa_lan_if, gwa_virtual_ip());
    gwa->set_ip_forwarding(true);
    // The static unicast-IP -> multicast-MAC mapping that floods client
    // traffic to primary AND backup (paper §3.1).
    gwa->arp_table().add_static(service_ip(), sme());

    gwb->add_interface(*gwb_wan_nic, net::Ipv4Address{192, 168, 1, 2}, 24);
    std::size_t gwb_lan_if = gwb->add_interface(*gwb_lan_nic, net::Ipv4Address{10, 0, 2, 1}, 24);
    gwb->add_ip_alias(gwb_lan_if, gwb_virtual_ip());
    gwb_lan_nic->join_multicast(gme_b());
    gwb->set_ip_forwarding(true);

    std::size_t primary_if_a = primary->add_interface(*primary_nic_a, primary_ip(), 24);
    primary->add_interface(*primary_nic_b, net::Ipv4Address{10, 0, 2, 2}, 24);
    primary->add_ip_alias(primary_if_a, service_ip());
    primary_nic_a->join_multicast(sme());
    primary->set_default_gateway(gwb_virtual_ip());
    primary->arp_table().add_static(gwb_virtual_ip(), gme_b());

    backup->add_interface(*backup_nic_a, backup_ip(), 24);
    backup->add_interface(*backup_nic_b, net::Ipv4Address{10, 0, 2, 3}, 24);
    backup_nic_a->join_multicast(sme());    // tap: client -> server (rail A)
    backup_nic_b->join_multicast(gme_b());  // tap: server -> client (rail B)
    backup->set_default_gateway(gwb_virtual_ip());
    backup->arp_table().add_static(gwb_virtual_ip(), gme_b());

    power.manage(*primary_node);
    power.manage(*backup_node);

    if (opts.fault_tolerant) {
        core::SttcpPrimary::Options popts;
        popts.config = opts.sttcp;
        popts.service_ip = service_ip();
        popts.backup_ips = {backup_ip()};
        st_primary = std::make_unique<core::SttcpPrimary>(*primary, popts);
        st_primary->set_fencer([this](net::Ipv4Address, std::function<void()> done) {
            power.power_off("backup", std::move(done));
        });

        // The SVI lives on rail A (iface 0).
        st_backup = std::make_unique<core::SttcpBackup>(
            *backup, core::SttcpBackup::Options::single(opts.sttcp, service_ip(),
                                                        primary_ip(), backup_ip()));
        st_backup->set_fencer([this](net::Ipv4Address, std::function<void()> done) {
            power.power_off("primary", std::move(done));
        });

        // Double-failure masking consults BOTH rails' loggers: rail A holds
        // the client->server bytes, rail B the server->client bytes.
        st_backup->set_logger_query([this](const core::ConnId& id, util::Seq32 begin,
                                           util::Seq32 end) {
            auto frames = logger_a->store().find_tcp_range(id.client_ip, id.server_ip,
                                                           id.client_port, id.server_port,
                                                           begin, end);
            auto more = logger_b->store().find_tcp_range(id.client_ip, id.server_ip,
                                                         id.client_port, id.server_port,
                                                         begin, end);
            frames.insert(frames.end(), std::make_move_iterator(more.begin()),
                          std::make_move_iterator(more.end()));
            return frames;
        });
    }
}

} // namespace sttcp::harness
