// The paper's no-single-point-of-failure architecture (§3.2, Figure 3).
//
//                 WAN (client segment)
//              _____/            \_____
//       gateway A                  gateway B
//           |                          |
//       logger A (inline)          logger B (inline)
//           |                          |
//       switch A ---- primary ---- switch B
//           \________  |  ________/
//                    backup
//
// Every component is replicated: two switches, two inline loggers, two
// gateways, plus the power switch for fencing. Primary and backup are
// dual-homed. Traffic is split across the rails as the paper suggests for
// full-duplex links: client->server flows over rail A (the service IP is
// multicast-mapped at gateway A), server->client over rail B (the primary's
// default route uses gateway B's virtual IP, multicast-mapped). The backup
// taps rail A on its first NIC and rail B on its second — "for full-duplex
// Ethernet links to the server one would configure ST-TCP such that the
// backup receives the packets to and from the server on two separate
// Ethernet links."
//
// Rail A's logger therefore holds every client->server byte and rail B's
// every server->client byte: together, the complete communication state.
#pragma once

#include <memory>

#include "harness/testbed.hpp"
#include "net/hub.hpp"
#include "net/inline_logger.hpp"
#include "net/switch.hpp"

namespace sttcp::harness {

class NoSpofTestbed {
public:
    explicit NoSpofTestbed(TestbedOptions options);

    // Addressing: rail A LAN = 10.0.1.0/24, rail B LAN = 10.0.2.0/24.
    [[nodiscard]] net::Ipv4Address service_ip() const { return {10, 0, 1, 100}; }
    [[nodiscard]] net::Ipv4Address gwa_virtual_ip() const { return {10, 0, 1, 99}; }
    [[nodiscard]] net::Ipv4Address gwb_virtual_ip() const { return {10, 0, 2, 99}; }
    [[nodiscard]] net::Ipv4Address client_ip() const { return {192, 168, 1, 10}; }
    [[nodiscard]] net::Ipv4Address primary_ip() const { return {10, 0, 1, 2}; }
    [[nodiscard]] net::Ipv4Address backup_ip() const { return {10, 0, 1, 3}; }

    [[nodiscard]] static net::MacAddress sme() { return net::MacAddress::multicast(100); }
    [[nodiscard]] static net::MacAddress gme_b() { return net::MacAddress::multicast(98); }

    void crash_primary() { primary_node->power_off(); }
    void crash_backup() { backup_node->power_off(); }
    void crash_logger_a() { logger_a_node->power_off(); }
    void crash_logger_b() { logger_b_node->power_off(); }

    [[nodiscard]] net::Link* client_side_link() const { return wan_client_link; }

    sim::Simulation sim;
    net::Switch switch_a;
    net::Switch switch_b;
    net::Hub wan;  // client segment: client + both gateways
    net::PowerSwitch power;

    std::unique_ptr<net::Node> client_node;
    std::unique_ptr<net::Node> gwa_node;
    std::unique_ptr<net::Node> gwb_node;
    std::unique_ptr<net::Node> primary_node;
    std::unique_ptr<net::Node> backup_node;
    std::unique_ptr<net::Node> logger_a_node;
    std::unique_ptr<net::Node> logger_b_node;

    std::unique_ptr<net::Nic> client_nic;
    std::unique_ptr<net::Nic> gwa_wan_nic, gwa_lan_nic;
    std::unique_ptr<net::Nic> gwb_wan_nic, gwb_lan_nic;
    std::unique_ptr<net::Nic> primary_nic_a, primary_nic_b;
    std::unique_ptr<net::Nic> backup_nic_a, backup_nic_b;

    std::unique_ptr<net::InlineLogger> logger_a;
    std::unique_ptr<net::InlineLogger> logger_b;
    // switch <-> logger and logger <-> gateway links (owned here because the
    // inline logger is not a switch port).
    std::unique_ptr<net::Link> sw_a_logger_link, logger_gwa_link;
    std::unique_ptr<net::Link> sw_b_logger_link, logger_gwb_link;
    net::Link* wan_client_link = nullptr;

    std::unique_ptr<tcp::HostStack> client;
    std::unique_ptr<tcp::HostStack> gwa;
    std::unique_ptr<tcp::HostStack> gwb;
    std::unique_ptr<tcp::HostStack> primary;
    std::unique_ptr<tcp::HostStack> backup;

    std::unique_ptr<core::SttcpPrimary> st_primary;
    std::unique_ptr<core::SttcpBackup> st_backup;

    TestbedOptions options;
};

} // namespace sttcp::harness
