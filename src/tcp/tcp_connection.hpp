// TCP connection (transmission control block + state machine).
//
// A faithful, compact RFC 793 implementation with the congestion/retransmit
// behaviour of the Linux stack the paper modified: Reno congestion control,
// Jacobson RTT estimation with 200 ms/2 min RTO clamping and doubling
// backoff, delayed ACKs, fast retransmit, zero-window persist probing.
//
// Two deliberately small extension points carry all of ST-TCP:
//   * set_adopt_peer_seq(): in SYN_RCVD, instead of rejecting an ACK that
//     does not match our SYN/ACK, rebase our send sequence space onto it.
//     This is the backup's ISN synchronization (paper §4.1 step 3).
//   * set_retention_hook(): gates how many received bytes the application
//     may consume and observes the consumed bytes. The ST-TCP primary uses
//     it to implement the second receive buffer / LastByteAcked discard rule
//     (paper §4.2, Figure 4).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "check/tcp_auditor.hpp"
#include "net/tcp_wire.hpp"
#include "sim/simulation.hpp"
#include "tcp/congestion.hpp"
#include "tcp/receive_buffer.hpp"
#include "tcp/rtt_estimator.hpp"
#include "tcp/send_buffer.hpp"
#include "tcp/tcp_types.hpp"

namespace sttcp::tcp {

class HostStack;

// See class comment for how ST-TCP uses this.
class RetentionHook {
public:
    virtual ~RetentionHook() = default;
    // Upper bound on bytes the application may consume right now (the
    // second buffer's free space; SIZE_MAX = unlimited).
    [[nodiscard]] virtual std::size_t max_consumable() = 0;
    // Called with every chunk the application consumed; `seq` is the wire
    // sequence number of data[0].
    virtual void on_consumed(util::Seq32 seq, util::ByteView data) = 0;
};

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
public:
    struct Callbacks {
        std::function<void()> on_established;
        std::function<void()> on_readable;
        std::function<void()> on_writable;
        std::function<void()> on_remote_fin;
        std::function<void(const std::string& reason)> on_closed;
    };

    TcpConnection(HostStack& stack, FlowKey key, TcpConfig config);
    ~TcpConnection();

    TcpConnection(const TcpConnection&) = delete;
    TcpConnection& operator=(const TcpConnection&) = delete;

    // ---- lifecycle -------------------------------------------------------
    void open_active();                       // client: send SYN
    void open_passive(const net::TcpSegment& syn);  // server: got SYN, send SYN/ACK
    // ST-TCP late-join: constructs an ESTABLISHED server-side shadow from
    // anchors supplied by the primary (tap missed the handshake). The
    // receive stream is anchored at `first_byte_seq` (the earliest client
    // byte the primary can replay) and the send space at `iss`.
    void open_shadow_join(util::Seq32 first_byte_seq, util::Seq32 iss);
    void close();                             // orderly: FIN after queued data
    void abort();                             // RST and drop

    // ---- data ------------------------------------------------------------
    // Appends to the send buffer; returns bytes accepted (0 if full or not
    // writable in this state).
    std::size_t send(util::ByteView data);
    // Reads received in-order bytes; bounded by the retention hook.
    std::size_t read(std::span<std::uint8_t> out);
    [[nodiscard]] std::size_t readable() const { return rcv_.readable(); }
    [[nodiscard]] std::size_t send_space() const { return snd_.free_space(); }

    // ---- introspection ----------------------------------------------------
    [[nodiscard]] TcpState state() const { return state_; }
    [[nodiscard]] const FlowKey& key() const { return key_; }
    [[nodiscard]] const TcpConfig& config() const { return config_; }
    [[nodiscard]] util::Seq32 snd_una() const { return snd_una_; }
    [[nodiscard]] util::Seq32 snd_nxt() const { return snd_nxt_; }
    [[nodiscard]] util::Seq32 snd_max() const { return snd_max_; }
    [[nodiscard]] util::Seq32 rcv_nxt() const { return rcv_.rcv_nxt(); }
    [[nodiscard]] util::Seq32 iss() const { return iss_; }
    [[nodiscard]] util::Seq32 irs() const { return irs_; }
    // Outstanding bytes: highest sequence ever sent minus the cumulative ack
    // (SND.MAX - SND.UNA; SND.NXT may be rolled back during RTO recovery).
    [[nodiscard]] std::uint32_t flight_size() const { return snd_max_ - snd_una_; }
    [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }
    [[nodiscard]] const RenoCongestion& congestion() const { return cc_; }
    [[nodiscard]] std::uint64_t recv_stream_offset() const { return rcv_.stream_offset(); }
    [[nodiscard]] const ReceiveBuffer& receive_buffer() const { return rcv_; }
    [[nodiscard]] const SendBuffer& send_buffer() const { return snd_; }
    [[nodiscard]] bool fin_sent() const { return fin_sent_; }

    struct Stats {
        std::uint64_t segments_sent = 0;
        std::uint64_t segments_received = 0;
        std::uint64_t bytes_sent = 0;
        std::uint64_t bytes_received = 0;
        std::uint64_t retransmits = 0;
        std::uint64_t fast_retransmits = 0;
        std::uint64_t timeouts = 0;
        std::uint64_t dup_acks_in = 0;
        std::uint64_t pure_acks_out = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

    void set_callbacks(Callbacks cbs) { callbacks_ = std::move(cbs); }

    // ---- ST-TCP hooks ------------------------------------------------------
    void set_adopt_peer_seq(bool on) { adopt_peer_seq_ = on; }
    // Shadow mode (ST-TCP backup): this endpoint's output is suppressed and
    // an identical primary is serving the peer. Peer ACKs may then run
    // *ahead* of what this replica has generated (its application replays
    // requests that arrived late via gap recovery). In shadow mode such
    // ACKs are honoured: acked bytes are released as they are produced and
    // SND.NXT fast-forwards past data the peer provably already has.
    void set_shadow_mode(bool on) { shadow_mode_ = on; }
    [[nodiscard]] bool shadow_mode() const { return shadow_mode_; }
    void set_retention_hook(RetentionHook* hook) { retention_ = hook; }
    // Observer fired whenever RCV.NXT advances (new in-order bytes). The
    // ST-TCP backup drives its acknowledgment strategy from this without
    // touching the application's callbacks.
    void set_rcv_advance_hook(std::function<void()> hook) {
        rcv_advance_hook_ = std::move(hook);
    }
    // Internal observer fired when the connection reaches CLOSED, separate
    // from the application's on_closed callback (ST-TCP modules clean up
    // their shadow state here).
    void set_close_hook(std::function<void()> hook) { close_hook_ = std::move(hook); }
    // Drops every application callback and ST-TCP hook. Called on CLOSED and
    // by the owning stack's destructor: application sessions capture a
    // shared_ptr to this connection while the connection's callbacks own the
    // session, and this is the edge that breaks that ownership cycle.
    void detach_hooks();
    [[nodiscard]] std::uint32_t snd_wnd() const { return snd_wnd_; }
    // Re-fires on_readable if data is pending — used by the ST-TCP primary
    // when a backup ack frees second-buffer space and unblocks reads.
    void notify_readable() {
        if (readable() > 0) {
            auto cb = callbacks_.on_readable;
            if (cb) cb();
        }
    }
    // Copies already-received bytes from the receive buffer starting at wire
    // sequence `seq` (used by the primary to serve the backup's
    // missing-segment requests for bytes not yet read by the application).
    std::size_t copy_received(util::Seq32 seq, std::span<std::uint8_t> out) const;
    // Forces the send sequence space onto `una` (backup ISN adoption; also
    // used by late-join shadowing). Safe only when the send buffer is empty.
    void rebase_send_seq(util::Seq32 una);
    // ST-TCP backup: anchors a SYN_RCVD shadow directly to the primary's
    // ISN as observed from the *tapped primary SYN/ACK*. The shadow stays in
    // SYN_RCVD — the handshake is only complete once a tapped client ack
    // covers the SYN, and a shadow promoted before that must retransmit the
    // SYN/ACK itself (the client may never have seen the primary's copy).
    void anchor_shadow(util::Seq32 primary_iss);
    // Kicks the send path — the backup calls this on takeover to retransmit
    // immediately rather than wait out the RTO.
    void on_takeover();

    // ---- called by HostStack ----------------------------------------------
    void on_segment(const net::TcpSegment& seg);

private:
    // segment processing helpers
    void process_syn_sent(const net::TcpSegment& seg);
    void process_general(const net::TcpSegment& seg);
    bool sequence_acceptable(const net::TcpSegment& seg) const;
    bool process_ack(const net::TcpSegment& seg);
    void release_shadow_acked();
    void process_payload(const net::TcpSegment& seg);
    void process_fin(const net::TcpSegment& seg);
    void maybe_consume_remote_fin();
    void maybe_update_send_window(const net::TcpSegment& seg);
    // ACK value we advertise: RCV.NXT, plus one if the peer's FIN has been
    // consumed.
    [[nodiscard]] util::Seq32 ack_seq() const;

    // output
    void try_send();
    void send_syn(bool with_ack);
    void send_ack_now();
    void schedule_delayed_ack();
    void send_fin_if_ready();
    void emit_data_segment(util::Seq32 seq, std::size_t len, bool fin);
    void emit(net::TcpSegment&& seg);
    void send_rst(util::Seq32 seq);
    [[nodiscard]] std::uint16_t advertised_window() const;

    // timers
    void arm_retransmit_timer();
    void cancel_retransmit_timer();
    void on_retransmit_timeout();
    void retransmit_head();
    [[nodiscard]] sim::Duration persist_delay() const;
    void arm_persist_timer();
    void on_persist_timeout();
    void enter_time_wait();

    // lifecycle
    // The single sanctioned write to state_. Consults the constexpr legality
    // matrix in tcp/state_machine.hpp through the invariant auditor; direct
    // `state_ =` writes anywhere else are rejected by tools/staticcheck's
    // state-funnel rule.
    void transition(TcpState to);
    void become_established();
    void finish(const std::string& reason);  // -> CLOSED, deregister

    [[nodiscard]] bool fin_fully_acked() const;
    [[nodiscard]] util::Seq32 send_limit() const;  // una + usable window

    HostStack& stack_;
    FlowKey key_;
    TcpConfig config_;
    TcpState state_ = TcpState::kClosed;
    Callbacks callbacks_;

    util::Seq32 iss_;
    util::Seq32 irs_;
    SendBuffer snd_;           // data bytes only, anchored at iss_+1
    util::Seq32 snd_una_;      // includes SYN/FIN sequence space
    util::Seq32 snd_nxt_;      // next sequence to transmit (rolls back on RTO)
    util::Seq32 snd_max_;      // highest sequence ever transmitted
    std::uint32_t snd_wnd_ = 0;
    util::Seq32 snd_wl1_;
    util::Seq32 snd_wl2_;
    ReceiveBuffer rcv_;

    bool fin_queued_ = false;
    bool fin_sent_ = false;
    util::Seq32 fin_seq_;  // valid when fin_sent_
    std::optional<util::Seq32> remote_fin_seq_;  // seq just past the peer's FIN
    bool remote_fin_consumed_ = false;

    RttEstimator rtt_;
    RenoCongestion cc_;
    int dup_acks_ = 0;
    util::Seq32 recovery_point_;  // snd_nxt when fast recovery entered
    int consecutive_retransmits_ = 0;
    int persist_backoff_ = 0;

    // one outstanding RTT sample (Karn's algorithm)
    bool rtt_pending_ = false;
    util::Seq32 rtt_seq_;
    sim::TimePoint rtt_sent_at_{};

    // delayed-ACK bookkeeping
    int unacked_segments_ = 0;

    sim::EventId retransmit_timer_ = sim::kInvalidEventId;
    sim::EventId delack_timer_ = sim::kInvalidEventId;
    sim::EventId persist_timer_ = sim::kInvalidEventId;
    sim::EventId time_wait_timer_ = sim::kInvalidEventId;
    // Deadline the armed retransmit timer points at: a burst of segments in
    // one try_send() re-arms at an identical now+RTO, and the memo turns
    // those re-arms into no-ops instead of rearm() round trips.
    sim::TimePoint retransmit_deadline_{};

    bool adopt_peer_seq_ = false;
    bool shadow_mode_ = false;
    bool adopted_ = false;  // was a shadow, promoted by on_takeover()
    util::Seq32 shadow_peer_ack_max_;
    bool shadow_peer_ack_valid_ = false;  // max is meaningless until first set
    RetentionHook* retention_ = nullptr;
    std::function<void()> rcv_advance_hook_;
    std::function<void()> close_hook_;

    std::uint16_t last_advertised_window_ = 0;

    // Runtime invariant auditor (no-op unless built with STTCP_AUDIT).
    check::TcpInvariantAuditor auditor_;

    Stats stats_;
};

} // namespace sttcp::tcp
