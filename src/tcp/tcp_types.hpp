// Shared TCP types: state machine states, the connection 4-tuple, and the
// per-connection configuration knobs.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "net/addr.hpp"
#include "sim/time.hpp"

namespace sttcp::tcp {

// Fixed underlying type so observers (check/tcp_auditor.hpp) can forward-
// declare the enum without depending on this header.
enum class TcpState : std::uint8_t {
    kClosed,
    kListen,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait1,
    kFinWait2,
    kCloseWait,
    kClosing,
    kLastAck,
    kTimeWait,
};

// Inline so observers that only link the reporting core (src/check/) can
// name states in violation messages without a link-time dependency on tcp/.
[[nodiscard]] inline std::string_view to_string(TcpState s) {
    switch (s) {
        case TcpState::kClosed: return "CLOSED";
        case TcpState::kListen: return "LISTEN";
        case TcpState::kSynSent: return "SYN_SENT";
        case TcpState::kSynReceived: return "SYN_RCVD";
        case TcpState::kEstablished: return "ESTABLISHED";
        case TcpState::kFinWait1: return "FIN_WAIT_1";
        case TcpState::kFinWait2: return "FIN_WAIT_2";
        case TcpState::kCloseWait: return "CLOSE_WAIT";
        case TcpState::kClosing: return "CLOSING";
        case TcpState::kLastAck: return "LAST_ACK";
        case TcpState::kTimeWait: return "TIME_WAIT";
    }
    return "?";
}

// Connection 4-tuple, always from the perspective of the local endpoint.
struct FlowKey {
    net::Ipv4Address local_ip;
    std::uint16_t local_port = 0;
    net::Ipv4Address remote_ip;
    std::uint16_t remote_port = 0;

    friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

// Floor for a peer-advertised MSS. A SYN carrying MSS 0 (or any absurdly
// small value) must not be honored verbatim: with mss == 0 the sender can
// never emit a data segment and the connection wedges silently — on the
// primary AND, after migration, identically on the backup, which is exactly
// the correlated-failure mode the paper's fault model excludes.
inline constexpr std::uint16_t kMinMss = 64;

struct TcpConfig {
    std::size_t send_buffer_size = 64 * 1024;
    std::size_t recv_buffer_size = 64 * 1024;
    std::uint16_t mss = 1460;
    bool nagle = true;

    // Delayed ACK (RFC 1122): ack at least every second full-size segment,
    // or after this timeout.
    bool delayed_ack = true;
    sim::Duration delayed_ack_timeout = sim::milliseconds{40};

    // Linux RTO bounds, cited by the paper §6.2: 200 ms lower, 2 min upper,
    // doubling on each retransmission.
    sim::Duration min_rto = sim::milliseconds{200};
    sim::Duration max_rto = sim::minutes{2};
    sim::Duration initial_rto = sim::seconds{1};

    // Give up after this many consecutive RTO retransmissions of the same
    // data (Linux tcp_retries2-ish).
    int max_retransmits = 15;
    int max_syn_retransmits = 6;

    // TIME_WAIT duration is 2*MSL; tests shrink this.
    sim::Duration msl = sim::seconds{30};

    // Zero-window persist probe bounds.
    sim::Duration persist_min = sim::milliseconds{200};
    sim::Duration persist_max = sim::seconds{60};

    bool timestamps = false;  // the paper ran with TCP timestamps disabled
};

} // namespace sttcp::tcp

template <>
struct std::hash<sttcp::tcp::FlowKey> {
    std::size_t operator()(const sttcp::tcp::FlowKey& k) const noexcept {
        std::uint64_t a = static_cast<std::uint64_t>(k.local_ip.value()) << 32 |
                          k.remote_ip.value();
        std::uint64_t b = static_cast<std::uint64_t>(k.local_port) << 16 | k.remote_port;
        return std::hash<std::uint64_t>{}(a ^ (b * 0x9e3779b97f4a7c15ULL));
    }
};
