// TCP Reno congestion control (RFC 5681): slow start, congestion avoidance,
// fast retransmit, fast recovery — the algorithms in the Linux 2.2 stack the
// paper modified.
//
// Seq32 audit note: every uint32_t in this class (cwnd, ssthresh, mss,
// acked, flight_size) is a byte *count*, not a point in sequence space —
// linear quantities bounded far below 2^31, never compared on the mod-2^32
// circle. They deliberately stay raw integers; positions live in
// util::Seq32 (enforced by tools/staticcheck's seq-raw rule).
#pragma once

#include <algorithm>
#include <cstdint>

namespace sttcp::tcp {

class RenoCongestion {
public:
    explicit RenoCongestion(std::uint32_t mss) : mss_(mss) {
        cwnd_ = 2 * mss_;  // RFC 2581 initial window
        ssthresh_ = 0xffffffff;
    }

    [[nodiscard]] std::uint32_t cwnd() const { return cwnd_; }
    [[nodiscard]] std::uint32_t ssthresh() const { return ssthresh_; }
    [[nodiscard]] bool in_fast_recovery() const { return in_fast_recovery_; }
    [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }

    // New cumulative ACK advancing snd_una by `acked` bytes.
    void on_ack(std::uint32_t acked, std::uint32_t flight_size) {
        if (in_fast_recovery_) {
            // Full ACK handling is done by exit_fast_recovery(); partial
            // ACKs deflate then re-inflate (NewReno-lite).
            cwnd_ = std::max(ssthresh_, mss_);
            return;
        }
        if (in_slow_start()) {
            cwnd_ += std::min(acked, mss_);
        } else {
            // Congestion avoidance: ~1 MSS per RTT.
            std::uint32_t inc = std::max<std::uint32_t>(1, mss_ * mss_ / std::max(cwnd_, 1u));
            cwnd_ += inc;
        }
        (void)flight_size;
    }

    // Third duplicate ACK: halve and enter fast recovery.
    void on_fast_retransmit(std::uint32_t flight_size) {
        ssthresh_ = std::max(flight_size / 2, 2 * mss_);
        cwnd_ = ssthresh_ + 3 * mss_;
        in_fast_recovery_ = true;
    }

    // Further duplicate ACKs inflate the window by one MSS each.
    void on_dup_ack_in_recovery() {
        if (in_fast_recovery_) cwnd_ += mss_;
    }

    void exit_fast_recovery() {
        if (!in_fast_recovery_) return;
        in_fast_recovery_ = false;
        cwnd_ = ssthresh_;
    }

    // Retransmission timeout: multiplicative decrease to 1 MSS.
    void on_timeout(std::uint32_t flight_size) {
        ssthresh_ = std::max(flight_size / 2, 2 * mss_);
        cwnd_ = mss_;
        in_fast_recovery_ = false;
    }

    // Slow-start restart after an idle period (RFC 5681 §4.1).
    void on_idle_restart() {
        cwnd_ = std::min(cwnd_, 2 * mss_);
    }

private:
    std::uint32_t mss_;
    std::uint32_t cwnd_;
    std::uint32_t ssthresh_;
    bool in_fast_recovery_ = false;
};

} // namespace sttcp::tcp
