// TCP receive buffer with out-of-order reassembly.
//
// Sequence numbers are unwrapped onto a 64-bit stream offset; an IntervalSet
// records which ranges arrived and the contiguous frontier is RCV.NXT
// ("NextByteExpected" in the paper's Figure 4). The ring's front is the next
// byte the application will read ("LastByteRead"+1).
//
// The ST-TCP primary's discard gating does NOT live here: the paper's second
// buffer receives bytes as the application reads them (sttcp/retention.hpp);
// this buffer behaves exactly like standard TCP's, which is why the
// client-visible advertised window is unchanged.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "check/audit.hpp"
#include "util/interval_set.hpp"
#include "util/ring_buffer.hpp"
#include "util/seq32.hpp"

namespace sttcp::tcp {

class ReceiveBuffer {
public:
    explicit ReceiveBuffer(std::size_t capacity) : ring_(capacity) {}

    // Anchors sequence mapping at the first data byte (IRS+1).
    void init(util::Seq32 first_byte_seq) {
        anchor_seq_ = first_byte_seq;
        anchor_off_ = 0;
        nxt_off_ = 0;
        read_off_ = 0;
        received_.clear();
    }

    // RCV.NXT as a wire sequence number.
    [[nodiscard]] util::Seq32 rcv_nxt() const {
        return anchor_seq_ + static_cast<std::uint32_t>(nxt_off_ - anchor_off_);
    }

    // Wire sequence number of the next byte the application will read
    // (LastByteRead+1 in the paper's Figure 4).
    [[nodiscard]] util::Seq32 read_seq() const {
        return anchor_seq_ + static_cast<std::uint32_t>(read_off_ - anchor_off_);
    }

    // Advertised window: space from RCV.NXT to the end of the buffer.
    [[nodiscard]] std::size_t window() const {
        return ring_.capacity() - static_cast<std::size_t>(nxt_off_ - read_off_);
    }

    [[nodiscard]] std::size_t readable() const { return ring_.size(); }
    [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }

    // Total contiguous bytes ever received (stream offset of RCV.NXT).
    [[nodiscard]] std::uint64_t stream_offset() const { return nxt_off_; }
    // Stream offset of the next byte the application will read.
    [[nodiscard]] std::uint64_t read_offset() const { return read_off_; }

    // Accepts segment payload at wire sequence `seq`. Bytes outside the
    // window are trimmed. Returns the number of *new* contiguous bytes made
    // available (i.e. how far RCV.NXT advanced).
    std::uint64_t accept(util::Seq32 seq, std::span<const std::uint8_t> data) {
        if (data.empty()) return 0;
        // Map onto stream offsets via the signed circular distance to RCV.NXT.
        auto delta = static_cast<std::int64_t>(util::seq_delta(seq, rcv_nxt()));
        std::int64_t begin = static_cast<std::int64_t>(nxt_off_) + delta;
        std::int64_t end = begin + static_cast<std::int64_t>(data.size());

        // Trim below what has already been received contiguously (dup data)
        // and above the buffer limit.
        std::int64_t lo = std::max(begin, static_cast<std::int64_t>(nxt_off_));
        std::int64_t hi = std::min(end, static_cast<std::int64_t>(read_off_ + ring_.capacity()));
        if (lo >= hi) return 0;

        ring_.write_at(static_cast<std::size_t>(lo - static_cast<std::int64_t>(read_off_)),
                       data.subspan(static_cast<std::size_t>(lo - begin),
                                    static_cast<std::size_t>(hi - lo)));
        received_.insert(static_cast<std::uint64_t>(lo), static_cast<std::uint64_t>(hi));

        std::uint64_t advance = received_.contiguous_from(nxt_off_);
        if (advance > 0) {
            nxt_off_ += advance;
            received_.erase_below(nxt_off_);
            ring_.commit(static_cast<std::size_t>(nxt_off_ - read_off_));
        }
        if constexpr (check::kEnabled) {
            check::require(nxt_off_ - read_off_ <= ring_.capacity(),
                           "tcp.rcv.within_capacity", "receive_buffer",
                           "unread span " + std::to_string(nxt_off_ - read_off_) +
                               " exceeds capacity " + std::to_string(ring_.capacity()));
        }
        return advance;
    }

    // Application read: copies and consumes up to out.size() readable bytes.
    std::size_t read(std::span<std::uint8_t> out) {
        std::size_t n = ring_.read(out);
        read_off_ += n;
        return n;
    }

    // Non-consuming variant (the ST-TCP primary copies into the retention
    // buffer before consuming).
    std::size_t peek(std::span<std::uint8_t> out) const { return ring_.peek(out); }
    std::size_t consume(std::size_t n) {
        n = ring_.consume(n);
        read_off_ += n;
        return n;
    }

    // Copies buffered in-order bytes starting at wire sequence `seq` without
    // consuming them; returns bytes copied (0 if seq is outside the stored
    // range). Serves the ST-TCP primary's missing-segment replies for bytes
    // the application has not read yet.
    std::size_t copy_range(util::Seq32 seq, std::span<std::uint8_t> out) const {
        auto delta = static_cast<std::int64_t>(util::seq_delta(seq, read_seq()));
        if (delta < 0 || static_cast<std::uint64_t>(delta) >= ring_.size()) return 0;
        return ring_.peek(out, static_cast<std::size_t>(delta));
    }

    // True if any out-of-order data is parked beyond RCV.NXT.
    [[nodiscard]] bool has_gaps() const { return !received_.empty(); }
    [[nodiscard]] const util::IntervalSet& out_of_order() const { return received_; }

private:
    util::RingBuffer ring_;
    util::Seq32 anchor_seq_;
    std::uint64_t anchor_off_ = 0;
    std::uint64_t nxt_off_ = 0;   // stream offset of RCV.NXT
    std::uint64_t read_off_ = 0;  // stream offset of next app read
    util::IntervalSet received_;  // ranges at/after nxt_off_ not yet contiguous
};

} // namespace sttcp::tcp
