// TCP send buffer: unacknowledged + unsent outgoing bytes.
//
// The ring's front is always SND.UNA; the application appends at the tail
// and cumulative ACKs consume from the front. Retransmission reads at an
// offset without consuming.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

#include "check/audit.hpp"
#include "util/ring_buffer.hpp"
#include "util/seq32.hpp"

namespace sttcp::tcp {

class SendBuffer {
public:
    explicit SendBuffer(std::size_t capacity) : ring_(capacity) {}

    // Anchors the sequence mapping; called once the ISS is chosen (and again
    // by the ST-TCP backup when it adopts the primary's sequence numbers).
    void set_una(util::Seq32 una) { una_ = una; }

    [[nodiscard]] util::Seq32 una() const { return una_; }
    [[nodiscard]] util::Seq32 end() const {
        return una_ + static_cast<std::uint32_t>(ring_.size());
    }

    [[nodiscard]] std::size_t size() const { return ring_.size(); }
    [[nodiscard]] std::size_t free_space() const { return ring_.free_space(); }
    [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }

    // Appends application bytes; returns the count accepted.
    std::size_t write(std::span<const std::uint8_t> data) { return ring_.write(data); }

    // Copies bytes [seq, seq+out.size()) into out; returns bytes copied
    // (0 if seq is outside the buffered range).
    std::size_t copy_from(util::Seq32 seq, std::span<std::uint8_t> out) const {
        if (seq < una_) return 0;
        std::uint32_t offset = seq - una_;
        if (offset >= ring_.size()) return 0;
        return ring_.peek(out, offset);
    }

    // Cumulative ACK: releases bytes below `ack`. Returns bytes released.
    std::size_t ack_to(util::Seq32 ack) {
        if (ack <= una_) return 0;
        std::uint32_t n = ack - una_;
        if constexpr (check::kEnabled) {
            check::require(n <= ring_.size(), "tcp.snd.ack_within_sent", "send_buffer",
                           "cumulative ACK " + std::to_string(ack.raw()) + " releases " +
                               std::to_string(n) + " bytes but only " +
                               std::to_string(ring_.size()) + " are buffered");
        }
        assert(n <= ring_.size() && "acking bytes never sent");
        ring_.consume(n);
        una_ = ack;
        return n;
    }

private:
    util::RingBuffer ring_;
    util::Seq32 una_;
};

} // namespace sttcp::tcp
