// to_string(TcpState) moved inline into tcp_types.hpp so the check/ layer can
// use it without a link dependency; this TU keeps the library non-empty and
// pins the header as self-contained.
#include "tcp/tcp_types.hpp"
