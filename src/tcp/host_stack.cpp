#include "tcp/host_stack.hpp"

#include <cassert>

#include "util/buffer_pool.hpp"

namespace sttcp::tcp {

namespace {
constexpr int kArpMaxAttempts = 3;
constexpr sim::Duration kArpRetryInterval = sim::seconds{1};
} // namespace

// ------------------------------------------------------------------- UDP

void UdpSocket::send_to(net::Ipv4Address dst_ip, std::uint16_t dst_port, util::ByteView data) {
    ++stats_.datagrams_sent;
    stats_.bytes_sent += data.size();
    net::UdpDatagram dgram;
    dgram.src_port = port_;
    dgram.dst_port = dst_port;
    dgram.payload.assign(data.begin(), data.end());
    stack_.udp_output(net::Ipv4Address{}, dst_ip, std::move(dgram));
}

// -------------------------------------------------------------- HostStack

HostStack::HostStack(sim::Simulation& simulation, net::Node& node, TcpConfig tcp_config)
    : sim_(simulation), node_(node), tcp_config_(tcp_config) {}

HostStack::~HostStack() {
    sim_.cancel(closed_drain_);
    closed_drain_ = sim::kInvalidEventId;
    // Connections that never reached CLOSED (a crashed host keeps its
    // ESTABLISHED connections forever) still hold application sessions via
    // their callbacks, and those sessions hold the connections — detach to
    // break the cycles before the map drops its references.
    for (auto& [key, conn] : connections_) conn->detach_hooks();
}

std::size_t HostStack::add_interface(net::Nic& nic, net::Ipv4Address ip, int prefix_len) {
    std::size_t index = interfaces_.size();
    interfaces_.push_back(Interface{&nic, ip, prefix_len, {}});
    nic.set_rx_handler([this, index](const net::EthernetFrame& f) { on_frame(index, f); });
    return index;
}

void HostStack::add_ip_alias(std::size_t iface_index, net::Ipv4Address ip) {
    interfaces_.at(iface_index).aliases.push_back(ip);
}

void HostStack::remove_ip_alias(net::Ipv4Address ip) {
    for (auto& iface : interfaces_) {
        std::erase(iface.aliases, ip);
    }
}

bool HostStack::is_local_ip(net::Ipv4Address ip) const {
    for (const auto& iface : interfaces_) {
        if (iface.ip == ip) return true;
        for (auto alias : iface.aliases)
            if (alias == ip) return true;
    }
    return false;
}

void HostStack::send_gratuitous_arp(net::Ipv4Address ip) {
    for (auto& iface : interfaces_) {
        net::ArpMessage msg;
        msg.op = net::ArpOp::kReply;
        msg.sender_mac = iface.nic->mac();
        msg.sender_ip = ip;
        msg.target_mac = net::MacAddress::broadcast();
        msg.target_ip = ip;
        net::EthernetFrame frame;
        frame.dst = net::MacAddress::broadcast();
        frame.src = iface.nic->mac();
        frame.type = net::EtherType::kArp;
        frame.payload = msg.serialize();
        iface.nic->send(std::move(frame));
        ++stats_.arp_replies_sent;
    }
}

// ------------------------------------------------------------ frame input

void HostStack::on_frame(std::size_t iface_index, const net::EthernetFrame& frame) {
    if (!powered()) return;
    switch (frame.type) {
        case net::EtherType::kArp:
            on_arp(iface_index, frame);
            break;
        case net::EtherType::kIpv4:
            on_ip(iface_index, frame);
            break;
    }
}

void HostStack::on_arp(std::size_t iface_index, const net::EthernetFrame& frame) {
    net::ArpMessage msg;
    try {
        msg = net::ArpMessage::parse(frame.payload);
    } catch (const util::WireError&) {
        ++stats_.parse_errors;
        return;
    }
    Interface& iface = interfaces_[iface_index];

    // Learn the sender's mapping opportunistically (requests and replies).
    if (!msg.sender_ip.is_unspecified()) arp_table_.learn(msg.sender_ip, msg.sender_mac);

    if (msg.op == net::ArpOp::kRequest && is_local_ip(msg.target_ip) &&
        arp_suppressed_.count(msg.target_ip) == 0) {
        net::ArpMessage reply;
        reply.op = net::ArpOp::kReply;
        reply.sender_mac = iface.nic->mac();
        reply.sender_ip = msg.target_ip;
        reply.target_mac = msg.sender_mac;
        reply.target_ip = msg.sender_ip;
        net::EthernetFrame out;
        out.dst = msg.sender_mac;
        out.src = iface.nic->mac();
        out.type = net::EtherType::kArp;
        out.payload = reply.serialize();
        iface.nic->send(std::move(out));
        ++stats_.arp_replies_sent;
    }

    // Flush packets that were waiting on this resolution.
    auto it = arp_pending_.find(msg.sender_ip);
    if (it != arp_pending_.end()) {
        auto pending = std::move(it->second);
        arp_pending_.erase(it);
        for (auto& p : pending) ip_output(std::move(p.packet));
    }
}

void HostStack::on_ip(std::size_t iface_index, const net::EthernetFrame& frame) {
    (void)iface_index;
    net::Ipv4Packet packet;
    try {
        packet = net::Ipv4Packet::parse(frame.payload);
    } catch (const util::WireError&) {
        ++stats_.parse_errors;
        return;
    }
    ++stats_.ip_in;

    if (is_local_ip(packet.dst)) {
        switch (packet.proto) {
            case net::IpProto::kTcp:
                deliver_tcp(packet);
                break;
            case net::IpProto::kUdp:
                deliver_udp(packet);
                break;
            case net::IpProto::kIcmp:
                break;  // not modelled
        }
        return;
    }

    // Not addressed to us: the ST-TCP backup taps primary->client TCP
    // traffic here (hub flooding / multicast MAC / mirror port got it to
    // our NIC).
    if (tcp_tap_ && packet.proto == net::IpProto::kTcp) {
        try {
            net::TcpSegment seg = net::TcpSegment::parse(packet.payload, packet.src, packet.dst);
            tcp_tap_(seg, packet.src, packet.dst);
        } catch (const util::WireError&) {
            ++stats_.parse_errors;
        }
    }

    if (ip_forwarding_) {
        forward_ip(std::move(packet));
    } else {
        ++stats_.ip_dropped_not_local;
    }
}

void HostStack::deliver_tcp(const net::Ipv4Packet& ip) {
    net::TcpSegment seg;
    try {
        seg = net::TcpSegment::parse(ip.payload, ip.src, ip.dst);
    } catch (const util::WireError&) {
        ++stats_.parse_errors;
        return;
    }

    FlowKey key{ip.dst, seg.dst_port, ip.src, seg.src_port};
    if (auto conn = find_connection(key)) {
        conn->on_segment(seg);
        return;
    }

    // New connection?
    if (seg.flags.syn && !seg.flags.ack && !seg.flags.rst) {
        auto lit = listeners_.find(seg.dst_port);
        if (lit != listeners_.end()) {
            if (auto listener = lit->second.lock()) {
                auto conn = std::make_shared<TcpConnection>(*this, key, tcp_config_);
                if (listener->setup_) listener->setup_(*conn);
                // Accept handler fires at establishment.
                auto weak_conn = std::weak_ptr<TcpConnection>(conn);
                TcpConnection::Callbacks cbs;
                cbs.on_established = [listener, weak_conn]() {
                    if (auto c = weak_conn.lock()) {
                        if (listener->accept_) listener->accept_(c);
                    }
                };
                conn->set_callbacks(std::move(cbs));
                connections_.emplace(key, conn);
                conn->open_passive(seg);
                return;
            }
            listeners_.erase(lit);
        }
    }

    // Unclaimed segment: offer it to the orphan handler (ST-TCP late-join)
    // before answering with RST (RFC 793).
    if (orphan_tcp_ && orphan_tcp_(seg, ip.src, ip.dst)) return;
    if (!seg.flags.rst) send_rst_for(seg, ip.dst, ip.src);
}

void HostStack::deliver_udp(const net::Ipv4Packet& ip) {
    net::UdpDatagram dgram;
    try {
        dgram = net::UdpDatagram::parse(ip.payload, ip.src, ip.dst);
    } catch (const util::WireError&) {
        ++stats_.parse_errors;
        return;
    }
    auto it = udp_sockets_.find(dgram.dst_port);
    if (it == udp_sockets_.end()) return;
    auto sock = it->second.lock();
    if (!sock) {
        udp_sockets_.erase(it);
        return;
    }
    ++sock->stats_.datagrams_received;
    sock->stats_.bytes_received += dgram.payload.size();
    if (sock->rx_) sock->rx_(dgram.payload, ip.src, dgram.src_port);
}

void HostStack::send_rst_for(const net::TcpSegment& seg, net::Ipv4Address src_ip,
                             net::Ipv4Address dst_ip) {
    net::TcpSegment rst;
    rst.src_port = seg.dst_port;
    rst.dst_port = seg.src_port;
    rst.flags.rst = true;
    if (seg.flags.ack) {
        rst.seq = seg.ack;
    } else {
        rst.flags.ack = true;
        rst.ack = seg.seq + seg.seq_len();
    }
    ++stats_.tcp_rst_sent;
    FlowKey key{src_ip, seg.dst_port, dst_ip, seg.src_port};
    tcp_output(key, std::move(rst));
}

// ----------------------------------------------------------------- sockets

std::shared_ptr<TcpListener> HostStack::tcp_listen(std::uint16_t port) {
    auto listener = std::make_shared<TcpListener>(*this, port);
    listeners_[port] = listener;
    return listener;
}

std::shared_ptr<TcpConnection> HostStack::tcp_connect(net::Ipv4Address remote_ip,
                                                      std::uint16_t remote_port,
                                                      std::optional<net::Ipv4Address> local_ip) {
    net::Ipv4Address src = local_ip.value_or(
        interfaces_.empty() ? net::Ipv4Address{} : interfaces_.front().ip);
    FlowKey key{src, next_ephemeral_port_++, remote_ip, remote_port};
    auto conn = std::make_shared<TcpConnection>(*this, key, tcp_config_);
    connections_.emplace(key, conn);
    conn->open_active();
    return conn;
}

std::shared_ptr<TcpConnection> HostStack::find_connection(const FlowKey& key) const {
    auto it = connections_.find(key);
    return it == connections_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<TcpConnection>> HostStack::connections() const {
    std::vector<std::shared_ptr<TcpConnection>> out;
    out.reserve(connections_.size());
    for (auto& [_, conn] : connections_) out.push_back(conn);
    return out;
}

void HostStack::register_connection(std::shared_ptr<TcpConnection> conn) {
    connections_[conn->key()] = std::move(conn);
}

void HostStack::connection_closed(TcpConnection& conn) {
    auto it = connections_.find(conn.key());
    if (it == connections_.end()) return;
    // finish() is about to detach the hooks that kept the connection alive,
    // and it is executing on this very connection several frames up the
    // stack. Park the reference and drop it after the stack unwinds.
    closed_conns_.push_back(std::move(it->second));
    connections_.erase(it);
    if (closed_drain_ == sim::kInvalidEventId) {
        closed_drain_ = sim_.schedule_after(sim::Duration::zero(), [this] {
            closed_drain_ = sim::kInvalidEventId;
            closed_conns_.clear();
        });
    }
}

std::shared_ptr<UdpSocket> HostStack::udp_bind(std::uint16_t port) {
    auto sock = std::make_shared<UdpSocket>(*this, port);
    udp_sockets_[port] = sock;
    return sock;
}

util::Seq32 HostStack::generate_isn() {
    if (isn_generator_) return isn_generator_();
    return util::Seq32{static_cast<std::uint32_t>(sim_.rng().next_u64())};
}

// ------------------------------------------------------------------ output

void HostStack::tcp_output(const FlowKey& key, net::TcpSegment&& seg) {
    if (!powered()) return;
    if (egress_filter_ && !egress_filter_(seg, key.local_ip, key.remote_ip)) {
        ++stats_.tcp_segments_suppressed;
        return;
    }
    net::Ipv4Packet packet;
    packet.proto = net::IpProto::kTcp;
    packet.src = key.local_ip;
    packet.dst = key.remote_ip;
    packet.identification = next_ip_id_++;
    packet.payload = seg.serialize(key.local_ip, key.remote_ip);
    ip_output(std::move(packet));
}

void HostStack::udp_output(net::Ipv4Address src, net::Ipv4Address dst,
                           net::UdpDatagram&& dgram) {
    if (!powered()) return;
    net::Ipv4Packet packet;
    packet.proto = net::IpProto::kUdp;
    packet.src = src.is_unspecified()
                     ? (interfaces_.empty() ? net::Ipv4Address{} : interfaces_.front().ip)
                     : src;
    packet.dst = dst;
    packet.identification = next_ip_id_++;
    packet.payload = dgram.serialize(packet.src, packet.dst);
    ip_output(std::move(packet));
}

std::optional<std::pair<std::size_t, net::Ipv4Address>> HostStack::route(
    net::Ipv4Address dst) const {
    for (std::size_t i = 0; i < interfaces_.size(); ++i) {
        if (dst.in_subnet(interfaces_[i].ip, interfaces_[i].prefix_len)) return {{i, dst}};
    }
    if (default_gateway_) {
        for (std::size_t i = 0; i < interfaces_.size(); ++i) {
            if (default_gateway_->in_subnet(interfaces_[i].ip, interfaces_[i].prefix_len))
                return {{i, *default_gateway_}};
        }
    }
    return std::nullopt;
}

void HostStack::ip_output(net::Ipv4Packet packet) {
    auto r = route(packet.dst);
    if (!r) return;  // no route to host
    ++stats_.ip_out;
    transmit_on(r->first, r->second, std::move(packet));
}

void HostStack::forward_ip(net::Ipv4Packet packet) {
    if (packet.ttl <= 1) return;
    packet.ttl -= 1;
    auto r = route(packet.dst);
    if (!r) return;
    ++stats_.ip_forwarded;
    transmit_on(r->first, r->second, std::move(packet));
}

void HostStack::transmit_on(std::size_t iface_index, net::Ipv4Address next_hop,
                            net::Ipv4Packet packet) {
    Interface& iface = interfaces_[iface_index];
    auto mac = arp_table_.lookup(next_hop);
    if (!mac) {
        auto& queue = arp_pending_[next_hop];
        if (queue.size() < 64) queue.push_back({std::move(packet), 0});
        if (queue.size() == 1) send_arp_request(iface_index, next_hop, 1);
        return;
    }
    net::EthernetFrame frame;
    frame.dst = *mac;
    frame.src = iface.nic->mac();
    frame.type = net::EtherType::kIpv4;
    frame.payload = packet.serialize();
    // The L3 buffer has been flattened into the frame; recycle it.
    util::BufferPool::instance().give(std::move(packet.payload));
    iface.nic->send(std::move(frame));
}

void HostStack::send_arp_request(std::size_t iface_index, net::Ipv4Address target,
                                 int attempt) {
    Interface& iface = interfaces_[iface_index];
    net::ArpMessage msg;
    msg.op = net::ArpOp::kRequest;
    msg.sender_mac = iface.nic->mac();
    msg.sender_ip = iface.ip;
    msg.target_ip = target;
    net::EthernetFrame frame;
    frame.dst = net::MacAddress::broadcast();
    frame.src = iface.nic->mac();
    frame.type = net::EtherType::kArp;
    frame.payload = msg.serialize();
    iface.nic->send(std::move(frame));
    ++stats_.arp_requests_sent;

    sim_.schedule_after(kArpRetryInterval, [this, iface_index, target, attempt]() {
        if (!powered()) return;
        auto it = arp_pending_.find(target);
        if (it == arp_pending_.end()) return;  // resolved meanwhile
        if (attempt >= kArpMaxAttempts) {
            arp_pending_.erase(it);  // unreachable: drop queued packets
            return;
        }
        send_arp_request(iface_index, target, attempt + 1);
    });
}

} // namespace sttcp::tcp
